#!/usr/bin/env python3
"""Batch clang-tidy over the project's compilation database.

Run as the ``clang_tidy`` CTest (see tests/CMakeLists.txt) or by
hand::

    tools/run_clang_tidy.py --build-dir build/dev [--jobs N] [PATHS...]

Reads ``compile_commands.json`` from the build dir, keeps only
first-party translation units (src/ by default, or the given PATHS),
and runs clang-tidy with the project ``.clang-tidy`` config. Any
diagnostic fails the check; suppressions are `// NOLINT(check)` in
the source with the justification inventory kept in
docs/development.md.

Exit status: 0 clean, 1 findings, 2 setup error, 77 when clang-tidy
(or the compilation database) is unavailable — CTest maps 77 to
SKIPPED via SKIP_RETURN_CODE so environments without clang keep a
green suite without silently pretending the gate ran.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

SKIP = 77

CANDIDATES = (
    "clang-tidy",
    "clang-tidy-19", "clang-tidy-18", "clang-tidy-17",
    "clang-tidy-16", "clang-tidy-15", "clang-tidy-14",
)


def find_clang_tidy() -> str | None:
    env = os.environ.get("CLANG_TIDY")
    if env:
        return env if shutil.which(env) else None
    for name in CANDIDATES:
        if shutil.which(name):
            return name
    return None


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", required=True, type=Path)
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    parser.add_argument("paths", nargs="*", default=[],
                        help="filter prefixes relative to the repo root "
                             "(default: src/)")
    args = parser.parse_args(argv[1:])

    tidy = find_clang_tidy()
    if tidy is None:
        print("run_clang_tidy: clang-tidy not found; skipping "
              "(install clang-tidy or set CLANG_TIDY)", file=sys.stderr)
        return SKIP
    db_path = args.build_dir / "compile_commands.json"
    if not db_path.is_file():
        print(f"run_clang_tidy: {db_path} missing; configure with "
              "CMAKE_EXPORT_COMPILE_COMMANDS=ON (the presets do)",
              file=sys.stderr)
        return SKIP

    root = Path(__file__).resolve().parent.parent
    prefixes = tuple(str(root / p) for p in (args.paths or ["src"]))
    files = sorted(
        entry["file"]
        for entry in json.loads(db_path.read_text())
        if entry["file"].startswith(prefixes)
    )
    if not files:
        print("run_clang_tidy: no matching translation units",
              file=sys.stderr)
        return 2

    def run_one(path: str) -> tuple[str, int, str]:
        proc = subprocess.run(
            [tidy, "-p", str(args.build_dir), "--quiet", path],
            capture_output=True, text=True)
        return path, proc.returncode, proc.stdout + proc.stderr

    failures = 0
    with ThreadPoolExecutor(max_workers=args.jobs) as pool:
        for path, rc, output in pool.map(run_one, files):
            rel = os.path.relpath(path, root)
            if rc != 0 or "warning:" in output or "error:" in output:
                failures += 1
                print(f"--- {rel}")
                print(output.rstrip())
    print(f"run_clang_tidy: {len(files)} TUs, {failures} with findings")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
