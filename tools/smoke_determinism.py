#!/usr/bin/env python3
"""Pin the parallel runtime's determinism guarantee end to end.

Run as the ``cnvsim_determinism`` CTest (see tests/CMakeLists.txt):
executes the same ``cnvsim run --report-json`` experiment with
``--jobs 1`` and ``--jobs 4`` and asserts the two reports are
byte-identical apart from the ``hostProfile`` block (wall-clock host
telemetry, volatile by nature) and the lines carrying the manifest's
``jobs`` field and the ``wallSeconds`` timing — the contract
documented in docs/architecture.md ("Threading model and
determinism"): every result, stat tree, and cache counter must be
invariant under the worker-pool size.

Two experiments run: the wide five-architecture sweep under the
default ideal memory model, and a ``--mem banked`` run over
dadiannao/cnv/cnv2 — the banked hierarchy's conflict, buffer and
DRAM counters must be just as job-count-invariant as the cycle
counts (one `mem::MemoryModel` per (arch, image) task, never shared
across workers).

The JSON writer emits one key per line, so dropping the brace-
balanced ``hostProfile`` block and then filtering whole lines
containing the two volatile keys is exact, not heuristic. (String
values never contain braces in these reports, so brace counting is
safe.)

Usage: smoke_determinism.py CNVSIM OUTDIR
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

VOLATILE_KEYS = ('"jobs"', '"wallSeconds"')

def strip_host_profile(lines: list[str], path: pathlib.Path) -> list[str]:
    """Drop the whole "hostProfile": { ... } block (exactly one)."""
    kept: list[str] = []
    depth = 0
    found = False
    for line in lines:
        if depth > 0:
            depth += line.count("{") - line.count("}")
            if depth <= 0:
                depth = 0
            continue
        if '"hostProfile"' in line:
            found = True
            depth = line.count("{") - line.count("}")
            continue
        kept.append(line)
    if not found:
        print(f"smoke_determinism: no hostProfile block in {path} — "
              "did the report schema change?", file=sys.stderr)
        sys.exit(1)
    return kept


def report_lines(path: pathlib.Path) -> list[str]:
    lines = strip_host_profile(path.read_text().splitlines(), path)
    kept = [l for l in lines
            if not any(key in l for key in VOLATILE_KEYS)]
    dropped = len(lines) - len(kept)
    if dropped != len(VOLATILE_KEYS):
        print(f"smoke_determinism: expected to drop exactly "
              f"{len(VOLATILE_KEYS)} volatile lines from {path}, "
              f"dropped {dropped}", file=sys.stderr)
        sys.exit(1)
    return kept


def compare_pair(cnvsim: str, outdir: pathlib.Path, label: str,
                 extra_args: list[str]) -> int:
    """Run the experiment at --jobs 1 and 4; 0 when identical."""
    reports = {}
    for jobs in (1, 4):
        path = outdir / f"report-{label}-jobs{jobs}.json"
        proc = subprocess.run(
            [cnvsim, "run", "nin", "--images", "2",
             "--seed", "2016", "--jobs", str(jobs),
             *extra_args, "--report-json", str(path)],
            capture_output=True, text=True)
        if proc.returncode != 0:
            print(f"smoke_determinism: {label} --jobs {jobs} run "
                  f"failed (exit {proc.returncode}): {proc.stderr}",
                  file=sys.stderr)
            return 1
        reports[jobs] = report_lines(path)

    if reports[1] != reports[4]:
        for a, b in zip(reports[1], reports[4]):
            if a != b:
                print(f"smoke_determinism: {label}: first divergence:\n"
                      f"  jobs=1: {a}\n  jobs=4: {b}", file=sys.stderr)
                break
        else:
            print(f"smoke_determinism: {label}: line counts differ: "
                  f"{len(reports[1])} vs {len(reports[4])}",
                  file=sys.stderr)
        return 1

    print(f"smoke_determinism: {label}: {len(reports[1])} report "
          "lines byte-identical between --jobs 1 and --jobs 4")
    return 0


def main(argv: list[str]) -> int:
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    cnvsim, outdir = argv[1], pathlib.Path(argv[2])
    outdir.mkdir(parents=True, exist_ok=True)

    failures = compare_pair(
        cnvsim, outdir, "ideal",
        ["--arch", "dadiannao,cnv,cnv2,cnv-pruned,cnv-b8"])
    failures += compare_pair(
        cnvsim, outdir, "banked",
        ["--arch", "dadiannao,cnv,cnv2", "--mem", "banked"])
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
