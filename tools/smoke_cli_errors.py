#!/usr/bin/env python3
"""Smoke-check cnvsim's user-error surfacing.

Run as the ``cnvsim_cli_errors`` CTest (see tests/CMakeLists.txt):
verifies that `cnv::sim::FatalError` and argument mistakes reach the
user as a non-zero exit with a diagnostic on stderr — the contract
docs/development.md documents for embedding scripts — instead of a
crash, a zero exit, or a silent stdout message.

Cases:
  * unknown network        -> exit 1, "fatal:" + the bad name on stderr
  * unknown flag           -> exit 2, usage text on stderr
  * malformed flag value   -> exit 1, diagnostic on stderr
  * missing --net (trace)  -> exit 2, usage text on stderr
  * unwritable report path -> exit 1, "fatal:" + the path on stderr

Usage: smoke_cli_errors.py CNVSIM
"""

from __future__ import annotations

import subprocess
import sys


def run(cnvsim: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run([cnvsim, *args], capture_output=True, text=True)


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    cnvsim = argv[1]
    problems: list[str] = []

    def expect(label: str, proc: subprocess.CompletedProcess,
               code: int, stderr_needles: list[str]) -> None:
        if proc.returncode != code:
            problems.append(
                f"{label}: exit {proc.returncode}, expected {code}")
        for needle in stderr_needles:
            if needle not in proc.stderr:
                problems.append(
                    f"{label}: stderr lacks {needle!r} "
                    f"(stderr was: {proc.stderr!r})")
        if proc.returncode != 0 and not proc.stderr.strip():
            problems.append(f"{label}: non-zero exit but empty stderr")

    expect("unknown network",
           run(cnvsim, "run", "no-such-net", "--images", "1"),
           1, ["fatal:", "no-such-net"])
    expect("unknown flag",
           run(cnvsim, "run", "alex", "--bogus-flag"),
           2, ["usage:"])
    expect("malformed flag value",
           run(cnvsim, "run", "alex", "--images", "notanumber"),
           1, ["error"])
    expect("trace without --net",
           run(cnvsim, "trace", "--images", "1"),
           2, ["usage:"])
    expect("unwritable report path",
           run(cnvsim, "run", "nin", "--images", "1",
               "--report-json", "/nonexistent-dir/report.json"),
           1, ["fatal:", "/nonexistent-dir/report.json"])

    for p in problems:
        print(f"smoke_cli_errors: {p}", file=sys.stderr)
    print(f"smoke_cli_errors: 5 cases, {len(problems)} problem(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
