#!/usr/bin/env python3
"""Smoke-check cnvsim's user-error surfacing.

Run as the ``cnvsim_cli_errors`` CTest (see tests/CMakeLists.txt):
verifies that `cnv::sim::FatalError` and argument mistakes reach the
user as a non-zero exit with a diagnostic on stderr — the contract
docs/development.md documents for embedding scripts — instead of a
crash, a zero exit, or a silent stdout message.

Cases:
  * unknown network        -> exit 1, "fatal:" + the bad name on stderr
  * unknown flag           -> exit 2, usage text on stderr
  * malformed flag value   -> exit 1, diagnostic on stderr
  * unknown --arch id      -> exit 1, "fatal:" + known ids on stderr
  * missing --net (trace)  -> exit 2, usage text on stderr
  * unwritable report path -> exit 1, "fatal:" + the path on stderr
  * non-numeric --jobs     -> exit 2, diagnostic on stderr
  * zero --jobs            -> exit 2, diagnostic on stderr
  * bad --progress value   -> exit 2, diagnostic on stderr
  * empty --perf-json path -> exit 2, diagnostic on stderr
  * bad --mem value        -> exit 2, diagnostic on stderr

With ``--bench BENCH`` a bench binary's shared argument parser
(bench/common.h) is smoked too:
  * non-numeric --images   -> exit 2, diagnostic on stderr
  * non-numeric --seed     -> exit 2, diagnostic on stderr
  * trailing junk (--images 2x) -> exit 2, diagnostic on stderr
  * trailing junk (--jobs 2x)   -> exit 2, diagnostic on stderr
  * zero --jobs            -> exit 2, diagnostic on stderr
  * bad --mem value        -> exit 2, diagnostic on stderr

Usage: smoke_cli_errors.py CNVSIM [--bench BENCH]
"""

from __future__ import annotations

import subprocess
import sys


def run(binary: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run([binary, *args], capture_output=True, text=True)


def main(argv: list[str]) -> int:
    args = argv[1:]
    bench = None
    if "--bench" in args:
        at = args.index("--bench")
        if at + 1 >= len(args):
            print(__doc__, file=sys.stderr)
            return 2
        bench = args[at + 1]
        args = args[:at] + args[at + 2:]
    if len(args) != 1:
        print(__doc__, file=sys.stderr)
        return 2
    cnvsim = args[0]
    problems: list[str] = []

    def expect(label: str, proc: subprocess.CompletedProcess,
               code: int, stderr_needles: list[str]) -> None:
        if proc.returncode != code:
            problems.append(
                f"{label}: exit {proc.returncode}, expected {code}")
        for needle in stderr_needles:
            if needle not in proc.stderr:
                problems.append(
                    f"{label}: stderr lacks {needle!r} "
                    f"(stderr was: {proc.stderr!r})")
        if proc.returncode != 0 and not proc.stderr.strip():
            problems.append(f"{label}: non-zero exit but empty stderr")

    expect("unknown network",
           run(cnvsim, "run", "no-such-net", "--images", "1"),
           1, ["fatal:", "no-such-net"])
    expect("unknown flag",
           run(cnvsim, "run", "alex", "--bogus-flag"),
           2, ["usage:"])
    expect("malformed flag value",
           run(cnvsim, "run", "alex", "--images", "notanumber"),
           1, ["error"])
    expect("unknown --arch id",
           run(cnvsim, "run", "nin", "--images", "1",
               "--arch", "dadiannao,eyeriss"),
           1, ["fatal:", "eyeriss", "dadiannao"])
    expect("trace without --net",
           run(cnvsim, "trace", "--images", "1"),
           2, ["usage:"])
    expect("unwritable report path",
           run(cnvsim, "run", "nin", "--images", "1",
               "--report-json", "/nonexistent-dir/report.json"),
           1, ["fatal:", "/nonexistent-dir/report.json"])
    expect("non-numeric --jobs",
           run(cnvsim, "run", "nin", "--images", "1",
               "--jobs", "notanumber"),
           2, ["invalid value", "--jobs"])
    expect("zero --jobs",
           run(cnvsim, "run", "nin", "--images", "1", "--jobs", "0"),
           2, ["invalid value", "--jobs"])
    expect("bad --progress value",
           run(cnvsim, "run", "nin", "--images", "1",
               "--progress", "bogus"),
           2, ["invalid value", "--progress"])
    expect("empty --perf-json path",
           run(cnvsim, "run", "nin", "--images", "1", "--perf-json", ""),
           2, ["invalid value", "--perf-json"])
    expect("bad --mem value",
           run(cnvsim, "run", "nin", "--images", "1", "--mem", "bogus"),
           2, ["invalid value", "--mem"])

    cases = 11
    if bench is not None:
        expect("bench non-numeric --images",
               run(bench, "--images", "notanumber"),
               2, ["invalid numeric value", "--images"])
        expect("bench non-numeric --seed",
               run(bench, "--seed", "twenty"),
               2, ["invalid numeric value", "--seed"])
        expect("bench trailing junk in --images",
               run(bench, "--images", "2x"),
               2, ["invalid numeric value", "2x"])
        expect("bench trailing junk in --jobs",
               run(bench, "--jobs", "2x"),
               2, ["invalid numeric value", "--jobs"])
        expect("bench zero --jobs",
               run(bench, "--jobs", "0"),
               2, ["invalid numeric value", "--jobs"])
        expect("bench bad --mem value",
               run(bench, "--mem", "bogus"),
               2, ["invalid value", "--mem"])
        cases += 6

    for p in problems:
        print(f"smoke_cli_errors: {p}", file=sys.stderr)
    print(f"smoke_cli_errors: {cases} cases, {len(problems)} problem(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
