#!/usr/bin/env python3
"""Smoke the host-telemetry surface end to end.

Run as the ``cnvsim_perf_smoke`` CTest (see tests/CMakeLists.txt):
executes the acceptance pipeline

    cnvsim run --net nin --arch dadiannao,cnv,cnv2 --jobs 4 \\
        --perf-json perf.json

and asserts the ``cnv-perf-v1`` artifact honours its documented
contract (docs/observability.md, "Host telemetry"):

  * schema/manifest shape — ``cnv-perf-v1`` with the run-report
    manifest fields;
  * phase coverage — the ScopedPhase timers account for >= 90% of
    hostProfile.totalSeconds (nothing substantial un-instrumented);
  * trace cache — tensorMisses > 0, countMapHits > 0 (cnv and cnv2
    share one count-map entry, so a multi-arch run must hit), and
    hitRate present and in (0, 1];
  * pool — at least two worker lanes (caller + worker0 at --jobs 4),
    each with utilization in [0, 1].

A second run with ``--progress on`` asserts the live meter reaches
stderr (the final line is printed unconditionally when forced on).

Usage: smoke_perf.py CNVSIM OUTDIR
"""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys

RUN_ARGS = ["run", "--net", "nin", "--images", "2",
            "--arch", "dadiannao,cnv,cnv2", "--seed", "2016",
            "--jobs", "4"]
MANIFEST_FIELDS = ("tool", "gitSha", "version", "network", "nodeConfig",
                   "images", "seed", "jobs", "weightSparsity",
                   "wallSeconds")


def main(argv: list[str]) -> int:
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    cnvsim, outdir = argv[1], pathlib.Path(argv[2])
    outdir.mkdir(parents=True, exist_ok=True)
    perf = outdir / "perf.json"

    proc = subprocess.run(
        [cnvsim, *RUN_ARGS, "--perf-json", str(perf)],
        capture_output=True, text=True)
    if proc.returncode != 0:
        print(f"smoke_perf: run failed (exit {proc.returncode}): "
              f"{proc.stderr}", file=sys.stderr)
        return 1

    problems: list[str] = []
    doc = json.loads(perf.read_text())
    if doc.get("schema") != "cnv-perf-v1":
        problems.append(f"schema is {doc.get('schema')!r}")
    manifest = doc.get("manifest", {})
    for field in MANIFEST_FIELDS:
        if field not in manifest:
            problems.append(f"manifest missing '{field}'")
    if manifest.get("network") != "nin":
        problems.append(f"manifest.network is "
                        f"{manifest.get('network')!r}, expected 'nin'")

    hp = doc.get("hostProfile", {})
    total = hp.get("totalSeconds", 0)
    if not total > 0:
        problems.append("hostProfile.totalSeconds is not > 0")
    phases = hp.get("phases", {})
    phase_sum = sum(p.get("seconds", 0) for p in phases.values())
    if total > 0 and phase_sum < 0.9 * total:
        problems.append(
            f"phase coverage {phase_sum / total:.1%} < 90% "
            f"(phases {sorted(phases)} sum {phase_sum:.4f}s of "
            f"{total:.4f}s)")
    if abs(hp.get("phaseCoverage", -1) - (phase_sum / total if total
                                          else 0)) > 0.05:
        problems.append("phaseCoverage disagrees with the phases table")

    cache = hp.get("traceCache", {})
    if not cache.get("tensorMisses", 0) > 0:
        problems.append("traceCache.tensorMisses is not > 0")
    if not cache.get("countMapHits", 0) > 0:
        problems.append("traceCache.countMapHits is not > 0 — cnv and "
                        "cnv2 must share one cached count map")
    rate = cache.get("hitRate")
    if rate is None or not 0.0 < rate <= 1.0:
        problems.append(f"traceCache.hitRate is {rate!r}")

    workers = hp.get("pool", {}).get("workers", {})
    if len(workers) < 2:
        problems.append(f"pool.workers has {len(workers)} lane(s), "
                        "expected >= 2 at --jobs 4")
    for lane, row in workers.items():
        util = row.get("utilization")
        if util is None or not 0.0 <= util <= 1.0:
            problems.append(f"pool.workers.{lane}.utilization is "
                            f"{util!r}")

    # The live meter must reach stderr when forced on (the final
    # line is printed even off-TTY).
    proc = subprocess.run(
        [cnvsim, *RUN_ARGS, "--progress", "on"],
        capture_output=True, text=True)
    if proc.returncode != 0:
        problems.append(f"--progress on run failed "
                        f"(exit {proc.returncode}): {proc.stderr}")
    elif "runs/s" not in proc.stderr or "nin" not in proc.stderr:
        problems.append(f"--progress on produced no meter on stderr "
                        f"(stderr was: {proc.stderr!r})")

    for p in problems:
        print(f"smoke_perf: {p}", file=sys.stderr)
    print(f"smoke_perf: {len(problems)} problem(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
