#!/usr/bin/env python3
"""Unit tests for cnvlint's rules against seeded fixture trees.

Run as the ``cnvlint_selftest`` CTest. The production ``cnvlint``
CTest only proves the real tree is clean — it cannot distinguish "no
violations" from "rules silently broken". This script builds a
throwaway mini-tree with violations seeded at known file:line
positions and asserts each is reported with the right rule tag, then
builds a clean mini-tree and asserts zero findings, exercising:

  * rng-source          rand()/srand()/std::random_device outside
                        src/sim/rng.*, and the rng.* allowlist;
  * unordered-iteration range-for over unordered containers in
                        src/driver and src/sim/stats_export.*, the
                        out-of-scope exemption, and suppression via
                        `cnvlint: allow(...)`;
  * raw-simd            intrinsics headers and raw vector types
                        outside src/core/simd.h, the simd.h
                        allowlist, and suppression;
  * cast-ban            a legacy rule, as an engine regression canary.

Usage: check_cnvlint_rules.py [REPO_ROOT]

Exit status: 0 all expectations hold, 1 a rule failed to fire (or
over-fired), 2 setup error.
"""

from __future__ import annotations

import importlib.util
import sys
import tempfile
from pathlib import Path


def load_cnvlint(repo_root: Path):
    spec = importlib.util.spec_from_file_location(
        "cnvlint", repo_root / "tools" / "cnvlint.py")
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def write(root: Path, rel: str, text: str) -> None:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)


def seed_violating_tree(root: Path) -> dict[tuple[str, int], str]:
    """Create the fixture; return {(file, line): rule} expectations."""
    # Allowlisted randomness owner: must NOT be flagged.
    write(root, "src/sim/rng.h", "\n".join([
        "/** @file Seeded Rng fixture. */",
        "#ifndef CNV_SIM_RNG_H",
        "#define CNV_SIM_RNG_H",
        "#include <random>",
        "inline unsigned entropy() { std::random_device rd; return rd(); }",
        "#endif // CNV_SIM_RNG_H",
    ]) + "\n")
    # Three rng-source violations at lines 2, 3, 4.
    write(root, "src/nn/bad_rng.cc", "\n".join([
        "#include <cstdlib>",
        "int draw() { return std::rand(); }",
        "void reseed() { srand(7u); }",
        "unsigned hw() { std::random_device rd; return rd(); }",
    ]) + "\n")
    # unordered-iteration: flagged at line 5, suppressed at line 8.
    write(root, "src/driver/bad_report.cc", "\n".join([
        "#include <unordered_map>",
        "int sum() {",
        "    std::unordered_map<int, int> counters;",
        "    int total = 0;",
        "    for (const auto &kv : counters)",
        "        total += kv.second;",
        "    // hash order irrelevant: cnvlint: allow(unordered-iteration)",
        "    for (const auto &kv : counters)",
        "        total -= kv.second;",
        "    return total;",
        "}",
    ]) + "\n")
    # stats_export.* is in scope too: flagged at line 4.
    write(root, "src/sim/stats_export.cc", "\n".join([
        "#include <unordered_set>",
        "int count() {",
        "    std::unordered_set<int> keys;",
        "    for (int k : keys) { (void)k; }",
        "    return 0;",
        "}",
    ]) + "\n")
    # Out of the rule's scope: identical loop, must NOT be flagged.
    write(root, "src/timing/ok_iter.cc", "\n".join([
        "#include <unordered_map>",
        "int walk() {",
        "    std::unordered_map<int, int> scratch;",
        "    for (const auto &kv : scratch) { (void)kv; }",
        "    return 0;",
        "}",
    ]) + "\n")
    # Legacy-rule canary: cast-ban at line 2.
    write(root, "src/core/bad_cast.cc", "\n".join([
        "float punned(long bits) {",
        "    return *reinterpret_cast<float *>(&bits);",
        "}",
    ]) + "\n")
    # Allowlisted SIMD owner: raw intrinsics must NOT be flagged.
    write(root, "src/core/simd.h", "\n".join([
        "/** @file Portable SIMD fixture. */",
        "#ifndef CNV_CORE_SIMD_H",
        "#define CNV_CORE_SIMD_H",
        "#include <immintrin.h>",
        "struct VecFixture { __m256i v; };",
        "#endif // CNV_CORE_SIMD_H",
    ]) + "\n")
    # raw-simd violations: include at line 1, x86 type at line 3,
    # NEON type at line 4; suppressed at line 6.
    write(root, "src/timing/bad_simd.cc", "\n".join([
        "#include <immintrin.h>",
        "int lanes() {",
        "    __m256i acc;",
        "    int16x8_t neon;",
        "    // measured, justified: cnvlint: allow(raw-simd)",
        "    __m128i ok;",
        "    return 0;",
        "}",
    ]) + "\n")
    write(root, "docs/observability.md", "# Schema fixture\n")
    return {
        ("src/nn/bad_rng.cc", 2): "rng-source",
        ("src/nn/bad_rng.cc", 3): "rng-source",
        ("src/nn/bad_rng.cc", 4): "rng-source",
        ("src/driver/bad_report.cc", 5): "unordered-iteration",
        ("src/sim/stats_export.cc", 4): "unordered-iteration",
        ("src/core/bad_cast.cc", 2): "cast-ban",
        ("src/timing/bad_simd.cc", 1): "raw-simd",
        ("src/timing/bad_simd.cc", 3): "raw-simd",
        ("src/timing/bad_simd.cc", 4): "raw-simd",
    }


def seed_clean_tree(root: Path) -> None:
    write(root, "src/sim/rng.cc", "\n".join([
        "#include <random>",
        "unsigned seedFromHardware() { std::random_device rd; return rd(); }",
    ]) + "\n")
    write(root, "src/driver/good_report.cc", "\n".join([
        "#include <map>",
        "int sum() {",
        "    std::map<int, int> counters;",
        "    int total = 0;",
        "    for (const auto &kv : counters)",
        "        total += kv.second;",
        "    return total;",
        "}",
    ]) + "\n")
    # unordered-iteration must not fire on either of these, even
    # though both files are in scope and declare unordered names:
    # a classic for-loop whose init clause holds a ternary is not a
    # range-for, and iterating a sorted wrapper's result imposes an
    # order regardless of what was passed in.
    # The portable layer itself: intrinsics are its whole purpose.
    write(root, "src/core/simd.h", "\n".join([
        "/** @file Portable SIMD fixture. */",
        "#ifndef CNV_CORE_SIMD_H",
        "#define CNV_CORE_SIMD_H",
        "#include <immintrin.h>",
        "struct VecFixture { __m128i v; };",
        "#endif // CNV_CORE_SIMD_H",
    ]) + "\n")
    write(root, "src/driver/good_loops.cc", "\n".join([
        "#include <unordered_map>",
        "#include <vector>",
        "std::vector<int> sortedKeys(const std::unordered_map<int, int> &);",
        "int walk(bool flag) {",
        "    std::unordered_map<int, int> counters;",
        "    int total = 0;",
        "    for (int i = flag ? 1 : 0; i < counters.size(); ++i)",
        "        total += i;",
        "    for (int k : sortedKeys(counters))",
        "        total += k;",
        "    return total;",
        "}",
    ]) + "\n")
    write(root, "docs/observability.md", "# Schema fixture\n")


def main(argv: list[str]) -> int:
    repo_root = Path(argv[1]).resolve() if len(argv) > 1 else Path.cwd()
    if not (repo_root / "tools" / "cnvlint.py").is_file():
        print(f"check_cnvlint_rules: {repo_root} has no tools/cnvlint.py",
              file=sys.stderr)
        return 2
    cnvlint = load_cnvlint(repo_root)
    failures: list[str] = []

    with tempfile.TemporaryDirectory(prefix="cnvlint-fixture-") as tmp:
        fixture = Path(tmp)
        expected = seed_violating_tree(fixture)
        linter = cnvlint.Linter(fixture)
        rc = linter.run()
        if rc != 1:
            failures.append(f"violating fixture: expected exit 1, got {rc}")
        for (rel, line), rule in sorted(expected.items()):
            needle = f"{rel}:{line}: [{rule}]"
            if not any(p.startswith(needle) for p in linter.problems):
                failures.append(f"rule {rule} did not fire at {rel}:{line}")
        for problem in linter.problems:
            loc, rule = problem.split(": [", 1)
            rel, line = loc.rsplit(":", 1)
            if expected.get((rel, int(line))) != rule.split("]", 1)[0]:
                failures.append(f"unexpected finding: {problem}")

    with tempfile.TemporaryDirectory(prefix="cnvlint-fixture-") as tmp:
        fixture = Path(tmp)
        seed_clean_tree(fixture)
        linter = cnvlint.Linter(fixture)
        rc = linter.run()
        if rc != 0:
            failures.append(
                f"clean fixture: expected exit 0, got {rc}: "
                + "; ".join(linter.problems))

    for f in failures:
        print(f"check_cnvlint_rules: FAIL: {f}", file=sys.stderr)
    print(f"check_cnvlint_rules: {len(failures)} failure(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
