#!/usr/bin/env python3
"""Perf-regression gate over the committed bench trajectory.

Run as the ``perf_regression`` CTest (see tests/CMakeLists.txt):
compares a fresh ``bench_fig09_speedup --json`` artifact (or a
pre-generated ``--current`` file) against a committed baseline
``BENCH_*.json`` and fails when the run regressed:

  * wall clock:     current hostProfile.totalSeconds must not exceed
                    baseline * (1 + tolerance) + wall-slack seconds.
                    With ``--bench`` the binary is run ``--retries``+1
                    times and the fastest run is compared, so scheduler
                    noise on loaded machines does not flake the gate.
  * model speedups: averageSpeedup / averageCnv2Speedup must not drop
                    below baseline * (1 - tolerance) — these are
                    deterministic, so a drop is a real model change
                    that must come with a re-baseline.
  * cache hit rate: hostProfile.traceCache.hitRate must not drop more
                    than the tolerance (absolute) below baseline — a
                    drop means trace-cache sharing regressed.

``--report-only`` prints the comparison but always exits 0 (the CI
static-checks job uses it: CI machines are not comparable to the
machine that recorded the baseline). ``--self-test`` additionally
verifies the gate can fail: it re-runs the comparison against a
synthetically inflated baseline and asserts regressions are
reported. Re-baselining is documented in docs/development.md.

Usage: check_perf_regression.py --baseline BENCH.json
           (--current CUR.json | --bench BENCH_BINARY)
           [--tolerance 0.15] [--wall-slack 1.0] [--retries 2]
           [--report-only] [--self-test]

Exit status: 0 within tolerance, 1 regression, 2 usage error.
"""

from __future__ import annotations

import argparse
import copy
import json
import pathlib
import subprocess
import sys
import tempfile

# Matches the committed baseline's generation recipe (see
# docs/development.md, "Re-baselining the perf gate").
BENCH_ARGS = ["--quick", "--images", "1", "--jobs", "4"]


def stat_values(node: object, out: dict) -> None:
    """Flatten an exportJson stat tree into {statName: value}."""
    if isinstance(node, dict):
        for name, stat in node.get("stats", {}).items():
            if isinstance(stat, dict) and "value" in stat:
                out[name] = stat["value"]
        for child in node.get("groups", {}).values():
            stat_values(child, out)


def load_artifact(path: pathlib.Path) -> dict:
    doc = json.loads(path.read_text())
    stats: dict = {}
    stat_values(doc.get("data"), stats)
    hp = doc.get("hostProfile", {})
    return {
        "wallSeconds": hp.get("totalSeconds",
                              doc.get("manifest", {}).get("wallSeconds")),
        "averageSpeedup": stats.get("averageSpeedup"),
        "averageCnv2Speedup": stats.get("averageCnv2Speedup"),
        "hitRate": hp.get("traceCache", {}).get("hitRate"),
    }


def compare(base: dict, cur: dict, tolerance: float,
            wall_slack: float) -> list[str]:
    regressions: list[str] = []

    bw, cw = base.get("wallSeconds"), cur.get("wallSeconds")
    if bw and cw:
        limit = bw * (1.0 + tolerance) + wall_slack
        print(f"  wallSeconds        {cw:10.3f} vs baseline {bw:.3f} "
              f"(limit {limit:.3f})")
        if cw > limit:
            regressions.append(
                f"wall clock regressed: {cw:.3f}s > limit {limit:.3f}s "
                f"(baseline {bw:.3f}s + {tolerance:.0%} + "
                f"{wall_slack}s slack)")
    else:
        print("  wallSeconds        unavailable — skipped")

    for key in ("averageSpeedup", "averageCnv2Speedup"):
        bv, cv = base.get(key), cur.get(key)
        if bv is None or cv is None:
            print(f"  {key:18} unavailable — skipped")
            continue
        floor = bv * (1.0 - tolerance)
        print(f"  {key:18} {cv:10.4f} vs baseline {bv:.4f} "
              f"(floor {floor:.4f})")
        if cv < floor:
            regressions.append(
                f"{key} regressed: {cv:.4f} < floor {floor:.4f} "
                f"(baseline {bv:.4f} - {tolerance:.0%})")

    bh, ch = base.get("hitRate"), cur.get("hitRate")
    if bh is not None and ch is not None:
        floor = bh - tolerance
        print(f"  cache hitRate      {ch:10.4f} vs baseline {bh:.4f} "
              f"(floor {floor:.4f})")
        if ch < floor:
            regressions.append(
                f"trace-cache hit rate regressed: {ch:.4f} < "
                f"{floor:.4f} (baseline {bh:.4f} - {tolerance} abs)")
    else:
        print("  cache hitRate      unavailable — skipped")

    return regressions


def run_bench(bench: str, retries: int) -> dict:
    """Run the bench retries+1 times; keep the fastest wall clock."""
    best: dict | None = None
    with tempfile.TemporaryDirectory() as tmp:
        for attempt in range(retries + 1):
            out = pathlib.Path(tmp) / f"bench-{attempt}.json"
            proc = subprocess.run(
                [bench, *BENCH_ARGS, "--json", str(out)],
                capture_output=True, text=True)
            if proc.returncode != 0:
                print(f"check_perf_regression: bench run failed "
                      f"(exit {proc.returncode}): {proc.stderr}",
                      file=sys.stderr)
                sys.exit(2)
            cur = load_artifact(out)
            if best is None or (cur["wallSeconds"] or 0) < \
                    (best["wallSeconds"] or 0):
                best = cur
    assert best is not None
    return best


def self_test(base: dict, cur: dict, tolerance: float,
              wall_slack: float) -> list[str]:
    """The gate must fail against a distorted baseline."""
    problems: list[str] = []

    fast = copy.deepcopy(base)
    if fast.get("wallSeconds") and cur.get("wallSeconds"):
        # A baseline the current wall time cannot be within tolerance
        # of. Compared without the absolute slack (which exists to
        # absorb sub-second noise and would swallow any distortion on
        # a fast machine) — this exercises the wall comparison path,
        # not the production threshold.
        fast["wallSeconds"] = cur["wallSeconds"] / (1.0 + tolerance) / 2.0
        print("self-test: halved-wall baseline (must regress)")
        if not compare(fast, cur, tolerance, 0.0):
            problems.append("gate passed against a halved-wall baseline")

    inflated = copy.deepcopy(base)
    for key in ("averageSpeedup", "averageCnv2Speedup"):
        if inflated.get(key):
            inflated[key] *= 2.0
    if inflated.get("hitRate") is not None:
        inflated["hitRate"] = min(1.0, inflated["hitRate"] + 2 * tolerance)
    print("self-test: inflated-speedup baseline (must regress)")
    if not compare(inflated, cur, tolerance, wall_slack):
        problems.append("gate passed against an inflated-speedup baseline")

    return problems


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        description="perf-regression gate over BENCH_*.json artifacts")
    parser.add_argument("--baseline", required=True, type=pathlib.Path)
    parser.add_argument("--current", type=pathlib.Path)
    parser.add_argument("--bench")
    parser.add_argument("--tolerance", type=float, default=0.15)
    parser.add_argument("--wall-slack", type=float, default=1.0)
    parser.add_argument("--retries", type=int, default=2)
    parser.add_argument("--report-only", action="store_true")
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args(argv[1:])
    if (args.current is None) == (args.bench is None):
        parser.error("exactly one of --current / --bench is required")

    try:
        base = load_artifact(args.baseline)
    except (OSError, json.JSONDecodeError) as err:
        print(f"check_perf_regression: {args.baseline}: {err}",
              file=sys.stderr)
        return 2
    if args.current is not None:
        try:
            cur = load_artifact(args.current)
        except (OSError, json.JSONDecodeError) as err:
            print(f"check_perf_regression: {args.current}: {err}",
                  file=sys.stderr)
            return 2
    else:
        cur = run_bench(args.bench, args.retries)

    print(f"check_perf_regression: current vs {args.baseline.name} "
          f"(tolerance {args.tolerance:.0%}):")
    regressions = compare(base, cur, args.tolerance, args.wall_slack)

    problems = list(regressions)
    if args.self_test:
        problems += self_test(base, cur, args.tolerance, args.wall_slack)

    for p in problems:
        print(f"check_perf_regression: {p}", file=sys.stderr)
    verdict = "ok" if not problems else "REGRESSION"
    print(f"check_perf_regression: {verdict} "
          f"({len(problems)} problem(s))")
    if args.report_only and regressions:
        print("check_perf_regression: report-only mode — not failing",
              file=sys.stderr)
        return 0 if len(problems) == len(regressions) else 1
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
