#!/usr/bin/env python3
"""Smoke-check the ``cnvsim trace`` pipeline end to end.

Run as a CTest check (see tests/CMakeLists.txt): invokes the given
cnvsim binary on a small zoo network, then verifies the trace file is
non-empty, parses as JSON, and carries the documented envelope
(metadata with drop accounting plus a non-empty traceEvents array
with 'M' naming records and 'X' spans).

Usage: smoke_trace.py CNVSIM NETWORK OUT_DIR
"""

import json
import subprocess
import sys
from pathlib import Path


def main(argv: list[str]) -> int:
    if len(argv) != 4:
        print(__doc__, file=sys.stderr)
        return 2
    cnvsim, network, out_dir = argv[1], argv[2], Path(argv[3])
    out_dir.mkdir(parents=True, exist_ok=True)
    trace_path = out_dir / f"{network}-trace.json"
    csv_path = out_dir / f"{network}-stalls.csv"

    cmd = [
        cnvsim, "trace", "--net", network, "--images", "1",
        "--trace-out", str(trace_path), "--stall-csv", str(csv_path),
    ]
    proc = subprocess.run(cmd)
    if proc.returncode != 0:
        print(f"smoke_trace: {' '.join(cmd)} exited {proc.returncode}",
              file=sys.stderr)
        return 1

    text = trace_path.read_text()
    if not text.strip():
        print(f"smoke_trace: {trace_path} is empty", file=sys.stderr)
        return 1
    doc = json.loads(text)

    problems = []
    meta = doc.get("metadata", {})
    for key in ("clockDomain", "maxEvents", "droppedEvents"):
        if key not in meta:
            problems.append(f"metadata lacks {key}")
    events = doc.get("traceEvents", [])
    if not events:
        problems.append("traceEvents is empty")
    phases = {e.get("ph") for e in events}
    if "M" not in phases:
        problems.append("no track-naming 'M' records")
    if "X" not in phases:
        problems.append("no 'X' duration spans")
    if not any(e.get("cat") == "stall" for e in events):
        problems.append("no stall spans")
    if not csv_path.read_text().startswith("scope,layer,reason"):
        problems.append("stall CSV lacks the documented header")

    for p in problems:
        print(f"smoke_trace: {p}", file=sys.stderr)
    print(f"smoke_trace: {len(events)} events, "
          f"{len(problems)} problem(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
