#!/usr/bin/env python3
"""cnvlint — Cnvlutin-specific invariants no generic linter can know.

Run as a CTest check (see tests/CMakeLists.txt) from the repository
root, or pass the root as the first argument. Eleven rules over
``src/**``:

  magic-16      The brick/lane/unit/filter/bank geometry of the paper
                is 16 everywhere, so a bare literal ``16`` in library
                code is almost always a geometry constant in disguise.
                Literal 16s may only appear in the configuration
                headers that *define* the named constants
                (``src/dadiannao/config.h``, ``src/zfnaf/format.h``),
                in ``constexpr`` constant definitions (the definition
                names the value), or in the network-shape tables under
                ``src/nn/zoo/`` (channel counts, not geometry).
  include-guard Header guards follow ``CNV_<PATH>_H`` derived from the
                path under src/ (e.g. src/sim/error.h ->
                CNV_SIM_ERROR_H), with a matching #define.
  error-style   Library code reports failure through
                ``cnv::sim::PanicError``/``FatalError`` (via
                CNV_PANIC/CNV_FATAL/CNV_ASSERT), never ``assert()``,
                ``abort()`` or ``exit()``. ``static_assert`` is fine;
                the CLI entry point (``src/driver/cnvsim_main.cc``)
                may ``exit`` with a usage message.
  cast-ban      ``reinterpret_cast`` and ``const_cast`` are banned —
                use the memcpy helpers in ``tensor/bytes.h`` for byte
                I/O. No current allowlist entries.
  schema-docs   Every JSON field emitted by the exporters
                (``w.key("...")`` literals in src/sim/stats_export.cc
                and src/sim/trace_event.cc) must be documented in
                docs/observability.md, so the wire schema and its
                documentation cannot drift apart.
  arch-dispatch Architecture variants are selected through the
                ``arch::ArchModel`` registry (src/arch/), never by
                dispatching on the ``timing::Arch`` / ``power::Arch``
                enums directly. The enums may appear only inside
                ``src/timing/``, ``src/power/`` (their definitions)
                and ``src/arch/`` (the registry bridge wrapping them).
  raw-thread    All concurrency goes through the deterministic pool
                (``sim::ThreadPool`` / ``sim::parallelFor``), so
                ``std::thread``, ``std::jthread`` and ``std::async``
                are banned outside ``src/sim/parallel.h`` /
                ``src/sim/parallel.cc`` — ad-hoc threads would bypass
                the --jobs limit and the ordered-commit determinism
                guarantee.
  host-timing   All host wall-clock reads go through the metrics
                registry (``sim::MetricsRegistry::nowNanos()``), so
                the ``std::chrono`` clocks are banned outside
                ``src/sim/metrics.h`` / ``src/sim/metrics.cc`` —
                scattered clock reads would fragment the telemetry
                the hostProfile section reports.
  rng-source    All randomness flows from the seeded ``sim::Rng``
                splittable streams, so ``rand()``, ``srand()`` and
                ``std::random_device`` are banned outside
                ``src/sim/rng.h`` / ``src/sim/rng.cc`` — an unseeded
                source would silently break run-to-run
                reproducibility and the determinism smoke test.
  raw-simd      All vector code goes through the portable layer in
                ``src/core/simd.h`` (the one file allowed to include
                intrinsics headers and name ``__m128``/``__m256``/
                NEON vector types). Scattered intrinsics would
                bypass the CNV_SIMD=OFF scalar fallback and the
                backend-equivalence guarantee the reports rely on.
  unordered-iteration
                Range-for over ``std::unordered_map`` /
                ``std::unordered_set`` is banned in ``src/driver``
                and ``src/sim/stats_export.*`` — hash-order
                iteration there leaks nondeterministic ordering
                straight into reports and exported JSON/CSV. Sort
                the keys first (see the snapshot pattern in
                stats_export.cc).

Suppressions: append ``// cnvlint: allow(<rule>)`` (with an optional
— justification) to the offending line or the line directly above
it. Every suppression in the tree must be justified; the policy and
current inventory live in docs/development.md.

Exit status: 0 clean, 1 findings, 2 usage/setup error.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# Files whose whole purpose is defining the named geometry constants.
MAGIC16_FILE_ALLOWLIST = {
    "src/dadiannao/config.h",
    "src/zfnaf/format.h",
}
# Network-definition tables: literal channel counts, not geometry.
MAGIC16_DIR_ALLOWLIST = ("src/nn/zoo/",)

# The CLI front end may exit() after printing usage.
ERROR_STYLE_ALLOWLIST = {
    "src/driver/cnvsim_main.cc": {"exit"},
}

SCHEMA_SOURCES = (
    "src/sim/stats_export.cc",
    "src/sim/trace_event.cc",
    "src/sim/metrics.cc",
)
SCHEMA_DOC = "docs/observability.md"

# Directories where the timing/power Arch enums are legitimately
# visible: their defining modules plus the registry that wraps them.
ARCH_DISPATCH_DIR_ALLOWLIST = ("src/timing/", "src/power/", "src/arch/")

# The one module allowed to own threads: the deterministic pool.
RAW_THREAD_FILE_ALLOWLIST = {
    "src/sim/parallel.h",
    "src/sim/parallel.cc",
}

# The one file allowed raw SIMD: the portable dispatch layer.
RAW_SIMD_FILE_ALLOWLIST = {
    "src/core/simd.h",
}

# The one module allowed to read the host clock: the metrics registry.
HOST_TIMING_FILE_ALLOWLIST = {
    "src/sim/metrics.h",
    "src/sim/metrics.cc",
}

# The one module allowed to source randomness: the seeded Rng streams.
RNG_SOURCE_FILE_ALLOWLIST = {
    "src/sim/rng.h",
    "src/sim/rng.cc",
}

# Where hash-order iteration would leak into user-visible output.
UNORDERED_ITER_SCOPE = ("src/driver/", "src/sim/stats_export.")

SUPPRESS = re.compile(r"cnvlint:\s*allow\(([a-z0-9-]+)\)")
ARCH_ENUM = re.compile(r"\b(?:timing|power)::Arch\b")
RAW_THREAD = re.compile(r"\bstd::(thread|jthread|async)\b")
SIMD_INCLUDE = re.compile(
    r"#\s*include\s*<((?:[a-z0-9]*intrin|arm_neon|arm_acle|arm_sve)\.h)>"
)
SIMD_TYPE = re.compile(
    r"\b(__m(?:64|128|256|512)[di]?"
    r"|(?:u?int|float|poly)(?:8|16|32|64)x\d+(?:x\d)?_t)\b"
)
HOST_TIMING = re.compile(
    r"\bstd::chrono::(steady_clock|system_clock|high_resolution_clock)\b"
)
RNG_CALL = re.compile(r"(?<![\w.])(?:std::)?(srand|rand)\s*\(")
RNG_DEVICE = re.compile(r"\bstd::random_device\b")
UNORDERED_DECL = re.compile(
    r"unordered_(?:map|set|multimap|multiset)\s*<[^;={]*>\s+(\w+)\s*[;={(]"
)
# Range-for: the single `:` separating declaration from range. The
# lookarounds keep `::` qualifiers from matching, and the declaration
# part excludes `;` and `?` so a classic for-loop with a ternary in
# its init clause (`for (int i = flag ? 1 : 0; ...)`) is not
# mistaken for a range-for.
RANGE_FOR = re.compile(r"\bfor\s*\([^;)?]*?(?<!:):(?!:)([^)]*)\)")
# A range expression that IS one identifier (optionally parenthesised,
# dereferenced, or reached via qualifiers / member access) — as
# opposed to a call like `sortedKeys(map)` whose result imposes its
# own order. Group 1 is the final identifier.
DIRECT_RANGE = re.compile(
    r"^\s*\(?\s*[*&]?\s*(?:[A-Za-z_]\w*(?:::|\.|->))*([A-Za-z_]\w*)\s*\)?\s*$"
)
BARE_16 = re.compile(r"(?<![\w.])16(?![\w.])")
ERROR_CALLS = re.compile(r"(?<![\w:.])(assert|abort|exit)\s*\(")
BANNED_CASTS = re.compile(r"\b(reinterpret_cast|const_cast)\b")
KEY_LITERAL = re.compile(r'\bkey\("([^"]+)"\)')


def strip_comments(text: str) -> str:
    """Blank out block comments, preserving line structure."""
    return re.sub(
        r"/\*.*?\*/",
        lambda m: "\n" * m.group(0).count("\n"),
        text,
        flags=re.S,
    )


def code_of(line: str) -> str:
    """The code part of one line: no trailing //-comment, no strings."""
    line = re.sub(r'"(?:[^"\\]|\\.)*"', '""', line)
    line = re.sub(r"'(?:[^'\\]|\\.)*'", "''", line)
    return line.split("//")[0]


class Linter:
    def __init__(self, root: Path):
        self.root = root
        self.problems: list[str] = []

    def report(self, path: Path, lineno: int, rule: str, msg: str) -> None:
        rel = path.relative_to(self.root)
        self.problems.append(f"{rel}:{lineno}: [{rule}] {msg}")

    def suppressed(self, lines: list[str], idx: int, rule: str) -> bool:
        """allow(<rule>) on this line or the full-line comment above."""
        for probe in (idx, idx - 1):
            if 0 <= probe < len(lines):
                m = SUPPRESS.search(lines[probe])
                if m and m.group(1) == rule:
                    return True
        return False

    # --- rules ---------------------------------------------------------

    def check_magic16(self, path: Path, lines: list[str]) -> None:
        rel = str(path.relative_to(self.root))
        if rel in MAGIC16_FILE_ALLOWLIST:
            return
        if rel.startswith(MAGIC16_DIR_ALLOWLIST):
            return
        for idx, raw in enumerate(lines):
            code = code_of(raw)
            if not BARE_16.search(code):
                continue
            # A constexpr definition names the value; that is the point.
            if re.search(r"\bconstexpr\b.*=", code):
                continue
            if self.suppressed(lines, idx, "magic-16"):
                continue
            self.report(
                path, idx + 1, "magic-16",
                "bare literal 16 — use the named geometry constant "
                "(NodeConfig field, zfnaf::kPaperBrickSize/kNeuronBits) "
                "or a constexpr definition",
            )

    def check_include_guard(self, path: Path, text: str) -> None:
        rel = path.relative_to(self.root / "src")
        expected = "CNV_" + re.sub(
            r"[^A-Z0-9]", "_", str(rel).upper()
        )
        m = re.search(r"#ifndef\s+(\S+)\s*\n\s*#define\s+(\S+)", text)
        if not m:
            self.report(path, 1, "include-guard",
                        f"missing #ifndef/#define guard {expected}")
            return
        if m.group(1) != expected or m.group(2) != expected:
            self.report(
                path, text[: m.start()].count("\n") + 1, "include-guard",
                f"guard is {m.group(1)}, expected {expected}",
            )

    def check_error_style(self, path: Path, lines: list[str]) -> None:
        rel = str(path.relative_to(self.root))
        allowed = ERROR_STYLE_ALLOWLIST.get(rel, set())
        for idx, raw in enumerate(lines):
            code = code_of(raw)
            for m in ERROR_CALLS.finditer(code):
                name = m.group(1)
                # static_assert is a different (compile-time) animal.
                if name == "assert" and "static_assert" in code:
                    continue
                if name in allowed:
                    continue
                if self.suppressed(lines, idx, "error-style"):
                    continue
                self.report(
                    path, idx + 1, "error-style",
                    f"{name}() in library code — throw via CNV_PANIC/"
                    "CNV_FATAL/CNV_ASSERT (sim/logging.h) so embedders "
                    "and tests can observe the failure",
                )

    def check_cast_ban(self, path: Path, lines: list[str]) -> None:
        for idx, raw in enumerate(lines):
            code = code_of(raw)
            m = BANNED_CASTS.search(code)
            if not m:
                continue
            if self.suppressed(lines, idx, "cast-ban"):
                continue
            self.report(
                path, idx + 1, "cast-ban",
                f"{m.group(1)} — use the memcpy helpers in "
                "tensor/bytes.h (or justify with a suppression)",
            )

    def check_arch_dispatch(self, path: Path, lines: list[str]) -> None:
        rel = str(path.relative_to(self.root))
        if rel.startswith(ARCH_DISPATCH_DIR_ALLOWLIST):
            return
        for idx, raw in enumerate(lines):
            code = code_of(raw)
            m = ARCH_ENUM.search(code)
            if not m:
                continue
            if self.suppressed(lines, idx, "arch-dispatch"):
                continue
            self.report(
                path, idx + 1, "arch-dispatch",
                f"{m.group(0)} outside src/timing, src/power and "
                "src/arch — select architectures through the "
                "arch::ArchModel registry (arch/registry.h)",
            )

    def check_raw_thread(self, path: Path, lines: list[str]) -> None:
        rel = str(path.relative_to(self.root))
        if rel in RAW_THREAD_FILE_ALLOWLIST:
            return
        for idx, raw in enumerate(lines):
            code = code_of(raw)
            m = RAW_THREAD.search(code)
            if not m:
                continue
            if self.suppressed(lines, idx, "raw-thread"):
                continue
            self.report(
                path, idx + 1, "raw-thread",
                f"std::{m.group(1)} outside src/sim/parallel.* — use "
                "sim::ThreadPool / sim::parallelFor so the --jobs "
                "limit and the determinism guarantee hold",
            )

    def check_raw_simd(self, path: Path, lines: list[str]) -> None:
        rel = str(path.relative_to(self.root))
        if rel in RAW_SIMD_FILE_ALLOWLIST:
            return
        for idx, raw in enumerate(lines):
            code = code_of(raw)
            m = SIMD_INCLUDE.search(code) or SIMD_TYPE.search(code)
            if not m:
                continue
            if self.suppressed(lines, idx, "raw-simd"):
                continue
            self.report(
                path, idx + 1, "raw-simd",
                f"{m.group(1)} outside src/core/simd.h — raw "
                "intrinsics bypass the CNV_SIMD dispatch and its "
                "scalar-fallback equivalence guarantee; extend the "
                "portable layer instead",
            )

    def check_host_timing(self, path: Path, lines: list[str]) -> None:
        rel = str(path.relative_to(self.root))
        if rel in HOST_TIMING_FILE_ALLOWLIST:
            return
        for idx, raw in enumerate(lines):
            code = code_of(raw)
            m = HOST_TIMING.search(code)
            if not m:
                continue
            if self.suppressed(lines, idx, "host-timing"):
                continue
            self.report(
                path, idx + 1, "host-timing",
                f"std::chrono::{m.group(1)} outside src/sim/metrics.* "
                "— read the clock through sim::MetricsRegistry::"
                "nowNanos() so all host telemetry shares one epoch",
            )

    def check_rng_source(self, path: Path, lines: list[str]) -> None:
        rel = str(path.relative_to(self.root))
        if rel in RNG_SOURCE_FILE_ALLOWLIST:
            return
        for idx, raw in enumerate(lines):
            code = code_of(raw)
            m = RNG_CALL.search(code) or RNG_DEVICE.search(code)
            if not m:
                continue
            if self.suppressed(lines, idx, "rng-source"):
                continue
            what = (m.group(1) + "()" if m.re is RNG_CALL
                    else "std::random_device")
            self.report(
                path, idx + 1, "rng-source",
                f"{what} outside src/sim/rng.* — draw from the seeded "
                "sim::Rng splittable streams so runs stay reproducible",
            )

    def check_unordered_iteration(self, path: Path,
                                  lines: list[str]) -> None:
        rel = str(path.relative_to(self.root))
        if not rel.startswith(UNORDERED_ITER_SCOPE):
            return
        # Identifiers declared with an unordered container type
        # anywhere in this file (members and locals alike).
        declared = set()
        for raw in lines:
            declared.update(UNORDERED_DECL.findall(code_of(raw)))
        for idx, raw in enumerate(lines):
            code = code_of(raw)
            m = RANGE_FOR.search(code)
            if not m:
                continue
            range_expr = m.group(1)
            # Flag only iteration over the unordered container itself:
            # either the range expression names an unordered type
            # inline, or it is directly an identifier declared with
            # one. An identifier merely appearing inside a larger
            # expression (e.g. `sortedKeys(map)`) is someone imposing
            # an order and must not fire the rule.
            direct = DIRECT_RANGE.match(range_expr)
            if ("unordered_" not in range_expr
                    and not (direct and direct.group(1) in declared)):
                continue
            if self.suppressed(lines, idx, "unordered-iteration"):
                continue
            self.report(
                path, idx + 1, "unordered-iteration",
                "range-for over an unordered container in "
                "report-emitting code — hash order is "
                "nondeterministic; sort the keys first (see the "
                "snapshot pattern in src/sim/stats_export.cc)",
            )

    def check_schema_docs(self) -> None:
        doc_path = self.root / SCHEMA_DOC
        if not doc_path.is_file():
            self.problems.append(f"{SCHEMA_DOC}: missing (schema-docs)")
            return
        doc_words = set(re.findall(r"[A-Za-z_][A-Za-z0-9_]*",
                                   doc_path.read_text()))
        for rel in SCHEMA_SOURCES:
            src = self.root / rel
            if not src.is_file():
                continue  # partial trees (rule self-test fixtures)
            text = strip_comments(src.read_text())
            for idx, line in enumerate(text.splitlines()):
                for m in KEY_LITERAL.finditer(line):
                    field = m.group(1)
                    if field not in doc_words:
                        self.report(
                            src, idx + 1, "schema-docs",
                            f'emitted field "{field}" is not mentioned '
                            f"in {SCHEMA_DOC}",
                        )

    # --- driver --------------------------------------------------------

    def run(self) -> int:
        sources = sorted(
            p for p in (self.root / "src").rglob("*")
            if p.suffix in (".h", ".cc")
        )
        if not sources:
            print("cnvlint: no sources under src/", file=sys.stderr)
            return 2
        for path in sources:
            raw = path.read_text()
            # Block comments blanked; //-comments survive so the
            # suppression scan still sees them (code_of strips them
            # before matching).
            lines = strip_comments(raw).splitlines()
            self.check_magic16(path, lines)
            self.check_error_style(path, lines)
            self.check_cast_ban(path, lines)
            self.check_arch_dispatch(path, lines)
            self.check_raw_thread(path, lines)
            self.check_raw_simd(path, lines)
            self.check_host_timing(path, lines)
            self.check_rng_source(path, lines)
            self.check_unordered_iteration(path, lines)
            if path.suffix == ".h":
                self.check_include_guard(path, raw)
        self.check_schema_docs()

        for p in self.problems:
            print(p, file=sys.stderr)
        print(f"cnvlint: {len(sources)} files, "
              f"{len(self.problems)} problem(s)")
        return 1 if self.problems else 0


def main(argv: list[str]) -> int:
    root = Path(argv[1]) if len(argv) > 1 else Path.cwd()
    if not (root / "src").is_dir():
        print(f"cnvlint: {root} does not look like the repo root",
              file=sys.stderr)
        return 2
    return Linter(root.resolve()).run()


if __name__ == "__main__":
    sys.exit(main(sys.argv))
