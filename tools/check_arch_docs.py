#!/usr/bin/env python3
"""Enforce that every built-in architecture id is documented.

Run as the ``arch_docs_coverage`` CTest (see tests/CMakeLists.txt):
asks the built binary for the registry's ids (``cnvsim archs --ids``,
one bare id per line) and checks that docs/architectures.md carries a
reference section for each — a markdown heading whose text contains
the id in backticks (e.g. ``## `cnv2` — Cnvlutin2``). Registering a
new architecture without writing its manual section fails the suite,
which is the point: the registry and the reference manual move
together.

Also flags the reverse drift: a backticked id in a heading that the
registry no longer knows about.

Usage: check_arch_docs.py CNVSIM DOCS_MD
"""

from __future__ import annotations

import pathlib
import re
import subprocess
import sys


def registry_ids(cnvsim: str) -> list[str]:
    proc = subprocess.run([cnvsim, "archs", "--ids"],
                          capture_output=True, text=True)
    if proc.returncode != 0:
        print(f"check_arch_docs: `{cnvsim} archs --ids` failed "
              f"(exit {proc.returncode}): {proc.stderr}", file=sys.stderr)
        sys.exit(1)
    ids = [line.strip() for line in proc.stdout.splitlines()
           if line.strip()]
    if not ids:
        print("check_arch_docs: registry listed no ids", file=sys.stderr)
        sys.exit(1)
    return ids


def documented_ids(doc: pathlib.Path) -> set[str]:
    ids: set[str] = set()
    for line in doc.read_text().splitlines():
        if not line.startswith("#"):
            continue
        ids.update(re.findall(r"`([a-z0-9-]+)`", line))
    return ids


def main(argv: list[str]) -> int:
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    cnvsim, doc = argv[1], pathlib.Path(argv[2])
    if not doc.is_file():
        print(f"check_arch_docs: missing {doc}", file=sys.stderr)
        return 1

    ids = registry_ids(cnvsim)
    documented = documented_ids(doc)

    problems = []
    for arch_id in ids:
        if arch_id not in documented:
            problems.append(f"registry id '{arch_id}' has no section "
                            f"heading in {doc}")
    for doc_id in sorted(documented - set(ids)):
        problems.append(f"{doc} documents '{doc_id}' which is not a "
                        "registry id (stale section?)")

    for p in problems:
        print(f"check_arch_docs: {p}", file=sys.stderr)
    print(f"check_arch_docs: {len(ids)} registry ids, "
          f"{len(problems)} problem(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
