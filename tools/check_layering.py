#!/usr/bin/env python3
"""Module-layering gate over the src/ include graph.

Run as the ``layering`` CTest (see tests/CMakeLists.txt) from the
repository root. Extracts every ``#include "module/header.h"`` edge
between the modules under ``src/`` and checks the result against the
explicit allowed-dependency matrix below (the machine-readable form
of the layer diagram in docs/architecture.md):

  sim -> {mem, tensor} -> zfnaf -> nn -> dadiannao -> core
      -> {timing, power} -> {arch, pruning} -> driver

with ``sim`` as the base utility layer every module may use, ``mem``
as a leaf component library (memory-hierarchy models over sim only,
consumed by dadiannao, timing, arch and driver), and a
small set of *freestanding headers* (annotation/sync primitives that
include nothing from src/) that any module may include without
creating a layering edge — the freestanding property itself is
verified, so the exemption cannot rot.

Checks, in order:

  1. the matrix covers every module directory under src/;
  2. the matrix itself is acyclic (a cyclic matrix could launder any
     dependency);
  3. every observed include edge is declared in the matrix —
     undeclared cross-module edges are reported file:line;
  4. the observed module graph is acyclic;
  5. when a ``compile_commands.json`` is present (``--build-dir``,
     or auto-detected under build*/), every src/ translation unit
     appears in it — a .cc dropped from the build would silently
     escape every compile-time gate, including -Wthread-safety.

``--dot PATH`` additionally writes the module graph as Graphviz
(observed edges solid and labelled with their include-site count,
declared-but-unused edges dashed); CI renders and uploads it.

``--self-test`` (the mode the CTest runs) first checks the real
tree, then verifies the gate can fail: seeded forbidden edges
(tensor -> driver, mem -> timing, nn -> core) must be reported as
violations, a seeded freestanding violation (core/simd.h including
tensor/tensor.h in a fixture tree) must strip the exemption, a
seeded cycle must be detected, a cyclic matrix must be rejected,
and a fixture compile db must resolve relative "file" entries
against their "directory" while still catching an uncovered TU —
matching the check_perf_regression.py pattern.

Usage: check_layering.py [ROOT] [--build-dir DIR] [--dot PATH]
           [--self-test] [--quiet]

Exit status: 0 clean, 1 violations, 2 usage/setup error.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
import tempfile
from pathlib import Path

# Allowed dependencies: module -> modules it may #include from.
# Keep this in lockstep with the table in docs/architecture.md
# ("Layering: the allowed-dependency matrix"). Edges are explicit
# and non-transitive: allowing timing -> core does not allow
# arch -> core.
ALLOWED = {
    "sim": set(),
    "mem": {"sim"},
    "tensor": {"sim"},
    "zfnaf": {"tensor", "sim"},
    "nn": {"tensor", "sim"},
    "dadiannao": {"mem", "nn", "tensor", "sim"},
    "core": {"zfnaf", "dadiannao", "nn", "tensor", "sim"},
    "timing": {"core", "dadiannao", "zfnaf", "mem", "nn", "tensor",
               "sim"},
    "power": {"dadiannao", "sim"},
    "pruning": {"timing", "dadiannao", "nn", "sim"},
    "arch": {"timing", "power", "dadiannao", "mem", "nn", "sim"},
    "driver": {"arch", "pruning", "timing", "power", "core",
               "dadiannao", "mem", "nn", "zfnaf", "tensor", "sim"},
}

# Headers any module may include without creating a layering edge.
# The exemption is earned, not granted: verify_freestanding() checks
# each one includes nothing from src/ beyond this same set.
# simd.h/arena.h are the kernel layer's primitives (portable SIMD
# dispatch and the bump allocator): nn, tensor and zfnaf consume
# them without acquiring a dependency on the rest of core.
FREESTANDING = {
    "core/thread_annotations.h",
    "core/sync.h",
    "core/simd.h",
    "core/arena.h",
}

INCLUDE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')


class Edge:
    """One observed cross-module include edge with its witness sites."""

    def __init__(self, src_mod: str, dst_mod: str):
        self.src = src_mod
        self.dst = dst_mod
        self.sites: list[str] = []  # "path:line: includes x/y.h"


def module_of(rel: str) -> str | None:
    """src-relative path -> module name (top-level dir), or None."""
    parts = rel.split("/")
    return parts[0] if len(parts) > 1 else None


def extract_edges(src_root: Path, quiet: bool):
    """Scan src/ and return ({(src,dst): Edge}, [problems], files)."""
    problems: list[str] = []
    edges: dict[tuple[str, str], Edge] = {}
    files = sorted(p for p in src_root.rglob("*")
                   if p.suffix in (".h", ".cc"))
    modules = sorted({m.name for m in src_root.iterdir() if m.is_dir()})
    for mod in modules:
        if mod not in ALLOWED:
            problems.append(
                f"src/{mod}: module missing from the allowed-dependency "
                "matrix (tools/check_layering.py ALLOWED; document it in "
                "docs/architecture.md)")
    for path in files:
        rel = path.relative_to(src_root).as_posix()
        mod = module_of(rel)
        if mod is None:
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            m = INCLUDE.match(line)
            if not m:
                continue
            target = m.group(1)
            target_mod = module_of(target)
            if target_mod is None or target_mod == mod:
                continue
            if not (src_root / target).is_file():
                continue  # not a src/ module header (e.g. gtest)
            if target in FREESTANDING and rel not in FREESTANDING:
                continue  # verified-freestanding: no layering edge
            edge = edges.setdefault((mod, target_mod),
                                    Edge(mod, target_mod))
            edge.sites.append(f"src/{rel}:{lineno}: includes {target}")
    if not quiet:
        print(f"layering: {len(files)} files, {len(modules)} modules, "
              f"{len(edges)} distinct module edges")
    return edges, problems, files


def verify_freestanding(src_root: Path) -> list[str]:
    """A freestanding header may include only other freestanding ones."""
    problems = []
    for rel in sorted(FREESTANDING):
        path = src_root / rel
        if not path.is_file():
            problems.append(f"src/{rel}: listed in FREESTANDING but "
                            "missing from the tree")
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            m = INCLUDE.match(line)
            if not m:
                continue
            target = m.group(1)
            if (src_root / target).is_file() and target not in FREESTANDING:
                problems.append(
                    f"src/{rel}:{lineno}: freestanding header includes "
                    f"{target} — it must stay src-include-free to keep "
                    "its layering exemption")
    return problems


def find_cycle(graph: dict[str, set[str]]) -> list[str] | None:
    """Return one cycle as a node list, or None when acyclic."""
    WHITE, GREY, BLACK = 0, 1, 2
    color = {n: WHITE for n in graph}
    stack: list[str] = []

    def visit(n: str) -> list[str] | None:
        color[n] = GREY
        stack.append(n)
        for succ in sorted(graph.get(n, ())):
            if color.get(succ, WHITE) == GREY:
                return stack[stack.index(succ):] + [succ]
            if color.get(succ, WHITE) == WHITE:
                cycle = visit(succ)
                if cycle:
                    return cycle
        stack.pop()
        color[n] = BLACK
        return None

    for node in sorted(graph):
        if color[node] == WHITE:
            cycle = visit(node)
            if cycle:
                return cycle
    return None


def check_edges(edges: dict[tuple[str, str], Edge]) -> list[str]:
    problems = []
    matrix_cycle = find_cycle({m: set(d) for m, d in ALLOWED.items()})
    if matrix_cycle:
        problems.append("allowed-dependency matrix is cyclic: "
                        + " -> ".join(matrix_cycle))
    for (src_mod, dst_mod), edge in sorted(edges.items()):
        if dst_mod not in ALLOWED.get(src_mod, set()):
            first = edge.sites[0]
            more = (f" (+{len(edge.sites) - 1} more sites)"
                    if len(edge.sites) > 1 else "")
            problems.append(
                f"undeclared module edge {src_mod} -> {dst_mod}: "
                f"{first}{more} — either the include is a layering "
                "violation, or the edge must be added to ALLOWED and "
                "docs/architecture.md")
    observed = {m: set() for m in ALLOWED}
    for (src_mod, dst_mod) in edges:
        observed.setdefault(src_mod, set()).add(dst_mod)
    cycle = find_cycle(observed)
    if cycle:
        problems.append("include cycle between modules: "
                        + " -> ".join(cycle))
    return problems


def check_compile_db(root: Path, build_dir: Path | None,
                     quiet: bool) -> list[str]:
    """Every src/ TU must be compiled, else no compile-time gate
    (thread-safety, warnings) ever sees it."""
    candidates = []
    if build_dir:
        candidates.append(build_dir / "compile_commands.json")
    candidates += [root / "build" / "compile_commands.json",
                   root / "build" / "dev" / "compile_commands.json"]
    db_path = next((c for c in candidates if c.is_file()), None)
    if db_path is None:
        if not quiet:
            print("layering: no compile_commands.json found "
                  "(TU-coverage check skipped)")
        return []
    try:
        entries = json.loads(db_path.read_text())
        # "file" may be relative; the spec resolves it against the
        # entry's "directory", never against our own CWD.
        compiled = {
            (Path(e.get("directory", db_path.parent)) / e["file"]).resolve()
            for e in entries
        }
    except (json.JSONDecodeError, KeyError, TypeError) as err:
        return [f"{db_path}: unreadable compile database ({err})"]
    problems = []
    for cc in sorted((root / "src").rglob("*.cc")):
        if cc.resolve() not in compiled:
            problems.append(
                f"{cc.relative_to(root)}: not in {db_path.name} — "
                "translation unit is not built, so compile-time "
                "analyses never see it")
    if not quiet:
        print(f"layering: compile db {db_path} covers "
              f"{len(compiled)} TUs")
    return problems


def write_dot(edges: dict[tuple[str, str], Edge], path: Path) -> None:
    lines = ["digraph cnv_layering {",
             "  rankdir=BT;",
             '  node [shape=box, fontname="Helvetica"];']
    for mod in sorted(ALLOWED):
        lines.append(f'  "{mod}";')
    for (src_mod, dst_mod), edge in sorted(edges.items()):
        lines.append(f'  "{src_mod}" -> "{dst_mod}" '
                     f'[label="{len(edge.sites)}"];')
    for src_mod, deps in sorted(ALLOWED.items()):
        for dst_mod in sorted(deps):
            if (src_mod, dst_mod) not in edges:
                lines.append(f'  "{src_mod}" -> "{dst_mod}" '
                             "[style=dashed, color=gray];")
    lines.append("}")
    path.write_text("\n".join(lines) + "\n")


def self_test(edges: dict[tuple[str, str], Edge]) -> list[str]:
    """Prove the gate can fail: seeded violations must be caught."""
    failures = []

    seeded = dict(edges)
    bad = Edge("tensor", "driver")
    bad.sites.append("src/tensor/tensor.h:1: includes driver/driver.h "
                     "(seeded)")
    seeded[("tensor", "driver")] = bad
    if not any("tensor -> driver" in p for p in check_edges(seeded)):
        failures.append("self-test: seeded forbidden edge "
                        "tensor -> driver was NOT detected")

    # mem must stay a leaf component library: an include of the
    # timing layer from mem would invert the hierarchy.
    seeded = dict(edges)
    bad = Edge("mem", "timing")
    bad.sites.append("src/mem/memory_model.h:1: includes "
                     "timing/network_model.h (seeded)")
    seeded[("mem", "timing")] = bad
    if not any("mem -> timing" in p for p in check_edges(seeded)):
        failures.append("self-test: seeded forbidden edge "
                        "mem -> timing was NOT detected")

    # The kernel layer's tempting shortcut: nn reaching into core
    # proper (anything beyond the freestanding simd/arena headers)
    # would invert the nn <- core hierarchy.
    seeded = dict(edges)
    bad = Edge("nn", "core")
    bad.sites.append("src/nn/kernels.cc:1: includes core/dispatcher.h "
                     "(seeded)")
    seeded[("nn", "core")] = bad
    if not any("nn -> core" in p for p in check_edges(seeded)):
        failures.append("self-test: seeded forbidden edge "
                        "nn -> core was NOT detected")

    # The freestanding exemption must be earned: a FREESTANDING
    # header that includes a non-freestanding src/ header loses it,
    # and verify_freestanding() has to say so.
    with tempfile.TemporaryDirectory(prefix="layering-selftest-") as tmp:
        fake_src = Path(tmp) / "src"
        (fake_src / "core").mkdir(parents=True)
        (fake_src / "tensor").mkdir()
        (fake_src / "tensor" / "tensor.h").write_text("// fixture\n")
        for rel in FREESTANDING:
            (fake_src / rel).parent.mkdir(parents=True, exist_ok=True)
            (fake_src / rel).write_text("// fixture\n")
        (fake_src / "core" / "simd.h").write_text(
            '#include "tensor/tensor.h"\n')
        if not any("core/simd.h" in p
                   for p in verify_freestanding(fake_src)):
            failures.append("self-test: seeded freestanding violation "
                            "(core/simd.h -> tensor/tensor.h) was NOT "
                            "detected")

    cyclic = {m: set(d) for m, d in ALLOWED.items()}
    cyclic["sim"] = {"driver"}
    if find_cycle(cyclic) is None:
        failures.append("self-test: seeded matrix cycle "
                        "sim -> driver -> sim was NOT detected")

    graph = {"a": {"b"}, "b": {"c"}, "c": {"a"}}
    if find_cycle(graph) is None:
        failures.append("self-test: 3-cycle was NOT detected")

    # Compile-db entries with a relative "file" must resolve against
    # their own "directory" (per the compile-db spec), never against
    # this script's CWD — a CWD-dependent resolution would mark every
    # TU missing (or silently cover nothing) depending on where ctest
    # happens to run.
    with tempfile.TemporaryDirectory(prefix="layering-selftest-") as tmp:
        fake = Path(tmp)
        (fake / "src" / "core").mkdir(parents=True)
        (fake / "src" / "core" / "unit.cc").write_text("// fixture\n")
        build = fake / "build"
        build.mkdir()
        (build / "compile_commands.json").write_text(json.dumps([
            {"directory": str(build),
             "file": "../src/core/unit.cc",
             "command": "c++ -c ../src/core/unit.cc"}]))
        if check_compile_db(fake, build, quiet=True):
            failures.append("self-test: relative compile-db entry was "
                            "not resolved against its directory")
        (fake / "src" / "core" / "orphan.cc").write_text("// fixture\n")
        if not check_compile_db(fake, build, quiet=True):
            failures.append("self-test: TU missing from the compile db "
                            "was NOT detected")
    return failures


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("root", nargs="?", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("--build-dir", type=Path, default=None,
                        help="build tree holding compile_commands.json")
    parser.add_argument("--dot", type=Path, default=None,
                        help="write the module graph as Graphviz")
    parser.add_argument("--self-test", action="store_true",
                        help="additionally verify seeded violations "
                             "are caught")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv[1:])

    root = Path(args.root).resolve()
    src_root = root / "src"
    if not src_root.is_dir():
        print(f"layering: {root} does not look like the repo root",
              file=sys.stderr)
        return 2

    edges, problems, _files = extract_edges(src_root, args.quiet)
    problems += verify_freestanding(src_root)
    problems += check_edges(edges)
    problems += check_compile_db(root, args.build_dir, args.quiet)

    if args.dot:
        write_dot(edges, args.dot)
        if not args.quiet:
            print(f"layering: wrote {args.dot}")

    if args.self_test:
        problems += self_test(edges)

    for p in problems:
        print(p, file=sys.stderr)
    print(f"layering: {len(problems)} problem(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
