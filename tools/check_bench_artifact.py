#!/usr/bin/env python3
"""Validate a committed benchmark artifact against cnv-figure-v1.

Run as the ``bench_artifact_schema`` CTest over the checked-in
``BENCH_*.json`` files (the pinned outputs of
``bench_fig09_speedup --json``): parses the JSON and asserts the
shape the docs promise — ``schema`` is ``cnv-figure-v1``, the
``figure`` name and provenance ``manifest`` are present, and the
``data`` stat tree is non-empty. Optional ``--require KEY`` arguments
assert that a named stat appears somewhere in the tree (used to pin
the cnv2 columns into the committed figure). With ``--host-profile``
the artifact must additionally carry a populated ``hostProfile``
block (docs/observability.md, "Host telemetry"): positive
``totalSeconds``, at least one trace-cache tensor miss, and a
non-empty worker table — the fields the perf-regression gate reads.

Usage: check_bench_artifact.py ARTIFACT.json [--require KEY ...]
                               [--host-profile]
"""

from __future__ import annotations

import json
import pathlib
import sys

MANIFEST_FIELDS = ("tool", "gitSha", "version", "images", "seed",
                   "weightSparsity")


def collect_keys(node: object, out: set[str]) -> None:
    if isinstance(node, dict):
        for key, value in node.items():
            out.add(key)
            collect_keys(value, out)
    elif isinstance(node, list):
        for value in node:
            collect_keys(value, out)


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    path = pathlib.Path(argv[1])
    required = [argv[i + 1] for i, a in enumerate(argv)
                if a == "--require" and i + 1 < len(argv)]
    check_host_profile = "--host-profile" in argv

    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as err:
        print(f"check_bench_artifact: {path}: {err}", file=sys.stderr)
        return 1

    problems = []
    if doc.get("schema") != "cnv-figure-v1":
        problems.append(f"schema is {doc.get('schema')!r}, expected "
                        "'cnv-figure-v1'")
    if not doc.get("figure"):
        problems.append("missing 'figure' name")
    manifest = doc.get("manifest")
    if not isinstance(manifest, dict):
        problems.append("missing 'manifest' object")
    else:
        for field in MANIFEST_FIELDS:
            if field not in manifest:
                problems.append(f"manifest missing '{field}'")
    data = doc.get("data")
    if not isinstance(data, dict) or not data:
        problems.append("missing or empty 'data' stat tree")

    keys: set[str] = set()
    collect_keys(data, keys)
    for key in required:
        if key not in keys:
            problems.append(f"required stat '{key}' absent from data")

    if check_host_profile:
        hp = doc.get("hostProfile")
        if not isinstance(hp, dict):
            problems.append("missing 'hostProfile' object")
        else:
            if not hp.get("totalSeconds", 0) > 0:
                problems.append("hostProfile.totalSeconds is not > 0")
            cache = hp.get("traceCache", {})
            if not cache.get("tensorMisses", 0) > 0:
                problems.append(
                    "hostProfile.traceCache.tensorMisses is not > 0")
            if "hitRate" not in cache:
                problems.append("hostProfile.traceCache.hitRate missing")
            workers = hp.get("pool", {}).get("workers", {})
            if not workers:
                problems.append("hostProfile.pool.workers is empty")

    for p in problems:
        print(f"check_bench_artifact: {path}: {p}", file=sys.stderr)
    print(f"check_bench_artifact: {path.name}: {len(problems)} "
          "problem(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
