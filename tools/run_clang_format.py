#!/usr/bin/env python3
"""Formatting gate: ``clang-format --dry-run -Werror`` over the tree.

Run as the ``format_check`` CTest (see tests/CMakeLists.txt) or by
hand from the repo root::

    tools/run_clang_format.py [DIR ...]   (default: src tests bench examples)

Uses the project ``.clang-format``. Exit status: 0 clean, 1 files
need reformatting, 2 setup error, 77 when clang-format is not
installed (CTest reports SKIPPED via SKIP_RETURN_CODE).
"""

from __future__ import annotations

import os
import shutil
import subprocess
import sys
from pathlib import Path

SKIP = 77

CANDIDATES = (
    "clang-format",
    "clang-format-19", "clang-format-18", "clang-format-17",
    "clang-format-16", "clang-format-15", "clang-format-14",
)


def find_clang_format() -> str | None:
    env = os.environ.get("CLANG_FORMAT")
    if env:
        return env if shutil.which(env) else None
    for name in CANDIDATES:
        if shutil.which(name):
            return name
    return None


def main(argv: list[str]) -> int:
    fmt = find_clang_format()
    if fmt is None:
        print("run_clang_format: clang-format not found; skipping "
              "(install clang-format or set CLANG_FORMAT)",
              file=sys.stderr)
        return SKIP

    root = Path(__file__).resolve().parent.parent
    roots = [root / a for a in argv[1:]] or [
        root / d for d in ("src", "tests", "bench", "examples")
    ]
    files = sorted(
        str(f)
        for r in roots
        for pattern in ("*.h", "*.cc", "*.cpp")
        for f in r.rglob(pattern)
    )
    if not files:
        print("run_clang_format: no sources found", file=sys.stderr)
        return 2

    proc = subprocess.run(
        [fmt, "--dry-run", "-Werror", "--style=file", *files],
        cwd=root)
    status = "clean" if proc.returncode == 0 else "NEEDS REFORMAT"
    print(f"run_clang_format: {len(files)} files, {status}")
    return 0 if proc.returncode == 0 else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
