#!/usr/bin/env python3
"""Fail when a public header lacks API documentation.

Run as a CTest check (see tests/CMakeLists.txt) over the stable public
surface (src/sim by default).  Two rules, deliberately simple enough
to stay green without a Doxygen install:

  1. every header starts with a ``/** @file`` comment block, and
  2. every namespace-scope class/struct/enum definition is directly
     preceded by a Doxygen comment (``/** ... */`` or ``///``).

Usage: check_header_docs.py [DIR ...]   (default: src/sim)
"""

import re
import sys
from pathlib import Path

# A type definition at namespace scope (indent 0), not a forward
# declaration ("class X;") and not a macro'd or template-parameter use.
TYPE_DEF = re.compile(
    r"^(?:template\s*<[^;{]*>\s*)?(?:class|struct|enum(?:\s+class)?)\s+"
    r"(\w+)[^;]*$"
)


def check_header(path: Path) -> list[str]:
    problems = []
    text = path.read_text()
    lines = text.splitlines()

    if not re.match(r"\s*/\*\*\s*\n\s*\*?\s*@file", text) and not text.startswith(
        "/** @file"
    ):
        problems.append(f"{path}:1: missing /** @file header comment")

    depth = 0  # brace nesting, so members are skipped
    prev_doc = False
    pending_template = False
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line:
            continue
        if depth == 0 and not line.startswith(("/", "*", "#")):
            m = TYPE_DEF.match(line)
            if m and not (prev_doc or pending_template):
                problems.append(
                    f"{path}:{lineno}: undocumented type '{m.group(1)}'"
                )
            # A bare "template <...>" line carries its doc comment
            # forward to the definition on the next line.
            pending_template = line.startswith("template") and m is None
            if m:
                pending_template = False
        else:
            pending_template = False
        prev_doc = line.endswith("*/") or line.startswith("///")
        depth += raw.count("{") - raw.count("}")
    return problems


def main(argv: list[str]) -> int:
    roots = [Path(a) for a in argv[1:]] or [Path("src/sim")]
    headers = sorted(h for root in roots for h in root.rglob("*.h"))
    if not headers:
        print(f"check_header_docs: no headers under {roots}", file=sys.stderr)
        return 2
    problems = [p for h in headers for p in check_header(h)]
    for p in problems:
        print(p, file=sys.stderr)
    print(
        f"check_header_docs: {len(headers)} headers, "
        f"{len(problems)} problem(s)"
    )
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
