#!/usr/bin/env python3
"""Fail on dead relative links in the markdown docs.

Run as the ``doc_links`` CTest (labelled ``static``, so the CI
static-checks job picks it up): scans the given markdown files for
``[text](target)`` links and verifies every relative target resolves
to an existing file. External links (http/https/mailto) are skipped —
this is a repo-consistency check, not a web crawler. A ``#fragment``
on a local target is checked only for the file part; a bare
``#fragment`` (same-file anchor) is ignored.

Usage: check_doc_links.py FILE.md [FILE.md ...]
"""

from __future__ import annotations

import pathlib
import re
import sys

# Inline markdown links; images share the syntax with a leading '!'.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_SCHEMES = ("http://", "https://", "mailto:")


def check_file(path: pathlib.Path) -> list[str]:
    problems = []
    in_code_block = False
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        if line.lstrip().startswith("```"):
            in_code_block = not in_code_block
            continue
        if in_code_block:
            continue
        for target in LINK.findall(line):
            if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
                continue
            file_part = target.split("#", 1)[0]
            resolved = (path.parent / file_part).resolve()
            if not resolved.exists():
                problems.append(f"{path}:{lineno}: dead link "
                                f"'{target}' ({resolved} missing)")
    return problems


def main(argv: list[str]) -> int:
    files = [pathlib.Path(a) for a in argv[1:]]
    if not files:
        print(__doc__, file=sys.stderr)
        return 2
    problems = []
    for f in files:
        if not f.is_file():
            problems.append(f"{f}: file not found")
            continue
        problems.extend(check_file(f))
    for p in problems:
        print(f"check_doc_links: {p}", file=sys.stderr)
    print(f"check_doc_links: {len(files)} files, "
          f"{len(problems)} problem(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
