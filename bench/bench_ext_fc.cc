/**
 * @file
 * Extension study (Section VII's "broader applicability", off by
 * default): applying CNV-style zero skipping to fully-connected
 * layers as well. FC inputs are post-ReLU conv/pool outputs with
 * comparable sparsity, and a zero activation's synapse column never
 * needs to leave off-chip memory — so FC layers shrink in both
 * compute and memory time. The effect on whole-network speedup is
 * bounded by the FC share of runtime (small for conv-dominated
 * networks, larger for alex/cnnM/cnnS with their 4096-wide stacks).
 */

#include "common.h"

using namespace cnv;

int
main(int argc, char **argv)
{
    const auto opts = bench::parseArgs(argc, argv, 1);

    sim::Table t({"network", "CNV (conv only, paper)",
                  "CNV + FC skipping", "delta"});
    double sums[2] = {0, 0};
    for (auto id : nn::zoo::allNetworks()) {
        double speedups[2];
        int i = 0;
        for (bool fcSkip : {false, true}) {
            driver::ExperimentConfig cfg;
            cfg.images = opts.images;
            cfg.seed = opts.seed;
            cfg.memKind = opts.memKind;
            cfg.node.cnvSkipsFcLayers = fcSkip;
            const auto r = driver::evaluateZooNetwork(cfg, id);
            speedups[i] = r.speedup();
            sums[i] += r.speedup();
            ++i;
        }
        t.addRow({nn::zoo::netName(id), sim::Table::num(speedups[0]),
                  sim::Table::num(speedups[1]),
                  "+" + sim::Table::num(speedups[1] - speedups[0])});
    }
    t.addRow({"average", sim::Table::num(sums[0] / 6),
              sim::Table::num(sums[1] / 6),
              "+" + sim::Table::num((sums[1] - sums[0]) / 6)});
    bench::emit(opts,
                "Extension: CNV zero skipping applied to "
                "fully-connected layers",
                t);
    return 0;
}
