/**
 * @file
 * Figure 10: breakdown of execution activity on the baseline (b)
 * and CNV (c), normalised to the baseline. One event per
 * (unit, neuron lane, cycle), each in exactly one category:
 * other / conv1 / non-zero / zero / stall.
 */

#include "common.h"

using namespace cnv;

namespace {

std::vector<std::string>
breakdownRow(const std::string &label, const dadiannao::Activity &a,
             double norm)
{
    return {label,
            sim::Table::pct(a.other / norm),
            sim::Table::pct(a.conv1 / norm),
            sim::Table::pct(a.nonZero / norm),
            sim::Table::pct(a.zero / norm),
            sim::Table::pct(a.stall / norm),
            sim::Table::pct(a.total() / norm)};
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = bench::parseArgs(argc, argv, 2);

    driver::ExperimentConfig cfg;
    cfg.images = opts.images;
    cfg.seed = opts.seed;
    cfg.memKind = opts.memKind;
    bench::printConfig(cfg.node);

    sim::Table t({"network/arch", "other", "conv1", "non-zero", "zero",
                  "stall", "total (vs. baseline)"});
    sim::StatGroup fig("fig10");
    auto fillActivity = [](sim::StatGroup &g,
                           const dadiannao::Activity &a, double norm) {
        g.addCounter("other", "lane events in non-conv layers") += a.other;
        g.addCounter("conv1", "lane events in the first conv layer") +=
            a.conv1;
        g.addCounter("nonZero", "lane events on non-zero neurons") +=
            a.nonZero;
        g.addCounter("zero", "lane events on zero neurons") += a.zero;
        g.addCounter("stall", "lane events idle on window sync") +=
            a.stall;
        g.addScalar("totalVsBaseline",
                    "total events normalised to the baseline's") =
            static_cast<double>(a.total()) / norm;
    };
    for (auto id : nn::zoo::allNetworks()) {
        const auto report = driver::evaluateZooNetwork(cfg, id);
        const auto &baseAct = report.arch("dadiannao").activity;
        const auto &cnvAct = report.arch("cnv").activity;
        const double norm = static_cast<double>(baseAct.total());
        t.addRow(breakdownRow(std::string(nn::zoo::netName(id)) + " (b)",
                              baseAct, norm));
        t.addRow(breakdownRow(std::string(nn::zoo::netName(id)) + " (c)",
                              cnvAct, norm));

        auto &g = fig.addGroup(std::string(nn::zoo::netName(id)));
        fillActivity(g.addGroup("baseline"), baseAct, norm);
        fillActivity(g.addGroup("cnv"), cnvAct, norm);
    }
    bench::emit(opts,
                "Figure 10: execution activity breakdown, CNV (c) "
                "normalised to baseline (b)",
                t);
    bench::writeFigureArtifact(opts, "fig10_activity", cfg.node, fig);

    std::cout << "\nPaper observations to compare against: conv layers\n"
                 "(conv1 + zero + non-zero) dominate baseline activity on\n"
                 "every network; the first layer averages ~21% of baseline\n"
                 "activity; CNV converts the zero share into elimination\n"
                 "with only a small stall share left.\n";
    return 0;
}
