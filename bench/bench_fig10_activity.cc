/**
 * @file
 * Figure 10: breakdown of execution activity on the baseline (b)
 * and CNV (c), normalised to the baseline. One event per
 * (unit, neuron lane, cycle), each in exactly one category:
 * other / conv1 / non-zero / zero / stall.
 */

#include "common.h"

using namespace cnv;

namespace {

std::vector<std::string>
breakdownRow(const std::string &label, const dadiannao::Activity &a,
             double norm)
{
    return {label,
            sim::Table::pct(a.other / norm),
            sim::Table::pct(a.conv1 / norm),
            sim::Table::pct(a.nonZero / norm),
            sim::Table::pct(a.zero / norm),
            sim::Table::pct(a.stall / norm),
            sim::Table::pct(a.total() / norm)};
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = bench::parseArgs(argc, argv, 2);

    driver::ExperimentConfig cfg;
    cfg.images = opts.images;
    cfg.seed = opts.seed;
    bench::printConfig(cfg.node);

    sim::Table t({"network/arch", "other", "conv1", "non-zero", "zero",
                  "stall", "total (vs. baseline)"});
    for (auto id : nn::zoo::allNetworks()) {
        const auto report = driver::evaluateZooNetwork(cfg, id);
        const double norm =
            static_cast<double>(report.baselineActivity.total());
        t.addRow(breakdownRow(std::string(nn::zoo::netName(id)) + " (b)",
                              report.baselineActivity, norm));
        t.addRow(breakdownRow(std::string(nn::zoo::netName(id)) + " (c)",
                              report.cnvActivity, norm));
    }
    bench::emit(opts,
                "Figure 10: execution activity breakdown, CNV (c) "
                "normalised to baseline (b)",
                t);

    std::cout << "\nPaper observations to compare against: conv layers\n"
                 "(conv1 + zero + non-zero) dominate baseline activity on\n"
                 "every network; the first layer averages ~21% of baseline\n"
                 "activity; CNV converts the zero share into elimination\n"
                 "with only a small stall share left.\n";
    return 0;
}
