/**
 * @file
 * Ablation: sensitivity of the headline result to the assumed zero
 * fraction. The per-network Figure 1 values are calibration targets
 * (DESIGN.md §2); this sweep re-calibrates every network to a range
 * of MAC-weighted zero fractions and reports the average CNV
 * speedup, showing how the paper's conclusion degrades gracefully
 * if real sparsity were lower (and grows if higher). The ideal
 * bound 1/(1 - z) is printed for reference; the gap to it is the
 * first layer, non-conv time, and synchronisation stalls.
 */

#include "common.h"
#include "nn/zoo/zoo.h"
#include "timing/network_model.h"

using namespace cnv;

int
main(int argc, char **argv)
{
    const auto opts = bench::parseArgs(argc, argv, 1);

    sim::Table t({"assumed zero fraction", "avg CNV speedup",
                  "ideal bound 1/(1-z)"});
    for (double target : {0.25, 0.35, 0.44, 0.55, 0.65}) {
        double sum = 0.0;
        for (auto id : nn::zoo::allNetworks()) {
            auto net = nn::zoo::build(id, opts.seed);
            nn::zoo::calibrateSparsity(*net, target);
            net->deriveOutputTargets();
            dadiannao::NodeConfig cfg;
            sum += timing::speedup(cfg, *net, opts.images, opts.seed);
        }
        t.addRow({sim::Table::pct(target) +
                      (target == 0.44 ? " (paper avg)" : ""),
                  sim::Table::num(sum / 6),
                  sim::Table::num(1.0 / (1.0 - target))});
    }
    bench::emit(opts,
                "Ablation: CNV speedup vs assumed conv-layer zero "
                "fraction",
                t);
    return 0;
}
