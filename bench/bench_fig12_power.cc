/**
 * @file
 * Figure 12: average power breakdown (static / dynamic / overall,
 * each split across NM, SB, logic, SRAM), normalised to the
 * baseline total, averaged over the six networks. Activity comes
 * from full network simulations; SB reads are genuinely suppressed
 * while CNV subunits stall, so the SB dynamic saving is a measured
 * result.
 */

#include "common.h"
#include "power/model.h"

using namespace cnv;

int
main(int argc, char **argv)
{
    const auto opts = bench::parseArgs(argc, argv, 1);

    driver::ExperimentConfig cfg;
    cfg.images = opts.images;
    cfg.seed = opts.seed;
    cfg.memKind = opts.memKind;
    bench::printConfig(cfg.node);

    power::PowerBreakdown baseAvg, cnvAvg;
    auto accumulate = [](power::PowerBreakdown &into,
                         const power::PowerBreakdown &p, double w) {
        into.sbStatic += p.sbStatic * w;
        into.sbDynamic += p.sbDynamic * w;
        into.nmStatic += p.nmStatic * w;
        into.nmDynamic += p.nmDynamic * w;
        into.logicStatic += p.logicStatic * w;
        into.logicDynamic += p.logicDynamic * w;
        into.sramStatic += p.sramStatic * w;
        into.sramDynamic += p.sramDynamic * w;
    };

    for (auto id : nn::zoo::allNetworks()) {
        const auto r = driver::evaluateZooNetwork(cfg, id);
        const auto &base = r.arch("dadiannao");
        const auto &cnvAgg = r.arch("cnv");
        accumulate(baseAvg, base.model->power(base.energy, base.cycles),
                   1.0 / 6);
        accumulate(cnvAvg,
                   cnvAgg.model->power(cnvAgg.energy, cnvAgg.cycles),
                   1.0 / 6);
    }

    const double norm = baseAvg.total();
    sim::Table t({"arch", "kind", "NM", "SB", "logic", "SRAM", "total"});
    auto row = [&](const char *arch, const char *kind, double nm, double sb,
                   double lg, double sr) {
        t.addRow({arch, kind, sim::Table::pct(nm / norm),
                  sim::Table::pct(sb / norm), sim::Table::pct(lg / norm),
                  sim::Table::pct(sr / norm),
                  sim::Table::pct((nm + sb + lg + sr) / norm)});
    };
    row("baseline", "static", baseAvg.nmStatic, baseAvg.sbStatic,
        baseAvg.logicStatic, baseAvg.sramStatic);
    row("baseline", "dynamic", baseAvg.nmDynamic, baseAvg.sbDynamic,
        baseAvg.logicDynamic, baseAvg.sramDynamic);
    row("baseline", "overall", baseAvg.nmStatic + baseAvg.nmDynamic,
        baseAvg.sbStatic + baseAvg.sbDynamic,
        baseAvg.logicStatic + baseAvg.logicDynamic,
        baseAvg.sramStatic + baseAvg.sramDynamic);
    row("CNV", "static", cnvAvg.nmStatic, cnvAvg.sbStatic,
        cnvAvg.logicStatic, cnvAvg.sramStatic);
    row("CNV", "dynamic", cnvAvg.nmDynamic, cnvAvg.sbDynamic,
        cnvAvg.logicDynamic, cnvAvg.sramDynamic);
    row("CNV", "overall", cnvAvg.nmStatic + cnvAvg.nmDynamic,
        cnvAvg.sbStatic + cnvAvg.sbDynamic,
        cnvAvg.logicStatic + cnvAvg.logicDynamic,
        cnvAvg.sramStatic + cnvAvg.sramDynamic);
    bench::emit(opts,
                "Figure 12: power breakdown normalised to the baseline",
                t);

    sim::Table headline({"metric", "measured", "paper"});
    headline.addRow(
        {"CNV total power vs baseline",
         sim::Table::num(cnvAvg.total() / norm, 3), "0.93 (7% lower)"});
    headline.addRow(
        {"CNV NM power vs baseline NM",
         sim::Table::num((cnvAvg.nmStatic + cnvAvg.nmDynamic) /
                             (baseAvg.nmStatic + baseAvg.nmDynamic),
                         3),
         "1.53 (+53%)"});
    headline.addRow(
        {"CNV SB dynamic vs baseline SB dynamic",
         sim::Table::num(cnvAvg.sbDynamic / baseAvg.sbDynamic, 3),
         "0.82 (-18%)"});
    headline.addRow({"baseline NM share of total",
                     sim::Table::pct((baseAvg.nmStatic + baseAvg.nmDynamic) /
                                     norm),
                     "22%"});
    bench::emit(opts, "Figure 12 headline comparisons", headline);
    return 0;
}
