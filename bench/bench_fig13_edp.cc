/**
 * @file
 * Figure 13: EDP and ED^2P improvement of CNV over DaDianNao per
 * network. Following the paper's arithmetic, EDP is computed as
 * average-power x delay and ED^2P as average-power x delay^2 (see
 * power/model.h and EXPERIMENTS.md).
 */

#include "common.h"
#include "power/model.h"

using namespace cnv;

int
main(int argc, char **argv)
{
    const auto opts = bench::parseArgs(argc, argv, 1);

    driver::ExperimentConfig cfg;
    cfg.images = opts.images;
    cfg.seed = opts.seed;
    cfg.memKind = opts.memKind;
    bench::printConfig(cfg.node);

    sim::Table t({"network", "speedup", "EDP improvement",
                  "ED^2P improvement"});
    double sumEdp = 0.0, sumEd2p = 0.0;
    for (auto id : nn::zoo::allNetworks()) {
        const auto r = driver::evaluateZooNetwork(cfg, id);
        const auto &base = r.arch("dadiannao");
        const auto &cnvAgg = r.arch("cnv");
        const auto mb = base.model->metrics(base.energy, base.cycles);
        const auto mc =
            cnvAgg.model->metrics(cnvAgg.energy, cnvAgg.cycles);
        const double edp = mb.edp / mc.edp;
        const double ed2p = mb.ed2p / mc.ed2p;
        sumEdp += edp;
        sumEd2p += ed2p;
        t.addRow({nn::zoo::netName(id), sim::Table::num(r.speedup()),
                  sim::Table::num(edp), sim::Table::num(ed2p)});
    }
    t.addRow({"average", "", sim::Table::num(sumEdp / 6),
              sim::Table::num(sumEd2p / 6)});
    t.addRow({"paper average", "1.37", "1.47", "2.01"});
    bench::emit(opts,
                "Figure 13: EDP and ED^2P improvement of CNV over "
                "DaDianNao",
                t);
    return 0;
}
