/**
 * @file
 * Figure 9: speedup of CNV over the DaDianNao baseline, with only
 * zero-valued neurons skipped (CNV) and with the lossless dynamic
 * pruning thresholds of Table II also applied (CNV + Pruning).
 * Also reports cnv2 (Cnvlutin2 ineffectual-weight skipping, not in
 * the original figure) alongside, so the artifact captures the full
 * three-architecture comparison.
 */

#include <fstream>

#include "arch/registry.h"
#include "common.h"
#include "driver/trace_pipeline.h"
#include "mem/memory_model.h"
#include "pruning/explore.h"
#include "timing/network_model.h"
#include "timing/trace_cache.h"

using namespace cnv;

namespace {

/**
 * Per-network Figure 9 bars. The text states only google (1.24,
 * minimum), cnnS (1.55, maximum) and the 1.37 average; the other
 * bars are read off the figure approximately.
 */
double
paperCnv(nn::zoo::NetId id)
{
    switch (id) {
      case nn::zoo::NetId::Alex: return 1.35;
      case nn::zoo::NetId::Google: return 1.24;
      case nn::zoo::NetId::Nin: return 1.28;
      case nn::zoo::NetId::Vgg19: return 1.40;
      case nn::zoo::NetId::CnnM: return 1.40;
      case nn::zoo::NetId::CnnS: return 1.55;
    }
    return 1.37;
}

double
paperCnvPruned(nn::zoo::NetId id)
{
    // Table II's "Speedup" column.
    switch (id) {
      case nn::zoo::NetId::Alex: return 1.53;
      case nn::zoo::NetId::Google: return 1.37;
      case nn::zoo::NetId::Nin: return 1.39;
      case nn::zoo::NetId::Vgg19: return 1.57;
      case nn::zoo::NetId::CnnM: return 1.56;
      case nn::zoo::NetId::CnnS: return 1.75;
    }
    return 1.52;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = bench::parseArgs(argc, argv, 2);

    driver::ExperimentConfig cfg;
    cfg.images = opts.images;
    cfg.seed = opts.seed;
    cfg.memKind = opts.memKind;
    bench::printConfig(cfg.node);

    pruning::SearchOptions search;
    search.accuracyImages = opts.quick ? 4 : 10;
    search.timingImages = 1;
    search.seed = opts.seed + 7;

    const auto threeArchs =
        arch::builtin().select("dadiannao,cnv,cnv2");
    sim::Table t({"network", "CNV", "paper CNV (approx)", "CNV2",
                  "CNV banked ovh.", "CNV+Pruning",
                  "paper CNV+Pruning"});
    sim::StatGroup fig("fig09");
    sim::TraceSink trace;
    std::uint32_t tracePid = 1;
    // One trace cache across the main sweep and the banked
    // comparison runs: synthesis keys are memory-model-independent,
    // so the extra runs hit instead of resynthesizing.
    timing::TraceCache cache;
    double sumPlain = 0.0, sumCnv2 = 0.0, sumPruned = 0.0;
    double sumBankedOvh = 0.0;
    for (auto id : nn::zoo::allNetworks()) {
        const auto net = nn::zoo::build(id, cfg.seed);
        const auto plain = driver::evaluateNetworkArchs(
            cfg, *net, threeArchs, nullptr, &cache);
        const double cnv2Speedup = plain.speedupOf("dadiannao", "cnv2");

        // Banked-vs-ideal CNV comparison: one extra CNV-only run
        // with the memory model the main sweep did not use, so the
        // artifact always carries both cycle counts regardless of
        // the --mem selection.
        const bool mainBanked = cfg.memKind == mem::Kind::Banked;
        driver::ExperimentConfig altCfg = cfg;
        altCfg.memKind =
            mainBanked ? mem::Kind::Ideal : mem::Kind::Banked;
        const auto alt = driver::evaluateNetworkArchs(
            altCfg, *net, arch::builtin().select("cnv"), nullptr,
            &cache);
        const std::uint64_t cnvIdealCycles =
            (mainBanked ? alt : plain).arch("cnv").cycles;
        const std::uint64_t cnvBankedCycles =
            (mainBanked ? plain : alt).arch("cnv").cycles;
        const double bankedOverhead =
            static_cast<double>(cnvBankedCycles) /
            static_cast<double>(cnvIdealCycles);

        if (!opts.traceOut.empty()) {
            // One timeline per (network, architecture) pair, on the
            // manifest's root seed like the driver reports.
            timing::RunOptions ropts;
            ropts.imageSeed = cfg.seed;
            ropts.memKind = cfg.memKind;
            for (const char *archId : {"cnv", "cnv2", "dadiannao"}) {
                const auto &model = arch::builtin().get(archId);
                driver::appendNetworkTrace(
                    trace, model.simulateNetwork(cfg.node, *net, ropts),
                    tracePid++,
                    sim::strfmt("{} ({})", archId, net->name()));
            }
        }

        double pruned = plain.speedup();
        if (!opts.quick) {
            auto accNet = nn::zoo::build(id, cfg.seed, cfg.accuracyScale);
            accNet->calibrate();
            const auto point =
                pruning::searchLossless(cfg.node, *net, *accNet, search);
            const auto prunedReport =
                driver::evaluateNetwork(cfg, *net, &point.config);
            pruned = prunedReport.speedup();
        }

        sumPlain += plain.speedup();
        sumCnv2 += cnv2Speedup;
        sumPruned += pruned;
        sumBankedOvh += bankedOverhead;
        t.addRow({nn::zoo::netName(id),
                  sim::Table::num(plain.speedup()),
                  sim::Table::num(paperCnv(id)),
                  sim::Table::num(cnv2Speedup),
                  sim::Table::num(bankedOverhead),
                  opts.quick ? "(skipped)" : sim::Table::num(pruned),
                  sim::Table::num(paperCnvPruned(id))});

        auto &g = fig.addGroup(std::string(nn::zoo::netName(id)));
        g.addCounter("baselineCycles", "baseline cycles over images") +=
            plain.arch("dadiannao").cycles;
        g.addCounter("cnvCycles", "CNV cycles over images") +=
            plain.arch("cnv").cycles;
        g.addCounter("cnv2Cycles", "Cnvlutin2 cycles over images") +=
            plain.arch("cnv2").cycles;
        g.addCounter("cnvBankedCycles",
                     "CNV cycles over images under --mem banked") +=
            cnvBankedCycles;
        g.addScalar("bankedOverhead",
                    "CNV banked-over-ideal cycle ratio") = bankedOverhead;
        g.addScalar("speedup", "measured CNV speedup") = plain.speedup();
        g.addScalar("cnv2Speedup", "measured Cnvlutin2 speedup") =
            cnv2Speedup;
        g.addScalar("paperSpeedup", "paper's Figure 9 bar (approx)") =
            paperCnv(id);
        if (!opts.quick)
            g.addScalar("prunedSpeedup", "measured CNV+Pruning speedup") =
                pruned;
        g.addScalar("paperPrunedSpeedup", "paper's Table II speedup") =
            paperCnvPruned(id);
    }
    t.addRow({"average", sim::Table::num(sumPlain / 6), "1.37",
              sim::Table::num(sumCnv2 / 6),
              sim::Table::num(sumBankedOvh / 6),
              opts.quick ? "(skipped)" : sim::Table::num(sumPruned / 6),
              "1.52"});
    fig.addScalar("averageSpeedup", "arithmetic mean of CNV speedups") =
        sumPlain / 6;
    fig.addScalar("averageCnv2Speedup",
                  "arithmetic mean of Cnvlutin2 speedups") = sumCnv2 / 6;
    fig.addScalar("averageBankedOverhead",
                  "arithmetic mean of CNV banked-over-ideal ratios") =
        sumBankedOvh / 6;
    if (!opts.quick)
        fig.addScalar("averagePrunedSpeedup",
                      "arithmetic mean of CNV+Pruning speedups") =
            sumPruned / 6;
    bench::emit(opts, "Figure 9: speedup of CNV over the baseline", t);
    bench::writeFigureArtifact(opts, "fig09_speedup", cfg.node, fig);
    if (!opts.traceOut.empty()) {
        std::ofstream os(opts.traceOut);
        if (!os) {
            std::cerr << "cannot open trace file " << opts.traceOut
                      << '\n';
            return 1;
        }
        trace.writeJson(os, {sim::TraceArg("tool", "bench_fig09_speedup"),
                             sim::TraceArg("seed", opts.seed)});
        std::cout << "wrote " << trace.events().size()
                  << " trace events to " << opts.traceOut << '\n';
    }
    return 0;
}
