/**
 * @file
 * Figure 1 + Table I: the networks under study and the average
 * fraction of convolutional-layer multiplication operands that are
 * zero-valued neurons, with variation across input images. Also
 * reproduces Section II's zero-position stability observation (no
 * neuron is always zero across inputs; almost none are zero with
 * very high probability).
 */

#include <cmath>
#include <vector>

#include "common.h"
#include "nn/trace.h"
#include "nn/zoo/zoo.h"
#include "zfnaf/format.h"

using namespace cnv;

namespace {

/** Paper Figure 1 values for side-by-side comparison. */
double
paperZeroFraction(nn::zoo::NetId id)
{
    return nn::zoo::zeroOperandTarget(id);
}

void
tableOne(const bench::Options &opts)
{
    sim::Table t({"network", "conv layers", "source (paper Table I)"});
    const char *sources[] = {
        "Caffe: bvlc_reference_caffenet",
        "Caffe: bvlc_googlenet",
        "Model Zoo: NIN-imagenet",
        "Model Zoo: VGG 19-layer",
        "Model Zoo: VGG_CNN_M_2048",
        "Model Zoo: VGG_CNN_S",
    };
    int i = 0;
    for (auto id : nn::zoo::allNetworks()) {
        const auto net = nn::zoo::build(id, opts.seed);
        t.addRow({nn::zoo::netName(id),
                  std::to_string(net->convLayerCount()), sources[i++]});
    }
    bench::emit(opts, "Table I: networks used", t);
}

void
figureOne(const bench::Options &opts)
{
    sim::Table t({"network", "zero operands (measured)", "stddev",
                  "paper (Fig. 1)"});
    double sum = 0.0;
    for (auto id : nn::zoo::allNetworks()) {
        const auto net = nn::zoo::build(id, opts.seed);
        double mean = 0.0, sq = 0.0;
        for (int i = 0; i < opts.images; ++i) {
            const double f =
                nn::zeroOperandFraction(*net, opts.seed + 100 + i);
            mean += f;
            sq += f * f;
        }
        mean /= opts.images;
        const double var = sq / opts.images - mean * mean;
        sum += mean;
        t.addRow({nn::zoo::netName(id), sim::Table::pct(mean),
                  sim::Table::pct(var > 0 ? std::sqrt(var) : 0.0),
                  sim::Table::pct(paperZeroFraction(id))});
    }
    t.addRow({"average", sim::Table::pct(sum / 6), "", "44.0%"});
    bench::emit(opts,
                "Figure 1: fraction of conv multiplication operands that "
                "are zero neurons",
                t);
}

void
zeroStability(const bench::Options &opts)
{
    // Section II: zero positions move with the input. Measure, on a
    // representative mid-network layer input, the fraction of neuron
    // positions that are zero in >= 99% of images and in all images.
    const auto net = nn::zoo::build(nn::zoo::NetId::Alex, opts.seed);
    const int node = net->convNodeIds()[2]; // conv3's input
    const int images = std::max(32, opts.images * 8);

    std::vector<int> zeroCount;
    for (int i = 0; i < images; ++i) {
        const auto in =
            nn::synthesizeConvInput(*net, node, opts.seed + 500 + i);
        if (zeroCount.empty())
            zeroCount.assign(in.size(), 0);
        const tensor::Fixed16 *d = in.data();
        for (std::size_t k = 0; k < in.size(); ++k)
            zeroCount[k] += d[k].isZero();
    }
    std::size_t always = 0, mostly = 0;
    for (int c : zeroCount) {
        if (c == images)
            ++always;
        if (c >= static_cast<int>(0.99 * images))
            ++mostly;
    }
    const double n = static_cast<double>(zeroCount.size());

    sim::Table t({"statistic", "measured", "paper (Sec. II)"});
    t.addRow({"neurons zero in every sampled image",
              sim::Table::pct(always / n), "0% over 1000 images (none)"});
    t.addRow({"neurons zero with >=99% probability",
              sim::Table::pct(mostly / n), "0.6% over 1000 images"});
    bench::emit(opts, "Zero-position stability (alex conv3 input)", t);
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = bench::parseArgs(argc, argv, 4);
    tableOne(opts);
    figureOne(opts);
    if (!opts.quick)
        zeroStability(opts);
    return 0;
}
