/**
 * @file
 * Ablation: dispatcher modelling choices (DESIGN.md §5).
 *
 *  1. Empty-brick cost — the default charges one (NM-bank-limited)
 *     cycle per all-zero brick, matching the paper's worst-case
 *     bandwidth remark; the idealised variant skips them for free.
 *  2. Windows in flight — NBout holds 64 entries = 4 windows of
 *     partial sums; fewer windows in flight means more
 *     synchronisation stalls (Section IV-B5).
 */

#include "common.h"

using namespace cnv;

int
main(int argc, char **argv)
{
    const auto opts = bench::parseArgs(argc, argv, 1);

    {
        sim::Table t({"network", "empty brick = 1 cycle (default)",
                      "empty brick free"});
        for (auto id : nn::zoo::allNetworks()) {
            std::vector<std::string> row{nn::zoo::netName(id)};
            for (bool costs : {true, false}) {
                driver::ExperimentConfig cfg;
                cfg.images = opts.images;
                cfg.seed = opts.seed;
                cfg.memKind = opts.memKind;
                cfg.node.emptyBrickCostsCycle = costs;
                const auto r = driver::evaluateZooNetwork(cfg, id);
                row.push_back(sim::Table::num(r.speedup()));
            }
            t.addRow(std::move(row));
        }
        bench::emit(opts, "Ablation: cost of all-zero bricks", t);
    }

    {
        sim::Table t({"network", "1 window", "2 windows",
                      "4 windows (default)", "8 windows"});
        for (auto id : nn::zoo::allNetworks()) {
            std::vector<std::string> row{nn::zoo::netName(id)};
            for (int nbout : {16, 32, 64, 128}) {
                driver::ExperimentConfig cfg;
                cfg.images = opts.images;
                cfg.seed = opts.seed;
                cfg.memKind = opts.memKind;
                cfg.node.nboutEntries = nbout;
                const auto r = driver::evaluateZooNetwork(cfg, id);
                row.push_back(sim::Table::num(r.speedup()));
            }
            t.addRow(std::move(row));
        }
        bench::emit(opts,
                    "Ablation: NBout depth (windows in flight between "
                    "synchronisations)",
                    t);
    }
    return 0;
}
