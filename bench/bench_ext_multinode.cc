/**
 * @file
 * Extension study: multi-node scaling (Section IV-A's "multiple
 * nodes" deployment). Filters partition across nodes, so compute
 * scales until layers run out of filters (N <= 256 x nodes) or the
 * inter-node halo exchange becomes the bottleneck. An Amdahl
 * effect appears at large system sizes: CNV finishes its compute
 * sooner, so the (arch-independent) exchange is exposed earlier and
 * the zero-skipping advantage erodes — faster cores need faster
 * links.
 */

#include "common.h"
#include "timing/multinode.h"

using namespace cnv;

int
main(int argc, char **argv)
{
    const auto opts = bench::parseArgs(argc, argv, 1);

    for (auto arch : {timing::Arch::Baseline, timing::Arch::Cnv}) {
        sim::Table t({"network", "2 nodes", "4 nodes", "8 nodes",
                      "16 nodes"});
        for (auto id : nn::zoo::allNetworks()) {
            const auto net = nn::zoo::build(id, opts.seed);
            std::vector<std::string> row{nn::zoo::netName(id)};
            for (int nodes : {2, 4, 8, 16}) {
                timing::MultiNodeOptions mn;
                mn.nodes = nodes;
                row.push_back(sim::Table::num(timing::multiNodeScaling(
                    dadiannao::NodeConfig{}, mn, *net, arch, opts.seed)));
            }
            t.addRow(std::move(row));
        }
        bench::emit(opts,
                    std::string("Extension: scaling over a single node, ") +
                        timing::archName(arch),
                    t);
    }

    // CNV speedup over the baseline at each system size.
    sim::Table t({"network", "1 node", "4 nodes", "16 nodes"});
    for (auto id : nn::zoo::allNetworks()) {
        const auto net = nn::zoo::build(id, opts.seed);
        std::vector<std::string> row{nn::zoo::netName(id)};
        for (int nodes : {1, 4, 16}) {
            timing::MultiNodeOptions mn;
            mn.nodes = nodes;
            timing::RunOptions ropts;
            ropts.imageSeed = opts.seed;
            const auto base = timing::simulateMultiNode(
                dadiannao::NodeConfig{}, mn, *net,
                timing::Arch::Baseline, ropts);
            const auto cnvRun = timing::simulateMultiNode(
                dadiannao::NodeConfig{}, mn, *net, timing::Arch::Cnv,
                ropts);
            row.push_back(sim::Table::num(
                static_cast<double>(base.totalCycles()) /
                static_cast<double>(cnvRun.totalCycles())));
        }
        t.addRow(std::move(row));
    }
    bench::emit(opts, "Extension: CNV speedup at each system size", t);
    return 0;
}
