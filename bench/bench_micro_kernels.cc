/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot kernels:
 * ZFNAf encode/decode, non-zero count maps, the closed-form conv
 * timing models, trace synthesis, thread-pool scaling, and the
 * conv-trace cache. These guard the throughput that makes the
 * paper-scale experiments (full 224x224 geometries, batches of
 * images, threshold sweeps) tractable.
 */

#include <benchmark/benchmark.h>

#include <cstddef>

#include "nn/trace.h"
#include "nn/zoo/zoo.h"
#include "sim/parallel.h"
#include "sim/rng.h"
#include "timing/conv_model.h"
#include "timing/network_model.h"
#include "timing/trace_cache.h"
#include "zfnaf/format.h"

using namespace cnv;

namespace {

tensor::NeuronTensor
sparseTensor(int x, int y, int z, double zf)
{
    tensor::NeuronTensor t(x, y, z);
    sim::Rng rng(42);
    for (tensor::Fixed16 &v : t)
        v = rng.bernoulli(zf)
            ? tensor::Fixed16{}
            : tensor::Fixed16::fromRaw(
                  static_cast<std::int16_t>(rng.uniformInt(1, 300)));
    return t;
}

void
BM_ZfnafEncode(benchmark::State &state)
{
    const auto t = sparseTensor(56, 56, 256, 0.44);
    for (auto _ : state)
        benchmark::DoNotOptimize(zfnaf::encode(t));
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(t.size()));
}
BENCHMARK(BM_ZfnafEncode);

void
BM_ZfnafDecode(benchmark::State &state)
{
    const auto enc = zfnaf::encode(sparseTensor(56, 56, 256, 0.44));
    for (auto _ : state)
        benchmark::DoNotOptimize(zfnaf::decode(enc));
}
BENCHMARK(BM_ZfnafDecode);

void
BM_NonZeroCountMap(benchmark::State &state)
{
    const auto t = sparseTensor(112, 112, 128, 0.44);
    for (auto _ : state)
        benchmark::DoNotOptimize(zfnaf::nonZeroCountMap(t));
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(t.size()));
}
BENCHMARK(BM_NonZeroCountMap);

void
BM_TraceSynthesis(benchmark::State &state)
{
    nn::SparsityModel model;
    model.zeroFraction = 0.44;
    sim::Rng rng(7);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            nn::synthesizeActivations({56, 56, 256}, model, rng));
    }
}
BENCHMARK(BM_TraceSynthesis);

void
BM_ConvTimingBaseline(benchmark::State &state)
{
    const auto t = sparseTensor(56, 56, 256, 0.44);
    const auto counts = zfnaf::nonZeroCountMap(t);
    nn::ConvParams p;
    p.filters = 256;
    p.fx = p.fy = 3;
    p.stride = 1;
    p.pad = 1;
    const dadiannao::NodeConfig cfg;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            timing::convBaseline(cfg, p, t.shape(), counts, false));
    }
}
BENCHMARK(BM_ConvTimingBaseline);

void
BM_ConvTimingCnv(benchmark::State &state)
{
    const auto t = sparseTensor(56, 56, 256, 0.44);
    const auto counts = zfnaf::nonZeroCountMap(t);
    nn::ConvParams p;
    p.filters = 256;
    p.fx = p.fy = 3;
    p.stride = 1;
    p.pad = 1;
    const dadiannao::NodeConfig cfg;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            timing::convCnv(cfg, p, t.shape(), counts));
    }
}
BENCHMARK(BM_ConvTimingCnv);

// Scaling of sim::parallelFor over the count-map kernel with a
// local pool of Arg() workers. On multi-core CI hardware the Arg(4)
// case should approach 4x the Arg(1) items/second; on a single-core
// box the curve is flat, which is itself worth seeing in the output.
void
BM_ParallelForScaling(benchmark::State &state)
{
    const auto t = sparseTensor(56, 56, 256, 0.44);
    sim::ThreadPool pool(static_cast<int>(state.range(0)));
    constexpr std::size_t kTasks = 16;
    for (auto _ : state) {
        sim::parallelFor(pool, kTasks, [&](std::size_t) {
            benchmark::DoNotOptimize(zfnaf::nonZeroCountMap(t));
        });
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(kTasks));
}
BENCHMARK(BM_ParallelForScaling)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

// Cold path of the conv-trace cache: every iteration misses (fresh
// seed), so this prices one synthesize + count-map computation plus
// the cache bookkeeping around it.
void
BM_TraceCacheMiss(benchmark::State &state)
{
    const auto net = nn::zoo::build(nn::zoo::NetId::Nin, 1);
    const int nodeId = net->convNodeIds().front();
    timing::TraceCache cache;
    const dadiannao::NodeConfig cfg;
    std::uint64_t seed = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.countMap(
            *net, nodeId, seed++, nullptr, nullptr, cfg.brickSize));
    }
}
BENCHMARK(BM_TraceCacheMiss)->Unit(benchmark::kMillisecond);

// Hot path: the same key every iteration, so this prices a lookup —
// the cost every simulateNetwork call after the first pays per conv
// layer when archs share a cache.
void
BM_TraceCacheHit(benchmark::State &state)
{
    const auto net = nn::zoo::build(nn::zoo::NetId::Nin, 1);
    const int nodeId = net->convNodeIds().front();
    timing::TraceCache cache;
    const dadiannao::NodeConfig cfg;
    cache.countMap(*net, nodeId, 1, nullptr, nullptr, cfg.brickSize);
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.countMap(
            *net, nodeId, 1, nullptr, nullptr, cfg.brickSize));
    }
}
BENCHMARK(BM_TraceCacheHit);

void
BM_GoogleNetTimingEndToEnd(benchmark::State &state)
{
    const auto net = nn::zoo::build(nn::zoo::NetId::Google, 1);
    const dadiannao::NodeConfig cfg;
    std::uint64_t seed = 1;
    for (auto _ : state) {
        timing::RunOptions opts;
        opts.imageSeed = seed++;
        benchmark::DoNotOptimize(
            timing::simulateNetwork(cfg, *net, timing::Arch::Cnv, opts));
    }
}
BENCHMARK(BM_GoogleNetTimingEndToEnd)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
