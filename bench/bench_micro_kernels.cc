/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot kernels:
 * ZFNAf encode/decode, non-zero count maps, the closed-form conv
 * timing models, trace synthesis, thread-pool scaling, and the
 * conv-trace cache. These guard the throughput that makes the
 * paper-scale experiments (full 224x224 geometries, batches of
 * images, threshold sweeps) tractable.
 *
 * The *Scalar variants benchmark the scalar reference kernels next
 * to their vectorized counterparts (core/simd.h backends), giving
 * before/after columns for the SIMD hot paths: conv forward, FC
 * forward, non-zero counting and ZFNAf encode.
 */

#include <benchmark/benchmark.h>

#include <cstddef>
#include <vector>

#include "core/arena.h"
#include "nn/kernels.h"
#include "nn/trace.h"
#include "nn/zoo/zoo.h"
#include "sim/parallel.h"
#include "sim/rng.h"
#include "timing/conv_model.h"
#include "timing/network_model.h"
#include "timing/trace_cache.h"
#include "zfnaf/format.h"

using namespace cnv;

namespace {

tensor::NeuronTensor
sparseTensor(int x, int y, int z, double zf)
{
    tensor::NeuronTensor t(x, y, z);
    sim::Rng rng(42);
    for (tensor::Fixed16 &v : t)
        v = rng.bernoulli(zf)
            ? tensor::Fixed16{}
            : tensor::Fixed16::fromRaw(
                  static_cast<std::int16_t>(rng.uniformInt(1, 300)));
    return t;
}

void
BM_ZfnafEncode(benchmark::State &state)
{
    const auto t = sparseTensor(56, 56, 256, 0.44);
    for (auto _ : state)
        benchmark::DoNotOptimize(zfnaf::encode(t));
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(t.size()));
}
BENCHMARK(BM_ZfnafEncode);

// Scalar reference for the same encode: the "before" column for the
// vectorized hot path above.
void
BM_ZfnafEncodeScalar(benchmark::State &state)
{
    const auto t = sparseTensor(56, 56, 256, 0.44);
    for (auto _ : state)
        benchmark::DoNotOptimize(zfnaf::encodeScalar(t));
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(t.size()));
}
BENCHMARK(BM_ZfnafEncodeScalar);

void
BM_ZfnafDecode(benchmark::State &state)
{
    const auto enc = zfnaf::encode(sparseTensor(56, 56, 256, 0.44));
    for (auto _ : state)
        benchmark::DoNotOptimize(zfnaf::decode(enc));
}
BENCHMARK(BM_ZfnafDecode);

void
BM_NonZeroCountMap(benchmark::State &state)
{
    const auto t = sparseTensor(112, 112, 128, 0.44);
    for (auto _ : state)
        benchmark::DoNotOptimize(zfnaf::nonZeroCountMap(t));
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(t.size()));
}
BENCHMARK(BM_NonZeroCountMap);

void
BM_NonZeroCountMapScalar(benchmark::State &state)
{
    const auto t = sparseTensor(112, 112, 128, 0.44);
    for (auto _ : state)
        benchmark::DoNotOptimize(zfnaf::nonZeroCountMapScalar(t));
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(t.size()));
}
BENCHMARK(BM_NonZeroCountMapScalar);

// Conv forward over a paper-scale inner layer, vector kernel vs the
// scalar reference — the tentpole before/after pair.
nn::ConvParams
convBenchParams()
{
    nn::ConvParams p;
    p.filters = 64;
    p.fx = p.fy = 3;
    p.stride = 1;
    p.pad = 1;
    p.relu = true;
    return p;
}

tensor::FilterBank
convBenchFilters(const nn::ConvParams &p, int depth)
{
    tensor::FilterBank w(p.filters, p.fx, p.fy, depth);
    sim::Rng rng(9);
    for (std::size_t i = 0; i < w.size(); ++i) {
        w.data()[i] = tensor::Fixed16::fromRaw(
            static_cast<std::int16_t>(rng.uniformInt(-300, 300)));
    }
    return w;
}

void
BM_ConvForward(benchmark::State &state)
{
    const auto in = sparseTensor(28, 28, 128, 0.44);
    const nn::ConvParams p = convBenchParams();
    const auto w = convBenchFilters(p, in.shape().z);
    const std::vector<tensor::Fixed16> bias(
        static_cast<std::size_t>(p.filters));
    core::Arena arena;
    for (auto _ : state) {
        arena.reset();
        benchmark::DoNotOptimize(
            nn::kernels::convForward(in, w, bias, p, arena));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(in.size()));
}
BENCHMARK(BM_ConvForward)->Unit(benchmark::kMillisecond);

void
BM_ConvForwardScalar(benchmark::State &state)
{
    const auto in = sparseTensor(28, 28, 128, 0.44);
    const nn::ConvParams p = convBenchParams();
    const auto w = convBenchFilters(p, in.shape().z);
    const std::vector<tensor::Fixed16> bias(
        static_cast<std::size_t>(p.filters));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            nn::kernels::convForwardScalar(in, w, bias, p));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(in.size()));
}
BENCHMARK(BM_ConvForwardScalar)->Unit(benchmark::kMillisecond);

void
BM_FcForward(benchmark::State &state)
{
    const auto in = sparseTensor(1, 1, 4096, 0.44);
    nn::FcParams p;
    p.outputs = 1024;
    p.relu = true;
    tensor::FilterBank w(p.outputs, 1, 1, in.shape().z);
    sim::Rng rng(11);
    for (std::size_t i = 0; i < w.size(); ++i) {
        w.data()[i] = tensor::Fixed16::fromRaw(
            static_cast<std::int16_t>(rng.uniformInt(-300, 300)));
    }
    const std::vector<tensor::Fixed16> bias(
        static_cast<std::size_t>(p.outputs));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            nn::kernels::fcForward(in, w, bias, p));
    }
    state.SetItemsProcessed(
        state.iterations() *
        static_cast<std::int64_t>(w.size()));
}
BENCHMARK(BM_FcForward);

void
BM_FcForwardScalar(benchmark::State &state)
{
    const auto in = sparseTensor(1, 1, 4096, 0.44);
    nn::FcParams p;
    p.outputs = 1024;
    p.relu = true;
    tensor::FilterBank w(p.outputs, 1, 1, in.shape().z);
    sim::Rng rng(11);
    for (std::size_t i = 0; i < w.size(); ++i) {
        w.data()[i] = tensor::Fixed16::fromRaw(
            static_cast<std::int16_t>(rng.uniformInt(-300, 300)));
    }
    const std::vector<tensor::Fixed16> bias(
        static_cast<std::size_t>(p.outputs));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            nn::kernels::fcForwardScalar(in, w, bias, p));
    }
    state.SetItemsProcessed(
        state.iterations() *
        static_cast<std::int64_t>(w.size()));
}
BENCHMARK(BM_FcForwardScalar);

void
BM_TraceSynthesis(benchmark::State &state)
{
    nn::SparsityModel model;
    model.zeroFraction = 0.44;
    sim::Rng rng(7);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            nn::synthesizeActivations({56, 56, 256}, model, rng));
    }
}
BENCHMARK(BM_TraceSynthesis);

void
BM_ConvTimingBaseline(benchmark::State &state)
{
    const auto t = sparseTensor(56, 56, 256, 0.44);
    const auto counts = zfnaf::nonZeroCountMap(t);
    nn::ConvParams p;
    p.filters = 256;
    p.fx = p.fy = 3;
    p.stride = 1;
    p.pad = 1;
    const dadiannao::NodeConfig cfg;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            timing::convBaseline(cfg, p, t.shape(), counts, false));
    }
}
BENCHMARK(BM_ConvTimingBaseline);

void
BM_ConvTimingCnv(benchmark::State &state)
{
    const auto t = sparseTensor(56, 56, 256, 0.44);
    const auto counts = zfnaf::nonZeroCountMap(t);
    nn::ConvParams p;
    p.filters = 256;
    p.fx = p.fy = 3;
    p.stride = 1;
    p.pad = 1;
    const dadiannao::NodeConfig cfg;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            timing::convCnv(cfg, p, t.shape(), counts));
    }
}
BENCHMARK(BM_ConvTimingCnv);

// Scaling of sim::parallelFor over the count-map kernel with a
// local pool of Arg() workers. On multi-core CI hardware the Arg(4)
// case should approach 4x the Arg(1) items/second; on a single-core
// box the curve is flat, which is itself worth seeing in the output.
void
BM_ParallelForScaling(benchmark::State &state)
{
    const auto t = sparseTensor(56, 56, 256, 0.44);
    sim::ThreadPool pool(static_cast<int>(state.range(0)));
    constexpr std::size_t kTasks = 16;
    for (auto _ : state) {
        sim::parallelFor(pool, kTasks, [&](std::size_t) {
            benchmark::DoNotOptimize(zfnaf::nonZeroCountMap(t));
        });
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(kTasks));
}
BENCHMARK(BM_ParallelForScaling)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

// Cold path of the conv-trace cache: every iteration misses (fresh
// seed), so this prices one synthesize + count-map computation plus
// the cache bookkeeping around it.
void
BM_TraceCacheMiss(benchmark::State &state)
{
    const auto net = nn::zoo::build(nn::zoo::NetId::Nin, 1);
    const int nodeId = net->convNodeIds().front();
    timing::TraceCache cache;
    const dadiannao::NodeConfig cfg;
    std::uint64_t seed = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.countMap(
            *net, nodeId, seed++, nullptr, nullptr, cfg.brickSize));
    }
}
BENCHMARK(BM_TraceCacheMiss)->Unit(benchmark::kMillisecond);

// Hot path: the same key every iteration, so this prices a lookup —
// the cost every simulateNetwork call after the first pays per conv
// layer when archs share a cache.
void
BM_TraceCacheHit(benchmark::State &state)
{
    const auto net = nn::zoo::build(nn::zoo::NetId::Nin, 1);
    const int nodeId = net->convNodeIds().front();
    timing::TraceCache cache;
    const dadiannao::NodeConfig cfg;
    cache.countMap(*net, nodeId, 1, nullptr, nullptr, cfg.brickSize);
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.countMap(
            *net, nodeId, 1, nullptr, nullptr, cfg.brickSize));
    }
}
BENCHMARK(BM_TraceCacheHit);

void
BM_GoogleNetTimingEndToEnd(benchmark::State &state)
{
    const auto net = nn::zoo::build(nn::zoo::NetId::Google, 1);
    const dadiannao::NodeConfig cfg;
    std::uint64_t seed = 1;
    for (auto _ : state) {
        timing::RunOptions opts;
        opts.imageSeed = seed++;
        benchmark::DoNotOptimize(
            timing::simulateNetwork(cfg, *net, timing::Arch::Cnv, opts));
    }
}
BENCHMARK(BM_GoogleNetTimingEndToEnd)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
