/**
 * @file
 * Figure 11: area breakdown of the baseline and CNV nodes. The
 * component areas are the calibrated model of Section V-C; the CNV
 * scale factors (NM +34%, SRAM +15.8%, total +4.49%) are the
 * paper's synthesis results.
 */

#include "arch/registry.h"
#include "common.h"
#include "power/model.h"

using namespace cnv;

int
main(int argc, char **argv)
{
    const auto opts = bench::parseArgs(argc, argv);

    const auto base = arch::builtin().get("dadiannao").area();
    const auto cnvA = arch::builtin().get("cnv").area();

    sim::Table t({"component", "baseline (mm^2)", "CNV (mm^2)",
                  "CNV/baseline", "paper"});
    auto row = [&](const char *name, double b, double c,
                   const char *paper) {
        t.addRow({name, sim::Table::num(b), sim::Table::num(c),
                  sim::Table::num(c / b, 3), paper});
    };
    row("SB (filter storage)", base.sb, cnvA.sb, "1.000 (unchanged)");
    row("NM (neuron memory)", base.nm, cnvA.nm, "1.34 (+34%)");
    row("logic (units, dispatcher, encoder)", base.logic, cnvA.logic,
        "~1.0 (negligible)");
    row("SRAM (NBin/NBout/offsets)", base.sram, cnvA.sram,
        "1.158 (+15.8%)");
    row("total", base.total(), cnvA.total(), "1.0449 (+4.49%)");
    bench::emit(opts, "Figure 11: area breakdown", t);

    sim::Table shares({"component", "baseline share", "CNV share"});
    auto shareRow = [&](const char *name, double b, double c) {
        shares.addRow({name, sim::Table::pct(b / base.total()),
                       sim::Table::pct(c / cnvA.total())});
    };
    shareRow("SB", base.sb, cnvA.sb);
    shareRow("NM", base.nm, cnvA.nm);
    shareRow("logic", base.logic, cnvA.logic);
    shareRow("SRAM", base.sram, cnvA.sram);
    bench::emit(opts, "Figure 11 (shares): SB dominates both designs",
                shares);
    return 0;
}
