/**
 * @file
 * Ablation: ZFNAf brick size (DESIGN.md §5).
 *
 * The brick size sets the offset-field width (storage overhead: a
 * 16-neuron brick needs 4-bit offsets, +25% NM capacity) and the
 * skip granularity. Smaller bricks skip zeros at finer grain but
 * pay wider relative offset overhead and fewer neuron lanes per
 * unit; larger bricks amortise offsets but coarsen work
 * distribution. Lanes scale with the brick size (one lane drains
 * one brick), so each point is compared against a baseline with the
 * same lane count.
 */

#include "common.h"
#include "sim/error.h"
#include "sim/logging.h"
#include "timing/network_model.h"

using namespace cnv;

int
main(int argc, char **argv)
{
    const auto opts = bench::parseArgs(argc, argv, 1);

    sim::Table t({"brick size", "offset bits", "NM capacity overhead",
                  "avg CNV speedup vs same-lane baseline"});
    for (int brick : {4, 8, 16, 32}) {
        driver::ExperimentConfig cfg;
        cfg.images = opts.images;
        cfg.seed = opts.seed;
        cfg.memKind = opts.memKind;
        cfg.node.brickSize = brick;
        cfg.node.lanes = brick;
        cfg.node.nmBanks = brick; // one bank per lane

        double sum = 0.0;
        int n = 0, skipped = 0;
        for (auto id : nn::zoo::allNetworks()) {
            const auto net = nn::zoo::build(id, cfg.seed);
            // Grouped convolutions whose group depth is not a brick
            // multiple (alex at brick 32) are skipped quietly.
            const auto verbosity = sim::verbosity();
            sim::setVerbosity(sim::Verbosity::Silent);
            try {
                const double s =
                    timing::speedup(cfg.node, *net, cfg.images, cfg.seed);
                sim::setVerbosity(verbosity);
                sum += s;
                ++n;
            } catch (const sim::FatalError &) {
                sim::setVerbosity(verbosity);
                ++skipped;
            }
        }
        sum /= n;
        (void)skipped;
        int offsetBits = 0;
        while ((1 << offsetBits) < brick)
            ++offsetBits;
        offsetBits = std::max(offsetBits, 1);
        t.addRow({std::to_string(brick) + (brick == 16 ? " (paper)" : ""),
                  std::to_string(offsetBits),
                  sim::Table::pct(offsetBits / 16.0),
                  sim::Table::num(sum)});
    }
    bench::emit(opts, "Ablation: ZFNAf brick size", t);
    return 0;
}
