/**
 * @file
 * Shared scaffolding for the reproduction bench binaries: each
 * binary regenerates one table or figure of the paper (see
 * DESIGN.md's per-experiment index) and prints the same rows the
 * paper reports, plus the paper's value for comparison.
 *
 * Options (all optional):
 *   --images N   trace instances per network (default varies)
 *   --seed S     root seed
 *   --csv        emit CSV instead of an aligned table
 *   --quick      minimal work (used for smoke runs)
 */

#ifndef CNV_BENCH_COMMON_H
#define CNV_BENCH_COMMON_H

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

#include "driver/driver.h"
#include "sim/table.h"

namespace cnv::bench {

/** Parsed command-line options shared by all bench binaries. */
struct Options
{
    int images = 2;
    std::uint64_t seed = 2016;
    bool csv = false;
    bool quick = false;
};

inline Options
parseArgs(int argc, char **argv, int defaultImages = 2)
{
    Options opts;
    opts.images = defaultImages;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "missing value for " << arg << '\n';
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--images") {
            opts.images = std::stoi(next());
        } else if (arg == "--seed") {
            opts.seed = std::stoull(next());
        } else if (arg == "--csv") {
            opts.csv = true;
        } else if (arg == "--quick") {
            opts.quick = true;
        } else if (arg == "--help") {
            std::cout << "options: --images N --seed S --csv --quick\n";
            std::exit(0);
        } else {
            std::cerr << "unknown option " << arg << '\n';
            std::exit(2);
        }
    }
    return opts;
}

/** Print the node configuration once, for reproducibility. */
inline void
printConfig(const dadiannao::NodeConfig &cfg)
{
    std::cout << "node: " << cfg.describe() << '\n';
}

/** Print a titled table in the selected format. */
inline void
emit(const Options &opts, const std::string &title, const sim::Table &table)
{
    std::cout << "\n=== " << title << " ===\n";
    if (opts.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    std::cout.flush();
}

} // namespace cnv::bench

#endif // CNV_BENCH_COMMON_H
