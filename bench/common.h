/**
 * @file
 * Shared scaffolding for the reproduction bench binaries: each
 * binary regenerates one table or figure of the paper (see
 * DESIGN.md's per-experiment index) and prints the same rows the
 * paper reports, plus the paper's value for comparison.
 *
 * Options (all optional):
 *   --images N   trace instances per network (default varies)
 *   --seed S     root seed
 *   --csv        emit CSV instead of an aligned table
 *   --quick      minimal work (used for smoke runs)
 *   --json PATH  also write the figure's data as a JSON artifact
 *                (schema "cnv-figure-v1", see docs/observability.md)
 *   --trace-out PATH  write a Chrome trace-event JSON of the runs
 *                (honoured by benches that advertise it in --help)
 *   --jobs N     worker-pool size (default: hardware concurrency or
 *                CNVSIM_JOBS); results are job-count-invariant
 *   --mem M      memory-hierarchy model: 'ideal' (default, keeps the
 *                legacy numbers) or 'banked' (NM banking + global
 *                buffer + DRAM channel)
 */

#ifndef CNV_BENCH_COMMON_H
#define CNV_BENCH_COMMON_H

#include <charconv>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <system_error>
#include <vector>

#include "driver/driver.h"
#include "driver/run_manifest.h"
#include "mem/memory_model.h"
#include "sim/metrics.h"
#include "sim/parallel.h"
#include "sim/stats_export.h"
#include "sim/table.h"

namespace cnv::bench {

/** Parsed command-line options shared by all bench binaries. */
struct Options
{
    int images = 2;
    std::uint64_t seed = 2016;
    bool csv = false;
    bool quick = false;
    /** When non-empty, figure data is also written here as JSON. */
    std::string json;
    /** When non-empty, a trace-event JSON is also written here. */
    std::string traceOut;
    /** Worker-pool size this run was configured with. */
    int jobs = 0;
    /** Memory-hierarchy model (ExperimentConfig::memKind). */
    mem::Kind memKind = mem::Kind::Ideal;
};

inline Options
parseArgs(int argc, char **argv, int defaultImages = 2)
{
    // Accept both "--flag value" and "--flag=value" spellings.
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        const std::size_t eq = a.find('=');
        if (a.rfind("--", 0) == 0 && eq != std::string::npos) {
            args.push_back(a.substr(0, eq));
            args.push_back(a.substr(eq + 1));
        } else {
            args.push_back(a);
        }
    }

    // Benches always profile themselves: the hostProfile block of
    // their --json artifacts is what the perf-regression gate
    // compares across the committed BENCH_* trajectory.
    sim::metrics().setEnabled(true);

    Options opts;
    opts.images = defaultImages;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= args.size()) {
                std::cerr << "missing value for " << arg << '\n';
                std::exit(2);
            }
            return args[++i];
        };
        // Whole-string numeric parse: a value like "2x" or "abc"
        // must be a clean exit-2 diagnostic, not an uncaught
        // std::invalid_argument out of std::stoi.
        auto numeric = [&](auto &out) {
            const std::string value = next();
            const auto [ptr, ec] = std::from_chars(
                value.data(), value.data() + value.size(), out);
            if (ec != std::errc() || ptr != value.data() + value.size()) {
                std::cerr << "invalid numeric value '" << value
                          << "' for " << arg << '\n';
                std::exit(2);
            }
        };
        if (arg == "--images") {
            numeric(opts.images);
        } else if (arg == "--seed") {
            numeric(opts.seed);
        } else if (arg == "--jobs") {
            numeric(opts.jobs);
            if (opts.jobs < 1) {
                std::cerr << "invalid numeric value '" << opts.jobs
                          << "' for " << arg << " (expected >= 1)\n";
                std::exit(2);
            }
        } else if (arg == "--mem") {
            const std::string value = next();
            const auto kind = mem::parseKind(value);
            if (!kind) {
                std::cerr << "invalid value '" << value << "' for "
                          << arg << " (expected 'ideal' or 'banked')\n";
                std::exit(2);
            }
            opts.memKind = *kind;
        } else if (arg == "--json") {
            opts.json = next();
        } else if (arg == "--trace-out") {
            opts.traceOut = next();
        } else if (arg == "--csv") {
            opts.csv = true;
        } else if (arg == "--quick") {
            opts.quick = true;
        } else if (arg == "--help") {
            std::cout << "options: --images N --seed S --csv --quick "
                         "--json PATH --trace-out PATH --jobs N "
                         "--mem ideal|banked\n";
            std::exit(0);
        } else {
            std::cerr << "unknown option " << arg << '\n';
            std::exit(2);
        }
    }
    if (opts.jobs > 0)
        sim::setJobCount(opts.jobs);
    return opts;
}

/** Print the node configuration once, for reproducibility. */
inline void
printConfig(const dadiannao::NodeConfig &cfg)
{
    std::cout << "node: " << cfg.describe() << '\n';
}

/** Print a titled table in the selected format. */
inline void
emit(const Options &opts, const std::string &title, const sim::Table &table)
{
    std::cout << "\n=== " << title << " ===\n";
    if (opts.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    std::cout.flush();
}

/**
 * Write a figure's data (a stat tree assembled by the bench binary)
 * as a JSON artifact when --json was given:
 *
 *   { "schema": "cnv-figure-v1",
 *     "figure": "<figure>",
 *     "manifest": { ... RunManifest ... },
 *     "data": <sim::exportJson tree> }
 *
 * The same exporter the driver reports use serializes the tree, so
 * plotting scripts consume one schema for both kinds of file.
 */
inline void
writeFigureArtifact(const Options &opts, const std::string &figure,
                    const dadiannao::NodeConfig &node,
                    const sim::StatGroup &data)
{
    if (opts.json.empty())
        return;
    std::ofstream os(opts.json);
    if (!os) {
        std::cerr << "cannot open JSON artifact file " << opts.json
                  << '\n';
        std::exit(1);
    }
    driver::RunManifest manifest = driver::makeManifest(figure);
    manifest.network = "(all zoo networks)";
    manifest.nodeConfig = node.describe();
    manifest.images = opts.images;
    manifest.seed = opts.seed;
    manifest.mem = mem::kindName(opts.memKind);
    manifest.wallSeconds = sim::metrics().secondsSinceEnable();

    sim::JsonWriter w(os);
    w.beginObject();
    w.key("schema").value("cnv-figure-v1");
    w.key("figure").value(figure);
    w.key("manifest");
    manifest.writeJson(w);
    w.key("data");
    sim::exportJson(data, w);
    w.key("hostProfile");
    sim::writeHostProfile(sim::metrics().snapshot(), w);
    w.endObject();
    os << '\n';
    std::cout << "wrote JSON artifact to " << opts.json << '\n';
}

} // namespace cnv::bench

#endif // CNV_BENCH_COMMON_H
