/**
 * @file
 * Ablation: brick-to-lane assignment policies (DESIGN.md §5).
 *
 * ZOnly is the strict reading of Section IV-B2 ("slices are
 * complete vertical chunks"); it starves lanes on layers whose
 * depth has fewer bricks than lanes. XYZHash keeps the bank mapping
 * array-static but collides on adjacent window cells. WindowEven
 * (the default) divides each window group's bricks evenly, matching
 * the paper's reported speedups.
 */

#include "common.h"

using namespace cnv;

int
main(int argc, char **argv)
{
    const auto opts = bench::parseArgs(argc, argv, 1);

    sim::Table t({"network", "ZOnly", "XYZHash", "WindowEven (default)"});
    double sums[3] = {0, 0, 0};
    for (auto id : nn::zoo::allNetworks()) {
        std::vector<std::string> row{nn::zoo::netName(id)};
        int i = 0;
        for (auto policy : {dadiannao::LaneAssignment::ZOnly,
                            dadiannao::LaneAssignment::XYZHash,
                            dadiannao::LaneAssignment::WindowEven}) {
            driver::ExperimentConfig cfg;
            cfg.images = opts.images;
            cfg.seed = opts.seed;
            cfg.memKind = opts.memKind;
            cfg.node.laneAssignment = policy;
            const auto r = driver::evaluateZooNetwork(cfg, id);
            sums[i++] += r.speedup();
            row.push_back(sim::Table::num(r.speedup()));
        }
        t.addRow(std::move(row));
    }
    t.addRow({"average", sim::Table::num(sums[0] / 6),
              sim::Table::num(sums[1] / 6), sim::Table::num(sums[2] / 6)});
    bench::emit(opts,
                "Ablation: CNV speedup under different brick-to-lane "
                "assignments",
                t);
    return 0;
}
