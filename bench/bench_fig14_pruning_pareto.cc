/**
 * @file
 * Figure 14: accuracy versus speedup trade-off under per-layer
 * dynamic pruning thresholds. For each network the explored
 * configurations' pareto frontier is printed; the paper's
 * qualitative shape is an initial lossless region followed by
 * exponential accuracy decay, with ~1.60x average speedup at <=1%
 * relative accuracy loss and ~1.87x at <=10%.
 */

#include <algorithm>

#include "common.h"
#include "pruning/explore.h"

using namespace cnv;

int
main(int argc, char **argv)
{
    const auto opts = bench::parseArgs(argc, argv, 1);

    driver::ExperimentConfig cfg;
    cfg.images = opts.images;
    cfg.seed = opts.seed;
    cfg.memKind = opts.memKind;

    pruning::SearchOptions search;
    search.accuracyImages = opts.quick ? 4 : 10;
    search.timingImages = 1;
    search.seed = opts.seed + 7;
    search.levels = {0, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024};

    double sum1pct = 0.0, sum10pct = 0.0;
    int n = 0;

    for (auto id : nn::zoo::allNetworks()) {
        if (opts.quick && id != nn::zoo::NetId::Alex)
            continue;
        const auto net = nn::zoo::build(id, cfg.seed);
        auto accNet = nn::zoo::build(id, cfg.seed, cfg.accuracyScale);
        accNet->calibrate();

        const auto points =
            pruning::tradeoffSweep(cfg.node, *net, *accNet, search);
        const auto frontier = pruning::paretoFrontier(points);

        sim::Table t({"speedup", "relative accuracy"});
        for (const auto &pt : frontier) {
            t.addRow({sim::Table::num(pt.speedup),
                      sim::Table::pct(pt.relativeAccuracy)});
        }
        bench::emit(opts,
                    std::string("Figure 14 pareto frontier: ") +
                        nn::zoo::netName(id),
                    t);

        // Best speedup within an accuracy-loss budget: rerun the
        // greedy exploration with a relaxed floor (the paper's
        // procedure), also folding in anything better the sweep saw.
        auto bestWithin = [&](double floor) {
            pruning::SearchOptions relaxed = search;
            relaxed.accuracyFloor = floor;
            // Budgeted searches tolerate proportionally more logit
            // distortion (the proxy's stand-in for accuracy loss).
            relaxed.distortionTolerance = 0.05 + (1.0 - floor) * 0.3;
            double best = pruning::searchLossless(cfg.node, *net, *accNet,
                                                  relaxed)
                              .speedup;
            for (const auto &pt : points) {
                if (pt.relativeAccuracy + 1e-9 >= floor)
                    best = std::max(best, pt.speedup);
            }
            return best;
        };
        sum1pct += bestWithin(0.99);
        sum10pct += bestWithin(0.90);
        ++n;
    }

    sim::Table summary({"budget", "avg best speedup", "paper"});
    summary.addRow({"<=1% relative accuracy loss",
                    sim::Table::num(sum1pct / n), "1.60"});
    summary.addRow({"<=10% relative accuracy loss",
                    sim::Table::num(sum10pct / n), "1.87"});
    bench::emit(opts, "Figure 14 summary", summary);
    return 0;
}
