# Bench binaries regenerating the paper's tables and figures. They
# are defined from the top-level CMakeLists (via include()) rather
# than add_subdirectory() so that ${CMAKE_BINARY_DIR}/bench contains
# only executables — `for b in build/bench/*; do $b; done` then runs
# the full harness cleanly.

function(cnv_bench name)
    add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cc)
    target_include_directories(${name} PRIVATE ${CMAKE_SOURCE_DIR}/bench)
    target_link_libraries(${name} PRIVATE
        cnv_driver cnv_arch cnv_pruning cnv_power cnv_timing cnv_core
        cnv_dadiannao cnv_nn cnv_zfnaf cnv_tensor cnv_sim cnv_warnings)
    set_target_properties(${name} PROPERTIES
        RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

cnv_bench(bench_fig01_zero_fractions)
cnv_bench(bench_fig09_speedup)
cnv_bench(bench_fig10_activity)
cnv_bench(bench_fig11_area)
cnv_bench(bench_fig12_power)
cnv_bench(bench_fig13_edp)
cnv_bench(bench_fig14_pruning_pareto)
cnv_bench(bench_tab02_thresholds)
cnv_bench(bench_abl_assignment)
cnv_bench(bench_abl_brick_size)
cnv_bench(bench_abl_dispatcher)
cnv_bench(bench_abl_sparsity)
cnv_bench(bench_ext_fc)
cnv_bench(bench_ext_multinode)
cnv_bench(bench_micro_kernels)
target_link_libraries(bench_micro_kernels PRIVATE benchmark::benchmark)
