/**
 * @file
 * Table II: the largest per-layer pruning thresholds that lose no
 * accuracy, found by greedy exploration (per layer; per inception
 * module / auxiliary head for google, as in the paper), and the
 * resulting speedup over the baseline.
 */

#include <sstream>

#include "common.h"
#include "pruning/explore.h"

using namespace cnv;

int
main(int argc, char **argv)
{
    const auto opts = bench::parseArgs(argc, argv, 1);

    driver::ExperimentConfig cfg;
    cfg.images = opts.images;
    cfg.seed = opts.seed;
    cfg.memKind = opts.memKind;

    pruning::SearchOptions search;
    search.accuracyImages = opts.quick ? 4 : 10;
    search.timingImages = 1;
    search.seed = opts.seed + 7;

    sim::Table t({"network", "thresholds per layer (found)", "speedup",
                  "paper speedup"});
    const char *paper[] = {"1.53", "1.37", "1.39", "1.57", "1.56", "1.75"};
    double sum = 0.0;
    int i = 0;
    for (auto id : nn::zoo::allNetworks()) {
        const auto net = nn::zoo::build(id, cfg.seed);
        auto accNet = nn::zoo::build(id, cfg.seed, cfg.accuracyScale);
        accNet->calibrate();

        const auto point =
            pruning::searchLossless(cfg.node, *net, *accNet, search);
        const auto report =
            driver::evaluateNetwork(cfg, *net, &point.config);

        // Compact the per-layer thresholds: one value per search
        // group (matches the paper's per-module listing for google).
        std::ostringstream list;
        const auto groups = pruning::thresholdGroups(*net);
        for (std::size_t g = 0; g < groups.size(); ++g) {
            if (g)
                list << ',';
            list << point.config.thresholds[groups[g].front()];
        }

        sum += report.speedup();
        t.addRow({nn::zoo::netName(id), list.str(),
                  sim::Table::num(report.speedup()), paper[i++]});
    }
    t.addRow({"average", "", sim::Table::num(sum / 6), "1.52"});
    bench::emit(opts, "Table II: lossless ineffectual-neuron thresholds",
                t);
    return 0;
}
