/**
 * @file
 * End-to-end image classification on the functional node models:
 * runs a reduced-scale AlexNet through both the DaDianNao baseline
 * and the CNV node, layer by layer, validating that CNV computes
 * the exact same classification while spending fewer cycles on
 * every convolutional layer after the first.
 *
 * Usage: ./build/examples/image_classification [network] [scale]
 *   network: alex|google|nin|vgg19|cnnM|cnnS   (default alex)
 *   scale:   geometry reduction factor          (default 4)
 */

#include <iomanip>
#include <iostream>

#include "core/node.h"
#include "dadiannao/node.h"
#include "nn/trace.h"
#include "nn/zoo/zoo.h"
#include "sim/table.h"

int
main(int argc, char **argv)
{
    using namespace cnv;

    const std::string name = argc > 1 ? argv[1] : "alex";
    const int scale = argc > 2 ? std::stoi(argv[2]) : 4;

    std::cout << "building " << name << " at 1/" << scale
              << " scale and calibrating synthetic weights...\n";
    auto net = nn::zoo::build(nn::zoo::netFromName(name), 2016, scale);
    net->calibrate();

    const auto image = nn::synthesizeImage(net->node(0).outShape, 7);

    const dadiannao::NodeConfig node;
    dadiannao::NodeModel baseline{node};
    core::CnvNodeModel cnv{node};

    std::cout << "running the baseline node...\n";
    const auto baseRun = baseline.run(*net, image);
    std::cout << "running the CNV node...\n";
    const auto cnvRun = cnv.run(*net, image);

    sim::Table t({"layer", "baseline cycles", "CNV cycles", "speedup"});
    // Both models emit the same layer sequence.
    for (std::size_t i = 0; i < baseRun.timing.layers.size(); ++i) {
        const auto &b = baseRun.timing.layers[i];
        const auto &c = cnvRun.timing.layers[i];
        if (b.cycles == 0 && c.cycles == 0)
            continue;
        t.addRow({b.name, sim::Table::intNum(b.cycles),
                  sim::Table::intNum(c.cycles),
                  c.cycles ? sim::Table::num(
                                 static_cast<double>(b.cycles) / c.cycles)
                           : "-"});
    }
    t.addRow({"total", sim::Table::intNum(baseRun.timing.totalCycles()),
              sim::Table::intNum(cnvRun.timing.totalCycles()),
              sim::Table::num(
                  static_cast<double>(baseRun.timing.totalCycles()) /
                  cnvRun.timing.totalCycles())});
    t.print(std::cout);

    std::cout << "\nbaseline top-1 class : " << baseRun.top1 << '\n';
    std::cout << "CNV top-1 class      : " << cnvRun.top1 << '\n';
    std::cout << "outputs bit-identical: "
              << (baseRun.final == cnvRun.final ? "yes" : "NO") << '\n';
    return baseRun.final == cnvRun.final ? 0 : 1;
}
