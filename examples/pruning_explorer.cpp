/**
 * @file
 * Dynamic-pruning exploration (Section V-E): finds the largest
 * per-layer "near zero" thresholds that change no prediction, then
 * walks past the lossless point to show the accuracy/speedup
 * trade-off of Figure 14.
 *
 * Usage: ./build/examples/pruning_explorer [network]
 *   network: alex|google|nin|vgg19|cnnM|cnnS   (default cnnS)
 */

#include <iostream>

#include "nn/zoo/zoo.h"
#include "pruning/explore.h"
#include "sim/table.h"
#include "timing/network_model.h"

int
main(int argc, char **argv)
{
    using namespace cnv;

    const std::string name = argc > 1 ? argv[1] : "cnnS";
    const auto id = nn::zoo::netFromName(name);

    std::cout << "building " << name
              << " (full geometry for timing, 1/8 scale for accuracy)\n";
    const auto fullNet = nn::zoo::build(id, 2016);
    auto accNet = nn::zoo::build(id, 2016, 8);
    accNet->calibrate();

    const dadiannao::NodeConfig node;
    pruning::SearchOptions opts;
    opts.accuracyImages = 10;
    opts.timingImages = 1;

    std::cout << "zero-skipping speedup (no pruning): "
              << timing::speedup(node, *fullNet, 1, opts.seed) << "x\n";

    std::cout << "searching lossless thresholds (greedy, power-of-two "
                 "ladder)...\n";
    const auto lossless =
        pruning::searchLossless(node, *fullNet, *accNet, opts);

    std::cout << "lossless thresholds:";
    for (std::int32_t t : lossless.config.thresholds)
        std::cout << ' ' << t;
    std::cout << "\nlossless speedup: " << lossless.speedup
              << "x at relative accuracy "
              << 100.0 * lossless.relativeAccuracy << "%\n";

    std::cout << "\nsweeping past the lossless point (Figure 14)...\n";
    const auto points =
        pruning::tradeoffSweep(node, *fullNet, *accNet, opts);
    sim::Table t({"speedup", "relative accuracy"});
    for (const auto &pt : pruning::paretoFrontier(points))
        t.addRow({sim::Table::num(pt.speedup),
                  sim::Table::pct(pt.relativeAccuracy)});
    t.print(std::cout);
    return 0;
}
