/**
 * @file
 * Design-space exploration with the fast timing models: how CNV's
 * advantage over the baseline moves with the node's shape (units,
 * neuron lanes, NBout depth) and with the dispatcher's empty-brick
 * handling. Demonstrates using NodeConfig as the experiment knob.
 *
 * Usage: ./build/examples/design_space [network]
 */

#include <iostream>

#include "nn/zoo/zoo.h"
#include "sim/table.h"
#include "timing/network_model.h"

int
main(int argc, char **argv)
{
    using namespace cnv;

    const std::string name = argc > 1 ? argv[1] : "vgg19";
    const auto net = nn::zoo::build(nn::zoo::netFromName(name), 2016);
    std::cout << "design space for " << name << " (1 image)\n";

    {
        sim::Table t({"units", "parallel filters", "baseline Mcycles",
                      "CNV Mcycles", "speedup"});
        for (int units : {4, 8, 16, 32}) {
            dadiannao::NodeConfig cfg;
            cfg.units = units;
            timing::RunOptions opts;
            const auto base = timing::simulateNetwork(
                cfg, *net, timing::Arch::Baseline, opts);
            const auto cnvRun = timing::simulateNetwork(
                cfg, *net, timing::Arch::Cnv, opts);
            t.addRow({std::to_string(units),
                      std::to_string(cfg.parallelFilters()),
                      sim::Table::num(base.totalCycles() / 1e6),
                      sim::Table::num(cnvRun.totalCycles() / 1e6),
                      sim::Table::num(
                          static_cast<double>(base.totalCycles()) /
                          cnvRun.totalCycles())});
        }
        std::cout << "\n-- scaling the node's unit count --\n";
        t.print(std::cout);
    }

    {
        sim::Table t({"NBout entries", "windows in flight", "speedup"});
        for (int nbout : {16, 32, 64, 128, 256}) {
            dadiannao::NodeConfig cfg;
            cfg.nboutEntries = nbout;
            t.addRow({std::to_string(nbout),
                      std::to_string(cfg.windowsInFlight()),
                      sim::Table::num(
                          timing::speedup(cfg, *net, 1, 2016))});
        }
        std::cout << "\n-- window-synchronisation granularity --\n";
        t.print(std::cout);
    }

    {
        sim::Table t({"assignment", "speedup"});
        const std::pair<dadiannao::LaneAssignment, const char *> rows[] = {
            {dadiannao::LaneAssignment::ZOnly, "ZOnly (strict slices)"},
            {dadiannao::LaneAssignment::XYZHash, "XYZHash"},
            {dadiannao::LaneAssignment::WindowEven,
             "WindowEven (default)"},
        };
        for (const auto &[policy, label] : rows) {
            dadiannao::NodeConfig cfg;
            cfg.laneAssignment = policy;
            t.addRow({label, sim::Table::num(
                                 timing::speedup(cfg, *net, 1, 2016))});
        }
        std::cout << "\n-- brick-to-lane assignment --\n";
        t.print(std::cout);
    }
    return 0;
}
