/**
 * @file
 * Bring-your-own-traces: the synthetic activation generator is a
 * documented substitution for real framework traces (DESIGN.md §2).
 * This example shows the escape hatch — export per-layer traces to
 * disk, then drive the timing models from the files instead. Real
 * traces dumped from an actual framework (one .cnvt tensor per conv
 * layer input, see tensor/serialize.h and docs/zfnaf.md) drop into
 * the same directory layout.
 *
 * Usage: ./build/examples/external_traces [network] [dir]
 */

#include <filesystem>
#include <iostream>

#include "nn/trace.h"
#include "nn/zoo/zoo.h"
#include "sim/table.h"
#include "tensor/serialize.h"
#include "timing/network_model.h"

int
main(int argc, char **argv)
{
    using namespace cnv;

    const std::string name = argc > 1 ? argv[1] : "cnnS";
    const std::string dir = argc > 2 ? argv[2] : "example-traces";
    const auto net = nn::zoo::build(nn::zoo::netFromName(name), 2016);
    const std::uint64_t imageSeed = 42;

    // 1. Export one image's per-layer traces (stand-in for a real
    //    framework dump).
    std::filesystem::create_directories(dir);
    const timing::DirectoryTraceProvider provider(dir);
    for (int nodeId : net->convNodeIds()) {
        const auto trace =
            nn::synthesizeConvInput(*net, nodeId, imageSeed);
        tensor::saveTensorFile(provider.pathFor(*net, nodeId, imageSeed),
                               trace);
    }
    std::cout << "exported " << net->convLayerCount()
              << " layer traces to " << dir << "/\n";

    // 2. Run both architectures against the files.
    const dadiannao::NodeConfig node;
    timing::RunOptions opts;
    opts.imageSeed = imageSeed;
    opts.traces = &provider;

    const auto base = timing::simulateNetwork(
        node, *net, timing::Arch::Baseline, opts);
    const auto cnvRun =
        timing::simulateNetwork(node, *net, timing::Arch::Cnv, opts);

    sim::Table t({"architecture", "cycles", "zero lane-events"});
    t.addRow({"dadiannao", sim::Table::intNum(base.totalCycles()),
              sim::Table::intNum(base.totalActivity().zero)});
    t.addRow({"cnv", sim::Table::intNum(cnvRun.totalCycles()),
              sim::Table::intNum(cnvRun.totalActivity().zero)});
    t.print(std::cout);
    std::cout << "speedup from the file-driven traces: "
              << sim::Table::num(
                     static_cast<double>(base.totalCycles()) /
                     static_cast<double>(cnvRun.totalCycles()))
              << "x\n";

    std::filesystem::remove_all(dir);
    return 0;
}
