/**
 * @file
 * Quickstart: the library in ~80 lines.
 *
 *  1. Build a sparse activation tensor and encode it in ZFNAf.
 *  2. Run one convolutional layer through the cycle-level DaDianNao
 *     baseline and through CNV.
 *  3. Check the outputs match bit-exactly and compare cycle counts.
 *
 * Build and run:  ./build/examples/quickstart
 */

#include <iostream>

#include "core/unit.h"
#include "dadiannao/nfu.h"
#include "nn/ops.h"
#include "sim/rng.h"
#include "zfnaf/format.h"

int
main()
{
    using namespace cnv;

    // A 16x16 input with 128 features, ~44% zeros (the paper's
    // average) — what a mid-network conv layer sees after ReLU.
    tensor::NeuronTensor input(16, 16, 128);
    sim::Rng rng(2016);
    for (tensor::Fixed16 &v : input) {
        v = rng.bernoulli(0.44)
            ? tensor::Fixed16{}
            : tensor::Fixed16::fromDouble(rng.uniform(0.05, 1.5));
    }

    // A 3x3 convolution with 64 filters.
    nn::ConvParams layer;
    layer.filters = 64;
    layer.fx = layer.fy = 3;
    layer.stride = 1;
    layer.pad = 1;

    tensor::FilterBank weights(layer.filters, 3, 3, 128);
    for (std::size_t i = 0; i < weights.size(); ++i)
        weights.data()[i] =
            tensor::Fixed16::fromDouble(rng.normal(0.0, 0.05));
    std::vector<tensor::Fixed16> bias(layer.filters);

    const dadiannao::NodeConfig node; // the paper's configuration

    // Baseline: all lanes in lock step, zeros multiplied anyway.
    const auto base =
        dadiannao::simulateConvBaseline(node, layer, input, weights,
                                        bias, false);

    // CNV: encode to the Zero-Free Neuron Array format, then skip.
    const zfnaf::EncodedArray encoded = zfnaf::encode(input);
    const auto cnvRun =
        core::simulateConvCnv(node, layer, encoded, weights, bias);

    std::cout << "input zeros            : "
              << 100.0 * tensor::zeroFraction(input) << "%\n";
    std::cout << "ZFNAf stored neurons   : " << encoded.totalNonZero()
              << " of " << input.size() << " (offset field: "
              << encoded.offsetBits() << " bits)\n";
    std::cout << "baseline cycles        : " << base.timing.cycles << '\n';
    std::cout << "CNV cycles             : " << cnvRun.timing.cycles
              << '\n';
    std::cout << "speedup                : "
              << static_cast<double>(base.timing.cycles) /
                     static_cast<double>(cnvRun.timing.cycles)
              << "x\n";
    std::cout << "outputs bit-identical  : "
              << (base.output == cnvRun.output ? "yes" : "NO") << '\n';

    // The golden model agrees too.
    const auto golden = nn::conv2d(input, weights, bias, layer);
    std::cout << "golden model agrees    : "
              << (golden == cnvRun.output ? "yes" : "NO") << '\n';
    return golden == cnvRun.output && base.output == cnvRun.output ? 0 : 1;
}
