#include "mem/dram_channel.h"

#include "sim/logging.h"

namespace cnv::mem {

DramChannel::DramChannel(std::uint64_t bytesPerCycle)
    : bytesPerCycle_(bytesPerCycle)
{
    CNV_ASSERT(bytesPerCycle > 0,
               "DRAM channel needs a positive bandwidth");
}

std::uint64_t
DramChannel::transfer(std::uint64_t bytes)
{
    const std::uint64_t busy =
        (bytes + bytesPerCycle_ - 1) / bytesPerCycle_;
    core::MutexLock lock(mu_);
    bytes_ += bytes;
    cycles_ += busy;
    return busy;
}

std::uint64_t
DramChannel::bytes() const
{
    core::MutexLock lock(mu_);
    return bytes_;
}

std::uint64_t
DramChannel::cycles() const
{
    core::MutexLock lock(mu_);
    return cycles_;
}

} // namespace cnv::mem
