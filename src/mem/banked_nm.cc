#include "mem/banked_nm.h"

#include <algorithm>

#include "mem/fifo.h"
#include "sim/logging.h"

namespace cnv::mem {

BankedNm::BankedNm(int banks, bool slicedFetch)
    : banks_(banks), slicedFetch_(slicedFetch)
{
    CNV_ASSERT(banks > 0, "banked NM needs at least one bank, got {}",
               banks);
}

std::uint64_t
BankedNm::serveGroup(const std::vector<Access> &fetches)
{
    if (fetches.empty())
        return 0;

    // One in-order fetch stream per slice pointer; the baseline's
    // single unit-wide pointer is one stream and trivially
    // conflict-free (one bank access per cycle).
    int streams = 1;
    if (slicedFetch_) {
        for (const Access &f : fetches)
            streams = std::max(streams, f.lane + 1);
    }
    std::vector<Fifo<int>> queue;
    queue.reserve(static_cast<std::size_t>(streams));
    for (int s = 0; s < streams; ++s)
        queue.emplace_back(fetches.size());
    for (const Access &f : fetches) {
        const int s = slicedFetch_ ? f.lane : 0;
        CNV_ASSERT(s >= 0 && s < streams, "fetch lane {} out of range", s);
        const bool ok = queue[static_cast<std::size_t>(s)].push(
            static_cast<int>(f.address % static_cast<std::uint64_t>(banks_)));
        CNV_ASSERT(ok, "slice fetch queue overflowed");
    }

    // Replay rounds: every non-empty stream presents its head; a
    // bank with n heads serialises them over n cycles, so the round
    // takes the max per-bank count and the excess past one cycle is
    // the conflict cost.
    std::uint64_t conflict = 0;
    std::vector<std::uint32_t> perBank(static_cast<std::size_t>(banks_));
    bool any = true;
    while (any) {
        any = false;
        std::fill(perBank.begin(), perBank.end(), 0u);
        for (Fifo<int> &q : queue) {
            if (q.empty())
                continue;
            ++perBank[static_cast<std::size_t>(q.front())];
            q.pop();
            any = true;
        }
        if (!any)
            break;
        const std::uint32_t busiest =
            *std::max_element(perBank.begin(), perBank.end());
        conflict += busiest - 1;
    }

    core::MutexLock lock(mu_);
    accesses_ += fetches.size();
    conflictCycles_ += conflict;
    return conflict;
}

void
BankedNm::addSequential(std::uint64_t reads)
{
    core::MutexLock lock(mu_);
    accesses_ += reads;
}

std::uint64_t
BankedNm::accesses() const
{
    core::MutexLock lock(mu_);
    return accesses_;
}

std::uint64_t
BankedNm::conflictCycles() const
{
    core::MutexLock lock(mu_);
    return conflictCycles_;
}

} // namespace cnv::mem
