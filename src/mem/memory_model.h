/**
 * @file
 * The memory-hierarchy interface every timing model issues its
 * accesses against: `mem::MemoryModel` abstracts the banked neuron
 * memory (mem::BankedNm), the shared global buffer
 * (mem::GlobalBuffer) and the off-chip DRAM channel
 * (mem::DramChannel) behind one per-run object carried in
 * `timing::RunOptions`.
 *
 * Two backends exist. The `ideal` backend (the registry default) is
 * the legacy single-cycle-NM assumption: every call is a no-op, so
 * reports are bit-identical to the pre-refactor numbers. The
 * `banked` backend (`--mem banked`) models CNV's sixteen
 * independent per-slice fetch pointers vs DaDianNao's single
 * unit-wide pointer (paper Section 4's contention risk area): brick
 * fetches that miss the global buffer contend for NM banks, and
 * activation footprints past the NM capacity spill to DRAM.
 *
 * Accounting units: conflict and fill costs are *cycles* added to a
 * window group's runtime; the timing models convert them to idle
 * lane-cycles (every lane waits) and attribute them to the
 * `nm_bank_conflict` / `gb_miss` / `dram_wait` stall reasons, so
 * the stalls.total() == laneIdleCycles invariant keeps holding
 * (docs/observability.md, "Stall attribution").
 */

#ifndef CNV_MEM_MEMORY_MODEL_H
#define CNV_MEM_MEMORY_MODEL_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

namespace cnv::mem {

/** Which memory backend a run simulates. */
enum class Kind {
    Ideal,  ///< legacy single-cycle NM; every access is free
    Banked, ///< banked NM + global buffer + DRAM channel
};

/** Stable CLI/manifest name of a backend ("ideal" / "banked"). */
const char *kindName(Kind k);

/** Parse a CLI spelling; std::nullopt on anything unknown. */
std::optional<Kind> parseKind(std::string_view name);

/**
 * Default global-buffer capacity in brick lines. One line holds one
 * ZFNAf brick; 4096 lines of 16-neuron bricks are 128 KiB of
 * values — a small shared staging buffer in front of the 4 MiB NM,
 * sized so intra-layer reuse (overlapping windows, repeated filter
 * passes) hits while whole layers do not fit.
 */
inline constexpr std::uint64_t kDefaultGbLines = 4096;

/**
 * Geometry of the simulated hierarchy, declared per architecture by
 * `arch::ArchModel::memGeometry()`. A zero `banks` count marks the
 * geometry as unset; consumers then derive it from the NodeConfig.
 */
struct Geometry
{
    /** NM bank count (0 = unset). */
    int banks = 0;
    /**
     * True when every lane advances its own slice fetch pointer
     * (CNV, Section 4); false for the baseline's single unit-wide
     * pointer, which walks banks in order and cannot conflict.
     */
    bool slicedFetch = false;
    /** NM capacity in bytes (activation working set per layer). */
    std::uint64_t nmBytes = 0;
    /** Global-buffer capacity in brick lines. */
    std::uint64_t gbLines = kDefaultGbLines;
    /** Off-chip channel bandwidth in bytes per cycle. */
    std::uint64_t dramBytesPerCycle = 0;
};

/** One brick fetch: the issuing lane and the NM brick address. */
struct Access
{
    int lane = 0;
    std::uint64_t address = 0;
};

/** Extra cycles one fetch group adds to its window group's runtime. */
struct GroupCost
{
    /** Cycles serialised on NM bank conflicts. */
    std::uint64_t conflictCycles = 0;
    /** GB miss-fill cycles not hidden behind the group's compute. */
    std::uint64_t gbFillCycles = 0;
};

/** Cumulative hierarchy counters (per layer or whole run). */
struct Counters
{
    /** Brick-granular NM reads actually issued (GB hits excluded). */
    std::uint64_t nmAccesses = 0;
    /** Extra cycles lost serialising same-bank fetches. */
    std::uint64_t nmConflictCycles = 0;
    /** Global-buffer hits / misses / capacity evictions. */
    std::uint64_t gbHits = 0;
    std::uint64_t gbMisses = 0;
    std::uint64_t gbEvictions = 0;
    /** Off-chip traffic and the channel cycles it occupied. */
    std::uint64_t dramBytes = 0;
    std::uint64_t dramCycles = 0;

    Counters &
    operator+=(const Counters &o)
    {
        nmAccesses += o.nmAccesses;
        nmConflictCycles += o.nmConflictCycles;
        gbHits += o.gbHits;
        gbMisses += o.gbMisses;
        gbEvictions += o.gbEvictions;
        dramBytes += o.dramBytes;
        dramCycles += o.dramCycles;
        return *this;
    }
};

/**
 * Per-run memory hierarchy. One instance is created per
 * `timing::simulateNetwork` call (i.e. per (architecture, image)
 * task), so the parallel runtime never shares one across threads
 * and conflict accounting stays deterministic at any --jobs count;
 * the components still lock internally so a model outliving that
 * contract stays race-free.
 */
class MemoryModel
{
  public:
    virtual ~MemoryModel() = default;

    /** Which backend this is. */
    virtual Kind kind() const = 0;

    /**
     * Serve one window group's synchronised brick fetches. The
     * group's accesses are filtered through the global buffer, the
     * misses contend for NM banks, and the returned costs are the
     * cycles the group's runtime grows by. `computeCycles` is the
     * group's compute time, behind which GB miss fills can hide.
     */
    virtual GroupCost fetchGroup(const std::vector<Access> &group,
                                 std::uint64_t computeCycles) = 0;

    /**
     * Account `reads` NM fetches issued by a single unit-wide
     * pointer (the baseline's sequential walk: one bank per cycle
     * in order, never a conflict, never through the GB).
     */
    virtual void fetchSequential(std::uint64_t reads) = 0;

    /**
     * Stream `bytes` over the off-chip channel; returns the channel
     * cycles occupied. Callers decide whether those cycles are
     * exposed (activation spills) or already overlapped elsewhere
     * (synapse streams timed by the overlap tracker).
     */
    virtual std::uint64_t dramTransfer(std::uint64_t bytes) = 0;

    /**
     * Counters accumulated since the previous drain, and start a
     * new layer epoch (the global buffer is invalidated — one
     * layer's activations never hit on the previous layer's).
     */
    virtual Counters drainLayer() = 0;

    /** Whole-run counter totals. */
    virtual Counters totals() const = 0;
};

/**
 * Build a backend. Kind::Ideal ignores the geometry; Kind::Banked
 * requires banks > 0 and dramBytesPerCycle > 0.
 */
std::unique_ptr<MemoryModel> makeMemoryModel(Kind k, const Geometry &g);

} // namespace cnv::mem

#endif // CNV_MEM_MEMORY_MODEL_H
