/**
 * @file
 * Banked neuron memory with per-bank fetch-pointer conflict
 * accounting. CNV gives every neuron lane its own slice fetch
 * pointer (sixteen independent streams, paper Section 4) where
 * DaDianNao advances one unit-wide pointer; independent pointers
 * can land on the same NM bank in the same cycle, and the bank
 * serialises them. serveGroup() replays one window group's fetch
 * streams round by round and returns the serialisation cost;
 * tests/mem/test_banked_nm.cc pins a hand-worked 4-bank example.
 */

#ifndef CNV_MEM_BANKED_NM_H
#define CNV_MEM_BANKED_NM_H

#include <cstdint>
#include <vector>

#include "core/sync.h"
#include "core/thread_annotations.h"
#include "mem/memory_model.h"

namespace cnv::mem {

/** The banked NM array and its conflict/access counters. */
class BankedNm
{
  public:
    /**
     * @param banks Bank count (> 0); a brick at address A lives in
     *        bank A % banks (linear interleave).
     * @param slicedFetch Per-lane slice pointers (CNV) when true;
     *        one unit-wide pointer (baseline) when false.
     */
    BankedNm(int banks, bool slicedFetch);

    /**
     * Serve one synchronised group of brick fetches (the global-
     * buffer misses of a window group) and return the extra cycles
     * the group serialises on bank conflicts.
     *
     * With sliced fetch each lane's accesses form an in-order
     * stream; cycle by cycle every non-empty stream presents its
     * head fetch, a bank serving n heads takes n cycles, and the
     * round costs max-per-bank cycles instead of one — the excess
     * is the conflict cost. A single unit-wide pointer (slicedFetch
     * false) issues one fetch per cycle and can never conflict.
     */
    std::uint64_t serveGroup(const std::vector<Access> &fetches)
        CNV_EXCLUDES(mu_);

    /** Account sequential unit-wide-pointer reads (no conflicts). */
    void addSequential(std::uint64_t reads) CNV_EXCLUDES(mu_);

    /** Cumulative NM reads issued. */
    std::uint64_t accesses() const CNV_EXCLUDES(mu_);

    /** Cumulative cycles lost to bank conflicts. */
    std::uint64_t conflictCycles() const CNV_EXCLUDES(mu_);

    int
    banks() const
    {
        return banks_;
    }

  private:
    const int banks_;
    const bool slicedFetch_;

    mutable core::Mutex mu_;
    std::uint64_t accesses_ CNV_GUARDED_BY(mu_) = 0;
    std::uint64_t conflictCycles_ CNV_GUARDED_BY(mu_) = 0;
};

} // namespace cnv::mem

#endif // CNV_MEM_BANKED_NM_H
