/**
 * @file
 * Off-chip DRAM channel: converts transfer bytes into channel-busy
 * cycles at a fixed bytes-per-cycle bandwidth and accumulates the
 * per-run traffic totals. Used for activation footprints that spill
 * past the NM capacity (exposed as `dram_wait` stalls) and for the
 * synapse streams the overlap tracker already times (recorded here
 * for traffic accounting only).
 */

#ifndef CNV_MEM_DRAM_CHANNEL_H
#define CNV_MEM_DRAM_CHANNEL_H

#include <cstdint>

#include "core/sync.h"
#include "core/thread_annotations.h"

namespace cnv::mem {

/** Fixed-bandwidth off-chip channel with byte/cycle counters. */
class DramChannel
{
  public:
    /** @param bytesPerCycle Channel bandwidth (> 0). */
    explicit DramChannel(std::uint64_t bytesPerCycle);

    /**
     * Stream `bytes` over the channel; returns the busy cycles
     * (ceiling of bytes over the per-cycle bandwidth).
     */
    std::uint64_t transfer(std::uint64_t bytes) CNV_EXCLUDES(mu_);

    std::uint64_t bytes() const CNV_EXCLUDES(mu_);
    std::uint64_t cycles() const CNV_EXCLUDES(mu_);

    std::uint64_t
    bytesPerCycle() const
    {
        return bytesPerCycle_;
    }

  private:
    const std::uint64_t bytesPerCycle_;

    mutable core::Mutex mu_;
    std::uint64_t bytes_ CNV_GUARDED_BY(mu_) = 0;
    std::uint64_t cycles_ CNV_GUARDED_BY(mu_) = 0;
};

} // namespace cnv::mem

#endif // CNV_MEM_DRAM_CHANNEL_H
