#include "mem/global_buffer.h"

#include <limits>

#include "sim/logging.h"

namespace cnv::mem {

namespace {

/** Sentinel tag for an unoccupied slot. */
constexpr std::uint64_t kEmpty = std::numeric_limits<std::uint64_t>::max();

} // namespace

GlobalBuffer::GlobalBuffer(std::uint64_t lines) : lines_(lines)
{
    CNV_ASSERT(lines > 0, "global buffer needs at least one line");
    tag_.assign(static_cast<std::size_t>(lines), kEmpty);
}

std::uint64_t
GlobalBuffer::filterGroup(const std::vector<Access> &fetches,
                          std::vector<Access> &misses)
{
    core::MutexLock lock(mu_);
    std::uint64_t missed = 0;
    for (const Access &f : fetches) {
        const std::size_t slot =
            static_cast<std::size_t>(f.address % lines_);
        if (tag_[slot] == f.address) {
            ++hits_;
            continue;
        }
        if (tag_[slot] != kEmpty)
            ++evictions_;
        tag_[slot] = f.address;
        ++misses_;
        ++missed;
        misses.push_back(f);
    }
    return missed;
}

void
GlobalBuffer::invalidate()
{
    core::MutexLock lock(mu_);
    tag_.assign(tag_.size(), kEmpty);
}

std::uint64_t
GlobalBuffer::hits() const
{
    core::MutexLock lock(mu_);
    return hits_;
}

std::uint64_t
GlobalBuffer::misses() const
{
    core::MutexLock lock(mu_);
    return misses_;
}

std::uint64_t
GlobalBuffer::evictions() const
{
    core::MutexLock lock(mu_);
    return evictions_;
}

} // namespace cnv::mem
