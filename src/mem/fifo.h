/**
 * @file
 * Bounded single-threaded FIFO queue used by the memory-hierarchy
 * components (per-slice fetch queues in mem::BankedNm). A fixed-
 * capacity ring buffer: push() refuses (returns false) when full
 * instead of growing, so queue depths model real hardware buffers
 * and overflow is an observable event, never a silent reallocation.
 *
 * Ordering is strict FIFO; tests/mem/test_fifo.cc pins both the
 * bound and the ordering.
 */

#ifndef CNV_MEM_FIFO_H
#define CNV_MEM_FIFO_H

#include <cstddef>
#include <vector>

#include "sim/logging.h"

namespace cnv::mem {

/** Fixed-capacity FIFO ring buffer (capacity set at construction). */
template <typename T> class Fifo
{
  public:
    explicit Fifo(std::size_t capacity) : slots_(capacity) {}

    /** Maximum number of entries the queue can hold. */
    std::size_t
    capacity() const
    {
        return slots_.size();
    }

    /** Entries currently queued. */
    std::size_t
    size() const
    {
        return count_;
    }

    bool
    empty() const
    {
        return count_ == 0;
    }

    bool
    full() const
    {
        return count_ == slots_.size();
    }

    /** Enqueue; false (and no change) when the queue is full. */
    bool
    push(const T &value)
    {
        if (full())
            return false;
        slots_[(head_ + count_) % slots_.size()] = value;
        ++count_;
        return true;
    }

    /** Oldest entry; the queue must not be empty. */
    const T &
    front() const
    {
        CNV_ASSERT(!empty(), "front() on an empty Fifo");
        return slots_[head_];
    }

    /** Drop the oldest entry; the queue must not be empty. */
    void
    pop()
    {
        CNV_ASSERT(!empty(), "pop() on an empty Fifo");
        head_ = (head_ + 1) % slots_.size();
        --count_;
    }

  private:
    std::vector<T> slots_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
};

} // namespace cnv::mem

#endif // CNV_MEM_FIFO_H
