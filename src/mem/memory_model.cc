#include "mem/memory_model.h"

#include "mem/banked_nm.h"
#include "mem/dram_channel.h"
#include "mem/global_buffer.h"
#include "sim/logging.h"

namespace cnv::mem {

const char *
kindName(Kind k)
{
    switch (k) {
      case Kind::Ideal: return "ideal";
      case Kind::Banked: return "banked";
    }
    CNV_FATAL("unknown mem::Kind value {}", static_cast<int>(k));
}

std::optional<Kind>
parseKind(std::string_view name)
{
    if (name == "ideal")
        return Kind::Ideal;
    if (name == "banked")
        return Kind::Banked;
    return std::nullopt;
}

namespace {

/**
 * The legacy single-cycle-NM assumption: every fetch is free, no
 * traffic is tracked. Kept callable so code paths need no null
 * checks where the pointer is always set, but the timing models
 * skip the calls entirely on the ideal path (the model pointer is
 * null there), keeping it zero-overhead.
 */
class IdealMemory final : public MemoryModel
{
  public:
    Kind
    kind() const override
    {
        return Kind::Ideal;
    }

    GroupCost
    fetchGroup(const std::vector<Access> &, std::uint64_t) override
    {
        return {};
    }

    void
    fetchSequential(std::uint64_t) override
    {
    }

    std::uint64_t
    dramTransfer(std::uint64_t) override
    {
        return 0;
    }

    Counters
    drainLayer() override
    {
        return {};
    }

    Counters
    totals() const override
    {
        return {};
    }
};

/** The simulated hierarchy: GB in front of banked NM, plus DRAM. */
class BankedMemory final : public MemoryModel
{
  public:
    explicit BankedMemory(const Geometry &g)
        : geometry_(g), nm_(g.banks, g.slicedFetch), gb_(g.gbLines),
          dram_(g.dramBytesPerCycle)
    {
    }

    Kind
    kind() const override
    {
        return Kind::Banked;
    }

    GroupCost
    fetchGroup(const std::vector<Access> &group,
               std::uint64_t computeCycles) override
    {
        GroupCost cost;
        misses_.clear();
        const std::uint64_t missed = gb_.filterGroup(group, misses_);
        cost.conflictCycles = nm_.serveGroup(misses_);
        // The GB fill port installs one line per cycle; fills hide
        // behind the group's compute and only the excess is exposed.
        if (missed > computeCycles)
            cost.gbFillCycles = missed - computeCycles;
        return cost;
    }

    void
    fetchSequential(std::uint64_t reads) override
    {
        nm_.addSequential(reads);
    }

    std::uint64_t
    dramTransfer(std::uint64_t bytes) override
    {
        return dram_.transfer(bytes);
    }

    Counters
    drainLayer() override
    {
        const Counters now = totals();
        Counters delta = now;
        delta.nmAccesses -= drained_.nmAccesses;
        delta.nmConflictCycles -= drained_.nmConflictCycles;
        delta.gbHits -= drained_.gbHits;
        delta.gbMisses -= drained_.gbMisses;
        delta.gbEvictions -= drained_.gbEvictions;
        delta.dramBytes -= drained_.dramBytes;
        delta.dramCycles -= drained_.dramCycles;
        drained_ = now;
        gb_.invalidate();
        return delta;
    }

    Counters
    totals() const override
    {
        Counters c;
        c.nmAccesses = nm_.accesses();
        c.nmConflictCycles = nm_.conflictCycles();
        c.gbHits = gb_.hits();
        c.gbMisses = gb_.misses();
        c.gbEvictions = gb_.evictions();
        c.dramBytes = dram_.bytes();
        c.dramCycles = dram_.cycles();
        return c;
    }

  private:
    const Geometry geometry_;
    BankedNm nm_;
    GlobalBuffer gb_;
    DramChannel dram_;
    /** Scratch miss list reused across groups (single caller). */
    std::vector<Access> misses_;
    /** Totals snapshot at the previous drainLayer(). */
    Counters drained_;
};

} // namespace

std::unique_ptr<MemoryModel>
makeMemoryModel(Kind k, const Geometry &g)
{
    if (k == Kind::Ideal)
        return std::make_unique<IdealMemory>();
    CNV_ASSERT(g.banks > 0, "banked memory model needs a bank count");
    CNV_ASSERT(g.dramBytesPerCycle > 0,
               "banked memory model needs a DRAM bandwidth");
    CNV_ASSERT(g.gbLines > 0,
               "banked memory model needs a global-buffer capacity");
    return std::make_unique<BankedMemory>(g);
}

} // namespace cnv::mem
