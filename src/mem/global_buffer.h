/**
 * @file
 * Shared global buffer: a small direct-mapped staging cache of
 * brick lines in front of the banked NM. Window groups overlap and
 * filter passes re-read the same activation bricks; lines that hit
 * here never reach the NM banks (and so never conflict), while
 * misses are filled one line per cycle. Deterministic by
 * construction — a pure function of the access sequence — so
 * reports stay byte-identical at any --jobs count.
 */

#ifndef CNV_MEM_GLOBAL_BUFFER_H
#define CNV_MEM_GLOBAL_BUFFER_H

#include <cstdint>
#include <vector>

#include "core/sync.h"
#include "core/thread_annotations.h"
#include "mem/memory_model.h"

namespace cnv::mem {

/** Direct-mapped brick-line buffer with hit/miss/evict counters. */
class GlobalBuffer
{
  public:
    /** @param lines Capacity in brick lines (> 0). */
    explicit GlobalBuffer(std::uint64_t lines);

    /**
     * Look up one group's fetches; hits are absorbed, misses are
     * installed (evicting any resident line mapped to the same
     * slot) and appended to `misses` for the NM to serve. Returns
     * the number of misses appended.
     */
    std::uint64_t filterGroup(const std::vector<Access> &fetches,
                              std::vector<Access> &misses)
        CNV_EXCLUDES(mu_);

    /** Drop every resident line (layer epoch boundary). */
    void invalidate() CNV_EXCLUDES(mu_);

    std::uint64_t hits() const CNV_EXCLUDES(mu_);
    std::uint64_t misses() const CNV_EXCLUDES(mu_);
    std::uint64_t evictions() const CNV_EXCLUDES(mu_);

    std::uint64_t
    lines() const
    {
        return lines_;
    }

  private:
    const std::uint64_t lines_;

    mutable core::Mutex mu_;
    /** Resident address per slot; kEmpty when the slot is free. */
    std::vector<std::uint64_t> tag_ CNV_GUARDED_BY(mu_);
    std::uint64_t hits_ CNV_GUARDED_BY(mu_) = 0;
    std::uint64_t misses_ CNV_GUARDED_BY(mu_) = 0;
    std::uint64_t evictions_ CNV_GUARDED_BY(mu_) = 0;
};

} // namespace cnv::mem

#endif // CNV_MEM_GLOBAL_BUFFER_H
