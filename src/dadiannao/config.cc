#include "dadiannao/config.h"

#include "sim/logging.h"

namespace cnv::dadiannao {

namespace {

const char *
assignmentName(LaneAssignment a)
{
    switch (a) {
      case LaneAssignment::ZOnly: return "z-only";
      case LaneAssignment::XYZHash: return "xyz-hash";
      case LaneAssignment::WindowEven: return "window-even";
    }
    return "?";
}

} // namespace

void
NodeConfig::validate() const
{
    if (units < 1 || lanes < 1 || filtersPerUnit < 1)
        CNV_FATAL("node needs at least one unit/lane/filter lane");
    if (lanes > 64)
        CNV_FATAL("lane count {} above the model limit of 64", lanes);
    if (brickSize != lanes)
        CNV_FATAL("CNV pairs one neuron lane with one brick slot: "
                  "brickSize {} != lanes {}",
                  brickSize, lanes);
    if (nbinEntries < 1 || nboutEntries < filtersPerUnit)
        CNV_FATAL("NBout must hold at least one window of partial sums");
    if (nmBanks != lanes)
        CNV_FATAL("the dispatcher pairs one NM bank per neuron lane: "
                  "nmBanks {} != lanes {}",
                  nmBanks, lanes);
    if (offchipBytesPerCycle < 1)
        CNV_FATAL("off-chip bandwidth must be positive");
    if (clockGhz <= 0.0)
        CNV_FATAL("clock must be positive");
}

std::string
NodeConfig::describe() const
{
    return sim::strfmt(
        "{} units x {} lanes x {} filters ({} parallel filters), "
        "brick {}, NBout {} ({} windows), SB {}KB/unit, NM {}KB x {} "
        "banks, {} GHz, {} B/cycle off-chip, {} assignment",
        units, lanes, filtersPerUnit, parallelFilters(), brickSize,
        nboutEntries, windowsInFlight(), sbBytesPerUnit >> 10,
        nmBytes >> 10, nmBanks, clockGhz, offchipBytesPerCycle,
        assignmentName(laneAssignment));
}

} // namespace cnv::dadiannao
