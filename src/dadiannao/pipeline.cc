#include "dadiannao/pipeline.h"

#include <array>
#include <deque>

#include "sim/engine.h"
#include "sim/logging.h"
#include "sim/stall_profile.h"

namespace cnv::dadiannao {

using tensor::Accum;
using tensor::FilterBank;
using tensor::Fixed16;
using tensor::NeuronTensor;
using tensor::Shape3;

namespace {

/** One 16-neuron fetch block plus its place in the computation. */
struct FetchBlock
{
    std::array<Fixed16, 64> neurons{};
    int valid = 0;   ///< neurons in the block (depth tail may be short)
    int window = 0;  ///< row-major output window index
    int kx = 0;
    int ky = 0;
    int zBase = 0;   ///< first neuron's feature coordinate
    bool last = false;
};

/** Streams the layer's fetch blocks from NM, one per cycle. */
class FetchUnit : public sim::Clocked
{
  public:
    FetchUnit(std::deque<FetchBlock> schedule,
              sim::Latch<FetchBlock> &out, mem::MemoryModel *mem)
        : sim::Clocked("fetch"),
          schedule_(std::move(schedule)),
          out_(out),
          mem_(mem)
    {
    }

    void
    evaluate(sim::Cycle cycle) override
    {
        if (schedule_.empty() || out_.stalled())
            return;
        if (!streaming_) {
            streaming_ = true;
            streamStart_ = cycle;
        }
        streamEnd_ = cycle + 1;
        out_.push(std::move(schedule_.front()));
        schedule_.pop_front();
        ++nmReads_;
        if (mem_)
            mem_->fetchSequential(1);
    }

    void commit(sim::Cycle) override { out_.tick(); }
    bool done() const override { return schedule_.empty(); }

    std::uint64_t nmReads() const { return nmReads_; }

    /** Emit the coalesced NM-streaming span into @p sink. */
    void
    flushTrace(sim::TraceSink *sink, std::uint32_t pid,
               std::uint32_t tid) const
    {
        if (sink && streaming_) {
            sink->complete(pid, tid, "stream", "unit", streamStart_,
                           streamEnd_ - streamStart_);
        }
    }

  private:
    std::deque<FetchBlock> schedule_;
    sim::Latch<FetchBlock> &out_;
    mem::MemoryModel *mem_;
    std::uint64_t nmReads_ = 0;
    bool streaming_ = false;
    sim::Cycle streamStart_ = 0;
    sim::Cycle streamEnd_ = 0;
};

/** The lock-step unit array: 256 multipliers + 16 adder trees. */
class UnitArray : public sim::Clocked
{
  public:
    UnitArray(sim::Latch<FetchBlock> &in, const nn::ConvParams &p,
              const FilterBank &weights,
              std::vector<std::vector<Accum>> &acc, int lanes)
        : sim::Clocked("units"),
          in_(in),
          params_(p),
          weights_(weights),
          acc_(acc),
          lanes_(lanes)
    {
    }

    /** Cycles the array consumed a fetch block (all lanes advance). */
    std::uint64_t busyCycles() const { return busyCycles_; }

    /** Cycles the array waited on the NBin stage (pipeline fill). */
    std::uint64_t idleCycles() const { return idleCycles_; }

    void
    setTrace(sim::TraceSink *sink, std::uint32_t pid, std::uint32_t tid)
    {
        trace_ = sink;
        tracePid_ = pid;
        traceTid_ = tid;
    }

    /** Close the open busy/stall span at @p end. */
    void
    flushTrace(sim::Cycle end)
    {
        traceState(false, end, /*flush=*/true);
    }

    void
    evaluate(sim::Cycle cycle) override
    {
        if (finished_)
            return;
        if (!in_.valid()) {
            ++idleCycles_;
            traceState(false, cycle, false);
            return;
        }
        ++busyCycles_;
        traceState(true, cycle, false);
        const FetchBlock block = in_.pop();
        for (int lane = 0; lane < block.valid; ++lane) {
            const Fixed16 n = block.neurons[lane];
            if (n.isZero())
                continue; // multiplies by zero add nothing
            const int z = block.zBase + lane;
            for (int f = 0; f < params_.filters; ++f) {
                acc_[block.window][f] +=
                    mulRaw(n, weights_.at(f, block.kx, block.ky, z));
            }
        }
        finished_ = block.last;
    }

    void commit(sim::Cycle) override {}
    bool done() const override { return finished_; }

  private:
    /** Coalesce same-state cycles into one span; emit on changes. */
    void
    traceState(bool busy, sim::Cycle cycle, bool flush)
    {
        if (!trace_)
            return;
        if (!flush && open_ && busy == openBusy_)
            return;
        if (open_ && cycle > openStart_) {
            const sim::Cycle dur = cycle - openStart_;
            if (openBusy_) {
                trace_->complete(tracePid_, traceTid_, "busy", "unit",
                                 openStart_, dur);
            } else {
                trace_->complete(
                    tracePid_, traceTid_,
                    sim::stallReasonName(
                        sim::StallReason::BrickBufferEmpty),
                    "stall", openStart_, dur,
                    {sim::TraceArg(
                        "laneCycles",
                        dur * static_cast<std::uint64_t>(lanes_))});
            }
        }
        open_ = !flush;
        openBusy_ = busy;
        openStart_ = cycle;
    }

    sim::Latch<FetchBlock> &in_;
    const nn::ConvParams &params_;
    const FilterBank &weights_;
    std::vector<std::vector<Accum>> &acc_;
    int lanes_;
    bool finished_ = false;
    std::uint64_t busyCycles_ = 0;
    std::uint64_t idleCycles_ = 0;

    sim::TraceSink *trace_ = nullptr;
    std::uint32_t tracePid_ = 0;
    std::uint32_t traceTid_ = 0;
    bool open_ = false;
    bool openBusy_ = false;
    sim::Cycle openStart_ = 0;
};

} // namespace

BaselinePipelineResult
runConvPipelineBaseline(const NodeConfig &cfg, const nn::ConvParams &p,
                        const NeuronTensor &in, const FilterBank &weights,
                        const std::vector<Fixed16> &bias,
                        sim::TraceSink *trace, std::uint32_t tracePid,
                        mem::MemoryModel *mem)
{
    CNV_ASSERT(p.groups == 1, "pipeline models single-group layers");
    CNV_ASSERT(p.filters <= cfg.parallelFilters(),
               "pipeline models single-pass layers");
    CNV_ASSERT(in.shape().z >= cfg.lanes,
               "shallow (packed-row) inputs are out of pipeline scope");

    const Shape3 inShape = in.shape();
    const Shape3 outShape = p.outputShape(inShape);
    const int lanes = cfg.lanes;
    const int blocks = (inShape.z + lanes - 1) / lanes;
    const std::int64_t windows =
        static_cast<std::int64_t>(outShape.x) * outShape.y;

    // Build the fetch schedule: windows in row-major order, valid
    // cells in (ky, kx) order, depth blocks innermost.
    std::deque<FetchBlock> schedule;
    for (std::int64_t w = 0; w < windows; ++w) {
        const int ox = static_cast<int>(w % outShape.x);
        const int oy = static_cast<int>(w / outShape.x);
        const int x0 = ox * p.stride - p.pad;
        const int y0 = oy * p.stride - p.pad;
        for (int ky = 0; ky < p.fy; ++ky) {
            const int iy = y0 + ky;
            if (iy < 0 || iy >= inShape.y)
                continue;
            for (int kx = 0; kx < p.fx; ++kx) {
                const int ix = x0 + kx;
                if (ix < 0 || ix >= inShape.x)
                    continue;
                for (int b = 0; b < blocks; ++b) {
                    FetchBlock block;
                    block.window = static_cast<int>(w);
                    block.kx = kx;
                    block.ky = ky;
                    block.zBase = b * lanes;
                    block.valid =
                        std::min(lanes, inShape.z - block.zBase);
                    for (int l = 0; l < block.valid; ++l)
                        block.neurons[l] =
                            in.at(ix, iy, block.zBase + l);
                    schedule.push_back(std::move(block));
                }
            }
        }
    }
    if (!schedule.empty())
        schedule.back().last = true;

    std::vector<std::vector<Accum>> acc(
        static_cast<std::size_t>(windows),
        std::vector<Accum>(static_cast<std::size_t>(p.filters)));

    sim::Latch<FetchBlock> nbin;
    FetchUnit fetch(std::move(schedule), nbin, mem);
    UnitArray units(nbin, p, weights, acc, lanes);
    if (trace) {
        trace->setProcessName(tracePid, "dadiannao node (structural)");
        trace->setThreadName(tracePid, 1, "unit-array");
        trace->setThreadName(tracePid, 2, "fetch");
        units.setTrace(trace, tracePid, 1);
    }

    sim::Engine engine("baseline-pipeline");
    engine.add(fetch);
    engine.add(units);

    BaselinePipelineResult result;
    result.cycles = engine.run();
    result.nmReads = fetch.nmReads();
    units.flushTrace(engine.now());
    fetch.flushTrace(trace, tracePid, 2);
    result.micro.laneBusyCycles =
        units.busyCycles() * static_cast<std::uint64_t>(lanes);
    result.micro.laneIdleCycles =
        units.idleCycles() * static_cast<std::uint64_t>(lanes);
    result.micro.stalls.brickBufferEmpty = result.micro.laneIdleCycles;
    if (mem) {
        const mem::Counters c = mem->drainLayer();
        result.mem.nmAccesses = c.nmAccesses;
        result.mem.nmConflictCycles = c.nmConflictCycles;
        result.mem.gbHits = c.gbHits;
        result.mem.gbMisses = c.gbMisses;
        result.mem.gbEvictions = c.gbEvictions;
        result.mem.dramBytes = c.dramBytes;
        result.mem.dramCycles = c.dramCycles;
    }

    result.output = NeuronTensor(outShape);
    for (std::int64_t w = 0; w < windows; ++w) {
        const int ox = static_cast<int>(w % outShape.x);
        const int oy = static_cast<int>(w / outShape.x);
        for (int f = 0; f < p.filters; ++f) {
            Fixed16 v = Fixed16::productToFixed(acc[w][f]) + bias[f];
            if (p.relu)
                v = v.relu();
            result.output.at(ox, oy, f) = v;
        }
    }
    return result;
}

} // namespace cnv::dadiannao
