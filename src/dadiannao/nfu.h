/**
 * @file
 * Cycle-level model of a DaDianNao node executing one convolutional
 * layer (Sections III-B and IV-A).
 *
 * Every cycle, a 16-neuron fetch block is read from NM and broadcast
 * to all 16 units; each unit multiplies the 16 neurons with 256
 * synapses from its SB (16 filters x 16 synapse sublanes) and
 * reduces them through 16 adder trees into NBout. All lanes operate
 * in lock step — the model is both functional (it produces the
 * layer's output neurons, validated against the golden conv2d) and
 * timing-accurate (it counts cycles, per-lane activity events, and
 * the hardware events that feed the energy model).
 *
 * Windows are processed one at a time; layers with more filters
 * than the node's 256 parallel filters take multiple passes per
 * window. Grouped convolutions process each group's depth slice and
 * filter subset separately. Zero padding is skipped by address
 * generation (no events), matching both architecture models.
 */

#ifndef CNV_DADIANNAO_NFU_H
#define CNV_DADIANNAO_NFU_H

#include <vector>

#include "dadiannao/config.h"
#include "dadiannao/metrics.h"
#include "nn/layer.h"
#include "tensor/neuron_tensor.h"

namespace cnv::dadiannao {

/** Outcome of simulating one conv layer. */
struct ConvSimResult
{
    LayerResult timing;
    tensor::NeuronTensor output;
};

/**
 * Simulate one convolutional layer on the baseline node.
 *
 * @param cfg Node configuration.
 * @param p Layer parameters (relu fused as in the networks).
 * @param in Input neuron array.
 * @param weights N filters.
 * @param bias Per-filter bias.
 * @param isConv1 Account activity as the "conv1" category.
 */
ConvSimResult simulateConvBaseline(const NodeConfig &cfg,
                                   const nn::ConvParams &p,
                                   const tensor::NeuronTensor &in,
                                   const tensor::FilterBank &weights,
                                   const std::vector<tensor::Fixed16> &bias,
                                   bool isConv1);

} // namespace cnv::dadiannao

#endif // CNV_DADIANNAO_NFU_H
