/**
 * @file
 * Whole-network execution on the DaDianNao baseline node: the
 * functional path that computes every layer's actual output (for
 * validation against the golden model and the CNV node) while
 * accounting cycles, activity, and energy events per layer.
 */

#ifndef CNV_DADIANNAO_NODE_H
#define CNV_DADIANNAO_NODE_H

#include "dadiannao/config.h"
#include "dadiannao/metrics.h"
#include "nn/network.h"

namespace cnv::dadiannao {

/** Full result of running a network on the baseline node. */
struct NodeRunResult
{
    NetworkResult timing;
    tensor::NeuronTensor final;
    int top1 = -1;
};

/** Executes networks functionally on the baseline node model. */
class NodeModel
{
  public:
    explicit NodeModel(const NodeConfig &cfg) : cfg_(cfg) {}

    const NodeConfig &config() const { return cfg_; }

    /**
     * Run the network on one input image. Weights come from the
     * network (materialised on demand); calibrate the network first
     * for sparsity-realistic behaviour.
     */
    NodeRunResult run(const nn::Network &net,
                      const tensor::NeuronTensor &input) const;

  private:
    NodeConfig cfg_;
};

} // namespace cnv::dadiannao

#endif // CNV_DADIANNAO_NODE_H
