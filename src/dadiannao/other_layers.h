/**
 * @file
 * Timing of non-convolutional layers — identical on the baseline
 * and CNV (CNV only accelerates convolutional layers; Section V-B's
 * "other" activity category).
 *
 * Throughput model: the node's 256 lanes consume 256 input neurons
 * per cycle for pooling / LRN / softmax; fully-connected layers run
 * at the NFU rate of 16 inputs x 256 filters per cycle but are
 * bounded by off-chip synapse streaming when their weights exceed
 * the SB, with loading overlapped against preceding compute
 * (Section IV-A). Concatenation is NM addressing only and costs no
 * cycles.
 */

#ifndef CNV_DADIANNAO_OTHER_LAYERS_H
#define CNV_DADIANNAO_OTHER_LAYERS_H

#include "dadiannao/config.h"
#include "dadiannao/metrics.h"
#include "nn/network.h"

namespace cnv::dadiannao {

/**
 * Tracks compute cycles available to hide off-chip synapse loads:
 * every executed layer deposits its cycles; each synapse load
 * withdraws what it can and exposes the rest.
 */
class OverlapTracker
{
  public:
    /** Record that `cycles` of compute elapsed (hiding capacity). */
    void
    deposit(std::uint64_t cycles)
    {
        available_ += cycles;
    }

    /** Cycles of a load that could not be hidden. */
    std::uint64_t
    expose(std::uint64_t loadCycles)
    {
        const std::uint64_t hidden = std::min(available_, loadCycles);
        available_ -= hidden;
        return loadCycles - hidden;
    }

  private:
    std::uint64_t available_ = 0;
};

/**
 * Timing/activity for a non-conv node. Valid for Pool, Lrn, Fc,
 * Concat, and Softmax nodes; conv nodes are handled by the
 * architecture models.
 */
LayerResult otherLayerTiming(const NodeConfig &cfg, const nn::Node &node,
                             OverlapTracker &overlap);

/** Exposed cycles for loading a conv layer's synapses into the SB. */
std::uint64_t convSynapseLoadCycles(const NodeConfig &cfg,
                                    const nn::Node &node,
                                    OverlapTracker &overlap,
                                    EnergyCounters &energy);

} // namespace cnv::dadiannao

#endif // CNV_DADIANNAO_OTHER_LAYERS_H
