/**
 * @file
 * Node configuration shared by the DaDianNao baseline and CNV
 * models (Section IV-A): one node = 16 NFUs; each NFU has 16 neuron
 * lanes and 16 filter lanes of 16 synapse sublanes (256 multipliers,
 * 16 adder trees), a 2MB eDRAM SB per unit, SRAM NBin/NBout, and a
 * shared 4MB central eDRAM Neuron Memory. At 1GHz and 16-bit
 * synapses the 16 units consume 4K synapses/cycle = 8TB/s.
 */

#ifndef CNV_DADIANNAO_CONFIG_H
#define CNV_DADIANNAO_CONFIG_H

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>

namespace cnv::dadiannao {

/** How CNV maps a window's bricks to neuron lanes (Section IV-B2). */
enum class LaneAssignment
{
    /**
     * Strict reading of "slice = complete vertical chunk": lane =
     * brick-z-index mod lanes, a static function of array
     * coordinates (matching the one-slice-per-NM-bank layout).
     * Exact for depths that are a multiple of lanes x brick, but it
     * leaves lanes idle on shallow layers.
     */
    ZOnly,
    /**
     * Static spatial hash: lane = (brickZ + x + y) mod lanes. Keeps
     * the bank mapping array-static and spreads shallow columns,
     * but adjacent window cells collide systematically (their x+y
     * differ by 1), so per-window balance is poor.
     */
    XYZHash,
    /**
     * Default — the paper's "divides the window evenly into 16
     * slices": the window's bricks, enumerated in processing order
     * over its valid cells, round-robin across lanes. Identical to
     * ZOnly whenever the depth brick count is a multiple of the
     * lane count (all the paper's deep layers); for shallow layers
     * it keeps every lane busy. Requires bank-to-lane steering in
     * the dispatcher for windows whose brick count is not a lane
     * multiple (the paper does not detail this case; see DESIGN.md
     * and bench_abl_assignment).
     */
    WindowEven,
};

/**
 * How software sets each layer's encoded/conventional flag
 * (Section IV-B: "A single configuration flag set by software for
 * each layer controls whether the unit will use the neuron offset
 * fields").
 */
enum class LayerModePolicy
{
    /** The paper's setting: conventional for the first conv layer
     *  (raw image input), encoded everywhere else. */
    PaperDefault,
    /**
     * Pick per layer whichever mode the timing model says is
     * cheaper — software can estimate this from the previous
     * layer's non-zero counts (the encoder sees them). Falls back
     * to conventional on layers where serialising bricks through
     * the lanes would lose to the lock-step broadcast.
     */
    Profitable,
};

/** Architecture parameters for one accelerator node. */
struct NodeConfig
{
    int units = 16;              ///< NFUs per node
    int lanes = 16;              ///< neuron lanes (CNV subunits) per unit
    int filtersPerUnit = 16;     ///< filter lanes per unit
    int brickSize = 16;          ///< ZFNAf brick = DaDianNao fetch block
    int nbinEntries = 64;        ///< NBin depth per subunit
    int nboutEntries = 64;       ///< NBout depth per unit
    std::size_t sbBytesPerUnit = 2u << 20;  ///< 2MB eDRAM SB per unit
    std::size_t nmBytes = 4u << 20;         ///< 4MB central eDRAM NM
    int nmBanks = 16;            ///< NM banking (CNV)
    double clockGhz = 1.0;

    /**
     * Off-chip bandwidth for streaming synapses that exceed the SB
     * (fully-connected layers). Loading overlaps earlier layers'
     * compute (Section IV-A); only the exposed remainder stalls.
     */
    int offchipBytesPerCycle = 512;

    /** CNV brick-to-lane mapping policy. */
    LaneAssignment laneAssignment = LaneAssignment::WindowEven;

    /** Per-layer encoded/conventional selection policy. */
    LayerModePolicy layerModePolicy = LayerModePolicy::PaperDefault;

    /**
     * Cost of a brick whose neurons are all zero: 1 cycle (the NM
     * bank supplies at most one brick per cycle — the paper's worst
     * case) or 0 (idealised skip, for the ablation study).
     */
    bool emptyBrickCostsCycle = true;

    /**
     * Extension (off by default — the paper's CNV targets only
     * convolutional layers): apply zero skipping to fully-connected
     * layers too, eliding both the compute and the off-chip synapse
     * fetches of zero activations (Section VII's "broader
     * applicability"; cf. EIE). See bench_ext_fc.
     */
    bool cnvSkipsFcLayers = false;

    /** Filters processed in parallel across the node. */
    int
    parallelFilters() const
    {
        return units * filtersPerUnit;
    }

    /** Input neurons consumed per cycle across the node. */
    int
    nodeLanes() const
    {
        return units * lanes;
    }

    /**
     * Windows whose partial sums fit in NBout simultaneously: with
     * 64 NBout entries and 16 filters per unit, CNV keeps 4 windows
     * in flight, synchronising lanes only at window-group
     * boundaries (Sections IV-B and IV-B5).
     */
    int
    windowsInFlight() const
    {
        return std::max(1, nboutEntries / filtersPerUnit);
    }

    /** Check structural constraints; fatal with a reason if broken. */
    void validate() const;

    /** One-line human-readable summary for experiment logs. */
    std::string describe() const;
};

} // namespace cnv::dadiannao

#endif // CNV_DADIANNAO_CONFIG_H
