#include "dadiannao/other_layers.h"

#include <algorithm>

#include "sim/logging.h"

namespace cnv::dadiannao {

namespace {

/** Sum over output positions of the valid (clamped) window extent. */
std::uint64_t
validWindowSum(int outDim, int inDim, int k, int stride, int pad)
{
    std::uint64_t total = 0;
    for (int o = 0; o < outDim; ++o) {
        const int lo = std::max(0, o * stride - pad);
        const int hi = std::min(inDim, o * stride - pad + k);
        total += static_cast<std::uint64_t>(std::max(0, hi - lo));
    }
    return total;
}

} // namespace

std::uint64_t
convSynapseLoadCycles(const NodeConfig &cfg, const nn::Node &node,
                      OverlapTracker &overlap, EnergyCounters &energy)
{
    const std::uint64_t bytes = node.synapses() * 2;
    energy.offchipBytes += bytes;
    const std::uint64_t loadCycles =
        (bytes + cfg.offchipBytesPerCycle - 1) / cfg.offchipBytesPerCycle;
    return overlap.expose(loadCycles);
}

LayerResult
otherLayerTiming(const NodeConfig &cfg, const nn::Node &node,
                 OverlapTracker &overlap)
{
    LayerResult result;
    result.name = node.name;
    const std::uint64_t nodeLanes =
        static_cast<std::uint64_t>(cfg.nodeLanes());
    std::uint64_t inputReads = 0;
    std::uint64_t cycles = 0;
    // Cycles in which the lanes do datapath work; the remainder (FC
    // layers bound by the synapse stream) is exposed memory time.
    std::uint64_t busyCycles = 0;
    bool memoryBound = false;

    switch (node.kind) {
      case nn::NodeKind::Pool: {
        const auto out = node.pool.outputShape(node.inShape);
        const std::uint64_t ax = validWindowSum(
            out.x, node.inShape.x, node.pool.k, node.pool.stride,
            node.pool.pad);
        const std::uint64_t ay = validWindowSum(
            out.y, node.inShape.y, node.pool.k, node.pool.stride,
            node.pool.pad);
        inputReads = ax * ay * static_cast<std::uint64_t>(node.inShape.z);
        cycles = (inputReads + nodeLanes - 1) / nodeLanes;
        break;
      }
      case nn::NodeKind::Lrn: {
        const std::uint64_t perPosition = validWindowSum(
            node.inShape.z, node.inShape.z, node.lrnParams.localSize, 1,
            node.lrnParams.localSize / 2);
        inputReads = perPosition * static_cast<std::uint64_t>(node.inShape.x) *
                     static_cast<std::uint64_t>(node.inShape.y);
        cycles = (inputReads + nodeLanes - 1) / nodeLanes;
        break;
      }
      case nn::NodeKind::Fc: {
        const std::uint64_t volume = node.inShape.volume();
        const std::uint64_t passes =
            (node.fc.outputs + cfg.parallelFilters() - 1) /
            cfg.parallelFilters();
        const std::uint64_t compute =
            passes * ((volume + cfg.lanes - 1) / cfg.lanes);
        const std::uint64_t bytes = node.synapses() * 2;
        result.energy.offchipBytes += bytes;
        const std::uint64_t load =
            (bytes + cfg.offchipBytesPerCycle - 1) / cfg.offchipBytesPerCycle;
        const std::uint64_t exposed = overlap.expose(load);
        // Streaming: compute proceeds as synapses arrive, so the
        // layer takes the slower of datapath and exposed memory time.
        cycles = std::max(compute, exposed);
        busyCycles = compute;
        memoryBound = true;
        inputReads = volume * passes;
        // Each synapse is used exactly once, fetched in
        // brick-wide (16-synapse) sublane reads.
        result.energy.sbReads +=
            node.synapses() / static_cast<std::uint64_t>(cfg.brickSize);
        result.energy.multOps += node.fc.macs(node.inShape);
        result.energy.addOps += node.fc.macs(node.inShape);
        break;
      }
      case nn::NodeKind::Concat:
        // Addressing only: the encoder already wrote bricks at their
        // aligned positions, so concatenation costs no cycles.
        cycles = 0;
        break;
      case nn::NodeKind::Softmax:
        inputReads = node.inShape.volume();
        cycles = (inputReads + nodeLanes - 1) / nodeLanes;
        break;
      case nn::NodeKind::Input:
        cycles = 0;
        break;
      case nn::NodeKind::Conv:
        CNV_PANIC("conv layers are handled by the architecture models");
    }

    result.cycles = cycles;
    result.activity.other = cycles * nodeLanes;
    if (!memoryBound)
        busyCycles = cycles;
    result.micro.laneBusyCycles =
        busyCycles * static_cast<std::uint64_t>(cfg.lanes);
    result.micro.laneIdleCycles =
        (cycles - busyCycles) * static_cast<std::uint64_t>(cfg.lanes);
    result.micro.stalls.synapseWait = result.micro.laneIdleCycles;
    if (node.kind != nn::NodeKind::Concat &&
        node.kind != nn::NodeKind::Input) {
        result.energy.nmReads += inputReads / cfg.lanes;
        result.energy.nmWrites +=
            node.outShape.volume() / static_cast<std::size_t>(cfg.lanes) +
            1;
    }
    overlap.deposit(cycles);
    return result;
}

} // namespace cnv::dadiannao
