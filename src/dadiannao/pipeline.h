/**
 * @file
 * Structural cycle-level DaDianNao pipeline (Figure 5(a) / Section
 * III-B): a fetch unit streams 16-neuron fetch blocks from NM
 * through a registered NBin stage to the lock-step unit array,
 * whose 256 multipliers and 16 adder trees accumulate partial
 * output neurons in NBout.
 *
 * Counterpart of core/pipeline.*: it validates that the baseline
 * batch model's cycle counts correspond to a real broadcast
 * pipeline (one block per cycle, constant pipeline depth), and it
 * makes the contrast with CNV concrete — here every lane advances
 * with the block, zeros included.
 *
 * Packed-row (shallow-input) layers and multi-pass/grouped layers
 * are out of scope; like the CNV pipeline this is a validation
 * vehicle, not the experiment path.
 */

#ifndef CNV_DADIANNAO_PIPELINE_H
#define CNV_DADIANNAO_PIPELINE_H

#include <vector>

#include "dadiannao/config.h"
#include "nn/layer.h"
#include "tensor/neuron_tensor.h"

namespace cnv::dadiannao {

/** Result of a baseline pipeline execution. */
struct BaselinePipelineResult
{
    tensor::NeuronTensor output;
    std::uint64_t cycles = 0;
    std::uint64_t nmReads = 0;
};

/** Execute one conv layer through the structural baseline pipeline. */
BaselinePipelineResult
runConvPipelineBaseline(const NodeConfig &cfg, const nn::ConvParams &p,
                        const tensor::NeuronTensor &in,
                        const tensor::FilterBank &weights,
                        const std::vector<tensor::Fixed16> &bias);

} // namespace cnv::dadiannao

#endif // CNV_DADIANNAO_PIPELINE_H
