/**
 * @file
 * Structural cycle-level DaDianNao pipeline (Figure 5(a) / Section
 * III-B): a fetch unit streams 16-neuron fetch blocks from NM
 * through a registered NBin stage to the lock-step unit array,
 * whose 256 multipliers and 16 adder trees accumulate partial
 * output neurons in NBout.
 *
 * Counterpart of core/pipeline.*: it validates that the baseline
 * batch model's cycle counts correspond to a real broadcast
 * pipeline (one block per cycle, constant pipeline depth), and it
 * makes the contrast with CNV concrete — here every lane advances
 * with the block, zeros included.
 *
 * Packed-row (shallow-input) layers and multi-pass/grouped layers
 * are out of scope; like the CNV pipeline this is a validation
 * vehicle, not the experiment path.
 */

#ifndef CNV_DADIANNAO_PIPELINE_H
#define CNV_DADIANNAO_PIPELINE_H

#include <vector>

#include "dadiannao/config.h"
#include "dadiannao/metrics.h"
#include "mem/memory_model.h"
#include "nn/layer.h"
#include "sim/trace_event.h"
#include "tensor/neuron_tensor.h"

namespace cnv::dadiannao {

/** Result of a baseline pipeline execution. */
struct BaselinePipelineResult
{
    tensor::NeuronTensor output;
    std::uint64_t cycles = 0;
    std::uint64_t nmReads = 0;
    /**
     * Lock-step lane occupancy: the whole array is busy or idle
     * together, so laneBusyCycles + laneIdleCycles == cycles x lanes
     * and every idle lane-cycle is a BrickBufferEmpty (NBin fill)
     * wait — micro.stalls.total() == micro.laneIdleCycles.
     */
    MicroTrace micro;
    /** Memory counters when a model was supplied (zero otherwise). */
    MemTrace mem;
};

/**
 * Execute one conv layer through the structural baseline pipeline.
 *
 * @param trace Optional event sink. When set, the run streams
 *        Chrome trace events under process @p tracePid, mirroring
 *        the CNV pipeline's track layout so the two traces diff
 *        side by side: a unit-array track (tid 1) with busy/stall
 *        spans and a fetch-stream track (tid 2).
 * @param tracePid Trace process id to emit under.
 * @param mem Optional memory model the fetch unit's NM reads are
 *        issued against (sequential single-pointer stream, so a
 *        banked NM never conflicts); drained into result.mem.
 */
BaselinePipelineResult
runConvPipelineBaseline(const NodeConfig &cfg, const nn::ConvParams &p,
                        const tensor::NeuronTensor &in,
                        const tensor::FilterBank &weights,
                        const std::vector<tensor::Fixed16> &bias,
                        sim::TraceSink *trace = nullptr,
                        std::uint32_t tracePid = 2,
                        mem::MemoryModel *mem = nullptr);

} // namespace cnv::dadiannao

#endif // CNV_DADIANNAO_PIPELINE_H
