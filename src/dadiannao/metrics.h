/**
 * @file
 * Result records shared by both accelerator models.
 *
 * Activity follows the paper's Figure 10 metric: one event per
 * (unit, neuron lane, cycle), each assigned to exactly one category,
 * so the event total units x lanes x cycles is directly proportional
 * to execution time.
 */

#ifndef CNV_DADIANNAO_METRICS_H
#define CNV_DADIANNAO_METRICS_H

#include <cstdint>
#include <string>
#include <vector>

namespace cnv::dadiannao {

/** Per-lane-cycle activity categories (Figure 10). */
struct Activity
{
    std::uint64_t other = 0;    ///< non-convolutional layers
    std::uint64_t conv1 = 0;    ///< first convolutional layer
    std::uint64_t zero = 0;     ///< processing a zero neuron
    std::uint64_t nonZero = 0;  ///< processing a non-zero neuron
    std::uint64_t stall = 0;    ///< idle waiting for window sync

    std::uint64_t
    total() const
    {
        return other + conv1 + zero + nonZero + stall;
    }

    Activity &
    operator+=(const Activity &o)
    {
        other += o.other;
        conv1 += o.conv1;
        zero += o.zero;
        nonZero += o.nonZero;
        stall += o.stall;
        return *this;
    }
};

/** Hardware event counters feeding the energy model. */
struct EnergyCounters
{
    /** 16-synapse SB sublane reads (suppressed when a subunit stalls). */
    std::uint64_t sbReads = 0;
    /** 16-neuron-wide NM reads (CNV reads carry offsets too). */
    std::uint64_t nmReads = 0;
    /** 16-neuron-wide NM writes (via NBout / encoder). */
    std::uint64_t nmWrites = 0;
    /** NBin entry reads (one neuron or one (neuron, offset) pair). */
    std::uint64_t nbinReads = 0;
    /** NBin entry writes. */
    std::uint64_t nbinWrites = 0;
    /** Multiplications actually performed. */
    std::uint64_t multOps = 0;
    /** Adder-tree reduction operations (per product). */
    std::uint64_t addOps = 0;
    /** Encoder neuron examinations (CNV only). */
    std::uint64_t encoderOps = 0;
    /** Bytes streamed from off-chip memory. */
    std::uint64_t offchipBytes = 0;

    EnergyCounters &
    operator+=(const EnergyCounters &o)
    {
        sbReads += o.sbReads;
        nmReads += o.nmReads;
        nmWrites += o.nmWrites;
        nbinReads += o.nbinReads;
        nbinWrites += o.nbinWrites;
        multOps += o.multOps;
        addOps += o.addOps;
        encoderOps += o.encoderOps;
        offchipBytes += o.offchipBytes;
        return *this;
    }
};

/**
 * Reason-attributed idle lane-cycles. Every idle lane-cycle a model
 * reports in MicroTrace::laneIdleCycles is assigned to exactly one
 * field here, so total() == laneIdleCycles wherever both are filled
 * (enforced by tests/analysis/test_trace_pipeline.cc). The reason
 * vocabulary matches sim::StallReason (sim/stall_profile.h).
 */
struct StallBreakdown
{
    /** Waiting on an NM brick fetch (or NBin fill, baseline). */
    std::uint64_t brickBufferEmpty = 0;
    /** Waiting at a window-group synchronisation barrier. */
    std::uint64_t windowBarrier = 0;
    /** Waiting on the exposed off-chip synapse stream. */
    std::uint64_t synapseWait = 0;
    /** Lane slice drained while other lanes still worked. */
    std::uint64_t sliceDrained = 0;
    /** Slice fetch pointers serialised on an NM bank conflict
     *  (`--mem banked` runs only; zero under the ideal model). */
    std::uint64_t nmBankConflict = 0;
    /** Global-buffer miss fills not hidden behind compute
     *  (`--mem banked` runs only). */
    std::uint64_t gbMiss = 0;
    /** Off-chip activation spill past the NM capacity
     *  (`--mem banked` runs only). */
    std::uint64_t dramWait = 0;

    std::uint64_t
    total() const
    {
        return brickBufferEmpty + windowBarrier + synapseWait +
               sliceDrained + nmBankConflict + gbMiss + dramWait;
    }

    StallBreakdown &
    operator+=(const StallBreakdown &o)
    {
        brickBufferEmpty += o.brickBufferEmpty;
        windowBarrier += o.windowBarrier;
        synapseWait += o.synapseWait;
        sliceDrained += o.sliceDrained;
        nmBankConflict += o.nmBankConflict;
        gbMiss += o.gbMiss;
        dramWait += o.dramWait;
        return *this;
    }
};

/**
 * Per-layer memory-hierarchy counters (filled only on `--mem
 * banked` runs; all zero — and omitted from every report — under
 * the ideal model). Mirrors mem::Counters so result records stay
 * plain data with no mem dependency.
 */
struct MemTrace
{
    /** Brick-granular NM reads issued (global-buffer hits excluded). */
    std::uint64_t nmAccesses = 0;
    /** Extra cycles serialised on NM bank conflicts. */
    std::uint64_t nmConflictCycles = 0;
    /** Global-buffer hits / misses / capacity evictions. */
    std::uint64_t gbHits = 0;
    std::uint64_t gbMisses = 0;
    std::uint64_t gbEvictions = 0;
    /** Off-chip traffic and the channel cycles it occupied. */
    std::uint64_t dramBytes = 0;
    std::uint64_t dramCycles = 0;

    MemTrace &
    operator+=(const MemTrace &o)
    {
        nmAccesses += o.nmAccesses;
        nmConflictCycles += o.nmConflictCycles;
        gbHits += o.gbHits;
        gbMisses += o.gbMisses;
        gbEvictions += o.gbEvictions;
        dramBytes += o.dramBytes;
        dramCycles += o.dramCycles;
        return *this;
    }
};

/**
 * Per-layer microarchitecture occupancy detail (observability).
 *
 * Lane counts are per unit (multiply by the unit count for node
 * totals) and partition each layer's cycles: busy + idle =
 * cycles x lanes wherever the producer models lanes. Encoder fields
 * are populated for CNV encoded layers; the brick-buffer occupancy
 * fields only by the structural dispatcher pipeline (the fast
 * models assume perfect prefetch and do not sample the BB).
 */
struct MicroTrace
{
    /** Lane-cycles spent draining (value, offset) pairs or blocks. */
    std::uint64_t laneBusyCycles = 0;
    /** Lane-cycles idle at window-group synchronisation points. */
    std::uint64_t laneIdleCycles = 0;
    /** The same idle lane-cycles, attributed to stall reasons. */
    StallBreakdown stalls;
    /** Cycles the encoder spent converting output bricks (serial). */
    std::uint64_t encoderBusyCycles = 0;
    /** ZFNAf output bricks produced by the encoder. */
    std::uint64_t encoderBricks = 0;
    /** Dispatcher brick-buffer entries occupied, summed per cycle. */
    std::uint64_t bbOccupancySum = 0;
    /** Cycles over which the brick buffer was sampled. */
    std::uint64_t bbSampleCycles = 0;

    /** Fraction of lane-cycles doing work (1.0 when lock-step). */
    double
    laneUtilisation() const
    {
        const std::uint64_t total = laneBusyCycles + laneIdleCycles;
        return total ? static_cast<double>(laneBusyCycles) /
                           static_cast<double>(total)
                     : 0.0;
    }

    /** Mean brick-buffer occupancy over the sampled cycles. */
    double
    meanBbOccupancy() const
    {
        return bbSampleCycles ? static_cast<double>(bbOccupancySum) /
                                    static_cast<double>(bbSampleCycles)
                              : 0.0;
    }

    MicroTrace &
    operator+=(const MicroTrace &o)
    {
        laneBusyCycles += o.laneBusyCycles;
        laneIdleCycles += o.laneIdleCycles;
        stalls += o.stalls;
        encoderBusyCycles += o.encoderBusyCycles;
        encoderBricks += o.encoderBricks;
        bbOccupancySum += o.bbOccupancySum;
        bbSampleCycles += o.bbSampleCycles;
        return *this;
    }
};

/** Timing/activity result for one layer on one architecture. */
struct LayerResult
{
    std::string name;
    std::uint64_t cycles = 0;
    /**
     * First cycle of the layer on the run's serialized timeline
     * (cumulative over the preceding layers; overlap with off-chip
     * loads is already folded into each layer's exposed cycles).
     * Stamped by NetworkResult::stampTimeline().
     */
    std::uint64_t startCycle = 0;
    Activity activity;
    EnergyCounters energy;
    MicroTrace micro;
    /** Memory-hierarchy counters (all zero unless `--mem banked`). */
    MemTrace mem;
};

/** Whole-network result. */
struct NetworkResult
{
    std::string network;
    std::string architecture;
    /**
     * True when the run simulated the memory hierarchy (`--mem
     * banked`): per-layer MemTrace fields are meaningful and the
     * reports emit the memory blocks. False keeps every report
     * byte-identical to a pre-mem build.
     */
    bool memModelled = false;
    std::vector<LayerResult> layers;

    std::uint64_t
    totalCycles() const
    {
        std::uint64_t total = 0;
        for (const LayerResult &l : layers)
            total += l.cycles;
        return total;
    }

    Activity
    totalActivity() const
    {
        Activity a;
        for (const LayerResult &l : layers)
            a += l.activity;
        return a;
    }

    EnergyCounters
    totalEnergy() const
    {
        EnergyCounters e;
        for (const LayerResult &l : layers)
            e += l.energy;
        return e;
    }

    MicroTrace
    totalMicro() const
    {
        MicroTrace m;
        for (const LayerResult &l : layers)
            m += l.micro;
        return m;
    }

    MemTrace
    totalMem() const
    {
        MemTrace m;
        for (const LayerResult &l : layers)
            m += l.mem;
        return m;
    }

    /**
     * Assign each layer's startCycle as the cumulative sum of the
     * preceding layers' cycles (the serialized run timeline). Called
     * by the network-level model builders once all layers exist.
     */
    void
    stampTimeline()
    {
        std::uint64_t now = 0;
        for (LayerResult &l : layers) {
            l.startCycle = now;
            now += l.cycles;
        }
    }
};

} // namespace cnv::dadiannao

#endif // CNV_DADIANNAO_METRICS_H
