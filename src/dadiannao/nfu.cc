#include "dadiannao/nfu.h"

#include <algorithm>

#include "sim/logging.h"

namespace cnv::dadiannao {

using tensor::Accum;
using tensor::FilterBank;
using tensor::Fixed16;
using tensor::NeuronTensor;
using tensor::Shape3;

ConvSimResult
simulateConvBaseline(const NodeConfig &cfg, const nn::ConvParams &p,
                     const NeuronTensor &in, const FilterBank &weights,
                     const std::vector<Fixed16> &bias, bool isConv1)
{
    const Shape3 inShape = in.shape();
    const Shape3 outShape = p.outputShape(inShape);
    const int lanes = cfg.lanes;
    const int depthPerGroup = inShape.z / p.groups;
    const int filtersPerGroup = p.filters / p.groups;
    const int parallel = cfg.parallelFilters();

    ConvSimResult result;
    result.timing.name = "conv";
    result.output = NeuronTensor(outShape);

    Activity &act = result.timing.activity;
    EnergyCounters &en = result.timing.energy;
    std::uint64_t cycles = 0;

    // Shallow inputs (depth below the fetch-block size, i.e., the
    // first layer's 3-feature image) would waste most lanes if
    // fetch blocks were taken per (x, y) column. Fetch blocks are
    // 16 *contiguous* neurons, and with depth-fastest storage a
    // window row spans Fx x depth contiguous values, so the blocks
    // pack across the x dimension instead. Lanes that fall outside
    // the window within a block carry neighbouring-column data and
    // do no useful work.
    const bool packedRows = depthPerGroup < lanes && p.groups == 1;

    // Per-(window, filter) accumulators — the NBout partial sums.
    std::vector<Accum> acc(static_cast<std::size_t>(p.filters));

    for (int oy = 0; oy < outShape.y; ++oy) {
        for (int ox = 0; ox < outShape.x; ++ox) {
            std::fill(acc.begin(), acc.end(), Accum{0});
            const int x0 = ox * p.stride - p.pad;
            const int y0 = oy * p.stride - p.pad;

            for (int g = 0; g < p.groups; ++g) {
                const int zBase = g * depthPerGroup;
                const int fBase = g * filtersPerGroup;
                const int passes = (filtersPerGroup + parallel - 1) / parallel;

                for (int pass = 0; pass < passes; ++pass) {
                    const int fStart = fBase + pass * parallel;
                    const int fCount =
                        std::min(parallel, fBase + filtersPerGroup - fStart);
                    // Units hosting at least one active filter this
                    // pass; idle units burn no SB energy.
                    const int activeUnits =
                        (fCount + cfg.filtersPerUnit - 1) / cfg.filtersPerUnit;

                    auto chargeCycle = [&] {
                        ++cycles;
                        en.nmReads += 1;
                        en.nbinWrites +=
                            static_cast<std::uint64_t>(lanes) * cfg.units;
                        en.nbinReads +=
                            static_cast<std::uint64_t>(lanes) * cfg.units;
                        en.sbReads +=
                            static_cast<std::uint64_t>(lanes) * activeUnits;
                        en.multOps +=
                            static_cast<std::uint64_t>(lanes) * fCount;
                        en.addOps +=
                            static_cast<std::uint64_t>(lanes) * fCount;
                    };
                    auto chargeLane = [&](Fixed16 n) {
                        // Activity is accounted per (unit, lane,
                        // cycle): Fig. 10.
                        const std::uint64_t events = cfg.units;
                        if (isConv1)
                            act.conv1 += events;
                        else if (n.isZero())
                            act.zero += events;
                        else
                            act.nonZero += events;
                    };

                    for (int ky = 0; ky < p.fy; ++ky) {
                        const int iy = y0 + ky;
                        if (iy < 0 || iy >= inShape.y)
                            continue; // padding skipped by control
                        if (packedRows) {
                            // Blocks pack a whole window row.
                            const int xs = std::max(x0, 0);
                            const int xe = std::min(x0 + p.fx, inShape.x);
                            const int s0 = xs * depthPerGroup;
                            const int s1 = xe * depthPerGroup; // one past
                            for (int blk = s0 / lanes;
                                 blk <= (s1 - 1) / lanes; ++blk) {
                                chargeCycle();
                                for (int lane = 0; lane < lanes; ++lane) {
                                    const int pos = blk * lanes + lane;
                                    if (pos < s0 || pos >= s1) {
                                        // Neighbouring-column data:
                                        // broadcast but unused.
                                        chargeLane(Fixed16{});
                                        continue;
                                    }
                                    const int ix = pos / depthPerGroup;
                                    const int z = pos % depthPerGroup;
                                    const Fixed16 n = in.at(ix, iy, z);
                                    chargeLane(n);
                                    if (n.isZero())
                                        continue;
                                    for (int f = 0; f < fCount; ++f) {
                                        const Fixed16 s = weights.at(
                                            fStart + f, ix - x0, ky, z);
                                        acc[fStart + f] += mulRaw(n, s);
                                    }
                                }
                            }
                            continue;
                        }
                        for (int kx = 0; kx < p.fx; ++kx) {
                            const int ix = x0 + kx;
                            if (ix < 0 || ix >= inShape.x)
                                continue;

                            const Fixed16 *col = in.column(ix, iy) + zBase;
                            const int blocks =
                                (depthPerGroup + lanes - 1) / lanes;
                            for (int blk = 0; blk < blocks; ++blk) {
                                // --- one cycle: broadcast 16 neurons ---
                                chargeCycle();
                                for (int lane = 0; lane < lanes; ++lane) {
                                    const int z = blk * lanes + lane;
                                    const Fixed16 n = z < depthPerGroup
                                        ? col[z] : Fixed16{};
                                    chargeLane(n);
                                    if (n.isZero())
                                        continue;
                                    for (int f = 0; f < fCount; ++f) {
                                        const Fixed16 s = weights.at(
                                            fStart + f, kx, ky, z);
                                        acc[fStart + f] += mulRaw(n, s);
                                    }
                                }
                            }
                        }
                    }
                }
            }

            // Drain NBout: requantise, bias, ReLU, write to NM.
            for (int f = 0; f < p.filters; ++f) {
                Fixed16 v = Fixed16::productToFixed(acc[f]) + bias[f];
                if (p.relu)
                    v = v.relu();
                result.output.at(ox, oy, f) = v;
            }
            en.nmWrites += (p.filters + lanes - 1) / lanes;
        }
    }

    result.timing.cycles = cycles;
    // Lock-step broadcast: every lane is occupied every cycle (the
    // zero/non-zero split lives in the activity categories).
    result.timing.micro.laneBusyCycles =
        cycles * static_cast<std::uint64_t>(lanes);
    return result;
}

} // namespace cnv::dadiannao
