/**
 * @file
 * Annotated synchronization primitives: thin wrappers over
 * `std::mutex` / `std::condition_variable_any` that carry the Clang
 * thread-safety attributes from core/thread_annotations.h, so
 * `-Wthread-safety` can prove which locks guard which state. The
 * standard library types themselves are unannotated on libstdc++,
 * which is why every lock-discipline-checked module (sim/parallel,
 * sim/metrics, timing/trace_cache, nn/network) holds a `core::Mutex`
 * rather than a bare `std::mutex`.
 *
 * Zero-overhead intent: `Mutex` is exactly a `std::mutex` and
 * `MutexLock` is the `std::lock_guard` idiom; the attributes vanish
 * outside Clang. Condition waits use `std::condition_variable_any`
 * over the `Mutex` directly — the analysis treats the capability as
 * held across `wait()`, which matches the caller-visible contract
 * (locked before, locked after).
 *
 * Like thread_annotations.h this header is freestanding (no src/
 * includes beyond that header), so using it never creates a
 * layering edge (tools/check_layering.py verifies that).
 */

#ifndef CNV_CORE_SYNC_H
#define CNV_CORE_SYNC_H

#include <condition_variable>
#include <mutex>

#include "core/thread_annotations.h"

namespace cnv::core {

/**
 * A `std::mutex` annotated as a thread-safety capability. Lock it
 * through MutexLock (preferred) or the annotated lock()/unlock()
 * when an RAII scope cannot express the protocol.
 */
class CNV_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    /** Block until the capability is exclusively held. */
    void
    lock() CNV_ACQUIRE()
    {
        m_.lock();
    }

    /** Release the capability (must be held). */
    void
    unlock() CNV_RELEASE()
    {
        m_.unlock();
    }

    /** Acquire without blocking; true when the lock was taken. */
    bool
    try_lock() CNV_TRY_ACQUIRE(true)
    {
        return m_.try_lock();
    }

  private:
    std::mutex m_;
};

/**
 * RAII lock over a Mutex — `std::lock_guard` with the
 * scoped-capability annotation, so guarded members are provably
 * accessible for exactly the guard's lifetime.
 */
class CNV_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &m) CNV_ACQUIRE(m) : m_(m) { m_.lock(); }
    ~MutexLock() CNV_RELEASE() { m_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &m_;
};

/**
 * Condition variable usable with core::Mutex. `wait(mutex)` expects
 * the mutex held (the analysis sees it held throughout, matching
 * the contract that `wait` returns with the lock re-acquired); wrap
 * the wait in the usual `while (!predicate)` loop.
 */
using ConditionVariable = std::condition_variable_any;

} // namespace cnv::core

#endif // CNV_CORE_SYNC_H
