/**
 * @file
 * Structural cycle-level CNV pipeline: the complete unit array of
 * Figure 5(b) assembled from Clocked components and driven by a
 * sim::Engine, executing one convolutional layer on a ZFNAf input.
 *
 *   NM banks -> Dispatcher (BB, per-bank fetch pointers)
 *            -> 16 subunit front-ends (offset-indexed SB access,
 *               16 multipliers each)
 *            -> 16 adder trees -> NBout -> Encoder -> NM
 *
 * Where core/unit.cc computes per-window lane times in a batch loop
 * (fast, used by experiments), this pipeline steps every component
 * cycle by cycle, including the dispatcher's prefetch machinery —
 * it exists to show that the fast model's timing assumptions hold
 * structurally: outputs are bit-identical, and cycle counts match
 * up to the documented one-time NM fill per window group.
 *
 * Only the filters of one unit are modelled per subunit
 * (the remaining 15 units are timing-identical replicas processing
 * other filters in lock step with the back-end), and layers must
 * fit one filter pass (filters <= parallelFilters) and one group —
 * the pipeline is a validation vehicle, not the experiment path.
 */

#ifndef CNV_CORE_PIPELINE_H
#define CNV_CORE_PIPELINE_H

#include <vector>

#include "core/dispatcher.h"
#include "dadiannao/config.h"
#include "dadiannao/metrics.h"
#include "nn/layer.h"
#include "sim/trace_event.h"
#include "tensor/neuron_tensor.h"
#include "zfnaf/format.h"

namespace cnv::core {

/** Result of a pipeline execution. */
struct PipelineResult
{
    tensor::NeuronTensor output;
    std::uint64_t cycles = 0;
    /** 16-neuron-wide NM reads issued by the dispatcher. */
    std::uint64_t nmReads = 0;
    /** Cycles the encoder spent converting output bricks. */
    std::uint64_t encoderBusyCycles = 0;
    /** ZFNAf bricks produced by the encoder. */
    std::uint64_t encoderBricks = 0;
    /** Dispatcher BB entries occupied, summed per sampled cycle. */
    std::uint64_t bbOccupancySum = 0;
    /** Cycles over which the BB occupancy was sampled. */
    std::uint64_t bbSampleCycles = 0;
    /**
     * One measurement region per window group on the pipeline's
     * continuous timeline ([begin, end) cycle intervals, in order).
     */
    std::vector<sim::Region> regions;
    /**
     * Lane occupancy with reason-attributed idle cycles, measured
     * over the dispatcher's sampled (active) cycles:
     * laneBusyCycles + laneIdleCycles == bbSampleCycles x lanes and
     * micro.stalls.total() == micro.laneIdleCycles (BrickBufferEmpty
     * for NM-fetch waits, SliceDrained for lanes that ran dry).
     */
    dadiannao::MicroTrace micro;

    /** Mean bricks resident in the BB while the dispatcher ran. */
    double
    meanBbOccupancy() const
    {
        return bbSampleCycles ? static_cast<double>(bbOccupancySum) /
                                    static_cast<double>(bbSampleCycles)
                              : 0.0;
    }
};

/**
 * Execute one conv layer through the structural pipeline.
 *
 * @param cfg Node configuration (lane assignment, NBout depth,
 *        empty-brick policy are honoured; groups and multi-pass
 *        layers are rejected).
 * @param dispatchCfg Dispatcher/NM parameters (latency, BB depth).
 * @param trace Optional event sink. When set, the run streams
 *        Chrome trace events under process @p tracePid: window-group
 *        spans on tid 0, per-lane busy/stall spans on tids
 *        1..lanes, encoder "encode" spans on tid lanes+1 (the
 *        encoder drains on its own overlapped clock — see
 *        docs/observability.md), and a "bbOccupancy" counter.
 * @param tracePid Trace process id to emit under (tids as above).
 */
PipelineResult runConvPipeline(const dadiannao::NodeConfig &cfg,
                               const DispatcherConfig &dispatchCfg,
                               const nn::ConvParams &p,
                               const zfnaf::EncodedArray &in,
                               const tensor::FilterBank &weights,
                               const std::vector<tensor::Fixed16> &bias,
                               sim::TraceSink *trace = nullptr,
                               std::uint32_t tracePid = 1);

} // namespace cnv::core

#endif // CNV_CORE_PIPELINE_H
