/**
 * @file
 * Cycle-level model of the CNV Dispatcher (Section IV-B3).
 *
 * The NM's subarrays are grouped into 16 independent banks; the
 * input-neuron slices are statically distributed one per bank. The
 * dispatcher holds a 16-entry Brick Buffer (BB): entry i accepts
 * 16-neuron-wide bricks from bank i and broadcasts one
 * (value, offset) pair per cycle to neuron lane i of every unit.
 * Because lanes drain at different rates, each bank keeps its own
 * fetch pointer, and the next brick in processing order is
 * prefetched as early as the BB slot allows, hiding NM latency. In
 * the worst case (all-zero bricks) a bank must supply one brick per
 * cycle — the banks are sub-banked to sustain exactly that.
 *
 * This component exists to validate the timing assumptions baked
 * into the fast models (core/unit.cc and timing/conv_model.cc):
 * with the default double-buffered BB the dispatcher reproduces
 * their per-lane drain times exactly, and tests also show where
 * extra NM latency would start to leak stalls.
 */

#ifndef CNV_CORE_DISPATCHER_H
#define CNV_CORE_DISPATCHER_H

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "core/geometry.h"
#include "sim/engine.h"
#include "sim/stats.h"
#include "sim/trace_event.h"
#include "zfnaf/format.h"

namespace cnv::core {

/** One (value, offset) pair broadcast to a neuron lane. */
struct DispatchedNeuron
{
    tensor::Fixed16 value;
    std::uint8_t offset = 0;
    /** Sequence number of the source brick within the lane. */
    std::uint32_t brickSeq = 0;
};

/** A brick in a lane's processing order (owned copies for the sim). */
using BrickData = std::vector<zfnaf::EncodedNeuron>;

/** Configuration of the dispatcher/NM-bank model. */
struct DispatcherConfig
{
    int lanes = kPaperLanes;
    /** NM bank access latency in cycles. */
    int nmLatencyCycles = 2;
    /** Bricks a BB entry can hold (current + prefetched). */
    int bbDepth = 2;
    /** An all-zero brick occupies the lane for one cycle. */
    bool emptyBrickCostsCycle = true;
};

/**
 * The dispatcher plus its NM banks. Construct with each lane's
 * brick sequence (the slice contents in processing order), then run
 * under a sim::Engine; collects every broadcast pair per lane.
 */
class Dispatcher : public sim::Clocked
{
  public:
    Dispatcher(const DispatcherConfig &cfg,
               std::vector<std::deque<BrickData>> laneBricks);

    void evaluate(sim::Cycle cycle) override;
    void commit(sim::Cycle cycle) override;
    bool done() const override;

    /** Everything broadcast to a lane, in order. */
    const std::vector<DispatchedNeuron> &broadcasts(int lane) const;

    /** Cycles lane i spent waiting on an NM fetch with bricks left. */
    std::uint64_t stallCycles(int lane) const { return stalls_[lane]; }

    /** Cycles lane i sat drained while other lanes still worked. */
    std::uint64_t drainedCycles(int lane) const { return drained_[lane]; }

    /** Cycles lane i broadcast a pair (or consumed an empty brick). */
    std::uint64_t busyCycles(int lane) const { return busy_[lane]; }

    /** stallCycles summed over lanes (StallReason::BrickBufferEmpty). */
    std::uint64_t idleBrickBufferEmpty() const;

    /** drainedCycles summed over lanes (StallReason::SliceDrained). */
    std::uint64_t idleSliceDrained() const;

    /** 16-neuron-wide NM reads issued (one per brick fetch). */
    std::uint64_t nmReads() const { return nmReads_; }

    /** BB entries occupied, summed over every sampled cycle. */
    std::uint64_t bbOccupancySum() const { return bbOccupancySum_; }

    /** Cycles over which the BB occupancy was sampled. */
    std::uint64_t bbSampleCycles() const { return bbSampleCycles_; }

    /** Mean bricks resident in the BB while the dispatcher ran. */
    double meanBbOccupancy() const;

    /**
     * Register this dispatcher's observability statistics as a
     * nested "dispatcher" group of @p parent (formulas reading the
     * live counters — see docs/observability.md for the pattern).
     * The dispatcher must outlive the group.
     */
    void attachStats(sim::StatGroup &parent) const;

    /**
     * Stream this dispatcher's activity into @p sink: one trace
     * thread per lane (tid = @p laneTidBase + lane) carrying
     * coalesced busy spans (cat "lane") and idle spans (cat "stall",
     * named after their sim::StallReason, tagged with @p layerLabel),
     * plus a "bbOccupancy" counter on (pid, tid 0) emitted whenever
     * the total resident-brick count changes. Call before running;
     * call flushTrace() once the engine stops to close open spans.
     */
    void setTrace(sim::TraceSink *sink, std::uint32_t pid,
                  std::uint32_t laneTidBase, std::string layerLabel);

    /** Close open spans and finish the occupancy ramp at @p end. */
    void flushTrace(sim::Cycle end);

  private:
    /** What a lane did during one active cycle. */
    enum class LaneState { None, Busy, BbEmpty, Drained };

    void traceLane(int lane, LaneState state, sim::Cycle cycle);

    DispatcherConfig cfg_;
    /** Per-bank bricks not yet delivered, in processing order. */
    std::vector<std::deque<BrickData>> pendingBricks_;
    /** Per-lane BB contents (up to bbDepth bricks). */
    std::vector<std::deque<BrickData>> bb_;
    /** Read position within the current brick per lane. */
    std::vector<std::size_t> cursor_;
    /** Completion times of each bank's in-flight fetches. */
    std::vector<std::deque<sim::Cycle>> inflight_;
    std::vector<std::vector<DispatchedNeuron>> out_;
    std::vector<std::uint64_t> stalls_;
    std::vector<std::uint64_t> drained_;
    std::vector<std::uint64_t> busy_;
    std::vector<std::uint32_t> brickSeq_;
    std::uint64_t nmReads_ = 0;
    std::uint64_t bbOccupancySum_ = 0;
    std::uint64_t bbSampleCycles_ = 0;

    sim::TraceSink *trace_ = nullptr;
    std::uint32_t tracePid_ = 0;
    std::uint32_t traceTidBase_ = 0;
    std::string traceLayer_;
    /** Per-lane open-run state and its first cycle. */
    std::vector<LaneState> runState_;
    std::vector<sim::Cycle> runStart_;
    /** Last bbOccupancy counter value emitted (-1 = none yet). */
    std::int64_t lastOccupancy_ = -1;
    /** Most recent sampled (active) cycle, so trace spans close on
     *  the same boundary the busy/stall/drained counters stop at. */
    sim::Cycle lastSampled_ = 0;
};

} // namespace cnv::core

#endif // CNV_CORE_DISPATCHER_H
