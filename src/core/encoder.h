/**
 * @file
 * Cycle-level model of the CNV Encoder subunit (Section IV-B4).
 *
 * One encoder exists per CNV unit, converting 16-neuron output
 * groups from NBout into ZFNAf bricks before they are written to
 * NM. The hardware uses a 16-neuron input buffer (IB), a 16-entry
 * encoded output buffer (OB), and an offset counter: each cycle it
 * examines the next IB neuron, increments the offset counter, and
 * copies (value, offset) to the next OB slot only if the value is
 * non-zero. Encoding is serial — affordable because output neurons
 * are produced far more slowly than inputs are consumed, and a
 * brick is only needed by the *next* layer.
 */

#ifndef CNV_CORE_ENCODER_H
#define CNV_CORE_ENCODER_H

#include <span>
#include <vector>

#include "sim/engine.h"
#include "sim/trace_event.h"
#include "tensor/fixed16.h"
#include "zfnaf/format.h"

namespace cnv::core {

/** Serial ZFNAf encoder (one per unit). */
class EncoderUnit : public sim::Clocked
{
  public:
    /** @param brickSize Neurons per brick (16 in the paper). */
    explicit EncoderUnit(int brickSize);

    /**
     * Load a 16-neuron NBout group into the IB.
     * @return false when the encoder is still busy with the
     *         previous group (the caller must retry next cycle).
     */
    bool offer(std::span<const tensor::Fixed16> group);

    /** Still converting the current IB contents? */
    bool busy() const { return cursor_ < fill_; }

    /** Bricks completed so far, in arrival order. */
    const std::vector<std::vector<zfnaf::EncodedNeuron>> &
    bricks() const
    {
        return done_;
    }

    /** Cycles spent actively encoding. */
    std::uint64_t busyCycles() const { return busyCycles_; }

    /**
     * Stream per-brick activity into @p sink: one "encode" span
     * (cat "encoder") on (pid, tid) per converted group, spanning
     * its first examine cycle to its commit, with the produced
     * non-zero count as an "nonZero" argument.
     */
    void setTrace(sim::TraceSink *sink, std::uint32_t pid,
                  std::uint32_t tid);

    void evaluate(sim::Cycle cycle) override;
    void commit(sim::Cycle cycle) override;
    bool done() const override { return !busy(); }

  private:
    int brickSize_;
    std::vector<tensor::Fixed16> ib_;
    std::vector<zfnaf::EncodedNeuron> ob_;
    int fill_ = 0;    ///< valid IB entries
    int cursor_ = 0;  ///< offset counter / IB read position
    std::uint64_t busyCycles_ = 0;
    std::vector<std::vector<zfnaf::EncodedNeuron>> done_;

    sim::TraceSink *trace_ = nullptr;
    std::uint32_t tracePid_ = 0;
    std::uint32_t traceTid_ = 0;
    sim::Cycle groupStart_ = 0;
    bool inGroup_ = false;
};

} // namespace cnv::core

#endif // CNV_CORE_ENCODER_H
