#include "core/dispatcher.h"

#include <algorithm>

#include "sim/logging.h"
#include "sim/stall_profile.h"

namespace cnv::core {

Dispatcher::Dispatcher(const DispatcherConfig &cfg,
                       std::vector<std::deque<BrickData>> laneBricks)
    : sim::Clocked("dispatcher"),
      cfg_(cfg),
      pendingBricks_(std::move(laneBricks))
{
    CNV_ASSERT(static_cast<int>(pendingBricks_.size()) == cfg_.lanes,
               "need one brick queue per lane/bank");
    CNV_ASSERT(cfg_.bbDepth >= 1, "BB must hold at least one brick");
    CNV_ASSERT(cfg_.nmLatencyCycles >= 1, "NM latency must be >= 1");
    bb_.resize(cfg_.lanes);
    cursor_.assign(cfg_.lanes, 0);
    inflight_.resize(cfg_.lanes);
    out_.resize(cfg_.lanes);
    stalls_.assign(cfg_.lanes, 0);
    drained_.assign(cfg_.lanes, 0);
    busy_.assign(cfg_.lanes, 0);
    brickSeq_.assign(cfg_.lanes, 0);
    runState_.assign(cfg_.lanes, LaneState::None);
    runStart_.assign(cfg_.lanes, 0);
}

void
Dispatcher::setTrace(sim::TraceSink *sink, std::uint32_t pid,
                     std::uint32_t laneTidBase, std::string layerLabel)
{
    trace_ = sink;
    tracePid_ = pid;
    traceTidBase_ = laneTidBase;
    traceLayer_ = std::move(layerLabel);
}

void
Dispatcher::traceLane(int lane, LaneState state, sim::Cycle cycle)
{
    if (!trace_ || state == runState_[lane])
        return;
    const LaneState prev = runState_[lane];
    if (prev != LaneState::None && cycle > runStart_[lane]) {
        const std::uint32_t tid =
            traceTidBase_ + static_cast<std::uint32_t>(lane);
        const sim::Cycle dur = cycle - runStart_[lane];
        if (prev == LaneState::Busy) {
            trace_->complete(tracePid_, tid, "busy", "lane",
                             runStart_[lane], dur);
        } else {
            const char *reason = prev == LaneState::BbEmpty
                ? sim::stallReasonName(sim::StallReason::BrickBufferEmpty)
                : sim::stallReasonName(sim::StallReason::SliceDrained);
            std::vector<sim::TraceArg> args;
            if (!traceLayer_.empty())
                args.emplace_back("layer", traceLayer_);
            trace_->complete(tracePid_, tid, reason, "stall",
                             runStart_[lane], dur, std::move(args));
        }
    }
    runState_[lane] = state;
    runStart_[lane] = cycle;
}

void
Dispatcher::flushTrace(sim::Cycle end)
{
    // Close on the counters' boundary: the engine's final cycle is
    // not sampled (done() already holds), so spans must not cover it
    // either, or folding them would overshoot the idle counters.
    const sim::Cycle close = std::min(end, lastSampled_ + 1);
    for (int lane = 0; lane < cfg_.lanes; ++lane)
        traceLane(lane, LaneState::None, close);
    if (trace_ && lastOccupancy_ > 0) {
        trace_->counter(tracePid_, 0, "bbOccupancy", close, 0.0);
        lastOccupancy_ = 0;
    }
}

const std::vector<DispatchedNeuron> &
Dispatcher::broadcasts(int lane) const
{
    return out_.at(lane);
}

void
Dispatcher::evaluate(sim::Cycle cycle)
{
    std::vector<LaneState> state(cfg_.lanes, LaneState::Drained);
    for (int lane = 0; lane < cfg_.lanes; ++lane) {
        // 1. Deliver fetches that completed by now (banks are
        //    sub-banked/pipelined: one new brick per cycle each).
        while (!inflight_[lane].empty() &&
               inflight_[lane].front() <= cycle) {
            inflight_[lane].pop_front();
            CNV_ASSERT(!pendingBricks_[lane].empty(),
                       "fetch completion without a pending brick");
            bb_[lane].push_back(std::move(pendingBricks_[lane].front()));
            pendingBricks_[lane].pop_front();
        }

        // 2. Broadcast one (value, offset) pair from the BB entry.
        bool didWork = false;
        while (!bb_[lane].empty()) {
            BrickData &brick = bb_[lane].front();
            if (brick.empty()) {
                // All-zero brick: occupies the lane for one cycle
                // (bank-limited) unless idealised away.
                bb_[lane].pop_front();
                cursor_[lane] = 0;
                ++brickSeq_[lane];
                if (cfg_.emptyBrickCostsCycle) {
                    didWork = true; // the cycle is consumed
                    break;
                }
                continue; // free skip: look at the next brick
            }
            out_[lane].push_back({brick[cursor_[lane]].value,
                                  brick[cursor_[lane]].offset,
                                  brickSeq_[lane]});
            if (++cursor_[lane] == brick.size()) {
                bb_[lane].pop_front();
                cursor_[lane] = 0;
                ++brickSeq_[lane];
            }
            didWork = true;
            break;
        }

        const bool laneHasWork = !bb_[lane].empty() ||
                                 !inflight_[lane].empty() ||
                                 !pendingBricks_[lane].empty();
        if (didWork)
            state[lane] = LaneState::Busy;
        else if (laneHasWork)
            state[lane] = LaneState::BbEmpty;

        // 3. Prefetch as early as the BB allows: the fetch pointer
        //    per bank runs ahead of the drain (at most one new
        //    request per bank per cycle).
        const int occupied = static_cast<int>(bb_[lane].size()) +
                             static_cast<int>(inflight_[lane].size());
        if (occupied < cfg_.bbDepth &&
            inflight_[lane].size() < pendingBricks_[lane].size()) {
            inflight_[lane].push_back(cycle + cfg_.nmLatencyCycles);
            ++nmReads_;
        }
    }

    // Observability: sample BB occupancy once per active cycle
    // (post-broadcast, so a drained-and-refilled entry counts once)
    // and attribute every lane's cycle to exactly one state, so
    // busy + bbEmpty + drained == bbSampleCycles x lanes.
    if (!done()) {
        std::uint64_t occupancy = 0;
        for (int lane = 0; lane < cfg_.lanes; ++lane) {
            occupancy += bb_[lane].size();
            switch (state[lane]) {
              case LaneState::Busy:
                ++busy_[lane];
                break;
              case LaneState::BbEmpty:
                ++stalls_[lane];
                break;
              case LaneState::Drained:
                ++drained_[lane];
                break;
              case LaneState::None:
                break;
            }
            traceLane(lane, state[lane], cycle);
        }
        bbOccupancySum_ += occupancy;
        ++bbSampleCycles_;
        lastSampled_ = cycle;
        if (trace_ &&
            static_cast<std::int64_t>(occupancy) != lastOccupancy_) {
            trace_->counter(tracePid_, 0, "bbOccupancy", cycle,
                            static_cast<double>(occupancy));
            lastOccupancy_ = static_cast<std::int64_t>(occupancy);
        }
    }
}

std::uint64_t
Dispatcher::idleBrickBufferEmpty() const
{
    std::uint64_t total = 0;
    for (std::uint64_t s : stalls_)
        total += s;
    return total;
}

std::uint64_t
Dispatcher::idleSliceDrained() const
{
    std::uint64_t total = 0;
    for (std::uint64_t d : drained_)
        total += d;
    return total;
}

double
Dispatcher::meanBbOccupancy() const
{
    return bbSampleCycles_
        ? static_cast<double>(bbOccupancySum_) /
              static_cast<double>(bbSampleCycles_)
        : 0.0;
}

void
Dispatcher::attachStats(sim::StatGroup &parent) const
{
    sim::StatGroup &g = parent.addGroup("dispatcher");
    g.addFormula("nmReads", "16-neuron-wide NM reads issued",
                 [this] { return static_cast<double>(nmReads_); });
    g.addFormula("bbOccupancy", "mean brick-buffer entries occupied",
                 [this] { return meanBbOccupancy(); });
    g.addFormula("stallCycles", "lane-cycles idle while work remained",
                 [this] {
                     return static_cast<double>(idleBrickBufferEmpty());
                 });
    g.addFormula("drainedCycles",
                 "lane-cycles idle after the lane's slice ran dry",
                 [this] {
                     return static_cast<double>(idleSliceDrained());
                 });
}

void
Dispatcher::commit(sim::Cycle)
{
}

bool
Dispatcher::done() const
{
    for (int lane = 0; lane < cfg_.lanes; ++lane) {
        if (!bb_[lane].empty() || !inflight_[lane].empty() ||
            !pendingBricks_[lane].empty())
            return false;
    }
    return true;
}

} // namespace cnv::core
