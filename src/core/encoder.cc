#include "core/encoder.h"

#include "sim/logging.h"

namespace cnv::core {

EncoderUnit::EncoderUnit(int brickSize)
    : sim::Clocked("encoder"), brickSize_(brickSize)
{
    CNV_ASSERT(brickSize >= 1 && brickSize <= 256,
               "encoder brick size out of range");
    ib_.resize(brickSize_);
    ob_.reserve(brickSize_);
}

bool
EncoderUnit::offer(std::span<const tensor::Fixed16> group)
{
    if (busy())
        return false;
    CNV_ASSERT(group.size() <= static_cast<std::size_t>(brickSize_),
               "group larger than a brick");
    for (std::size_t i = 0; i < group.size(); ++i)
        ib_[i] = group[i];
    fill_ = static_cast<int>(group.size());
    cursor_ = 0;
    ob_.clear();
    return true;
}

void
EncoderUnit::setTrace(sim::TraceSink *sink, std::uint32_t pid,
                      std::uint32_t tid)
{
    trace_ = sink;
    tracePid_ = pid;
    traceTid_ = tid;
}

void
EncoderUnit::evaluate(sim::Cycle cycle)
{
    if (!busy())
        return;
    if (!inGroup_) {
        inGroup_ = true;
        groupStart_ = cycle;
    }
    ++busyCycles_;
    // One neuron per cycle: examine, bump the offset counter, and
    // keep only non-zero values.
    const tensor::Fixed16 v = ib_[cursor_];
    if (!v.isZero())
        ob_.push_back({v, static_cast<std::uint8_t>(cursor_)});
    ++cursor_;
}

void
EncoderUnit::commit(sim::Cycle cycle)
{
    if (cursor_ == fill_ && fill_ > 0) {
        if (trace_ && inGroup_) {
            trace_->complete(
                tracePid_, traceTid_, "encode", "encoder", groupStart_,
                cycle + 1 - groupStart_,
                {sim::TraceArg("nonZero",
                               static_cast<std::uint64_t>(ob_.size()))});
        }
        inGroup_ = false;
        // OB now holds the brick in ZFNAf; ship it to NM.
        done_.push_back(ob_);
        ob_.clear();
        fill_ = 0;
        cursor_ = 0;
    }
}

} // namespace cnv::core
