/**
 * @file
 * Named geometry constants of the paper's CNV configuration
 * (Section IV-A), for defaults in the structural core models.
 * `tools/cnvlint.py` bans bare geometry literals elsewhere: when a
 * 16 means "lanes" or "banks", say so with one of these (full-node
 * parameters live in `dadiannao::NodeConfig`; the brick size and
 * value width in `zfnaf/format.h`).
 */

#ifndef CNV_CORE_GEOMETRY_H
#define CNV_CORE_GEOMETRY_H

namespace cnv::core {

/** Neuron lanes (CNV subunits) per unit in the paper's node. */
inline constexpr int kPaperLanes = 16;

/** Independent NM banks feeding the dispatcher's brick buffer. */
inline constexpr int kPaperNmBanks = 16;

} // namespace cnv::core

#endif // CNV_CORE_GEOMETRY_H
