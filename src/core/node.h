/**
 * @file
 * Whole-network execution on the CNV node: every conv layer after
 * the first runs in encoded (zero-skipping) mode on the ZFNAf its
 * producer's encoder wrote; the first conv layer processes the raw
 * image in conventional mode (Section IV-B4); non-conv layers match
 * the baseline. Optionally applies the dynamic-pruning thresholds
 * of Section V-E at each conv output's encoding step.
 *
 * With pruning disabled, outputs are bit-identical to the baseline
 * node and the golden model — the paper's Caffe-validation step.
 */

#ifndef CNV_CORE_NODE_H
#define CNV_CORE_NODE_H

#include "dadiannao/config.h"
#include "dadiannao/metrics.h"
#include "dadiannao/node.h"
#include "nn/network.h"

namespace cnv::core {

/** Executes networks functionally on the CNV node model. */
class CnvNodeModel
{
  public:
    explicit CnvNodeModel(const dadiannao::NodeConfig &cfg) : cfg_(cfg) {}

    const dadiannao::NodeConfig &config() const { return cfg_; }

    /**
     * Run the network on one input image.
     *
     * @param prune Optional per-conv-layer thresholds applied by the
     *        encoder when each conv output is written to NM.
     */
    dadiannao::NodeRunResult run(const nn::Network &net,
                                 const tensor::NeuronTensor &input,
                                 const nn::PruneConfig *prune = nullptr) const;

  private:
    dadiannao::NodeConfig cfg_;
};

} // namespace cnv::core

#endif // CNV_CORE_NODE_H
