/**
 * @file
 * Brick-to-lane assignment for CNV (Section IV-B2).
 *
 * ZOnly and XYZHash are static functions of array coordinates (the
 * encoder can place each slice in its NM bank when it writes the
 * previous layer's output). WindowEven — the default, matching the
 * paper's "divides the window evenly into 16 slices" — additionally
 * uses the brick's sequence position within the consuming window,
 * which assumes bank-to-lane steering in the dispatcher (see
 * DESIGN.md).
 */

#ifndef CNV_CORE_ASSIGNMENT_H
#define CNV_CORE_ASSIGNMENT_H

#include "dadiannao/config.h"

namespace cnv::core {

/**
 * Neuron lane that processes one brick of a window.
 *
 * @param policy Assignment policy.
 * @param x Array x coordinate of the brick's column.
 * @param y Array y coordinate of the brick's column.
 * @param zBrick Depth-brick index within the array.
 * @param windowSeq Sequence number of the brick within the window's
 *        processing order (valid cells in (ky, kx) order, bricks
 *        innermost); used only by WindowEven.
 * @param lanes Neuron lanes per unit.
 */
inline int
laneOf(dadiannao::LaneAssignment policy, int x, int y, int zBrick,
       int windowSeq, int lanes)
{
    switch (policy) {
      case dadiannao::LaneAssignment::ZOnly:
        return zBrick % lanes;
      case dadiannao::LaneAssignment::XYZHash:
        return (zBrick + x + y) % lanes;
      case dadiannao::LaneAssignment::WindowEven:
        return windowSeq % lanes;
    }
    return zBrick % lanes;
}

} // namespace cnv::core

#endif // CNV_CORE_ASSIGNMENT_H
