/**
 * @file
 * Freestanding portable SIMD layer for the 16-bit fixed-point hot
 * paths (conv forward, ZFNAf encode, non-zero brick counting).
 *
 * Exactly one backend is selected at compile time:
 *
 *   - AVX2 (16 lanes)            x86-64 with `-mavx2`
 *   - SSE4.2 (8 lanes)           x86-64 with `-msse4.2`
 *   - NEON (8 lanes)             AArch64 (baseline)
 *   - scalar (8 lanes)           everything else, or `CNV_SIMD=0`
 *
 * The `CNV_SIMD` CMake option drives the macro of the same name:
 * `-DCNV_SIMD=0` forces the scalar backend regardless of the target
 * ISA, which is how the scalar-fallback CI job keeps both dispatch
 * paths green. Every backend computes *exact* integer results — the
 * products are formed in full precision and summed into 64-bit
 * accumulators, and integer addition is associative — so all four
 * backends are bit-identical by construction; the equivalence tests
 * in tests/nn and tests/zfnaf pin this.
 *
 * Layering: this header is *freestanding* — it includes nothing from
 * src/ — so any module may use it without creating a layering edge
 * (tools/check_layering.py verifies the property). It is also the
 * only file in the tree allowed to touch raw intrinsics: the cnvlint
 * `raw-simd` rule bans `<immintrin.h>` / `<arm_neon.h>` and the
 * `__m128`/`__m256`/NEON vector types everywhere else.
 *
 * Element loads go through `std::memcpy`, never pointer casts, so
 * any trivially-copyable 2-byte type (`tensor::Fixed16`,
 * `std::int16_t`) can be consumed without `reinterpret_cast` or
 * alignment assumptions.
 */

#ifndef CNV_CORE_SIMD_H
#define CNV_CORE_SIMD_H

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>

#if !defined(CNV_SIMD) || CNV_SIMD
#if defined(__AVX2__)
#define CNV_SIMD_BACKEND_AVX2 1
#elif defined(__SSE4_2__)
#define CNV_SIMD_BACKEND_SSE42 1
#elif defined(__ARM_NEON) && defined(__aarch64__)
#define CNV_SIMD_BACKEND_NEON 1
#endif
#endif

#if defined(CNV_SIMD_BACKEND_AVX2) || defined(CNV_SIMD_BACKEND_SSE42)
#include <immintrin.h>
#elif defined(CNV_SIMD_BACKEND_NEON)
#include <arm_neon.h>
#endif

namespace cnv::core::simd {

namespace detail {

/** Static requirements on the element types the loads accept. */
template <typename T>
inline constexpr bool kIsRawI16 =
    sizeof(T) == sizeof(std::int16_t) &&
    std::is_trivially_copyable_v<T>;

/**
 * Compress the even-indexed bits of a byte-level movemask (two bits
 * per 16-bit lane) down to one bit per lane. Used by the x86
 * backends to normalise `movemask_epi8` output.
 */
constexpr std::uint32_t
evenBits(std::uint32_t m)
{
    m &= 0x55555555u;
    m = (m | (m >> 1)) & 0x33333333u;
    m = (m | (m >> 2)) & 0x0F0F0F0Fu;
    m = (m | (m >> 4)) & 0x00FF00FFu;
    m = (m | (m >> 8)) & 0x0000FFFFu;
    return m;
}

} // namespace detail

/**
 * Clamp a raw prune threshold to the unsigned-16 domain the lane
 * predicate works in. The predicate "non-zero and |raw| >= t" is
 * exactly "uabs(raw) >= clampThreshold(t)": any threshold <= 1
 * degenerates to the non-zero test, and |raw| never exceeds 32768,
 * so thresholds past 0xFFFF select nothing — matching the scalar
 * semantics of zfnaf::encode / nonZeroCountMap for every int32
 * threshold.
 */
constexpr std::uint16_t
clampThreshold(std::int64_t rawThreshold)
{
    if (rawThreshold < 1)
        return 1;
    if (rawThreshold > 0xFFFF)
        return 0xFFFF;
    return static_cast<std::uint16_t>(rawThreshold);
}

#if defined(CNV_SIMD_BACKEND_AVX2)

/** Identifies the selected backend (for logs and bench labels). */
inline constexpr bool kEnabled = true;
/** 16-bit lanes per vector register. */
inline constexpr int kLanes = 16;

/** Human-readable name of the selected backend. */
constexpr const char *
instructionSet()
{
    return "avx2";
}

/** One register of kLanes packed 16-bit values. */
struct VecI16
{
    __m256i v;
};

/** Load kLanes consecutive 2-byte elements (unaligned). */
template <typename T>
inline VecI16
loadFull(const T *p)
{
    static_assert(detail::kIsRawI16<T>);
    VecI16 r;
    std::memcpy(&r.v, p, sizeof(r.v));
    return r;
}

/** Load n < kLanes elements, zero-filling the remaining lanes. */
template <typename T>
inline VecI16
loadPartial(const T *p, int n)
{
    static_assert(detail::kIsRawI16<T>);
    std::int16_t buf[kLanes] = {};
    std::memcpy(buf, p, static_cast<std::size_t>(n) * sizeof(buf[0]));
    return loadFull(buf);
}

/**
 * Exact 64-bit accumulator of 16x16-bit products. Every product is
 * formed in full 32-bit precision (mullo/mulhi interleave) and
 * widened to 64 bits before accumulation, so no input combination
 * can wrap — the result equals the scalar sum for all inputs.
 */
class DotAccum
{
  public:
    DotAccum() : acc_(_mm256_setzero_si256()) {}

    /** acc += sum over lanes of a[i] * b[i], exactly. */
    void
    mulAcc(VecI16 a, VecI16 b)
    {
        const __m256i lo = _mm256_mullo_epi16(a.v, b.v);
        const __m256i hi = _mm256_mulhi_epi16(a.v, b.v);
        const __m256i p0 = _mm256_unpacklo_epi16(lo, hi);
        const __m256i p1 = _mm256_unpackhi_epi16(lo, hi);
        acc_ = _mm256_add_epi64(
            acc_, _mm256_cvtepi32_epi64(_mm256_castsi256_si128(p0)));
        acc_ = _mm256_add_epi64(
            acc_, _mm256_cvtepi32_epi64(_mm256_extracti128_si256(p0, 1)));
        acc_ = _mm256_add_epi64(
            acc_, _mm256_cvtepi32_epi64(_mm256_castsi256_si128(p1)));
        acc_ = _mm256_add_epi64(
            acc_, _mm256_cvtepi32_epi64(_mm256_extracti128_si256(p1, 1)));
    }

    /** Horizontal sum of the four 64-bit partial accumulators. */
    std::int64_t
    total() const
    {
        std::int64_t parts[4];
        std::memcpy(parts, &acc_, sizeof(parts));
        return parts[0] + parts[1] + parts[2] + parts[3];
    }

  private:
    __m256i acc_;
};

namespace detail {

/** Per-lane predicate mask: uabs(lane) >= t, as a cmp vector. */
inline __m256i
geVector(VecI16 v, std::uint16_t t)
{
    const __m256i uabs = _mm256_abs_epi16(v.v);
    const __m256i vt =
        _mm256_set1_epi16(static_cast<std::int16_t>(t));
    return _mm256_cmpeq_epi16(_mm256_max_epu16(uabs, vt), uabs);
}

} // namespace detail

/** Number of lanes with unsigned |value| >= t (t must be >= 1). */
inline int
geCount(VecI16 v, std::uint16_t t)
{
    const auto m = static_cast<std::uint32_t>(
        _mm256_movemask_epi8(detail::geVector(v, t)));
    return std::popcount(m) / 2;
}

/** Bit i set iff lane i has unsigned |value| >= t (t must be >= 1). */
inline std::uint32_t
geMask(VecI16 v, std::uint16_t t)
{
    const auto m = static_cast<std::uint32_t>(
        _mm256_movemask_epi8(detail::geVector(v, t)));
    return detail::evenBits(m);
}

#elif defined(CNV_SIMD_BACKEND_SSE42)

/** Identifies the selected backend (for logs and bench labels). */
inline constexpr bool kEnabled = true;
/** 16-bit lanes per vector register. */
inline constexpr int kLanes = 8;

/** Human-readable name of the selected backend. */
constexpr const char *
instructionSet()
{
    return "sse4.2";
}

/** One register of kLanes packed 16-bit values. */
struct VecI16
{
    __m128i v;
};

/** Load kLanes consecutive 2-byte elements (unaligned). */
template <typename T>
inline VecI16
loadFull(const T *p)
{
    static_assert(detail::kIsRawI16<T>);
    VecI16 r;
    std::memcpy(&r.v, p, sizeof(r.v));
    return r;
}

/** Load n < kLanes elements, zero-filling the remaining lanes. */
template <typename T>
inline VecI16
loadPartial(const T *p, int n)
{
    static_assert(detail::kIsRawI16<T>);
    std::int16_t buf[kLanes] = {};
    std::memcpy(buf, p, static_cast<std::size_t>(n) * sizeof(buf[0]));
    return loadFull(buf);
}

/**
 * Exact 64-bit accumulator of 8x16-bit products (SSE4.2 variant of
 * the AVX2 DotAccum; same exactness argument).
 */
class DotAccum
{
  public:
    DotAccum() : acc_(_mm_setzero_si128()) {}

    /** acc += sum over lanes of a[i] * b[i], exactly. */
    void
    mulAcc(VecI16 a, VecI16 b)
    {
        const __m128i lo = _mm_mullo_epi16(a.v, b.v);
        const __m128i hi = _mm_mulhi_epi16(a.v, b.v);
        const __m128i p0 = _mm_unpacklo_epi16(lo, hi);
        const __m128i p1 = _mm_unpackhi_epi16(lo, hi);
        acc_ = _mm_add_epi64(acc_, _mm_cvtepi32_epi64(p0));
        acc_ = _mm_add_epi64(acc_,
                             _mm_cvtepi32_epi64(_mm_srli_si128(p0, 8)));
        acc_ = _mm_add_epi64(acc_, _mm_cvtepi32_epi64(p1));
        acc_ = _mm_add_epi64(acc_,
                             _mm_cvtepi32_epi64(_mm_srli_si128(p1, 8)));
    }

    /** Horizontal sum of the two 64-bit partial accumulators. */
    std::int64_t
    total() const
    {
        std::int64_t parts[2];
        std::memcpy(parts, &acc_, sizeof(parts));
        return parts[0] + parts[1];
    }

  private:
    __m128i acc_;
};

namespace detail {

/** Per-lane predicate mask: uabs(lane) >= t, as a cmp vector. */
inline __m128i
geVector(VecI16 v, std::uint16_t t)
{
    const __m128i uabs = _mm_abs_epi16(v.v);
    const __m128i vt = _mm_set1_epi16(static_cast<std::int16_t>(t));
    return _mm_cmpeq_epi16(_mm_max_epu16(uabs, vt), uabs);
}

} // namespace detail

/** Number of lanes with unsigned |value| >= t (t must be >= 1). */
inline int
geCount(VecI16 v, std::uint16_t t)
{
    const auto m = static_cast<std::uint32_t>(
        _mm_movemask_epi8(detail::geVector(v, t)));
    return std::popcount(m) / 2;
}

/** Bit i set iff lane i has unsigned |value| >= t (t must be >= 1). */
inline std::uint32_t
geMask(VecI16 v, std::uint16_t t)
{
    const auto m = static_cast<std::uint32_t>(
        _mm_movemask_epi8(detail::geVector(v, t)));
    return detail::evenBits(m);
}

#elif defined(CNV_SIMD_BACKEND_NEON)

/** Identifies the selected backend (for logs and bench labels). */
inline constexpr bool kEnabled = true;
/** 16-bit lanes per vector register. */
inline constexpr int kLanes = 8;

/** Human-readable name of the selected backend. */
constexpr const char *
instructionSet()
{
    return "neon";
}

/** One register of kLanes packed 16-bit values. */
struct VecI16
{
    int16x8_t v;
};

/** Load kLanes consecutive 2-byte elements (unaligned). */
template <typename T>
inline VecI16
loadFull(const T *p)
{
    static_assert(detail::kIsRawI16<T>);
    VecI16 r;
    std::memcpy(&r.v, p, sizeof(r.v));
    return r;
}

/** Load n < kLanes elements, zero-filling the remaining lanes. */
template <typename T>
inline VecI16
loadPartial(const T *p, int n)
{
    static_assert(detail::kIsRawI16<T>);
    std::int16_t buf[kLanes] = {};
    std::memcpy(buf, p, static_cast<std::size_t>(n) * sizeof(buf[0]));
    return loadFull(buf);
}

/**
 * Exact 64-bit accumulator of 8x16-bit products: widening multiplies
 * (vmull) followed by pairwise 64-bit accumulation (vpadal).
 */
class DotAccum
{
  public:
    DotAccum() : acc_(vdupq_n_s64(0)) {}

    /** acc += sum over lanes of a[i] * b[i], exactly. */
    void
    mulAcc(VecI16 a, VecI16 b)
    {
        const int32x4_t pl =
            vmull_s16(vget_low_s16(a.v), vget_low_s16(b.v));
        const int32x4_t ph =
            vmull_s16(vget_high_s16(a.v), vget_high_s16(b.v));
        acc_ = vpadalq_s32(acc_, pl);
        acc_ = vpadalq_s32(acc_, ph);
    }

    /** Horizontal sum of the two 64-bit partial accumulators. */
    std::int64_t
    total() const
    {
        return vgetq_lane_s64(acc_, 0) + vgetq_lane_s64(acc_, 1);
    }

  private:
    int64x2_t acc_;
};

namespace detail {

/** Per-lane predicate mask: uabs(lane) >= t, all-ones per lane. */
inline uint16x8_t
geVector(VecI16 v, std::uint16_t t)
{
    const uint16x8_t uabs = vreinterpretq_u16_s16(vabsq_s16(v.v));
    return vcgeq_u16(uabs, vdupq_n_u16(t));
}

} // namespace detail

/** Number of lanes with unsigned |value| >= t (t must be >= 1). */
inline int
geCount(VecI16 v, std::uint16_t t)
{
    const uint16x8_t ones =
        vandq_u16(detail::geVector(v, t), vdupq_n_u16(1));
    return static_cast<int>(vaddvq_u16(ones));
}

/** Bit i set iff lane i has unsigned |value| >= t (t must be >= 1). */
inline std::uint32_t
geMask(VecI16 v, std::uint16_t t)
{
    std::uint16_t lanes[kLanes];
    vst1q_u16(lanes, detail::geVector(v, t));
    std::uint32_t mask = 0;
    for (int i = 0; i < kLanes; ++i) {
        if (lanes[i] != 0)
            mask |= 1u << i;
    }
    return mask;
}

#else // scalar fallback

/** Identifies the selected backend (for logs and bench labels). */
inline constexpr bool kEnabled = false;
/** 16-bit lanes per (emulated) vector. */
inline constexpr int kLanes = 8;

/** Human-readable name of the selected backend. */
constexpr const char *
instructionSet()
{
    return "scalar";
}

/** One emulated register of kLanes packed 16-bit values. */
struct VecI16
{
    std::int16_t lane[kLanes];
};

/** Load kLanes consecutive 2-byte elements. */
template <typename T>
inline VecI16
loadFull(const T *p)
{
    static_assert(detail::kIsRawI16<T>);
    VecI16 r;
    std::memcpy(r.lane, p, sizeof(r.lane));
    return r;
}

/** Load n < kLanes elements, zero-filling the remaining lanes. */
template <typename T>
inline VecI16
loadPartial(const T *p, int n)
{
    static_assert(detail::kIsRawI16<T>);
    VecI16 r = {};
    std::memcpy(r.lane, p, static_cast<std::size_t>(n) *
                               sizeof(r.lane[0]));
    return r;
}

/** Exact 64-bit accumulator of kLanes 16-bit products. */
class DotAccum
{
  public:
    /** acc += sum over lanes of a[i] * b[i], exactly. */
    void
    mulAcc(VecI16 a, VecI16 b)
    {
        for (int i = 0; i < kLanes; ++i) {
            acc_ += static_cast<std::int64_t>(a.lane[i]) *
                    static_cast<std::int64_t>(b.lane[i]);
        }
    }

    /** The accumulated sum. */
    std::int64_t total() const { return acc_; }

  private:
    std::int64_t acc_ = 0;
};

namespace detail {

/** Unsigned |raw| of one lane (|INT16_MIN| = 32768 fits in u32). */
constexpr std::uint32_t
uabs(std::int16_t raw)
{
    const std::int32_t wide = raw;
    return static_cast<std::uint32_t>(wide < 0 ? -wide : wide);
}

} // namespace detail

/** Number of lanes with unsigned |value| >= t (t must be >= 1). */
inline int
geCount(VecI16 v, std::uint16_t t)
{
    int n = 0;
    for (int i = 0; i < kLanes; ++i) {
        if (detail::uabs(v.lane[i]) >= t)
            ++n;
    }
    return n;
}

/** Bit i set iff lane i has unsigned |value| >= t (t must be >= 1). */
inline std::uint32_t
geMask(VecI16 v, std::uint16_t t)
{
    std::uint32_t mask = 0;
    for (int i = 0; i < kLanes; ++i) {
        if (detail::uabs(v.lane[i]) >= t)
            mask |= 1u << i;
    }
    return mask;
}

#endif // backend selection

} // namespace cnv::core::simd

#endif // CNV_CORE_SIMD_H
