#include "core/node.h"

#include <optional>

#include "core/unit.h"
#include "dadiannao/nfu.h"
#include "dadiannao/other_layers.h"
#include "nn/ops.h"
#include "sim/logging.h"
#include "zfnaf/format.h"

namespace cnv::core {

using dadiannao::LayerResult;
using dadiannao::NodeRunResult;
using dadiannao::OverlapTracker;
using tensor::Fixed16;
using tensor::NeuronTensor;

namespace {

/** The encoder's dynamic pruning: |v| < threshold becomes zero. */
void
pruneInPlace(NeuronTensor &t, std::int32_t threshold)
{
    if (threshold <= 0)
        return;
    for (Fixed16 &v : t) {
        if (v.rawAbs() < threshold)
            v = Fixed16{};
    }
}

} // namespace

NodeRunResult
CnvNodeModel::run(const nn::Network &net, const NeuronTensor &input,
                  const nn::PruneConfig *prune) const
{
    NodeRunResult result;
    result.timing.network = net.name();
    result.timing.architecture = "cnv";

    std::vector<std::optional<NeuronTensor>> outputs(net.nodeCount());
    std::vector<int> uses(net.nodeCount(), 0);
    for (const nn::Node &n : net.nodes())
        for (int in : n.inputs)
            ++uses[in];

    OverlapTracker overlap;

    for (int id = 0; id < net.nodeCount(); ++id) {
        const nn::Node &n = net.node(id);
        NeuronTensor out;
        switch (n.kind) {
          case nn::NodeKind::Input:
            out = input;
            break;
          case nn::NodeKind::Conv: {
            LayerResult loadStall;
            loadStall.name = n.name + ":synapse-load";
            loadStall.cycles = dadiannao::convSynapseLoadCycles(
                cfg_, n, overlap, loadStall.energy);
            loadStall.activity.other =
                loadStall.cycles * static_cast<std::uint64_t>(
                                       cfg_.nodeLanes());
            loadStall.micro.laneIdleCycles =
                loadStall.cycles * static_cast<std::uint64_t>(cfg_.lanes);
            loadStall.micro.stalls.synapseWait =
                loadStall.micro.laneIdleCycles;
            if (loadStall.cycles > 0)
                result.timing.layers.push_back(loadStall);

            const NeuronTensor &convIn = *outputs[n.inputs[0]];
            if (n.convIndex == 0) {
                // First conv layer: raw image, conventional mode.
                dadiannao::ConvSimResult conv =
                    dadiannao::simulateConvBaseline(
                        cfg_, n.conv, convIn, net.weightsOf(id),
                        net.biasOf(id), true);
                conv.timing.name = n.name;
                overlap.deposit(conv.timing.cycles);
                result.timing.layers.push_back(conv.timing);
                out = std::move(conv.output);
            } else {
                // Encoded mode: the producer's encoder wrote this
                // tensor (pruned values already zeroed).
                const zfnaf::EncodedArray encoded =
                    zfnaf::encode(convIn, cfg_.brickSize);
                CnvConvResult conv = simulateConvCnv(
                    cfg_, n.conv, encoded, net.weightsOf(id),
                    net.biasOf(id));
                conv.timing.name = n.name;
                overlap.deposit(conv.timing.cycles);
                result.timing.layers.push_back(conv.timing);
                out = std::move(conv.output);
            }
            if (prune) {
                pruneInPlace(out, prune->forConvIndex(
                                      static_cast<std::size_t>(n.convIndex)));
            }
            break;
          }
          case nn::NodeKind::Pool:
          case nn::NodeKind::Lrn:
          case nn::NodeKind::Fc:
          case nn::NodeKind::Concat:
          case nn::NodeKind::Softmax: {
            result.timing.layers.push_back(
                dadiannao::otherLayerTiming(cfg_, n, overlap));
            switch (n.kind) {
              case nn::NodeKind::Pool:
                out = nn::pool2d(*outputs[n.inputs[0]], n.pool);
                break;
              case nn::NodeKind::Lrn:
                out = nn::lrn(*outputs[n.inputs[0]], n.lrnParams);
                break;
              case nn::NodeKind::Fc:
                out = nn::fullyConnected(*outputs[n.inputs[0]],
                                         net.weightsOf(id), net.biasOf(id),
                                         n.fc);
                break;
              case nn::NodeKind::Concat: {
                std::vector<const NeuronTensor *> ins;
                for (int in : n.inputs)
                    ins.push_back(&*outputs[in]);
                out = nn::concat(ins);
                break;
              }
              case nn::NodeKind::Softmax:
                // Top-1 from the logits (pre-quantised-softmax).
                result.top1 = nn::argmax(*outputs[n.inputs[0]]);
                out = nn::softmax(*outputs[n.inputs[0]]);
                break;
              default:
                CNV_PANIC("unreachable");
            }
            break;
          }
        }
        outputs[id] = std::move(out);
        for (int in : n.inputs) {
            if (--uses[in] == 0)
                outputs[in].reset();
        }
    }

    result.final = *outputs.back();
    if (result.top1 < 0 && result.final.shape().x == 1 &&
        result.final.shape().y == 1) {
        result.top1 = nn::argmax(result.final);
    }
    result.timing.stampTimeline();
    return result;
}

} // namespace cnv::core
