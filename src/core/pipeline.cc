#include "core/pipeline.h"

#include <algorithm>

#include "core/assignment.h"
#include "core/encoder.h"
#include "sim/engine.h"
#include "sim/logging.h"

namespace cnv::core {

using dadiannao::NodeConfig;
using tensor::Accum;
using tensor::FilterBank;
using tensor::Fixed16;
using tensor::NeuronTensor;
using tensor::Shape3;

namespace {

/** Where a dispatched brick belongs within the window group. */
struct BrickDesc
{
    int window = 0; ///< index within the group
    int kx = 0;
    int ky = 0;
    int gBrick = 0;
};

/**
 * The unit's front-end subunits plus the shared back-end: consumes
 * the dispatcher's broadcasts combinationally (the multiply/reduce
 * pipeline has constant depth, so it does not change cycle counts),
 * accumulating partial output neurons in NBout.
 */
class BackEnd : public sim::Clocked
{
  public:
    BackEnd(const Dispatcher &dispatcher, int lanes,
            const std::vector<std::vector<BrickDesc>> &descs,
            const nn::ConvParams &p, const FilterBank &weights,
            int brickSize, std::vector<std::vector<Accum>> &acc)
        : sim::Clocked("backend"),
          dispatcher_(dispatcher),
          descs_(descs),
          params_(p),
          weights_(weights),
          brickSize_(brickSize),
          acc_(acc),
          readPos_(lanes, 0)
    {
    }

    void
    evaluate(sim::Cycle) override
    {
        for (std::size_t lane = 0; lane < readPos_.size(); ++lane) {
            const auto &stream = dispatcher_.broadcasts(
                static_cast<int>(lane));
            while (readPos_[lane] < stream.size()) {
                const DispatchedNeuron &n = stream[readPos_[lane]++];
                const BrickDesc &d = descs_[lane][n.brickSeq];
                const int z = d.gBrick * brickSize_ + n.offset;
                for (int f = 0; f < params_.filters; ++f) {
                    acc_[d.window][f] +=
                        mulRaw(n.value, weights_.at(f, d.kx, d.ky, z));
                }
            }
        }
    }

    void commit(sim::Cycle) override {}
    bool done() const override { return true; /* slave to dispatcher */ }

  private:
    const Dispatcher &dispatcher_;
    const std::vector<std::vector<BrickDesc>> &descs_;
    const nn::ConvParams &params_;
    const FilterBank &weights_;
    int brickSize_;
    std::vector<std::vector<Accum>> &acc_;
    std::vector<std::size_t> readPos_;
};

} // namespace

PipelineResult
runConvPipeline(const NodeConfig &cfg, const DispatcherConfig &dispatchCfg,
                const nn::ConvParams &p, const zfnaf::EncodedArray &in,
                const FilterBank &weights,
                const std::vector<Fixed16> &bias, sim::TraceSink *trace,
                std::uint32_t tracePid)
{
    CNV_ASSERT(p.groups == 1, "pipeline models single-group layers");
    CNV_ASSERT(p.filters <= cfg.parallelFilters(),
               "pipeline models single-pass layers");
    CNV_ASSERT(cfg.brickSize == in.brickSize(),
               "brick size mismatch");

    const Shape3 inShape = in.shape();
    const Shape3 outShape = p.outputShape(inShape);
    const int lanes = cfg.lanes;
    const int bricksPerCell =
        (inShape.z + cfg.brickSize - 1) / cfg.brickSize;
    const int inFlight = cfg.windowsInFlight();

    PipelineResult result;
    result.output = NeuronTensor(outShape);

    // Trace track layout under tracePid: tid 0 carries window-group
    // spans (and the bbOccupancy counter), tids 1..lanes the lanes,
    // tid lanes+1 the encoder (which drains on its own clock).
    const std::uint32_t laneTidBase = 1;
    const std::uint32_t encoderTid =
        laneTidBase + static_cast<std::uint32_t>(lanes);
    if (trace) {
        trace->setProcessName(tracePid, "cnv unit (structural)");
        trace->setThreadName(tracePid, 0, "window-groups");
        for (int lane = 0; lane < lanes; ++lane) {
            trace->setThreadName(
                tracePid, laneTidBase + static_cast<std::uint32_t>(lane),
                sim::strfmt("lane{}", lane));
        }
        trace->setThreadName(tracePid, encoderTid, "encoder (own clock)");
    }

    EncoderUnit encoder(cfg.brickSize);
    if (trace)
        encoder.setTrace(trace, tracePid, encoderTid);
    // One engine per concern, reused across window groups so the
    // compute timeline is continuous and each group becomes a
    // measurement region on it. The encoder drains on its own clock
    // (overlapped with the next group in hardware, so its cycles do
    // not add to the layer's).
    sim::Engine engine("cnv-pipeline");
    sim::Engine encEngine("encoder-drain");
    encEngine.add(encoder);

    std::vector<std::vector<Accum>> acc(
        inFlight, std::vector<Accum>(static_cast<std::size_t>(p.filters)));

    const std::int64_t totalWindows =
        static_cast<std::int64_t>(outShape.x) * outShape.y;

    for (std::int64_t w0 = 0; w0 < totalWindows; w0 += inFlight) {
        const int batch = static_cast<int>(
            std::min<std::int64_t>(inFlight, totalWindows - w0));
        for (int w = 0; w < batch; ++w)
            std::fill(acc[w].begin(), acc[w].end(), Accum{0});

        // Slice the window group into per-lane brick queues, exactly
        // as the fast model enumerates them.
        std::vector<std::deque<BrickData>> laneBricks(lanes);
        std::vector<std::vector<BrickDesc>> laneDescs(lanes);
        int windowSeq = 0;
        for (int w = 0; w < batch; ++w) {
            const int ox = static_cast<int>((w0 + w) % outShape.x);
            const int oy = static_cast<int>((w0 + w) / outShape.x);
            const int x0 = ox * p.stride - p.pad;
            const int y0 = oy * p.stride - p.pad;
            for (int ky = 0; ky < p.fy; ++ky) {
                const int iy = y0 + ky;
                if (iy < 0 || iy >= inShape.y)
                    continue;
                for (int kx = 0; kx < p.fx; ++kx) {
                    const int ix = x0 + kx;
                    if (ix < 0 || ix >= inShape.x)
                        continue;
                    for (int b = 0; b < bricksPerCell; ++b) {
                        const int lane =
                            laneOf(cfg.laneAssignment, ix, iy, b,
                                   windowSeq++, lanes);
                        const auto entries = in.brick(ix, iy, b);
                        laneBricks[lane].emplace_back(entries.begin(),
                                                      entries.end());
                        laneDescs[lane].push_back({w, kx, ky, b});
                    }
                }
            }
        }

        DispatcherConfig dcfg = dispatchCfg;
        dcfg.lanes = lanes;
        dcfg.emptyBrickCostsCycle = cfg.emptyBrickCostsCycle;
        Dispatcher dispatcher(dcfg, std::move(laneBricks));
        if (trace)
            dispatcher.setTrace(trace, tracePid, laneTidBase, "");
        BackEnd backend(dispatcher, lanes, laneDescs, p, weights,
                        cfg.brickSize, acc);

        engine.clear();
        engine.add(dispatcher);
        engine.add(backend);
        engine.beginRegion(sim::strfmt("window-group@{}", w0));
        const sim::Cycle groupBegin = engine.now();
        result.cycles += engine.run();
        engine.endRegion();
        dispatcher.flushTrace(engine.now());
        if (trace && engine.now() > groupBegin) {
            trace->complete(tracePid, 0,
                            sim::strfmt("window-group@{}", w0), "pipeline",
                            groupBegin, engine.now() - groupBegin);
        }
        result.nmReads += dispatcher.nmReads();
        result.bbOccupancySum += dispatcher.bbOccupancySum();
        result.bbSampleCycles += dispatcher.bbSampleCycles();
        for (int lane = 0; lane < lanes; ++lane) {
            result.micro.laneBusyCycles += dispatcher.busyCycles(lane);
            result.micro.laneIdleCycles += dispatcher.stallCycles(lane) +
                                           dispatcher.drainedCycles(lane);
        }
        result.micro.stalls.brickBufferEmpty +=
            dispatcher.idleBrickBufferEmpty();
        result.micro.stalls.sliceDrained += dispatcher.idleSliceDrained();

        // Drain NBout through the encoder, 16 output neurons at a
        // time (serial, overlapped with the next group in hardware).
        for (int w = 0; w < batch; ++w) {
            const int ox = static_cast<int>((w0 + w) % outShape.x);
            const int oy = static_cast<int>((w0 + w) / outShape.x);
            std::vector<Fixed16> group;
            group.reserve(cfg.brickSize);
            for (int f0 = 0; f0 < p.filters; f0 += cfg.brickSize) {
                group.clear();
                const int fEnd = std::min(p.filters, f0 + cfg.brickSize);
                for (int f = f0; f < fEnd; ++f) {
                    Fixed16 v =
                        Fixed16::productToFixed(acc[w][f]) + bias[f];
                    if (p.relu)
                        v = v.relu();
                    result.output.at(ox, oy, f) = v;
                    group.push_back(v);
                }
                CNV_ASSERT(encoder.offer({group.data(), group.size()}),
                           "encoder must be idle between groups");
                encEngine.run();
            }
        }
        result.encoderBusyCycles = encoder.busyCycles();
    }

    result.encoderBricks = encoder.bricks().size();
    result.regions = engine.regions();
    result.micro.encoderBusyCycles = result.encoderBusyCycles;
    result.micro.encoderBricks = result.encoderBricks;
    result.micro.bbOccupancySum = result.bbOccupancySum;
    result.micro.bbSampleCycles = result.bbSampleCycles;
    return result;
}

} // namespace cnv::core
