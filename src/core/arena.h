/**
 * @file
 * Bump-pointer arena for per-image kernel temporaries.
 *
 * The vectorized kernels in nn/kernels.cc stage padded input copies
 * and column scratch buffers per layer; allocating those from the
 * heap on every call dominates small-image runs. An Arena hands out
 * aligned slices of a few large blocks and recycles them wholesale:
 * `reset()` rewinds the bump pointers without returning memory to
 * the operating system, so a forward pass over N layers costs at
 * most a handful of `operator new` calls for the whole run.
 *
 * Not thread-safe by design — each worker owns its own Arena, which
 * is how the parallel driver keeps determinism and avoids
 * synchronisation on the hot path.
 *
 * Layering: freestanding (includes nothing from src/), so any module
 * may use it without creating a layering edge; see
 * tools/check_layering.py.
 */

#ifndef CNV_CORE_ARENA_H
#define CNV_CORE_ARENA_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

namespace cnv::core {

/**
 * A growable bump allocator. Allocations are served from the current
 * block; when it runs out a new block of at least `blockBytes` is
 * appended (oversized requests get a dedicated block of exactly the
 * requested size). `reset()` makes every block reusable again
 * without freeing; destruction releases everything.
 */
class Arena
{
  public:
    /** Default size of each backing block (1 MiB). */
    static constexpr std::size_t kDefaultBlockBytes = 1u << 20;

    explicit Arena(std::size_t blockBytes = kDefaultBlockBytes)
        : blockBytes_(blockBytes > 0 ? blockBytes : 1) {}

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /**
     * Return `bytes` bytes aligned to `align` (a power of two).
     * The memory is uninitialised and stays valid until `reset()`
     * or destruction. Zero-byte requests return a valid aligned
     * pointer that must not be dereferenced.
     */
    void *
    allocate(std::size_t bytes, std::size_t align = alignof(
        std::max_align_t))
    {
        void *p = alignedSlot(bytes, align);
        if (p == nullptr) {
            // Reserve alignment slack: `new std::byte[]` storage is
            // only aligned to the default new alignment, so the
            // block must absorb a worst-case pointer adjustment.
            advance(bytes + align);
            p = alignedSlot(bytes, align);
        }
        return p;
    }

    /**
     * Typed variant: space for `count` objects of trivially-
     * destructible type T (the arena never runs destructors).
     */
    template <typename T>
    T *
    allocate(std::size_t count)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "Arena never runs destructors");
        return static_cast<T *>(
            allocate(count * sizeof(T), alignof(T)));
    }

    /**
     * Rewind every block for reuse. All pointers previously handed
     * out become invalid; no memory is returned to the system.
     */
    void
    reset()
    {
        for (auto &b : blocks_)
            b->used = 0;
        current_ = 0;
    }

    /** Bytes currently handed out (diagnostics and tests). */
    std::size_t
    bytesUsed() const
    {
        std::size_t n = 0;
        for (const auto &b : blocks_)
            n += b->used;
        return n;
    }

    /** Total capacity of all backing blocks (diagnostics/tests). */
    std::size_t
    bytesReserved() const
    {
        std::size_t n = 0;
        for (const auto &b : blocks_)
            n += b->capacity;
        return n;
    }

    /** Number of backing blocks allocated so far. */
    std::size_t blockCount() const { return blocks_.size(); }

  private:
    /** One backing block: raw storage plus a bump offset. */
    struct Block
    {
        explicit Block(std::size_t cap)
            : storage(new std::byte[cap]), data(storage.get()),
              capacity(cap) {}

        std::unique_ptr<std::byte[]> storage;
        std::byte *data;
        std::size_t capacity;
        std::size_t used = 0;
    };

    /**
     * Carve an aligned slice from the current block, or return
     * nullptr when no block is selected or it cannot fit the
     * request. std::align aligns the *pointer*, not the offset —
     * the block base itself carries no extra alignment guarantee.
     */
    void *
    alignedSlot(std::size_t bytes, std::size_t align)
    {
        if (current_ >= blocks_.size())
            return nullptr;
        Block &b = *blocks_[current_];
        void *p = b.data + b.used;
        std::size_t space = b.capacity - b.used;
        if (std::align(align, bytes, p, space) == nullptr)
            return nullptr;
        b.used = b.capacity - space + bytes;
        return p;
    }

    /**
     * Move to the next block able to serve `need` bytes, appending a
     * fresh block when no reset-recycled one fits. `need` includes
     * alignment slack, so the block found always satisfies the
     * caller after alignUp.
     */
    void
    advance(std::size_t need)
    {
        while (current_ + 1 < blocks_.size()) {
            ++current_;
            if (blocks_[current_]->used == 0 &&
                blocks_[current_]->capacity >= need) {
                return;
            }
        }
        const std::size_t cap =
            need > blockBytes_ ? need : blockBytes_;
        blocks_.push_back(std::make_unique<Block>(cap));
        current_ = blocks_.size() - 1;
    }

    std::size_t blockBytes_;
    std::vector<std::unique_ptr<Block>> blocks_;
    std::size_t current_ = 0;
};

} // namespace cnv::core

#endif // CNV_CORE_ARENA_H
