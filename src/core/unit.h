/**
 * @file
 * Cycle-level model of a CNV node executing one convolutional layer
 * on a ZFNAf-encoded input (Section IV-B).
 *
 * The front-end of each unit is 16 independent subunits; subunit i
 * holds neuron lane i and one 16-synapse lane per filter. Every
 * cycle a busy subunit pops one (value, offset) pair from its NBin,
 * uses the offset to index its SB slice, and produces 16 products —
 * one per filter — which the unchanged back-end adder trees reduce
 * into NBout. Lanes drain their window slices at their own pace and
 * synchronise at window boundaries (Section IV-B5); a brick whose
 * neurons are all zero occupies its lane for one (NM-bank-limited)
 * cycle unless configured otherwise.
 *
 * The model is functional and timing-accurate: outputs must match
 * the baseline and golden models bit-exactly, while activity
 * distinguishes non-zero work from window-synchronisation stalls.
 */

#ifndef CNV_CORE_UNIT_H
#define CNV_CORE_UNIT_H

#include <vector>

#include "dadiannao/config.h"
#include "dadiannao/metrics.h"
#include "nn/layer.h"
#include "tensor/neuron_tensor.h"
#include "zfnaf/format.h"

namespace cnv::core {

/** Outcome of simulating one conv layer on the CNV node. */
struct CnvConvResult
{
    dadiannao::LayerResult timing;
    tensor::NeuronTensor output;
};

/**
 * Simulate one convolutional layer in encoded (zero-skipping) mode.
 *
 * @param cfg Node configuration (brick size must equal lane count).
 * @param p Layer parameters.
 * @param in Encoded input array (already pruned by the producer's
 *        encoder if dynamic pruning is enabled).
 * @param weights N filters (conventional layout; the transposed SB
 *        store order of Section IV-B2 is an arrangement detail that
 *        does not change which synapse each offset selects).
 * @param bias Per-filter bias.
 */
CnvConvResult simulateConvCnv(const dadiannao::NodeConfig &cfg,
                              const nn::ConvParams &p,
                              const zfnaf::EncodedArray &in,
                              const tensor::FilterBank &weights,
                              const std::vector<tensor::Fixed16> &bias);

} // namespace cnv::core

#endif // CNV_CORE_UNIT_H
