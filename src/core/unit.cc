#include "core/unit.h"

#include <algorithm>

#include "core/assignment.h"
#include "sim/logging.h"

namespace cnv::core {

using dadiannao::Activity;
using dadiannao::EnergyCounters;
using dadiannao::NodeConfig;
using tensor::Accum;
using tensor::FilterBank;
using tensor::Fixed16;
using tensor::NeuronTensor;
using tensor::Shape3;

CnvConvResult
simulateConvCnv(const NodeConfig &cfg, const nn::ConvParams &p,
                const zfnaf::EncodedArray &in, const FilterBank &weights,
                const std::vector<Fixed16> &bias)
{
    CNV_ASSERT(cfg.brickSize == in.brickSize(),
               "node brick size {} != encoded array brick size {}",
               cfg.brickSize, in.brickSize());
    CNV_ASSERT(cfg.lanes == cfg.brickSize,
               "CNV requires one neuron lane per brick slot");

    const Shape3 inShape = in.shape();
    const Shape3 outShape = p.outputShape(inShape);
    const int lanes = cfg.lanes;
    const int depthPerGroup = inShape.z / p.groups;
    const int filtersPerGroup = p.filters / p.groups;
    const int parallel = cfg.parallelFilters();
    const int inFlight = cfg.windowsInFlight();

    if (p.groups > 1 && depthPerGroup % cfg.brickSize != 0) {
        CNV_FATAL("group depth {} must be brick aligned ({})", depthPerGroup,
                  cfg.brickSize);
    }

    CnvConvResult result;
    result.timing.name = "conv(cnv)";
    result.output = NeuronTensor(outShape);

    Activity &act = result.timing.activity;
    EnergyCounters &en = result.timing.energy;
    std::uint64_t cycles = 0;

    // NBout partial sums for the windows currently in flight.
    std::vector<std::vector<Accum>> acc(
        inFlight, std::vector<Accum>(static_cast<std::size_t>(p.filters)));
    std::vector<std::uint64_t> laneTime(lanes);

    // Windows are taken in row-major order in groups of up to
    // `inFlight` (their partial sums share NBout); lanes synchronise
    // only at group boundaries (Section IV-B5).
    const std::int64_t totalWindows =
        static_cast<std::int64_t>(outShape.x) * outShape.y;

    for (std::int64_t w0 = 0; w0 < totalWindows; w0 += inFlight) {
        const int batch = static_cast<int>(
            std::min<std::int64_t>(inFlight, totalWindows - w0));
        for (int w = 0; w < batch; ++w)
            std::fill(acc[w].begin(), acc[w].end(), Accum{0});

        for (int g = 0; g < p.groups; ++g) {
            const int zBase = g * depthPerGroup;
            const int brickBase = zBase / cfg.brickSize;
            const int bricksPerCell =
                (depthPerGroup + cfg.brickSize - 1) / cfg.brickSize;
            const int fBase = g * filtersPerGroup;
            const int passes = (filtersPerGroup + parallel - 1) / parallel;

            for (int pass = 0; pass < passes; ++pass) {
                const int fStart = fBase + pass * parallel;
                const int fCount =
                    std::min(parallel, fBase + filtersPerGroup - fStart);
                const int activeUnits =
                    (fCount + cfg.filtersPerUnit - 1) / cfg.filtersPerUnit;

                std::fill(laneTime.begin(), laneTime.end(),
                          std::uint64_t{0});
                int windowSeq = 0;

                for (int w = 0; w < batch; ++w) {
                    const int ox = static_cast<int>((w0 + w) % outShape.x);
                    const int oy = static_cast<int>((w0 + w) / outShape.x);
                    const int x0 = ox * p.stride - p.pad;
                    const int y0 = oy * p.stride - p.pad;

                    for (int ky = 0; ky < p.fy; ++ky) {
                        const int iy = y0 + ky;
                        if (iy < 0 || iy >= inShape.y)
                            continue;
                        for (int kx = 0; kx < p.fx; ++kx) {
                            const int ix = x0 + kx;
                            if (ix < 0 || ix >= inShape.x)
                                continue;

                            for (int b = 0; b < bricksPerCell; ++b) {
                                const int gBrick = brickBase + b;
                                const int lane = laneOf(
                                    cfg.laneAssignment, ix, iy, gBrick,
                                    windowSeq++, lanes);
                                const auto entries =
                                    in.brick(ix, iy, gBrick);
                                en.nmReads += 1; // one brick fetch/bank

                                if (entries.empty()) {
                                    // All-zero brick: the NM bank can
                                    // supply at most one brick per
                                    // cycle; the lane idles for it.
                                    if (cfg.emptyBrickCostsCycle) {
                                        laneTime[lane] += 1;
                                        act.stall +=
                                            static_cast<std::uint64_t>(
                                                cfg.units);
                                    }
                                    continue;
                                }

                                laneTime[lane] += entries.size();
                                act.nonZero +=
                                    entries.size() *
                                    static_cast<std::uint64_t>(cfg.units);
                                en.nbinWrites +=
                                    entries.size() *
                                    static_cast<std::uint64_t>(cfg.units);
                                en.nbinReads +=
                                    entries.size() *
                                    static_cast<std::uint64_t>(cfg.units);
                                // Each non-zero neuron triggers one
                                // 16-synapse SB access per active
                                // unit and fCount multiplies.
                                en.sbReads += entries.size() *
                                              static_cast<std::uint64_t>(
                                                  activeUnits);
                                en.multOps +=
                                    entries.size() *
                                    static_cast<std::uint64_t>(fCount);
                                en.addOps +=
                                    entries.size() *
                                    static_cast<std::uint64_t>(fCount);

                                for (const zfnaf::EncodedNeuron &e :
                                     entries) {
                                    const int z = gBrick * cfg.brickSize +
                                                  e.offset - zBase;
                                    CNV_ASSERT(z >= 0 && z < depthPerGroup,
                                               "offset escapes group slice");
                                    for (int f = 0; f < fCount; ++f) {
                                        const Fixed16 s = weights.at(
                                            fStart + f, kx, ky, z);
                                        acc[w][fStart + f] +=
                                            mulRaw(e.value, s);
                                    }
                                }
                            }
                        }
                    }
                }

                // Lanes wait for the slowest before the next window
                // group / filter pass.
                const std::uint64_t groupCycles =
                    *std::max_element(laneTime.begin(), laneTime.end());
                cycles += groupCycles;
                std::uint64_t laneSum = 0;
                for (int lane = 0; lane < lanes; ++lane) {
                    laneSum += laneTime[lane];
                    act.stall += (groupCycles - laneTime[lane]) *
                                 static_cast<std::uint64_t>(cfg.units);
                }
                result.timing.micro.laneBusyCycles += laneSum;
                const std::uint64_t barrier =
                    groupCycles * static_cast<std::uint64_t>(lanes) -
                    laneSum;
                result.timing.micro.laneIdleCycles += barrier;
                result.timing.micro.stalls.windowBarrier += barrier;
            }
        }

        // Drain NBout through the encoder to NM.
        for (int w = 0; w < batch; ++w) {
            const int ox = static_cast<int>((w0 + w) % outShape.x);
            const int oy = static_cast<int>((w0 + w) / outShape.x);
            for (int f = 0; f < p.filters; ++f) {
                Fixed16 v = Fixed16::productToFixed(acc[w][f]) + bias[f];
                if (p.relu)
                    v = v.relu();
                result.output.at(ox, oy, f) = v;
            }
            en.nmWrites += (p.filters + lanes - 1) / lanes;
            en.encoderOps += static_cast<std::uint64_t>(p.filters);
            // The per-unit encoder is serial: one output neuron
            // examined per cycle, packed into brick-sized NM writes.
            result.timing.micro.encoderBusyCycles +=
                static_cast<std::uint64_t>(p.filters);
            result.timing.micro.encoderBricks +=
                static_cast<std::uint64_t>(
                    (p.filters + cfg.brickSize - 1) / cfg.brickSize);
        }
    }

    result.timing.cycles = cycles;
    return result;
}

} // namespace cnv::core
