/**
 * @file
 * Clang thread-safety-analysis attribute macros (CNV_CAPABILITY,
 * CNV_GUARDED_BY, CNV_REQUIRES, ...). Under Clang they expand to the
 * `thread_safety` attributes so `-Wthread-safety` can prove lock
 * discipline at compile time; under every other compiler they expand
 * to nothing (tests/sim/test_thread_annotations.cc pins that).
 *
 * The annotations are only meaningful on capability types that carry
 * them — the standard library mutexes are unannotated on libstdc++ —
 * so all lock-discipline-checked code uses the annotated wrappers in
 * core/sync.h (`core::Mutex`, `core::MutexLock`) instead of
 * `std::mutex` / `std::lock_guard`. Usage and how to read the
 * resulting diagnostics: docs/development.md, "Static analysis".
 *
 * This header is freestanding: it includes nothing from src/, so any
 * module may use it without creating a layering edge
 * (tools/check_layering.py verifies that property).
 */

#ifndef CNV_CORE_THREAD_ANNOTATIONS_H
#define CNV_CORE_THREAD_ANNOTATIONS_H

#if defined(__clang__) && (!defined(SWIG))
#define CNV_THREAD_ANNOTATION(x) __attribute__((x))
#define CNV_THREAD_SAFETY_ENABLED 1
#else
#define CNV_THREAD_ANNOTATION(x) // no-op outside Clang
#define CNV_THREAD_SAFETY_ENABLED 0
#endif

/** Marks a type as a capability (a lock) the analysis can track. */
#define CNV_CAPABILITY(x) CNV_THREAD_ANNOTATION(capability(x))

/** Marks an RAII type that acquires a capability for its lifetime. */
#define CNV_SCOPED_CAPABILITY CNV_THREAD_ANNOTATION(scoped_lockable)

/** Data member readable/writable only while holding `x`. */
#define CNV_GUARDED_BY(x) CNV_THREAD_ANNOTATION(guarded_by(x))

/** Pointer member whose pointee is guarded by `x`. */
#define CNV_PT_GUARDED_BY(x) CNV_THREAD_ANNOTATION(pt_guarded_by(x))

/** Function callable only while holding the listed capabilities. */
#define CNV_REQUIRES(...) \
    CNV_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Function that acquires the listed capabilities (and holds them
 *  on return). */
#define CNV_ACQUIRE(...) \
    CNV_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function that releases the listed capabilities. */
#define CNV_RELEASE(...) \
    CNV_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function that acquires the capability when it returns the first
 *  argument (`true`/`false`); further arguments name the capability,
 *  defaulting to `this`. All arguments pass through `__VA_ARGS__`
 *  (the Clang-docs/Abseil pattern) so the common one-argument form
 *  `CNV_TRY_ACQUIRE(true)` never leaves a trailing comma in the
 *  attribute list. */
#define CNV_TRY_ACQUIRE(...) \
    CNV_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/** Function callable only while NOT holding the listed capabilities
 *  (deadlock documentation for lock-taking entry points). */
#define CNV_EXCLUDES(...) CNV_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Function returning a reference to the capability guarding it. */
#define CNV_RETURN_CAPABILITY(x) \
    CNV_THREAD_ANNOTATION(lock_returned(x))

/** Opt a function out of the analysis (justify at the use site and
 *  in the docs/development.md suppression inventory). */
#define CNV_NO_THREAD_SAFETY_ANALYSIS \
    CNV_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif // CNV_CORE_THREAD_ANNOTATIONS_H
