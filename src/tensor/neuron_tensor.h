/**
 * @file
 * Concrete tensor aliases used throughout the simulator, plus small
 * analysis helpers over neuron arrays.
 */

#ifndef CNV_TENSOR_NEURON_TENSOR_H
#define CNV_TENSOR_NEURON_TENSOR_H

#include "tensor/fixed16.h"
#include "tensor/tensor.h"

namespace cnv::tensor {

/** A 3D array of 16-bit fixed-point neurons (inputs/outputs of layers). */
using NeuronTensor = Tensor3<Fixed16>;

/** A bank of N 3D filters of 16-bit fixed-point synapses. */
using FilterBank = Tensor4<Fixed16>;

/** Fraction of elements that are exactly zero. */
double zeroFraction(const NeuronTensor &t);

/** Number of non-zero elements. */
std::size_t countNonZero(const NeuronTensor &t);

/** Largest elementwise |a - b| in real units. */
double maxAbsDifference(const NeuronTensor &a, const NeuronTensor &b);

} // namespace cnv::tensor

#endif // CNV_TENSOR_NEURON_TENSOR_H
