/**
 * @file
 * 16-bit fixed-point arithmetic as used by the DaDianNao and CNV
 * datapaths (Section IV-A: 16-bit fixed-point neurons and synapses).
 *
 * Values are stored as raw two's-complement int16 with an implied
 * binary point: Q7.8 (1 sign bit, 7 integer bits, 8 fraction bits).
 * Products are formed exactly in 32 bits; the adder trees accumulate
 * in a wide (64-bit) accumulator, and conversion back to Fixed16
 * saturates — matching a hardware datapath that never wraps silently.
 *
 * The per-layer pruning thresholds of Section V-E (Table II: 2, 4,
 * 8, ..., 256) are expressed in raw fixed-point units, i.e., a
 * threshold of 8 prunes |value| < 8/256 = 0.03125.
 */

#ifndef CNV_TENSOR_FIXED16_H
#define CNV_TENSOR_FIXED16_H

#include <cstdint>
#include <cmath>
#include <compare>
#include <ostream>

namespace cnv::tensor {

/** Wide accumulator type used by the adder-tree model. */
using Accum = std::int64_t;

/** 16-bit Q7.8 fixed-point number. */
class Fixed16
{
  public:
    /** Number of fraction bits in the Q format. */
    static constexpr int fracBits = 8;
    /** Scale factor: 1.0 == kOne raw units. */
    static constexpr std::int32_t kOne = 1 << fracBits;
    /** Raw range limits. */
    static constexpr std::int32_t kRawMax = 32767;
    static constexpr std::int32_t kRawMin = -32768;

    constexpr Fixed16() = default;

    /** Construct from a raw two's-complement bit pattern. */
    static constexpr Fixed16
    fromRaw(std::int16_t raw)
    {
        Fixed16 f;
        f.raw_ = raw;
        return f;
    }

    /** Construct from a real value, rounding to nearest and saturating. */
    static Fixed16
    fromDouble(double v)
    {
        double scaled = v * kOne;
        scaled = std::nearbyint(scaled);
        if (scaled > kRawMax)
            scaled = kRawMax;
        if (scaled < kRawMin)
            scaled = kRawMin;
        return fromRaw(static_cast<std::int16_t>(scaled));
    }

    /** Saturating conversion from a wide accumulator in raw units. */
    static constexpr Fixed16
    saturateFromRaw(Accum raw)
    {
        if (raw > kRawMax)
            raw = kRawMax;
        if (raw < kRawMin)
            raw = kRawMin;
        return fromRaw(static_cast<std::int16_t>(raw));
    }

    constexpr std::int16_t raw() const { return raw_; }
    constexpr bool isZero() const { return raw_ == 0; }

    double toDouble() const { return static_cast<double>(raw_) / kOne; }

    /** |raw| as a 32-bit value (|kRawMin| overflows int16). */
    constexpr std::int32_t
    rawAbs() const
    {
        const std::int32_t v = raw_;
        return v < 0 ? -v : v;
    }

    /**
     * Exact product in raw accumulator units. Two Q7.8 operands give
     * a Q14.16 product; the adder tree keeps full precision and the
     * final requantisation divides by kOne (see productToFixed).
     */
    friend constexpr Accum
    mulRaw(Fixed16 a, Fixed16 b)
    {
        return static_cast<Accum>(a.raw_) * static_cast<Accum>(b.raw_);
    }

    /** Requantise a sum of raw products back to Q7.8 (round, saturate). */
    static constexpr Fixed16
    productToFixed(Accum sumOfProducts)
    {
        // Round to nearest: add half an output LSB (in product units)
        // before the arithmetic shift, mirroring the datapath rounder.
        const Accum half = kOne / 2;
        const Accum adjusted =
            sumOfProducts >= 0 ? sumOfProducts + half : sumOfProducts - half;
        return saturateFromRaw(adjusted / kOne);
    }

    /** Saturating addition (used by bias add). */
    friend Fixed16
    operator+(Fixed16 a, Fixed16 b)
    {
        return saturateFromRaw(static_cast<Accum>(a.raw_) + b.raw_);
    }

    friend Fixed16
    operator-(Fixed16 a, Fixed16 b)
    {
        return saturateFromRaw(static_cast<Accum>(a.raw_) - b.raw_);
    }

    friend constexpr bool operator==(Fixed16 a, Fixed16 b) = default;
    friend constexpr auto
    operator<=>(Fixed16 a, Fixed16 b)
    {
        return a.raw_ <=> b.raw_;
    }

    /** ReLU: negative values become exactly zero (Section II). */
    constexpr Fixed16
    relu() const
    {
        return raw_ < 0 ? Fixed16{} : *this;
    }

    friend std::ostream &
    operator<<(std::ostream &os, Fixed16 f)
    {
        return os << f.toDouble();
    }

  private:
    std::int16_t raw_ = 0;
};

} // namespace cnv::tensor

#endif // CNV_TENSOR_FIXED16_H
