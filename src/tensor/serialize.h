/**
 * @file
 * Binary serialisation of neuron tensors and filter banks, so
 * traces and synthetic weights can be exported, archived, and
 * re-loaded across runs (e.g., to feed the same activation trace to
 * external tooling, or to freeze a calibrated network's weights).
 *
 * Format (little-endian, as on every supported host):
 *   magic "CNVT"/"CNVF" | u32 version | dims | i16 raw values
 */

#ifndef CNV_TENSOR_SERIALIZE_H
#define CNV_TENSOR_SERIALIZE_H

#include <iosfwd>
#include <string>

#include "tensor/neuron_tensor.h"

namespace cnv::tensor {

/** Write a neuron tensor to a binary stream. */
void save(std::ostream &os, const NeuronTensor &t);

/** Read a neuron tensor written by save(); fatal on bad data. */
NeuronTensor loadTensor(std::istream &is);

/** Write a filter bank to a binary stream. */
void save(std::ostream &os, const FilterBank &f);

/** Read a filter bank written by save(); fatal on bad data. */
FilterBank loadFilterBank(std::istream &is);

/** Convenience file wrappers (fatal on I/O errors). */
void saveTensorFile(const std::string &path, const NeuronTensor &t);
NeuronTensor loadTensorFile(const std::string &path);

} // namespace cnv::tensor

#endif // CNV_TENSOR_SERIALIZE_H
