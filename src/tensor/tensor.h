/**
 * @file
 * Dense 3D and 4D tensors with the paper's coordinate conventions.
 *
 * A neuron array n(x, y, z) has dimensions Ix x Iy x I where z is
 * the feature (depth, "i") dimension. Storage is depth-fastest —
 * elements that share (x, y) and differ only in z are contiguous —
 * because ZFNAf bricks (Section IV-B1) are "aligned, continuous
 * along the input features dimension i" groups of 16 neurons.
 *
 * Filters s^f(x, y, z) add a fourth index f (the filter number).
 */

#ifndef CNV_TENSOR_TENSOR_H
#define CNV_TENSOR_TENSOR_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/logging.h"

namespace cnv::tensor {

/** Shape of a 3D neuron array: Ix x Iy x depth. */
struct Shape3
{
    int x = 0;
    int y = 0;
    int z = 0;

    std::size_t
    volume() const
    {
        return static_cast<std::size_t>(x) * static_cast<std::size_t>(y) *
               static_cast<std::size_t>(z);
    }

    bool operator==(const Shape3 &) const = default;
};

/** Dense 3D tensor with depth-fastest storage. */
template <typename T>
class Tensor3
{
  public:
    Tensor3() = default;

    explicit Tensor3(Shape3 shape) : shape_(shape), data_(shape.volume()) {}

    Tensor3(int x, int y, int z) : Tensor3(Shape3{x, y, z}) {}

    const Shape3 &shape() const { return shape_; }
    std::size_t size() const { return data_.size(); }

    /** Linear index of element (x, y, z); depth-fastest order. */
    std::size_t
    index(int x, int y, int z) const
    {
        CNV_ASSERT(x >= 0 && x < shape_.x && y >= 0 && y < shape_.y &&
                   z >= 0 && z < shape_.z,
                   "tensor index ({},{},{}) out of shape ({},{},{})",
                   x, y, z, shape_.x, shape_.y, shape_.z);
        return (static_cast<std::size_t>(y) * shape_.x + x) * shape_.z + z;
    }

    T &at(int x, int y, int z) { return data_[index(x, y, z)]; }
    const T &at(int x, int y, int z) const { return data_[index(x, y, z)]; }

    /** Raw storage access (depth-fastest). */
    T *data() { return data_.data(); }
    const T *data() const { return data_.data(); }

    /** Pointer to the depth column at (x, y): &at(x, y, 0). */
    const T *
    column(int x, int y) const
    {
        return data_.data() + index(x, y, 0);
    }

    void
    fill(const T &v)
    {
        for (auto &e : data_)
            e = v;
    }

    auto begin() { return data_.begin(); }
    auto end() { return data_.end(); }
    auto begin() const { return data_.begin(); }
    auto end() const { return data_.end(); }

    bool
    operator==(const Tensor3 &other) const
    {
        return shape_ == other.shape_ && data_ == other.data_;
    }

  private:
    Shape3 shape_;
    std::vector<T> data_;
};

/** Shape of a filter bank: N filters of Fx x Fy x depth. */
struct Shape4
{
    int n = 0;
    int x = 0;
    int y = 0;
    int z = 0;

    std::size_t
    volume() const
    {
        return static_cast<std::size_t>(n) * static_cast<std::size_t>(x) *
               static_cast<std::size_t>(y) * static_cast<std::size_t>(z);
    }

    bool operator==(const Shape4 &) const = default;
};

/** Dense 4D tensor: N filters, each a depth-fastest 3D array. */
template <typename T>
class Tensor4
{
  public:
    Tensor4() = default;

    explicit Tensor4(Shape4 shape) : shape_(shape), data_(shape.volume()) {}

    Tensor4(int n, int x, int y, int z) : Tensor4(Shape4{n, x, y, z}) {}

    const Shape4 &shape() const { return shape_; }
    std::size_t size() const { return data_.size(); }

    std::size_t
    index(int n, int x, int y, int z) const
    {
        CNV_ASSERT(n >= 0 && n < shape_.n && x >= 0 && x < shape_.x &&
                   y >= 0 && y < shape_.y && z >= 0 && z < shape_.z,
                   "filter index ({},{},{},{}) out of shape ({},{},{},{})",
                   n, x, y, z, shape_.n, shape_.x, shape_.y, shape_.z);
        return ((static_cast<std::size_t>(n) * shape_.y + y) * shape_.x + x) *
                   shape_.z + z;
    }

    T &at(int n, int x, int y, int z) { return data_[index(n, x, y, z)]; }
    const T &
    at(int n, int x, int y, int z) const
    {
        return data_[index(n, x, y, z)];
    }

    T *data() { return data_.data(); }
    const T *data() const { return data_.data(); }

    void
    fill(const T &v)
    {
        for (auto &e : data_)
            e = v;
    }

  private:
    Shape4 shape_;
    std::vector<T> data_;
};

} // namespace cnv::tensor

#endif // CNV_TENSOR_TENSOR_H
