#include "tensor/tensor.h"

#include "tensor/fixed16.h"
#include "tensor/neuron_tensor.h"

namespace cnv::tensor {

double
zeroFraction(const NeuronTensor &t)
{
    if (t.size() == 0)
        return 0.0;
    std::size_t zeros = 0;
    for (const Fixed16 v : t) {
        if (v.isZero())
            ++zeros;
    }
    return static_cast<double>(zeros) / static_cast<double>(t.size());
}

std::size_t
countNonZero(const NeuronTensor &t)
{
    std::size_t nz = 0;
    for (const Fixed16 v : t) {
        if (!v.isZero())
            ++nz;
    }
    return nz;
}

double
maxAbsDifference(const NeuronTensor &a, const NeuronTensor &b)
{
    CNV_ASSERT(a.shape() == b.shape(), "shape mismatch in comparison");
    double worst = 0.0;
    const Fixed16 *pa = a.data();
    const Fixed16 *pb = b.data();
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = std::abs(pa[i].toDouble() - pb[i].toDouble());
        if (d > worst)
            worst = d;
    }
    return worst;
}

} // namespace cnv::tensor
