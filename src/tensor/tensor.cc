#include "tensor/tensor.h"

#include "core/simd.h"
#include "tensor/fixed16.h"
#include "tensor/neuron_tensor.h"

namespace cnv::tensor {

namespace {

namespace simd = cnv::core::simd;

/** Non-zero values in p[0..n), via full-width predicate counts. */
std::size_t
countNonZeroRun(const Fixed16 *p, std::size_t n)
{
    std::size_t nz = 0;
    std::size_t i = 0;
    const std::size_t lanes = static_cast<std::size_t>(simd::kLanes);
    for (; i + lanes <= n; i += lanes) {
        nz += static_cast<std::size_t>(
            simd::geCount(simd::loadFull(p + i), 1));
    }
    if (i < n) {
        nz += static_cast<std::size_t>(simd::geCount(
            simd::loadPartial(p + i, static_cast<int>(n - i)), 1));
    }
    return nz;
}

} // namespace

double
zeroFraction(const NeuronTensor &t)
{
    if (t.size() == 0)
        return 0.0;
    const std::size_t zeros = t.size() - countNonZeroRun(t.data(), t.size());
    return static_cast<double>(zeros) / static_cast<double>(t.size());
}

std::size_t
countNonZero(const NeuronTensor &t)
{
    return countNonZeroRun(t.data(), t.size());
}

double
maxAbsDifference(const NeuronTensor &a, const NeuronTensor &b)
{
    CNV_ASSERT(a.shape() == b.shape(), "shape mismatch in comparison");
    double worst = 0.0;
    const Fixed16 *pa = a.data();
    const Fixed16 *pb = b.data();
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = std::abs(pa[i].toDouble() - pb[i].toDouble());
        if (d > worst)
            worst = d;
    }
    return worst;
}

} // namespace cnv::tensor
