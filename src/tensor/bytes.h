/**
 * @file
 * Alignment-safe, aliasing-safe scalar load/store helpers for binary
 * I/O. `memcpy` through a byte buffer is the only portable way to
 * reinterpret object representations in C++ (reinterpret_cast'ing a
 * buffer pointer to `T*` and dereferencing is undefined behaviour
 * under the strict-aliasing and alignment rules); compilers lower
 * these fixed-size copies to single moves, so there is no cost.
 *
 * Byte order is the host's (little-endian on every supported
 * platform, as documented in tensor/serialize.h).
 */

#ifndef CNV_TENSOR_BYTES_H
#define CNV_TENSOR_BYTES_H

#include <cstring>
#include <type_traits>

namespace cnv::tensor {

/** Read a trivially-copyable T from a possibly unaligned buffer. */
template <typename T>
inline T
loadScalar(const void *src)
{
    static_assert(std::is_trivially_copyable_v<T>);
    T v;
    std::memcpy(&v, src, sizeof(T));
    return v;
}

/** Write a trivially-copyable T to a possibly unaligned buffer. */
template <typename T>
inline void
storeScalar(void *dst, const T &v)
{
    static_assert(std::is_trivially_copyable_v<T>);
    std::memcpy(dst, &v, sizeof(T));
}

} // namespace cnv::tensor

#endif // CNV_TENSOR_BYTES_H
