#include "tensor/serialize.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "sim/logging.h"

namespace cnv::tensor {

namespace {

constexpr std::uint32_t kVersion = 1;

void
writeU32(std::ostream &os, std::uint32_t v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

std::uint32_t
readU32(std::istream &is)
{
    std::uint32_t v = 0;
    is.read(reinterpret_cast<char *>(&v), sizeof(v));
    if (!is)
        CNV_FATAL("truncated tensor stream");
    return v;
}

void
writeMagic(std::ostream &os, const char magic[4])
{
    os.write(magic, 4);
}

void
expectMagic(std::istream &is, const char magic[4])
{
    char buf[4] = {};
    is.read(buf, 4);
    if (!is || std::memcmp(buf, magic, 4) != 0)
        CNV_FATAL("bad magic in tensor stream (expected {})",
                  std::string(magic, 4));
    const std::uint32_t version = readU32(is);
    if (version != kVersion)
        CNV_FATAL("unsupported tensor stream version {}", version);
}

void
writeRaw(std::ostream &os, const Fixed16 *data, std::size_t count)
{
    static_assert(sizeof(Fixed16) == sizeof(std::int16_t));
    os.write(reinterpret_cast<const char *>(data),
             static_cast<std::streamsize>(count * sizeof(Fixed16)));
    if (!os)
        CNV_FATAL("tensor write failed");
}

void
readRaw(std::istream &is, Fixed16 *data, std::size_t count)
{
    is.read(reinterpret_cast<char *>(data),
            static_cast<std::streamsize>(count * sizeof(Fixed16)));
    if (!is)
        CNV_FATAL("truncated tensor stream");
}

} // namespace

void
save(std::ostream &os, const NeuronTensor &t)
{
    writeMagic(os, "CNVT");
    writeU32(os, kVersion);
    writeU32(os, static_cast<std::uint32_t>(t.shape().x));
    writeU32(os, static_cast<std::uint32_t>(t.shape().y));
    writeU32(os, static_cast<std::uint32_t>(t.shape().z));
    writeRaw(os, t.data(), t.size());
}

NeuronTensor
loadTensor(std::istream &is)
{
    expectMagic(is, "CNVT");
    const int x = static_cast<int>(readU32(is));
    const int y = static_cast<int>(readU32(is));
    const int z = static_cast<int>(readU32(is));
    if (x < 0 || y < 0 || z < 0 ||
        static_cast<std::uint64_t>(x) * y * z > (1ULL << 32))
        CNV_FATAL("implausible tensor dimensions {}x{}x{}", x, y, z);
    NeuronTensor t(x, y, z);
    readRaw(is, t.data(), t.size());
    return t;
}

void
save(std::ostream &os, const FilterBank &f)
{
    writeMagic(os, "CNVF");
    writeU32(os, kVersion);
    writeU32(os, static_cast<std::uint32_t>(f.shape().n));
    writeU32(os, static_cast<std::uint32_t>(f.shape().x));
    writeU32(os, static_cast<std::uint32_t>(f.shape().y));
    writeU32(os, static_cast<std::uint32_t>(f.shape().z));
    writeRaw(os, f.data(), f.size());
}

FilterBank
loadFilterBank(std::istream &is)
{
    expectMagic(is, "CNVF");
    const int n = static_cast<int>(readU32(is));
    const int x = static_cast<int>(readU32(is));
    const int y = static_cast<int>(readU32(is));
    const int z = static_cast<int>(readU32(is));
    if (n < 0 || x < 0 || y < 0 || z < 0 ||
        static_cast<std::uint64_t>(n) * x * y * z > (1ULL << 32))
        CNV_FATAL("implausible filter dimensions");
    FilterBank f(n, x, y, z);
    readRaw(is, f.data(), f.size());
    return f;
}

void
saveTensorFile(const std::string &path, const NeuronTensor &t)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        CNV_FATAL("cannot open '{}' for writing", path);
    save(os, t);
}

NeuronTensor
loadTensorFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        CNV_FATAL("cannot open '{}' for reading", path);
    return loadTensor(is);
}

} // namespace cnv::tensor
