#include "tensor/serialize.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "sim/logging.h"
#include "tensor/bytes.h"

namespace cnv::tensor {

namespace {

constexpr std::uint32_t kVersion = 1;

void
writeU32(std::ostream &os, std::uint32_t v)
{
    char buf[sizeof(v)];
    storeScalar(buf, v);
    os.write(buf, sizeof(buf));
}

std::uint32_t
readU32(std::istream &is)
{
    char buf[sizeof(std::uint32_t)] = {};
    is.read(buf, sizeof(buf));
    if (!is)
        CNV_FATAL("truncated tensor stream");
    return loadScalar<std::uint32_t>(buf);
}

void
writeMagic(std::ostream &os, const char magic[4])
{
    os.write(magic, 4);
}

void
expectMagic(std::istream &is, const char magic[4])
{
    char buf[4] = {};
    is.read(buf, 4);
    if (!is || std::memcmp(buf, magic, 4) != 0)
        CNV_FATAL("bad magic in tensor stream (expected {})",
                  std::string(magic, 4));
    const std::uint32_t version = readU32(is);
    if (version != kVersion)
        CNV_FATAL("unsupported tensor stream version {}", version);
}

// Bulk element I/O goes through a fixed staging buffer: memcpy in or
// out of the Fixed16 array keeps the stream interface on plain char
// without ever aliasing Fixed16 storage through a char* lvalue.
constexpr std::size_t kStageElems = 4096;

void
writeRaw(std::ostream &os, const Fixed16 *data, std::size_t count)
{
    static_assert(sizeof(Fixed16) == sizeof(std::int16_t));
    std::array<char, kStageElems * sizeof(Fixed16)> stage;
    for (std::size_t done = 0; done < count;) {
        const std::size_t n = std::min(count - done, kStageElems);
        std::memcpy(stage.data(), data + done, n * sizeof(Fixed16));
        os.write(stage.data(),
                 static_cast<std::streamsize>(n * sizeof(Fixed16)));
        done += n;
    }
    if (!os)
        CNV_FATAL("tensor write failed");
}

void
readRaw(std::istream &is, Fixed16 *data, std::size_t count)
{
    std::array<char, kStageElems * sizeof(Fixed16)> stage;
    for (std::size_t done = 0; done < count;) {
        const std::size_t n = std::min(count - done, kStageElems);
        is.read(stage.data(),
                static_cast<std::streamsize>(n * sizeof(Fixed16)));
        if (!is)
            CNV_FATAL("truncated tensor stream");
        std::memcpy(data + done, stage.data(), n * sizeof(Fixed16));
        done += n;
    }
}

} // namespace

void
save(std::ostream &os, const NeuronTensor &t)
{
    writeMagic(os, "CNVT");
    writeU32(os, kVersion);
    writeU32(os, static_cast<std::uint32_t>(t.shape().x));
    writeU32(os, static_cast<std::uint32_t>(t.shape().y));
    writeU32(os, static_cast<std::uint32_t>(t.shape().z));
    writeRaw(os, t.data(), t.size());
}

NeuronTensor
loadTensor(std::istream &is)
{
    expectMagic(is, "CNVT");
    const int x = static_cast<int>(readU32(is));
    const int y = static_cast<int>(readU32(is));
    const int z = static_cast<int>(readU32(is));
    if (x < 0 || y < 0 || z < 0 ||
        static_cast<std::uint64_t>(x) * y * z > (1ULL << 32))
        CNV_FATAL("implausible tensor dimensions {}x{}x{}", x, y, z);
    NeuronTensor t(x, y, z);
    readRaw(is, t.data(), t.size());
    return t;
}

void
save(std::ostream &os, const FilterBank &f)
{
    writeMagic(os, "CNVF");
    writeU32(os, kVersion);
    writeU32(os, static_cast<std::uint32_t>(f.shape().n));
    writeU32(os, static_cast<std::uint32_t>(f.shape().x));
    writeU32(os, static_cast<std::uint32_t>(f.shape().y));
    writeU32(os, static_cast<std::uint32_t>(f.shape().z));
    writeRaw(os, f.data(), f.size());
}

FilterBank
loadFilterBank(std::istream &is)
{
    expectMagic(is, "CNVF");
    const int n = static_cast<int>(readU32(is));
    const int x = static_cast<int>(readU32(is));
    const int y = static_cast<int>(readU32(is));
    const int z = static_cast<int>(readU32(is));
    if (n < 0 || x < 0 || y < 0 || z < 0 ||
        static_cast<std::uint64_t>(n) * x * y * z > (1ULL << 32))
        CNV_FATAL("implausible filter dimensions");
    FilterBank f(n, x, y, z);
    readRaw(is, f.data(), f.size());
    return f;
}

void
saveTensorFile(const std::string &path, const NeuronTensor &t)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        CNV_FATAL("cannot open '{}' for writing", path);
    save(os, t);
}

NeuronTensor
loadTensorFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        CNV_FATAL("cannot open '{}' for reading", path);
    return loadTensor(is);
}

} // namespace cnv::tensor
