#include "power/model.h"

#include "sim/logging.h"

namespace cnv::power {

using dadiannao::EnergyCounters;

AreaBreakdown
areaOf(Arch arch, const PowerParams &p)
{
    AreaBreakdown a;
    a.sb = p.sbArea;
    a.nm = p.nmArea;
    a.logic = p.logicArea;
    a.sram = p.sramArea;
    if (arch == Arch::Cnv) {
        a.nm *= p.nmAreaScaleCnv;
        a.sram *= p.sramAreaScaleCnv;
        a.logic *= p.logicAreaScaleCnv;
    } else if (arch == Arch::Cnv2) {
        a.nm *= p.nmAreaScaleCnv2;
        a.sram *= p.sramAreaScaleCnv2;
        a.logic *= p.logicAreaScaleCnv2;
    }
    return a;
}

PowerBreakdown
powerOf(Arch arch, const EnergyCounters &c, std::uint64_t cycles,
        const PowerParams &p)
{
    CNV_ASSERT(cycles > 0, "power needs a non-empty run");
    // Cnv2 shares CNV's encoded datapath (offset buffers, banked
    // NM); only its NM provisioning and dispatcher scales differ.
    const bool encodedArch = arch != Arch::Baseline;
    const double seconds =
        static_cast<double>(cycles) / (p.clockGhz * 1e9);

    // Dynamic energy per component (joules).
    const double pj = 1e-12;
    const double sbE = static_cast<double>(c.sbReads) * p.sbReadPj * pj;
    const double nmScale = arch == Arch::Cnv ? p.nmAccessScaleCnv
        : arch == Arch::Cnv2               ? p.nmAccessScaleCnv2
                                           : 1.0;
    const double nmE = static_cast<double>(c.nmReads + c.nmWrites) *
                       p.nmAccessPj * nmScale * pj;
    const double nbinScale = encodedArch ? p.nbinScaleCnv : 1.0;
    const double sramE = static_cast<double>(c.nbinReads + c.nbinWrites) *
                         p.nbinAccessPj * nbinScale * pj;
    // Off-chip DRAM energy (c.offchipBytes) is excluded: the paper
    // reports accelerator-chip power (Synopsys DC + Destiny models
    // of the on-chip components only).
    const double logicE =
        (static_cast<double>(c.multOps) * p.multPj +
         static_cast<double>(c.addOps) * p.addPj +
         static_cast<double>(c.encoderOps) * p.encoderPj) * pj;

    PowerBreakdown out;
    out.sbDynamic = sbE / seconds;
    out.nmDynamic = nmE / seconds;
    out.sramDynamic = sramE / seconds;
    out.logicDynamic = logicE / seconds;

    // Static power scales with component area.
    out.sbStatic = p.sbStaticW;
    out.nmStatic = p.nmStaticW;
    out.logicStatic = p.logicStaticW;
    out.sramStatic = p.sramStaticW;
    if (arch == Arch::Cnv) {
        out.nmStatic *= p.nmAreaScaleCnv * p.nmBankingStaticScaleCnv;
        out.sramStatic *= p.sramAreaScaleCnv;
        out.logicStatic *= p.logicAreaScaleCnv;
    } else if (arch == Arch::Cnv2) {
        out.nmStatic *= p.nmAreaScaleCnv2 * p.nmBankingStaticScaleCnv;
        out.sramStatic *= p.sramAreaScaleCnv2;
        out.logicStatic *= p.logicAreaScaleCnv2;
    }
    return out;
}

RunMetrics
metricsOf(Arch arch, const EnergyCounters &c, std::uint64_t cycles,
          const PowerParams &p)
{
    const PowerBreakdown pb = powerOf(arch, c, cycles, p);
    RunMetrics m;
    m.seconds = static_cast<double>(cycles) / (p.clockGhz * 1e9);
    m.watts = pb.total();
    m.joules = m.watts * m.seconds;
    m.edp = m.watts * m.seconds;          // paper's EDP arithmetic
    m.ed2p = m.watts * m.seconds * m.seconds;
    return m;
}

} // namespace cnv::power
