/**
 * @file
 * Area and energy models for the two architectures (Sections V-C
 * and V-D).
 *
 * The paper measured area and power from synthesized Verilog (TSMC
 * 65nm, Synopsys DC), Artisan register-file compilers, and the
 * Destiny eDRAM model. This library substitutes a component-level
 * model: per-component areas and per-event/static energies are
 * constants calibrated once against the paper's published
 * breakdowns (Figures 11 and 12), with all *activity* — SB reads
 * suppressed during stalls, NM accesses, multiplications, encoder
 * work — coming from the simulators' event counters. Relative
 * results (the paper's claims) therefore emerge from simulation;
 * only the absolute scale is calibrated. See DESIGN.md.
 */

#ifndef CNV_POWER_MODEL_H
#define CNV_POWER_MODEL_H

#include "dadiannao/config.h"
#include "dadiannao/metrics.h"

namespace cnv::power {

/** Architecture variant for area/energy scaling. */
enum class Arch { Baseline, Cnv, Cnv2 };

/** Component areas in mm^2 (65nm node). */
struct AreaBreakdown
{
    double sb = 0.0;     ///< 32MB filter storage (eDRAM)
    double nm = 0.0;     ///< central Neuron Memory (eDRAM)
    double logic = 0.0;  ///< datapath, control, dispatcher, encoder
    double sram = 0.0;   ///< NBin/NBout (+ offset buffers in CNV)

    double total() const { return sb + nm + logic + sram; }
};

/** Per-component power in watts, split static/dynamic. */
struct PowerBreakdown
{
    double sbStatic = 0.0, sbDynamic = 0.0;
    double nmStatic = 0.0, nmDynamic = 0.0;
    double logicStatic = 0.0, logicDynamic = 0.0;
    double sramStatic = 0.0, sramDynamic = 0.0;

    double
    staticTotal() const
    {
        return sbStatic + nmStatic + logicStatic + sramStatic;
    }

    double
    dynamicTotal() const
    {
        return sbDynamic + nmDynamic + logicDynamic + sramDynamic;
    }

    double total() const { return staticTotal() + dynamicTotal(); }
};

/** Energy/delay metrics for one run. */
struct RunMetrics
{
    double seconds = 0.0;
    double joules = 0.0;
    double watts = 0.0;
    /**
     * The paper computes "EDP" as average-power x delay (= energy)
     * and "ED^2P" as average-power x delay^2 (= energy x delay); we
     * follow the same arithmetic so ratios are comparable
     * (Figure 13; see EXPERIMENTS.md).
     */
    double edp = 0.0;
    double ed2p = 0.0;
};

/** Calibrated model parameters (defaults reproduce the paper). */
struct PowerParams
{
    // --- Areas (mm^2), baseline node ---
    double sbArea = 44.0;
    double nmArea = 6.0;
    double logicArea = 12.0;
    double sramArea = 5.6;

    // --- CNV area scale factors (Section V-C) ---
    double nmAreaScaleCnv = 1.34;    ///< +25% offsets, 16 banks
    double sramAreaScaleCnv = 1.158; ///< offset buffer space
    double logicAreaScaleCnv = 1.01; ///< dispatcher + encoders

    // --- Cnvlutin2 area scale factors (offset-only ZFNAf +
    // --- weight-skip sequencing; see docs/architectures.md) ---
    /** NM provisioned for offset-only ZFNAf: per-slot 4-bit offsets
     *  with values packed, so less padding capacity than CNV's
     *  (value, offset) slots; banking retained. */
    double nmAreaScaleCnv2 = 1.28;
    double sramAreaScaleCnv2 = 1.158; ///< same offset buffers as CNV
    /** Dispatcher additionally walks the static weight-skip
     *  schedule (per-filter-group brick masks). */
    double logicAreaScaleCnv2 = 1.02;

    // --- Dynamic energies (picojoules per event) ---
    double sbReadPj = 48.0;       ///< 16-synapse (256-bit) eDRAM read
    double nmAccessPj = 60.0;     ///< 16-neuron NM read or write
    double nmAccessScaleCnv = 1.35; ///< wider (offsets) + banked access
    /** Narrower rows than CNV (offset-only encoding packs values),
     *  still banked. */
    double nmAccessScaleCnv2 = 1.30;
    double nbinAccessPj = 1.1;    ///< NBin/NBout entry access
    double nbinScaleCnv = 1.25;   ///< entry carries a 4-bit offset
    double multPj = 0.5;          ///< 16-bit multiply
    double addPj = 0.25;          ///< adder-tree add
    double encoderPj = 0.35;     ///< encoder neuron examination
    double offchipPjPerByte = 20.0; ///< reported, not in chip power

    // --- Static power (watts), baseline node ---
    double sbStaticW = 1.00;
    double nmStaticW = 2.40;
    double logicStaticW = 0.25;
    double sramStaticW = 0.30;
    /** Extra NM leakage from banking (peripheral duplication). */
    double nmBankingStaticScaleCnv = 1.05;

    double clockGhz = 1.0;
};

/** Component area breakdown for an architecture (Figure 11). */
AreaBreakdown areaOf(Arch arch, const PowerParams &p = {});

/**
 * Average power over a run (Figure 12).
 *
 * @param arch Architecture variant.
 * @param counters Event totals from the simulator.
 * @param cycles Run length in cycles.
 */
PowerBreakdown powerOf(Arch arch, const dadiannao::EnergyCounters &counters,
                       std::uint64_t cycles, const PowerParams &p = {});

/** Delay, energy, EDP, ED^2P for a run (Figure 13). */
RunMetrics metricsOf(Arch arch, const dadiannao::EnergyCounters &counters,
                     std::uint64_t cycles, const PowerParams &p = {});

} // namespace cnv::power

#endif // CNV_POWER_MODEL_H
