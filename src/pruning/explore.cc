#include "pruning/explore.h"

#include <algorithm>
#include <cmath>

#include "nn/trace.h"
#include "sim/logging.h"
#include "sim/parallel.h"
#include "timing/network_model.h"

namespace cnv::pruning {

using nn::Network;
using nn::PruneConfig;
using tensor::Fixed16;
using tensor::NeuronTensor;

namespace {

/** Seeded synthetic input image for the accuracy study. */
NeuronTensor
makeInput(const Network &net, std::uint64_t seed)
{
    return nn::synthesizeImage(net.node(0).outShape, seed);
}

/** Unpruned reference prediction for one image. */
struct Reference
{
    int top1 = -1;
    NeuronTensor input; ///< the image, reused by every pruned run
    NeuronTensor logits;
    double norm = 0.0; ///< L2 of the logits
};

std::vector<Reference>
referenceRuns(const Network &net, int images, std::uint64_t seed)
{
    std::vector<Reference> refs(images);
    sim::parallelFor(static_cast<std::size_t>(images), [&](std::size_t i) {
        refs[i].input = makeInput(net, seed + i);
        auto run = net.forward(refs[i].input);
        refs[i].top1 = run.top1;
        double sq = 0.0;
        for (const Fixed16 v : run.logits)
            sq += v.toDouble() * v.toDouble();
        refs[i].norm = std::sqrt(sq);
        refs[i].logits = std::move(run.logits);
    });
    return refs;
}

/**
 * Does the pruned run preserve the reference prediction? Top-1 must
 * match, and the logits must stay within `tolerance` relative L2
 * distortion. The distortion term keeps the proxy sensitive on deep
 * synthetic networks whose untrained argmax is weakly
 * input-dependent (a trained classifier with slightly distorted
 * logits very rarely changes its top-1); see DESIGN.md's accuracy
 * substitution.
 */
bool
predictionPreserved(const Reference &ref, const nn::ForwardResult &run,
                    double tolerance)
{
    if (run.top1 != ref.top1)
        return false;
    if (run.logits.shape() != ref.logits.shape())
        return false;
    double sq = 0.0;
    const Fixed16 *a = run.logits.data();
    const Fixed16 *b = ref.logits.data();
    for (std::size_t i = 0; i < ref.logits.size(); ++i) {
        const double d = a[i].toDouble() - b[i].toDouble();
        sq += d * d;
    }
    return std::sqrt(sq) <= tolerance * std::max(ref.norm, 1e-6);
}

/**
 * Fraction of images whose pruned prediction matches the reference.
 * Each image's forward pass runs on the pool, reusing the input
 * tensor stored with its reference.
 */
double
agreementFraction(const Network &net, const std::vector<Reference> &refs,
                  const PruneConfig &cfg, double tolerance)
{
    nn::ForwardOptions opts;
    opts.prune = &cfg;
    int agree = 0;
    sim::parallelMapReduce(
        refs.size(),
        [&](std::size_t i) {
            return predictionPreserved(refs[i],
                                       net.forward(refs[i].input, opts),
                                       tolerance);
        },
        [&](std::size_t, bool preserved) {
            if (preserved)
                ++agree;
        });
    return static_cast<double>(agree) / static_cast<double>(refs.size());
}

} // namespace

double
relativeAccuracy(const Network &net, const PruneConfig &cfg, int images,
                 std::uint64_t seed)
{
    CNV_ASSERT(images > 0, "need at least one accuracy image");
    const std::vector<Reference> refs = referenceRuns(net, images, seed);
    return agreementFraction(net, refs, cfg, 0.05);
}

std::vector<std::vector<int>>
thresholdGroups(const Network &net)
{
    std::vector<std::vector<int>> groups;
    std::vector<std::string> keys;
    for (int i = 0; i < net.convLayerCount(); ++i) {
        const std::string &name = net.node(net.convNodeIds()[i]).name;
        const std::string key = name.substr(0, name.find('/'));
        if (keys.empty() || keys.back() != key) {
            keys.push_back(key);
            groups.emplace_back();
        }
        groups.back().push_back(i);
    }
    return groups;
}

ExplorationPoint
searchLossless(const dadiannao::NodeConfig &cfg, const Network &fullNet,
               const Network &accNet, const SearchOptions &opts)
{
    CNV_ASSERT(fullNet.convLayerCount() == accNet.convLayerCount(),
               "accuracy network must mirror the full network's conv count");
    CNV_ASSERT(!opts.levels.empty(), "threshold ladder is empty");

    const int convs = fullNet.convLayerCount();
    const std::vector<Reference> refs =
        referenceRuns(accNet, opts.accuracyImages, opts.seed);

    std::vector<std::vector<int>> groups = opts.layerGroups;
    if (groups.empty())
        groups = thresholdGroups(fullNet);

    PruneConfig current;
    current.thresholds.assign(convs, opts.levels.front());

    auto accuracyOf = [&](const PruneConfig &candidate) {
        return agreementFraction(accNet, refs, candidate,
                                 opts.distortionTolerance);
    };

    // Greedy coordinate ascent: deeper layers tolerate larger
    // thresholds, so walk the ladder per group while the joint
    // configuration stays above the accuracy floor.
    for (const std::vector<int> &group : groups) {
        std::size_t level = 0;
        while (level + 1 < opts.levels.size()) {
            PruneConfig candidate = current;
            for (int layer : group)
                candidate.thresholds[layer] = opts.levels[level + 1];
            if (accuracyOf(candidate) + 1e-12 < opts.accuracyFloor)
                break;
            current = candidate;
            ++level;
        }
    }

    ExplorationPoint point;
    point.config = current;
    point.relativeAccuracy = accuracyOf(current);
    point.speedup = timing::speedup(cfg, fullNet, opts.timingImages,
                                    opts.seed, &current);
    return point;
}

std::vector<ExplorationPoint>
tradeoffSweep(const dadiannao::NodeConfig &cfg, const Network &fullNet,
              const Network &accNet, const SearchOptions &opts)
{
    const int convs = fullNet.convLayerCount();
    std::vector<PruneConfig> candidates;

    // Zero-skipping only (the leftmost point of Figure 14).
    candidates.emplace_back();

    // Uniform thresholds up the ladder.
    for (std::int32_t level : opts.levels) {
        if (level <= 0)
            continue;
        PruneConfig c;
        c.thresholds.assign(convs, level);
        candidates.push_back(std::move(c));
    }

    // Depth-ramped thresholds (deeper layers pruned harder), at
    // several intensities.
    for (double intensity : {0.5, 1.0, 2.0, 4.0}) {
        PruneConfig c;
        c.thresholds.resize(convs);
        for (int i = 0; i < convs; ++i) {
            const double frac = convs > 1
                ? static_cast<double>(i) / (convs - 1) : 0.0;
            const double raw = intensity * (2.0 + 30.0 * frac);
            // Round down to the nearest power of two (the hardware
            // exploration used power-of-two thresholds).
            std::int32_t pow2 = 1;
            while (pow2 * 2 <= raw)
                pow2 *= 2;
            c.thresholds[i] = raw < 1.0 ? 0 : pow2;
        }
        candidates.push_back(std::move(c));
    }

    std::vector<ExplorationPoint> points;
    points.reserve(candidates.size());
    for (PruneConfig &c : candidates) {
        ExplorationPoint pt;
        pt.relativeAccuracy =
            relativeAccuracy(accNet, c, opts.accuracyImages, opts.seed);
        pt.speedup = timing::speedup(cfg, fullNet, opts.timingImages,
                                     opts.seed, &c);
        pt.config = std::move(c);
        points.push_back(std::move(pt));
    }
    std::sort(points.begin(), points.end(),
              [](const ExplorationPoint &a, const ExplorationPoint &b) {
                  return a.speedup < b.speedup;
              });
    return points;
}

std::vector<ExplorationPoint>
paretoFrontier(std::vector<ExplorationPoint> points)
{
    std::sort(points.begin(), points.end(),
              [](const ExplorationPoint &a, const ExplorationPoint &b) {
                  return a.speedup < b.speedup;
              });
    // Scan from the fastest point down: keep points whose accuracy
    // exceeds every faster point's accuracy.
    std::vector<ExplorationPoint> frontier;
    double best = -1.0;
    for (auto it = points.rbegin(); it != points.rend(); ++it) {
        if (it->relativeAccuracy > best) {
            best = it->relativeAccuracy;
            frontier.push_back(*it);
        }
    }
    std::reverse(frontier.begin(), frontier.end());
    return frontier;
}

} // namespace cnv::pruning
