/**
 * @file
 * Dynamic-pruning threshold exploration (Section V-E).
 *
 * CNV can prune "near zero" neurons by zeroing values below a
 * per-layer threshold at the encoder (the max-pooling comparators
 * are reused for the comparison). This module searches power-of-two
 * per-layer thresholds for the largest speedup at no accuracy loss
 * (Table II) and sweeps the accuracy/speedup trade-off (Figure 14).
 *
 * Accuracy substitution (see DESIGN.md): with no trained ImageNet
 * weights, "relative accuracy" is the fraction of synthetic inputs
 * whose top-1 class under pruning matches the unpruned network's
 * top-1, measured on a structure-identical reduced-scale variant of
 * the network (the full-scale geometry is still used for speedup).
 */

#ifndef CNV_PRUNING_EXPLORE_H
#define CNV_PRUNING_EXPLORE_H

#include <cstdint>
#include <vector>

#include "dadiannao/config.h"
#include "nn/network.h"

namespace cnv::pruning {

/** One evaluated threshold configuration. */
struct ExplorationPoint
{
    nn::PruneConfig config;
    double speedup = 1.0;           ///< CNV+pruning vs baseline
    double relativeAccuracy = 1.0;  ///< top-1 agreement with unpruned
};

/** Search options. */
struct SearchOptions
{
    /** Power-of-two threshold ladder (raw fixed-point units). */
    // cnvlint: allow(magic-16) — Table II threshold data, not geometry
    std::vector<std::int32_t> levels = {0, 2, 4, 8, 16, 32, 64, 128, 256};
    /** Images for accuracy evaluation. */
    int accuracyImages = 12;
    /** Images for speedup evaluation (full geometry traces). */
    int timingImages = 1;
    /** Accuracy floor; 1.0 = lossless (no top-1 changes). */
    double accuracyFloor = 1.0;
    /**
     * Relative logit-distortion a run may show and still count as
     * "prediction preserved" (DESIGN.md §2). Lossless searches keep
     * the tight default; budgeted searches (accuracyFloor < 1)
     * should widen it in proportion to the allowed loss.
     */
    double distortionTolerance = 0.05;
    /** Seed for evaluation inputs. */
    std::uint64_t seed = 99;
    /**
     * Conv layers sharing one threshold during the search. Empty =
     * one group per conv layer. The paper specifies google's
     * thresholds per inception module (Section V-E).
     */
    std::vector<std::vector<int>> layerGroups;
};

/**
 * Default threshold groups: conv layers grouped by the name prefix
 * before '/' (one group per inception module / auxiliary head for
 * google, one group per layer elsewhere).
 */
std::vector<std::vector<int>> thresholdGroups(const nn::Network &net);

/**
 * Relative accuracy of a pruning configuration: top-1 agreement
 * between the pruned and unpruned functional network over seeded
 * inputs. The network must be calibrated.
 */
double relativeAccuracy(const nn::Network &net, const nn::PruneConfig &cfg,
                        int images, std::uint64_t seed);

/**
 * Greedy per-layer threshold search (the paper's gradient-descent
 * style exploration): for each conv layer in turn, raise its
 * threshold up the ladder while joint accuracy stays at or above
 * the floor. Raising a threshold only ever increases speedup, so
 * the accuracy floor is the binding constraint.
 *
 * @param cfg Node configuration for the timing evaluation.
 * @param fullNet Full-scale network (timing geometry).
 * @param accNet Reduced-scale calibrated variant (accuracy); must
 *        have the same conv layer count as fullNet.
 */
ExplorationPoint searchLossless(const dadiannao::NodeConfig &cfg,
                                const nn::Network &fullNet,
                                const nn::Network &accNet,
                                const SearchOptions &opts);

/**
 * Accuracy/speedup sweep for Figure 14: evaluates uniform threshold
 * configurations plus scaled variants of the lossless configuration
 * and returns all points sorted by speedup.
 */
std::vector<ExplorationPoint> tradeoffSweep(const dadiannao::NodeConfig &cfg,
                                            const nn::Network &fullNet,
                                            const nn::Network &accNet,
                                            const SearchOptions &opts);

/** Pareto frontier (max accuracy for any speedup) of a point set. */
std::vector<ExplorationPoint>
paretoFrontier(std::vector<ExplorationPoint> points);

} // namespace cnv::pruning

#endif // CNV_PRUNING_EXPLORE_H
