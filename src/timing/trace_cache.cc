#include "timing/trace_cache.h"

#include <utility>

#include "nn/trace.h"
#include "sim/logging.h"
#include "sim/metrics.h"
#include "zfnaf/format.h"

namespace cnv::timing {

namespace {

std::string
tensorKey(const nn::Network &net, int convNodeId, std::uint64_t imageSeed)
{
    return sim::strfmt("{}#{}#{}", net.name(), convNodeId, imageSeed);
}

/** Stable text form of a prune config ("-" when absent/empty). */
std::string
pruneKey(const nn::PruneConfig *prune)
{
    if (!prune || prune->thresholds.empty())
        return "-";
    std::string key;
    for (std::int32_t t : prune->thresholds) {
        if (!key.empty())
            key += ',';
        key += std::to_string(t);
    }
    return key;
}

} // namespace

std::shared_ptr<const tensor::NeuronTensor>
TraceCache::convInput(const nn::Network &net, int convNodeId,
                      std::uint64_t imageSeed, const TraceProvider *traces)
{
    std::shared_ptr<Slot<tensor::NeuronTensor>> slot;
    {
        const core::MutexLock lock(mutex_);
        auto &entry = tensors_[tensorKey(net, convNodeId, imageSeed)];
        if (!entry)
            entry = std::make_shared<Slot<tensor::NeuronTensor>>();
        slot = entry;
    }
    const core::MutexLock lock(slot->m);
    if (slot->value) {
        tensorHits_.fetch_add(1, std::memory_order_relaxed);
        sim::metrics().add("traceCache.tensorHits");
        return slot->value;
    }
    tensorMisses_.fetch_add(1, std::memory_order_relaxed);
    sim::metrics().add("traceCache.tensorMisses");
    // The miss path is the synthesis (or trace-load) cost every
    // other lookup of this key amortizes; its latency distribution
    // feeds hostProfile.traceCache.synthesis.
    const std::uint64_t t0 = sim::metrics().nowIfEnabled();
    std::optional<tensor::NeuronTensor> external;
    if (traces)
        external = traces->convInput(net, convNodeId, imageSeed);
    slot->value = std::make_shared<const tensor::NeuronTensor>(
        external ? std::move(*external)
                 : nn::synthesizeConvInput(net, convNodeId, imageSeed,
                                           nullptr));
    if (t0 != 0)
        sim::metrics().recordNanos(
            "traceCache.synthesis",
            sim::MetricsRegistry::nowNanos() - t0);
    return slot->value;
}

std::shared_ptr<const CountMap>
TraceCache::countMap(const nn::Network &net, int convNodeId,
                     std::uint64_t imageSeed, const TraceProvider *traces,
                     const nn::PruneConfig *prune, int brickSize)
{
    std::shared_ptr<Slot<CountMap>> slot;
    {
        const core::MutexLock lock(mutex_);
        auto &entry = counts_[sim::strfmt(
            "{}#{}#{}", tensorKey(net, convNodeId, imageSeed),
            pruneKey(prune), brickSize)];
        if (!entry)
            entry = std::make_shared<Slot<CountMap>>();
        slot = entry;
    }
    const core::MutexLock lock(slot->m);
    if (slot->value) {
        countHits_.fetch_add(1, std::memory_order_relaxed);
        sim::metrics().add("traceCache.countMapHits");
        return slot->value;
    }
    countMisses_.fetch_add(1, std::memory_order_relaxed);
    sim::metrics().add("traceCache.countMapMisses");
    const std::shared_ptr<const tensor::NeuronTensor> unpruned =
        convInput(net, convNodeId, imageSeed, traces);
    // Timed after the nested tensor lookup so the encode histogram
    // (hostProfile.traceCache.encode) measures only the prune +
    // non-zero-count work, not a first-touch synthesis underneath.
    const std::uint64_t t0 = sim::metrics().nowIfEnabled();
    if (prune) {
        // Segmented counting folds the per-producer thresholds into
        // the count predicate — same counts as prune-then-count,
        // without copying the tensor.
        std::vector<zfnaf::DepthThreshold> segments;
        for (const nn::TraceSegment &seg :
             nn::inputSegments(net, convNodeId)) {
            const std::int32_t threshold = seg.producerConvIndex >= 0
                ? prune->forConvIndex(
                      static_cast<std::size_t>(seg.producerConvIndex))
                : 0;
            segments.push_back({seg.depth, threshold});
        }
        slot->value = std::make_shared<const CountMap>(
            zfnaf::nonZeroCountMap(*unpruned, brickSize, segments));
    } else {
        slot->value = std::make_shared<const CountMap>(
            zfnaf::nonZeroCountMap(*unpruned, brickSize));
    }
    if (t0 != 0)
        sim::metrics().recordNanos("traceCache.encode",
                                   sim::MetricsRegistry::nowNanos() - t0);
    return slot->value;
}

TraceCache::Stats
TraceCache::stats() const
{
    Stats s;
    s.tensorHits = tensorHits_.load(std::memory_order_relaxed);
    s.tensorMisses = tensorMisses_.load(std::memory_order_relaxed);
    s.countMapHits = countHits_.load(std::memory_order_relaxed);
    s.countMapMisses = countMisses_.load(std::memory_order_relaxed);
    return s;
}

} // namespace cnv::timing
