/**
 * @file
 * Multi-node scaling model (Section IV-A: "Multiple nodes can be
 * used to process larger DNNs that do not fit in the NM and SBs
 * available in a single node").
 *
 * Convolutional layers scale by *spatial tiling*: each node holds
 * the full filter set (the SB already fits a layer's synapses) and
 * computes a horizontal stripe of every layer's output, so compute
 * scales with ceil(rows/n)/rows and only the stripe boundaries'
 * halo rows ((fy - 1) input rows per boundary) are exchanged over
 * the inter-node links. Fully-connected layers partition their
 * outputs and all-gather the (small) input vector. Exchanges
 * overlap preceding compute; only the exposed remainder stalls.
 * CNV exchanges encoded (value, offset) pairs, 25% wider per
 * neuron.
 */

#ifndef CNV_TIMING_MULTINODE_H
#define CNV_TIMING_MULTINODE_H

#include "timing/network_model.h"

namespace cnv::timing {

/** Inter-node system parameters. */
struct MultiNodeOptions
{
    /** Nodes in the system (1 = the paper's single-node study). */
    int nodes = 1;
    /**
     * Inter-node broadcast bandwidth in 16-neuron blocks per cycle
     * (all links combined, HyperTransport-class; well below the
     * 1 block/cycle the on-chip NM sustains).
     */
    double broadcastBlocksPerCycle = 0.25;
};

/**
 * Simulate one image on an n-node system. With nodes = 1 this is
 * exactly simulateNetwork().
 */
dadiannao::NetworkResult
simulateMultiNode(const dadiannao::NodeConfig &nodeCfg,
                  const MultiNodeOptions &mn, const nn::Network &net,
                  Arch arch, const RunOptions &opts);

/** Speedup of an n-node system over a single node (same arch). */
double multiNodeScaling(const dadiannao::NodeConfig &nodeCfg,
                        const MultiNodeOptions &mn, const nn::Network &net,
                        Arch arch, std::uint64_t seed);

} // namespace cnv::timing

#endif // CNV_TIMING_MULTINODE_H
