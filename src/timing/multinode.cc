#include "timing/multinode.h"

#include <algorithm>

#include "dadiannao/other_layers.h"
#include "sim/logging.h"

namespace cnv::timing {

using dadiannao::NetworkResult;
using dadiannao::NodeConfig;

NetworkResult
simulateMultiNode(const NodeConfig &nodeCfg, const MultiNodeOptions &mn,
                  const nn::Network &net, Arch arch,
                  const RunOptions &opts)
{
    if (mn.nodes < 1)
        CNV_FATAL("need at least one node, got {}", mn.nodes);
    if (mn.broadcastBlocksPerCycle <= 0.0)
        CNV_FATAL("inter-node bandwidth must be positive");

    NetworkResult result = simulateNetwork(nodeCfg, net, arch, opts);
    result.architecture =
        sim::strfmt("{} x{}", archName(arch), mn.nodes);
    if (mn.nodes == 1)
        return result;

    // Spatial tiling: every node holds all synapses (the SB already
    // fits a layer's filters) and computes a horizontal stripe of
    // each layer's output, so compute scales with ceil(rows/n)/rows.
    // Between layers a node needs only the halo rows of its stripe
    // from its neighbours — (fy - 1) input rows per boundary — and
    // fully-connected layers all-gather their (small) input vector.
    // Exchanges overlap preceding compute; the exposed remainder
    // stalls. CNV exchanges (value, offset) pairs, 25% wider.
    const double widthScale = arch == Arch::Cnv ? 1.25 : 1.0;
    const int n = mn.nodes;
    dadiannao::OverlapTracker overlap;
    const std::uint64_t nodeLanes =
        static_cast<std::uint64_t>(nodeCfg.nodeLanes());

    auto exchangeCyclesFor = [&](std::uint64_t neurons) {
        return static_cast<std::uint64_t>(
            static_cast<double>(neurons) * widthScale /
            (16.0 * mn.broadcastBlocksPerCycle));
    };

    std::vector<dadiannao::LayerResult> adjusted;
    adjusted.reserve(result.layers.size() * 2);

    for (dadiannao::LayerResult layer : result.layers) {
        const bool isLoad =
            layer.name.find(":synapse-load") != std::string::npos;
        const nn::Node *node = nullptr;
        if (!isLoad) {
            for (const nn::Node &candidate : net.nodes()) {
                if (candidate.name == layer.name &&
                    candidate.kind != nn::NodeKind::Input) {
                    node = &candidate;
                    break;
                }
            }
        }

        std::uint64_t exchange = 0;
        if (node) {
            switch (node->kind) {
              case nn::NodeKind::Conv: {
                // Stripe the output rows; scale compute accordingly.
                const int rows = node->outShape.y;
                const int perNode = (rows + n - 1) / n;
                layer.cycles = layer.cycles *
                                   static_cast<std::uint64_t>(perNode) /
                                   static_cast<std::uint64_t>(rows) +
                               1;
                const std::uint64_t haloRows = std::min(
                    node->inShape.y,
                    (node->conv.fy - 1) * std::min(n - 1, rows));
                exchange = exchangeCyclesFor(
                    haloRows * static_cast<std::uint64_t>(
                                   node->inShape.x) *
                    node->inShape.z);
                break;
              }
              case nn::NodeKind::Pool:
              case nn::NodeKind::Lrn:
              case nn::NodeKind::Softmax:
              case nn::NodeKind::Concat: {
                const int rows = std::max(1, node->outShape.y);
                const int perNode = (rows + n - 1) / n;
                layer.cycles = layer.cycles *
                                   static_cast<std::uint64_t>(perNode) /
                                   static_cast<std::uint64_t>(rows) +
                               (layer.cycles ? 1 : 0);
                break;
              }
              case nn::NodeKind::Fc:
                // Outputs partition across nodes; the input vector
                // is all-gathered first.
                layer.cycles = layer.cycles / n + 1;
                exchange = exchangeCyclesFor(node->inShape.volume());
                break;
              default:
                break;
            }
        }

        if (exchange > 0) {
            const std::uint64_t exposed = overlap.expose(exchange);
            if (exposed > 0) {
                dadiannao::LayerResult stall;
                stall.name = layer.name + ":halo-exchange";
                stall.cycles = exposed;
                stall.activity.other = exposed * nodeLanes;
                adjusted.push_back(std::move(stall));
            }
        }
        overlap.deposit(layer.cycles);
        adjusted.push_back(std::move(layer));
    }
    result.layers = std::move(adjusted);
    return result;
}

double
multiNodeScaling(const NodeConfig &nodeCfg, const MultiNodeOptions &mn,
                 const nn::Network &net, Arch arch, std::uint64_t seed)
{
    RunOptions opts;
    opts.imageSeed = seed;
    MultiNodeOptions one = mn;
    one.nodes = 1;
    const auto single =
        simulateMultiNode(nodeCfg, one, net, arch, opts).totalCycles();
    const auto multi =
        simulateMultiNode(nodeCfg, mn, net, arch, opts).totalCycles();
    return static_cast<double>(single) / static_cast<double>(multi);
}

} // namespace cnv::timing
