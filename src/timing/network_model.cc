#include "timing/network_model.h"

#include <algorithm>
#include <fstream>
#include <memory>
#include <utility>

#include "dadiannao/other_layers.h"
#include "nn/trace.h"
#include "sim/logging.h"
#include "sim/parallel.h"
#include "tensor/serialize.h"
#include "timing/conv_model.h"
#include "timing/trace_cache.h"
#include "zfnaf/format.h"

namespace cnv::timing {

using dadiannao::LayerResult;
using dadiannao::NetworkResult;
using dadiannao::NodeConfig;
using dadiannao::OverlapTracker;

const char *
archName(Arch a)
{
    switch (a) {
      case Arch::Baseline: return "dadiannao";
      case Arch::Cnv: return "cnv";
      case Arch::Cnv2: return "cnv2";
    }
    CNV_FATAL("unknown timing::Arch value {}", static_cast<int>(a));
}

std::string
DirectoryTraceProvider::pathFor(const nn::Network &net, int convNodeId,
                                std::uint64_t imageSeed) const
{
    return sim::strfmt("{}/{}_conv{}_img{}.cnvt", dir_, net.name(),
                       net.node(convNodeId).convIndex, imageSeed);
}

std::optional<tensor::NeuronTensor>
DirectoryTraceProvider::convInput(const nn::Network &net, int convNodeId,
                                  std::uint64_t imageSeed) const
{
    const std::string path = pathFor(net, convNodeId, imageSeed);
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return std::nullopt;
    tensor::NeuronTensor t = tensor::loadTensor(is);
    if (t.shape() != net.node(convNodeId).inShape) {
        CNV_FATAL("trace '{}' has shape {}x{}x{}, layer expects {}x{}x{}",
                  path, t.shape().x, t.shape().y, t.shape().z,
                  net.node(convNodeId).inShape.x,
                  net.node(convNodeId).inShape.y,
                  net.node(convNodeId).inShape.z);
    }
    return t;
}

namespace {

/**
 * Zero fraction of a fully-connected layer's input: the calibrated
 * post-activation target of the nearest upstream conv (through
 * pool/LRN/concat/FC-ReLU chains), or 0 when fed by raw data.
 */
double
fcInputZeroFraction(const nn::Network &net, int nodeId)
{
    int id = net.node(nodeId).inputs.empty()
        ? -1 : net.node(nodeId).inputs[0];
    while (id >= 0) {
        const nn::Node &n = net.node(id);
        if (n.kind == nn::NodeKind::Conv)
            return n.outputZeroTarget;
        if (n.kind == nn::NodeKind::Fc)
            return n.outputZeroTarget > 0 ? n.outputZeroTarget : 0.5;
        if (n.inputs.empty())
            return 0.0;
        id = n.inputs[0];
    }
    return 0.0;
}

/** Copy a drained mem::Counters delta into the result-record POD. */
dadiannao::MemTrace
toMemTrace(const mem::Counters &c)
{
    dadiannao::MemTrace m;
    m.nmAccesses = c.nmAccesses;
    m.nmConflictCycles = c.nmConflictCycles;
    m.gbHits = c.gbHits;
    m.gbMisses = c.gbMisses;
    m.gbEvictions = c.gbEvictions;
    m.dramBytes = c.dramBytes;
    m.dramCycles = c.dramCycles;
    return m;
}

/**
 * Extension: CNV-style zero skipping applied to a fully-connected
 * layer. Both the datapath work and the off-chip synapse stream
 * shrink by the input's non-zero fraction (a zero activation's
 * synapse column is never fetched).
 */
dadiannao::LayerResult
fcCnvTiming(const dadiannao::NodeConfig &cfg, const nn::Node &node,
            double zeroFraction, dadiannao::OverlapTracker &overlap)
{
    using dadiannao::LayerResult;
    LayerResult r;
    r.name = node.name + "(cnv-fc)";
    const double nzFrac = 1.0 - std::clamp(zeroFraction, 0.0, 1.0);
    const std::uint64_t volume = node.inShape.volume();
    const auto nzVolume = static_cast<std::uint64_t>(
        static_cast<double>(volume) * nzFrac + 0.5);

    const std::uint64_t passes =
        (node.fc.outputs + cfg.parallelFilters() - 1) /
        cfg.parallelFilters();
    const std::uint64_t compute =
        passes * ((nzVolume + cfg.lanes - 1) / cfg.lanes);
    const std::uint64_t bytes = static_cast<std::uint64_t>(
        static_cast<double>(node.synapses() * 2) * nzFrac + 0.5);
    r.energy.offchipBytes += bytes;
    const std::uint64_t load =
        (bytes + cfg.offchipBytesPerCycle - 1) / cfg.offchipBytesPerCycle;
    const std::uint64_t exposed = overlap.expose(load);
    r.cycles = std::max(compute, exposed);
    r.activity.other =
        r.cycles * static_cast<std::uint64_t>(cfg.nodeLanes());
    r.micro.laneBusyCycles =
        std::min(compute, r.cycles) * static_cast<std::uint64_t>(cfg.lanes);
    r.micro.laneIdleCycles =
        (r.cycles - std::min(compute, r.cycles)) *
        static_cast<std::uint64_t>(cfg.lanes);
    r.micro.stalls.synapseWait = r.micro.laneIdleCycles;
    r.energy.sbReads += bytes / 32; // 16-synapse (32-byte) fetches
    r.energy.multOps += static_cast<std::uint64_t>(
        static_cast<double>(node.fc.macs(node.inShape)) * nzFrac);
    r.energy.addOps = r.energy.multOps;
    r.energy.nmReads += nzVolume * passes / cfg.lanes;
    overlap.deposit(r.cycles);
    return r;
}

} // namespace

LayerResult
convLayerTiming(const NodeConfig &cfg, Arch arch, const nn::Node &node,
                const CountMap &counts, double weightSparsity,
                mem::MemoryModel *mem)
{
    const auto encodedTiming = [&](mem::MemoryModel *m) {
        return arch == Arch::Cnv2
            ? convCnv2(cfg, node.conv, node.inShape, counts,
                       node.convIndex, weightSparsity, m)
            : convCnv(cfg, node.conv, node.inShape, counts, m);
    };
    LayerResult conv;
    if (arch == Arch::Baseline || node.convIndex == 0) {
        conv = convBaseline(cfg, node.conv, node.inShape, counts,
                            node.convIndex == 0, mem);
    } else if (cfg.layerModePolicy ==
               dadiannao::LayerModePolicy::Profitable) {
        // Software sets the per-layer encoded/conventional flag;
        // with the profitable policy it picks the cheaper of the
        // two (estimable from the encoder's non-zero counts of the
        // previous layer). Both estimates stay side-effect-free
        // (no memory model); only the winning mode replays its
        // accesses against the real model, so its state advances
        // exactly once per layer.
        LayerResult encoded = encodedTiming(nullptr);
        LayerResult conventional =
            convBaseline(cfg, node.conv, node.inShape, counts, false);
        if (encoded.cycles <= conventional.cycles)
            conv = mem ? encodedTiming(mem) : std::move(encoded);
        else
            conv = mem ? convBaseline(cfg, node.conv, node.inShape,
                                      counts, false, mem)
                       : std::move(conventional);
    } else {
        conv = encodedTiming(mem);
    }
    conv.name = node.name;
    return conv;
}

LayerResult
fcLayerTiming(const NodeConfig &cfg, Arch arch, const nn::Network &net,
              int nodeId, OverlapTracker &overlap)
{
    const nn::Node &n = net.node(nodeId);
    if (arch != Arch::Baseline && cfg.cnvSkipsFcLayers)
        return fcCnvTiming(cfg, n, fcInputZeroFraction(net, nodeId),
                           overlap);
    return dadiannao::otherLayerTiming(cfg, n, overlap);
}

NetworkResult
simulateNetwork(const NodeConfig &cfg, const nn::Network &net, Arch arch,
                const RunOptions &opts)
{
    cfg.validate();

    NetworkResult result;
    result.network = net.name();
    result.architecture = archName(arch);

    // One model instance per simulateNetwork call (per arch x image
    // task): components lock internally, but single-owner use keeps
    // runs deterministic at any --jobs count.
    mem::Geometry memGeo = opts.memGeometry;
    std::unique_ptr<mem::MemoryModel> memModel;
    if (opts.memKind != mem::Kind::Ideal) {
        if (memGeo.banks == 0) {
            memGeo.banks = cfg.nmBanks;
            memGeo.slicedFetch = arch != Arch::Baseline;
            memGeo.nmBytes = cfg.nmBytes;
            memGeo.dramBytesPerCycle = cfg.offchipBytesPerCycle;
        }
        memModel = mem::makeMemoryModel(opts.memKind, memGeo);
        result.memModelled = true;
    }
    // Fold the model's per-layer counter delta into the layer just
    // pushed (also resets the global buffer at the boundary).
    const auto drainInto = [&] {
        if (memModel && !result.layers.empty())
            result.layers.back().mem += toMemTrace(memModel->drainLayer());
    };

    OverlapTracker overlap;

    for (int id = 0; id < net.nodeCount(); ++id) {
        const nn::Node &n = net.node(id);
        switch (n.kind) {
          case nn::NodeKind::Input:
            break;
          case nn::NodeKind::Conv: {
            LayerResult loadStall;
            loadStall.name = n.name + ":synapse-load";
            loadStall.cycles = dadiannao::convSynapseLoadCycles(
                cfg, n, overlap, loadStall.energy);
            loadStall.activity.other =
                loadStall.cycles *
                static_cast<std::uint64_t>(cfg.nodeLanes());
            // Exposed load time: every lane waits on the stream.
            loadStall.micro.laneIdleCycles =
                loadStall.cycles * static_cast<std::uint64_t>(cfg.lanes);
            loadStall.micro.stalls.synapseWait =
                loadStall.micro.laneIdleCycles;
            // Synapse traffic goes through the DRAM channel; its
            // wait time is already modelled by the OverlapTracker,
            // so only the traffic counters are kept. When the load
            // is fully hidden (no layer pushed) the traffic drains
            // into the conv layer below instead.
            if (memModel && loadStall.energy.offchipBytes > 0)
                memModel->dramTransfer(loadStall.energy.offchipBytes);
            if (loadStall.cycles > 0) {
                result.layers.push_back(loadStall);
                drainInto();
            }

            // The baseline's cycle count is content-independent, but
            // its zero/non-zero activity split is not, so both
            // architectures consume the same trace (external when a
            // provider supplies one, synthetic otherwise). Pruning
            // only reaches the encoder (CNV and Cnv2); the baseline
            // always sees unpruned values.
            const nn::PruneConfig *prune =
                arch != Arch::Baseline ? opts.prune : nullptr;
            std::shared_ptr<const CountMap> cached;
            CountMap local;
            if (opts.cache) {
                cached = opts.cache->countMap(net, id, opts.imageSeed,
                                              opts.traces, prune,
                                              cfg.brickSize);
            } else {
                tensor::NeuronTensor in;
                std::optional<tensor::NeuronTensor> external;
                if (opts.traces)
                    external =
                        opts.traces->convInput(net, id, opts.imageSeed);
                if (external) {
                    in = std::move(*external);
                    if (prune)
                        nn::applyPruneToConvInput(net, id, in, *prune);
                } else {
                    in = nn::synthesizeConvInput(net, id, opts.imageSeed,
                                                 prune);
                }
                local = zfnaf::nonZeroCountMap(in, cfg.brickSize);
            }
            const CountMap &counts = cached ? *cached : local;

            LayerResult conv = convLayerTiming(cfg, arch, n, counts,
                                               opts.weightSparsity,
                                               memModel.get());
            overlap.deposit(conv.cycles);
            result.layers.push_back(conv);
            drainInto();

            // Activations past the NM capacity spill off-chip: a
            // whole-node wait on the DRAM channel, reported as its
            // own pseudo-layer like the synapse loads above.
            if (memModel) {
                const std::uint64_t actBytes =
                    (n.inShape.volume() +
                     n.conv.outputShape(n.inShape).volume()) * 2;
                if (actBytes > memGeo.nmBytes) {
                    const std::uint64_t spillBytes =
                        actBytes - memGeo.nmBytes;
                    LayerResult spill;
                    spill.name = n.name + ":dram-spill";
                    spill.cycles = memModel->dramTransfer(spillBytes);
                    spill.energy.offchipBytes += spillBytes;
                    spill.activity.other =
                        spill.cycles *
                        static_cast<std::uint64_t>(cfg.nodeLanes());
                    spill.micro.laneIdleCycles =
                        spill.cycles *
                        static_cast<std::uint64_t>(cfg.lanes);
                    spill.micro.stalls.dramWait =
                        spill.micro.laneIdleCycles;
                    if (spill.cycles > 0) {
                        result.layers.push_back(spill);
                        drainInto();
                    }
                }
            }
            break;
          }
          case nn::NodeKind::Fc:
            result.layers.push_back(
                fcLayerTiming(cfg, arch, net, id, overlap));
            if (memModel) {
                // FC synapse traffic (already overlap-timed).
                const std::uint64_t bytes =
                    result.layers.back().energy.offchipBytes;
                if (bytes > 0)
                    memModel->dramTransfer(bytes);
                drainInto();
            }
            break;
          default:
            result.layers.push_back(
                dadiannao::otherLayerTiming(cfg, n, overlap));
            drainInto();
            break;
        }
    }
    result.stampTimeline();
    return result;
}

double
speedup(const NodeConfig &cfg, const nn::Network &net, int images,
        std::uint64_t seedBase, const nn::PruneConfig *prune)
{
    CNV_ASSERT(images > 0, "need at least one image");
    // One cache for the batch: baseline and CNV share each image's
    // synthesized tensor instead of generating it twice.
    TraceCache cache;
    std::uint64_t base = 0, cnvCycles = 0;
    sim::parallelMapReduce(
        static_cast<std::size_t>(images),
        [&](std::size_t i) {
            RunOptions opts;
            opts.imageSeed = seedBase + static_cast<std::uint64_t>(i);
            opts.prune = prune;
            opts.cache = &cache;
            return std::pair<std::uint64_t, std::uint64_t>(
                simulateNetwork(cfg, net, Arch::Baseline, opts)
                    .totalCycles(),
                simulateNetwork(cfg, net, Arch::Cnv, opts).totalCycles());
        },
        [&](std::size_t, std::pair<std::uint64_t, std::uint64_t> &&r) {
            base += r.first;
            cnvCycles += r.second;
        });
    return static_cast<double>(base) / static_cast<double>(cnvCycles);
}

} // namespace cnv::timing
