#include "timing/network_model.h"

#include <algorithm>
#include <fstream>
#include <memory>
#include <utility>

#include "dadiannao/other_layers.h"
#include "nn/trace.h"
#include "sim/logging.h"
#include "sim/parallel.h"
#include "tensor/serialize.h"
#include "timing/conv_model.h"
#include "timing/trace_cache.h"
#include "zfnaf/format.h"

namespace cnv::timing {

using dadiannao::LayerResult;
using dadiannao::NetworkResult;
using dadiannao::NodeConfig;
using dadiannao::OverlapTracker;

const char *
archName(Arch a)
{
    switch (a) {
      case Arch::Baseline: return "dadiannao";
      case Arch::Cnv: return "cnv";
      case Arch::Cnv2: return "cnv2";
    }
    CNV_FATAL("unknown timing::Arch value {}", static_cast<int>(a));
}

std::string
DirectoryTraceProvider::pathFor(const nn::Network &net, int convNodeId,
                                std::uint64_t imageSeed) const
{
    return sim::strfmt("{}/{}_conv{}_img{}.cnvt", dir_, net.name(),
                       net.node(convNodeId).convIndex, imageSeed);
}

std::optional<tensor::NeuronTensor>
DirectoryTraceProvider::convInput(const nn::Network &net, int convNodeId,
                                  std::uint64_t imageSeed) const
{
    const std::string path = pathFor(net, convNodeId, imageSeed);
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return std::nullopt;
    tensor::NeuronTensor t = tensor::loadTensor(is);
    if (t.shape() != net.node(convNodeId).inShape) {
        CNV_FATAL("trace '{}' has shape {}x{}x{}, layer expects {}x{}x{}",
                  path, t.shape().x, t.shape().y, t.shape().z,
                  net.node(convNodeId).inShape.x,
                  net.node(convNodeId).inShape.y,
                  net.node(convNodeId).inShape.z);
    }
    return t;
}

namespace {

/**
 * Zero fraction of a fully-connected layer's input: the calibrated
 * post-activation target of the nearest upstream conv (through
 * pool/LRN/concat/FC-ReLU chains), or 0 when fed by raw data.
 */
double
fcInputZeroFraction(const nn::Network &net, int nodeId)
{
    int id = net.node(nodeId).inputs.empty()
        ? -1 : net.node(nodeId).inputs[0];
    while (id >= 0) {
        const nn::Node &n = net.node(id);
        if (n.kind == nn::NodeKind::Conv)
            return n.outputZeroTarget;
        if (n.kind == nn::NodeKind::Fc)
            return n.outputZeroTarget > 0 ? n.outputZeroTarget : 0.5;
        if (n.inputs.empty())
            return 0.0;
        id = n.inputs[0];
    }
    return 0.0;
}

/**
 * Extension: CNV-style zero skipping applied to a fully-connected
 * layer. Both the datapath work and the off-chip synapse stream
 * shrink by the input's non-zero fraction (a zero activation's
 * synapse column is never fetched).
 */
dadiannao::LayerResult
fcCnvTiming(const dadiannao::NodeConfig &cfg, const nn::Node &node,
            double zeroFraction, dadiannao::OverlapTracker &overlap)
{
    using dadiannao::LayerResult;
    LayerResult r;
    r.name = node.name + "(cnv-fc)";
    const double nzFrac = 1.0 - std::clamp(zeroFraction, 0.0, 1.0);
    const std::uint64_t volume = node.inShape.volume();
    const auto nzVolume = static_cast<std::uint64_t>(
        static_cast<double>(volume) * nzFrac + 0.5);

    const std::uint64_t passes =
        (node.fc.outputs + cfg.parallelFilters() - 1) /
        cfg.parallelFilters();
    const std::uint64_t compute =
        passes * ((nzVolume + cfg.lanes - 1) / cfg.lanes);
    const std::uint64_t bytes = static_cast<std::uint64_t>(
        static_cast<double>(node.synapses() * 2) * nzFrac + 0.5);
    r.energy.offchipBytes += bytes;
    const std::uint64_t load =
        (bytes + cfg.offchipBytesPerCycle - 1) / cfg.offchipBytesPerCycle;
    const std::uint64_t exposed = overlap.expose(load);
    r.cycles = std::max(compute, exposed);
    r.activity.other =
        r.cycles * static_cast<std::uint64_t>(cfg.nodeLanes());
    r.micro.laneBusyCycles =
        std::min(compute, r.cycles) * static_cast<std::uint64_t>(cfg.lanes);
    r.micro.laneIdleCycles =
        (r.cycles - std::min(compute, r.cycles)) *
        static_cast<std::uint64_t>(cfg.lanes);
    r.micro.stalls.synapseWait = r.micro.laneIdleCycles;
    r.energy.sbReads += bytes / 32; // 16-synapse (32-byte) fetches
    r.energy.multOps += static_cast<std::uint64_t>(
        static_cast<double>(node.fc.macs(node.inShape)) * nzFrac);
    r.energy.addOps = r.energy.multOps;
    r.energy.nmReads += nzVolume * passes / cfg.lanes;
    overlap.deposit(r.cycles);
    return r;
}

} // namespace

LayerResult
convLayerTiming(const NodeConfig &cfg, Arch arch, const nn::Node &node,
                const CountMap &counts, double weightSparsity)
{
    const auto encodedTiming = [&]() {
        return arch == Arch::Cnv2
            ? convCnv2(cfg, node.conv, node.inShape, counts,
                       node.convIndex, weightSparsity)
            : convCnv(cfg, node.conv, node.inShape, counts);
    };
    LayerResult conv;
    if (arch == Arch::Baseline || node.convIndex == 0) {
        conv = convBaseline(cfg, node.conv, node.inShape, counts,
                            node.convIndex == 0);
    } else if (cfg.layerModePolicy ==
               dadiannao::LayerModePolicy::Profitable) {
        // Software sets the per-layer encoded/conventional flag;
        // with the profitable policy it picks the cheaper of the
        // two (estimable from the encoder's non-zero counts of the
        // previous layer).
        LayerResult encoded = encodedTiming();
        LayerResult conventional =
            convBaseline(cfg, node.conv, node.inShape, counts, false);
        conv = encoded.cycles <= conventional.cycles
            ? std::move(encoded) : std::move(conventional);
    } else {
        conv = encodedTiming();
    }
    conv.name = node.name;
    return conv;
}

LayerResult
fcLayerTiming(const NodeConfig &cfg, Arch arch, const nn::Network &net,
              int nodeId, OverlapTracker &overlap)
{
    const nn::Node &n = net.node(nodeId);
    if (arch != Arch::Baseline && cfg.cnvSkipsFcLayers)
        return fcCnvTiming(cfg, n, fcInputZeroFraction(net, nodeId),
                           overlap);
    return dadiannao::otherLayerTiming(cfg, n, overlap);
}

NetworkResult
simulateNetwork(const NodeConfig &cfg, const nn::Network &net, Arch arch,
                const RunOptions &opts)
{
    cfg.validate();

    NetworkResult result;
    result.network = net.name();
    result.architecture = archName(arch);

    OverlapTracker overlap;

    for (int id = 0; id < net.nodeCount(); ++id) {
        const nn::Node &n = net.node(id);
        switch (n.kind) {
          case nn::NodeKind::Input:
            break;
          case nn::NodeKind::Conv: {
            LayerResult loadStall;
            loadStall.name = n.name + ":synapse-load";
            loadStall.cycles = dadiannao::convSynapseLoadCycles(
                cfg, n, overlap, loadStall.energy);
            loadStall.activity.other =
                loadStall.cycles *
                static_cast<std::uint64_t>(cfg.nodeLanes());
            // Exposed load time: every lane waits on the stream.
            loadStall.micro.laneIdleCycles =
                loadStall.cycles * static_cast<std::uint64_t>(cfg.lanes);
            loadStall.micro.stalls.synapseWait =
                loadStall.micro.laneIdleCycles;
            if (loadStall.cycles > 0)
                result.layers.push_back(loadStall);

            // The baseline's cycle count is content-independent, but
            // its zero/non-zero activity split is not, so both
            // architectures consume the same trace (external when a
            // provider supplies one, synthetic otherwise). Pruning
            // only reaches the encoder (CNV and Cnv2); the baseline
            // always sees unpruned values.
            const nn::PruneConfig *prune =
                arch != Arch::Baseline ? opts.prune : nullptr;
            std::shared_ptr<const CountMap> cached;
            CountMap local;
            if (opts.cache) {
                cached = opts.cache->countMap(net, id, opts.imageSeed,
                                              opts.traces, prune,
                                              cfg.brickSize);
            } else {
                tensor::NeuronTensor in;
                std::optional<tensor::NeuronTensor> external;
                if (opts.traces)
                    external =
                        opts.traces->convInput(net, id, opts.imageSeed);
                if (external) {
                    in = std::move(*external);
                    if (prune)
                        nn::applyPruneToConvInput(net, id, in, *prune);
                } else {
                    in = nn::synthesizeConvInput(net, id, opts.imageSeed,
                                                 prune);
                }
                local = zfnaf::nonZeroCountMap(in, cfg.brickSize);
            }
            const CountMap &counts = cached ? *cached : local;

            LayerResult conv = convLayerTiming(cfg, arch, n, counts,
                                               opts.weightSparsity);
            overlap.deposit(conv.cycles);
            result.layers.push_back(conv);
            break;
          }
          case nn::NodeKind::Fc:
            result.layers.push_back(
                fcLayerTiming(cfg, arch, net, id, overlap));
            break;
          default:
            result.layers.push_back(
                dadiannao::otherLayerTiming(cfg, n, overlap));
            break;
        }
    }
    result.stampTimeline();
    return result;
}

double
speedup(const NodeConfig &cfg, const nn::Network &net, int images,
        std::uint64_t seedBase, const nn::PruneConfig *prune)
{
    CNV_ASSERT(images > 0, "need at least one image");
    // One cache for the batch: baseline and CNV share each image's
    // synthesized tensor instead of generating it twice.
    TraceCache cache;
    std::uint64_t base = 0, cnvCycles = 0;
    sim::parallelMapReduce(
        static_cast<std::size_t>(images),
        [&](std::size_t i) {
            RunOptions opts;
            opts.imageSeed = seedBase + static_cast<std::uint64_t>(i);
            opts.prune = prune;
            opts.cache = &cache;
            return std::pair<std::uint64_t, std::uint64_t>(
                simulateNetwork(cfg, net, Arch::Baseline, opts)
                    .totalCycles(),
                simulateNetwork(cfg, net, Arch::Cnv, opts).totalCycles());
        },
        [&](std::size_t, std::pair<std::uint64_t, std::uint64_t> &&r) {
            base += r.first;
            cnvCycles += r.second;
        });
    return static_cast<double>(base) / static_cast<double>(cnvCycles);
}

} // namespace cnv::timing
