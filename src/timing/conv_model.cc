#include "timing/conv_model.h"

#include <algorithm>
#include <array>
#include <vector>

#include "core/assignment.h"
#include "sim/logging.h"

namespace cnv::timing {

using dadiannao::LayerResult;
using dadiannao::NodeConfig;
using tensor::Shape3;

namespace {

/**
 * wx[x] = number of (window, filter-cell) pairs along one dimension
 * that read input coordinate x — i.e., how many windows cover x with
 * a valid (non-padding) cell.
 */
std::vector<std::uint32_t>
coverage1d(int inDim, int outDim, int f, int stride, int pad)
{
    std::vector<std::uint32_t> w(static_cast<std::size_t>(inDim), 0);
    for (int o = 0; o < outDim; ++o) {
        for (int k = 0; k < f; ++k) {
            const int x = o * stride - pad + k;
            if (x >= 0 && x < inDim)
                ++w[x];
        }
    }
    return w;
}

} // namespace

LayerResult
convBaseline(const NodeConfig &cfg, const nn::ConvParams &p,
             const Shape3 &inShape, const CountMap &counts, bool isConv1,
             mem::MemoryModel *mem)
{
    const Shape3 outShape = p.outputShape(inShape);
    const int lanes = cfg.lanes;
    const int depthPerGroup = inShape.z / p.groups;
    const int filtersPerGroup = p.filters / p.groups;
    const int parallel = cfg.parallelFilters();

    LayerResult r;
    r.name = "conv";

    const auto wx = coverage1d(inShape.x, outShape.x, p.fx, p.stride, p.pad);
    const auto wy = coverage1d(inShape.y, outShape.y, p.fy, p.stride, p.pad);

    // Valid cells per window, summed over all windows (separable).
    std::uint64_t ax = 0, ay = 0;
    for (auto v : wx)
        ax += v;
    for (auto v : wy)
        ay += v;
    const std::uint64_t validCells = ax * ay;
    const std::uint64_t units = cfg.units;

    // Shallow inputs pack fetch blocks across window rows (see
    // dadiannao/nfu.cc); blocks per window row depend only on ox.
    const bool packedRows = depthPerGroup < lanes && p.groups == 1;
    std::uint64_t packedRowBlocks = 0;
    if (packedRows) {
        for (int ox = 0; ox < outShape.x; ++ox) {
            const int x0 = ox * p.stride - p.pad;
            const int xs = std::max(x0, 0);
            const int xe = std::min(x0 + p.fx, inShape.x);
            if (xe <= xs)
                continue;
            const int s0 = xs * depthPerGroup;
            const int s1 = xe * depthPerGroup;
            packedRowBlocks += static_cast<std::uint64_t>(
                (s1 - 1) / lanes - s0 / lanes + 1);
        }
    }

    for (int g = 0; g < p.groups; ++g) {
        const int brickBase = (g * depthPerGroup) / cfg.brickSize;
        const int bricksPerCell =
            (depthPerGroup + cfg.brickSize - 1) / cfg.brickSize;
        if (p.groups > 1 && (g * depthPerGroup) % cfg.brickSize != 0)
            CNV_FATAL("group depth must be brick aligned");

        // Coverage-weighted non-zero neurons in this group's slice.
        std::uint64_t coveredNz = 0;
        for (int y = 0; y < inShape.y; ++y) {
            for (int x = 0; x < inShape.x; ++x) {
                std::uint64_t nz = 0;
                for (int b = 0; b < bricksPerCell; ++b)
                    nz += counts.at(x, y, brickBase + b);
                coveredNz += nz * wx[x] * wy[y];
            }
        }

        const std::uint64_t groupCycles = packedRows
            ? ay * packedRowBlocks
            : validCells * static_cast<std::uint64_t>(bricksPerCell);
        // Every lane slot of every cycle is an event; slots not
        // holding a covered non-zero neuron (depth tail padding or,
        // for packed rows, neighbouring-column data) count as zero.
        const std::uint64_t coveredSlots = groupCycles * lanes;
        const std::uint64_t coveredZero = coveredSlots - coveredNz;

        const int passes = (filtersPerGroup + parallel - 1) / parallel;
        for (int pass = 0; pass < passes; ++pass) {
            const int fCount =
                std::min(parallel, filtersPerGroup - pass * parallel);
            const int activeUnits =
                (fCount + cfg.filtersPerUnit - 1) / cfg.filtersPerUnit;
            const std::uint64_t passCycles = groupCycles;

            // One unit-wide NM row per cycle behind a single fetch
            // pointer: a strictly sequential stream that can never
            // conflict with itself, whatever the banking.
            if (mem)
                mem->fetchSequential(passCycles);
            r.cycles += passCycles;
            if (isConv1) {
                r.activity.conv1 += coveredSlots * units;
            } else {
                r.activity.zero += coveredZero * units;
                r.activity.nonZero += coveredNz * units;
            }
            r.energy.nmReads += passCycles;
            r.energy.nbinWrites += passCycles * lanes * units;
            r.energy.nbinReads += passCycles * lanes * units;
            r.energy.sbReads += passCycles * lanes * activeUnits;
            r.energy.multOps += passCycles * lanes * fCount;
            r.energy.addOps += passCycles * lanes * fCount;
        }
    }

    const std::uint64_t windows =
        static_cast<std::uint64_t>(outShape.x) * outShape.y;
    r.energy.nmWrites += windows * ((p.filters + lanes - 1) / lanes);
    // Lock-step broadcast keeps every lane occupied every cycle.
    r.micro.laneBusyCycles = r.cycles * static_cast<std::uint64_t>(lanes);
    return r;
}

LayerResult
convCnv(const NodeConfig &cfg, const nn::ConvParams &p,
        const Shape3 &inShape, const CountMap &counts,
        mem::MemoryModel *mem)
{
    const Shape3 outShape = p.outputShape(inShape);
    const int lanes = cfg.lanes;
    CNV_ASSERT(lanes == cfg.brickSize, "CNV needs one lane per brick slot");
    const int depthPerGroup = inShape.z / p.groups;
    const int filtersPerGroup = p.filters / p.groups;
    const int parallel = cfg.parallelFilters();
    const std::uint64_t units = cfg.units;

    LayerResult r;
    r.name = "conv(cnv)";

    for (int g = 0; g < p.groups; ++g) {
        if (p.groups > 1 && (g * depthPerGroup) % cfg.brickSize != 0)
            CNV_FATAL("group depth must be brick aligned");
        const int brickBase = (g * depthPerGroup) / cfg.brickSize;
        const int bricksPerCell =
            (depthPerGroup + cfg.brickSize - 1) / cfg.brickSize;

        // Per-column, per-brick lane costs and non-zero totals.
        const std::size_t cols =
            static_cast<std::size_t>(inShape.x) * inShape.y;
        std::vector<std::uint8_t> brickCost(
            cols * static_cast<std::size_t>(bricksPerCell), 0);
        std::vector<std::uint32_t> nzCol(cols, 0);
        for (int y = 0; y < inShape.y; ++y) {
            for (int x = 0; x < inShape.x; ++x) {
                const std::size_t c =
                    static_cast<std::size_t>(y) * inShape.x + x;
                std::uint8_t *bc = brickCost.data() + c * bricksPerCell;
                for (int b = 0; b < bricksPerCell; ++b) {
                    const std::uint32_t nz = counts.at(x, y, brickBase + b);
                    if (nz == 0) {
                        bc[b] = cfg.emptyBrickCostsCycle ? 1 : 0;
                    } else {
                        bc[b] = static_cast<std::uint8_t>(nz);
                        nzCol[c] += nz;
                    }
                }
            }
        }

        const int passes = (filtersPerGroup + parallel - 1) / parallel;

        std::array<std::uint64_t, 64> laneTime{};
        CNV_ASSERT(lanes <= 64, "lane count above model limit");

        // Brick addresses are linear over (cell, depth brick) so the
        // banked NM's modulo interleave sees the real access pattern.
        const std::uint64_t bricksTotal = static_cast<std::uint64_t>(
            (inShape.z + cfg.brickSize - 1) / cfg.brickSize);
        std::vector<mem::Access> fetches;

        // Windows are processed in row-major groups of up to
        // windowsInFlight(); lanes synchronise at group boundaries.
        const int inFlight = cfg.windowsInFlight();
        const std::int64_t totalWindows =
            static_cast<std::int64_t>(outShape.x) * outShape.y;

        for (std::int64_t w0 = 0; w0 < totalWindows; w0 += inFlight) {
            const int batch = static_cast<int>(
                std::min<std::int64_t>(inFlight, totalWindows - w0));

            laneTime.fill(0);
            fetches.clear();
            std::uint64_t nzBatch = 0;
            std::uint64_t cells = 0;
            int windowSeq = 0;
            for (int w = 0; w < batch; ++w) {
                const int ox = static_cast<int>((w0 + w) % outShape.x);
                const int oy = static_cast<int>((w0 + w) / outShape.x);
                const int x0 = ox * p.stride - p.pad;
                const int y0 = oy * p.stride - p.pad;
                for (int ky = 0; ky < p.fy; ++ky) {
                    const int iy = y0 + ky;
                    if (iy < 0 || iy >= inShape.y)
                        continue;
                    for (int kx = 0; kx < p.fx; ++kx) {
                        const int ix = x0 + kx;
                        if (ix < 0 || ix >= inShape.x)
                            continue;
                        ++cells;
                        const std::size_t c =
                            static_cast<std::size_t>(iy) * inShape.x + ix;
                        const std::uint8_t *bc =
                            brickCost.data() + c * bricksPerCell;
                        for (int b = 0; b < bricksPerCell; ++b) {
                            const int lane = core::laneOf(
                                cfg.laneAssignment, ix, iy, brickBase + b,
                                windowSeq++, lanes);
                            laneTime[lane] += bc[b];
                            if (mem)
                                fetches.push_back(
                                    {lane,
                                     static_cast<std::uint64_t>(c) *
                                             bricksTotal +
                                         static_cast<std::uint64_t>(
                                             brickBase + b)});
                        }
                        nzBatch += nzCol[c];
                    }
                }
            }

            std::uint64_t groupCycles = 0;
            std::uint64_t laneSum = 0;
            for (int l = 0; l < lanes; ++l) {
                groupCycles = std::max(groupCycles, laneTime[l]);
                laneSum += laneTime[l];
            }

            for (int pass = 0; pass < passes; ++pass) {
                const int fCount = std::min(
                    parallel, filtersPerGroup - pass * parallel);
                const int activeUnits =
                    (fCount + cfg.filtersPerUnit - 1) /
                    cfg.filtersPerUnit;

                r.cycles += groupCycles;
                r.activity.nonZero += nzBatch * units;
                r.activity.stall +=
                    (groupCycles * lanes - nzBatch) * units;
                r.energy.nmReads +=
                    cells * static_cast<std::uint64_t>(bricksPerCell);
                r.energy.nbinWrites += nzBatch * units;
                r.energy.nbinReads += nzBatch * units;
                r.energy.sbReads += nzBatch * activeUnits;
                r.energy.multOps += nzBatch * fCount;
                r.energy.addOps += nzBatch * fCount;
                // Mirror the cycle-level model's per-pass lane
                // accounting (laneTime includes empty-brick cycles).
                r.micro.laneBusyCycles += laneSum;
                const std::uint64_t barrier =
                    groupCycles * static_cast<std::uint64_t>(lanes) -
                    laneSum;
                r.micro.laneIdleCycles += barrier;
                r.micro.stalls.windowBarrier += barrier;

                if (mem) {
                    // Each pass re-fetches the group's bricks (the
                    // per-pass NM reads above); bank conflicts and
                    // exposed global-buffer fills stretch the group
                    // with every lane of every unit idle.
                    const mem::GroupCost gc =
                        mem->fetchGroup(fetches, groupCycles);
                    const std::uint64_t extra =
                        gc.conflictCycles + gc.gbFillCycles;
                    r.cycles += extra;
                    r.activity.stall += extra * lanes * units;
                    r.micro.laneIdleCycles += extra * lanes;
                    r.micro.stalls.nmBankConflict +=
                        gc.conflictCycles * lanes;
                    r.micro.stalls.gbMiss += gc.gbFillCycles * lanes;
                }
            }
        }
    }

    const std::uint64_t windows =
        static_cast<std::uint64_t>(outShape.x) * outShape.y;
    r.energy.nmWrites += windows * ((p.filters + lanes - 1) / lanes);
    r.energy.encoderOps += windows * static_cast<std::uint64_t>(p.filters);
    r.micro.encoderBusyCycles =
        windows * static_cast<std::uint64_t>(p.filters);
    r.micro.encoderBricks =
        windows * static_cast<std::uint64_t>(
                      (p.filters + cfg.brickSize - 1) / cfg.brickSize);
    return r;
}

namespace {

/** splitmix64 finalizer: uncorrelated 64-bit hash of its input. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/**
 * Whether the weight brick a filter group applies at one (kernel
 * position, depth brick, pass) is ineffectual. A pure function of
 * the static schedule coordinates — the same answer on every call,
 * every thread and every job count — standing in for the offline
 * weight-pruning schedule Cnvlutin2 compiles per layer.
 */
bool
weightBrickIneffectual(int convIndex, int ky, int kx, int brick, int pass,
                       double sparsity)
{
    if (sparsity <= 0.0)
        return false;
    std::uint64_t h = mix64(static_cast<std::uint64_t>(convIndex) + 1);
    h = mix64(h ^ static_cast<std::uint64_t>(ky));
    h = mix64(h ^ (static_cast<std::uint64_t>(kx) << 20));
    h = mix64(h ^ (static_cast<std::uint64_t>(brick) << 40));
    h = mix64(h ^ static_cast<std::uint64_t>(pass));
    // Top 53 bits as a uniform deviate in [0, 1).
    return static_cast<double>(h >> 11) * 0x1.0p-53 < sparsity;
}

} // namespace

LayerResult
convCnv2(const NodeConfig &cfg, const nn::ConvParams &p,
         const Shape3 &inShape, const CountMap &counts, int convIndex,
         double weightSparsity, mem::MemoryModel *mem)
{
    const Shape3 outShape = p.outputShape(inShape);
    const int lanes = cfg.lanes;
    CNV_ASSERT(lanes == cfg.brickSize, "CNV needs one lane per brick slot");
    CNV_ASSERT(weightSparsity >= 0.0 && weightSparsity <= 1.0,
               "weight sparsity {} outside [0, 1]", weightSparsity);
    const int depthPerGroup = inShape.z / p.groups;
    const int filtersPerGroup = p.filters / p.groups;
    const int parallel = cfg.parallelFilters();
    const std::uint64_t units = cfg.units;

    LayerResult r;
    r.name = "conv(cnv2)";

    for (int g = 0; g < p.groups; ++g) {
        if (p.groups > 1 && (g * depthPerGroup) % cfg.brickSize != 0)
            CNV_FATAL("group depth must be brick aligned");
        const int brickBase = (g * depthPerGroup) / cfg.brickSize;
        const int bricksPerCell =
            (depthPerGroup + cfg.brickSize - 1) / cfg.brickSize;

        const int passes = (filtersPerGroup + parallel - 1) / parallel;

        std::array<std::uint64_t, 64> laneTime{};
        CNV_ASSERT(lanes <= 64, "lane count above model limit");

        const std::uint64_t bricksTotal = static_cast<std::uint64_t>(
            (inShape.z + cfg.brickSize - 1) / cfg.brickSize);
        std::vector<mem::Access> fetches;

        // Same window grouping as convCnv, but the lane cost of a
        // brick depends on the filter pass (each pass is a different
        // filter group with its own static weight schedule), so the
        // lane-time profile is rebuilt per pass instead of being
        // multiplied across passes.
        const int inFlight = cfg.windowsInFlight();
        const std::int64_t totalWindows =
            static_cast<std::int64_t>(outShape.x) * outShape.y;

        for (std::int64_t w0 = 0; w0 < totalWindows; w0 += inFlight) {
            const int batch = static_cast<int>(
                std::min<std::int64_t>(inFlight, totalWindows - w0));

            for (int pass = 0; pass < passes; ++pass) {
                const int fCount = std::min(
                    parallel, filtersPerGroup - pass * parallel);
                const int activeUnits =
                    (fCount + cfg.filtersPerUnit - 1) /
                    cfg.filtersPerUnit;

                laneTime.fill(0);
                fetches.clear();
                std::uint64_t nzPass = 0;
                std::uint64_t cells = 0;
                int windowSeq = 0;
                for (int w = 0; w < batch; ++w) {
                    const int ox = static_cast<int>((w0 + w) % outShape.x);
                    const int oy = static_cast<int>((w0 + w) / outShape.x);
                    const int x0 = ox * p.stride - p.pad;
                    const int y0 = oy * p.stride - p.pad;
                    for (int ky = 0; ky < p.fy; ++ky) {
                        const int iy = y0 + ky;
                        if (iy < 0 || iy >= inShape.y)
                            continue;
                        for (int kx = 0; kx < p.fx; ++kx) {
                            const int ix = x0 + kx;
                            if (ix < 0 || ix >= inShape.x)
                                continue;
                            ++cells;
                            for (int b = 0; b < bricksPerCell; ++b) {
                                const int lane = core::laneOf(
                                    cfg.laneAssignment, ix, iy,
                                    brickBase + b, windowSeq++, lanes);
                                // The NM fetch happens whether or not
                                // the brick is skipped, so record it
                                // either way.
                                if (mem)
                                    fetches.push_back(
                                        {lane,
                                         (static_cast<std::uint64_t>(iy) *
                                              inShape.x +
                                          ix) * bricksTotal +
                                             static_cast<std::uint64_t>(
                                                 brickBase + b)});
                                const std::uint32_t nz =
                                    counts.at(ix, iy, brickBase + b);
                                std::uint64_t cost;
                                if (nz == 0 ||
                                    weightBrickIneffectual(
                                        convIndex, ky, kx, brickBase + b,
                                        pass, weightSparsity)) {
                                    // Empty activation brick, or a
                                    // weight brick the whole filter
                                    // group prunes: one dispatcher
                                    // slot to step past (the NM
                                    // fetch still happens), no
                                    // serialised multiply-cycles.
                                    cost = cfg.emptyBrickCostsCycle ? 1 : 0;
                                } else {
                                    cost = nz;
                                    nzPass += nz;
                                }
                                laneTime[lane] += cost;
                            }
                        }
                    }
                }

                std::uint64_t groupCycles = 0;
                std::uint64_t laneSum = 0;
                for (int l = 0; l < lanes; ++l) {
                    groupCycles = std::max(groupCycles, laneTime[l]);
                    laneSum += laneTime[l];
                }

                r.cycles += groupCycles;
                r.activity.nonZero += nzPass * units;
                r.activity.stall +=
                    (groupCycles * lanes - nzPass) * units;
                r.energy.nmReads +=
                    cells * static_cast<std::uint64_t>(bricksPerCell);
                r.energy.nbinWrites += nzPass * units;
                r.energy.nbinReads += nzPass * units;
                r.energy.sbReads += nzPass * activeUnits;
                r.energy.multOps += nzPass * fCount;
                r.energy.addOps += nzPass * fCount;
                r.micro.laneBusyCycles += laneSum;
                const std::uint64_t barrier =
                    groupCycles * static_cast<std::uint64_t>(lanes) -
                    laneSum;
                r.micro.laneIdleCycles += barrier;
                r.micro.stalls.windowBarrier += barrier;

                if (mem) {
                    const mem::GroupCost gc =
                        mem->fetchGroup(fetches, groupCycles);
                    const std::uint64_t extra =
                        gc.conflictCycles + gc.gbFillCycles;
                    r.cycles += extra;
                    r.activity.stall += extra * lanes * units;
                    r.micro.laneIdleCycles += extra * lanes;
                    r.micro.stalls.nmBankConflict +=
                        gc.conflictCycles * lanes;
                    r.micro.stalls.gbMiss += gc.gbFillCycles * lanes;
                }
            }
        }
    }

    const std::uint64_t windows =
        static_cast<std::uint64_t>(outShape.x) * outShape.y;
    r.energy.nmWrites += windows * ((p.filters + lanes - 1) / lanes);
    r.energy.encoderOps += windows * static_cast<std::uint64_t>(p.filters);
    r.micro.encoderBusyCycles =
        windows * static_cast<std::uint64_t>(p.filters);
    r.micro.encoderBricks =
        windows * static_cast<std::uint64_t>(
                      (p.filters + cfg.brickSize - 1) / cfg.brickSize);
    return r;
}

} // namespace cnv::timing
