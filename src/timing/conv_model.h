/**
 * @file
 * Closed-form per-layer timing/activity models for both
 * architectures.
 *
 * These consume only layer geometry plus a per-brick non-zero count
 * map of the layer's input, and produce exactly the same cycle
 * counts, activity events, and energy counters as the cycle-level
 * models in dadiannao/nfu.* and core/unit.* (property tests enforce
 * bit-exact agreement on randomized layers). They exist so that
 * full-network experiments and pruning sweeps run in seconds
 * instead of hours; every experiment can be spot-checked against
 * the detailed models.
 */

#ifndef CNV_TIMING_CONV_MODEL_H
#define CNV_TIMING_CONV_MODEL_H

#include <cstdint>

#include "dadiannao/config.h"
#include "dadiannao/metrics.h"
#include "nn/layer.h"
#include "tensor/tensor.h"

namespace cnv::timing {

/** Per-brick non-zero counts of a layer input (x, y, depth-brick). */
using CountMap = tensor::Tensor3<std::uint8_t>;

/**
 * Baseline (DaDianNao) conv layer timing.
 *
 * @param cfg Node configuration.
 * @param p Conv parameters.
 * @param inShape Input array shape.
 * @param counts Per-brick non-zero counts of the input.
 * @param isConv1 Account all processing as the conv1 category.
 */
dadiannao::LayerResult convBaseline(const dadiannao::NodeConfig &cfg,
                                    const nn::ConvParams &p,
                                    const tensor::Shape3 &inShape,
                                    const CountMap &counts, bool isConv1);

/** CNV conv layer timing in encoded (zero-skipping) mode. */
dadiannao::LayerResult convCnv(const dadiannao::NodeConfig &cfg,
                               const nn::ConvParams &p,
                               const tensor::Shape3 &inShape,
                               const CountMap &counts);

} // namespace cnv::timing

#endif // CNV_TIMING_CONV_MODEL_H
