/**
 * @file
 * Closed-form per-layer timing/activity models for both
 * architectures.
 *
 * These consume only layer geometry plus a per-brick non-zero count
 * map of the layer's input, and produce exactly the same cycle
 * counts, activity events, and energy counters as the cycle-level
 * models in dadiannao/nfu.* and core/unit.* (property tests enforce
 * bit-exact agreement on randomized layers). They exist so that
 * full-network experiments and pruning sweeps run in seconds
 * instead of hours; every experiment can be spot-checked against
 * the detailed models.
 */

#ifndef CNV_TIMING_CONV_MODEL_H
#define CNV_TIMING_CONV_MODEL_H

#include <cstdint>

#include "dadiannao/config.h"
#include "dadiannao/metrics.h"
#include "mem/memory_model.h"
#include "nn/layer.h"
#include "tensor/tensor.h"

namespace cnv::timing {

/** Per-brick non-zero counts of a layer input (x, y, depth-brick). */
using CountMap = tensor::Tensor3<std::uint8_t>;

/**
 * Baseline (DaDianNao) conv layer timing.
 *
 * @param cfg Node configuration.
 * @param p Conv parameters.
 * @param inShape Input array shape.
 * @param counts Per-brick non-zero counts of the input.
 * @param isConv1 Account all processing as the conv1 category.
 * @param mem Optional memory model every NM access is issued
 *        against; nullptr (the ideal hierarchy) keeps the result
 *        bit-identical to a model-free run.
 */
dadiannao::LayerResult convBaseline(const dadiannao::NodeConfig &cfg,
                                    const nn::ConvParams &p,
                                    const tensor::Shape3 &inShape,
                                    const CountMap &counts, bool isConv1,
                                    mem::MemoryModel *mem = nullptr);

/** CNV conv layer timing in encoded (zero-skipping) mode. */
dadiannao::LayerResult convCnv(const dadiannao::NodeConfig &cfg,
                               const nn::ConvParams &p,
                               const tensor::Shape3 &inShape,
                               const CountMap &counts,
                               mem::MemoryModel *mem = nullptr);

/**
 * Cnvlutin2 conv layer timing: encoded mode with ineffectual-weight
 * skipping on top of CNV's zero-activation skipping (arXiv
 * 1705.00125). A lane advances past an (activation brick, weight
 * brick) pair when either side is ineffectual: empty activation
 * bricks cost what they cost under CNV, and activation bricks whose
 * matching weight brick is ineffectual for the whole in-flight
 * filter group are stepped past in the same single dispatcher slot
 * (the NM fetch still happens; only the serialised multiply-cycles
 * disappear). Which weight bricks are ineffectual is a deterministic
 * hash of (conv layer, kernel position, depth brick, filter pass) at
 * rate `weightSparsity` — a stand-in for the static post-pruning
 * schedule the paper compiles offline. With weightSparsity == 0 the
 * result is bit-identical to convCnv.
 *
 * @param convIndex The layer's conv index (hash seed component).
 * @param weightSparsity Ineffectual weight-brick fraction in [0, 1].
 */
dadiannao::LayerResult convCnv2(const dadiannao::NodeConfig &cfg,
                                const nn::ConvParams &p,
                                const tensor::Shape3 &inShape,
                                const CountMap &counts, int convIndex,
                                double weightSparsity,
                                mem::MemoryModel *mem = nullptr);

} // namespace cnv::timing

#endif // CNV_TIMING_CONV_MODEL_H
