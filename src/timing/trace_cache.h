/**
 * @file
 * Shared, thread-safe cache of per-image conv-layer traces. Every
 * simulateNetwork() call needs the layer's input tensor and its
 * per-brick non-zero count map; without a cache a six-architecture
 * registry sweep synthesizes (or loads) the identical tensor six
 * times per image. The cache stores the *unpruned* tensor keyed by
 * (network, node, image seed) — synthesis with pruning is exactly
 * synthesis-unpruned followed by nn::applyPruneToConvInput, so one
 * tensor serves baseline, CNV and every pruned variant — and the
 * derived count maps keyed additionally by prune thresholds and
 * brick size.
 *
 * Thread safety: a global mutex guards only the key -> slot maps;
 * each slot carries its own mutex, so two threads asking for the
 * same missing key serialize on that slot (one computes, the other
 * waits and hits) while different keys proceed concurrently. Hit
 * and miss totals are therefore deterministic: misses == distinct
 * keys ever requested, independent of the job count.
 *
 * One cache assumes one TraceProvider (or none) for its lifetime;
 * callers pass the provider per lookup only so the cache does not
 * own it.
 */

#ifndef CNV_TIMING_TRACE_CACHE_H
#define CNV_TIMING_TRACE_CACHE_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "core/sync.h"
#include "nn/network.h"
#include "timing/network_model.h"

namespace cnv::timing {

class TraceCache
{
  public:
    /** Snapshot of the hit/miss counters (cnv-report-v1 summary.cache). */
    struct Stats
    {
        std::uint64_t tensorHits = 0;
        std::uint64_t tensorMisses = 0;
        std::uint64_t countMapHits = 0;
        std::uint64_t countMapMisses = 0;
    };

    TraceCache() = default;
    TraceCache(const TraceCache &) = delete;
    TraceCache &operator=(const TraceCache &) = delete;

    /**
     * The unpruned input tensor of one conv layer for one image:
     * the provider's trace when it supplies one, synthesized
     * otherwise. Identical to the tensor simulateNetwork() built
     * inline before the cache existed.
     */
    std::shared_ptr<const tensor::NeuronTensor>
    convInput(const nn::Network &net, int convNodeId,
              std::uint64_t imageSeed, const TraceProvider *traces);

    /**
     * Per-brick non-zero counts of the layer input, after applying
     * `prune` (may be null) to the cached unpruned tensor. This is
     * the only artifact the timing models consume.
     */
    std::shared_ptr<const CountMap>
    countMap(const nn::Network &net, int convNodeId,
             std::uint64_t imageSeed, const TraceProvider *traces,
             const nn::PruneConfig *prune, int brickSize);

    Stats stats() const;

  private:
    /** One cached artifact: its own mutex serializes the
     *  compute-once protocol per key. */
    template <typename T> struct Slot
    {
        core::Mutex m;
        std::shared_ptr<const T> value CNV_GUARDED_BY(m);
    };

    /** Guards the two key -> slot maps (not slot contents). */
    core::Mutex mutex_;
    std::unordered_map<std::string,
                       std::shared_ptr<Slot<tensor::NeuronTensor>>>
        tensors_ CNV_GUARDED_BY(mutex_);
    std::unordered_map<std::string, std::shared_ptr<Slot<CountMap>>>
        counts_ CNV_GUARDED_BY(mutex_);

    std::atomic<std::uint64_t> tensorHits_{0};
    std::atomic<std::uint64_t> tensorMisses_{0};
    std::atomic<std::uint64_t> countHits_{0};
    std::atomic<std::uint64_t> countMisses_{0};
};

} // namespace cnv::timing

#endif // CNV_TIMING_TRACE_CACHE_H
