/**
 * @file
 * Fast whole-network timing: runs a network's geometry over
 * synthesized activation traces using the closed-form conv models,
 * producing the same NetworkResult schema as the functional node
 * models. This is the path the paper-scale experiments use (full
 * 224x224 geometries, many images, threshold sweeps).
 */

#ifndef CNV_TIMING_NETWORK_MODEL_H
#define CNV_TIMING_NETWORK_MODEL_H

#include <cstdint>
#include <optional>
#include <string>

#include "dadiannao/config.h"
#include "dadiannao/metrics.h"
#include "dadiannao/other_layers.h"
#include "mem/memory_model.h"
#include "nn/network.h"
#include "timing/conv_model.h"

namespace cnv::timing {

/** Which architecture to model. */
enum class Arch { Baseline, Cnv, Cnv2 };

const char *archName(Arch a);

/**
 * Default fraction of ineffectual weight bricks assumed on the
 * synthesized filters for Cnvlutin2 runs (timing::Arch::Cnv2). The
 * synthetic filter banks are Gaussian and carry no exact zeros, so
 * the weight-sparsity knob models the post-pruning regime the
 * Cnvlutin2 paper (arXiv 1705.00125) targets: the fraction of
 * (filter-group, kernel-position, depth-brick) weight bricks whose
 * weights are all ineffectual and can be skipped at dispatch.
 * Override per run via RunOptions::weightSparsity (CLI:
 * `--weight-sparsity`).
 */
inline constexpr double kDefaultWeightSparsity = 0.35;

/**
 * Source of per-layer input activation traces. The default
 * (synthetic, calibrated) generator is used wherever a provider
 * returns nothing — so real traces exported from an actual
 * framework run can replace the synthetic substitution layer by
 * layer (see DirectoryTraceProvider and `cnvsim export-traces`).
 */
class TraceProvider
{
  public:
    virtual ~TraceProvider() = default;

    /**
     * The *unpruned* input tensor of one conv layer for one image,
     * or std::nullopt to fall back to the synthetic generator.
     * Pruning thresholds are applied by the caller.
     */
    virtual std::optional<tensor::NeuronTensor>
    convInput(const nn::Network &net, int convNodeId,
              std::uint64_t imageSeed) const = 0;
};

/**
 * Loads traces from `<dir>/<network>_conv<index>_img<seed>.cnvt`
 * files written with tensor::saveTensorFile; missing files fall
 * back to synthesis.
 */
class DirectoryTraceProvider : public TraceProvider
{
  public:
    explicit DirectoryTraceProvider(std::string dir)
        : dir_(std::move(dir))
    {
    }

    std::optional<tensor::NeuronTensor>
    convInput(const nn::Network &net, int convNodeId,
              std::uint64_t imageSeed) const override;

    /** The path a given layer trace is looked up at. */
    std::string pathFor(const nn::Network &net, int convNodeId,
                        std::uint64_t imageSeed) const;

  private:
    std::string dir_;
};

class TraceCache;

/** Options for a trace-driven network timing run. */
struct RunOptions
{
    /** Seed identifying the "image" (trace instance). */
    std::uint64_t imageSeed = 1;
    /**
     * Dynamic pruning thresholds (CNV only; the baseline has no
     * encoder and always sees unpruned values).
     */
    const nn::PruneConfig *prune = nullptr;
    /** Optional external activation traces. */
    const TraceProvider *traces = nullptr;
    /**
     * Optional shared trace cache (timing/trace_cache.h). When set,
     * conv-layer inputs and count maps are fetched through it —
     * bit-identical to the inline path, but computed once per
     * (image, layer) across architectures and threads.
     */
    TraceCache *cache = nullptr;
    /**
     * Weight-sparsity knob for Cnv2 (ignored by the other
     * architectures): fraction of weight bricks that are
     * ineffectual across a filter-group pass and skipped at
     * dispatch. Deterministic per (layer, kernel position, brick,
     * pass) — never per thread or per call — so reports stay
     * byte-identical at any --jobs count. Recorded in the report
     * manifest as `weightSparsity`.
     */
    double weightSparsity = kDefaultWeightSparsity;
    /**
     * Memory-hierarchy model (`--mem`). Ideal — the default — keeps
     * every report byte-identical to a pre-mem build; Banked routes
     * each NM access through a per-run mem::MemoryModel (banked NM +
     * global buffer + DRAM channel). The model instance is created
     * inside simulateNetwork, so runs stay deterministic at any
     * --jobs count.
     */
    mem::Kind memKind = mem::Kind::Ideal;
    /**
     * Geometry for the banked model. A zero `banks` field (the
     * default) derives the geometry from the NodeConfig: banks =
     * nmBanks, nmBytes, dramBytesPerCycle = offchipBytesPerCycle,
     * and sliced fetch on every arch except the baseline. The arch
     * layer overrides this via arch::ArchModel::memGeometry().
     */
    mem::Geometry memGeometry{};
};

/**
 * Conv layer timing on one architecture: applies the per-layer
 * encoded/conventional selection (conv1 always conventional, the
 * LayerModePolicy otherwise) and dispatches to the closed-form
 * convBaseline/convCnv/convCnv2 models. The returned LayerResult
 * carries the node's name.
 *
 * @param counts Per-brick non-zero counts of the layer's input.
 * @param weightSparsity Cnv2 ineffectual-weight-brick fraction
 *        (ignored by the other architectures).
 * @param mem Optional memory model the chosen mode's NM accesses
 *        are issued against (the profitable-policy estimates stay
 *        side-effect-free; only the winner touches the model).
 */
dadiannao::LayerResult convLayerTiming(
    const dadiannao::NodeConfig &cfg, Arch arch, const nn::Node &node,
    const CountMap &counts, double weightSparsity = kDefaultWeightSparsity,
    mem::MemoryModel *mem = nullptr);

/**
 * Fully-connected layer timing on one architecture: the shared
 * throughput model, or the CNV zero-skipping extension when
 * cfg.cnvSkipsFcLayers is set (the input zero fraction is derived
 * from the nearest upstream conv's calibrated target).
 */
dadiannao::LayerResult fcLayerTiming(const dadiannao::NodeConfig &cfg,
                                     Arch arch, const nn::Network &net,
                                     int nodeId,
                                     dadiannao::OverlapTracker &overlap);

/**
 * Simulate one image through the network on the given architecture.
 * Conv layers are trace-driven; the first conv layer runs in
 * conventional mode on both architectures; non-conv layers use the
 * shared throughput model.
 */
dadiannao::NetworkResult simulateNetwork(const dadiannao::NodeConfig &cfg,
                                         const nn::Network &net, Arch arch,
                                         const RunOptions &opts);

/**
 * Average speedup of CNV over the baseline for a batch of images
 * (ratio of summed cycles, as an execution-time ratio).
 */
double speedup(const dadiannao::NodeConfig &cfg, const nn::Network &net,
               int images, std::uint64_t seedBase,
               const nn::PruneConfig *prune = nullptr);

} // namespace cnv::timing

#endif // CNV_TIMING_NETWORK_MODEL_H
