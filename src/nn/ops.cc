#include "nn/ops.h"

#include <algorithm>
#include <cmath>

#include "nn/kernels.h"
#include "sim/logging.h"

namespace cnv::nn {

using tensor::Accum;
using tensor::FilterBank;
using tensor::Fixed16;
using tensor::NeuronTensor;
using tensor::Shape3;

NeuronTensor
conv2d(const NeuronTensor &in, const FilterBank &weights,
       const std::vector<Fixed16> &bias, const ConvParams &p,
       core::Arena &arena)
{
    const Shape3 inShape = in.shape();
    const int depthPerGroup = inShape.z / p.groups;

    if (weights.shape().n != p.filters || weights.shape().x != p.fx ||
        weights.shape().y != p.fy || weights.shape().z != depthPerGroup) {
        CNV_FATAL("conv weight shape ({},{},{},{}) does not match "
                  "params (n={}, fx={}, fy={}, z={})",
                  weights.shape().n, weights.shape().x, weights.shape().y,
                  weights.shape().z, p.filters, p.fx, p.fy, depthPerGroup);
    }
    if (bias.size() != static_cast<std::size_t>(p.filters))
        CNV_FATAL("conv bias count {} != filters {}", bias.size(), p.filters);

    return kernels::convForward(in, weights, bias, p, arena);
}

NeuronTensor
conv2d(const NeuronTensor &in, const FilterBank &weights,
       const std::vector<Fixed16> &bias, const ConvParams &p)
{
    core::Arena arena;
    return conv2d(in, weights, bias, p, arena);
}

NeuronTensor
pool2d(const NeuronTensor &in, const PoolParams &p)
{
    const Shape3 inShape = in.shape();
    const Shape3 outShape = p.outputShape(inShape);
    NeuronTensor out(outShape);

    for (int oy = 0; oy < outShape.y; ++oy) {
        for (int ox = 0; ox < outShape.x; ++ox) {
            const int x0 = ox * p.stride - p.pad;
            const int y0 = oy * p.stride - p.pad;
            const int x1 = std::min(x0 + p.k, inShape.x);
            const int y1 = std::min(y0 + p.k, inShape.y);
            const int xs = std::max(x0, 0);
            const int ys = std::max(y0, 0);
            for (int z = 0; z < inShape.z; ++z) {
                if (p.op == PoolParams::Op::Max) {
                    // A window that is all padding (possible only
                    // with degenerate pad/kernel combinations)
                    // yields the padding value, zero.
                    Fixed16 best = (xs < x1 && ys < y1)
                        ? Fixed16::fromRaw(
                              static_cast<std::int16_t>(Fixed16::kRawMin))
                        : Fixed16{};
                    for (int iy = ys; iy < y1; ++iy)
                        for (int ix = xs; ix < x1; ++ix)
                            best = std::max(best, in.at(ix, iy, z));
                    out.at(ox, oy, z) = best;
                } else {
                    // Caffe averages over the full (padded) window size.
                    Accum sum = 0;
                    for (int iy = ys; iy < y1; ++iy)
                        for (int ix = xs; ix < x1; ++ix)
                            sum += in.at(ix, iy, z).raw();
                    const int denom = p.k * p.k;
                    out.at(ox, oy, z) = Fixed16::saturateFromRaw(
                        (sum + (sum >= 0 ? denom / 2 : -denom / 2)) / denom);
                }
            }
        }
    }
    return out;
}

NeuronTensor
lrn(const NeuronTensor &in, const LrnParams &p)
{
    const Shape3 s = in.shape();
    NeuronTensor out(s);
    const int half = p.localSize / 2;

    for (int y = 0; y < s.y; ++y) {
        for (int x = 0; x < s.x; ++x) {
            const Fixed16 *col = in.column(x, y);
            for (int z = 0; z < s.z; ++z) {
                const int z0 = std::max(0, z - half);
                const int z1 = std::min(s.z - 1, z + half);
                double sumSq = 0.0;
                for (int zz = z0; zz <= z1; ++zz) {
                    const double v = col[zz].toDouble();
                    sumSq += v * v;
                }
                const double scale =
                    std::pow(p.k + (p.alpha / p.localSize) * sumSq, -p.beta);
                out.at(x, y, z) =
                    Fixed16::fromDouble(col[z].toDouble() * scale);
            }
        }
    }
    return out;
}

NeuronTensor
fullyConnected(const NeuronTensor &in, const FilterBank &weights,
               const std::vector<Fixed16> &bias, const FcParams &p)
{
    const std::size_t volume = in.shape().volume();
    if (weights.shape().n != p.outputs ||
        static_cast<std::size_t>(weights.shape().z) *
            weights.shape().x * weights.shape().y != volume) {
        CNV_FATAL("fc weight shape does not match input volume {}", volume);
    }
    if (bias.size() != static_cast<std::size_t>(p.outputs))
        CNV_FATAL("fc bias count {} != outputs {}", bias.size(), p.outputs);

    // FC weights are stored as one "filter" per output whose volume
    // equals the input volume, laid out to match the flattened
    // depth-fastest input.
    return kernels::fcForward(in, weights, bias, p);
}

NeuronTensor
concat(const std::vector<const NeuronTensor *> &ins)
{
    CNV_ASSERT(!ins.empty(), "concat needs at least one input");
    const Shape3 first = ins[0]->shape();
    int depth = 0;
    for (const NeuronTensor *t : ins) {
        if (t->shape().x != first.x || t->shape().y != first.y)
            CNV_FATAL("concat inputs disagree on spatial size");
        depth += t->shape().z;
    }
    NeuronTensor out(first.x, first.y, depth);
    for (int y = 0; y < first.y; ++y) {
        for (int x = 0; x < first.x; ++x) {
            int zOut = 0;
            for (const NeuronTensor *t : ins) {
                for (int z = 0; z < t->shape().z; ++z)
                    out.at(x, y, zOut++) = t->at(x, y, z);
            }
        }
    }
    return out;
}

NeuronTensor
softmax(const NeuronTensor &in)
{
    const Shape3 s = in.shape();
    CNV_ASSERT(s.x == 1 && s.y == 1, "softmax expects a 1x1xC tensor");
    double maxV = -1e30;
    for (int z = 0; z < s.z; ++z)
        maxV = std::max(maxV, in.at(0, 0, z).toDouble());
    double sum = 0.0;
    std::vector<double> exps(s.z);
    for (int z = 0; z < s.z; ++z) {
        exps[z] = std::exp(in.at(0, 0, z).toDouble() - maxV);
        sum += exps[z];
    }
    NeuronTensor out(s);
    for (int z = 0; z < s.z; ++z)
        out.at(0, 0, z) = Fixed16::fromDouble(exps[z] / sum);
    return out;
}

int
argmax(const NeuronTensor &logits)
{
    const Shape3 s = logits.shape();
    CNV_ASSERT(s.x == 1 && s.y == 1 && s.z > 0, "argmax expects 1x1xC");
    int best = 0;
    for (int z = 1; z < s.z; ++z) {
        if (logits.at(0, 0, z) > logits.at(0, 0, best))
            best = z;
    }
    return best;
}

} // namespace cnv::nn
