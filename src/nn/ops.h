/**
 * @file
 * Functional (golden-model) layer kernels over 16-bit fixed-point
 * tensors. These produce the reference outputs against which both
 * accelerator models are validated, standing in for the Caffe
 * integration the paper used for on-the-fly output validation.
 */

#ifndef CNV_NN_OPS_H
#define CNV_NN_OPS_H

#include <vector>

#include "core/arena.h"
#include "nn/layer.h"
#include "tensor/neuron_tensor.h"

namespace cnv::nn {

/**
 * Direct convolution per Section III-A's equation, with zero
 * padding, stride, grouped channels, per-filter bias, and optional
 * fused ReLU. Products accumulate exactly in a wide accumulator and
 * are requantised once per output neuron, like the hardware.
 */
tensor::NeuronTensor conv2d(const tensor::NeuronTensor &in,
                            const tensor::FilterBank &weights,
                            const std::vector<tensor::Fixed16> &bias,
                            const ConvParams &p);

/**
 * Arena-backed variant: the kernel's padded-input staging buffer
 * comes from `arena`, letting callers that run many layers (one
 * forward pass, a calibration sweep) reuse one allocation via
 * `Arena::reset()` instead of hitting the heap per layer.
 */
tensor::NeuronTensor conv2d(const tensor::NeuronTensor &in,
                            const tensor::FilterBank &weights,
                            const std::vector<tensor::Fixed16> &bias,
                            const ConvParams &p, core::Arena &arena);

/** Max or average pooling with Caffe-style ceil output sizing. */
tensor::NeuronTensor pool2d(const tensor::NeuronTensor &in,
                            const PoolParams &p);

/** Cross-channel local response normalisation (computed in double). */
tensor::NeuronTensor lrn(const tensor::NeuronTensor &in, const LrnParams &p);

/**
 * Fully-connected layer: the input is flattened depth-fastest and
 * multiplied by a (outputs x volume) weight matrix.
 */
tensor::NeuronTensor fullyConnected(const tensor::NeuronTensor &in,
                                    const tensor::FilterBank &weights,
                                    const std::vector<tensor::Fixed16> &bias,
                                    const FcParams &p);

/** Depth concatenation; inputs must share x/y dimensions. */
tensor::NeuronTensor concat(const std::vector<const tensor::NeuronTensor *> &ins);

/** Softmax over the depth dimension (computed in double). */
tensor::NeuronTensor softmax(const tensor::NeuronTensor &in);

/** Index of the maximum element (top-1 class) of a 1x1xC tensor. */
int argmax(const tensor::NeuronTensor &logits);

} // namespace cnv::nn

#endif // CNV_NN_OPS_H
