/**
 * @file
 * Vectorized hot-path kernels behind the functional layer ops.
 *
 * `nn::conv2d` and `nn::fullyConnected` (ops.cc) validate shapes and
 * then delegate here. Each kernel has a scalar reference twin used
 * by the scalar-vs-SIMD equivalence tests (tests/nn/test_kernels.cc)
 * and the before/after columns of bench_micro_kernels.
 *
 * The load-bearing invariant: every kernel accumulates exact int64
 * sums of exact int32 products of the raw Q7.8 values, identical to
 * the scalar reference — integer addition is associative, so lane
 * order cannot change the total, and requantisation happens exactly
 * once per output neuron, after the full reduction. Reports are
 * therefore byte-identical whichever backend `core/simd.h` selects.
 *
 * Conv stages a zero-padded copy of the input (per layer, from the
 * caller's `core::Arena`) so the inner reduction needs no bounds
 * checks and every column load is contiguous; the padding zeros
 * contribute exactly zero to the sums.
 */

#ifndef CNV_NN_KERNELS_H
#define CNV_NN_KERNELS_H

#include <vector>

#include "core/arena.h"
#include "nn/layer.h"
#include "tensor/neuron_tensor.h"

namespace cnv::nn::kernels {

/**
 * Exact raw dot product of two contiguous runs of n fixed-point
 * values: sum of a[i].raw() * b[i].raw() in a 64-bit accumulator.
 */
tensor::Accum dotRaw(const tensor::Fixed16 *a, const tensor::Fixed16 *b,
                     std::size_t n);

/**
 * Vectorized direct convolution (inputs already validated by
 * nn::conv2d). `arena` backs the per-layer padded input copy and is
 * reset by the caller between images.
 */
tensor::NeuronTensor convForward(const tensor::NeuronTensor &in,
                                 const tensor::FilterBank &weights,
                                 const std::vector<tensor::Fixed16> &bias,
                                 const ConvParams &p, core::Arena &arena);

/** Scalar reference convolution (equivalence tests and benches). */
tensor::NeuronTensor convForwardScalar(
    const tensor::NeuronTensor &in, const tensor::FilterBank &weights,
    const std::vector<tensor::Fixed16> &bias, const ConvParams &p);

/** Vectorized fully-connected forward (inputs already validated). */
tensor::NeuronTensor fcForward(const tensor::NeuronTensor &in,
                               const tensor::FilterBank &weights,
                               const std::vector<tensor::Fixed16> &bias,
                               const FcParams &p);

/** Scalar reference FC forward (equivalence tests and benches). */
tensor::NeuronTensor fcForwardScalar(
    const tensor::NeuronTensor &in, const tensor::FilterBank &weights,
    const std::vector<tensor::Fixed16> &bias, const FcParams &p);

} // namespace cnv::nn::kernels

#endif // CNV_NN_KERNELS_H
