/**
 * @file
 * nin — Model Zoo "NIN-imagenet": 12 conv layers, each spatial
 * convolution followed by two 1x1 "cccp" (cascaded cross-channel
 * parametric pooling) convolutions, ending in global average
 * pooling over 1000 feature maps instead of fully-connected layers.
 */

#include "nn/zoo/builders.h"

namespace cnv::nn::zoo {

std::unique_ptr<Network>
buildNin(std::uint64_t seed, const Scaler &s)
{
    auto net = std::make_unique<Network>("nin", seed);
    int x = net->addInput({s.sp(224), s.sp(224), 3});

    x = net->addConv("conv1", x, clampConv(*net, x, conv(s.ch(96), 11, 4, 0)));
    x = net->addConv("cccp1", x, clampConv(*net, x, conv(s.ch(96), 1, 1, 0)));
    x = net->addConv("cccp2", x, clampConv(*net, x, conv(s.ch(96), 1, 1, 0)));
    x = net->addPool("pool1", x, clampPool(*net, x, maxPool(3, 2)));

    x = net->addConv("conv2", x, clampConv(*net, x, conv(s.ch(256), 5, 1, 2)));
    x = net->addConv("cccp3", x, clampConv(*net, x, conv(s.ch(256), 1, 1, 0)));
    x = net->addConv("cccp4", x, clampConv(*net, x, conv(s.ch(256), 1, 1, 0)));
    x = net->addPool("pool2", x, clampPool(*net, x, maxPool(3, 2)));

    x = net->addConv("conv3", x, clampConv(*net, x, conv(s.ch(384), 3, 1, 1)));
    x = net->addConv("cccp5", x, clampConv(*net, x, conv(s.ch(384), 1, 1, 0)));
    x = net->addConv("cccp6", x, clampConv(*net, x, conv(s.ch(384), 1, 1, 0)));
    x = net->addPool("pool3", x, clampPool(*net, x, maxPool(3, 2)));

    x = net->addConv("conv4", x, clampConv(*net, x, conv(s.ch(1024), 3, 1, 1)));
    x = net->addConv("cccp7", x, clampConv(*net, x, conv(s.ch(1024), 1, 1, 0)));
    x = net->addConv("cccp8", x, clampConv(*net, x, conv(s.fc(1000), 1, 1, 0)));

    // Global average pooling over the remaining spatial extent.
    const int spatial = net->node(x).outShape.x;
    x = net->addPool("pool4", x, avgPool(spatial, 1));
    net->addSoftmax("prob", x);
    return net;
}

} // namespace cnv::nn::zoo
