/**
 * @file
 * The network zoo: exact layer geometries of the six networks the
 * paper evaluates (Table I), with per-layer input-sparsity targets
 * calibrated so the MAC-weighted zero-operand fraction matches the
 * paper's Figure 1.
 *
 * | name   | conv layers | source (paper Table I)          |
 * |--------|-------------|---------------------------------|
 * | alex   | 5           | Caffe: bvlc_reference_caffenet  |
 * | google | 59          | Caffe: bvlc_googlenet (incl. 2 auxiliary-classifier convs) |
 * | nin    | 12          | Model Zoo: NIN-imagenet         |
 * | vgg19  | 16          | Model Zoo: VGG 19-layer         |
 * | cnnM   | 5           | Model Zoo: VGG_CNN_M_2048       |
 * | cnnS   | 5           | Model Zoo: VGG_CNN_S            |
 */

#ifndef CNV_NN_ZOO_ZOO_H
#define CNV_NN_ZOO_ZOO_H

#include <memory>
#include <string>
#include <vector>

#include "nn/network.h"

namespace cnv::nn::zoo {

/** Identifiers of the evaluated networks. */
enum class NetId { Alex, Google, Nin, Vgg19, CnnM, CnnS };

/** All networks in the paper's presentation order. */
std::vector<NetId> allNetworks();

/** Canonical lowercase name ("alex", "google", ...). */
const char *netName(NetId id);

/** Parse a name; fatal on unknown names. */
NetId netFromName(const std::string &name);

/**
 * Paper Figure 1 target: average fraction of conv multiplication
 * operands that are zero-valued neurons for this network.
 */
double zeroOperandTarget(NetId id);

/**
 * Build a network with calibrated sparsity targets.
 *
 * @param id Which network.
 * @param seed Seed for synthetic weights (and all traces derived
 *        from the network).
 * @param scale Divides spatial extents and depths by this factor
 *        (>= 1) to produce reduced-cost variants with identical
 *        structure — used by functional accuracy experiments;
 *        timing always uses scale 1.
 */
std::unique_ptr<Network> build(NetId id, std::uint64_t seed = 1,
                               int scale = 1);

/**
 * Calibrate per-conv-layer input sparsity: scales a depth ramp so
 * the MAC-weighted average over all conv layers equals `target`.
 * Called by build(); exposed for tests and custom networks.
 *
 * @param quiet Suppress the unreachable-target warning (reduced-
 *        scale variants inflate the first layer's MAC share, so
 *        their profile saturating is expected).
 */
void calibrateSparsity(Network &net, double target, bool quiet = false);

} // namespace cnv::nn::zoo

#endif // CNV_NN_ZOO_ZOO_H
