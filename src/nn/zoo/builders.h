/**
 * @file
 * Internal helpers shared by the zoo network builders.
 */

#ifndef CNV_NN_ZOO_BUILDERS_H
#define CNV_NN_ZOO_BUILDERS_H

#include <algorithm>
#include <memory>

#include "nn/network.h"

namespace cnv::nn::zoo {

/**
 * Reduces a network's cost while preserving its structure: spatial
 * extents divide by `scale`; channel counts divide by `scale` but
 * stay multiples of 16 (one ZFNAf brick) so grouped layers and
 * brick alignment behave as at full scale.
 */
struct Scaler
{
    int scale = 1;

    /** Scaled spatial extent. */
    int
    sp(int v) const
    {
        return std::max(8, v / scale);
    }

    /**
     * Scaled channel count. Full scale passes through unchanged;
     * reduced scales round to multiples of 32 so grouped layers
     * (groups = 2) keep brick-aligned group slices.
     */
    int
    ch(int v) const
    {
        if (scale == 1)
            return v;
        const int scaled = std::max(32, v / scale);
        return ((scaled + 31) / 32) * 32;
    }

    /** Scaled fully-connected width. */
    int
    fc(int v) const
    {
        return std::max(32, v / scale);
    }
};

/** Terse ConvParams constructor used by all builders. */
inline ConvParams
conv(int filters, int k, int stride, int pad, int groups = 1)
{
    ConvParams p;
    p.filters = filters;
    p.fx = k;
    p.fy = k;
    p.stride = stride;
    p.pad = pad;
    p.groups = groups;
    return p;
}

/** Max pooling; k clamped to the current spatial extent. */
inline PoolParams
maxPool(int k, int stride, int pad = 0)
{
    PoolParams p;
    p.op = PoolParams::Op::Max;
    p.k = k;
    p.stride = stride;
    p.pad = pad;
    return p;
}

/** Average pooling. */
inline PoolParams
avgPool(int k, int stride, int pad = 0)
{
    PoolParams p;
    p.op = PoolParams::Op::Avg;
    p.k = k;
    p.stride = stride;
    p.pad = pad;
    return p;
}

/** Clamp a pooling window to the producer's spatial extent. */
PoolParams clampPool(const Network &net, int input, PoolParams p);

/**
 * Clamp a conv kernel to the producer's padded extent — a no-op at
 * full scale, but it keeps reduced-scale variants (whose spatial
 * extents shrink faster than the fixed kernels) well formed.
 */
ConvParams clampConv(const Network &net, int input, ConvParams p);

std::unique_ptr<Network> buildAlex(std::uint64_t seed, const Scaler &s);
std::unique_ptr<Network> buildGoogle(std::uint64_t seed, const Scaler &s);
std::unique_ptr<Network> buildNin(std::uint64_t seed, const Scaler &s);
std::unique_ptr<Network> buildVgg19(std::uint64_t seed, const Scaler &s);
std::unique_ptr<Network> buildCnnM(std::uint64_t seed, const Scaler &s);
std::unique_ptr<Network> buildCnnS(std::uint64_t seed, const Scaler &s);

} // namespace cnv::nn::zoo

#endif // CNV_NN_ZOO_BUILDERS_H
