#include "nn/zoo/zoo.h"

#include <cmath>

#include "nn/trace.h"
#include "nn/zoo/builders.h"
#include "sim/logging.h"

namespace cnv::nn::zoo {

PoolParams
clampPool(const Network &net, int input, PoolParams p)
{
    const int spatial = net.node(input).outShape.x;
    // The window may not exceed the padded extent (keeps >= 1
    // output); same-padded inception pools keep their size at any
    // scale because the pad still counts.
    p.k = std::min(p.k, spatial + 2 * p.pad);
    p.stride = std::min(p.stride, std::max(1, spatial));
    return p;
}

ConvParams
clampConv(const Network &net, int input, ConvParams p)
{
    const int spatial = net.node(input).outShape.x;
    p.fx = std::min(p.fx, spatial + 2 * p.pad);
    p.fy = std::min(p.fy, spatial + 2 * p.pad);
    return p;
}

std::vector<NetId>
allNetworks()
{
    return {NetId::Alex, NetId::Google, NetId::Nin,
            NetId::Vgg19, NetId::CnnM, NetId::CnnS};
}

const char *
netName(NetId id)
{
    switch (id) {
      case NetId::Alex: return "alex";
      case NetId::Google: return "google";
      case NetId::Nin: return "nin";
      case NetId::Vgg19: return "vgg19";
      case NetId::CnnM: return "cnnM";
      case NetId::CnnS: return "cnnS";
    }
    return "?";
}

NetId
netFromName(const std::string &name)
{
    for (NetId id : allNetworks()) {
        if (name == netName(id))
            return id;
    }
    // Common long-form spellings of the paper's network names.
    if (name == "alexnet")
        return NetId::Alex;
    if (name == "googlenet" || name == "googLeNet")
        return NetId::Google;
    if (name == "vgg" || name == "vgg-19")
        return NetId::Vgg19;
    CNV_FATAL("unknown network '{}'", name);
}

double
zeroOperandTarget(NetId id)
{
    // Figure 1: per-network average fraction of conv multiplication
    // operands that are zero-valued neurons (nin lowest at 37%,
    // cnnS highest at 50%, all-network average 44%).
    switch (id) {
      case NetId::Alex: return 0.44;
      case NetId::Google: return 0.46;
      case NetId::Nin: return 0.37;
      case NetId::Vgg19: return 0.45;
      case NetId::CnnM: return 0.43;
      case NetId::CnnS: return 0.50;
    }
    return 0.44;
}

void
calibrateSparsity(Network &net, double target, bool quiet)
{
    const int convs = net.convLayerCount();
    CNV_ASSERT(convs > 0, "network has no conv layers");

    // Base profile: sparsity grows with depth (later layers encode
    // rarer, more specific features). Image-fed layers stay dense.
    std::vector<double> base(convs, 0.0);
    std::vector<double> macs(convs, 0.0);
    std::vector<bool> imageFed(convs, false);
    double totalMacs = 0.0;
    for (int i = 0; i < convs; ++i) {
        const int id = net.convNodeIds()[i];
        const double frac = convs > 1
            ? static_cast<double>(i) / (convs - 1) : 0.0;
        base[i] = 0.40 + 0.22 * frac;
        macs[i] = static_cast<double>(net.node(id).macs());
        totalMacs += macs[i];
        for (const TraceSegment &seg : inputSegments(net, id)) {
            if (seg.producerConvIndex < 0)
                imageFed[i] = true;
        }
    }

    auto weightedMean = [&](double alpha) {
        double acc = 0.0;
        for (int i = 0; i < convs; ++i) {
            const double zf = imageFed[i]
                ? 0.01 : std::clamp(alpha * base[i], 0.0, 0.80);
            acc += zf * macs[i];
        }
        return acc / totalMacs;
    };

    // Bisection on the profile scale.
    double lo = 0.01, hi = 2.5;
    if (weightedMean(hi) < target && !quiet) {
        CNV_WARN("network '{}': target zero fraction {} unreachable; "
                 "saturating profile", net.name(), target);
    }
    for (int iter = 0; iter < 60; ++iter) {
        const double mid = 0.5 * (lo + hi);
        if (weightedMean(mid) < target)
            lo = mid;
        else
            hi = mid;
    }
    const double alpha = 0.5 * (lo + hi);

    for (int i = 0; i < convs; ++i) {
        const double zf = imageFed[i]
            ? 0.01 : std::clamp(alpha * base[i], 0.0, 0.80);
        net.setConvInputZeroFraction(i, zf);
    }
}

std::unique_ptr<Network>
build(NetId id, std::uint64_t seed, int scale)
{
    if (scale < 1)
        CNV_FATAL("network scale must be >= 1, got {}", scale);
    const Scaler s{scale};
    std::unique_ptr<Network> net;
    switch (id) {
      case NetId::Alex: net = buildAlex(seed, s); break;
      case NetId::Google: net = buildGoogle(seed, s); break;
      case NetId::Nin: net = buildNin(seed, s); break;
      case NetId::Vgg19: net = buildVgg19(seed, s); break;
      case NetId::CnnM: net = buildCnnM(seed, s); break;
      case NetId::CnnS: net = buildCnnS(seed, s); break;
    }
    calibrateSparsity(*net, zeroOperandTarget(id), scale > 1);
    net->deriveOutputTargets();
    return net;
}

} // namespace cnv::nn::zoo
