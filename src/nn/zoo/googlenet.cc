/**
 * @file
 * google — Caffe bvlc_googlenet (GoogLeNet / Inception v1).
 *
 * 59 convolutional layers: the conv1/conv2 stem (3), nine inception
 * modules of six convolutions each (54), and the two 1x1
 * convolutions of the auxiliary classifier heads attached to
 * inception 4a and 4d (2). The auxiliary heads are retained so the
 * conv-layer count matches the paper's Table I; their compute share
 * is under 1%.
 */

#include "nn/zoo/builders.h"

namespace cnv::nn::zoo {

namespace {

/** One inception module; returns the concat node id. */
int
inception(Network &net, const Scaler &s, const std::string &name, int in,
          int c1, int c3r, int c3, int c5r, int c5, int cp)
{
    const int b1 = net.addConv(name + "/1x1", in, clampConv(net, in, conv(s.ch(c1), 1, 1, 0)));
    const int b3r =
        net.addConv(name + "/3x3_reduce", in, clampConv(net, in, conv(s.ch(c3r), 1, 1, 0)));
    const int b3 = net.addConv(name + "/3x3", b3r, clampConv(net, b3r, conv(s.ch(c3), 3, 1, 1)));
    const int b5r =
        net.addConv(name + "/5x5_reduce", in, clampConv(net, in, conv(s.ch(c5r), 1, 1, 0)));
    const int b5 = net.addConv(name + "/5x5", b5r, clampConv(net, b5r, conv(s.ch(c5), 5, 1, 2)));
    const int bp =
        net.addPool(name + "/pool", in, clampPool(net, in, maxPool(3, 1, 1)));
    const int bpp =
        net.addConv(name + "/pool_proj", bp, clampConv(net, bp, conv(s.ch(cp), 1, 1, 0)));
    return net.addConcat(name + "/output", {b1, b3, b5, bpp});
}

/** Auxiliary classifier head (train-time side branch, kept for
 *  layer-count fidelity; a dead end at inference). */
void
auxHead(Network &net, const Scaler &s, const std::string &name, int in)
{
    const int spatial = net.node(in).outShape.x;
    PoolParams ap = avgPool(std::min(5, spatial), std::min(3, spatial));
    const int pool = net.addPool(name + "/ave_pool", in, ap);
    const int cv =
        net.addConv(name + "/conv", pool, clampConv(net, pool, conv(s.ch(128), 1, 1, 0)));
    const int f1 = net.addFc(name + "/fc", cv, FcParams{s.fc(1024), true});
    net.addFc(name + "/classifier", f1, FcParams{s.fc(1000), false});
}

} // namespace

std::unique_ptr<Network>
buildGoogle(std::uint64_t seed, const Scaler &s)
{
    auto net = std::make_unique<Network>("google", seed);
    int x = net->addInput({s.sp(224), s.sp(224), 3});

    x = net->addConv("conv1/7x7_s2", x, clampConv(*net, x, conv(s.ch(64), 7, 2, 3)));
    x = net->addPool("pool1/3x3_s2", x, clampPool(*net, x, maxPool(3, 2)));
    x = net->addLrn("pool1/norm1", x, LrnParams{});

    x = net->addConv("conv2/3x3_reduce", x, clampConv(*net, x, conv(s.ch(64), 1, 1, 0)));
    x = net->addConv("conv2/3x3", x, clampConv(*net, x, conv(s.ch(192), 3, 1, 1)));
    x = net->addLrn("conv2/norm2", x, LrnParams{});
    x = net->addPool("pool2/3x3_s2", x, clampPool(*net, x, maxPool(3, 2)));

    x = inception(*net, s, "inception_3a", x, 64, 96, 128, 16, 32, 32);
    x = inception(*net, s, "inception_3b", x, 128, 128, 192, 32, 96, 64);
    x = net->addPool("pool3/3x3_s2", x, clampPool(*net, x, maxPool(3, 2)));

    x = inception(*net, s, "inception_4a", x, 192, 96, 208, 16, 48, 64);
    auxHead(*net, s, "loss1", x);
    x = inception(*net, s, "inception_4b", x, 160, 112, 224, 24, 64, 64);
    x = inception(*net, s, "inception_4c", x, 128, 128, 256, 24, 64, 64);
    x = inception(*net, s, "inception_4d", x, 112, 144, 288, 32, 64, 64);
    auxHead(*net, s, "loss2", x);
    x = inception(*net, s, "inception_4e", x, 256, 160, 320, 32, 128, 128);
    x = net->addPool("pool4/3x3_s2", x, clampPool(*net, x, maxPool(3, 2)));

    x = inception(*net, s, "inception_5a", x, 256, 160, 320, 32, 128, 128);
    x = inception(*net, s, "inception_5b", x, 384, 192, 384, 48, 128, 128);

    const int spatial = net->node(x).outShape.x;
    x = net->addPool("pool5/7x7_s1", x, avgPool(spatial, 1));
    x = net->addFc("loss3/classifier", x, FcParams{s.fc(1000), false});
    net->addSoftmax("prob", x);
    return net;
}

} // namespace cnv::nn::zoo
