/**
 * @file
 * alex — Caffe bvlc_reference_caffenet (AlexNet variant), 5 conv
 * layers, grouped conv2/4/5, LRN after the first two pools.
 */

#include "nn/zoo/builders.h"

namespace cnv::nn::zoo {

std::unique_ptr<Network>
buildAlex(std::uint64_t seed, const Scaler &s)
{
    auto net = std::make_unique<Network>("alex", seed);
    int x = net->addInput({s.sp(227), s.sp(227), 3});

    x = net->addConv("conv1", x, clampConv(*net, x, conv(s.ch(96), 11, 4, 0)));
    x = net->addPool("pool1", x, clampPool(*net, x, maxPool(3, 2)));
    x = net->addLrn("norm1", x, LrnParams{});

    x = net->addConv("conv2", x, clampConv(*net, x, conv(s.ch(256), 5, 1, 2, 2)));
    x = net->addPool("pool2", x, clampPool(*net, x, maxPool(3, 2)));
    x = net->addLrn("norm2", x, LrnParams{});

    x = net->addConv("conv3", x, clampConv(*net, x, conv(s.ch(384), 3, 1, 1)));
    x = net->addConv("conv4", x, clampConv(*net, x, conv(s.ch(384), 3, 1, 1, 2)));
    x = net->addConv("conv5", x, clampConv(*net, x, conv(s.ch(256), 3, 1, 1, 2)));
    x = net->addPool("pool5", x, clampPool(*net, x, maxPool(3, 2)));

    x = net->addFc("fc6", x, FcParams{s.fc(4096), true});
    x = net->addFc("fc7", x, FcParams{s.fc(4096), true});
    x = net->addFc("fc8", x, FcParams{s.fc(1000), false});
    net->addSoftmax("prob", x);
    return net;
}

} // namespace cnv::nn::zoo
