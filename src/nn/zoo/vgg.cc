/**
 * @file
 * The three VGG-family networks of Table I:
 *  - vgg19: Model Zoo "VGG 19-layer" — 16 conv layers of 3x3.
 *  - cnnM:  Model Zoo "VGG_CNN_M_2048" — 5 conv layers, 2048-wide fc7.
 *  - cnnS:  Model Zoo "VGG_CNN_S" — 5 conv layers, stride-3 pools.
 */

#include "nn/zoo/builders.h"

namespace cnv::nn::zoo {

std::unique_ptr<Network>
buildVgg19(std::uint64_t seed, const Scaler &s)
{
    auto net = std::make_unique<Network>("vgg19", seed);
    int x = net->addInput({s.sp(224), s.sp(224), 3});

    int block = 0;
    auto stage = [&](int filters, int convs) {
        ++block;
        for (int c = 1; c <= convs; ++c) {
            x = net->addConv(
                sim::strfmt("conv{}_{}", block, c), x,
                clampConv(*net, x, conv(s.ch(filters), 3, 1, 1)));
        }
        x = net->addPool(sim::strfmt("pool{}", block), x,
                         clampPool(*net, x, maxPool(2, 2)));
    };

    stage(64, 2);
    stage(128, 2);
    stage(256, 4);
    stage(512, 4);
    stage(512, 4);

    x = net->addFc("fc6", x, FcParams{s.fc(4096), true});
    x = net->addFc("fc7", x, FcParams{s.fc(4096), true});
    x = net->addFc("fc8", x, FcParams{s.fc(1000), false});
    net->addSoftmax("prob", x);
    return net;
}

std::unique_ptr<Network>
buildCnnM(std::uint64_t seed, const Scaler &s)
{
    auto net = std::make_unique<Network>("cnnM", seed);
    int x = net->addInput({s.sp(224), s.sp(224), 3});

    x = net->addConv("conv1", x, clampConv(*net, x, conv(s.ch(96), 7, 2, 0)));
    x = net->addLrn("norm1", x, LrnParams{});
    x = net->addPool("pool1", x, clampPool(*net, x, maxPool(3, 2)));

    x = net->addConv("conv2", x, clampConv(*net, x, conv(s.ch(256), 5, 2, 1)));
    x = net->addLrn("norm2", x, LrnParams{});
    x = net->addPool("pool2", x, clampPool(*net, x, maxPool(3, 2)));

    x = net->addConv("conv3", x, clampConv(*net, x, conv(s.ch(512), 3, 1, 1)));
    x = net->addConv("conv4", x, clampConv(*net, x, conv(s.ch(512), 3, 1, 1)));
    x = net->addConv("conv5", x, clampConv(*net, x, conv(s.ch(512), 3, 1, 1)));
    x = net->addPool("pool5", x, clampPool(*net, x, maxPool(3, 2)));

    x = net->addFc("fc6", x, FcParams{s.fc(4096), true});
    x = net->addFc("fc7", x, FcParams{s.fc(2048), true});
    x = net->addFc("fc8", x, FcParams{s.fc(1000), false});
    net->addSoftmax("prob", x);
    return net;
}

std::unique_ptr<Network>
buildCnnS(std::uint64_t seed, const Scaler &s)
{
    auto net = std::make_unique<Network>("cnnS", seed);
    int x = net->addInput({s.sp(224), s.sp(224), 3});

    x = net->addConv("conv1", x, clampConv(*net, x, conv(s.ch(96), 7, 2, 0)));
    x = net->addLrn("norm1", x, LrnParams{});
    x = net->addPool("pool1", x, clampPool(*net, x, maxPool(3, 3)));

    x = net->addConv("conv2", x, clampConv(*net, x, conv(s.ch(256), 5, 1, 0)));
    x = net->addPool("pool2", x, clampPool(*net, x, maxPool(2, 2)));

    x = net->addConv("conv3", x, clampConv(*net, x, conv(s.ch(512), 3, 1, 1)));
    x = net->addConv("conv4", x, clampConv(*net, x, conv(s.ch(512), 3, 1, 1)));
    x = net->addConv("conv5", x, clampConv(*net, x, conv(s.ch(512), 3, 1, 1)));
    x = net->addPool("pool5", x, clampPool(*net, x, maxPool(3, 3)));

    x = net->addFc("fc6", x, FcParams{s.fc(4096), true});
    x = net->addFc("fc7", x, FcParams{s.fc(4096), true});
    x = net->addFc("fc8", x, FcParams{s.fc(1000), false});
    net->addSoftmax("prob", x);
    return net;
}

} // namespace cnv::nn::zoo
