/**
 * @file
 * Network graph: a DAG of layer nodes (inception branches need real
 * fan-out/fan-in) with a functional forward pass.
 *
 * Weights are synthetic — this substitutes for the pre-trained Caffe
 * Model Zoo weights the paper used (see DESIGN.md) — generated
 * lazily from a per-node seeded stream with fan-in-scaled Gaussian
 * initialisation. calibrate() then runs one forward pass adjusting
 * each conv/fc node's bias so its post-ReLU output hits the node's
 * target zero fraction, giving the functional engine the same
 * sparsity regime the timing traces use.
 */

#ifndef CNV_NN_NETWORK_H
#define CNV_NN_NETWORK_H

#include <optional>
#include <string>
#include <vector>

#include "core/sync.h"
#include "nn/layer.h"
#include "sim/rng.h"
#include "tensor/neuron_tensor.h"

namespace cnv::nn {

/** Per-layer dynamic pruning thresholds (raw fixed-point units). */
struct PruneConfig
{
    /**
     * Threshold per conv node, indexed by conv order (first conv
     * layer first). The first conv layer's threshold is ignored:
     * CNV processes conv1 in conventional mode. Missing entries
     * default to 0 (prune nothing beyond exact zeros).
     */
    std::vector<std::int32_t> thresholds;

    std::int32_t
    forConvIndex(std::size_t i) const
    {
        return i < thresholds.size() ? thresholds[i] : 0;
    }
};

/** One node of the network graph. */
struct Node
{
    NodeKind kind = NodeKind::Input;
    std::string name;
    std::vector<int> inputs;      ///< producer node ids
    tensor::Shape3 inShape;       ///< concatenated input shape
    tensor::Shape3 outShape;

    // Parameters (valid depending on kind).
    ConvParams conv;
    PoolParams pool;
    LrnParams lrnParams;
    FcParams fc;

    /** Index among conv nodes (0 = first conv layer), -1 otherwise. */
    int convIndex = -1;

    /** Target post-activation zero fraction for calibration. */
    double outputZeroTarget = 0.0;

    std::size_t macs() const;
    std::size_t synapses() const;
};

/** Options controlling a forward pass. */
struct ForwardOptions
{
    /**
     * Dynamic pruning applied to each conv node's *output* as it is
     * encoded (Section V-E): values with |v| < threshold become
     * zero before feeding downstream layers.
     */
    const PruneConfig *prune = nullptr;

    /** Keep every node's output (otherwise only what's still needed). */
    bool keepAll = false;
};

/** Result of a forward pass. */
struct ForwardResult
{
    /** Output tensor per node id (empty optional if not kept). */
    std::vector<std::optional<tensor::NeuronTensor>> outputs;
    /** The terminal node's output. */
    tensor::NeuronTensor final;
    /** Pre-softmax logits (equals `final` when no softmax exists). */
    tensor::NeuronTensor logits;
    /** Top-1 class if the network ends in softmax/fc, else -1. */
    int top1 = -1;
};

/**
 * A DNN as a DAG of nodes. Build with the add* methods (they
 * validate shapes eagerly), then run with forward().
 */
class Network
{
  public:
    /** @param seed Root seed for all synthetic weights. */
    Network(std::string name, std::uint64_t seed);

    const std::string &name() const { return name_; }

    int addInput(tensor::Shape3 shape);
    int addConv(const std::string &name, int input, ConvParams p);
    int addPool(const std::string &name, int input, PoolParams p);
    int addLrn(const std::string &name, int input, LrnParams p);
    int addFc(const std::string &name, int input, FcParams p);
    int addConcat(const std::string &name, const std::vector<int> &inputs);
    int addSoftmax(const std::string &name, int input);

    const std::vector<Node> &nodes() const { return nodes_; }
    const Node &node(int id) const { return nodes_.at(id); }
    int nodeCount() const { return static_cast<int>(nodes_.size()); }

    /** Ids of conv nodes in conv-index order. */
    const std::vector<int> &convNodeIds() const { return convNodes_; }
    int convLayerCount() const { return static_cast<int>(convNodes_.size()); }

    /** Total conv multiply operations (all conv nodes). */
    std::size_t totalConvMacs() const;

    /**
     * Run the functional network.
     * Weights are materialised on first use; call calibrate() first
     * if sparsity-realistic activations matter.
     */
    ForwardResult forward(const tensor::NeuronTensor &input,
                          const ForwardOptions &opts = {}) const;

    /**
     * Calibrate conv/fc biases so each node's post-ReLU output zero
     * fraction approaches its outputZeroTarget, using one forward
     * pass over a synthetic calibration input. Idempotent enough
     * for repeated calls; must precede accuracy experiments.
     */
    void calibrate();

    /** True once calibrate() has run. */
    bool calibrated() const { return calibrated_; }

    /**
     * Default node-output sparsity targets: propagate each conv
     * node's consumers' inputZeroFraction backwards through
     * ReLU/LRN/pool/concat (max pooling concentrates non-zeros, so
     * the pre-pool target is raised accordingly). Called
     * automatically by zoo builders after construction.
     */
    void deriveOutputTargets();

    /** Adjust a conv node's input-sparsity target (zoo calibration). */
    void setConvInputZeroFraction(int convIndex, double zf);

    /** Weights of a node (materialising them if needed). */
    const tensor::FilterBank &weightsOf(int id) const;
    const std::vector<tensor::Fixed16> &biasOf(int id) const;

  private:
    int addNode(Node n);
    /** Generate node `id`'s weights/biases if not yet done. Callers
     *  hold the materialize mutex (proved by -Wthread-safety). */
    void materializeLocked(int id) const
        CNV_REQUIRES(materializeMutex_.m);

    std::string name_;
    std::uint64_t seed_;
    std::vector<Node> nodes_;
    std::vector<int> convNodes_;
    bool calibrated_ = false;

    // Lazily materialised parameters (logically const state). The
    // mutex makes materialisation safe from concurrent forward()
    // calls (sim::parallelFor image batches); copies and moves get
    // a fresh mutex so Network stays value-semantic.
    struct MemberMutex
    {
        MemberMutex() = default;
        MemberMutex(const MemberMutex &) {}
        MemberMutex(MemberMutex &&) noexcept {}
        MemberMutex &operator=(const MemberMutex &) { return *this; }
        MemberMutex &operator=(MemberMutex &&) noexcept { return *this; }
        core::Mutex m;
    };
    mutable MemberMutex materializeMutex_;
    mutable std::vector<tensor::FilterBank> weights_
        CNV_GUARDED_BY(materializeMutex_.m);
    mutable std::vector<std::vector<tensor::Fixed16>> biases_
        CNV_GUARDED_BY(materializeMutex_.m);
    mutable std::vector<bool> materialized_
        CNV_GUARDED_BY(materializeMutex_.m);
};

} // namespace cnv::nn

#endif // CNV_NN_NETWORK_H
