#include "nn/kernels.h"

#include <algorithm>
#include <cstring>

#include "core/simd.h"

namespace cnv::nn::kernels {

using tensor::Accum;
using tensor::FilterBank;
using tensor::Fixed16;
using tensor::NeuronTensor;
using tensor::Shape3;

namespace {

namespace simd = core::simd;

/** Filters sharing one neuron-vector load per inner iteration. */
constexpr int kFilterBlock = 4;

/**
 * Stage `in` into an arena-backed copy with a zero border wide
 * enough that every window position of the convolution lands on
 * valid storage: `padLeft`/`padTop` zeros before the data and
 * `padRight`/`padBottom` after it. Rows of the depth-fastest layout
 * are contiguous, so the copy is one memcpy per row.
 */
const Fixed16 *
padInput(const NeuronTensor &in, int padLeft, int padTop, int padRight,
         int padBottom, core::Arena &arena)
{
    const Shape3 s = in.shape();
    const int pw = s.x + padLeft + padRight;
    const int ph = s.y + padTop + padBottom;
    const std::size_t total = static_cast<std::size_t>(pw) * ph * s.z;
    Fixed16 *padded = arena.allocate<Fixed16>(total);
    std::fill(padded, padded + total, Fixed16{});
    const std::size_t rowElems = static_cast<std::size_t>(s.x) * s.z;
    for (int y = 0; y < s.y; ++y) {
        Fixed16 *dst = padded +
            (static_cast<std::size_t>(y + padTop) * pw + padLeft) * s.z;
        std::memcpy(dst, in.data() + static_cast<std::size_t>(y) * rowElems,
                    rowElems * sizeof(Fixed16));
    }
    return padded;
}

/**
 * acc[j] += dot of the neuron column with filter column j over
 * `depth` raw values, exactly; tails shorter than a vector load
 * zero-fill, contributing zero products.
 */
inline void
accumulateColumns(const Fixed16 *nCol,
                  const Fixed16 *const *wCols, int nFilters, int depth,
                  simd::DotAccum *acc)
{
    int z = 0;
    for (; z + simd::kLanes <= depth; z += simd::kLanes) {
        const simd::VecI16 nv = simd::loadFull(nCol + z);
        for (int j = 0; j < nFilters; ++j)
            acc[j].mulAcc(nv, simd::loadFull(wCols[j] + z));
    }
    if (z < depth) {
        const int tail = depth - z;
        const simd::VecI16 nv = simd::loadPartial(nCol + z, tail);
        for (int j = 0; j < nFilters; ++j)
            acc[j].mulAcc(nv, simd::loadPartial(wCols[j] + z, tail));
    }
}

} // namespace

Accum
dotRaw(const Fixed16 *a, const Fixed16 *b, std::size_t n)
{
    simd::DotAccum acc;
    std::size_t i = 0;
    const std::size_t lanes = static_cast<std::size_t>(simd::kLanes);
    for (; i + lanes <= n; i += lanes)
        acc.mulAcc(simd::loadFull(a + i), simd::loadFull(b + i));
    if (i < n) {
        const int tail = static_cast<int>(n - i);
        acc.mulAcc(simd::loadPartial(a + i, tail),
                   simd::loadPartial(b + i, tail));
    }
    return acc.total();
}

NeuronTensor
convForward(const NeuronTensor &in, const FilterBank &weights,
            const std::vector<Fixed16> &bias, const ConvParams &p,
            core::Arena &arena)
{
    const Shape3 inShape = in.shape();
    const Shape3 outShape = p.outputShape(inShape);
    const int depthPerGroup = inShape.z / p.groups;
    const int filtersPerGroup = p.filters / p.groups;

    // The rightmost/bottom window position can overhang the input by
    // more than `pad` under Caffe's ceil output sizing; size the
    // border to cover the actual extremes.
    const int maxIx = (outShape.x - 1) * p.stride - p.pad + p.fx - 1;
    const int maxIy = (outShape.y - 1) * p.stride - p.pad + p.fy - 1;
    const int padRight = std::max(0, maxIx - (inShape.x - 1));
    const int padBottom = std::max(0, maxIy - (inShape.y - 1));
    const bool needsPad = p.pad > 0 || padRight > 0 || padBottom > 0;

    const Fixed16 *base = in.data();
    int pw = inShape.x;
    if (needsPad) {
        base = padInput(in, p.pad, p.pad, padRight, padBottom, arena);
        pw = inShape.x + p.pad + padRight;
    }

    NeuronTensor out(outShape);
    const Fixed16 *wData = weights.data();
    const Fixed16 *wCols[kFilterBlock];
    simd::DotAccum acc[kFilterBlock];

    for (int oy = 0; oy < outShape.y; ++oy) {
        // In padded coordinates the window origin is never negative.
        const int iy0 = oy * p.stride - p.pad + (needsPad ? p.pad : 0);
        for (int ox = 0; ox < outShape.x; ++ox) {
            const int ix0 = ox * p.stride - p.pad + (needsPad ? p.pad : 0);
            for (int g = 0; g < p.groups; ++g) {
                const int zBase = g * depthPerGroup;
                const int fEnd = (g + 1) * filtersPerGroup;
                for (int f0 = g * filtersPerGroup; f0 < fEnd;
                     f0 += kFilterBlock) {
                    const int nb = std::min(kFilterBlock, fEnd - f0);
                    for (int j = 0; j < nb; ++j)
                        acc[j] = simd::DotAccum{};
                    for (int ky = 0; ky < p.fy; ++ky) {
                        const std::size_t rowBase =
                            (static_cast<std::size_t>(iy0 + ky) * pw + ix0) *
                            inShape.z;
                        for (int kx = 0; kx < p.fx; ++kx) {
                            const Fixed16 *nCol = base + rowBase +
                                static_cast<std::size_t>(kx) * inShape.z +
                                zBase;
                            for (int j = 0; j < nb; ++j) {
                                wCols[j] = wData +
                                    weights.index(f0 + j, kx, ky, 0);
                            }
                            accumulateColumns(nCol, wCols, nb,
                                              depthPerGroup, acc);
                        }
                    }
                    for (int j = 0; j < nb; ++j) {
                        Fixed16 v = Fixed16::productToFixed(
                            acc[j].total()) + bias[f0 + j];
                        if (p.relu)
                            v = v.relu();
                        out.at(ox, oy, f0 + j) = v;
                    }
                }
            }
        }
    }
    return out;
}

NeuronTensor
convForwardScalar(const NeuronTensor &in, const FilterBank &weights,
                  const std::vector<Fixed16> &bias, const ConvParams &p)
{
    const Shape3 inShape = in.shape();
    const Shape3 outShape = p.outputShape(inShape);
    const int depthPerGroup = inShape.z / p.groups;
    const int filtersPerGroup = p.filters / p.groups;

    NeuronTensor out(outShape);
    for (int oy = 0; oy < outShape.y; ++oy) {
        for (int ox = 0; ox < outShape.x; ++ox) {
            const int x0 = ox * p.stride - p.pad;
            const int y0 = oy * p.stride - p.pad;
            for (int f = 0; f < p.filters; ++f) {
                const int group = f / filtersPerGroup;
                const int zBase = group * depthPerGroup;
                Accum acc = 0;
                for (int ky = 0; ky < p.fy; ++ky) {
                    const int iy = y0 + ky;
                    if (iy < 0 || iy >= inShape.y)
                        continue; // zero padding contributes nothing
                    for (int kx = 0; kx < p.fx; ++kx) {
                        const int ix = x0 + kx;
                        if (ix < 0 || ix >= inShape.x)
                            continue;
                        const Fixed16 *nCol = in.column(ix, iy) + zBase;
                        const Fixed16 *sCol =
                            weights.data() + weights.index(f, kx, ky, 0);
                        for (int z = 0; z < depthPerGroup; ++z)
                            acc += mulRaw(nCol[z], sCol[z]);
                    }
                }
                Fixed16 v = Fixed16::productToFixed(acc) + bias[f];
                if (p.relu)
                    v = v.relu();
                out.at(ox, oy, f) = v;
            }
        }
    }
    return out;
}

NeuronTensor
fcForward(const NeuronTensor &in, const FilterBank &weights,
          const std::vector<Fixed16> &bias, const FcParams &p)
{
    const std::size_t volume = in.shape().volume();
    NeuronTensor out(1, 1, p.outputs);
    const Fixed16 *inData = in.data();
    for (int o = 0; o < p.outputs; ++o) {
        const Fixed16 *w =
            weights.data() + static_cast<std::size_t>(o) * volume;
        Fixed16 v =
            Fixed16::productToFixed(dotRaw(inData, w, volume)) + bias[o];
        if (p.relu)
            v = v.relu();
        out.at(0, 0, o) = v;
    }
    return out;
}

NeuronTensor
fcForwardScalar(const NeuronTensor &in, const FilterBank &weights,
                const std::vector<Fixed16> &bias, const FcParams &p)
{
    const std::size_t volume = in.shape().volume();
    NeuronTensor out(1, 1, p.outputs);
    const Fixed16 *inData = in.data();
    for (int o = 0; o < p.outputs; ++o) {
        const Fixed16 *w =
            weights.data() + static_cast<std::size_t>(o) * volume;
        Accum acc = 0;
        for (std::size_t i = 0; i < volume; ++i)
            acc += mulRaw(inData[i], w[i]);
        Fixed16 v = Fixed16::productToFixed(acc) + bias[o];
        if (p.relu)
            v = v.relu();
        out.at(0, 0, o) = v;
    }
    return out;
}

} // namespace cnv::nn::kernels
