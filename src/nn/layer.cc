#include "nn/layer.h"

#include <cmath>

#include "sim/logging.h"

namespace cnv::nn {

const char *
nodeKindName(NodeKind k)
{
    switch (k) {
      case NodeKind::Input: return "input";
      case NodeKind::Conv: return "conv";
      case NodeKind::Pool: return "pool";
      case NodeKind::Lrn: return "lrn";
      case NodeKind::Fc: return "fc";
      case NodeKind::Concat: return "concat";
      case NodeKind::Softmax: return "softmax";
    }
    return "?";
}

tensor::Shape3
ConvParams::outputShape(const tensor::Shape3 &in) const
{
    CNV_ASSERT(filters > 0 && fx > 0 && fy > 0 && stride > 0,
               "conv parameters not set");
    if (in.z % groups != 0 || filters % groups != 0)
        CNV_FATAL("conv groups={} must divide depth {} and filters {}",
                  groups, in.z, filters);
    const int ox = (in.x + 2 * pad - fx) / stride + 1;
    const int oy = (in.y + 2 * pad - fy) / stride + 1;
    if (ox <= 0 || oy <= 0)
        CNV_FATAL("conv output collapses: input {}x{} filter {}x{} stride {}",
                  in.x, in.y, fx, fy, stride);
    return {ox, oy, filters};
}

std::size_t
ConvParams::macs(const tensor::Shape3 &in) const
{
    const tensor::Shape3 out = outputShape(in);
    const std::size_t windows =
        static_cast<std::size_t>(out.x) * static_cast<std::size_t>(out.y);
    const std::size_t perWindowPerFilter =
        static_cast<std::size_t>(fx) * static_cast<std::size_t>(fy) *
        static_cast<std::size_t>(in.z / groups);
    return windows * perWindowPerFilter * static_cast<std::size_t>(filters);
}

std::size_t
ConvParams::synapses(const tensor::Shape3 &in) const
{
    return static_cast<std::size_t>(filters) * static_cast<std::size_t>(fx) *
           static_cast<std::size_t>(fy) *
           static_cast<std::size_t>(in.z / groups);
}

tensor::Shape3
PoolParams::outputShape(const tensor::Shape3 &in) const
{
    CNV_ASSERT(k > 0 && stride > 0, "pool parameters not set");
    auto ceilDim = [&](int dim) {
        int o = static_cast<int>(
            std::ceil(static_cast<double>(dim + 2 * pad - k) / stride)) + 1;
        // Caffe clips the last window so it starts inside the
        // (padded) input.
        if (pad > 0 && (o - 1) * stride >= dim + pad)
            --o;
        return o;
    };
    const int ox = ceilDim(in.x);
    const int oy = ceilDim(in.y);
    if (ox <= 0 || oy <= 0)
        CNV_FATAL("pool output collapses: input {}x{} window {} stride {}",
                  in.x, in.y, k, stride);
    return {ox, oy, in.z};
}

} // namespace cnv::nn
