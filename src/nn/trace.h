/**
 * @file
 * Synthetic activation traces — the stand-in for running Caffe over
 * ImageNet images (see DESIGN.md substitutions).
 *
 * CNV's timing depends only on layer geometry and on how zeros are
 * distributed across ZFNAf bricks, so traces are synthesised
 * directly per conv-layer input with: (1) a calibrated zero
 * fraction, (2) per-channel firing-rate diversity (some learned
 * features fire rarely — this drives brick-to-brick imbalance and
 * hence CNV stall time), and (3) a low-frequency spatial field
 * (features appear in parts of an image, not everywhere). Each
 * "image" is a distinct seed.
 */

#ifndef CNV_NN_TRACE_H
#define CNV_NN_TRACE_H

#include <cstdint>
#include <vector>

#include "nn/network.h"
#include "sim/rng.h"
#include "tensor/neuron_tensor.h"

namespace cnv::nn {

/** Statistical model of one layer-input activation tensor. */
struct SparsityModel
{
    /** Target fraction of exactly-zero neurons. */
    double zeroFraction = 0.44;
    /** Lognormal sigma of per-channel firing-rate multipliers. */
    double channelDispersion = 0.35;
    /** Lognormal sigma of the coarse spatial field. */
    double spatialDispersion = 0.30;
    /** Spatial field grid resolution (grid x grid control points). */
    int spatialGrid = 5;
    /** Mean non-zero magnitude in raw Q7.8 units. */
    double valueScaleRaw = 96.0;
    /** Lognormal sigma of non-zero magnitudes. */
    double valueSigma = 0.9;
};

/**
 * Synthesise an activation tensor with the model's statistics.
 * Non-zero values are strictly positive (post-ReLU data).
 */
tensor::NeuronTensor synthesizeActivations(tensor::Shape3 shape,
                                           const SparsityModel &model,
                                           sim::Rng &rng);

/**
 * A depth range of a conv layer's input attributed to the node that
 * produced it (through pool/LRN/concat pass-throughs).
 */
struct TraceSegment
{
    int depth = 0;
    /** Producing conv layer's conv index; -1 for the raw image. */
    int producerConvIndex = -1;
};

/** Decompose a conv node's input depth into producer segments. */
std::vector<TraceSegment> inputSegments(const Network &net, int convNodeId);

/**
 * Synthesise the input tensor of one conv layer for one "image".
 *
 * Segments fed by the raw image are dense; segments fed by earlier
 * conv layers use the consumer's calibrated inputZeroFraction, and
 * the producer's pruning threshold (if any) zeroes small values —
 * exactly what the encoder would have written to NM.
 */
tensor::NeuronTensor synthesizeConvInput(const Network &net, int convNodeId,
                                         std::uint64_t imageSeed,
                                         const PruneConfig *prune = nullptr);

/**
 * Apply dynamic-pruning thresholds to a conv layer's input tensor,
 * segment by segment: each depth range is pruned with its producing
 * layer's threshold, exactly as that producer's encoder would have
 * written it to NM. Used both by the synthetic trace generator and
 * for externally supplied (real-framework) traces.
 */
void applyPruneToConvInput(const Network &net, int convNodeId,
                           tensor::NeuronTensor &input,
                           const PruneConfig &prune);

/**
 * Synthesise one input "image": positive values with a strong
 * per-image low-frequency structure, so that different seeds
 * genuinely excite different features and functional networks
 * produce varied top-1 predictions (needed by the accuracy study).
 */
tensor::NeuronTensor synthesizeImage(tensor::Shape3 shape,
                                     std::uint64_t seed);

/**
 * Measured fraction of conv multiplication operands that are zero
 * for one image (Figure 1's metric): MAC-weighted input zero
 * fraction across all conv layers.
 */
double zeroOperandFraction(const Network &net, std::uint64_t imageSeed,
                           const PruneConfig *prune = nullptr);

} // namespace cnv::nn

#endif // CNV_NN_TRACE_H
