/**
 * @file
 * Layer parameter records shared by the functional engine, the
 * trace generator, and the timing models.
 *
 * Geometry follows Section III-A: a convolutional layer applies N
 * filters of Fx x Fy x i synapses over an Ix x Iy x i input with
 * stride S, producing an Ox x Oy x N output,
 * Ox = (Ix - Fx)/S + 1 (plus padding). Grouped convolutions (used
 * by alex/cnnM) split both input features and filters into
 * independent groups.
 */

#ifndef CNV_NN_LAYER_H
#define CNV_NN_LAYER_H

#include <cstddef>
#include <string>

#include "tensor/tensor.h"

namespace cnv::nn {

/** Kinds of network nodes. */
enum class NodeKind
{
    Input,
    Conv,      ///< convolution (+ optional fused ReLU)
    Pool,      ///< max or average pooling
    Lrn,       ///< local response normalisation (across channels)
    Fc,        ///< fully connected (+ optional fused ReLU)
    Concat,    ///< depth concatenation (inception modules)
    Softmax,   ///< final classifier normalisation
};

/** Human-readable node kind name. */
const char *nodeKindName(NodeKind k);

/** Convolution geometry and options. */
struct ConvParams
{
    int filters = 0;     ///< N
    int fx = 0;          ///< filter width
    int fy = 0;          ///< filter height
    int stride = 1;      ///< S
    int pad = 0;         ///< symmetric zero padding
    int groups = 1;      ///< grouped convolution factor
    bool relu = true;    ///< fused rectifier (Section II)

    /**
     * Target fraction of *input* neurons that are zero, used by the
     * trace generator; the calibration pass scales these so the
     * op-weighted network average matches the paper's Figure 1.
     */
    double inputZeroFraction = 0.0;

    /** Computed output shape for the given input. */
    tensor::Shape3 outputShape(const tensor::Shape3 &in) const;

    /** Multiply operations performed by this layer. */
    std::size_t macs(const tensor::Shape3 &in) const;

    /** Synapse count (weights). */
    std::size_t synapses(const tensor::Shape3 &in) const;
};

/** Pooling geometry. */
struct PoolParams
{
    enum class Op { Max, Avg };

    Op op = Op::Max;
    int k = 2;        ///< window size (k x k)
    int stride = 2;
    int pad = 0;

    /**
     * Caffe-compatible output shape: pooling rounds *up* so no input
     * is dropped (convolution rounds down).
     */
    tensor::Shape3 outputShape(const tensor::Shape3 &in) const;
};

/** Local response normalisation across channels (AlexNet-style). */
struct LrnParams
{
    int localSize = 5;
    double alpha = 1e-4;
    double beta = 0.75;
    double k = 1.0;
};

/** Fully-connected layer. */
struct FcParams
{
    int outputs = 0;
    bool relu = true;

    std::size_t
    macs(const tensor::Shape3 &in) const
    {
        return in.volume() * static_cast<std::size_t>(outputs);
    }

    std::size_t
    synapses(const tensor::Shape3 &in) const
    {
        return macs(in);
    }
};

} // namespace cnv::nn

#endif // CNV_NN_LAYER_H
