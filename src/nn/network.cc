#include "nn/network.h"

#include <algorithm>
#include <cmath>

#include "core/arena.h"
#include "nn/ops.h"
#include "nn/trace.h"
#include "sim/logging.h"

namespace cnv::nn {

using tensor::FilterBank;
using tensor::Fixed16;
using tensor::NeuronTensor;
using tensor::Shape3;

std::size_t
Node::macs() const
{
    switch (kind) {
      case NodeKind::Conv:
        return conv.macs(inShape);
      case NodeKind::Fc:
        return fc.macs(inShape);
      default:
        return 0;
    }
}

std::size_t
Node::synapses() const
{
    switch (kind) {
      case NodeKind::Conv:
        return conv.synapses(inShape);
      case NodeKind::Fc:
        return fc.synapses(inShape);
      default:
        return 0;
    }
}

Network::Network(std::string name, std::uint64_t seed)
    : name_(std::move(name)), seed_(seed)
{
}

int
Network::addNode(Node n)
{
    // Inputs must already exist: construction order is a valid
    // topological order, which forward() relies on.
    for (int in : n.inputs) {
        if (in < 0 || in >= nodeCount())
            CNV_FATAL("node '{}' references unknown input {}", n.name, in);
    }
    nodes_.push_back(std::move(n));
    // Graph construction is single-threaded by contract, but the
    // parameter slots are lock-guarded state, so take the mutex for
    // the appends rather than exempting them from the analysis.
    const core::MutexLock lock(materializeMutex_.m);
    weights_.emplace_back();
    biases_.emplace_back();
    materialized_.push_back(false);
    return nodeCount() - 1;
}

int
Network::addInput(Shape3 shape)
{
    Node n;
    n.kind = NodeKind::Input;
    n.name = "input";
    n.inShape = shape;
    n.outShape = shape;
    return addNode(std::move(n));
}

int
Network::addConv(const std::string &name, int input, ConvParams p)
{
    Node n;
    n.kind = NodeKind::Conv;
    n.name = name;
    n.inputs = {input};
    n.inShape = node(input).outShape;
    n.conv = p;
    n.outShape = p.outputShape(n.inShape);
    n.convIndex = static_cast<int>(convNodes_.size());
    const int id = addNode(std::move(n));
    convNodes_.push_back(id);
    return id;
}

int
Network::addPool(const std::string &name, int input, PoolParams p)
{
    Node n;
    n.kind = NodeKind::Pool;
    n.name = name;
    n.inputs = {input};
    n.inShape = node(input).outShape;
    n.pool = p;
    n.outShape = p.outputShape(n.inShape);
    return addNode(std::move(n));
}

int
Network::addLrn(const std::string &name, int input, LrnParams p)
{
    Node n;
    n.kind = NodeKind::Lrn;
    n.name = name;
    n.inputs = {input};
    n.inShape = node(input).outShape;
    n.lrnParams = p;
    n.outShape = n.inShape;
    return addNode(std::move(n));
}

int
Network::addFc(const std::string &name, int input, FcParams p)
{
    Node n;
    n.kind = NodeKind::Fc;
    n.name = name;
    n.inputs = {input};
    n.inShape = node(input).outShape;
    n.fc = p;
    n.outShape = {1, 1, p.outputs};
    return addNode(std::move(n));
}

int
Network::addConcat(const std::string &name, const std::vector<int> &inputs)
{
    CNV_ASSERT(!inputs.empty(), "concat needs inputs");
    Node n;
    n.kind = NodeKind::Concat;
    n.name = name;
    n.inputs = inputs;
    const Shape3 first = node(inputs[0]).outShape;
    int depth = 0;
    for (int in : inputs) {
        const Shape3 s = node(in).outShape;
        if (s.x != first.x || s.y != first.y)
            CNV_FATAL("concat '{}' inputs disagree on spatial size", name);
        depth += s.z;
    }
    n.inShape = {first.x, first.y, depth};
    n.outShape = n.inShape;
    return addNode(std::move(n));
}

int
Network::addSoftmax(const std::string &name, int input)
{
    Node n;
    n.kind = NodeKind::Softmax;
    n.name = name;
    n.inputs = {input};
    n.inShape = node(input).outShape;
    n.outShape = n.inShape;
    return addNode(std::move(n));
}

std::size_t
Network::totalConvMacs() const
{
    std::size_t total = 0;
    for (int id : convNodes_)
        total += node(id).macs();
    return total;
}

void
Network::materializeLocked(int id) const
{
    if (materialized_[id])
        return;
    const Node &n = nodes_[id];
    sim::Rng rng = sim::Rng(seed_).fork(0xabcdULL + id);

    auto gaussianWeights = [&](int count, int fanIn, FilterBank &out,
                               Fixed16 *data) {
        // He-style initialisation keeps activation magnitudes stable
        // through deep stacks; quantised to Q7.8.
        (void)out;
        const double sigma = std::sqrt(2.0 / std::max(1, fanIn));
        for (int i = 0; i < count; ++i)
            data[i] = Fixed16::fromDouble(rng.normal(0.0, sigma));
    };

    if (n.kind == NodeKind::Conv) {
        const int depth = n.inShape.z / n.conv.groups;
        weights_[id] = FilterBank(n.conv.filters, n.conv.fx, n.conv.fy, depth);
        gaussianWeights(static_cast<int>(weights_[id].size()),
                        n.conv.fx * n.conv.fy * depth, weights_[id],
                        weights_[id].data());
        biases_[id].assign(n.conv.filters, Fixed16{});
    } else if (n.kind == NodeKind::Fc) {
        const Shape3 in = n.inShape;
        weights_[id] = FilterBank(n.fc.outputs, in.x, in.y, in.z);
        gaussianWeights(static_cast<int>(weights_[id].size()),
                        static_cast<int>(in.volume()), weights_[id],
                        weights_[id].data());
        biases_[id].assign(n.fc.outputs, Fixed16{});
    }
    materialized_[id] = true;
}

const FilterBank &
Network::weightsOf(int id) const
{
    // One critical section covers materialisation and the read
    // (previously the lock was dropped between the two, which the
    // thread-safety analysis rejects). The returned reference is
    // safe after unlock: a materialised entry is never written
    // again.
    const core::MutexLock lock(materializeMutex_.m);
    materializeLocked(id);
    return weights_[id];
}

const std::vector<Fixed16> &
Network::biasOf(int id) const
{
    const core::MutexLock lock(materializeMutex_.m);
    materializeLocked(id);
    return biases_[id];
}

namespace {

/** Apply |v| < threshold -> 0 in place (the encoder's pruning). */
void
applyThreshold(NeuronTensor &t, std::int32_t threshold)
{
    if (threshold <= 0)
        return;
    for (Fixed16 &v : t) {
        if (v.rawAbs() < threshold)
            v = Fixed16{};
    }
}

/**
 * Calibration for one channel: a bias that zeroes the target
 * fraction of values under ReLU, and a weight gain that restores a
 * healthy surviving magnitude (the quantile shift alone would decay
 * activations layer over layer until quantisation noise dominates).
 */
struct ChannelCal
{
    double gain = 1.0;
    double bias = 0.0;
};

ChannelCal
calibrateChannel(std::vector<double> &values, double zeroTarget,
                 double targetMean)
{
    ChannelCal cal;
    if (values.empty())
        return cal;
    const double q = std::clamp(zeroTarget, 0.0, 0.999);
    const std::size_t k = static_cast<std::size_t>(
        q * static_cast<double>(values.size() - 1));
    std::nth_element(values.begin(), values.begin() + k, values.end());
    const double quant = values[k];

    double survivorSum = 0.0;
    std::size_t survivors = 0;
    for (double v : values) {
        if (v > quant) {
            survivorSum += v - quant;
            ++survivors;
        }
    }
    const double mean = survivors ? survivorSum / survivors : 0.0;
    cal.gain = mean > 1e-6 ? std::clamp(targetMean / mean, 0.5, 8.0)
                           : 1.0;
    cal.bias = -quant * cal.gain;
    return cal;
}

} // namespace

ForwardResult
Network::forward(const NeuronTensor &input, const ForwardOptions &opts) const
{
    ForwardResult result;
    result.outputs.resize(nodes_.size());

    // One arena serves every conv layer's staging buffers; reset
    // per layer keeps the footprint at the largest single layer.
    core::Arena arena;

    // Remaining-use counts let us drop intermediate tensors early.
    std::vector<int> uses(nodes_.size(), 0);
    for (const Node &n : nodes_)
        for (int in : n.inputs)
            ++uses[in];

    for (int id = 0; id < nodeCount(); ++id) {
        const Node &n = nodes_[id];
        NeuronTensor out;
        switch (n.kind) {
          case NodeKind::Input:
            if (input.shape() != n.outShape)
                CNV_FATAL("network '{}' expects input {}x{}x{}", name_,
                          n.outShape.x, n.outShape.y, n.outShape.z);
            out = input;
            break;
          case NodeKind::Conv:
            arena.reset();
            out = conv2d(*result.outputs[n.inputs[0]], weightsOf(id),
                         biasOf(id), n.conv, arena);
            if (opts.prune) {
                applyThreshold(
                    out, opts.prune->forConvIndex(
                             static_cast<std::size_t>(n.convIndex)));
            }
            break;
          case NodeKind::Pool:
            out = pool2d(*result.outputs[n.inputs[0]], n.pool);
            break;
          case NodeKind::Lrn:
            out = lrn(*result.outputs[n.inputs[0]], n.lrnParams);
            break;
          case NodeKind::Fc:
            out = fullyConnected(*result.outputs[n.inputs[0]], weightsOf(id),
                                 biasOf(id), n.fc);
            break;
          case NodeKind::Concat: {
            std::vector<const NeuronTensor *> ins;
            ins.reserve(n.inputs.size());
            for (int in : n.inputs)
                ins.push_back(&*result.outputs[in]);
            out = concat(ins);
            break;
          }
          case NodeKind::Softmax:
            // Top-1 is decided on the logits: the quantised softmax
            // output can flatten small differences.
            result.logits = *result.outputs[n.inputs[0]];
            result.top1 = argmax(result.logits);
            out = softmax(*result.outputs[n.inputs[0]]);
            break;
        }
        result.outputs[id] = std::move(out);

        if (!opts.keepAll) {
            for (int in : n.inputs) {
                if (--uses[in] == 0)
                    result.outputs[in].reset();
            }
        }
    }

    result.final = *result.outputs.back();
    if (result.top1 < 0) {
        result.logits = result.final;
        if (result.final.shape().x == 1 && result.final.shape().y == 1)
            result.top1 = argmax(result.final);
    }
    if (!opts.keepAll) {
        // The terminal tensor is preserved in `final`.
        result.outputs.back().reset();
    }
    return result;
}

void
Network::calibrate()
{
    // Forward passes over a small batch of synthetic calibration
    // images; at each conv/fc node, per-filter biases (and weight
    // gains) are set so the post-ReLU zero fraction matches the
    // node's target at a healthy magnitude. A batch is needed so
    // layers with tiny spatial extent still see enough samples per
    // filter for a meaningful quantile.
    constexpr int kSamples = 6;
    using Batch = std::vector<NeuronTensor>;

    const Shape3 inShape = nodes_.at(0).outShape;
    Batch inputBatch;
    for (int s = 0; s < kSamples; ++s)
        inputBatch.push_back(synthesizeImage(inShape, seed_ * 977 + s));

    std::vector<std::optional<Batch>> outputs(nodes_.size());
    std::vector<int> uses(nodes_.size(), 0);
    for (const Node &n : nodes_)
        for (int in : n.inputs)
            ++uses[in];

    // Calibration rewrites weights_/biases_ in place, so the whole
    // node sweep runs under the materialize mutex (calibrate is a
    // setup-phase call; nothing else runs concurrently, but the
    // lock discipline is machine-checked either way).
    const core::MutexLock lock(materializeMutex_.m);
    core::Arena arena;
    for (int id = 0; id < nodeCount(); ++id) {
        Node &n = nodes_[id];
        Batch out(kSamples);
        switch (n.kind) {
          case NodeKind::Input:
            out = inputBatch;
            break;
          case NodeKind::Conv: {
            materializeLocked(id);
            // Pre-activations with zero bias, no ReLU.
            ConvParams raw = n.conv;
            raw.relu = false;
            std::vector<Fixed16> zeroBias(n.conv.filters, Fixed16{});
            Batch pre(kSamples);
            for (int s = 0; s < kSamples; ++s) {
                arena.reset();
                pre[s] = conv2d((*outputs[n.inputs[0]])[s], weights_[id],
                                zeroBias, raw, arena);
            }
            sim::Rng chanRng = sim::Rng(seed_).fork(0xc0de + id);
            const int fDepth = weights_[id].shape().z;
            const int fArea = n.conv.fx * n.conv.fy * fDepth;
            std::vector<double> vals;
            for (int f = 0; f < n.conv.filters; ++f) {
                vals.clear();
                for (int s = 0; s < kSamples; ++s)
                    for (int y = 0; y < pre[s].shape().y; ++y)
                        for (int x = 0; x < pre[s].shape().x; ++x)
                            vals.push_back(pre[s].at(x, y, f).toDouble());
                // Channel-rate diversity: some features fire rarely.
                const double target = std::clamp(
                    n.outputZeroTarget + chanRng.normal(0.0, 0.12),
                    0.02, 0.95);
                const ChannelCal cal =
                    calibrateChannel(vals, target, 0.45);
                biases_[id][f] = Fixed16::fromDouble(cal.bias);
                Fixed16 *w = weights_[id].data() +
                             static_cast<std::size_t>(f) * fArea;
                for (int i = 0; i < fArea; ++i)
                    w[i] = Fixed16::fromDouble(w[i].toDouble() * cal.gain);
            }
            // Recompute with the stored (scaled, quantised) weights
            // so calibration sees exactly what forward() will.
            for (int s = 0; s < kSamples; ++s) {
                arena.reset();
                out[s] = conv2d((*outputs[n.inputs[0]])[s], weights_[id],
                                biases_[id], n.conv, arena);
            }
            break;
          }
          case NodeKind::Fc: {
            materializeLocked(id);
            FcParams raw = n.fc;
            raw.relu = false;
            std::vector<Fixed16> zeroBias(n.fc.outputs, Fixed16{});
            Batch pre(kSamples);
            for (int s = 0; s < kSamples; ++s)
                pre[s] = fullyConnected((*outputs[n.inputs[0]])[s],
                                        weights_[id], zeroBias, raw);
            // FC sparsity does not affect conv timing; a shared
            // shift-and-gain keeps logits in a healthy range.
            std::vector<double> vals;
            for (int s = 0; s < kSamples; ++s)
                for (int f = 0; f < n.fc.outputs; ++f)
                    vals.push_back(pre[s].at(0, 0, f).toDouble());
            const ChannelCal cal =
                calibrateChannel(vals, n.outputZeroTarget, 0.45);
            const Fixed16 bias = Fixed16::fromDouble(cal.bias);
            for (Fixed16 &b : biases_[id])
                b = bias;
            for (std::size_t i = 0; i < weights_[id].size(); ++i) {
                Fixed16 &w = weights_[id].data()[i];
                w = Fixed16::fromDouble(w.toDouble() * cal.gain);
            }
            for (int s = 0; s < kSamples; ++s)
                out[s] = fullyConnected((*outputs[n.inputs[0]])[s],
                                        weights_[id], biases_[id], n.fc);
            break;
          }
          case NodeKind::Pool:
            for (int s = 0; s < kSamples; ++s)
                out[s] = pool2d((*outputs[n.inputs[0]])[s], n.pool);
            break;
          case NodeKind::Lrn:
            for (int s = 0; s < kSamples; ++s)
                out[s] = lrn((*outputs[n.inputs[0]])[s], n.lrnParams);
            break;
          case NodeKind::Concat:
            for (int s = 0; s < kSamples; ++s) {
                std::vector<const NeuronTensor *> ins;
                for (int in : n.inputs)
                    ins.push_back(&(*outputs[in])[s]);
                out[s] = concat(ins);
            }
            break;
          case NodeKind::Softmax:
            for (int s = 0; s < kSamples; ++s)
                out[s] = softmax((*outputs[n.inputs[0]])[s]);
            break;
        }
        outputs[id] = std::move(out);
        for (int in : n.inputs) {
            if (--uses[in] == 0)
                outputs[in].reset();
        }
    }
    calibrated_ = true;
}

void
Network::setConvInputZeroFraction(int convIndex, double zf)
{
    CNV_ASSERT(convIndex >= 0 && convIndex < convLayerCount(),
               "conv index {} out of range", convIndex);
    nodes_[convNodes_[convIndex]].conv.inputZeroFraction = zf;
}

void
Network::deriveOutputTargets()
{
    // Walk consumers of each node, carrying an adjustment factor for
    // intervening max pools (pooling concentrates non-zeros; with
    // spatially correlated activations the effective independent
    // window is ~k rather than k^2 — a documented heuristic).
    std::vector<std::vector<int>> consumers(nodes_.size());
    for (int id = 0; id < nodeCount(); ++id)
        for (int in : nodes_[id].inputs)
            consumers[in].push_back(id);

    for (int cid : convNodes_) {
        // Depth-first through pass-through nodes to the next conv.
        double sum = 0.0;
        int found = 0;
        std::vector<std::pair<int, double>> stack;
        for (int c : consumers[cid])
            stack.emplace_back(c, 1.0);
        while (!stack.empty()) {
            auto [id, poolWindow] = stack.back();
            stack.pop_back();
            const Node &n = nodes_[id];
            if (n.kind == NodeKind::Conv) {
                // Post-pool sparsity ~ p^w, so the pre-pool target
                // for a consumer wanting t is t^(1/w).
                sum += std::pow(n.conv.inputZeroFraction, 1.0 / poolWindow);
                ++found;
                continue;
            }
            double nextExp = poolWindow;
            if (n.kind == NodeKind::Pool && n.pool.op == PoolParams::Op::Max)
                nextExp = poolWindow * n.pool.k;
            if (n.kind == NodeKind::Pool && n.pool.op == PoolParams::Op::Avg)
                continue; // averaging destroys zeros; stop here
            for (int c : consumers[id])
                stack.emplace_back(c, nextExp);
        }
        Node &me = nodes_[cid];
        if (found > 0)
            me.outputZeroTarget = sum / found;
        else
            me.outputZeroTarget = me.conv.inputZeroFraction;
    }
}

} // namespace cnv::nn
