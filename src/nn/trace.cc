#include "nn/trace.h"

#include <algorithm>
#include <cmath>

#include "sim/logging.h"

namespace cnv::nn {

using tensor::Fixed16;
using tensor::NeuronTensor;
using tensor::Shape3;

namespace {

/** Bilinearly interpolated lognormal field over the (x, y) plane. */
class SpatialField
{
  public:
    SpatialField(int grid, double sigma, sim::Rng &rng) : grid_(grid)
    {
        values_.resize(static_cast<std::size_t>(grid) * grid);
        for (double &v : values_)
            v = std::exp(rng.normal(0.0, sigma));
    }

    double
    at(double u, double v) const
    {
        // u, v in [0, 1]; map onto the control grid.
        const double gx = u * (grid_ - 1);
        const double gy = v * (grid_ - 1);
        const int x0 = std::min(static_cast<int>(gx), grid_ - 2);
        const int y0 = std::min(static_cast<int>(gy), grid_ - 2);
        const double fx = gx - x0;
        const double fy = gy - y0;
        const double a = cell(x0, y0) * (1 - fx) + cell(x0 + 1, y0) * fx;
        const double b =
            cell(x0, y0 + 1) * (1 - fx) + cell(x0 + 1, y0 + 1) * fx;
        return a * (1 - fy) + b * fy;
    }

  private:
    double cell(int x, int y) const { return values_[y * grid_ + x]; }

    int grid_;
    std::vector<double> values_;
};

/** Draw a non-zero post-ReLU magnitude in raw units. */
Fixed16
drawValue(const SparsityModel &m, sim::Rng &rng)
{
    const double mu = std::log(m.valueScaleRaw) - 0.5 * m.valueSigma * m.valueSigma;
    double raw = std::exp(rng.normal(mu, m.valueSigma));
    raw = std::clamp(raw, 1.0, 32767.0);
    return Fixed16::fromRaw(static_cast<std::int16_t>(std::lround(raw)));
}

} // namespace

NeuronTensor
synthesizeActivations(Shape3 shape, const SparsityModel &model, sim::Rng &rng)
{
    NeuronTensor out(shape);
    const double active = 1.0 - std::clamp(model.zeroFraction, 0.0, 1.0);
    if (active <= 0.0) {
        out.fill(Fixed16{});
        return out;
    }
    if (active >= 1.0) {
        for (Fixed16 &v : out)
            v = drawValue(model, rng);
        return out;
    }

    // Per-channel firing-rate multipliers and a coarse spatial field.
    std::vector<double> channelRate(shape.z);
    for (double &r : channelRate)
        r = std::exp(rng.normal(0.0, model.channelDispersion));
    const int grid = std::max(2, model.spatialGrid);
    SpatialField field(grid, model.spatialDispersion, rng);

    // Unnormalised activity probabilities.
    std::vector<double> prob(shape.volume());
    std::size_t idx = 0;
    for (int y = 0; y < shape.y; ++y) {
        const double v = shape.y > 1
            ? static_cast<double>(y) / (shape.y - 1) : 0.5;
        for (int x = 0; x < shape.x; ++x) {
            const double u = shape.x > 1
                ? static_cast<double>(x) / (shape.x - 1) : 0.5;
            const double spatial = field.at(u, v);
            for (int z = 0; z < shape.z; ++z)
                prob[idx++] = spatial * channelRate[z];
        }
    }

    // Normalise so the mean activity probability matches the target;
    // clamping to [0,1] shifts the mean, so iterate a few times.
    double scale = 1.0;
    for (int iter = 0; iter < 4; ++iter) {
        double mean = 0.0;
        for (double p : prob)
            mean += std::min(1.0, p * scale * active);
        mean /= static_cast<double>(prob.size());
        if (mean <= 0.0)
            break;
        scale *= active / mean;
    }

    idx = 0;
    for (Fixed16 &v : out) {
        const double p = std::min(1.0, prob[idx++] * scale * active);
        v = rng.bernoulli(p) ? drawValue(model, rng) : Fixed16{};
    }
    return out;
}

NeuronTensor
synthesizeImage(Shape3 shape, std::uint64_t seed)
{
    sim::Rng rng(seed ^ 0x1a2b3c4dULL);
    // Coarse per-image content field plus per-channel gains: two
    // images differ in *where* and *in which channels* they have
    // energy, not just in pixel noise.
    SpatialField field(4, 0.7, rng);
    std::vector<double> channelGain(shape.z);
    for (double &g : channelGain)
        g = std::exp(rng.normal(0.0, 0.3));

    // Raw draw, then a global normalisation to constant mean energy
    // (images differ in structure, not overall brightness — fixed
    // biases downstream would otherwise amplify energy differences).
    std::vector<double> raw(shape.volume());
    std::size_t idx = 0;
    double sum = 0.0;
    for (int y = 0; y < shape.y; ++y) {
        const double v = shape.y > 1
            ? static_cast<double>(y) / (shape.y - 1) : 0.5;
        for (int x = 0; x < shape.x; ++x) {
            const double u = shape.x > 1
                ? static_cast<double>(x) / (shape.x - 1) : 0.5;
            const double local = field.at(u, v);
            for (int z = 0; z < shape.z; ++z) {
                const double val = std::abs(rng.normal(0.4, 0.2)) * local *
                                   channelGain[z];
                raw[idx++] = val;
                sum += val;
            }
        }
    }
    const double mean = sum / static_cast<double>(raw.size());
    const double norm = mean > 1e-9 ? 0.4 / mean : 1.0;

    NeuronTensor out(shape);
    Fixed16 *data = out.data();
    for (std::size_t i = 0; i < raw.size(); ++i)
        data[i] = Fixed16::fromDouble(raw[i] * norm);
    return out;
}

std::vector<TraceSegment>
inputSegments(const Network &net, int convNodeId)
{
    const Node &conv = net.node(convNodeId);
    CNV_ASSERT(conv.kind == NodeKind::Conv, "inputSegments expects a conv");

    // Walk upstream through pass-through nodes, concatenating the
    // segments of concat inputs in order.
    std::vector<TraceSegment> result;
    auto walk = [&](auto &&self, int id) -> void {
        const Node &n = net.node(id);
        switch (n.kind) {
          case NodeKind::Input:
            result.push_back({n.outShape.z, -1});
            return;
          case NodeKind::Conv:
            result.push_back({n.outShape.z, n.convIndex});
            return;
          case NodeKind::Pool:
          case NodeKind::Lrn:
          case NodeKind::Softmax:
            self(self, n.inputs[0]);
            return;
          case NodeKind::Concat:
            for (int in : n.inputs)
                self(self, in);
            return;
          case NodeKind::Fc:
            result.push_back({n.outShape.z, -1});
            return;
        }
    };
    walk(walk, conv.inputs[0]);

    int total = 0;
    for (const TraceSegment &s : result)
        total += s.depth;
    CNV_ASSERT(total == conv.inShape.z,
               "segment depths {} != input depth {} for '{}'", total,
               conv.inShape.z, conv.name);
    return result;
}

void
applyPruneToConvInput(const Network &net, int convNodeId,
                      NeuronTensor &input, const PruneConfig &prune)
{
    const Node &conv = net.node(convNodeId);
    CNV_ASSERT(conv.kind == NodeKind::Conv,
               "applyPruneToConvInput needs a conv node");
    CNV_ASSERT(input.shape() == conv.inShape,
               "trace shape does not match the layer input");
    int zBase = 0;
    for (const TraceSegment &seg : inputSegments(net, convNodeId)) {
        const std::int32_t threshold = seg.producerConvIndex >= 0
            ? prune.forConvIndex(
                  static_cast<std::size_t>(seg.producerConvIndex))
            : 0;
        if (threshold > 0) {
            for (int y = 0; y < input.shape().y; ++y)
                for (int x = 0; x < input.shape().x; ++x)
                    for (int z = zBase; z < zBase + seg.depth; ++z) {
                        Fixed16 &v = input.at(x, y, z);
                        if (v.rawAbs() < threshold)
                            v = Fixed16{};
                    }
        }
        zBase += seg.depth;
    }
}

NeuronTensor
synthesizeConvInput(const Network &net, int convNodeId,
                    std::uint64_t imageSeed, const PruneConfig *prune)
{
    const Node &conv = net.node(convNodeId);
    CNV_ASSERT(conv.kind == NodeKind::Conv, "synthesizeConvInput needs conv");
    const Shape3 shape = conv.inShape;
    const std::vector<TraceSegment> segments = inputSegments(net, convNodeId);

    NeuronTensor out(shape);
    int zBase = 0;
    for (std::size_t si = 0; si < segments.size(); ++si) {
        const TraceSegment &seg = segments[si];
        // Independent stream per (image, conv layer, segment).
        sim::Rng rng = sim::Rng(imageSeed)
                           .fork(0x7a0000 + static_cast<std::uint64_t>(
                                                net.node(convNodeId).convIndex))
                           .fork(si);

        SparsityModel model;
        std::int32_t threshold = 0;
        if (seg.producerConvIndex < 0) {
            // Raw image data (or flattened FC data): essentially dense.
            model.zeroFraction = 0.01;
            model.channelDispersion = 0.05;
            model.spatialDispersion = 0.05;
        } else {
            model.zeroFraction = conv.conv.inputZeroFraction;
            if (prune) {
                threshold = prune->forConvIndex(
                    static_cast<std::size_t>(seg.producerConvIndex));
            }
        }

        NeuronTensor segTensor = synthesizeActivations(
            {shape.x, shape.y, seg.depth}, model, rng);
        for (int y = 0; y < shape.y; ++y) {
            for (int x = 0; x < shape.x; ++x) {
                for (int z = 0; z < seg.depth; ++z) {
                    Fixed16 v = segTensor.at(x, y, z);
                    if (threshold > 0 && v.rawAbs() < threshold)
                        v = Fixed16{};
                    out.at(x, y, zBase + z) = v;
                }
            }
        }
        zBase += seg.depth;
    }
    return out;
}

double
zeroOperandFraction(const Network &net, std::uint64_t imageSeed,
                    const PruneConfig *prune)
{
    double weightedZero = 0.0;
    double totalMacs = 0.0;
    for (int id : net.convNodeIds()) {
        const Node &n = net.node(id);
        const NeuronTensor in = synthesizeConvInput(net, id, imageSeed, prune);
        // Every input neuron participates in the same number of
        // products for a given layer, so the operand zero fraction
        // equals the tensor zero fraction, MAC-weighted per layer.
        const double zf = tensor::zeroFraction(in);
        const double macs = static_cast<double>(n.macs());
        weightedZero += zf * macs;
        totalMacs += macs;
    }
    return totalMacs > 0.0 ? weightedZero / totalMacs : 0.0;
}

} // namespace cnv::nn
