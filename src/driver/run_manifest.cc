#include "driver/run_manifest.h"

#include "sim/parallel.h"
#include "timing/network_model.h"

#ifndef CNV_GIT_SHA
#define CNV_GIT_SHA "unknown"
#endif
#ifndef CNV_VERSION
#define CNV_VERSION "0.0.0"
#endif

namespace cnv::driver {

void
RunManifest::writeJson(sim::JsonWriter &w) const
{
    w.beginObject();
    w.key("tool").value(tool);
    w.key("gitSha").value(gitSha);
    w.key("version").value(version);
    w.key("network").value(network);
    w.key("nodeConfig").value(nodeConfig);
    w.key("images").value(images);
    w.key("seed").value(static_cast<std::uint64_t>(seed));
    w.key("jobs").value(jobs);
    w.key("weightSparsity").value(weightSparsity);
    if (mem != "ideal")
        w.key("mem").value(mem);
    w.key("wallSeconds").value(wallSeconds);
    w.endObject();
}

std::string
buildGitSha()
{
    return CNV_GIT_SHA;
}

std::string
buildVersion()
{
    return CNV_VERSION;
}

RunManifest
makeManifest(std::string tool)
{
    RunManifest m;
    m.tool = std::move(tool);
    m.gitSha = buildGitSha();
    m.version = buildVersion();
    m.jobs = sim::jobCount();
    m.weightSparsity = timing::kDefaultWeightSparsity;
    return m;
}

} // namespace cnv::driver
