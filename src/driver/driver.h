/**
 * @file
 * Experiment driver: the orchestration layer shared by the bench
 * binaries and examples. Builds zoo networks, runs image batches on
 * both architecture models, and aggregates cycles / activity /
 * energy into per-network reports.
 */

#ifndef CNV_DRIVER_DRIVER_H
#define CNV_DRIVER_DRIVER_H

#include <memory>
#include <string>
#include <vector>

#include "dadiannao/config.h"
#include "dadiannao/metrics.h"
#include "nn/network.h"
#include "nn/zoo/zoo.h"

namespace cnv::driver {

/** Common experiment parameters. */
struct ExperimentConfig
{
    dadiannao::NodeConfig node;
    /** Images (trace seeds) per network for timing experiments. */
    int images = 4;
    /** Root seed. */
    std::uint64_t seed = 2016;
    /** Reduction factor for accuracy-study network variants. */
    int accuracyScale = 8;
};

/** Aggregated dual-architecture results for one network. */
struct NetworkReport
{
    std::string name;
    int images = 0;

    std::uint64_t baselineCycles = 0; ///< summed over images
    std::uint64_t cnvCycles = 0;
    dadiannao::Activity baselineActivity;
    dadiannao::Activity cnvActivity;
    dadiannao::EnergyCounters baselineEnergy;
    dadiannao::EnergyCounters cnvEnergy;

    double
    speedup() const
    {
        return static_cast<double>(baselineCycles) /
               static_cast<double>(cnvCycles);
    }
};

/**
 * Run `cfg.images` traces of a network through both architecture
 * timing models (optionally with CNV dynamic pruning).
 */
NetworkReport evaluateNetwork(const ExperimentConfig &cfg,
                              const nn::Network &net,
                              const nn::PruneConfig *prune = nullptr);

/** Build + evaluate one zoo network. */
NetworkReport evaluateZooNetwork(const ExperimentConfig &cfg,
                                 nn::zoo::NetId id,
                                 const nn::PruneConfig *prune = nullptr);

/** Geometric mean of the reports' speedups. */
double geomeanSpeedup(const std::vector<NetworkReport> &reports);

/** Arithmetic mean of the reports' speedups (the paper averages so). */
double meanSpeedup(const std::vector<NetworkReport> &reports);

} // namespace cnv::driver

#endif // CNV_DRIVER_DRIVER_H
