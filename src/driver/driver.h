/**
 * @file
 * Experiment driver: the orchestration layer shared by the bench
 * binaries and examples. Builds zoo networks, runs image batches on
 * any set of registered architecture models (arch/registry.h), and
 * aggregates cycles / activity / energy into per-network,
 * per-architecture reports.
 */

#ifndef CNV_DRIVER_DRIVER_H
#define CNV_DRIVER_DRIVER_H

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "arch/registry.h"
#include "dadiannao/config.h"
#include "dadiannao/metrics.h"
#include "mem/memory_model.h"
#include "nn/network.h"
#include "nn/zoo/zoo.h"
#include "timing/network_model.h"
#include "timing/trace_cache.h"

namespace cnv::driver {

/** Common experiment parameters. */
struct ExperimentConfig
{
    dadiannao::NodeConfig node;
    /** Images (trace seeds) per network for timing experiments. */
    int images = 4;
    /** Root seed. */
    std::uint64_t seed = 2016;
    /** Reduction factor for accuracy-study network variants. */
    int accuracyScale = 8;
    /** Cnv2 weight-sparsity knob (timing::RunOptions::weightSparsity);
     *  ignored by architectures without weight skipping. */
    double weightSparsity = timing::kDefaultWeightSparsity;
    /** Memory-hierarchy model (`--mem`): Ideal keeps pre-mem
     *  reports byte-identical, Banked simulates NM banking, the
     *  global buffer and the DRAM channel. */
    mem::Kind memKind = mem::Kind::Ideal;
};

/** One architecture's aggregate over a network's image batch. */
struct ArchAggregate
{
    /** The model that produced these numbers (registry-owned). */
    const arch::ArchModel *model = nullptr;
    std::uint64_t cycles = 0; ///< summed over images
    dadiannao::Activity activity;
    dadiannao::EnergyCounters energy;
    /** Memory-hierarchy counters summed over images (`--mem banked`
     *  runs only; all zero with memModelled false otherwise). */
    dadiannao::MemTrace mem;
    bool memModelled = false;

    const std::string &id() const { return model->id(); }
};

/**
 * Aggregated results for one network, keyed by architecture in
 * selection order. The canonical comparison (the paper's headline
 * speedup) is dadiannao over cnv; reports covering other selections
 * use speedupOf() with explicit ids.
 */
struct NetworkReport
{
    std::string name;
    int images = 0;
    /** Per-architecture aggregates, in selection order. */
    std::vector<ArchAggregate> archs;

    /** The aggregate for an architecture id, or nullptr. */
    const ArchAggregate *findArch(std::string_view id) const;

    /** The aggregate for an architecture id; fatal when absent. */
    const ArchAggregate &arch(std::string_view id) const;

    /** Cycle ratio of `baseId` over `overId` (execution-time gain). */
    double speedupOf(std::string_view baseId, std::string_view overId) const;

    /** The canonical dadiannao-over-cnv speedup. */
    double
    speedup() const
    {
        return speedupOf("dadiannao", "cnv");
    }
};

/**
 * Run `cfg.images` traces of a network through every selected
 * architecture model (optionally with dynamic pruning; the models
 * decide whether to honour it). The (arch x image) grid fans out
 * over sim::globalPool() and aggregates commit in selection order,
 * so the report is bit-identical for every job count. Runs share
 * `cache` when given (one synthesized trace per image across all
 * architectures); a local cache is used otherwise.
 */
NetworkReport evaluateNetworkArchs(
    const ExperimentConfig &cfg, const nn::Network &net,
    const std::vector<const arch::ArchModel *> &archs,
    const nn::PruneConfig *prune = nullptr,
    timing::TraceCache *cache = nullptr);

/**
 * Run a network through the canonical dadiannao + cnv pair (the
 * two-architecture comparison every paper figure reports).
 */
NetworkReport evaluateNetwork(const ExperimentConfig &cfg,
                              const nn::Network &net,
                              const nn::PruneConfig *prune = nullptr);

/** Build + evaluate one zoo network on the canonical pair. */
NetworkReport evaluateZooNetwork(const ExperimentConfig &cfg,
                                 nn::zoo::NetId id,
                                 const nn::PruneConfig *prune = nullptr);

/** Geometric mean of the reports' canonical speedups. */
double geomeanSpeedup(const std::vector<NetworkReport> &reports);

/** Arithmetic mean of the canonical speedups (the paper averages so). */
double meanSpeedup(const std::vector<NetworkReport> &reports);

} // namespace cnv::driver

#endif // CNV_DRIVER_DRIVER_H
