#include "driver/trace_pipeline.h"

#include <algorithm>

#include "sim/logging.h"

namespace cnv::driver {

std::string
layerStatKey(int index, const std::string &name)
{
    std::string out = name;
    std::replace(out.begin(), out.end(), '.', '_');
    return sim::strfmt("L{}_{}", index, out);
}

namespace {

/** Reason's idle lane-cycles in one layer's breakdown. */
std::uint64_t
reasonCycles(const dadiannao::StallBreakdown &s, sim::StallReason r)
{
    switch (r) {
      case sim::StallReason::BrickBufferEmpty: return s.brickBufferEmpty;
      case sim::StallReason::WindowBarrier: return s.windowBarrier;
      case sim::StallReason::SynapseWait: return s.synapseWait;
      case sim::StallReason::SliceDrained: return s.sliceDrained;
      case sim::StallReason::NmBankConflict: return s.nmBankConflict;
      case sim::StallReason::GbMiss: return s.gbMiss;
      case sim::StallReason::DramWait: return s.dramWait;
    }
    return 0;
}

} // namespace

void
appendNetworkTrace(sim::TraceSink &sink,
                   const dadiannao::NetworkResult &result,
                   std::uint32_t pid, const std::string &processName)
{
    constexpr std::uint32_t kLayersTid = 0;
    constexpr std::uint32_t kStallTidBase = 1;
    constexpr std::uint32_t kEncoderTid =
        kStallTidBase + sim::kStallReasonCount;
    constexpr std::uint32_t kDramTid = kEncoderTid + 1;

    sink.setProcessName(pid, processName);
    sink.setThreadName(pid, kLayersTid, "layers");
    for (int i = 0; i < sim::kStallReasonCount; ++i) {
        const auto r = static_cast<sim::StallReason>(i);
        sink.setThreadName(pid,
                           kStallTidBase + static_cast<std::uint32_t>(i),
                           sim::stallReasonName(r));
    }
    sink.setThreadName(pid, kEncoderTid, "encoder");
    if (result.memModelled)
        sink.setThreadName(pid, kDramTid, "dram");

    // Layer and stall spans first: they carry the quantitative
    // payload (the stall profile folds from them), so a capped sink
    // must drop the cosmetic counter samples before these.
    int index = 0;
    for (const dadiannao::LayerResult &layer : result.layers) {
        const std::string key = layerStatKey(index++, layer.name);
        if (layer.cycles == 0)
            continue;
        sink.complete(
            pid, kLayersTid, layer.name, "layer", layer.startCycle,
            layer.cycles,
            {sim::TraceArg("laneBusyCycles", layer.micro.laneBusyCycles),
             sim::TraceArg("laneIdleCycles",
                           layer.micro.laneIdleCycles)});
        for (int i = 0; i < sim::kStallReasonCount; ++i) {
            const auto r = static_cast<sim::StallReason>(i);
            const std::uint64_t cycles =
                reasonCycles(layer.micro.stalls, r);
            if (cycles == 0)
                continue;
            sink.complete(pid,
                          kStallTidBase + static_cast<std::uint32_t>(i),
                          sim::stallReasonName(r), "stall",
                          layer.startCycle, layer.cycles,
                          {sim::TraceArg("layer", key),
                           sim::TraceArg("laneCycles", cycles)});
        }
        if (layer.micro.encoderBusyCycles > 0) {
            // The encoder overlaps the next layer in hardware, so
            // its busy count may exceed the layer's own cycles; the
            // span is clamped for display and the real count rides
            // in the args.
            sink.complete(
                pid, kEncoderTid, "encode", "encoder", layer.startCycle,
                std::min(layer.micro.encoderBusyCycles, layer.cycles),
                {sim::TraceArg("busyCycles",
                               layer.micro.encoderBusyCycles),
                 sim::TraceArg("bricks", layer.micro.encoderBricks)});
        }
        if (result.memModelled && layer.mem.dramCycles > 0) {
            // DRAM bursts overlap compute (synapse prefetch), so the
            // channel-busy count may exceed the layer's cycles; clamp
            // for display and carry the real counters in the args.
            sink.complete(
                pid, kDramTid, "dram-burst", "dram", layer.startCycle,
                std::min(layer.mem.dramCycles, layer.cycles),
                {sim::TraceArg("bytes", layer.mem.dramBytes),
                 sim::TraceArg("busyCycles", layer.mem.dramCycles)});
        }
    }

    for (const dadiannao::LayerResult &layer : result.layers) {
        if (layer.cycles == 0)
            continue;
        sink.counter(pid, 0, "laneUtilisation", layer.startCycle,
                     layer.micro.laneUtilisation());
    }
}

sim::StallProfile
buildStallProfile(const dadiannao::NetworkResult &result)
{
    sim::StallProfile profile;
    int index = 0;
    for (const dadiannao::LayerResult &layer : result.layers) {
        const std::string key = layerStatKey(index++, layer.name);
        for (int i = 0; i < sim::kStallReasonCount; ++i) {
            const auto r = static_cast<sim::StallReason>(i);
            const std::uint64_t cycles =
                reasonCycles(layer.micro.stalls, r);
            if (cycles > 0)
                profile.add(key, r, cycles);
        }
    }
    return profile;
}

} // namespace cnv::driver
