/**
 * @file
 * Provenance record attached to every machine-readable report.
 *
 * A report file divorced from the code and configuration that
 * produced it is worthless for a reproduction study, so each export
 * carries a manifest: which binary (version + git SHA), which
 * network, which node configuration, how many images, which seed,
 * and how long the run took. The git SHA is captured at CMake
 * configure time (CNV_GIT_SHA compile definition); rebuilding with
 * uncommitted changes therefore reports the last commit, not the
 * working tree — the "-dirty" suffix flags that case.
 */

#ifndef CNV_DRIVER_RUN_MANIFEST_H
#define CNV_DRIVER_RUN_MANIFEST_H

#include <cstdint>
#include <string>

#include "sim/stats_export.h"

namespace cnv::driver {

/** Everything needed to re-run (and trust) a report. */
struct RunManifest
{
    /** Binary that produced the report (e.g. "cnvsim"). */
    std::string tool;
    /** Git commit the binary was configured from ("unknown" when
     *  built outside a checkout; "-dirty" suffix on local edits). */
    std::string gitSha;
    /** Project version (CMake PROJECT_VERSION). */
    std::string version;
    /** Network the run evaluated. */
    std::string network;
    /** Node configuration summary (NodeConfig::describe()). */
    std::string nodeConfig;
    /** Images (trace seeds) evaluated. */
    int images = 0;
    /** Root seed of the run. */
    std::uint64_t seed = 0;
    /** Worker-pool job count the run executed with (--jobs). The
     *  only manifest field allowed to differ between otherwise
     *  identical runs — results are job-count-invariant. */
    int jobs = 1;
    /** Cnv2 weight-sparsity knob the run executed with
     *  (--weight-sparsity); architectures without weight skipping
     *  ignore it but the provenance is recorded regardless. */
    double weightSparsity = 0.0;
    /** Memory-hierarchy model the run executed with (--mem). Only
     *  emitted when not "ideal", so ideal reports stay byte-
     *  identical to pre-mem builds. */
    std::string mem = "ideal";
    /** Wall-clock duration of the measured portion, in seconds. */
    double wallSeconds = 0.0;

    /** Write this manifest as one JSON object into `w`. */
    void writeJson(sim::JsonWriter &w) const;
};

/** Git SHA baked in at configure time ("unknown" without git). */
std::string buildGitSha();

/** Project version string baked in at configure time. */
std::string buildVersion();

/** Manifest pre-filled with the build's provenance fields. */
RunManifest makeManifest(std::string tool);

} // namespace cnv::driver

#endif // CNV_DRIVER_RUN_MANIFEST_H
