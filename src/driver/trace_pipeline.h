/**
 * @file
 * Network-level trace emission: folds the per-layer results of a
 * whole-network run (either architecture) into a Chrome trace-event
 * stream and a per-layer stall profile.
 *
 * The fast models measure each layer as aggregate counters rather
 * than live spans, so this adapter reconstructs the run's timeline
 * post-hoc from NetworkResult: one process per architecture, a
 * "layers" track of per-layer spans, one track per stall reason
 * carrying the reason's idle lane-cycles, and an encoder track.
 * Lane-level cycle-accurate spans come from the structural
 * pipelines instead (core/pipeline.h, dadiannao/pipeline.h).
 *
 * The `cnvsim trace` subcommand and bench --trace-out options are
 * thin wrappers around these calls; docs/observability.md documents
 * the emitted schema field by field.
 */

#ifndef CNV_DRIVER_TRACE_PIPELINE_H
#define CNV_DRIVER_TRACE_PIPELINE_H

#include <cstdint>
#include <string>

#include "dadiannao/metrics.h"
#include "sim/stall_profile.h"
#include "sim/trace_event.h"

namespace cnv::driver {

/**
 * Stable per-layer stat key, shared by the stats tree, the stall
 * CSV and the trace events: "L<index>_<name>" with '.' replaced by
 * '_' so the key never collides with stat-path separators.
 */
std::string layerStatKey(int index, const std::string &name);

/**
 * Append one architecture's run to @p sink as process @p pid named
 * @p processName:
 *
 *  - tid 0 "layers": one span per layer over [startCycle, +cycles),
 *    cat "layer", with busy/idle lane-cycle args;
 *  - tids 1..7, one per sim::StallReason: a span per layer with
 *    idle lane-cycles of that reason, cat "stall", named after the
 *    reason, args {layer: layerStatKey, laneCycles: amount};
 *  - tid 8 "encoder": an "encode" span (cat "encoder") per layer
 *    that used the encoder, clamped to the layer's cycles (the real
 *    overlap-capable busy count rides in the busyCycles arg);
 *  - tid 9 "dram" (`--mem banked` runs only): a "dram-burst" span
 *    (cat "dram") per layer that moved off-chip bytes, clamped to
 *    the layer's cycles, args {bytes, busyCycles};
 *  - a "laneUtilisation" counter sampled at each layer boundary.
 *
 * Layer and stall spans are emitted before the counter samples so a
 * capped sink drops the cosmetic events first.
 */
void appendNetworkTrace(sim::TraceSink &sink,
                        const dadiannao::NetworkResult &result,
                        std::uint32_t pid,
                        const std::string &processName);

/**
 * Per-layer, per-reason stall profile of one run, keyed by
 * layerStatKey. Its totalIdle() equals the run's
 * totalMicro().laneIdleCycles as long as every model attributed its
 * idle cycles (enforced by tests/analysis/test_trace_pipeline.cc).
 */
sim::StallProfile buildStallProfile(const dadiannao::NetworkResult &result);

} // namespace cnv::driver

#endif // CNV_DRIVER_TRACE_PIPELINE_H
