#include "driver/driver.h"

#include <cmath>

#include "sim/logging.h"
#include "timing/network_model.h"

namespace cnv::driver {

NetworkReport
evaluateNetwork(const ExperimentConfig &cfg, const nn::Network &net,
                const nn::PruneConfig *prune)
{
    NetworkReport report;
    report.name = net.name();
    report.images = cfg.images;

    for (int i = 0; i < cfg.images; ++i) {
        timing::RunOptions opts;
        opts.imageSeed = cfg.seed + static_cast<std::uint64_t>(i);
        opts.prune = prune;

        const auto base = timing::simulateNetwork(
            cfg.node, net, timing::Arch::Baseline, opts);
        const auto cnvRun = timing::simulateNetwork(
            cfg.node, net, timing::Arch::Cnv, opts);

        report.baselineCycles += base.totalCycles();
        report.cnvCycles += cnvRun.totalCycles();
        report.baselineActivity += base.totalActivity();
        report.cnvActivity += cnvRun.totalActivity();
        report.baselineEnergy += base.totalEnergy();
        report.cnvEnergy += cnvRun.totalEnergy();
    }
    return report;
}

NetworkReport
evaluateZooNetwork(const ExperimentConfig &cfg, nn::zoo::NetId id,
                   const nn::PruneConfig *prune)
{
    const auto net = nn::zoo::build(id, cfg.seed);
    return evaluateNetwork(cfg, *net, prune);
}

double
geomeanSpeedup(const std::vector<NetworkReport> &reports)
{
    CNV_ASSERT(!reports.empty(), "no reports");
    double logSum = 0.0;
    for (const NetworkReport &r : reports)
        logSum += std::log(r.speedup());
    return std::exp(logSum / static_cast<double>(reports.size()));
}

double
meanSpeedup(const std::vector<NetworkReport> &reports)
{
    CNV_ASSERT(!reports.empty(), "no reports");
    double sum = 0.0;
    for (const NetworkReport &r : reports)
        sum += r.speedup();
    return sum / static_cast<double>(reports.size());
}

} // namespace cnv::driver
