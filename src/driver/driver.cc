#include "driver/driver.h"

#include <cmath>

#include "sim/logging.h"
#include "sim/metrics.h"
#include "sim/parallel.h"
#include "timing/network_model.h"

namespace cnv::driver {

const ArchAggregate *
NetworkReport::findArch(std::string_view id) const
{
    for (const ArchAggregate &a : archs)
        if (a.model != nullptr && a.model->id() == id)
            return &a;
    return nullptr;
}

const ArchAggregate &
NetworkReport::arch(std::string_view id) const
{
    const ArchAggregate *a = findArch(id);
    if (a == nullptr)
        CNV_FATAL("report for '{}' has no architecture '{}'", name,
                  std::string(id));
    return *a;
}

double
NetworkReport::speedupOf(std::string_view baseId,
                         std::string_view overId) const
{
    return static_cast<double>(arch(baseId).cycles) /
           static_cast<double>(arch(overId).cycles);
}

NetworkReport
evaluateNetworkArchs(const ExperimentConfig &cfg, const nn::Network &net,
                     const std::vector<const arch::ArchModel *> &archs,
                     const nn::PruneConfig *prune,
                     timing::TraceCache *cache)
{
    CNV_ASSERT(!archs.empty(), "need at least one architecture");
    CNV_ASSERT(cfg.images > 0, "need at least one image");
    NetworkReport report;
    report.name = net.name();
    report.images = cfg.images;
    report.archs.resize(archs.size());
    for (std::size_t a = 0; a < archs.size(); ++a)
        report.archs[a].model = archs[a];

    // Without a caller-provided cache the runs still share one for
    // the duration of this sweep, so each image's trace is
    // synthesized once instead of once per architecture.
    timing::TraceCache localCache;
    timing::TraceCache *shared = cache != nullptr ? cache : &localCache;

    // Flattened (arch x image) grid; the ordered commit makes the
    // per-arch accumulation order identical to the old serial loop.
    const auto images = static_cast<std::size_t>(cfg.images);
    sim::metrics().beginProgress(net.name(), archs.size() * images);
    sim::parallelMapReduce(
        archs.size() * images,
        [&](std::size_t g) {
            const arch::ArchModel *model = archs[g / images];
            timing::RunOptions opts;
            opts.imageSeed =
                cfg.seed + static_cast<std::uint64_t>(g % images);
            opts.prune = prune;
            opts.cache = shared;
            opts.weightSparsity = cfg.weightSparsity;
            opts.memKind = cfg.memKind;
            auto run = model->simulateNetwork(cfg.node, net, opts);
            sim::metrics().tickProgress();
            return run;
        },
        [&](std::size_t g, dadiannao::NetworkResult &&run) {
            ArchAggregate &agg = report.archs[g / images];
            agg.cycles += run.totalCycles();
            agg.activity += run.totalActivity();
            agg.energy += run.totalEnergy();
            if (run.memModelled) {
                agg.mem += run.totalMem();
                agg.memModelled = true;
            }
        });
    sim::metrics().endProgress();
    return report;
}

NetworkReport
evaluateNetwork(const ExperimentConfig &cfg, const nn::Network &net,
                const nn::PruneConfig *prune)
{
    return evaluateNetworkArchs(cfg, net, arch::canonicalPair(), prune);
}

NetworkReport
evaluateZooNetwork(const ExperimentConfig &cfg, nn::zoo::NetId id,
                   const nn::PruneConfig *prune)
{
    const auto net = nn::zoo::build(id, cfg.seed);
    return evaluateNetwork(cfg, *net, prune);
}

double
geomeanSpeedup(const std::vector<NetworkReport> &reports)
{
    CNV_ASSERT(!reports.empty(), "no reports");
    double logSum = 0.0;
    for (const NetworkReport &r : reports)
        logSum += std::log(r.speedup());
    return std::exp(logSum / static_cast<double>(reports.size()));
}

double
meanSpeedup(const std::vector<NetworkReport> &reports)
{
    CNV_ASSERT(!reports.empty(), "no reports");
    double sum = 0.0;
    for (const NetworkReport &r : reports)
        sum += r.speedup();
    return sum / static_cast<double>(reports.size());
}

} // namespace cnv::driver
