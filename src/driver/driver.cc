#include "driver/driver.h"

#include <cmath>

#include "sim/logging.h"
#include "timing/network_model.h"

namespace cnv::driver {

const ArchAggregate *
NetworkReport::findArch(std::string_view id) const
{
    for (const ArchAggregate &a : archs)
        if (a.model != nullptr && a.model->id() == id)
            return &a;
    return nullptr;
}

const ArchAggregate &
NetworkReport::arch(std::string_view id) const
{
    const ArchAggregate *a = findArch(id);
    if (a == nullptr)
        CNV_FATAL("report for '{}' has no architecture '{}'", name,
                  std::string(id));
    return *a;
}

double
NetworkReport::speedupOf(std::string_view baseId,
                         std::string_view overId) const
{
    return static_cast<double>(arch(baseId).cycles) /
           static_cast<double>(arch(overId).cycles);
}

NetworkReport
evaluateNetworkArchs(const ExperimentConfig &cfg, const nn::Network &net,
                     const std::vector<const arch::ArchModel *> &archs,
                     const nn::PruneConfig *prune)
{
    CNV_ASSERT(!archs.empty(), "need at least one architecture");
    NetworkReport report;
    report.name = net.name();
    report.images = cfg.images;
    for (const arch::ArchModel *model : archs) {
        ArchAggregate agg;
        agg.model = model;
        for (int i = 0; i < cfg.images; ++i) {
            timing::RunOptions opts;
            opts.imageSeed = cfg.seed + static_cast<std::uint64_t>(i);
            opts.prune = prune;
            const auto run = model->simulateNetwork(cfg.node, net, opts);
            agg.cycles += run.totalCycles();
            agg.activity += run.totalActivity();
            agg.energy += run.totalEnergy();
        }
        report.archs.push_back(agg);
    }
    return report;
}

NetworkReport
evaluateNetwork(const ExperimentConfig &cfg, const nn::Network &net,
                const nn::PruneConfig *prune)
{
    return evaluateNetworkArchs(cfg, net, arch::canonicalPair(), prune);
}

NetworkReport
evaluateZooNetwork(const ExperimentConfig &cfg, nn::zoo::NetId id,
                   const nn::PruneConfig *prune)
{
    const auto net = nn::zoo::build(id, cfg.seed);
    return evaluateNetwork(cfg, *net, prune);
}

double
geomeanSpeedup(const std::vector<NetworkReport> &reports)
{
    CNV_ASSERT(!reports.empty(), "no reports");
    double logSum = 0.0;
    for (const NetworkReport &r : reports)
        logSum += std::log(r.speedup());
    return std::exp(logSum / static_cast<double>(reports.size()));
}

double
meanSpeedup(const std::vector<NetworkReport> &reports)
{
    CNV_ASSERT(!reports.empty(), "no reports");
    double sum = 0.0;
    for (const NetworkReport &r : reports)
        sum += r.speedup();
    return sum / static_cast<double>(reports.size());
}

} // namespace cnv::driver
