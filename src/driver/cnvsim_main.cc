/**
 * @file
 * cnvsim — the command-line front end to the simulator.
 *
 *   cnvsim list                          network inventory
 *   cnvsim archs [--ids]                 architecture registry listing
 *                                        (--ids: bare id per line, for
 *                                        scripts and doc checks)
 *   cnvsim run <net> [opts]              timing run on selected archs
 *   cnvsim power <net> [opts]            power / energy / EDP
 *   cnvsim prune <net> [opts]            lossless threshold search
 *   cnvsim validate <net> [opts]         functional equivalence check
 *   cnvsim zfnaf <net> [opts]            per-layer ZFNAf statistics
 *   cnvsim export-traces <net> [opts]    write per-layer traces to --out
 *   cnvsim trace <net> [opts]            cycle-level event trace with
 *                                        stall attribution
 *   cnvsim reproduce [opts]              headline paper-vs-measured table
 *
 * Common options:
 *   --arch a,b,... architectures to run, by registry id (default
 *                  "dadiannao,cnv"; see `cnvsim archs`)
 *   --images N     trace instances (default 2)
 *   --seed S       root seed (default 2016)
 *   --scale K      reduced-scale geometry (validate/prune accuracy)
 *   --stats        dump the full statistics tree (gem5-style)
 *   --layers       per-layer cycle table (run)
 *   --floor F      accuracy floor for prune (default 1.0)
 *   --report-json PATH   write the run report (manifest + per-layer
 *                        timelines + summary) as JSON (run)
 *   --report-csv PATH    same report as CSV rows (run)
 *   --net NAME     network (trace; alternative to the positional)
 *   --trace-out PATH     write the Chrome trace-event JSON (trace)
 *   --stall-csv PATH     write the per-layer stall breakdown (trace)
 *   --max-events N       bound the trace sink (default 1048576)
 *   --jobs N       worker-pool size (default: hardware concurrency,
 *                  or the CNVSIM_JOBS environment variable); results
 *                  are bit-identical for every value
 *   --weight-sparsity F  fraction of ineffectual weight bricks the
 *                  cnv2 model skips (0..1, default 0.35); recorded
 *                  in the report manifest, ignored by other archs
 *   --mem ideal|banked   memory-hierarchy model (run/power/trace):
 *                  ideal (default) keeps the legacy numbers
 *                  byte-identical; banked simulates NM banking, the
 *                  shared global buffer and the DRAM channel, and
 *                  adds the summary.memory report block
 *   --perf-json PATH     write the host-side telemetry profile
 *                  (phase timers, pool utilization, trace-cache
 *                  stats, peak RSS) as a cnv-perf-v1 artifact
 *   --progress on|off|auto   live stderr progress meter during the
 *                  image sweep (auto: only when stderr is a TTY)
 *
 * Every network command takes its network as a positional argument
 * (`cnvsim run nin ...`) or via --net (`cnvsim run --net nin ...`).
 *
 * Options accept both "--flag value" and "--flag=value" spellings.
 * The report, trace-event, stall and perf schemas are documented in
 * docs/observability.md.
 */

#include <charconv>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "arch/registry.h"
#include "core/node.h"
#include "dadiannao/node.h"
#include "driver/driver.h"
#include "driver/run_manifest.h"
#include "driver/stats_report.h"
#include "driver/trace_pipeline.h"
#include "mem/memory_model.h"
#include "nn/trace.h"
#include "tensor/serialize.h"
#include "zfnaf/format.h"
#include "nn/zoo/zoo.h"
#include "pruning/explore.h"
#include "sim/error.h"
#include "sim/logging.h"
#include "sim/metrics.h"
#include "sim/parallel.h"
#include "sim/stats_export.h"
#include "sim/table.h"
#include "timing/network_model.h"
#include "timing/trace_cache.h"

namespace {

using namespace cnv;

struct CliOptions
{
    std::string archs = "dadiannao,cnv";
    int images = 2;
    std::uint64_t seed = 2016;
    int scale = 8;
    bool stats = false;
    bool layers = false;
    double floor = 1.0;
    std::string out = "traces";
    std::string reportJson;
    std::string reportCsv;
    std::string net;
    std::string traceOut;
    std::string stallCsv;
    std::size_t maxEvents = sim::TraceSink::kDefaultMaxEvents;
    int jobs = 0; ///< 0 = keep the process default
    double weightSparsity = timing::kDefaultWeightSparsity;
    mem::Kind memKind = mem::Kind::Ideal;
    std::string perfJson;
    sim::MetricsRegistry::Progress progress =
        sim::MetricsRegistry::Progress::Off;
};

[[noreturn]] void
usage()
{
    std::cerr <<
        "usage: cnvsim <command> [network] [options]\n"
        "  commands: list | archs | run | power | prune | validate |\n"
        "            zfnaf | export-traces | trace | reproduce\n"
        "  networks: alex google nin vgg19 cnnM cnnS\n"
        "  options : --arch a,b,... --images N --seed S --scale K\n"
        "            --stats --layers --floor F --report-json PATH\n"
        "            --report-csv PATH --net NAME --trace-out PATH\n"
        "            --stall-csv PATH --max-events N --jobs N\n"
        "            --weight-sparsity F --mem ideal|banked\n"
        "            --perf-json PATH --progress on|off|auto\n"
        "  archs accepts --ids (bare registry ids, one per line)\n";
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    std::exit(2);
}

/**
 * Strict --jobs parsing: a plain positive integer, nothing else.
 * Mirrors the bench runner's numeric validation (exit 2 with a
 * diagnostic) rather than std::stoi's exception path.
 */
int
parseJobs(const std::string &value)
{
    int jobs = 0;
    const char *begin = value.data();
    const char *end = begin + value.size();
    const auto [ptr, ec] = std::from_chars(begin, end, jobs);
    if (ec != std::errc() || ptr != end || jobs < 1) {
        std::cerr << "cnvsim: invalid value '" << value
                  << "' for --jobs (expected an integer >= 1)\n";
        // NOLINTNEXTLINE(concurrency-mt-unsafe)
        std::exit(2);
    }
    return jobs;
}

/**
 * Strict --mem parsing: one of the mem::Kind names, nothing else.
 * Same exit-2 diagnostic convention as --jobs.
 */
mem::Kind
parseMem(const std::string &value)
{
    const auto kind = mem::parseKind(value);
    if (!kind) {
        std::cerr << "cnvsim: invalid value '" << value
                  << "' for --mem (expected 'ideal' or 'banked')\n";
        // NOLINTNEXTLINE(concurrency-mt-unsafe)
        std::exit(2);
    }
    return *kind;
}

CliOptions
parseOptions(const std::vector<std::string> &rawArgs, std::size_t start)
{
    // Normalise "--flag=value" into "--flag value" so both spellings
    // work everywhere.
    std::vector<std::string> args;
    for (std::size_t i = start; i < rawArgs.size(); ++i) {
        const std::string &a = rawArgs[i];
        const std::size_t eq = a.find('=');
        if (a.rfind("--", 0) == 0 && eq != std::string::npos) {
            args.push_back(a.substr(0, eq));
            args.push_back(a.substr(eq + 1));
        } else {
            args.push_back(a);
        }
    }

    CliOptions opts;
    for (std::size_t i = 0; i < args.size(); ++i) {
        auto next = [&]() -> const std::string & {
            if (i + 1 >= args.size())
                usage();
            return args[++i];
        };
        if (args[i] == "--arch")
            opts.archs = next();
        else if (args[i] == "--images")
            opts.images = std::stoi(next());
        else if (args[i] == "--seed")
            opts.seed = std::stoull(next());
        else if (args[i] == "--scale")
            opts.scale = std::stoi(next());
        else if (args[i] == "--floor")
            opts.floor = std::stod(next());
        else if (args[i] == "--out")
            opts.out = next();
        else if (args[i] == "--report-json")
            opts.reportJson = next();
        else if (args[i] == "--report-csv")
            opts.reportCsv = next();
        else if (args[i] == "--net")
            opts.net = next();
        else if (args[i] == "--trace-out")
            opts.traceOut = next();
        else if (args[i] == "--stall-csv")
            opts.stallCsv = next();
        else if (args[i] == "--max-events")
            opts.maxEvents = std::stoull(next());
        else if (args[i] == "--jobs")
            opts.jobs = parseJobs(next());
        else if (args[i] == "--mem")
            opts.memKind = parseMem(next());
        else if (args[i] == "--perf-json") {
            opts.perfJson = next();
            if (opts.perfJson.empty()) {
                std::cerr << "cnvsim: invalid value '' for --perf-json "
                             "(expected an output path)\n";
                // NOLINTNEXTLINE(concurrency-mt-unsafe)
                std::exit(2);
            }
        }
        else if (args[i] == "--progress") {
            const std::string &value = next();
            if (value == "on")
                opts.progress = sim::MetricsRegistry::Progress::On;
            else if (value == "off")
                opts.progress = sim::MetricsRegistry::Progress::Off;
            else if (value == "auto")
                opts.progress = sim::MetricsRegistry::Progress::Auto;
            else {
                std::cerr << "cnvsim: invalid value '" << value
                          << "' for --progress (expected on, off or "
                             "auto)\n";
                // NOLINTNEXTLINE(concurrency-mt-unsafe)
                std::exit(2);
            }
        }
        else if (args[i] == "--weight-sparsity") {
            const std::string &value = next();
            opts.weightSparsity = std::stod(value);
            if (opts.weightSparsity < 0.0 || opts.weightSparsity > 1.0) {
                std::cerr << "cnvsim: invalid value '" << value
                          << "' for --weight-sparsity (expected a "
                             "fraction in [0, 1])\n";
                // NOLINTNEXTLINE(concurrency-mt-unsafe)
                std::exit(2);
            }
        }
        else if (args[i] == "--stats")
            opts.stats = true;
        else if (args[i] == "--layers")
            opts.layers = true;
        else
            usage();
    }
    if (opts.jobs > 0)
        sim::setJobCount(opts.jobs);
    sim::metrics().configureProgress(opts.progress);
    return opts;
}

/** The architecture models selected with --arch (registry order
 *  preserved as given; fatal on unknown ids). */
std::vector<const arch::ArchModel *>
selectedArchs(const CliOptions &opts)
{
    return arch::builtin().select(opts.archs);
}

/** Write one run report to the paths requested on the command line. */
void
writeReports(const CliOptions &opts, const driver::ExperimentConfig &cfg,
             const nn::Network &net,
             const std::vector<const arch::ArchModel *> &archs)
{
    if (opts.reportJson.empty() && opts.reportCsv.empty())
        return;
    driver::RunReport report = driver::buildRunReport(cfg, net, archs);
    report.manifest.wallSeconds = sim::metrics().secondsSinceEnable();
    auto open = [](const std::string &path) {
        std::ofstream os(path);
        if (!os)
            CNV_FATAL("cannot open report file '{}'", path);
        return os;
    };
    if (!opts.reportJson.empty()) {
        auto os = open(opts.reportJson);
        driver::writeReportJson(report, os);
        std::cout << "wrote JSON report to " << opts.reportJson << '\n';
    }
    if (!opts.reportCsv.empty()) {
        auto os = open(opts.reportCsv);
        driver::writeReportCsv(report, os);
        std::cout << "wrote CSV report to " << opts.reportCsv << '\n';
    }
}

/**
 * Write the standalone cnv-perf-v1 telemetry artifact requested with
 * --perf-json: the run manifest plus the hostProfile object (same
 * emitter as the report section). Called once, after the command
 * body, so phase timers and cache counters cover the whole run.
 */
void
writePerfJson(const CliOptions &opts, const std::string &network)
{
    if (opts.perfJson.empty())
        return;
    std::ofstream os(opts.perfJson);
    if (!os)
        CNV_FATAL("cannot open perf file '{}'", opts.perfJson);
    driver::RunManifest manifest = driver::makeManifest("cnvsim");
    manifest.network = network;
    manifest.nodeConfig = dadiannao::NodeConfig().describe();
    manifest.images = opts.images;
    manifest.seed = opts.seed;
    manifest.weightSparsity = opts.weightSparsity;
    manifest.wallSeconds = sim::metrics().secondsSinceEnable();
    sim::JsonWriter w(os);
    w.beginObject();
    w.key("schema");
    w.value("cnv-perf-v1");
    w.key("manifest");
    manifest.writeJson(w);
    w.key("hostProfile");
    sim::writeHostProfile(sim::metrics().snapshot(), w);
    w.endObject();
    w.complete();
    os << '\n';
    std::cout << "wrote perf profile to " << opts.perfJson << '\n';
}

int
cmdList()
{
    sim::Table t({"network", "conv layers", "conv GMACs",
                  "zero-operand target", "input"});
    for (auto id : nn::zoo::allNetworks()) {
        const auto net = nn::zoo::build(id, 1);
        const auto in = net->node(0).outShape;
        t.addRow({nn::zoo::netName(id),
                  std::to_string(net->convLayerCount()),
                  sim::Table::num(net->totalConvMacs() / 1e9),
                  sim::Table::pct(nn::zoo::zeroOperandTarget(id)),
                  sim::strfmt("{}x{}x{}", in.x, in.y, in.z)});
    }
    t.print(std::cout);
    return 0;
}

int
cmdArchs(bool idsOnly)
{
    if (idsOnly) {
        // Machine-readable listing for scripts (the docs-coverage
        // check diffs this against docs/architectures.md sections).
        for (const auto &model : arch::builtin().models())
            std::cout << model->id() << '\n';
        return 0;
    }
    const dadiannao::NodeConfig base;
    sim::Table t({"id", "architecture", "brick", "lanes", "NM banks",
                  "area mm^2"});
    for (const auto &model : arch::builtin().models()) {
        const auto cfg = model->nodeConfig(base);
        t.addRow({model->id(), model->displayName(),
                  std::to_string(cfg.brickSize),
                  std::to_string(cfg.lanes), std::to_string(cfg.nmBanks),
                  sim::Table::num(model->area().total())});
    }
    t.print(std::cout);
    std::cout << "\nselect with `cnvsim run <net> --arch "
                 "dadiannao,cnv,...` (report sections are keyed by "
                 "id).\n";
    return 0;
}

int
cmdRun(nn::zoo::NetId id, const CliOptions &opts)
{
    driver::ExperimentConfig cfg;
    cfg.images = opts.images;
    cfg.seed = opts.seed;
    cfg.weightSparsity = opts.weightSparsity;
    cfg.memKind = opts.memKind;
    std::unique_ptr<nn::Network> net;
    std::vector<const arch::ArchModel *> archs;
    {
        const sim::ScopedPhase phase("build");
        net = nn::zoo::build(id, cfg.seed);
        archs = selectedArchs(opts);
    }
    const auto &ref = *archs.front();

    // Single-image per-layer timelines, one run per selected arch
    // (also reused by --stats below). The cache is shared with the
    // aggregate sweep so each image's trace is synthesized once.
    timing::TraceCache cache;
    std::vector<driver::ArchTimeline> timelines;
    if (opts.layers || opts.stats) {
        const sim::ScopedPhase phase("timing");
        timelines.resize(archs.size());
        sim::parallelMapReduce(
            archs.size(),
            [&](std::size_t a) {
                timing::RunOptions ropts;
                ropts.imageSeed = cfg.seed;
                ropts.cache = &cache;
                ropts.weightSparsity = cfg.weightSparsity;
                ropts.memKind = cfg.memKind;
                return archs[a]->simulateNetwork(cfg.node, *net, ropts);
            },
            [&](std::size_t a, dadiannao::NetworkResult &&result) {
                timelines[a] = {archs[a], std::move(result)};
            });
    }

    if (opts.layers) {
        std::vector<std::string> header{"layer"};
        for (const arch::ArchModel *model : archs)
            header.push_back(model->id() + " cycles");
        for (std::size_t a = 1; a < archs.size(); ++a)
            header.push_back(archs[a]->id() + " speedup");
        sim::Table t(header);
        const auto &refLayers = timelines.front().result.layers;
        for (std::size_t i = 0; i < refLayers.size(); ++i) {
            bool allZero = true;
            std::vector<std::string> row{refLayers[i].name};
            for (const driver::ArchTimeline &tl : timelines) {
                const auto &layer = tl.result.layers[i];
                allZero &= layer.cycles == 0;
                row.push_back(sim::Table::intNum(layer.cycles));
            }
            for (std::size_t a = 1; a < timelines.size(); ++a) {
                const auto cycles = timelines[a].result.layers[i].cycles;
                row.push_back(
                    cycles ? sim::Table::num(
                                 static_cast<double>(refLayers[i].cycles) /
                                 static_cast<double>(cycles))
                           : "-");
            }
            if (!allZero)
                t.addRow(row);
        }
        t.print(std::cout);
    }

    driver::NetworkReport report;
    {
        const sim::ScopedPhase phase("timing");
        report =
            driver::evaluateNetworkArchs(cfg, *net, archs, nullptr, &cache);
    }

    const sim::ScopedPhase reportPhase("report");
    std::cout << "\n" << net->name() << " over " << cfg.images
              << " image(s):\n";
    sim::Table t({"architecture", "cycles",
                  "speedup vs " + ref.id()});
    for (const driver::ArchAggregate &a : report.archs)
        t.addRow({a.id(), sim::Table::intNum(a.cycles),
                  a.model == &ref
                      ? "1.00"
                      : sim::Table::num(
                            report.speedupOf(ref.id(), a.id()))});
    t.print(std::cout);

    if (opts.stats)
        for (const driver::ArchTimeline &tl : timelines)
            driver::buildStats(tl.result, *tl.model)->dump(std::cout);

    writeReports(opts, cfg, *net, archs);
    return 0;
}

int
cmdPower(nn::zoo::NetId id, const CliOptions &opts)
{
    driver::ExperimentConfig cfg;
    cfg.images = opts.images;
    cfg.seed = opts.seed;
    cfg.weightSparsity = opts.weightSparsity;
    cfg.memKind = opts.memKind;
    std::unique_ptr<nn::Network> net;
    std::vector<const arch::ArchModel *> archs;
    {
        const sim::ScopedPhase phase("build");
        archs = selectedArchs(opts);
        net = nn::zoo::build(id, cfg.seed);
    }
    const auto &ref = *archs.front();
    driver::NetworkReport report;
    {
        const sim::ScopedPhase phase("timing");
        report = driver::evaluateNetworkArchs(cfg, *net, archs);
    }

    const sim::ScopedPhase powerPhase("power");
    std::vector<power::PowerBreakdown> pw;
    std::vector<power::RunMetrics> mx;
    for (const driver::ArchAggregate &a : report.archs) {
        pw.push_back(a.model->power(a.energy, a.cycles));
        mx.push_back(a.model->metrics(a.energy, a.cycles));
    }

    std::vector<std::string> header{"metric"};
    for (const arch::ArchModel *model : archs)
        header.push_back(model->id());
    for (std::size_t a = 1; a < archs.size(); ++a)
        header.push_back(ref.id() + "/" + archs[a]->id());
    sim::Table t(header);
    auto row = [&](const char *name, auto metric) {
        std::vector<std::string> cells{name};
        for (std::size_t a = 0; a < archs.size(); ++a)
            cells.push_back(sim::Table::num(metric(a), 4));
        for (std::size_t a = 1; a < archs.size(); ++a)
            cells.push_back(sim::Table::num(metric(0) / metric(a), 3));
        t.addRow(cells);
    };
    row("average watts",
        [&](std::size_t a) { return pw[a].total(); });
    row("seconds", [&](std::size_t a) { return mx[a].seconds; });
    row("joules", [&](std::size_t a) { return mx[a].joules; });
    row("EDP (P x D)", [&](std::size_t a) { return mx[a].edp; });
    row("ED^2P (P x D^2)", [&](std::size_t a) { return mx[a].ed2p; });
    t.print(std::cout);
    return 0;
}

int
cmdPrune(nn::zoo::NetId id, const CliOptions &opts)
{
    const auto fullNet = nn::zoo::build(id, opts.seed);
    auto accNet = nn::zoo::build(id, opts.seed, opts.scale);
    accNet->calibrate();

    dadiannao::NodeConfig node;
    pruning::SearchOptions search;
    search.accuracyImages = std::max(6, opts.images * 3);
    search.timingImages = 1;
    search.seed = opts.seed + 7;
    search.accuracyFloor = opts.floor;

    const auto point =
        pruning::searchLossless(node, *fullNet, *accNet, search);
    std::cout << "thresholds:";
    for (std::int32_t t : point.config.thresholds)
        std::cout << ' ' << t;
    std::cout << "\nspeedup " << sim::Table::num(point.speedup)
              << "x at relative accuracy "
              << sim::Table::pct(point.relativeAccuracy) << '\n';
    return 0;
}

int
cmdZfnaf(nn::zoo::NetId id, const CliOptions &opts)
{
    const auto net = nn::zoo::build(id, opts.seed);
    sim::Table t({"conv layer", "input", "zero", "avg nz/brick",
                  "empty bricks", "ZFNAf bits vs dense",
                  "offset-only vs dense"});
    for (int nodeId : net->convNodeIds()) {
        const nn::Node &n = net->node(nodeId);
        const auto in =
            nn::synthesizeConvInput(*net, nodeId, opts.seed + 1);
        const auto enc = zfnaf::encode(in);
        std::size_t empty = 0;
        for (int y = 0; y < in.shape().y; ++y)
            for (int x = 0; x < in.shape().x; ++x)
                for (int b = 0; b < enc.bricksPerColumn(); ++b)
                    empty += enc.nonZeroCount(x, y, b) == 0;
        const double bricks = static_cast<double>(enc.brickCount());
        t.addRow({n.name,
                  sim::strfmt("{}x{}x{}", in.shape().x, in.shape().y,
                              in.shape().z),
                  sim::Table::pct(tensor::zeroFraction(in)),
                  sim::Table::num(enc.totalNonZero() / bricks),
                  sim::Table::pct(empty / bricks),
                  sim::Table::num(
                      static_cast<double>(enc.storageBits()) /
                      (static_cast<double>(in.size()) *
                       zfnaf::kNeuronBits)),
                  sim::Table::num(
                      static_cast<double>(enc.offsetOnlyStorageBits()) /
                      (static_cast<double>(in.size()) *
                       zfnaf::kNeuronBits))});
    }
    t.print(std::cout);
    std::cout << "\nZFNAf keeps brick slots aligned, so the footprint is\n"
                 "always (16+offset bits)/16 = 1.25x the dense array —\n"
                 "the format trades memory for direct brick indexing\n"
                 "(Section IV-B1). The offset-only column is Cnvlutin2's\n"
                 "encoding (values only for non-zero neurons, offsets for\n"
                 "every slot), whose footprint shrinks with sparsity —\n"
                 "see docs/zfnaf.md.\n";
    return 0;
}

int
cmdExportTraces(nn::zoo::NetId id, const CliOptions &opts)
{
    const auto net = nn::zoo::build(id, opts.seed);
    std::filesystem::create_directories(opts.out);
    const timing::DirectoryTraceProvider provider(opts.out);
    int written = 0;
    for (int i = 0; i < opts.images; ++i) {
        const std::uint64_t seed = opts.seed + i;
        for (int nodeId : net->convNodeIds()) {
            const auto in = nn::synthesizeConvInput(*net, nodeId, seed);
            tensor::saveTensorFile(provider.pathFor(*net, nodeId, seed),
                                   in);
            ++written;
        }
    }
    std::cout << "wrote " << written << " layer traces to " << opts.out
              << "; rerun timing against them by constructing a\n"
                 "timing::DirectoryTraceProvider (real framework traces\n"
                 "in the same format replace the synthetic generator).\n";
    return 0;
}

int
cmdTrace(nn::zoo::NetId id, const CliOptions &opts)
{
    driver::ExperimentConfig cfg;
    cfg.images = opts.images;
    cfg.seed = opts.seed;
    cfg.weightSparsity = opts.weightSparsity;
    cfg.memKind = opts.memKind;
    const auto net = nn::zoo::build(id, cfg.seed);

    const auto archs = selectedArchs(opts);
    timing::TraceCache cache;
    std::vector<driver::ArchTimeline> timelines(archs.size());
    sim::parallelMapReduce(
        archs.size(),
        [&](std::size_t a) {
            timing::RunOptions ropts;
            ropts.imageSeed = cfg.seed;
            ropts.cache = &cache;
            ropts.weightSparsity = cfg.weightSparsity;
            ropts.memKind = cfg.memKind;
            return archs[a]->simulateNetwork(cfg.node, *net, ropts);
        },
        [&](std::size_t a, dadiannao::NetworkResult &&result) {
            timelines[a] = {archs[a], std::move(result)};
        });

    sim::TraceSink sink(opts.maxEvents);
    int pid = 1;
    for (const driver::ArchTimeline &tl : timelines)
        driver::appendNetworkTrace(
            sink, tl.result, pid++,
            sim::strfmt("{} ({})", tl.model->id(), net->name()));

    // The attribution must account for every idle lane-cycle the
    // models reported — a gap means a producer forgot its reason.
    for (const driver::ArchTimeline &tl : timelines) {
        const auto profile = driver::buildStallProfile(tl.result);
        const auto micro = tl.result.totalMicro();
        CNV_ASSERT(profile.totalIdle() == micro.laneIdleCycles,
                   "{} stall breakdown ({}) != idle lane-cycles ({})",
                   tl.result.architecture, profile.totalIdle(),
                   micro.laneIdleCycles);
    }

    auto open = [](const std::string &path) {
        std::ofstream os(path);
        if (!os)
            CNV_FATAL("cannot open output file '{}'", path);
        return os;
    };
    if (!opts.traceOut.empty()) {
        auto os = open(opts.traceOut);
        sink.writeJson(os, {sim::TraceArg("network", net->name()),
                            sim::TraceArg("seed", opts.seed),
                            sim::TraceArg("tool", "cnvsim trace")});
        std::cout << "wrote " << sink.events().size()
                  << " trace events to " << opts.traceOut;
        if (sink.droppedEvents() > 0)
            std::cout << " (" << sink.droppedEvents()
                      << " dropped at the --max-events cap)";
        std::cout << "\nload it in Perfetto (https://ui.perfetto.dev) or "
                     "chrome://tracing; 1 trace us = 1 cycle\n";
    }
    if (!opts.stallCsv.empty()) {
        auto os = open(opts.stallCsv);
        bool header = true;
        for (const driver::ArchTimeline &tl : timelines) {
            driver::buildStallProfile(tl.result).writeCsv(
                os, tl.result.architecture, header);
            header = false;
        }
        std::cout << "wrote stall breakdown to " << opts.stallCsv << '\n';
    }

    // Per-reason summary, all selected architectures side by side.
    std::vector<sim::StallProfile> profiles;
    std::vector<std::string> header{"stall reason"};
    for (const driver::ArchTimeline &tl : timelines) {
        profiles.push_back(driver::buildStallProfile(tl.result));
        header.push_back(tl.model->id() + " lane-cycles");
    }
    sim::Table t(header);
    for (int i = 0; i < sim::kStallReasonCount; ++i) {
        const auto r = static_cast<sim::StallReason>(i);
        std::vector<std::string> row{sim::stallReasonName(r)};
        for (const sim::StallProfile &p : profiles)
            row.push_back(sim::Table::intNum(p.total(r)));
        t.addRow(row);
    }
    std::vector<std::string> totals{"total idle"};
    for (const sim::StallProfile &p : profiles)
        totals.push_back(sim::Table::intNum(p.totalIdle()));
    t.addRow(totals);
    t.print(std::cout);

    if (opts.stats)
        for (const driver::ArchTimeline &tl : timelines)
            driver::buildStats(tl.result, *tl.model)->dump(std::cout);
    return 0;
}

int
cmdReproduce(const CliOptions &opts)
{
    // The headline numbers of EXPERIMENTS.md in one run: Figure 1,
    // Figure 9 (zero skipping only), Figure 11 and Figure 13.
    driver::ExperimentConfig cfg;
    cfg.images = opts.images;
    cfg.seed = opts.seed;
    std::cout << "node: " << cfg.node.describe() << "\n\n";

    sim::Table t({"network", "zero operands", "CNV speedup",
                  "EDP gain", "ED^2P gain"});
    double zf = 0, sp = 0, edp = 0, ed2p = 0;
    for (auto id : nn::zoo::allNetworks()) {
        const auto net = nn::zoo::build(id, cfg.seed);
        const double zeroFrac =
            nn::zeroOperandFraction(*net, cfg.seed + 100);
        const auto r = driver::evaluateNetwork(cfg, *net);
        const driver::ArchAggregate &base = r.arch("dadiannao");
        const driver::ArchAggregate &cnvAgg = r.arch("cnv");
        const auto mb = base.model->metrics(base.energy, base.cycles);
        const auto mc =
            cnvAgg.model->metrics(cnvAgg.energy, cnvAgg.cycles);
        zf += zeroFrac;
        sp += r.speedup();
        edp += mb.edp / mc.edp;
        ed2p += mb.ed2p / mc.ed2p;
        t.addRow({nn::zoo::netName(id), sim::Table::pct(zeroFrac),
                  sim::Table::num(r.speedup()),
                  sim::Table::num(mb.edp / mc.edp),
                  sim::Table::num(mb.ed2p / mc.ed2p)});
    }
    t.addRow({"average", sim::Table::pct(zf / 6), sim::Table::num(sp / 6),
              sim::Table::num(edp / 6), sim::Table::num(ed2p / 6)});
    t.addRow({"paper", "44.0%", "1.37", "1.47", "2.01"});
    t.print(std::cout);

    const auto &reg = arch::builtin();
    const auto baseArea = reg.get("dadiannao").area();
    const auto cnvArea = reg.get("cnv").area();
    std::cout << "\narea overhead: "
              << sim::Table::pct(cnvArea.total() / baseArea.total() - 1.0)
              << " (paper: 4.49%)\n";
    return 0;
}

int
cmdValidate(nn::zoo::NetId id, const CliOptions &opts)
{
    auto net = nn::zoo::build(id, opts.seed, opts.scale);
    net->calibrate();
    const auto image = nn::synthesizeImage(net->node(0).outShape,
                                           opts.seed + 1);

    const dadiannao::NodeConfig node;
    dadiannao::NodeModel baseline{node};
    core::CnvNodeModel cnv{node};
    const auto b = baseline.run(*net, image);
    const auto c = cnv.run(*net, image);
    const auto golden = net->forward(image);

    const bool ok = b.final == c.final && b.final == golden.final;
    std::cout << nn::zoo::netName(id) << " at 1/" << opts.scale
              << " scale: baseline/CNV/golden outputs "
              << (ok ? "bit-identical" : "MISMATCH") << "; top-1 "
              << b.top1 << "; cycles " << b.timing.totalCycles() << " vs "
              << c.timing.totalCycles() << '\n';
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty())
        usage();
    // Telemetry is on for the whole process: every phase timer, pool
    // lane and cache counter below records against this epoch.
    sim::metrics().setEnabled(true);

    try {
        const std::string &command = args[0];
        if (command == "list")
            return cmdList();
        if (command == "archs")
            return cmdArchs(args.size() >= 2 && args[1] == "--ids");
        if (command == "reproduce") {
            const CliOptions opts = parseOptions(args, 1);
            const int rc = cmdReproduce(opts);
            writePerfJson(opts, "(all zoo networks)");
            return rc;
        }

        // Every remaining command takes a network, positionally
        // (`run nin`) or via --net (`run --net nin`).
        CliOptions opts;
        std::string netName;
        if (args.size() >= 2 && args[1].rfind("--", 0) != 0) {
            netName = args[1];
            opts = parseOptions(args, 2);
            opts.net = netName;
        } else {
            opts = parseOptions(args, 1);
            if (opts.net.empty())
                usage();
            netName = opts.net;
        }
        const auto id = nn::zoo::netFromName(netName);
        int rc = 0;
        if (command == "run")
            rc = cmdRun(id, opts);
        else if (command == "power")
            rc = cmdPower(id, opts);
        else if (command == "prune")
            rc = cmdPrune(id, opts);
        else if (command == "validate")
            rc = cmdValidate(id, opts);
        else if (command == "zfnaf")
            rc = cmdZfnaf(id, opts);
        else if (command == "export-traces")
            rc = cmdExportTraces(id, opts);
        else if (command == "trace")
            rc = cmdTrace(id, opts);
        else
            usage();
        writePerfJson(opts, netName);
        return rc;
    } catch (const sim::FatalError &e) {
        std::cerr << e.what() << '\n';
        return 1;
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << '\n';
        return 1;
    }
}
