/**
 * @file
 * cnvsim — the command-line front end to the simulator.
 *
 *   cnvsim list                          network inventory
 *   cnvsim run <net> [opts]              timing run on both archs
 *   cnvsim power <net> [opts]            power / energy / EDP
 *   cnvsim prune <net> [opts]            lossless threshold search
 *   cnvsim validate <net> [opts]         functional equivalence check
 *   cnvsim zfnaf <net> [opts]            per-layer ZFNAf statistics
 *   cnvsim export-traces <net> [opts]    write per-layer traces to --out
 *   cnvsim trace <net> [opts]            cycle-level event trace with
 *                                        stall attribution (both archs)
 *   cnvsim reproduce [opts]              headline paper-vs-measured table
 *
 * Common options:
 *   --images N     trace instances (default 2)
 *   --seed S       root seed (default 2016)
 *   --scale K      reduced-scale geometry (validate/prune accuracy)
 *   --stats        dump the full statistics tree (gem5-style)
 *   --layers       per-layer cycle table (run)
 *   --floor F      accuracy floor for prune (default 1.0)
 *   --report-json PATH   write the run report (manifest + per-layer
 *                        timelines + summary) as JSON (run)
 *   --report-csv PATH    same report as CSV rows (run)
 *   --net NAME     network (trace; alternative to the positional)
 *   --trace-out PATH     write the Chrome trace-event JSON (trace)
 *   --stall-csv PATH     write the per-layer stall breakdown (trace)
 *   --max-events N       bound the trace sink (default 1048576)
 *
 * Options accept both "--flag value" and "--flag=value" spellings.
 * The report, trace-event and stall schemas are documented in
 * docs/observability.md.
 */

#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/node.h"
#include "dadiannao/node.h"
#include "driver/driver.h"
#include "driver/stats_report.h"
#include "driver/trace_pipeline.h"
#include "nn/trace.h"
#include "tensor/serialize.h"
#include "zfnaf/format.h"
#include "nn/zoo/zoo.h"
#include "pruning/explore.h"
#include "sim/error.h"
#include "sim/logging.h"
#include "sim/table.h"
#include "timing/network_model.h"

namespace {

using namespace cnv;

struct CliOptions
{
    int images = 2;
    std::uint64_t seed = 2016;
    int scale = 8;
    bool stats = false;
    bool layers = false;
    double floor = 1.0;
    std::string out = "traces";
    std::string reportJson;
    std::string reportCsv;
    std::string net;
    std::string traceOut;
    std::string stallCsv;
    std::size_t maxEvents = sim::TraceSink::kDefaultMaxEvents;
};

[[noreturn]] void
usage()
{
    std::cerr <<
        "usage: cnvsim <command> [network] [options]\n"
        "  commands: list | run | power | prune | validate | zfnaf |\n"
        "            export-traces | trace | reproduce\n"
        "  networks: alex google nin vgg19 cnnM cnnS\n"
        "  options : --images N --seed S --scale K --stats --layers\n"
        "            --floor F --report-json PATH --report-csv PATH\n"
        "            --net NAME --trace-out PATH --stall-csv PATH\n"
        "            --max-events N\n";
    std::exit(2);
}

CliOptions
parseOptions(const std::vector<std::string> &rawArgs, std::size_t start)
{
    // Normalise "--flag=value" into "--flag value" so both spellings
    // work everywhere.
    std::vector<std::string> args;
    for (std::size_t i = start; i < rawArgs.size(); ++i) {
        const std::string &a = rawArgs[i];
        const std::size_t eq = a.find('=');
        if (a.rfind("--", 0) == 0 && eq != std::string::npos) {
            args.push_back(a.substr(0, eq));
            args.push_back(a.substr(eq + 1));
        } else {
            args.push_back(a);
        }
    }

    CliOptions opts;
    for (std::size_t i = 0; i < args.size(); ++i) {
        auto next = [&]() -> const std::string & {
            if (i + 1 >= args.size())
                usage();
            return args[++i];
        };
        if (args[i] == "--images")
            opts.images = std::stoi(next());
        else if (args[i] == "--seed")
            opts.seed = std::stoull(next());
        else if (args[i] == "--scale")
            opts.scale = std::stoi(next());
        else if (args[i] == "--floor")
            opts.floor = std::stod(next());
        else if (args[i] == "--out")
            opts.out = next();
        else if (args[i] == "--report-json")
            opts.reportJson = next();
        else if (args[i] == "--report-csv")
            opts.reportCsv = next();
        else if (args[i] == "--net")
            opts.net = next();
        else if (args[i] == "--trace-out")
            opts.traceOut = next();
        else if (args[i] == "--stall-csv")
            opts.stallCsv = next();
        else if (args[i] == "--max-events")
            opts.maxEvents = std::stoull(next());
        else if (args[i] == "--stats")
            opts.stats = true;
        else if (args[i] == "--layers")
            opts.layers = true;
        else
            usage();
    }
    return opts;
}

/** Write one run report to the paths requested on the command line. */
void
writeReports(const CliOptions &opts, const driver::ExperimentConfig &cfg,
             const nn::Network &net,
             std::chrono::steady_clock::time_point t0)
{
    if (opts.reportJson.empty() && opts.reportCsv.empty())
        return;
    driver::RunReport report = driver::buildRunReport(cfg, net);
    report.manifest.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    auto open = [](const std::string &path) {
        std::ofstream os(path);
        if (!os)
            CNV_FATAL("cannot open report file '{}'", path);
        return os;
    };
    if (!opts.reportJson.empty()) {
        auto os = open(opts.reportJson);
        driver::writeReportJson(report, os);
        std::cout << "wrote JSON report to " << opts.reportJson << '\n';
    }
    if (!opts.reportCsv.empty()) {
        auto os = open(opts.reportCsv);
        driver::writeReportCsv(report, os);
        std::cout << "wrote CSV report to " << opts.reportCsv << '\n';
    }
}

int
cmdList()
{
    sim::Table t({"network", "conv layers", "conv GMACs",
                  "zero-operand target", "input"});
    for (auto id : nn::zoo::allNetworks()) {
        const auto net = nn::zoo::build(id, 1);
        const auto in = net->node(0).outShape;
        t.addRow({nn::zoo::netName(id),
                  std::to_string(net->convLayerCount()),
                  sim::Table::num(net->totalConvMacs() / 1e9),
                  sim::Table::pct(nn::zoo::zeroOperandTarget(id)),
                  sim::strfmt("{}x{}x{}", in.x, in.y, in.z)});
    }
    t.print(std::cout);
    return 0;
}

int
cmdRun(nn::zoo::NetId id, const CliOptions &opts)
{
    const auto t0 = std::chrono::steady_clock::now();
    driver::ExperimentConfig cfg;
    cfg.images = opts.images;
    cfg.seed = opts.seed;
    const auto net = nn::zoo::build(id, cfg.seed);

    if (opts.layers) {
        timing::RunOptions ropts;
        ropts.imageSeed = cfg.seed;
        const auto base = timing::simulateNetwork(
            cfg.node, *net, timing::Arch::Baseline, ropts);
        const auto cnvRun = timing::simulateNetwork(
            cfg.node, *net, timing::Arch::Cnv, ropts);
        sim::Table t({"layer", "baseline cycles", "CNV cycles",
                      "speedup"});
        for (std::size_t i = 0; i < base.layers.size(); ++i) {
            const auto &b = base.layers[i];
            const auto &c = cnvRun.layers[i];
            if (b.cycles == 0 && c.cycles == 0)
                continue;
            t.addRow({b.name, sim::Table::intNum(b.cycles),
                      sim::Table::intNum(c.cycles),
                      c.cycles
                          ? sim::Table::num(static_cast<double>(b.cycles) /
                                            c.cycles)
                          : "-"});
        }
        t.print(std::cout);
    }

    const auto report = driver::evaluateNetwork(cfg, *net);
    std::cout << "\n" << net->name() << " over " << cfg.images
              << " image(s):\n"
              << "  baseline cycles : "
              << sim::Table::intNum(report.baselineCycles) << "\n"
              << "  CNV cycles      : "
              << sim::Table::intNum(report.cnvCycles) << "\n"
              << "  speedup         : "
              << sim::Table::num(report.speedup()) << "x\n";

    if (opts.stats) {
        timing::RunOptions ropts;
        ropts.imageSeed = cfg.seed;
        const auto b = timing::simulateNetwork(
            cfg.node, *net, timing::Arch::Baseline, ropts);
        const auto c = timing::simulateNetwork(cfg.node, *net,
                                               timing::Arch::Cnv, ropts);
        driver::buildStats(b, power::Arch::Baseline)->dump(std::cout);
        driver::buildStats(c, power::Arch::Cnv)->dump(std::cout);
    }

    writeReports(opts, cfg, *net, t0);
    return 0;
}

int
cmdPower(nn::zoo::NetId id, const CliOptions &opts)
{
    driver::ExperimentConfig cfg;
    cfg.images = opts.images;
    cfg.seed = opts.seed;
    const auto report = driver::evaluateZooNetwork(cfg, id);

    sim::Table t({"metric", "baseline", "CNV", "ratio"});
    const auto pb = power::powerOf(power::Arch::Baseline,
                                   report.baselineEnergy,
                                   report.baselineCycles);
    const auto pc = power::powerOf(power::Arch::Cnv, report.cnvEnergy,
                                   report.cnvCycles);
    const auto mb = power::metricsOf(power::Arch::Baseline,
                                     report.baselineEnergy,
                                     report.baselineCycles);
    const auto mc = power::metricsOf(power::Arch::Cnv, report.cnvEnergy,
                                     report.cnvCycles);
    auto row = [&](const char *name, double b, double c) {
        t.addRow({name, sim::Table::num(b, 4), sim::Table::num(c, 4),
                  sim::Table::num(b / c, 3)});
    };
    row("average watts", pb.total(), pc.total());
    row("seconds", mb.seconds, mc.seconds);
    row("joules", mb.joules, mc.joules);
    row("EDP (P x D)", mb.edp, mc.edp);
    row("ED^2P (P x D^2)", mb.ed2p, mc.ed2p);
    t.print(std::cout);
    return 0;
}

int
cmdPrune(nn::zoo::NetId id, const CliOptions &opts)
{
    const auto fullNet = nn::zoo::build(id, opts.seed);
    auto accNet = nn::zoo::build(id, opts.seed, opts.scale);
    accNet->calibrate();

    dadiannao::NodeConfig node;
    pruning::SearchOptions search;
    search.accuracyImages = std::max(6, opts.images * 3);
    search.timingImages = 1;
    search.seed = opts.seed + 7;
    search.accuracyFloor = opts.floor;

    const auto point =
        pruning::searchLossless(node, *fullNet, *accNet, search);
    std::cout << "thresholds:";
    for (std::int32_t t : point.config.thresholds)
        std::cout << ' ' << t;
    std::cout << "\nspeedup " << sim::Table::num(point.speedup)
              << "x at relative accuracy "
              << sim::Table::pct(point.relativeAccuracy) << '\n';
    return 0;
}

int
cmdZfnaf(nn::zoo::NetId id, const CliOptions &opts)
{
    const auto net = nn::zoo::build(id, opts.seed);
    sim::Table t({"conv layer", "input", "zero", "avg nz/brick",
                  "empty bricks", "ZFNAf bits vs dense"});
    for (int nodeId : net->convNodeIds()) {
        const nn::Node &n = net->node(nodeId);
        const auto in =
            nn::synthesizeConvInput(*net, nodeId, opts.seed + 1);
        const auto enc = zfnaf::encode(in);
        std::size_t empty = 0;
        for (int y = 0; y < in.shape().y; ++y)
            for (int x = 0; x < in.shape().x; ++x)
                for (int b = 0; b < enc.bricksPerColumn(); ++b)
                    empty += enc.nonZeroCount(x, y, b) == 0;
        const double bricks = static_cast<double>(enc.brickCount());
        t.addRow({n.name,
                  sim::strfmt("{}x{}x{}", in.shape().x, in.shape().y,
                              in.shape().z),
                  sim::Table::pct(tensor::zeroFraction(in)),
                  sim::Table::num(enc.totalNonZero() / bricks),
                  sim::Table::pct(empty / bricks),
                  sim::Table::num(
                      static_cast<double>(enc.storageBits()) /
                      (static_cast<double>(in.size()) *
                       zfnaf::kNeuronBits))});
    }
    t.print(std::cout);
    std::cout << "\nZFNAf keeps brick slots aligned, so the footprint is\n"
                 "always (16+offset bits)/16 = 1.25x the dense array —\n"
                 "the format trades memory for direct brick indexing\n"
                 "(Section IV-B1).\n";
    return 0;
}

int
cmdExportTraces(nn::zoo::NetId id, const CliOptions &opts)
{
    const auto net = nn::zoo::build(id, opts.seed);
    std::filesystem::create_directories(opts.out);
    const timing::DirectoryTraceProvider provider(opts.out);
    int written = 0;
    for (int i = 0; i < opts.images; ++i) {
        const std::uint64_t seed = opts.seed + i;
        for (int nodeId : net->convNodeIds()) {
            const auto in = nn::synthesizeConvInput(*net, nodeId, seed);
            tensor::saveTensorFile(provider.pathFor(*net, nodeId, seed),
                                   in);
            ++written;
        }
    }
    std::cout << "wrote " << written << " layer traces to " << opts.out
              << "; rerun timing against them by constructing a\n"
                 "timing::DirectoryTraceProvider (real framework traces\n"
                 "in the same format replace the synthetic generator).\n";
    return 0;
}

int
cmdTrace(nn::zoo::NetId id, const CliOptions &opts)
{
    driver::ExperimentConfig cfg;
    cfg.images = opts.images;
    cfg.seed = opts.seed;
    const auto net = nn::zoo::build(id, cfg.seed);

    timing::RunOptions ropts;
    ropts.imageSeed = cfg.seed;
    const auto base = timing::simulateNetwork(
        cfg.node, *net, timing::Arch::Baseline, ropts);
    const auto cnvRun =
        timing::simulateNetwork(cfg.node, *net, timing::Arch::Cnv, ropts);

    sim::TraceSink sink(opts.maxEvents);
    driver::appendNetworkTrace(sink, cnvRun, 1,
                               sim::strfmt("cnv ({})", net->name()));
    driver::appendNetworkTrace(
        sink, base, 2, sim::strfmt("dadiannao ({})", net->name()));

    // The attribution must account for every idle lane-cycle the
    // models reported — a gap means a producer forgot its reason.
    for (const auto *run : {&cnvRun, &base}) {
        const auto profile = driver::buildStallProfile(*run);
        const auto micro = run->totalMicro();
        CNV_ASSERT(profile.totalIdle() == micro.laneIdleCycles,
                   "{} stall breakdown ({}) != idle lane-cycles ({})",
                   run->architecture, profile.totalIdle(),
                   micro.laneIdleCycles);
    }

    auto open = [](const std::string &path) {
        std::ofstream os(path);
        if (!os)
            CNV_FATAL("cannot open output file '{}'", path);
        return os;
    };
    if (!opts.traceOut.empty()) {
        auto os = open(opts.traceOut);
        sink.writeJson(os, {sim::TraceArg("network", net->name()),
                            sim::TraceArg("seed", opts.seed),
                            sim::TraceArg("tool", "cnvsim trace")});
        std::cout << "wrote " << sink.events().size()
                  << " trace events to " << opts.traceOut;
        if (sink.droppedEvents() > 0)
            std::cout << " (" << sink.droppedEvents()
                      << " dropped at the --max-events cap)";
        std::cout << "\nload it in Perfetto (https://ui.perfetto.dev) or "
                     "chrome://tracing; 1 trace us = 1 cycle\n";
    }
    if (!opts.stallCsv.empty()) {
        auto os = open(opts.stallCsv);
        bool header = true;
        for (const auto *run : {&cnvRun, &base}) {
            driver::buildStallProfile(*run).writeCsv(
                os, run->architecture, header);
            header = false;
        }
        std::cout << "wrote stall breakdown to " << opts.stallCsv << '\n';
    }

    // Per-reason summary, CNV vs baseline side by side.
    const auto cnvProfile = driver::buildStallProfile(cnvRun);
    const auto baseProfile = driver::buildStallProfile(base);
    sim::Table t({"stall reason", "CNV lane-cycles",
                  "baseline lane-cycles"});
    for (int i = 0; i < sim::kStallReasonCount; ++i) {
        const auto r = static_cast<sim::StallReason>(i);
        t.addRow({sim::stallReasonName(r),
                  sim::Table::intNum(cnvProfile.total(r)),
                  sim::Table::intNum(baseProfile.total(r))});
    }
    t.addRow({"total idle", sim::Table::intNum(cnvProfile.totalIdle()),
              sim::Table::intNum(baseProfile.totalIdle())});
    t.print(std::cout);

    if (opts.stats) {
        driver::buildStats(base, power::Arch::Baseline)->dump(std::cout);
        driver::buildStats(cnvRun, power::Arch::Cnv)->dump(std::cout);
    }
    return 0;
}

int
cmdReproduce(const CliOptions &opts)
{
    // The headline numbers of EXPERIMENTS.md in one run: Figure 1,
    // Figure 9 (zero skipping only), Figure 11 and Figure 13.
    driver::ExperimentConfig cfg;
    cfg.images = opts.images;
    cfg.seed = opts.seed;
    std::cout << "node: " << cfg.node.describe() << "\n\n";

    sim::Table t({"network", "zero operands", "CNV speedup",
                  "EDP gain", "ED^2P gain"});
    double zf = 0, sp = 0, edp = 0, ed2p = 0;
    for (auto id : nn::zoo::allNetworks()) {
        const auto net = nn::zoo::build(id, cfg.seed);
        const double zeroFrac =
            nn::zeroOperandFraction(*net, cfg.seed + 100);
        const auto r = driver::evaluateNetwork(cfg, *net);
        const auto mb = power::metricsOf(power::Arch::Baseline,
                                         r.baselineEnergy,
                                         r.baselineCycles);
        const auto mc = power::metricsOf(power::Arch::Cnv, r.cnvEnergy,
                                         r.cnvCycles);
        zf += zeroFrac;
        sp += r.speedup();
        edp += mb.edp / mc.edp;
        ed2p += mb.ed2p / mc.ed2p;
        t.addRow({nn::zoo::netName(id), sim::Table::pct(zeroFrac),
                  sim::Table::num(r.speedup()),
                  sim::Table::num(mb.edp / mc.edp),
                  sim::Table::num(mb.ed2p / mc.ed2p)});
    }
    t.addRow({"average", sim::Table::pct(zf / 6), sim::Table::num(sp / 6),
              sim::Table::num(edp / 6), sim::Table::num(ed2p / 6)});
    t.addRow({"paper", "44.0%", "1.37", "1.47", "2.01"});
    t.print(std::cout);

    const auto base = power::areaOf(power::Arch::Baseline);
    const auto cnvA = power::areaOf(power::Arch::Cnv);
    std::cout << "\narea overhead: "
              << sim::Table::pct(cnvA.total() / base.total() - 1.0)
              << " (paper: 4.49%)\n";
    return 0;
}

int
cmdValidate(nn::zoo::NetId id, const CliOptions &opts)
{
    auto net = nn::zoo::build(id, opts.seed, opts.scale);
    net->calibrate();
    const auto image = nn::synthesizeImage(net->node(0).outShape,
                                           opts.seed + 1);

    const dadiannao::NodeConfig node;
    dadiannao::NodeModel baseline{node};
    core::CnvNodeModel cnv{node};
    const auto b = baseline.run(*net, image);
    const auto c = cnv.run(*net, image);
    const auto golden = net->forward(image);

    const bool ok = b.final == c.final && b.final == golden.final;
    std::cout << nn::zoo::netName(id) << " at 1/" << opts.scale
              << " scale: baseline/CNV/golden outputs "
              << (ok ? "bit-identical" : "MISMATCH") << "; top-1 "
              << b.top1 << "; cycles " << b.timing.totalCycles() << " vs "
              << c.timing.totalCycles() << '\n';
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty())
        usage();

    try {
        const std::string &command = args[0];
        if (command == "list")
            return cmdList();
        if (command == "reproduce")
            return cmdReproduce(parseOptions(args, 1));
        if (command == "trace" && args.size() >= 2 &&
            args[1].rfind("--", 0) == 0) {
            // trace also accepts its network via --net NAME.
            const CliOptions opts = parseOptions(args, 1);
            if (opts.net.empty())
                usage();
            return cmdTrace(nn::zoo::netFromName(opts.net), opts);
        }
        if (args.size() < 2)
            usage();
        const auto id = nn::zoo::netFromName(args[1]);
        const CliOptions opts = parseOptions(args, 2);
        if (command == "run")
            return cmdRun(id, opts);
        if (command == "power")
            return cmdPower(id, opts);
        if (command == "prune")
            return cmdPrune(id, opts);
        if (command == "validate")
            return cmdValidate(id, opts);
        if (command == "zfnaf")
            return cmdZfnaf(id, opts);
        if (command == "export-traces")
            return cmdExportTraces(id, opts);
        if (command == "trace")
            return cmdTrace(id, opts);
        usage();
    } catch (const sim::FatalError &e) {
        std::cerr << e.what() << '\n';
        return 1;
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << '\n';
        return 1;
    }
}
