#include "driver/stats_report.h"

#include <algorithm>

#include "sim/logging.h"

namespace cnv::driver {

namespace {

/** Stat-path-safe layer name (no '.' separators). */
std::string
sanitize(const std::string &name)
{
    std::string out = name;
    std::replace(out.begin(), out.end(), '.', '_');
    return out;
}

void
fillActivity(sim::StatGroup &g, const dadiannao::Activity &a)
{
    g.addCounter("other", "lane events in non-conv layers") += a.other;
    g.addCounter("conv1", "lane events in the first conv layer") +=
        a.conv1;
    g.addCounter("zero", "lane events processing zero neurons") += a.zero;
    g.addCounter("nonZero", "lane events processing non-zero neurons") +=
        a.nonZero;
    g.addCounter("stall", "lane events idle on window sync") += a.stall;
}

void
fillEnergy(sim::StatGroup &g, const dadiannao::EnergyCounters &e)
{
    g.addCounter("sbReads", "16-synapse SB sublane reads") += e.sbReads;
    g.addCounter("nmReads", "16-neuron-wide NM reads") += e.nmReads;
    g.addCounter("nmWrites", "16-neuron-wide NM writes") += e.nmWrites;
    g.addCounter("nbinReads", "NBin entry reads") += e.nbinReads;
    g.addCounter("nbinWrites", "NBin entry writes") += e.nbinWrites;
    g.addCounter("multOps", "multiplications performed") += e.multOps;
    g.addCounter("addOps", "adder-tree additions") += e.addOps;
    g.addCounter("encoderOps", "encoder neuron examinations") +=
        e.encoderOps;
    g.addCounter("offchipBytes", "bytes streamed from off-chip") +=
        e.offchipBytes;
}

} // namespace

std::unique_ptr<sim::StatGroup>
buildStats(const dadiannao::NetworkResult &result, power::Arch arch,
           const power::PowerParams &params)
{
    auto root = std::make_unique<sim::StatGroup>(result.architecture);

    auto &cycles = root->addCounter("cycles", "total execution cycles");
    cycles += result.totalCycles();

    const dadiannao::Activity activity = result.totalActivity();
    fillActivity(root->addGroup("activity"), activity);
    fillEnergy(root->addGroup("energy"), result.totalEnergy());

    // Derived quantities the paper reasons about.
    const double total = static_cast<double>(activity.total());
    root->addFormula("zeroShare",
                     "fraction of lane events processing zeros",
                     [activity, total] {
                         return total > 0 ? activity.zero / total : 0.0;
                     });
    root->addFormula("laneUtilisation",
                     "fraction of lane events doing non-zero work",
                     [activity, total] {
                         return total > 0
                             ? (activity.nonZero + activity.conv1 +
                                activity.other) / total
                             : 0.0;
                     });

    const auto metrics =
        power::metricsOf(arch, result.totalEnergy(), result.totalCycles(),
                         params);
    auto &pw = root->addGroup("power");
    const auto breakdown = power::powerOf(
        arch, result.totalEnergy(), result.totalCycles(), params);
    pw.addScalar("sbWatts", "SB power (static + dynamic)") =
        breakdown.sbStatic + breakdown.sbDynamic;
    pw.addScalar("nmWatts", "NM power (static + dynamic)") =
        breakdown.nmStatic + breakdown.nmDynamic;
    pw.addScalar("logicWatts", "logic power (static + dynamic)") =
        breakdown.logicStatic + breakdown.logicDynamic;
    pw.addScalar("sramWatts", "SRAM power (static + dynamic)") =
        breakdown.sramStatic + breakdown.sramDynamic;
    pw.addScalar("totalWatts", "total average power") = breakdown.total();
    pw.addScalar("seconds", "execution time") = metrics.seconds;
    pw.addScalar("joules", "energy") = metrics.joules;
    pw.addScalar("edp", "power x delay (paper's EDP arithmetic)") =
        metrics.edp;
    pw.addScalar("ed2p", "power x delay^2") = metrics.ed2p;

    auto &layers = root->addGroup("layers");
    int index = 0;
    for (const dadiannao::LayerResult &layer : result.layers) {
        auto &g = layers.addGroup(
            sim::strfmt("L{}_{}", index++, sanitize(layer.name)));
        g.addCounter("cycles", "layer cycles") += layer.cycles;
        fillActivity(g.addGroup("activity"), layer.activity);
    }
    return root;
}

} // namespace cnv::driver
