#include "driver/stats_report.h"

#include "driver/trace_pipeline.h"
#include "mem/memory_model.h"
#include "sim/logging.h"
#include "sim/metrics.h"
#include "sim/parallel.h"
#include "sim/stats_export.h"
#include "timing/network_model.h"

namespace cnv::driver {

namespace {

void
fillActivity(sim::StatGroup &g, const dadiannao::Activity &a)
{
    g.addCounter("other", "lane events in non-conv layers") += a.other;
    g.addCounter("conv1", "lane events in the first conv layer") +=
        a.conv1;
    g.addCounter("zero", "lane events processing zero neurons") += a.zero;
    g.addCounter("nonZero", "lane events processing non-zero neurons") +=
        a.nonZero;
    g.addCounter("stall", "lane events idle on window sync") += a.stall;
}

void
fillEnergy(sim::StatGroup &g, const dadiannao::EnergyCounters &e)
{
    g.addCounter("sbReads", "16-synapse SB sublane reads") += e.sbReads;
    g.addCounter("nmReads", "16-neuron-wide NM reads") += e.nmReads;
    g.addCounter("nmWrites", "16-neuron-wide NM writes") += e.nmWrites;
    g.addCounter("nbinReads", "NBin entry reads") += e.nbinReads;
    g.addCounter("nbinWrites", "NBin entry writes") += e.nbinWrites;
    g.addCounter("multOps", "multiplications performed") += e.multOps;
    g.addCounter("addOps", "adder-tree additions") += e.addOps;
    g.addCounter("encoderOps", "encoder neuron examinations") +=
        e.encoderOps;
    g.addCounter("offchipBytes", "bytes streamed from off-chip") +=
        e.offchipBytes;
}

void
fillMicro(sim::StatGroup &g, const dadiannao::MicroTrace &m,
          bool memModelled)
{
    g.addCounter("laneBusyCycles",
                 "per-unit lane-cycles doing datapath work") +=
        m.laneBusyCycles;
    g.addCounter("laneIdleCycles",
                 "per-unit lane-cycles idle (sync or memory)") +=
        m.laneIdleCycles;
    sim::StatGroup &stalls = g.addGroup("stalls");
    stalls.addCounter(
        sim::stallReasonName(sim::StallReason::BrickBufferEmpty),
        "lane-cycles idle waiting on NM brick fetches") +=
        m.stalls.brickBufferEmpty;
    stalls.addCounter(
        sim::stallReasonName(sim::StallReason::WindowBarrier),
        "lane-cycles idle at window-group sync barriers") +=
        m.stalls.windowBarrier;
    stalls.addCounter(sim::stallReasonName(sim::StallReason::SynapseWait),
                      "lane-cycles idle on the off-chip synapse stream") +=
        m.stalls.synapseWait;
    stalls.addCounter(
        sim::stallReasonName(sim::StallReason::SliceDrained),
        "lane-cycles idle with the lane's slice drained") +=
        m.stalls.sliceDrained;
    // The memory stall reasons exist only on `--mem banked` runs;
    // omitting them otherwise keeps ideal reports byte-identical
    // to pre-mem builds.
    if (memModelled) {
        stalls.addCounter(
            sim::stallReasonName(sim::StallReason::NmBankConflict),
            "lane-cycles idle serialising on NM bank conflicts") +=
            m.stalls.nmBankConflict;
        stalls.addCounter(
            sim::stallReasonName(sim::StallReason::GbMiss),
            "lane-cycles idle on exposed global-buffer miss fills") +=
            m.stalls.gbMiss;
        stalls.addCounter(
            sim::stallReasonName(sim::StallReason::DramWait),
            "lane-cycles idle on off-chip activation spills") +=
            m.stalls.dramWait;
    }
    g.addCounter("encoderBusyCycles",
                 "cycles the serial encoder spent converting") +=
        m.encoderBusyCycles;
    g.addCounter("encoderBricks", "ZFNAf bricks the encoder produced") +=
        m.encoderBricks;
    g.addFormula("laneUtilisation",
                 "busy fraction of modelled lane-cycles",
                 [m] { return m.laneUtilisation(); });
}

/** Idle lane-cycles attributed to the memory hierarchy. */
std::uint64_t
memStallCycles(const dadiannao::StallBreakdown &s)
{
    return s.nmBankConflict + s.gbMiss + s.dramWait;
}

/** Memory-bound: over half the layer's lane-cycles wait on memory. */
bool
isMemoryBound(const dadiannao::MicroTrace &m)
{
    const std::uint64_t total = m.laneBusyCycles + m.laneIdleCycles;
    return total > 0 && memStallCycles(m.stalls) * 2 > total;
}

void
fillMemory(sim::StatGroup &g, const dadiannao::MemTrace &mem,
           const dadiannao::MicroTrace &micro)
{
    g.addCounter("nmAccesses", "brick-granular NM reads issued") +=
        mem.nmAccesses;
    g.addCounter("nmConflictCycles",
                 "extra cycles serialising on NM bank conflicts") +=
        mem.nmConflictCycles;
    g.addCounter("gbHits", "global-buffer hits") += mem.gbHits;
    g.addCounter("gbMisses", "global-buffer misses") += mem.gbMisses;
    g.addCounter("gbEvictions", "global-buffer capacity evictions") +=
        mem.gbEvictions;
    g.addCounter("dramBytes", "off-chip bytes transferred") +=
        mem.dramBytes;
    g.addCounter("dramCycles", "DRAM channel busy cycles") +=
        mem.dramCycles;
    const std::uint64_t memStall = memStallCycles(micro.stalls);
    const std::uint64_t total =
        micro.laneBusyCycles + micro.laneIdleCycles;
    g.addFormula("memStallShare",
                 "fraction of lane-cycles idle on the memory hierarchy",
                 [memStall, total] {
                     return total > 0 ? static_cast<double>(memStall) /
                                            static_cast<double>(total)
                                      : 0.0;
                 });
}

} // namespace

std::unique_ptr<sim::StatGroup>
buildStats(const dadiannao::NetworkResult &result,
           const arch::ArchModel &model, const power::PowerParams &params)
{
    auto root = std::make_unique<sim::StatGroup>(result.architecture);

    auto &cycles = root->addCounter("cycles", "total execution cycles");
    cycles += result.totalCycles();

    const dadiannao::Activity activity = result.totalActivity();
    fillActivity(root->addGroup("activity"), activity);
    fillEnergy(root->addGroup("energy"), result.totalEnergy());
    fillMicro(root->addGroup("micro"), result.totalMicro(),
              result.memModelled);
    if (result.memModelled)
        fillMemory(root->addGroup("memory"), result.totalMem(),
                   result.totalMicro());

    // Derived quantities the paper reasons about.
    const double total = static_cast<double>(activity.total());
    root->addFormula("zeroShare",
                     "fraction of lane events processing zeros",
                     [activity, total] {
                         return total > 0 ? activity.zero / total : 0.0;
                     });
    root->addFormula("laneUtilisation",
                     "fraction of lane events doing non-zero work",
                     [activity, total] {
                         return total > 0
                             ? (activity.nonZero + activity.conv1 +
                                activity.other) / total
                             : 0.0;
                     });

    const auto metrics =
        model.metrics(result.totalEnergy(), result.totalCycles(), params);
    auto &pw = root->addGroup("power");
    const auto breakdown =
        model.power(result.totalEnergy(), result.totalCycles(), params);
    pw.addScalar("sbWatts", "SB power (static + dynamic)") =
        breakdown.sbStatic + breakdown.sbDynamic;
    pw.addScalar("nmWatts", "NM power (static + dynamic)") =
        breakdown.nmStatic + breakdown.nmDynamic;
    pw.addScalar("logicWatts", "logic power (static + dynamic)") =
        breakdown.logicStatic + breakdown.logicDynamic;
    pw.addScalar("sramWatts", "SRAM power (static + dynamic)") =
        breakdown.sramStatic + breakdown.sramDynamic;
    pw.addScalar("totalWatts", "total average power") = breakdown.total();
    pw.addScalar("seconds", "execution time") = metrics.seconds;
    pw.addScalar("joules", "energy") = metrics.joules;
    pw.addScalar("edp", "power x delay (paper's EDP arithmetic)") =
        metrics.edp;
    pw.addScalar("ed2p", "power x delay^2") = metrics.ed2p;

    auto &layers = root->addGroup("layers");
    int index = 0;
    for (const dadiannao::LayerResult &layer : result.layers) {
        auto &g = layers.addGroup(layerStatKey(index++, layer.name));
        g.addCounter("cycles", "layer cycles") += layer.cycles;
        g.addCounter("startCycle",
                     "layer's first cycle on the run timeline") +=
            layer.startCycle;
        fillActivity(g.addGroup("activity"), layer.activity);
        fillEnergy(g.addGroup("energy"), layer.energy);
        fillMicro(g.addGroup("micro"), layer.micro, result.memModelled);
        if (result.memModelled) {
            fillMemory(g.addGroup("memory"), layer.mem, layer.micro);
            g.addFormula("memoryBound",
                         "1 when over half the layer's lane-cycles "
                         "wait on the memory hierarchy",
                         [bound = isMemoryBound(layer.micro)] {
                             return bound ? 1.0 : 0.0;
                         });
        }
    }
    return root;
}

RunReport
buildRunReport(const ExperimentConfig &cfg, const nn::Network &net,
               const std::vector<const arch::ArchModel *> &archs,
               const nn::PruneConfig *prune)
{
    CNV_ASSERT(!archs.empty(), "need at least one architecture");
    RunReport report;
    report.manifest = makeManifest("cnvsim");
    report.manifest.network = net.name();
    report.manifest.nodeConfig = cfg.node.describe();
    report.manifest.images = cfg.images;
    report.manifest.seed = cfg.seed;
    report.manifest.weightSparsity = cfg.weightSparsity;
    report.manifest.mem = mem::kindName(cfg.memKind);

    // The timelines and the aggregate share one cache, so the
    // report's counters reflect the whole run's reuse.
    timing::TraceCache cache;
    report.timelines.resize(archs.size());
    sim::parallelMapReduce(
        archs.size(),
        [&](std::size_t a) {
            timing::RunOptions opts;
            opts.imageSeed = cfg.seed;
            opts.prune = prune;
            opts.cache = &cache;
            opts.weightSparsity = cfg.weightSparsity;
            opts.memKind = cfg.memKind;
            return archs[a]->simulateNetwork(cfg.node, net, opts);
        },
        [&](std::size_t a, dadiannao::NetworkResult &&result) {
            report.timelines[a] = {archs[a], std::move(result)};
        });
    report.aggregate = evaluateNetworkArchs(cfg, net, archs, prune, &cache);
    report.cacheStats = cache.stats();
    return report;
}

RunReport
buildRunReport(const ExperimentConfig &cfg, const nn::Network &net,
               const nn::PruneConfig *prune)
{
    return buildRunReport(cfg, net, arch::canonicalPair(), prune);
}

void
writeReportJson(const RunReport &report, std::ostream &os)
{
    sim::JsonWriter w(os);
    w.beginObject();
    w.key("schema").value("cnv-report-v1");
    w.key("manifest");
    report.manifest.writeJson(w);

    w.key("architectures").beginObject();
    for (const ArchTimeline &t : report.timelines) {
        const auto tree = buildStats(t.result, *t.model);
        w.key(tree->name());
        sim::exportJson(*tree, w);
    }
    w.endObject();

    w.key("summary").beginObject();
    w.key("images").value(report.aggregate.images);
    w.key("archs").beginObject();
    for (const ArchAggregate &a : report.aggregate.archs) {
        w.key(a.id()).beginObject();
        w.key("cycles").value(a.cycles);
        w.endObject();
    }
    w.endObject();
    w.key("cache").beginObject();
    w.key("tensorHits").value(report.cacheStats.tensorHits);
    w.key("tensorMisses").value(report.cacheStats.tensorMisses);
    w.key("countMapHits").value(report.cacheStats.countMapHits);
    w.key("countMapMisses").value(report.cacheStats.countMapMisses);
    w.endObject();
    // Memory-hierarchy summary: aggregate counters over all images
    // plus the single-image timeline's memory-bound vs compute-bound
    // layer split. Only present on `--mem banked` runs.
    bool anyMem = false;
    for (const ArchAggregate &a : report.aggregate.archs)
        anyMem = anyMem || a.memModelled;
    if (anyMem) {
        w.key("memory").beginObject();
        for (const ArchAggregate &a : report.aggregate.archs) {
            w.key(a.id()).beginObject();
            w.key("nmAccesses").value(a.mem.nmAccesses);
            w.key("nmConflictCycles").value(a.mem.nmConflictCycles);
            w.key("gbHits").value(a.mem.gbHits);
            w.key("gbMisses").value(a.mem.gbMisses);
            w.key("gbEvictions").value(a.mem.gbEvictions);
            w.key("dramBytes").value(a.mem.dramBytes);
            w.key("dramCycles").value(a.mem.dramCycles);
            std::uint64_t memoryBound = 0, computeBound = 0;
            for (const ArchTimeline &t : report.timelines) {
                if (t.model != a.model)
                    continue;
                for (const dadiannao::LayerResult &l : t.result.layers)
                    (isMemoryBound(l.micro) ? memoryBound
                                            : computeBound)++;
            }
            w.key("memoryBoundLayers").value(memoryBound);
            w.key("computeBoundLayers").value(computeBound);
            w.endObject();
        }
        w.endObject();
    }
    // Legacy two-architecture trio: kept whenever the canonical pair
    // is part of the selection so existing consumers keep parsing.
    const ArchAggregate *base = report.aggregate.findArch("dadiannao");
    const ArchAggregate *cnvAgg = report.aggregate.findArch("cnv");
    if (base != nullptr && cnvAgg != nullptr) {
        w.key("baselineCycles").value(base->cycles);
        w.key("cnvCycles").value(cnvAgg->cycles);
        w.key("speedup").value(report.aggregate.speedup());
    }
    w.endObject();

    // Host-side telemetry (wall-clock only, simulated results are
    // unaffected); determinism checks strip this block before
    // comparing reports byte for byte.
    w.key("hostProfile");
    sim::writeHostProfile(sim::metrics().snapshot(), w);

    w.endObject();
    os << '\n';
    CNV_ASSERT(w.complete(), "report document left unbalanced");
}

void
writeReportCsv(const RunReport &report, std::ostream &os)
{
    os << "path,kind,value,description\n";
    auto manifestRow = [&os](const char *field, const std::string &v,
                             const char *desc) {
        os << "manifest." << field << ",manifest," << sim::csvQuote(v)
           << ',' << sim::csvQuote(desc) << '\n';
    };
    const RunManifest &m = report.manifest;
    manifestRow("tool", m.tool, "binary that produced the report");
    manifestRow("gitSha", m.gitSha, "configure-time git commit");
    manifestRow("version", m.version, "project version");
    manifestRow("network", m.network, "network evaluated");
    manifestRow("nodeConfig", m.nodeConfig, "node configuration");
    manifestRow("images", std::to_string(m.images), "images evaluated");
    manifestRow("seed", std::to_string(m.seed), "root seed");
    manifestRow("jobs", std::to_string(m.jobs), "worker-pool job count");
    manifestRow("weightSparsity", sim::strfmt("{}", m.weightSparsity),
                "Cnv2 weight-sparsity knob");
    if (m.mem != "ideal")
        manifestRow("mem", m.mem, "memory-hierarchy model");
    manifestRow("wallSeconds", sim::strfmt("{}", m.wallSeconds),
                "wall-clock duration of the run");

    for (const ArchTimeline &t : report.timelines)
        sim::exportCsv(*buildStats(t.result, *t.model), os, "",
                       /*header=*/false);

    os << "summary.images,summary," << report.aggregate.images
       << ",images aggregated\n";
    for (const ArchAggregate &a : report.aggregate.archs)
        os << "summary.archs." << a.id() << ".cycles,summary," << a.cycles
           << ',' << sim::csvQuote(a.id() + " cycles summed over images")
           << '\n';
    const timing::TraceCache::Stats &cs = report.cacheStats;
    os << "summary.cache.tensorHits,summary," << cs.tensorHits
       << ",trace-cache tensor lookups served from cache\n";
    os << "summary.cache.tensorMisses,summary," << cs.tensorMisses
       << ",trace-cache tensors synthesized or loaded\n";
    os << "summary.cache.countMapHits,summary," << cs.countMapHits
       << ",trace-cache count-map lookups served from cache\n";
    os << "summary.cache.countMapMisses,summary," << cs.countMapMisses
       << ",trace-cache count maps computed\n";
    for (const ArchAggregate &a : report.aggregate.archs) {
        if (!a.memModelled)
            continue;
        const std::string p = "summary.memory." + a.id();
        os << p << ".nmAccesses,summary," << a.mem.nmAccesses
           << ",brick-granular NM reads issued\n";
        os << p << ".nmConflictCycles,summary," << a.mem.nmConflictCycles
           << ",extra cycles serialising on NM bank conflicts\n";
        os << p << ".gbHits,summary," << a.mem.gbHits
           << ",global-buffer hits\n";
        os << p << ".gbMisses,summary," << a.mem.gbMisses
           << ",global-buffer misses\n";
        os << p << ".gbEvictions,summary," << a.mem.gbEvictions
           << ",global-buffer capacity evictions\n";
        os << p << ".dramBytes,summary," << a.mem.dramBytes
           << ",off-chip bytes transferred\n";
        os << p << ".dramCycles,summary," << a.mem.dramCycles
           << ",DRAM channel busy cycles\n";
    }
    const ArchAggregate *base = report.aggregate.findArch("dadiannao");
    const ArchAggregate *cnvAgg = report.aggregate.findArch("cnv");
    if (base != nullptr && cnvAgg != nullptr) {
        os << "summary.baselineCycles,summary," << base->cycles
           << ",baseline cycles summed over images\n";
        os << "summary.cnvCycles,summary," << cnvAgg->cycles
           << ",CNV cycles summed over images\n";
        os << "summary.speedup,summary,"
           << sim::strfmt("{}", report.aggregate.speedup())
           << ",baseline/CNV cycle ratio\n";
    }
}

} // namespace cnv::driver
