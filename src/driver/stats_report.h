/**
 * @file
 * Bridges simulation results into the sim::StatGroup framework so
 * embedding applications (and the cnvsim CLI) can dump or query
 * every measured quantity by name, gem5-style — and serializes the
 * whole run (manifest + every selected architecture + summary) as
 * the JSON / CSV report documented in docs/observability.md.
 */

#ifndef CNV_DRIVER_STATS_REPORT_H
#define CNV_DRIVER_STATS_REPORT_H

#include <memory>
#include <ostream>
#include <vector>

#include "arch/registry.h"
#include "dadiannao/metrics.h"
#include "driver/driver.h"
#include "driver/run_manifest.h"
#include "power/model.h"
#include "sim/stats.h"

namespace cnv::driver {

/**
 * Build a statistics tree for one network run:
 *
 *   <arch>.cycles, <arch>.activity.{other,conv1,zero,nonZero,stall},
 *   <arch>.energy.{sbReads,nmReads,...}, <arch>.power.{sb,nm,...},
 *   <arch>.micro.{laneBusyCycles,...,stalls.{brick_buffer_empty,...}},
 *   <arch>.layers.L<N>_<name>.{cycles,startCycle,activity,energy,micro}
 *
 * plus derived formulas (utilisation, zero share, joules, EDP). The
 * power subtree uses the model's calibrated parameter set. The
 * layers subtree is the run's timeline: startCycle is each layer's
 * first cycle on the serialized schedule.
 */
std::unique_ptr<sim::StatGroup>
buildStats(const dadiannao::NetworkResult &result,
           const arch::ArchModel &model,
           const power::PowerParams &params = {});

/** One architecture's single-image timeline within a RunReport. */
struct ArchTimeline
{
    /** The model that produced the timeline (registry-owned). */
    const arch::ArchModel *model = nullptr;
    /** Single-image (seed = manifest.seed) per-layer timeline. */
    dadiannao::NetworkResult result;
};

/**
 * One experiment's complete machine-readable record: provenance,
 * the per-layer timelines of every selected architecture (measured
 * on the manifest's root seed), and the multi-image aggregate
 * summary — all keyed by architecture id in selection order.
 */
struct RunReport
{
    RunManifest manifest;
    /** Per-architecture single-image timelines, in selection order. */
    std::vector<ArchTimeline> timelines;
    /** Aggregate over manifest.images images, same selection. */
    NetworkReport aggregate;
    /** Trace-cache hit/miss totals of the run (job-count-invariant:
     *  misses == distinct (image, layer, prune, brick) keys). */
    timing::TraceCache::Stats cacheStats;
};

/**
 * Evaluate `net` on the selected architectures and assemble a
 * RunReport. The caller fills manifest.tool and
 * manifest.wallSeconds (the build provenance fields are filled here
 * via makeManifest()).
 */
RunReport buildRunReport(const ExperimentConfig &cfg,
                         const nn::Network &net,
                         const std::vector<const arch::ArchModel *> &archs,
                         const nn::PruneConfig *prune = nullptr);

/** Same, over the canonical dadiannao + cnv pair. */
RunReport buildRunReport(const ExperimentConfig &cfg,
                         const nn::Network &net,
                         const nn::PruneConfig *prune = nullptr);

/**
 * Write a report as one JSON document (schema "cnv-report-v1"):
 *
 *   { "schema": "cnv-report-v1",
 *     "manifest": { ... RunManifest ... },
 *     "architectures": { "<arch id>": <stat tree>, ... },
 *     "summary": { "images",
 *                  "archs": { "<arch id>": { "cycles" }, ... },
 *                  "cache": { "tensorHits", "tensorMisses",
 *                             "countMapHits", "countMapMisses" },
 *                  "memory": { "<arch id>": { "nmAccesses", ...,
 *                              "memoryBoundLayers",
 *                              "computeBoundLayers" }, ... },
 *                  "baselineCycles", "cnvCycles", "speedup" } }
 *
 * where each stat tree follows the sim::exportJson() layout. The
 * architectures object holds one section per selected architecture
 * in selection order; the legacy baselineCycles/cnvCycles/speedup
 * summary trio is emitted whenever the canonical dadiannao and cnv
 * entries are both part of the selection, so two-architecture
 * consumers keep parsing unchanged.
 */
void writeReportJson(const RunReport &report, std::ostream &os);

/**
 * Write a report as CSV: `path,kind,value,description` rows —
 * manifest fields first (kind "manifest"), then every statistic of
 * each architecture tree (paths rooted at the architecture id),
 * then the summary (kind "summary").
 */
void writeReportCsv(const RunReport &report, std::ostream &os);

} // namespace cnv::driver

#endif // CNV_DRIVER_STATS_REPORT_H
