/**
 * @file
 * Bridges simulation results into the sim::StatGroup framework so
 * embedding applications (and the cnvsim CLI) can dump or query
 * every measured quantity by name, gem5-style — and serializes the
 * whole run (manifest + both architectures + summary) as the JSON /
 * CSV report documented in docs/observability.md.
 */

#ifndef CNV_DRIVER_STATS_REPORT_H
#define CNV_DRIVER_STATS_REPORT_H

#include <memory>
#include <ostream>

#include "dadiannao/metrics.h"
#include "driver/driver.h"
#include "driver/run_manifest.h"
#include "power/model.h"
#include "sim/stats.h"

namespace cnv::driver {

/**
 * Build a statistics tree for one network run:
 *
 *   <arch>.cycles, <arch>.activity.{other,conv1,zero,nonZero,stall},
 *   <arch>.energy.{sbReads,nmReads,...}, <arch>.power.{sb,nm,...},
 *   <arch>.micro.{laneBusyCycles,...,stalls.{brick_buffer_empty,...}},
 *   <arch>.layers.L<N>_<name>.{cycles,startCycle,activity,energy,micro}
 *
 * plus derived formulas (utilisation, zero share, joules, EDP).
 * The layers subtree is the run's timeline: startCycle is each
 * layer's first cycle on the serialized schedule.
 */
std::unique_ptr<sim::StatGroup>
buildStats(const dadiannao::NetworkResult &result, power::Arch arch,
           const power::PowerParams &params = {});

/**
 * One experiment's complete machine-readable record: provenance,
 * the per-layer timelines of both architectures (measured on the
 * manifest's root seed), and the multi-image aggregate summary.
 */
struct RunReport
{
    RunManifest manifest;
    /** Single-image (seed = manifest.seed) baseline timeline. */
    dadiannao::NetworkResult baseline;
    /** Single-image (seed = manifest.seed) CNV timeline. */
    dadiannao::NetworkResult cnv;
    /** Aggregate over manifest.images images. */
    NetworkReport aggregate;
};

/**
 * Evaluate `net` on both architectures and assemble a RunReport.
 * The caller fills manifest.tool and manifest.wallSeconds (the
 * build provenance fields are filled here via makeManifest()).
 */
RunReport buildRunReport(const ExperimentConfig &cfg,
                         const nn::Network &net,
                         const nn::PruneConfig *prune = nullptr);

/**
 * Write a report as one JSON document (schema "cnv-report-v1"):
 *
 *   { "schema": "cnv-report-v1",
 *     "manifest": { ... RunManifest ... },
 *     "architectures": { "dadiannao": <stat tree>,
 *                        "cnv": <stat tree> },
 *     "summary": { "images", "baselineCycles", "cnvCycles",
 *                  "speedup" } }
 *
 * where each stat tree follows the sim::exportJson() layout.
 */
void writeReportJson(const RunReport &report, std::ostream &os);

/**
 * Write a report as CSV: `path,kind,value,description` rows —
 * manifest fields first (kind "manifest"), then every statistic of
 * both architecture trees, then the summary (kind "summary").
 */
void writeReportCsv(const RunReport &report, std::ostream &os);

} // namespace cnv::driver

#endif // CNV_DRIVER_STATS_REPORT_H
