/**
 * @file
 * Bridges simulation results into the sim::StatGroup framework so
 * embedding applications (and the cnvsim CLI) can dump or query
 * every measured quantity by name, gem5-style.
 */

#ifndef CNV_DRIVER_STATS_REPORT_H
#define CNV_DRIVER_STATS_REPORT_H

#include <memory>

#include "dadiannao/metrics.h"
#include "power/model.h"
#include "sim/stats.h"

namespace cnv::driver {

/**
 * Build a statistics tree for one network run:
 *
 *   <arch>.cycles, <arch>.activity.{other,conv1,zero,nonZero,stall},
 *   <arch>.energy.{sbReads,nmReads,...}, <arch>.power.{sb,nm,...},
 *   <arch>.layer<N>.cycles, ...
 *
 * plus derived formulas (utilisation, zero share, joules, EDP).
 */
std::unique_ptr<sim::StatGroup>
buildStats(const dadiannao::NetworkResult &result, power::Arch arch,
           const power::PowerParams &params = {});

} // namespace cnv::driver

#endif // CNV_DRIVER_STATS_REPORT_H
