#include "zfnaf/format.h"

#include <algorithm>
#include <bit>

#include "core/simd.h"
#include "sim/logging.h"

namespace cnv::zfnaf {

namespace {

namespace simd = core::simd;

/** Upper bound on brickSize, so brick scratch can live on the stack. */
constexpr int kMaxBrickSize = 256;

int
ceilDiv(int a, int b)
{
    return (a + b - 1) / b;
}

/**
 * Number of values in p[0..len) passing the keep predicate
 * "non-zero and |raw| >= threshold" (threshold pre-clamped to the
 * unsigned-16 domain; zero-filled tail lanes never count).
 */
int
countKept(const tensor::Fixed16 *p, int len, std::uint16_t t)
{
    int nz = 0;
    int c = 0;
    for (; c + simd::kLanes <= len; c += simd::kLanes)
        nz += simd::geCount(simd::loadFull(p + c), t);
    if (c < len)
        nz += simd::geCount(simd::loadPartial(p + c, len - c), t);
    return nz;
}

} // namespace

EncodedArray::EncodedArray(tensor::Shape3 shape, int brickSize)
    : shape_(shape), brickSize_(brickSize)
{
    if (brickSize < 1 || brickSize > 256)
        CNV_FATAL("brick size {} outside supported range [1, 256]",
                  brickSize);
    bricksPerColumn_ = ceilDiv(shape.z, brickSize);
    const std::size_t bricks = brickCount();
    slots_.resize(bricks * static_cast<std::size_t>(brickSize_));
    counts_.assign(bricks, 0);
}

int
EncodedArray::offsetBits() const
{
    int bits = 0;
    while ((1 << bits) < brickSize_)
        ++bits;
    return bits == 0 ? 1 : bits;
}

std::size_t
EncodedArray::brickCount() const
{
    return static_cast<std::size_t>(shape_.x) *
           static_cast<std::size_t>(shape_.y) *
           static_cast<std::size_t>(bricksPerColumn_);
}

std::size_t
EncodedArray::brickIndex(int x, int y, int b) const
{
    CNV_ASSERT(x >= 0 && x < shape_.x && y >= 0 && y < shape_.y &&
               b >= 0 && b < bricksPerColumn_,
               "brick index ({},{},{}) out of range", x, y, b);
    return (static_cast<std::size_t>(y) * shape_.x + x) * bricksPerColumn_ +
           b;
}

int
EncodedArray::nonZeroCount(int x, int y, int b) const
{
    return counts_[brickIndex(x, y, b)];
}

std::span<const EncodedNeuron>
EncodedArray::brick(int x, int y, int b) const
{
    const std::size_t idx = brickIndex(x, y, b);
    return {slots_.data() + idx * brickSize_,
            static_cast<std::size_t>(counts_[idx])};
}

void
EncodedArray::setBrick(int x, int y, int b,
                       std::span<const EncodedNeuron> entries)
{
    const std::size_t idx = brickIndex(x, y, b);
    if (entries.size() > static_cast<std::size_t>(brickSize_))
        CNV_FATAL("brick overflow: {} entries into {}-neuron brick",
                  entries.size(), brickSize_);

    int lastOffset = -1;
    for (const EncodedNeuron &e : entries) {
        if (e.value.isZero())
            CNV_FATAL("zero value stored in ZFNAf brick");
        if (e.offset >= brickSize_)
            CNV_FATAL("offset {} outside {}-neuron brick", int(e.offset),
                      brickSize_);
        if (static_cast<int>(e.offset) <= lastOffset)
            CNV_FATAL("non-increasing offsets in ZFNAf brick");
        lastOffset = e.offset;
    }

    EncodedNeuron *slot = slots_.data() + idx * brickSize_;
    std::size_t i = 0;
    for (; i < entries.size(); ++i)
        slot[i] = entries[i];
    for (; i < static_cast<std::size_t>(brickSize_); ++i)
        slot[i] = EncodedNeuron{}; // zero padding
    counts_[idx] = static_cast<std::uint8_t>(entries.size());
}

std::size_t
EncodedArray::totalNonZero() const
{
    std::size_t total = 0;
    for (std::uint8_t c : counts_)
        total += c;
    return total;
}

std::size_t
EncodedArray::storageBits() const
{
    // Every slot is materialised (alignment is preserved); each
    // encoded neuron carries a 16-bit value plus an offset field.
    const std::size_t perNeuron =
        static_cast<std::size_t>(kNeuronBits) +
        static_cast<std::size_t>(offsetBits());
    return slots_.size() * perNeuron;
}

std::size_t
EncodedArray::offsetOnlyStorageBits() const
{
    // Offset fields stay fully materialised (one per slot, keeping
    // bricks directly indexable); values are stored only for the
    // non-zero neurons.
    return slots_.size() * static_cast<std::size_t>(offsetBits()) +
           totalNonZero() * static_cast<std::size_t>(kNeuronBits);
}

void
EncodedArray::checkInvariants() const
{
    for (int y = 0; y < shape_.y; ++y) {
        for (int x = 0; x < shape_.x; ++x) {
            for (int b = 0; b < bricksPerColumn_; ++b) {
                const auto entries = brick(x, y, b);
                int last = -1;
                for (const EncodedNeuron &e : entries) {
                    CNV_ASSERT(!e.value.isZero(),
                               "zero value in brick ({},{},{})", x, y, b);
                    CNV_ASSERT(e.offset < brickSize_,
                               "offset out of brick ({},{},{})", x, y, b);
                    CNV_ASSERT(static_cast<int>(e.offset) > last,
                               "offsets not increasing in brick ({},{},{})",
                               x, y, b);
                    // Offsets in the tail brick must map to real
                    // neurons of the conventional array.
                    CNV_ASSERT(b * brickSize_ + e.offset < shape_.z,
                               "offset past array depth in brick ({},{},{})",
                               x, y, b);
                    last = e.offset;
                }
            }
        }
    }
}

EncodedArray
encode(const tensor::NeuronTensor &in, int brickSize,
       std::int32_t pruneThreshold)
{
    EncodedArray out(in.shape(), brickSize);
    const std::uint16_t t = simd::clampThreshold(pruneThreshold);
    EncodedNeuron scratch[kMaxBrickSize];

    for (int y = 0; y < in.shape().y; ++y) {
        for (int x = 0; x < in.shape().x; ++x) {
            const tensor::Fixed16 *col = in.column(x, y);
            for (int b = 0; b < out.bricksPerColumn(); ++b) {
                const int z0 = b * brickSize;
                const int len =
                    std::min(z0 + brickSize, in.shape().z) - z0;
                int n = 0;
                for (int c = 0; c < len; c += simd::kLanes) {
                    const int chunk = std::min(simd::kLanes, len - c);
                    const simd::VecI16 v = chunk == simd::kLanes
                        ? simd::loadFull(col + z0 + c)
                        : simd::loadPartial(col + z0 + c, chunk);
                    std::uint32_t mask = simd::geMask(v, t);
                    while (mask != 0) {
                        const int i = std::countr_zero(mask);
                        mask &= mask - 1;
                        scratch[n++] = {
                            col[z0 + c + i],
                            static_cast<std::uint8_t>(c + i)};
                    }
                }
                out.setBrick(x, y, b,
                             {scratch, static_cast<std::size_t>(n)});
            }
        }
    }
    return out;
}

EncodedArray
encodeScalar(const tensor::NeuronTensor &in, int brickSize,
             std::int32_t pruneThreshold)
{
    EncodedArray out(in.shape(), brickSize);
    std::vector<EncodedNeuron> scratch;
    scratch.reserve(brickSize);

    for (int y = 0; y < in.shape().y; ++y) {
        for (int x = 0; x < in.shape().x; ++x) {
            for (int b = 0; b < out.bricksPerColumn(); ++b) {
                scratch.clear();
                const int z0 = b * brickSize;
                const int zEnd = std::min(z0 + brickSize, in.shape().z);
                for (int z = z0; z < zEnd; ++z) {
                    const tensor::Fixed16 v = in.at(x, y, z);
                    if (v.isZero() || v.rawAbs() < pruneThreshold)
                        continue;
                    scratch.push_back(
                        {v, static_cast<std::uint8_t>(z - z0)});
                }
                out.setBrick(x, y, b, scratch);
            }
        }
    }
    return out;
}

tensor::NeuronTensor
decode(const EncodedArray &in)
{
    tensor::NeuronTensor out(in.shape());
    out.fill(tensor::Fixed16{});
    for (int y = 0; y < in.shape().y; ++y) {
        for (int x = 0; x < in.shape().x; ++x) {
            for (int b = 0; b < in.bricksPerColumn(); ++b) {
                for (const EncodedNeuron &e : in.brick(x, y, b)) {
                    const int z = b * in.brickSize() + e.offset;
                    out.at(x, y, z) = e.value;
                }
            }
        }
    }
    return out;
}

tensor::Tensor3<std::uint8_t>
nonZeroCountMap(const tensor::NeuronTensor &in, int brickSize,
                std::int32_t pruneThreshold)
{
    if (brickSize < 1 || brickSize > 255)
        CNV_FATAL("brick size {} outside supported range for count map",
                  brickSize);
    const std::uint16_t t = simd::clampThreshold(pruneThreshold);
    const int bricks = (in.shape().z + brickSize - 1) / brickSize;
    tensor::Tensor3<std::uint8_t> counts(in.shape().x, in.shape().y, bricks);
    for (int y = 0; y < in.shape().y; ++y) {
        for (int x = 0; x < in.shape().x; ++x) {
            const tensor::Fixed16 *col = in.column(x, y);
            for (int b = 0; b < bricks; ++b) {
                const int z0 = b * brickSize;
                const int len =
                    std::min(z0 + brickSize, in.shape().z) - z0;
                counts.at(x, y, b) = static_cast<std::uint8_t>(
                    countKept(col + z0, len, t));
            }
        }
    }
    return counts;
}

tensor::Tensor3<std::uint8_t>
nonZeroCountMapScalar(const tensor::NeuronTensor &in, int brickSize,
                      std::int32_t pruneThreshold)
{
    if (brickSize < 1 || brickSize > 255)
        CNV_FATAL("brick size {} outside supported range for count map",
                  brickSize);
    const int bricks = (in.shape().z + brickSize - 1) / brickSize;
    tensor::Tensor3<std::uint8_t> counts(in.shape().x, in.shape().y, bricks);
    for (int y = 0; y < in.shape().y; ++y) {
        for (int x = 0; x < in.shape().x; ++x) {
            const tensor::Fixed16 *col = in.column(x, y);
            for (int b = 0; b < bricks; ++b) {
                const int z0 = b * brickSize;
                const int zEnd = std::min(z0 + brickSize, in.shape().z);
                std::uint8_t nz = 0;
                for (int z = z0; z < zEnd; ++z) {
                    const tensor::Fixed16 v = col[z];
                    if (!v.isZero() && v.rawAbs() >= pruneThreshold)
                        ++nz;
                }
                counts.at(x, y, b) = nz;
            }
        }
    }
    return counts;
}

tensor::Tensor3<std::uint8_t>
nonZeroCountMap(const tensor::NeuronTensor &in, int brickSize,
                std::span<const DepthThreshold> segments)
{
    if (brickSize < 1 || brickSize > 255)
        CNV_FATAL("brick size {} outside supported range for count map",
                  brickSize);
    // Resolve each depth position's clamped threshold once; bricks
    // may straddle segment boundaries, so counting walks uniform
    // threshold runs inside each brick.
    std::vector<std::uint16_t> tz;
    tz.reserve(static_cast<std::size_t>(in.shape().z));
    for (const DepthThreshold &seg : segments) {
        if (seg.depth < 0)
            CNV_FATAL("negative segment depth {}", seg.depth);
        tz.insert(tz.end(), static_cast<std::size_t>(seg.depth),
                  simd::clampThreshold(seg.threshold));
    }
    if (tz.size() != static_cast<std::size_t>(in.shape().z))
        CNV_FATAL("segment depths {} != array depth {}", tz.size(),
                  in.shape().z);

    const int bricks = (in.shape().z + brickSize - 1) / brickSize;
    tensor::Tensor3<std::uint8_t> counts(in.shape().x, in.shape().y, bricks);
    for (int y = 0; y < in.shape().y; ++y) {
        for (int x = 0; x < in.shape().x; ++x) {
            const tensor::Fixed16 *col = in.column(x, y);
            for (int b = 0; b < bricks; ++b) {
                const int z0 = b * brickSize;
                const int zEnd = std::min(z0 + brickSize, in.shape().z);
                int nz = 0;
                int z = z0;
                while (z < zEnd) {
                    const std::uint16_t t = tz[static_cast<std::size_t>(z)];
                    int ze = z + 1;
                    while (ze < zEnd &&
                           tz[static_cast<std::size_t>(ze)] == t)
                        ++ze;
                    nz += countKept(col + z, ze - z, t);
                    z = ze;
                }
                counts.at(x, y, b) = static_cast<std::uint8_t>(nz);
            }
        }
    }
    return counts;
}

} // namespace cnv::zfnaf
