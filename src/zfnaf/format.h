/**
 * @file
 * The Zero-Free Neuron Array format (ZFNAf), Section IV-B1.
 *
 * ZFNAf partitions a neuron array into *bricks*: aligned groups of
 * brickSize (16 in the paper) neurons that are contiguous along the
 * feature dimension i and share their (x, y) coordinates. Within a
 * brick only the non-zero neurons are stored, each as a
 * (value, offset) pair where the offset is the neuron's original
 * position inside the brick; remaining slots are zero-padded.
 *
 * Bricks keep their conventional-array alignment — brick b occupies
 * slot b — so the format sacrifices memory-footprint savings (unlike
 * CSR) in exchange for direct indexing at brick granularity, which
 * is what lets the dispatcher hand independent work to each neuron
 * lane with wide, aligned NM accesses.
 *
 * With 16-neuron bricks the offset field is 4 bits: a 25% capacity
 * overhead on the 16-bit neurons.
 *
 * Cnvlutin2 (arXiv 1705.00125) shrinks the layout to an
 * *offset-only* variant: every brick keeps its brickSize 4-bit
 * offset fields (so brick slots stay directly indexable), but the
 * 16-bit value field is stored only for the non-zero neurons —
 * zero-padding slots carry just the offset. storageBits() accounts
 * the paper's layout; offsetOnlyStorageBits() accounts the
 * Cnvlutin2 one. See docs/zfnaf.md for the worked comparison.
 */

#ifndef CNV_ZFNAF_FORMAT_H
#define CNV_ZFNAF_FORMAT_H

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/neuron_tensor.h"

namespace cnv::zfnaf {

/** Brick size used by the paper's CNV configuration. */
inline constexpr int kPaperBrickSize = 16;

/** Bits per neuron value (16-bit fixed-point, Section IV-A). */
inline constexpr int kNeuronBits = 16;

/** One (value, offset) pair of the ZFNAf. */
struct EncodedNeuron
{
    tensor::Fixed16 value{};
    std::uint8_t offset = 0;

    bool operator==(const EncodedNeuron &) const = default;
};

/**
 * A neuron array encoded in ZFNAf.
 *
 * The array keeps one fixed-capacity slot per brick; slot b holds
 * the encoded form of conventional-array brick b. Bricks along the
 * feature dimension are indexed 0..bricksPerColumn()-1 for each
 * (x, y) position.
 */
class EncodedArray
{
  public:
    EncodedArray() = default;

    /**
     * Allocate an encoded array for a conventional shape.
     *
     * @param shape Conventional (pre-encoding) array shape.
     * @param brickSize Neurons per brick; must be in [1, 256].
     */
    EncodedArray(tensor::Shape3 shape, int brickSize);

    const tensor::Shape3 &shape() const { return shape_; }
    int brickSize() const { return brickSize_; }

    /** Structural equality (shape, brick size, slots, counts). */
    bool operator==(const EncodedArray &) const = default;

    /** Bits needed for an offset field (4 for 16-neuron bricks). */
    int offsetBits() const;

    /** Bricks along the feature dimension per (x, y) column. */
    int bricksPerColumn() const { return bricksPerColumn_; }

    /** Total number of brick slots. */
    std::size_t brickCount() const;

    /** Number of non-zero (stored) neurons in brick (x, y, b). */
    int nonZeroCount(int x, int y, int b) const;

    /** Encoded neurons of brick (x, y, b): exactly nonZeroCount entries. */
    std::span<const EncodedNeuron> brick(int x, int y, int b) const;

    /**
     * Write one brick. Entries must have strictly increasing offsets
     * within [0, brickSize) and non-zero values.
     */
    void setBrick(int x, int y, int b,
                  std::span<const EncodedNeuron> entries);

    /** Total non-zero neurons across the array. */
    std::size_t totalNonZero() const;

    /**
     * Footprint in bits of the ZFNAf storage, including zero padding
     * and offset fields (used by the area model).
     */
    std::size_t storageBits() const;

    /**
     * Footprint in bits of the same logical content under the
     * Cnvlutin2 offset-only layout: every slot keeps its offset
     * field (an unused slot repeats the previous offset, which the
     * strictly-increasing invariant makes a self-delimiting end
     * marker), but only the non-zero neurons store a value. Unlike
     * storageBits() this is content-dependent — it shrinks with the
     * array's sparsity and is at worst equal to storageBits().
     */
    std::size_t offsetOnlyStorageBits() const;

    /** Validate all format invariants; panics on violation. */
    void checkInvariants() const;

  private:
    std::size_t brickIndex(int x, int y, int b) const;

    tensor::Shape3 shape_;
    int brickSize_ = kPaperBrickSize;
    int bricksPerColumn_ = 0;
    /** Packed slots: brickSize entries per brick, zero padded. */
    std::vector<EncodedNeuron> slots_;
    /** Non-zero count per brick. */
    std::vector<std::uint8_t> counts_;
};

/**
 * Encode a conventional neuron array into ZFNAf.
 *
 * Neurons with |value| < pruneThreshold (in raw fixed-point units)
 * are treated as zero — this is the dynamic-pruning hook of Section
 * V-E; a threshold of 0 removes exactly the zero-valued neurons.
 */
EncodedArray encode(const tensor::NeuronTensor &in,
                    int brickSize = kPaperBrickSize,
                    std::int32_t pruneThreshold = 0);

/**
 * Scalar reference encoder, bit-identical to encode() by contract —
 * the scalar-vs-SIMD equivalence tests and the before/after bench
 * columns run both.
 */
EncodedArray encodeScalar(const tensor::NeuronTensor &in,
                          int brickSize = kPaperBrickSize,
                          std::int32_t pruneThreshold = 0);

/** Decode back to a conventional array (pruned neurons become zero). */
tensor::NeuronTensor decode(const EncodedArray &in);

/**
 * Per-brick non-zero counts for a conventional array without
 * building the full encoding — the timing models consume this.
 * Result dims: (x, y, bricksPerColumn).
 */
tensor::Tensor3<std::uint8_t>
nonZeroCountMap(const tensor::NeuronTensor &in,
                int brickSize = kPaperBrickSize,
                std::int32_t pruneThreshold = 0);

/** Scalar reference counter (equivalence tests, bench baseline). */
tensor::Tensor3<std::uint8_t>
nonZeroCountMapScalar(const tensor::NeuronTensor &in,
                      int brickSize = kPaperBrickSize,
                      std::int32_t pruneThreshold = 0);

/**
 * One contiguous depth range sharing a prune threshold — the
 * segmented counting form of nn::TraceSegment plus its resolved
 * threshold.
 */
struct DepthThreshold
{
    /** Number of consecutive feature-dimension entries covered. */
    int depth = 0;
    /** Raw prune threshold for this range; <= 0 counts non-zeros. */
    std::int32_t threshold = 0;
};

/**
 * Segmented-threshold count map: like nonZeroCountMap but each depth
 * range carries its own prune threshold (segment depths must sum to
 * the array depth). Equivalent to zeroing every neuron below its
 * segment's threshold and counting the survivors — without the
 * tensor copy the timing::TraceCache prune path used to make.
 */
tensor::Tensor3<std::uint8_t>
nonZeroCountMap(const tensor::NeuronTensor &in, int brickSize,
                std::span<const DepthThreshold> segments);

} // namespace cnv::zfnaf

#endif // CNV_ZFNAF_FORMAT_H
