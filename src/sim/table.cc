#include "sim/table.h"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <sstream>

#include "sim/logging.h"

namespace cnv::sim {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers))
{
    CNV_ASSERT(!headers_.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size())
        CNV_FATAL("table row has {} cells, expected {}", cells.size(),
                  headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
Table::intNum(std::uint64_t v)
{
    std::string raw = std::to_string(v);
    std::string out;
    int digits = 0;
    for (auto it = raw.rbegin(); it != raw.rend(); ++it) {
        if (digits && digits % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        ++digits;
    }
    std::reverse(out.begin(), out.end());
    return out;
}

std::string
Table::pct(double v)
{
    return num(100.0 * v, 1) + "%";
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto printRow = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
               << cells[c];
        }
        os << '\n';
    };

    printRow(headers_);
    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w + 2;
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        printRow(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto printRow = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c)
                os << ',';
            os << cells[c];
        }
        os << '\n';
    };
    printRow(headers_);
    for (const auto &row : rows_)
        printRow(row);
}

} // namespace cnv::sim
