/**
 * @file
 * ThreadPool implementation plus the process-wide pool
 * configuration (setJobCount / CNVSIM_JOBS). See parallel.h for the
 * determinism and nesting guarantees.
 *
 * Every lane (the participating caller and each worker) charges its
 * task wall time, idle time and task count to the process-wide
 * MetricsRegistry under `pool.<lane>.*`, so the hostProfile report
 * section can show per-worker utilization. All of it is gated on
 * metrics().enabled() and never affects scheduling or results.
 */

#include "sim/parallel.h"

#include <atomic>
#include <charconv>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <limits>

#include "sim/logging.h"
#include "sim/metrics.h"

namespace cnv::sim {

/**
 * One forEach() call: a shared index range the caller and any
 * helping workers claim tasks from. The submitting thread waits on
 * `done` until every claimed task has finished, then rethrows the
 * lowest-index captured exception (deterministic regardless of
 * which thread hit it first).
 */
struct ThreadPool::Batch
{
    std::size_t n = 0;
    const std::function<void(std::size_t)> *fn = nullptr;
    std::atomic<std::size_t> next{0}; ///< next index to claim
    core::Mutex m;
    core::ConditionVariable done;
    std::size_t finished CNV_GUARDED_BY(m) = 0;
    std::size_t firstErrorIndex CNV_GUARDED_BY(m) =
        std::numeric_limits<std::size_t>::max();
    std::exception_ptr firstError CNV_GUARDED_BY(m);
};

/**
 * Pre-built metric names for one lane, so the per-task record is a
 * map update, not repeated string assembly. Workers additionally
 * count toward pool.stolenTasks (work not run by its submitter).
 */
struct ThreadPool::LaneMetrics
{
    LaneMetrics(const std::string &lane, bool isWorker)
        : busyKey("pool." + lane + ".busyNanos"),
          idleKey("pool." + lane + ".idleNanos"),
          tasksKey("pool." + lane + ".tasks"),
          worker(isWorker)
    {}

    std::string busyKey;
    std::string idleKey;
    std::string tasksKey;
    bool worker;
};

ThreadPool::ThreadPool(int jobs)
{
    jobs_ = jobs > 0 ? jobs : defaultJobCount();
    workers_.reserve(static_cast<std::size_t>(jobs_ - 1));
    for (int i = 0; i + 1 < jobs_; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        const core::MutexLock lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

bool
ThreadPool::runOneTask(Batch &batch, const LaneMetrics &lane)
{
    const std::size_t i = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch.n)
        return false;
    const std::uint64_t t0 = metrics().nowIfEnabled();
    std::exception_ptr error;
    try {
        (*batch.fn)(i);
    } catch (...) {
        error = std::current_exception();
    }
    if (t0 != 0) {
        MetricsRegistry &m = metrics();
        m.add(lane.busyKey, MetricsRegistry::nowNanos() - t0);
        m.add(lane.tasksKey, 1);
        if (lane.worker)
            m.add("pool.stolenTasks", 1);
    }
    {
        const core::MutexLock lock(batch.m);
        if (error && i < batch.firstErrorIndex) {
            batch.firstErrorIndex = i;
            batch.firstError = error;
        }
        ++batch.finished;
        if (batch.finished == batch.n)
            batch.done.notify_all();
    }
    return true;
}

void
ThreadPool::workerLoop(int index)
{
    const LaneMetrics lane("worker" + std::to_string(index),
                           /*isWorker=*/true);
    for (;;) {
        std::shared_ptr<Batch> batch;
        {
            const core::MutexLock lock(mutex_);
            const std::uint64_t idle0 = metrics().nowIfEnabled();
            // Manual predicate loop: the analysis sees mutex_ held
            // across wait() (the condition variable re-acquires it
            // before returning), so the guarded reads below it are
            // provably locked.
            while (!stop_ && queue_.empty())
                wake_.wait(mutex_);
            if (idle0 != 0)
                metrics().add(lane.idleKey,
                              MetricsRegistry::nowNanos() - idle0);
            if (queue_.empty())
                return; // stop_ set and nothing left to help with
            batch = queue_.front();
        }
        if (!runOneTask(*batch, lane)) {
            // Exhausted: drop it from the queue if still at the front.
            const core::MutexLock lock(mutex_);
            if (!queue_.empty() && queue_.front() == batch)
                queue_.pop_front();
        }
    }
}

void
ThreadPool::forEach(std::size_t n, const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    const LaneMetrics caller("caller", /*isWorker=*/false);
    if (jobs_ == 1 || n == 1) {
        const std::uint64_t t0 = metrics().nowIfEnabled();
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        if (t0 != 0) {
            MetricsRegistry &m = metrics();
            m.add(caller.busyKey, MetricsRegistry::nowNanos() - t0);
            m.add(caller.tasksKey, n);
        }
        return;
    }
    auto batch = std::make_shared<Batch>();
    batch->n = n;
    batch->fn = &fn;
    {
        const core::MutexLock lock(mutex_);
        queue_.push_back(batch);
        metrics().gaugeMax("pool.queueDepthMax", queue_.size());
    }
    wake_.notify_all();
    // The submitter drains its own batch, so even if every worker is
    // busy elsewhere (or the pool is nested) this loop alone
    // guarantees completion.
    while (runOneTask(*batch, caller)) {
    }
    // The error slot is copied out under the batch mutex (previously
    // it was read back after the lock was dropped, which the
    // thread-safety analysis rightly rejects).
    std::exception_ptr firstError;
    {
        const core::MutexLock lock(batch->m);
        const std::uint64_t idle0 = metrics().nowIfEnabled();
        while (batch->finished != batch->n)
            batch->done.wait(batch->m);
        if (idle0 != 0)
            metrics().add(caller.idleKey,
                          MetricsRegistry::nowNanos() - idle0);
        firstError = batch->firstError;
    }
    {
        const core::MutexLock lock(mutex_);
        for (auto it = queue_.begin(); it != queue_.end(); ++it) {
            if (*it == batch) {
                queue_.erase(it);
                break;
            }
        }
    }
    if (firstError)
        std::rethrow_exception(firstError);
}

namespace {

std::atomic<int> g_jobCount{0}; ///< 0 = not yet resolved
core::Mutex g_poolMutex;
std::unique_ptr<ThreadPool> g_pool CNV_GUARDED_BY(g_poolMutex);

} // namespace

int
defaultJobCount()
{
    // getenv is read-only here and nothing in the tree calls
    // setenv, so the races concurrency-mt-unsafe guards against
    // cannot occur (inventory: docs/development.md).
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    if (const char *env = std::getenv("CNVSIM_JOBS")) {
        int value = 0;
        const char *end = env + std::strlen(env);
        const auto [ptr, ec] = std::from_chars(env, end, value);
        if (ec == std::errc() && ptr == end && value > 0)
            return value;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

void
setJobCount(int jobs)
{
    if (jobs < 1)
        CNV_FATAL("job count must be >= 1 (got {})", jobs);
    const core::MutexLock lock(g_poolMutex);
    g_jobCount.store(jobs, std::memory_order_relaxed);
    g_pool.reset(); // rebuilt lazily with the new lane count
}

int
jobCount()
{
    int value = g_jobCount.load(std::memory_order_relaxed);
    if (value == 0) {
        value = defaultJobCount();
        g_jobCount.store(value, std::memory_order_relaxed);
    }
    return value;
}

ThreadPool &
globalPool()
{
    const core::MutexLock lock(g_poolMutex);
    if (!g_pool)
        g_pool = std::make_unique<ThreadPool>(jobCount());
    return *g_pool;
}

} // namespace cnv::sim
