#include "sim/trace_event.h"

#include "sim/logging.h"
#include "sim/stats_export.h"

namespace cnv::sim {

TraceSink::TraceSink(std::size_t maxEvents) : maxEvents_(maxEvents)
{
    CNV_ASSERT(maxEvents_ >= 1, "trace sink needs room for one event");
    events_.reserve(std::min<std::size_t>(maxEvents_, 4096));
}

void
TraceSink::setProcessName(std::uint32_t pid, std::string name)
{
    processNames_.emplace_back(pid, std::move(name));
}

void
TraceSink::setThreadName(std::uint32_t pid, std::uint32_t tid,
                         std::string name)
{
    threadNames_.push_back({{pid, tid}, std::move(name)});
}

bool
TraceSink::admit()
{
    if (events_.size() < maxEvents_)
        return true;
    if (dropped_ == 0) {
        CNV_WARN("trace sink full at {} events; further events are "
                 "dropped (raise --max-events)", maxEvents_);
    }
    ++dropped_;
    return false;
}

void
TraceSink::complete(std::uint32_t pid, std::uint32_t tid, std::string name,
                    std::string cat, Cycle ts, Cycle dur,
                    std::vector<TraceArg> args)
{
    if (!admit())
        return;
    TraceEvent e;
    e.phase = 'X';
    e.pid = pid;
    e.tid = tid;
    e.ts = ts;
    e.dur = dur;
    e.name = std::move(name);
    e.cat = std::move(cat);
    e.args = std::move(args);
    events_.push_back(std::move(e));
}

void
TraceSink::counter(std::uint32_t pid, std::uint32_t tid, std::string name,
                   Cycle ts, double value)
{
    if (!admit())
        return;
    TraceEvent e;
    e.phase = 'C';
    e.pid = pid;
    e.tid = tid;
    e.ts = ts;
    e.name = std::move(name);
    e.args.emplace_back("value", value);
    events_.push_back(std::move(e));
}

void
TraceSink::instant(std::uint32_t pid, std::uint32_t tid, std::string name,
                   std::string cat, Cycle ts, std::vector<TraceArg> args)
{
    if (!admit())
        return;
    TraceEvent e;
    e.phase = 'i';
    e.pid = pid;
    e.tid = tid;
    e.ts = ts;
    e.name = std::move(name);
    e.cat = std::move(cat);
    e.args = std::move(args);
    events_.push_back(std::move(e));
}

namespace {

void
writeArgs(JsonWriter &w, const std::vector<TraceArg> &args)
{
    w.beginObject();
    for (const TraceArg &a : args) {
        w.key(a.name);
        if (a.isString)
            w.value(a.text);
        else
            w.value(a.number);
    }
    w.endObject();
}

/** One 'M' metadata record naming a process or thread track. */
void
writeNameRecord(JsonWriter &w, const char *recordName, std::uint32_t pid,
                const std::uint32_t *tid, const std::string &name)
{
    w.beginObject();
    w.key("ph").value("M");
    w.key("pid").value(static_cast<std::uint64_t>(pid));
    if (tid)
        w.key("tid").value(static_cast<std::uint64_t>(*tid));
    w.key("name").value(recordName);
    w.key("args").beginObject();
    w.key("name").value(name);
    w.endObject();
    w.endObject();
}

} // namespace

void
TraceSink::writeJson(std::ostream &os,
                     const std::vector<TraceArg> &extraMetadata) const
{
    JsonWriter w(os);
    w.beginObject();
    // Cycles are written as trace microseconds; "ms" display keeps
    // kilocycle-scale runs readable in the Perfetto timeline.
    w.key("displayTimeUnit").value("ms");

    w.key("metadata").beginObject();
    w.key("clockDomain").value("cycles");
    w.key("maxEvents").value(static_cast<std::uint64_t>(maxEvents_));
    w.key("droppedEvents").value(static_cast<std::uint64_t>(dropped_));
    for (const TraceArg &a : extraMetadata) {
        w.key(a.name);
        if (a.isString)
            w.value(a.text);
        else
            w.value(a.number);
    }
    w.endObject();

    w.key("traceEvents").beginArray();
    for (const auto &[pid, name] : processNames_)
        writeNameRecord(w, "process_name", pid, nullptr, name);
    for (const auto &[ids, name] : threadNames_)
        writeNameRecord(w, "thread_name", ids.first, &ids.second, name);
    for (const TraceEvent &e : events_) {
        w.beginObject();
        w.key("ph").value(std::string_view(&e.phase, 1));
        w.key("pid").value(static_cast<std::uint64_t>(e.pid));
        w.key("tid").value(static_cast<std::uint64_t>(e.tid));
        w.key("ts").value(static_cast<std::uint64_t>(e.ts));
        if (e.phase == 'X')
            w.key("dur").value(static_cast<std::uint64_t>(e.dur));
        w.key("name").value(e.name);
        if (!e.cat.empty())
            w.key("cat").value(e.cat);
        if (!e.args.empty() || e.phase == 'C') {
            w.key("args");
            writeArgs(w, e.args);
        }
        w.endObject();
    }
    w.endArray();

    w.endObject();
    os << '\n';
    CNV_ASSERT(w.complete(), "trace document left unbalanced");
}

ScopedSpan::ScopedSpan(TraceSink *sink, const Engine &engine,
                       std::uint32_t pid, std::uint32_t tid,
                       std::string name, std::string cat,
                       std::vector<TraceArg> args)
    : sink_(sink),
      engine_(engine),
      pid_(pid),
      tid_(tid),
      name_(std::move(name)),
      cat_(std::move(cat)),
      args_(std::move(args)),
      begin_(engine.now())
{
}

void
ScopedSpan::end()
{
    if (ended_)
        return;
    ended_ = true;
    const Cycle now = engine_.now();
    if (sink_ && now > begin_) {
        sink_->complete(pid_, tid_, std::move(name_), std::move(cat_),
                        begin_, now - begin_, std::move(args_));
    }
}

} // namespace cnv::sim
