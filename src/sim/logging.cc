#include "sim/logging.h"

#include <iostream>

#include "sim/error.h"

namespace cnv::sim {

namespace {

Verbosity g_verbosity = Verbosity::Info;

} // namespace

void
setVerbosity(Verbosity v)
{
    g_verbosity = v;
}

Verbosity
verbosity()
{
    return g_verbosity;
}

namespace detail {

void
formatTail(std::ostringstream &os, std::string_view fmt)
{
    const std::size_t pos = fmt.find("{}");
    if (pos != std::string_view::npos) {
        // Fewer arguments than placeholders: keep the raw text so the
        // mistake is visible in the output rather than hidden.
        os << fmt;
        return;
    }
    os << fmt;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::string full = strfmt("panic: {} ({}:{})", msg, file, line);
    if (g_verbosity != Verbosity::Silent)
        std::cerr << full << '\n';
    throw PanicError(full);
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::string full = strfmt("fatal: {} ({}:{})", msg, file, line);
    if (g_verbosity != Verbosity::Silent)
        std::cerr << full << '\n';
    throw FatalError(full);
}

void
warnImpl(const std::string &msg)
{
    if (g_verbosity >= Verbosity::Warnings)
        std::cerr << "warn: " << msg << '\n';
}

void
informImpl(const std::string &msg)
{
    if (g_verbosity >= Verbosity::Info)
        std::cout << "info: " << msg << '\n';
}

void
debugImpl(const std::string &msg)
{
    if (g_verbosity >= Verbosity::Debug)
        std::cout << "debug: " << msg << '\n';
}

} // namespace detail

} // namespace cnv::sim
