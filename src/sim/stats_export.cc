#include "sim/stats_export.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "sim/logging.h"

namespace cnv::sim {

namespace {

/**
 * Shortest decimal representation that parses back to exactly `v`.
 * Tries increasing precision so common values print compactly
 * ("0.5", not "0.5000000000000000").
 */
std::string
formatDouble(double v)
{
    for (int precision = 1; precision <= 17; ++precision) {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
        if (std::strtod(buf, nullptr) == v)
            return buf;
    }
    return "0"; // unreachable: 17 significant digits round-trip
}

} // namespace

std::string
JsonWriter::escape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
JsonWriter::indent()
{
    os_ << '\n';
    for (std::size_t i = 0; i < stack_.size() * indentWidth_; ++i)
        os_ << ' ';
}

void
JsonWriter::beforeValue()
{
    if (stack_.empty()) {
        CNV_ASSERT(!emittedRoot_, "JSON document has exactly one root");
        emittedRoot_ = true;
        return;
    }
    Level &top = stack_.back();
    if (top.isObject) {
        CNV_ASSERT(top.keyPending, "object member needs key() first");
        top.keyPending = false;
        return;
    }
    if (top.members > 0)
        os_ << ',';
    indent();
    ++top.members;
}

JsonWriter &
JsonWriter::key(std::string_view k)
{
    CNV_ASSERT(!stack_.empty() && stack_.back().isObject,
               "key() is only valid inside an object");
    Level &top = stack_.back();
    CNV_ASSERT(!top.keyPending, "two key() calls without a value");
    if (top.members > 0)
        os_ << ',';
    indent();
    os_ << '"' << escape(k) << "\": ";
    top.keyPending = true;
    ++top.members;
    return *this;
}

JsonWriter &
JsonWriter::beginObject()
{
    beforeValue();
    os_ << '{';
    stack_.push_back({true, 0, false});
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    CNV_ASSERT(!stack_.empty() && stack_.back().isObject,
               "endObject() without a matching beginObject()");
    const bool hadMembers = stack_.back().members > 0;
    stack_.pop_back();
    if (hadMembers)
        indent();
    os_ << '}';
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    beforeValue();
    os_ << '[';
    stack_.push_back({false, 0, false});
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    CNV_ASSERT(!stack_.empty() && !stack_.back().isObject,
               "endArray() without a matching beginArray()");
    const bool hadMembers = stack_.back().members > 0;
    stack_.pop_back();
    if (hadMembers)
        indent();
    os_ << ']';
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view v)
{
    beforeValue();
    os_ << '"' << escape(v) << '"';
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    beforeValue();
    if (std::isfinite(v))
        os_ << formatDouble(v);
    else
        os_ << "null";
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    beforeValue();
    os_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(int v)
{
    beforeValue();
    os_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    beforeValue();
    os_ << (v ? "true" : "false");
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    beforeValue();
    os_ << "null";
    return *this;
}

namespace {

const char *
kindOf(const Stat &stat)
{
    if (dynamic_cast<const Counter *>(&stat))
        return "counter";
    if (dynamic_cast<const Scalar *>(&stat))
        return "scalar";
    if (dynamic_cast<const Formula *>(&stat))
        return "formula";
    if (dynamic_cast<const Distribution *>(&stat))
        return "distribution";
    return "stat";
}

void
writeStat(JsonWriter &w, const Stat &stat)
{
    w.beginObject();
    w.key("kind").value(kindOf(stat));
    if (const auto *d = dynamic_cast<const Distribution *>(&stat)) {
        w.key("count").value(d->count());
        w.key("mean").value(d->mean());
        w.key("stddev").value(d->stddev());
        if (d->count() > 0) {
            w.key("min").value(d->min());
            w.key("max").value(d->max());
        } else {
            w.key("min").null();
            w.key("max").null();
        }
    } else if (const auto *c = dynamic_cast<const Counter *>(&stat)) {
        w.key("value").value(c->count());
    } else {
        w.key("value").value(stat.value());
    }
    w.key("desc").value(stat.desc());
    w.endObject();
}

} // namespace

void
exportJson(const StatGroup &group, JsonWriter &w)
{
    w.beginObject();
    w.key("name").value(group.name());
    w.key("stats").beginObject();
    for (const auto &stat : group.statChildren()) {
        w.key(stat->name());
        writeStat(w, *stat);
    }
    w.endObject();
    w.key("groups").beginObject();
    for (const auto &child : group.groupChildren()) {
        w.key(child->name());
        exportJson(*child, w);
    }
    w.endObject();
    w.endObject();
}

void
exportJson(const StatGroup &group, std::ostream &os)
{
    JsonWriter w(os);
    exportJson(group, w);
    os << '\n';
}

std::string
csvQuote(std::string_view field)
{
    if (field.find_first_of(",\"\n\r") == std::string_view::npos)
        return std::string(field);
    std::string out;
    out.reserve(field.size() + 2);
    out += '"';
    for (const char c : field) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

namespace {

void
csvRow(std::ostream &os, const std::string &path, const char *kind,
       const std::string &value, const std::string &desc)
{
    os << csvQuote(path) << ',' << kind << ',' << value << ','
       << csvQuote(desc) << '\n';
}

void
exportCsvRec(const StatGroup &group, std::ostream &os,
             const std::string &prefix)
{
    const std::string base =
        prefix.empty() ? group.name() : prefix + "." + group.name();
    for (const auto &stat : group.statChildren()) {
        const std::string path = base + "." + stat->name();
        const char *kind = kindOf(*stat);
        if (const auto *d =
                dynamic_cast<const Distribution *>(stat.get())) {
            csvRow(os, path + ".count", kind,
                   std::to_string(d->count()), stat->desc());
            csvRow(os, path + ".mean", kind, formatDouble(d->mean()),
                   stat->desc());
            csvRow(os, path + ".stddev", kind, formatDouble(d->stddev()),
                   stat->desc());
            if (d->count() > 0) {
                csvRow(os, path + ".min", kind, formatDouble(d->min()),
                       stat->desc());
                csvRow(os, path + ".max", kind, formatDouble(d->max()),
                       stat->desc());
            }
        } else if (const auto *c =
                       dynamic_cast<const Counter *>(stat.get())) {
            csvRow(os, path, kind, std::to_string(c->count()),
                   stat->desc());
        } else {
            csvRow(os, path, kind, formatDouble(stat->value()),
                   stat->desc());
        }
    }
    for (const auto &child : group.groupChildren())
        exportCsvRec(*child, os, base);
}

} // namespace

void
exportCsv(const StatGroup &group, std::ostream &os,
          const std::string &prefix, bool header)
{
    if (header)
        os << "path,kind,value,description\n";
    exportCsvRec(group, os, prefix);
}

} // namespace cnv::sim
