/**
 * @file
 * Machine-readable serialization of the statistics hierarchy.
 *
 * Two formats are supported, both dependency-free:
 *
 *  - JSON via a small streaming JsonWriter (objects, arrays,
 *    strings with full escaping, round-trippable numbers). The
 *    writer is public so report assemblers (driver/stats_report,
 *    bench artifacts) can compose manifests and several stat trees
 *    into one document.
 *  - CSV with one row per statistic, dot-joined paths, and RFC
 *    4180 quoting; distributions flatten into one row per moment.
 *
 * The emitted schema is documented field-for-field in
 * docs/observability.md; tests/sim/test_stats_export.cc pins it.
 */

#ifndef CNV_SIM_STATS_EXPORT_H
#define CNV_SIM_STATS_EXPORT_H

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "sim/stats.h"

namespace cnv::sim {

/**
 * Minimal streaming JSON writer with pretty-printed output.
 *
 * Usage mirrors the document structure: beginObject()/endObject(),
 * key() before each member, value() for leaves. The writer tracks
 * nesting and emits commas/indentation; misuse (a value without a
 * pending key inside an object, unbalanced end calls) panics.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os, int indentWidth = 2)
        : os_(os), indentWidth_(indentWidth)
    {}

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Member name inside an object; must precede its value. */
    JsonWriter &key(std::string_view k);

    JsonWriter &value(std::string_view v);
    JsonWriter &value(const char *v) { return value(std::string_view(v)); }
    /** Doubles use the shortest representation that round-trips;
     *  NaN and infinities (not representable in JSON) become null. */
    JsonWriter &value(double v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(int v);
    JsonWriter &value(bool v);
    JsonWriter &null();

    /** True once every opened container has been closed. */
    bool complete() const { return stack_.empty() && emittedRoot_; }

    /** JSON string-escape `s` (without the surrounding quotes). */
    static std::string escape(std::string_view s);

  private:
    void beforeValue();
    void indent();

    struct Level
    {
        bool isObject = false;
        int members = 0;
        bool keyPending = false;
    };

    std::ostream &os_;
    int indentWidth_;
    std::vector<Level> stack_;
    bool emittedRoot_ = false;
};

/**
 * Serialize a stat tree into `w` as one JSON object:
 *
 *   { "name": "<group>",
 *     "stats": { "<stat>": { "kind": "counter|scalar|formula",
 *                            "value": <number>,
 *                            "desc": "<description>" }
 *                | { "kind": "distribution", "count": N, "mean": m,
 *                    "stddev": s, "min": lo, "max": hi,
 *                    "desc": "..." } },
 *     "groups": { "<child>": { ... recursively ... } } }
 *
 * Counters emit integer values; an empty distribution's min/max are
 * null. The writer must be positioned where a value is legal (the
 * document root, an array slot, or after key()).
 */
void exportJson(const StatGroup &group, JsonWriter &w);

/** Serialize a stat tree as a standalone JSON document. */
void exportJson(const StatGroup &group, std::ostream &os);

/**
 * Serialize a stat tree as CSV: `path,kind,value,description` with
 * dot-joined paths rooted at the group's name. Distributions emit
 * one row per moment (path.count/.mean/.stddev/.min/.max). Fields
 * containing commas, quotes, or newlines are RFC 4180 quoted.
 *
 * @param prefix Optional path prefix prepended to every row
 *        (used to disambiguate several trees in one file).
 * @param header Emit the `path,kind,value,description` header row.
 */
void exportCsv(const StatGroup &group, std::ostream &os,
               const std::string &prefix = "", bool header = true);

/** CSV-quote one field (adds quotes only when required). */
std::string csvQuote(std::string_view field);

} // namespace cnv::sim

#endif // CNV_SIM_STATS_EXPORT_H
