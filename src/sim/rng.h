/**
 * @file
 * Deterministic random number generation for trace synthesis and
 * property tests.
 *
 * All stochastic behaviour in the simulator flows through Rng so
 * that every experiment is reproducible from a single seed. The
 * generator is xoshiro256++ seeded via splitmix64, which is fast,
 * has a 2^256-1 period, and (unlike std::mt19937 with
 * std::distributions) produces identical streams across standard
 * library implementations.
 */

#ifndef CNV_SIM_RNG_H
#define CNV_SIM_RNG_H

#include <array>
#include <cmath>
#include <cstdint>

namespace cnv::sim {

/** Deterministic pseudo-random number generator (xoshiro256++). */
class Rng
{
  public:
    /** Construct from a 64-bit seed; equal seeds give equal streams. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n); n must be > 0. */
    std::uint64_t uniformInt(std::uint64_t n);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Standard normal deviate (Box-Muller, cached pair). */
    double normal();

    /** Normal deviate with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Bernoulli trial with success probability p. */
    bool bernoulli(double p);

    /**
     * Derive an independent child generator. Used to give each
     * (network, layer, image) tuple its own stream so that changing
     * one layer's draw count does not perturb the others.
     */
    Rng fork(std::uint64_t stream) const;

  private:
    std::array<std::uint64_t, 4> state_;
    double cachedNormal_ = 0.0;
    bool hasCachedNormal_ = false;
};

} // namespace cnv::sim

#endif // CNV_SIM_RNG_H
