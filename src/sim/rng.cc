#include "sim/rng.h"

#include "sim/logging.h"

namespace cnv::sim {

namespace {

/** splitmix64 step, used for seeding and stream derivation. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    std::uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &word : state_)
        word = splitmix64(s);
    // xoshiro256++ requires a nonzero state; splitmix64 of any seed
    // yields all-zero with probability ~2^-256, but guard anyway.
    if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0)
        state_[0] = 1;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 random bits into the mantissa: uniform on [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t n)
{
    CNV_ASSERT(n > 0, "uniformInt range must be positive");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = ~0ULL - (~0ULL % n);
    std::uint64_t v;
    do {
        v = next();
    } while (v >= limit);
    return v % n;
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    CNV_ASSERT(lo <= hi, "uniformInt bounds out of order");
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    return lo + static_cast<std::int64_t>(uniformInt(span));
}

double
Rng::normal()
{
    if (hasCachedNormal_) {
        hasCachedNormal_ = false;
        return cachedNormal_;
    }
    // Box-Muller transform; u1 in (0,1] to keep the log finite.
    double u1;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    cachedNormal_ = r * std::sin(theta);
    hasCachedNormal_ = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

Rng
Rng::fork(std::uint64_t stream) const
{
    // Derive a child seed from the parent state and the stream id so
    // that distinct streams are decorrelated.
    std::uint64_t s = state_[0] ^ (state_[1] + 0x632be59bd9b4e019ULL * (stream + 1));
    return Rng(splitmix64(s));
}

} // namespace cnv::sim
