/**
 * @file
 * Small fixed-column text-table writer used by benches and examples
 * to print paper-style rows (and optional CSV) without pulling in a
 * formatting dependency.
 */

#ifndef CNV_SIM_TABLE_H
#define CNV_SIM_TABLE_H

#include <ostream>
#include <string>
#include <vector>

namespace cnv::sim {

/** Accumulates rows of strings and prints an aligned text table. */
class Table
{
  public:
    /** @param headers Column titles, printed first with a rule below. */
    explicit Table(std::vector<std::string> headers);

    /** Append a row; must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Format a double with the given precision. */
    static std::string num(double v, int precision = 2);

    /** Format an integer with thousands separators. */
    static std::string intNum(std::uint64_t v);

    /** Format v as a percentage with one decimal ("44.3%"). */
    static std::string pct(double v);

    /** Print the aligned table. */
    void print(std::ostream &os) const;

    /** Print as CSV (for downstream plotting). */
    void printCsv(std::ostream &os) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace cnv::sim

#endif // CNV_SIM_TABLE_H
