/**
 * @file
 * Status and error reporting for the simulator, in the spirit of
 * gem5's base/logging: panic() for internal invariant violations,
 * fatal() for user/configuration errors, warn()/inform() for
 * non-fatal status messages.
 *
 * Messages use a lightweight "{}" placeholder formatter (strfmt)
 * since the toolchain lacks std::format.
 */

#ifndef CNV_SIM_LOGGING_H
#define CNV_SIM_LOGGING_H

#include <sstream>
#include <string>
#include <string_view>

namespace cnv::sim {

namespace detail {

/** Append the literal tail of a format string, checking for stray "{}". */
void formatTail(std::ostringstream &os, std::string_view fmt);

/** Recursive driver: substitute the next "{}" with the next argument. */
template <typename T, typename... Rest>
void
formatRec(std::ostringstream &os, std::string_view fmt, const T &value,
          const Rest &...rest)
{
    const std::size_t pos = fmt.find("{}");
    if (pos == std::string_view::npos) {
        // More arguments than placeholders: emit the tail and append
        // the leftovers so nothing is silently dropped.
        os << fmt << " [extra:" << value << ']';
        (void)std::initializer_list<int>{(os << " [extra:" << rest << ']', 0)...};
        return;
    }
    os << fmt.substr(0, pos) << value;
    if constexpr (sizeof...(rest) == 0)
        formatTail(os, fmt.substr(pos + 2));
    else
        formatRec(os, fmt.substr(pos + 2), rest...);
}

} // namespace detail

/**
 * Format a string by substituting "{}" placeholders with the given
 * arguments via operator<<.
 *
 * @param fmt Format string containing zero or more "{}" placeholders.
 * @return The formatted string.
 */
template <typename... Args>
std::string
strfmt(std::string_view fmt, const Args &...args)
{
    std::ostringstream os;
    if constexpr (sizeof...(args) == 0)
        detail::formatTail(os, fmt);
    else
        detail::formatRec(os, fmt, args...);
    return os.str();
}

/** Verbosity levels for status messages. */
enum class Verbosity { Silent, Warnings, Info, Debug };

/** Set the global verbosity; defaults to Info. */
void setVerbosity(Verbosity v);

/** Current global verbosity. */
Verbosity verbosity();

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
void debugImpl(const std::string &msg);

} // namespace detail

/**
 * panic: something happened that should never happen regardless of
 * what the user does — an internal simulator bug. Aborts.
 */
#define CNV_PANIC(...)                                                      \
    ::cnv::sim::detail::panicImpl(__FILE__, __LINE__,                       \
                                  ::cnv::sim::strfmt(__VA_ARGS__))

/**
 * fatal: the simulation cannot continue because of a user error
 * (bad configuration, invalid arguments). Exits with an error code.
 */
#define CNV_FATAL(...)                                                      \
    ::cnv::sim::detail::fatalImpl(__FILE__, __LINE__,                       \
                                  ::cnv::sim::strfmt(__VA_ARGS__))

/** warn: functionality may not behave as the user expects. */
#define CNV_WARN(...)                                                       \
    ::cnv::sim::detail::warnImpl(::cnv::sim::strfmt(__VA_ARGS__))

/** inform: normal operating status message. */
#define CNV_INFORM(...)                                                     \
    ::cnv::sim::detail::informImpl(::cnv::sim::strfmt(__VA_ARGS__))

/** debug: detailed tracing, only shown at Verbosity::Debug. */
#define CNV_DEBUG(...)                                                      \
    ::cnv::sim::detail::debugImpl(::cnv::sim::strfmt(__VA_ARGS__))

/** Assert an internal invariant; panics with a message on failure. */
#define CNV_ASSERT(cond, ...)                                               \
    do {                                                                    \
        if (!(cond))                                                        \
            CNV_PANIC("assertion failed: " #cond " — " __VA_ARGS__);        \
    } while (0)

} // namespace cnv::sim

#endif // CNV_SIM_LOGGING_H
