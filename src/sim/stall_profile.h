/**
 * @file
 * Stall attribution: why lanes sat idle, per layer and per reason.
 *
 * Every idle lane-cycle the simulator models carries exactly one
 * StallReason; a StallProfile folds those attributions — recorded
 * directly by the models or recovered from a TraceSink's event
 * stream (category "stall") — into a per-layer, per-reason table
 * whose grand total equals the MicroTrace laneIdleCycles already
 * reported per layer (enforced by tests/analysis/
 * test_trace_pipeline.cc).
 *
 * The profile exports as CSV (`layer,reason,idleLaneCycles`) and as
 * a "stalls" StatGroup embedded in the cnv-report-v1 stat tree; see
 * docs/observability.md for both schemas.
 */

#ifndef CNV_SIM_STALL_PROFILE_H
#define CNV_SIM_STALL_PROFILE_H

#include <array>
#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "sim/stats.h"
#include "sim/trace_event.h"

namespace cnv::sim {

/** Why a neuron lane sat idle for a span of cycles. */
enum class StallReason {
    /** Lane had bricks left but its brick-buffer entry was empty
     *  (waiting on an NM fetch); on the baseline, the equivalent
     *  NBin-empty pipeline-fill wait. */
    BrickBufferEmpty = 0,
    /** Lane finished its window-group work early and waited at the
     *  per-window-group synchronisation barrier (Section IV-B5). */
    WindowBarrier,
    /** Whole node idle on the off-chip synapse stream (exposed
     *  synapse-load time not hidden by compute overlap). */
    SynapseWait,
    /** Lane's slice ran dry inside the structural pipeline while
     *  other lanes were still draining theirs. */
    SliceDrained,
    /** Independent slice fetch pointers landed on the same NM bank
     *  and serialised (`--mem banked`, mem::BankedNm). */
    NmBankConflict,
    /** Global-buffer miss fills not hidden behind the window
     *  group's compute (`--mem banked`, mem::GlobalBuffer). */
    GbMiss,
    /** Whole node idle on an off-chip activation spill past the NM
     *  capacity (`--mem banked`, mem::DramChannel). */
    DramWait,
};

/** Number of distinct stall reasons. */
inline constexpr int kStallReasonCount = 7;

/** Stable snake_case name ("brick_buffer_empty", ...). */
const char *stallReasonName(StallReason r);

/** Inverse of stallReasonName; nullopt for unknown names. */
std::optional<StallReason> stallReasonFromName(std::string_view name);

/**
 * Per-layer, per-reason idle lane-cycle breakdown.
 *
 * Rows are keyed by a caller-chosen layer label (the report uses
 * the same "L<i>_<name>" keys as the stats layer groups) and kept
 * in first-seen order.
 */
class StallProfile
{
  public:
    /** One layer's idle lane-cycles split by reason. */
    struct Row
    {
        std::string layer;
        std::array<std::uint64_t, kStallReasonCount> idle{};

        /** Idle lane-cycles of this layer, summed over reasons. */
        std::uint64_t total() const;
    };

    /** Attribute `laneCycles` idle lane-cycles to (layer, reason). */
    void add(const std::string &layer, StallReason r,
             std::uint64_t laneCycles);

    /**
     * Fold a sink's stall events into the profile. A stall event is
     * any event with category "stall"; its name is the reason, its
     * "laneCycles" argument (or, absent that, its duration — one
     * lane's span) is the idle amount, and its "layer" argument (or
     * `defaultLayer`) keys the row. Events with unknown reason
     * names are counted and reported, not silently skipped.
     *
     * @param pid Fold only this process's events; 0 folds all.
     * @return Number of stall events with unrecognised reasons.
     */
    std::size_t addFromTrace(const TraceSink &sink, std::uint32_t pid = 0,
                             const std::string &defaultLayer =
                                 "(unattributed)");

    /** Rows in first-seen order. */
    const std::vector<Row> &rows() const { return rows_; }

    /** Idle lane-cycles for one reason, summed over layers. */
    std::uint64_t total(StallReason r) const;

    /** Idle lane-cycles summed over every layer and reason. */
    std::uint64_t totalIdle() const;

    /**
     * Write `layer,reason,idleLaneCycles` CSV rows (RFC 4180
     * quoting). Zero cells are skipped so the file stays sparse.
     *
     * @param prefix Optional first column value prepended as an
     *        extra `scope` column (used to merge several profiles —
     *        e.g. both architectures — into one file).
     * @param header Emit the header row.
     */
    void writeCsv(std::ostream &os, const std::string &prefix = "",
                  bool header = true) const;

    /**
     * Register the profile as a "stalls" group of @p parent: one
     * counter per reason (summed over layers) plus a totalIdle
     * formula. Values are copied — the profile may die afterwards.
     */
    void attachStats(StatGroup &parent) const;

  private:
    Row &rowFor(const std::string &layer);

    std::vector<Row> rows_;
};

} // namespace cnv::sim

#endif // CNV_SIM_STALL_PROFILE_H
