#include "sim/stall_profile.h"

#include "sim/logging.h"
#include "sim/stats_export.h"

namespace cnv::sim {

const char *
stallReasonName(StallReason r)
{
    switch (r) {
      case StallReason::BrickBufferEmpty: return "brick_buffer_empty";
      case StallReason::WindowBarrier: return "window_barrier";
      case StallReason::SynapseWait: return "synapse_wait";
      case StallReason::SliceDrained: return "slice_drained";
      case StallReason::NmBankConflict: return "nm_bank_conflict";
      case StallReason::GbMiss: return "gb_miss";
      case StallReason::DramWait: return "dram_wait";
    }
    CNV_PANIC("invalid stall reason {}", static_cast<int>(r));
}

std::optional<StallReason>
stallReasonFromName(std::string_view name)
{
    for (int i = 0; i < kStallReasonCount; ++i) {
        const auto r = static_cast<StallReason>(i);
        if (name == stallReasonName(r))
            return r;
    }
    return std::nullopt;
}

std::uint64_t
StallProfile::Row::total() const
{
    std::uint64_t sum = 0;
    for (std::uint64_t v : idle)
        sum += v;
    return sum;
}

StallProfile::Row &
StallProfile::rowFor(const std::string &layer)
{
    for (Row &r : rows_) {
        if (r.layer == layer)
            return r;
    }
    rows_.push_back({layer, {}});
    return rows_.back();
}

void
StallProfile::add(const std::string &layer, StallReason r,
                  std::uint64_t laneCycles)
{
    rowFor(layer).idle[static_cast<std::size_t>(r)] += laneCycles;
}

std::size_t
StallProfile::addFromTrace(const TraceSink &sink, std::uint32_t pid,
                           const std::string &defaultLayer)
{
    std::size_t unknown = 0;
    for (const TraceEvent &e : sink.events()) {
        if (e.cat != "stall")
            continue;
        if (pid != 0 && e.pid != pid)
            continue;
        const auto reason = stallReasonFromName(e.name);
        if (!reason) {
            ++unknown;
            continue;
        }
        std::uint64_t cycles = e.dur;
        const std::string *layer = &defaultLayer;
        for (const TraceArg &a : e.args) {
            if (a.name == "laneCycles" && !a.isString)
                cycles = static_cast<std::uint64_t>(a.number);
            else if (a.name == "layer" && a.isString)
                layer = &a.text;
        }
        add(*layer, *reason, cycles);
    }
    if (unknown > 0)
        CNV_WARN("{} stall event(s) carried unknown reason names", unknown);
    return unknown;
}

std::uint64_t
StallProfile::total(StallReason r) const
{
    std::uint64_t sum = 0;
    for (const Row &row : rows_)
        sum += row.idle[static_cast<std::size_t>(r)];
    return sum;
}

std::uint64_t
StallProfile::totalIdle() const
{
    std::uint64_t sum = 0;
    for (const Row &row : rows_)
        sum += row.total();
    return sum;
}

void
StallProfile::writeCsv(std::ostream &os, const std::string &prefix,
                       bool header) const
{
    if (header) {
        if (!prefix.empty())
            os << "scope,";
        os << "layer,reason,idleLaneCycles\n";
    }
    for (const Row &row : rows_) {
        for (int i = 0; i < kStallReasonCount; ++i) {
            if (row.idle[static_cast<std::size_t>(i)] == 0)
                continue;
            if (!prefix.empty())
                os << csvQuote(prefix) << ',';
            os << csvQuote(row.layer) << ','
               << stallReasonName(static_cast<StallReason>(i)) << ','
               << row.idle[static_cast<std::size_t>(i)] << '\n';
        }
    }
}

void
StallProfile::attachStats(StatGroup &parent) const
{
    StatGroup &g = parent.addGroup("stalls");
    static const char *const descs[kStallReasonCount] = {
        "lane-cycles idle waiting on NM brick fetches",
        "lane-cycles idle at window-group sync barriers",
        "lane-cycles idle on the off-chip synapse stream",
        "lane-cycles idle with the lane's slice drained",
        "lane-cycles idle serialising on NM bank conflicts",
        "lane-cycles idle on exposed global-buffer miss fills",
        "lane-cycles idle on off-chip activation spills",
    };
    for (int i = 0; i < kStallReasonCount; ++i) {
        const auto r = static_cast<StallReason>(i);
        g.addCounter(stallReasonName(r), descs[i]) += total(r);
    }
    const std::uint64_t all = totalIdle();
    g.addFormula("totalIdle", "idle lane-cycles over all reasons",
                 [all] { return static_cast<double>(all); });
}

} // namespace cnv::sim
