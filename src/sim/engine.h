/**
 * @file
 * Cycle-stepped simulation engine.
 *
 * The engine advances a set of Clocked components in lock step. Each
 * cycle has two phases: evaluate() — combinational work, reading
 * only state committed in previous cycles — and commit() — latching
 * the new state. The split lets components communicate through
 * Latch objects without order dependence on the evaluation sequence.
 */

#ifndef CNV_SIM_ENGINE_H
#define CNV_SIM_ENGINE_H

#include <cstdint>
#include <string>
#include <vector>

namespace cnv::sim {

/** Simulation time in cycles. */
using Cycle = std::uint64_t;

/** Interface for components driven by the engine's clock. */
class Clocked
{
  public:
    explicit Clocked(std::string name) : name_(std::move(name)) {}
    virtual ~Clocked() = default;

    Clocked(const Clocked &) = delete;
    Clocked &operator=(const Clocked &) = delete;

    /**
     * Combinational phase: compute this cycle's actions from state
     * committed in prior cycles. Must not expose new state to other
     * components until commit().
     */
    virtual void evaluate(Cycle cycle) = 0;

    /** Sequential phase: latch the state computed by evaluate(). */
    virtual void commit(Cycle cycle) = 0;

    /** True once the component has no further work. */
    virtual bool done() const = 0;

    const std::string &name() const { return name_; }

  private:
    std::string name_;
};

/**
 * Registered (one-cycle) communication channel between components.
 * The producer writes during evaluate(); the consumer sees the value
 * only after the engine calls tick() on the latch at commit time.
 */
template <typename T>
class Latch
{
  public:
    /** Producer side: stage a value for the next cycle. */
    void
    push(T v)
    {
        staged_ = std::move(v);
        stagedValid_ = true;
    }

    /** Consumer side: is a value available this cycle? */
    bool valid() const { return currentValid_; }

    /** Consumer side: the value written in the previous cycle. */
    const T &peek() const { return current_; }

    /** Consumer side: consume the value (clears valid). */
    T
    pop()
    {
        currentValid_ = false;
        return std::move(current_);
    }

    /** Advance the latch one cycle (called at commit time). */
    void
    tick()
    {
        if (stagedValid_) {
            current_ = std::move(staged_);
            currentValid_ = true;
            stagedValid_ = false;
        }
    }

    /** True when the consumer has not yet consumed the current value. */
    bool stalled() const { return currentValid_ && stagedValid_; }

  private:
    T current_{};
    T staged_{};
    bool currentValid_ = false;
    bool stagedValid_ = false;
};

/**
 * A named measurement region on the engine's timeline: the half-open
 * cycle interval [begin, end) during which a phase of interest (one
 * layer, one window group, one warm-up) executed. Regions are what
 * per-layer experiment timelines are assembled from.
 */
struct Region
{
    std::string name;
    Cycle begin = 0;
    Cycle end = 0;

    Cycle cycles() const { return end - begin; }
};

/** Drives a set of Clocked components until all report done(). */
class Engine
{
  public:
    explicit Engine(std::string name) : name_(std::move(name)) {}

    /** Register a component; the engine does not take ownership. */
    void add(Clocked &component);

    /**
     * Deregister every component (the clock keeps its value). Lets
     * a caller reuse one engine — and one continuous timeline — for
     * phases built from different component sets.
     */
    void clear();

    /**
     * Open a measurement region at the current cycle, closing any
     * still-open region first. Statistics gathered per region are
     * typically reset here (StatGroup::resetAll) so each region
     * reports only its own activity.
     */
    void beginRegion(std::string name);

    /** Close the open region at the current cycle (no-op if none). */
    void endRegion();

    /** All closed regions, in begin order. */
    const std::vector<Region> &regions() const { return regions_; }

    /**
     * Run until every component is done or maxCycles elapse.
     *
     * @return Number of cycles executed.
     * @throws FatalError if the cycle limit is reached (deadlock guard).
     */
    Cycle run(Cycle maxCycles = 1ULL << 40);

    /** Current simulation time. */
    Cycle now() const { return now_; }

    /** Advance exactly one cycle (for fine-grained tests). */
    void step();

    /** True when every registered component is done. */
    bool allDone() const;

  private:
    std::string name_;
    std::vector<Clocked *> components_;
    Cycle now_ = 0;
    std::vector<Region> regions_;
    bool regionOpen_ = false;
};

} // namespace cnv::sim

#endif // CNV_SIM_ENGINE_H
