/**
 * @file
 * Cycle-level event tracing in Chrome trace-event format.
 *
 * A TraceSink collects timestamped events — duration spans, counter
 * samples, instants — from any component handed a pointer to it, and
 * serializes them as the Chrome trace-event JSON object format, so a
 * trace loads directly in chrome://tracing or Perfetto. One
 * simulated cycle maps to one microsecond of trace time.
 *
 * The sink is bounded: events beyond `maxEvents` are dropped (and
 * counted — the drop count is exported in the trace metadata and
 * warned about, never silent). Process/thread naming metadata is
 * stored out of band and survives the cap, so a truncated trace
 * still labels every track (node -> unit -> lane).
 *
 * The emitted schema is documented field-for-field in
 * docs/observability.md; tests/sim/test_trace_event.cc pins it.
 */

#ifndef CNV_SIM_TRACE_EVENT_H
#define CNV_SIM_TRACE_EVENT_H

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "sim/engine.h"

namespace cnv::sim {

class JsonWriter;

/** One named argument attached to a trace event (number or string). */
struct TraceArg
{
    TraceArg(std::string n, double v)
        : name(std::move(n)), number(v)
    {}
    TraceArg(std::string n, std::uint64_t v)
        : name(std::move(n)), number(static_cast<double>(v))
    {}
    TraceArg(std::string n, std::string v)
        : name(std::move(n)), isString(true), text(std::move(v))
    {}
    TraceArg(std::string n, const char *v)
        : name(std::move(n)), isString(true), text(v)
    {}

    std::string name;
    bool isString = false;
    double number = 0.0;
    std::string text;
};

/** One Chrome trace-event record ("traceEvents" array element). */
struct TraceEvent
{
    /** Chrome phase code: 'X' complete, 'C' counter, 'i' instant. */
    char phase = 'X';
    std::uint32_t pid = 0;
    std::uint32_t tid = 0;
    /** Start time in cycles (trace microseconds). */
    Cycle ts = 0;
    /** Duration in cycles ('X' events only). */
    Cycle dur = 0;
    std::string name;
    /** Comma-free category tag ("lane", "stall", "encoder", ...). */
    std::string cat;
    std::vector<TraceArg> args;
};

/**
 * Bounded collector of trace events plus track-naming metadata.
 *
 * Components record through the typed helpers (complete(),
 * counter(), instant()); the driver serializes once at the end via
 * writeJson(). Recording past the event cap drops the event and
 * increments droppedEvents() — a warning is logged on the first
 * drop, and the count lands in the JSON metadata.
 */
class TraceSink
{
  public:
    /** Default event cap (~1M events, roughly 150 MB of JSON). */
    static constexpr std::size_t kDefaultMaxEvents = 1u << 20;

    explicit TraceSink(std::size_t maxEvents = kDefaultMaxEvents);

    TraceSink(const TraceSink &) = delete;
    TraceSink &operator=(const TraceSink &) = delete;

    /** Name the process track (e.g. "cnv node0 unit0"). */
    void setProcessName(std::uint32_t pid, std::string name);

    /** Name a thread track within a process (e.g. "lane3"). */
    void setThreadName(std::uint32_t pid, std::uint32_t tid,
                       std::string name);

    /** Record a complete ('X') span of `dur` cycles starting at `ts`. */
    void complete(std::uint32_t pid, std::uint32_t tid, std::string name,
                  std::string cat, Cycle ts, Cycle dur,
                  std::vector<TraceArg> args = {});

    /** Record a single-series counter ('C') sample. */
    void counter(std::uint32_t pid, std::uint32_t tid, std::string name,
                 Cycle ts, double value);

    /** Record an instant ('i') event. */
    void instant(std::uint32_t pid, std::uint32_t tid, std::string name,
                 std::string cat, Cycle ts,
                 std::vector<TraceArg> args = {});

    /** Events admitted so far (metadata excluded), in record order. */
    const std::vector<TraceEvent> &events() const { return events_; }

    /** Events rejected because the cap was reached. */
    std::size_t droppedEvents() const { return dropped_; }

    /** The configured event cap. */
    std::size_t maxEvents() const { return maxEvents_; }

    /**
     * Serialize the whole trace as one JSON document:
     *
     *   { "displayTimeUnit": "ms",
     *     "metadata": { "clockDomain": "cycles", "maxEvents": N,
     *                   "droppedEvents": D, ...extra... },
     *     "traceEvents": [ <'M' naming records>, <events> ] }
     *
     * @param extraMetadata Additional metadata members (e.g. the run
     *        manifest fields), emitted verbatim into "metadata".
     */
    void writeJson(std::ostream &os,
                   const std::vector<TraceArg> &extraMetadata = {}) const;

  private:
    bool admit();

    std::size_t maxEvents_;
    std::vector<TraceEvent> events_;
    std::size_t dropped_ = 0;
    std::vector<std::pair<std::uint32_t, std::string>> processNames_;
    /** (pid, tid) -> name, in declaration order. */
    std::vector<std::pair<std::pair<std::uint32_t, std::uint32_t>,
                          std::string>>
        threadNames_;
};

/**
 * RAII duration span bound to an engine's clock: reads
 * engine.now() at construction and again at end() (or destruction)
 * and records one 'X' event covering the interval. Zero-length
 * spans are suppressed.
 */
class ScopedSpan
{
  public:
    /** @param sink May be null — the span then records nothing. */
    ScopedSpan(TraceSink *sink, const Engine &engine, std::uint32_t pid,
               std::uint32_t tid, std::string name, std::string cat,
               std::vector<TraceArg> args = {});

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    ~ScopedSpan() { end(); }

    /** Close the span now (idempotent). */
    void end();

  private:
    TraceSink *sink_;
    const Engine &engine_;
    std::uint32_t pid_;
    std::uint32_t tid_;
    std::string name_;
    std::string cat_;
    std::vector<TraceArg> args_;
    Cycle begin_;
    bool ended_ = false;
};

} // namespace cnv::sim

#endif // CNV_SIM_TRACE_EVENT_H
