/**
 * @file
 * Deterministic parallel runtime: a fixed-size worker pool plus the
 * parallelFor / parallelMapReduce helpers every multi-image and
 * multi-architecture loop in the simulator fans out over.
 *
 * Design rules (docs/architecture.md, "Threading model"):
 *
 *  - The calling thread always participates in draining its own
 *    batch, so nested parallel sections on one pool cannot deadlock
 *    and a 1-job pool degenerates to the serial loop.
 *  - parallelMapReduce commits results in submission-index order
 *    regardless of completion order, so any reduction — even a
 *    non-commutative one — produces bit-identical output for every
 *    job count.
 *  - Exceptions thrown by tasks are captured and the lowest-index
 *    one is rethrown after the batch drains (again independent of
 *    scheduling).
 *
 * This header and parallel.cc are the only places in the tree where
 * std::thread may appear (cnvlint's raw-thread rule); everything
 * else takes a ThreadPool & or uses the globalPool().
 */

#ifndef CNV_SIM_PARALLEL_H
#define CNV_SIM_PARALLEL_H

#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/sync.h"
#include "sim/logging.h"

namespace cnv::sim {

/**
 * Fixed-size worker pool executing index batches. A pool with
 * `jobs` total lanes spawns `jobs - 1` worker threads; the thread
 * calling forEach() is always the remaining lane.
 */
class ThreadPool
{
  public:
    /** @param jobs Total concurrency; <= 0 means defaultJobCount(). */
    explicit ThreadPool(int jobs = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total lanes (workers + the participating caller). */
    int
    threadCount() const
    {
        return jobs_;
    }

    /**
     * Run fn(i) for every i in [0, n), blocking until all complete.
     * The caller claims tasks itself while waiting, so calling this
     * from inside a task (nested parallelism) is safe. Rethrows the
     * lowest-index task exception after the batch drains. Must not
     * be called while holding the pool's internal mutex (enforced by
     * the thread-safety analysis via CNV_EXCLUDES).
     */
    void forEach(std::size_t n, const std::function<void(std::size_t)> &fn)
        CNV_EXCLUDES(mutex_);

  private:
    struct Batch;
    struct LaneMetrics;

    void workerLoop(int index) CNV_EXCLUDES(mutex_);
    /** Claim and run one task of `batch`, charging its wall time to
     *  `lane`'s telemetry counters; false when exhausted. */
    bool runOneTask(Batch &batch, const LaneMetrics &lane);

    std::vector<std::thread> workers_;
    core::Mutex mutex_;
    core::ConditionVariable wake_;
    std::deque<std::shared_ptr<Batch>> queue_ CNV_GUARDED_BY(mutex_);
    bool stop_ CNV_GUARDED_BY(mutex_) = false;
    int jobs_ = 1;
};

/**
 * Default job count: the CNVSIM_JOBS environment variable when set
 * to a positive integer, otherwise std::thread::hardware_concurrency
 * (minimum 1).
 */
int defaultJobCount();

/**
 * Configure the process-wide job count used by globalPool(). Call
 * once at startup (the CLI's --jobs flag); replacing the pool while
 * parallel work is in flight is not supported. Fatal when jobs < 1.
 */
void setJobCount(int jobs);

/** The currently configured process-wide job count. */
int jobCount();

/** The process-wide pool (built lazily with jobCount() lanes). */
ThreadPool &globalPool();

/** Run fn(i) for i in [0, n) on `pool`; blocks until done. */
template <typename Fn>
void
parallelFor(ThreadPool &pool, std::size_t n, Fn &&fn)
{
    const std::function<void(std::size_t)> task(std::forward<Fn>(fn));
    pool.forEach(n, task);
}

/** parallelFor on the process-wide pool. */
template <typename Fn>
void
parallelFor(std::size_t n, Fn &&fn)
{
    parallelFor(globalPool(), n, std::forward<Fn>(fn));
}

/**
 * Map every index in [0, n) concurrently, then commit the results
 * serially in submission order: reduce(0, r0), reduce(1, r1), ...
 * The ordered commit is what makes every aggregate and report
 * bit-identical regardless of the job count.
 */
template <typename Map, typename Reduce>
void
parallelMapReduce(ThreadPool &pool, std::size_t n, Map &&map,
                  Reduce &&reduce)
{
    using Result = std::decay_t<std::invoke_result_t<Map &, std::size_t>>;
    std::vector<std::optional<Result>> results(n);
    parallelFor(pool, n,
                [&](std::size_t i) { results[i].emplace(map(i)); });
    for (std::size_t i = 0; i < n; ++i) {
        // parallelFor rethrows any task exception before we get
        // here, so every slot is populated; the check keeps the
        // optional access provably guarded (clang-tidy
        // bugprone-unchecked-optional-access) and turns a broken
        // invariant into a diagnosable panic instead of UB.
        if (!results[i])
            CNV_PANIC("parallelMapReduce: task {} committed no result", i);
        reduce(i, std::move(*results[i]));
    }
}

/** parallelMapReduce on the process-wide pool. */
template <typename Map, typename Reduce>
void
parallelMapReduce(std::size_t n, Map &&map, Reduce &&reduce)
{
    parallelMapReduce(globalPool(), n, std::forward<Map>(map),
                      std::forward<Reduce>(reduce));
}

} // namespace cnv::sim

#endif // CNV_SIM_PARALLEL_H
