#include "sim/engine.h"

#include "sim/logging.h"

namespace cnv::sim {

void
Engine::add(Clocked &component)
{
    components_.push_back(&component);
}

void
Engine::clear()
{
    components_.clear();
}

void
Engine::beginRegion(std::string name)
{
    endRegion();
    regions_.push_back({std::move(name), now_, now_});
    regionOpen_ = true;
}

void
Engine::endRegion()
{
    if (!regionOpen_)
        return;
    regions_.back().end = now_;
    regionOpen_ = false;
}

bool
Engine::allDone() const
{
    for (const Clocked *c : components_) {
        if (!c->done())
            return false;
    }
    return true;
}

void
Engine::step()
{
    for (Clocked *c : components_)
        c->evaluate(now_);
    for (Clocked *c : components_)
        c->commit(now_);
    ++now_;
}

Cycle
Engine::run(Cycle maxCycles)
{
    const Cycle start = now_;
    while (!allDone()) {
        if (now_ - start >= maxCycles)
            CNV_FATAL("engine '{}' exceeded cycle limit {} — deadlock?",
                      name_, maxCycles);
        step();
    }
    return now_ - start;
}

} // namespace cnv::sim
