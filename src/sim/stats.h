/**
 * @file
 * Named-statistics package, modelled on gem5's stats framework.
 *
 * Components declare named, documented statistics inside a
 * StatGroup; the group can dump all values as a table, be queried
 * by name (used by the driver to assemble experiment reports), and
 * be reset between measurement regions.
 */

#ifndef CNV_SIM_STATS_H
#define CNV_SIM_STATS_H

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace cnv::sim {

/** Base class for all named statistics. */
class Stat
{
  public:
    Stat(std::string name, std::string desc)
        : name_(std::move(name)), desc_(std::move(desc))
    {}
    virtual ~Stat() = default;

    Stat(const Stat &) = delete;
    Stat &operator=(const Stat &) = delete;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    /** Scalar value of the statistic (for dumping and queries). */
    virtual double value() const = 0;

    /** Reset the statistic to its initial state. */
    virtual void reset() = 0;

  private:
    std::string name_;
    std::string desc_;
};

/** Monotonically increasing event counter. */
class Counter : public Stat
{
  public:
    using Stat::Stat;

    Counter &operator++() { ++count_; return *this; }
    Counter &operator+=(std::uint64_t n) { count_ += n; return *this; }

    std::uint64_t count() const { return count_; }
    double value() const override { return static_cast<double>(count_); }
    void reset() override { count_ = 0; }

  private:
    std::uint64_t count_ = 0;
};

/** Settable scalar value (e.g., a measured energy in joules). */
class Scalar : public Stat
{
  public:
    using Stat::Stat;

    Scalar &operator=(double v) { value_ = v; return *this; }
    Scalar &operator+=(double v) { value_ += v; return *this; }

    double value() const override { return value_; }
    void reset() override { value_ = 0.0; }

  private:
    double value_ = 0.0;
};

/** Derived statistic computed on demand from other statistics. */
class Formula : public Stat
{
  public:
    Formula(std::string name, std::string desc, std::function<double()> fn)
        : Stat(std::move(name), std::move(desc)), fn_(std::move(fn))
    {}

    double value() const override { return fn_(); }
    void reset() override {}

  private:
    std::function<double()> fn_;
};

/** Running distribution: count, mean, stddev, min, max. */
class Distribution : public Stat
{
  public:
    using Stat::Stat;

    void sample(double x);

    std::uint64_t count() const { return count_; }
    double mean() const;
    double stddev() const;
    double min() const { return min_; }
    double max() const { return max_; }

    /** value() reports the mean, the most useful single summary. */
    double value() const override { return mean(); }
    void reset() override;

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double sumSq_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * A named collection of statistics. Groups may nest; dumped names
 * are dot-joined ("cnv.unit0.sbReads").
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    Counter &addCounter(const std::string &name, const std::string &desc);
    Scalar &addScalar(const std::string &name, const std::string &desc);
    Formula &addFormula(const std::string &name, const std::string &desc,
                        std::function<double()> fn);
    Distribution &addDistribution(const std::string &name,
                                  const std::string &desc);

    /** Create (and own) a nested group. */
    StatGroup &addGroup(const std::string &name);

    const std::string &name() const { return name_; }

    /**
     * Find a statistic by dot-joined path relative to this group
     * ("unit0.sbReads"). Returns nullptr when absent.
     */
    const Stat *find(const std::string &path) const;

    /** Value of a statistic that must exist; fatal when absent. */
    double get(const std::string &path) const;

    /** Reset all statistics in this group and nested groups. */
    void resetAll();

    /** Dump "name value # desc" lines, depth-first. */
    void dump(std::ostream &os, const std::string &prefix = "") const;

    /** Visit every stat with its dot-joined full name. */
    void visit(const std::function<void(const std::string &,
                                        const Stat &)> &fn,
               const std::string &prefix = "") const;

    /** Immediate statistics of this group, in declaration order. */
    const std::deque<std::unique_ptr<Stat>> &statChildren() const
    {
        return stats_;
    }

    /** Immediate nested groups, in declaration order. */
    const std::deque<std::unique_ptr<StatGroup>> &groupChildren() const
    {
        return groups_;
    }

  private:
    template <typename T, typename... Args>
    T &add(Args &&...args);

    std::string name_;
    std::deque<std::unique_ptr<Stat>> stats_;
    std::deque<std::unique_ptr<StatGroup>> groups_;
};

} // namespace cnv::sim

#endif // CNV_SIM_STATS_H
