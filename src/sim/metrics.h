/**
 * @file
 * Host-side telemetry: the process-wide metrics registry behind the
 * `hostProfile` report section and the `cnv-perf-v1` artifact
 * (docs/observability.md).
 *
 * The simulated hardware has been observable since PR 1 (stat trees,
 * trace events, stall attribution); this registry makes the
 * *simulator* observable: where wall-clock time goes across the
 * driver pipeline (RAII phase timers), how the sim::ThreadPool lanes
 * spend their time (busy/idle/steal counters), how often the
 * timing::TraceCache hits and what its miss paths cost (fixed-bucket
 * latency histograms), and the process peak RSS.
 *
 * Design rules:
 *
 *  - One process-wide registry (metrics()), disabled by default.
 *    Every mutator checks an atomic enabled flag first, so
 *    instrumented library code costs one relaxed load when nobody is
 *    profiling. The cnvsim CLI and the bench binaries enable it at
 *    startup.
 *  - All wall-clock reads in the tree go through
 *    MetricsRegistry::nowNanos() — cnvlint's host-timing rule bans
 *    std::chrono clocks outside this module, mirroring raw-thread.
 *  - Recording is thread-safe (one mutex over the maps; entries are
 *    coarse-grained — whole tasks, layers, cache misses — so the
 *    lock is not on any per-neuron path) and never affects simulated
 *    results: determinism tests strip the hostProfile block.
 */

#ifndef CNV_SIM_METRICS_H
#define CNV_SIM_METRICS_H

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "core/sync.h"

namespace cnv::sim {

class JsonWriter;

/**
 * Thread-safe registry of counters, high-water-mark gauges, phase
 * timers and fixed-bucket latency histograms, plus the live
 * `--progress` meter. All clock reads flow through nowNanos().
 */
class MetricsRegistry
{
  public:
    /** Histogram bucket count: upper bounds are 1us << i. */
    static constexpr int kHistogramBuckets = 20;

    /** Upper bound (inclusive) of histogram bucket `i`, in ns. */
    static constexpr std::uint64_t
    bucketBoundNanos(int i)
    {
        return std::uint64_t{1000} << i;
    }

    /** One latency histogram: count/sum/min/max plus log2 buckets. */
    struct Histogram
    {
        std::uint64_t count = 0;
        std::uint64_t totalNanos = 0;
        std::uint64_t minNanos = 0;
        std::uint64_t maxNanos = 0;
        /** Samples <= bucketBoundNanos(i), cumulative-exclusive. */
        std::array<std::uint64_t, kHistogramBuckets> buckets{};
        /** Samples above the last bucket bound. */
        std::uint64_t overflow = 0;
    };

    /** One named phase: accumulated wall time and entry count. */
    struct Phase
    {
        std::uint64_t nanos = 0;
        std::uint64_t calls = 0;
    };

    /** Point-in-time copy of everything the registry recorded. */
    struct Snapshot
    {
        bool enabled = false;
        /** Wall nanoseconds since setEnabled(true). */
        std::uint64_t sinceEnableNanos = 0;
        /** Process peak resident set, bytes (0 when unavailable). */
        std::uint64_t peakRssBytes = 0;
        std::map<std::string, std::uint64_t> counters;
        std::map<std::string, std::uint64_t> gauges;
        std::map<std::string, Phase> phases;
        std::map<std::string, Histogram> histograms;
    };

    /** Progress-meter mode: Auto prints only when stderr is a TTY. */
    enum class Progress { Off, On, Auto };

    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** Whether recording is on (one relaxed atomic load). */
    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Turn recording on (resets all series and stamps the epoch)
     *  or off (recorded data is kept for late snapshots). */
    void setEnabled(bool on);

    /** Monotonic wall clock, nanoseconds. The one sanctioned clock
     *  read in the tree (cnvlint host-timing). */
    static std::uint64_t nowNanos();

    /** nowNanos() when enabled, 0 otherwise — the idiom
     *  instrumentation sites use to skip the second clock read and
     *  the recording call on the disabled path. */
    std::uint64_t
    nowIfEnabled() const
    {
        return enabled() ? nowNanos() : 0;
    }

    /** Wall seconds since setEnabled(true); 0 when disabled. */
    double secondsSinceEnable() const;

    /** Add `delta` to a named monotonic counter. */
    void add(std::string_view counter, std::uint64_t delta = 1);

    /** Raise a named high-water-mark gauge to at least `value`. */
    void gaugeMax(std::string_view gauge, std::uint64_t value);

    /** Accumulate one timed entry into a named phase. */
    void addPhaseNanos(std::string_view phase, std::uint64_t nanos);

    /** Record one latency sample into a named histogram. */
    void recordNanos(std::string_view histogram, std::uint64_t nanos);

    /** Select the progress-meter mode (default Off). */
    void configureProgress(Progress mode);

    /** Start a progress span of `totalUnits` work items. */
    void beginProgress(std::string label, std::uint64_t totalUnits);

    /** Mark `units` items done; prints a rate-limited stderr line
     *  (units/s, ETA, cache hit rate). Safe from any thread. */
    void tickProgress(std::uint64_t units = 1);

    /** Finish the span (prints the final line with a newline). */
    void endProgress();

    /** Copy out everything recorded so far. */
    Snapshot snapshot() const;

  private:
    bool progressVisible() const CNV_REQUIRES(mutex_);
    /** Emit the progress line; caller holds mutex_. */
    void printProgress(bool final) CNV_REQUIRES(mutex_);

    mutable core::Mutex mutex_;
    std::atomic<bool> enabled_{false};
    std::atomic<std::uint64_t> epochNanos_{0};
    std::map<std::string, std::uint64_t> counters_ CNV_GUARDED_BY(mutex_);
    std::map<std::string, std::uint64_t> gauges_ CNV_GUARDED_BY(mutex_);
    std::map<std::string, Phase> phases_ CNV_GUARDED_BY(mutex_);
    std::map<std::string, Histogram> histograms_ CNV_GUARDED_BY(mutex_);

    Progress progressMode_ CNV_GUARDED_BY(mutex_) = Progress::Off;
    std::string progressLabel_ CNV_GUARDED_BY(mutex_);
    std::uint64_t progressTotal_ CNV_GUARDED_BY(mutex_) = 0;
    std::uint64_t progressDone_ CNV_GUARDED_BY(mutex_) = 0;
    std::uint64_t progressStartNanos_ CNV_GUARDED_BY(mutex_) = 0;
    std::uint64_t progressLastPrintNanos_ CNV_GUARDED_BY(mutex_) = 0;
    bool progressActive_ CNV_GUARDED_BY(mutex_) = false;
};

/** The process-wide registry every instrumentation site records to. */
MetricsRegistry &metrics();

/**
 * RAII phase timer: construction stamps the clock, destruction
 * accumulates the elapsed wall time into the named phase of the
 * process-wide registry. No-op while the registry is disabled.
 */
class ScopedPhase
{
  public:
    explicit ScopedPhase(std::string_view phase)
        : phase_(phase), startNanos_(metrics().nowIfEnabled())
    {}
    ~ScopedPhase()
    {
        if (startNanos_ != 0)
            metrics().addPhaseNanos(
                phase_, MetricsRegistry::nowNanos() - startNanos_);
    }

    ScopedPhase(const ScopedPhase &) = delete;
    ScopedPhase &operator=(const ScopedPhase &) = delete;

  private:
    std::string phase_;
    std::uint64_t startNanos_ = 0;
};

/** Peak resident set size of this process in bytes (Linux VmHWM;
 *  0 on platforms without the procfs interface). */
std::uint64_t processPeakRssBytes();

/**
 * Serialize a snapshot as the `hostProfile` JSON object shared by
 * cnv-report-v1, cnv-perf-v1 and cnv-figure-v1. The writer must be
 * positioned where a value is legal. Schema: docs/observability.md
 * (every emitted key is checked against it by cnvlint schema-docs).
 */
void writeHostProfile(const MetricsRegistry::Snapshot &snap, JsonWriter &w);

} // namespace cnv::sim

#endif // CNV_SIM_METRICS_H
