#include "sim/stats.h"

#include <cmath>
#include <iomanip>

#include "sim/logging.h"

namespace cnv::sim {

void
Distribution::sample(double x)
{
    ++count_;
    sum_ += x;
    sumSq_ += x * x;
    if (x < min_)
        min_ = x;
    if (x > max_)
        max_ = x;
}

double
Distribution::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double
Distribution::stddev() const
{
    if (count_ < 2)
        return 0.0;
    const double n = static_cast<double>(count_);
    const double var = (sumSq_ - sum_ * sum_ / n) / (n - 1.0);
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

void
Distribution::reset()
{
    count_ = 0;
    sum_ = 0.0;
    sumSq_ = 0.0;
    min_ = std::numeric_limits<double>::infinity();
    max_ = -std::numeric_limits<double>::infinity();
}

template <typename T, typename... Args>
T &
StatGroup::add(Args &&...args)
{
    auto stat = std::make_unique<T>(std::forward<Args>(args)...);
    for (const auto &existing : stats_) {
        if (existing->name() == stat->name())
            CNV_FATAL("duplicate statistic '{}' in group '{}'",
                      stat->name(), name_);
    }
    T &ref = *stat;
    stats_.push_back(std::move(stat));
    return ref;
}

Counter &
StatGroup::addCounter(const std::string &name, const std::string &desc)
{
    return add<Counter>(name, desc);
}

Scalar &
StatGroup::addScalar(const std::string &name, const std::string &desc)
{
    return add<Scalar>(name, desc);
}

Formula &
StatGroup::addFormula(const std::string &name, const std::string &desc,
                      std::function<double()> fn)
{
    return add<Formula>(name, desc, std::move(fn));
}

Distribution &
StatGroup::addDistribution(const std::string &name, const std::string &desc)
{
    return add<Distribution>(name, desc);
}

StatGroup &
StatGroup::addGroup(const std::string &name)
{
    for (const auto &existing : groups_) {
        if (existing->name() == name)
            CNV_FATAL("duplicate stat group '{}' in group '{}'", name, name_);
    }
    groups_.push_back(std::make_unique<StatGroup>(name));
    return *groups_.back();
}

const Stat *
StatGroup::find(const std::string &path) const
{
    const std::size_t dot = path.find('.');
    if (dot == std::string::npos) {
        for (const auto &stat : stats_) {
            if (stat->name() == path)
                return stat.get();
        }
        return nullptr;
    }
    const std::string head = path.substr(0, dot);
    const std::string tail = path.substr(dot + 1);
    for (const auto &group : groups_) {
        if (group->name() == head)
            return group->find(tail);
    }
    return nullptr;
}

double
StatGroup::get(const std::string &path) const
{
    const Stat *stat = find(path);
    if (!stat)
        CNV_FATAL("unknown statistic '{}' in group '{}'", path, name_);
    return stat->value();
}

void
StatGroup::resetAll()
{
    for (auto &stat : stats_)
        stat->reset();
    for (auto &group : groups_)
        group->resetAll();
}

void
StatGroup::dump(std::ostream &os, const std::string &prefix) const
{
    constexpr int kNameWidth = 48;
    constexpr int kValueWidth = 16;
    const std::string base = prefix.empty() ? name_ : prefix + "." + name_;
    for (const auto &stat : stats_) {
        os << std::left << std::setw(kNameWidth)
           << (base + "." + stat->name())
           << ' ' << std::setw(kValueWidth) << stat->value()
           << " # " << stat->desc() << '\n';
    }
    for (const auto &group : groups_)
        group->dump(os, base);
}

void
StatGroup::visit(const std::function<void(const std::string &,
                                          const Stat &)> &fn,
                 const std::string &prefix) const
{
    const std::string base = prefix.empty() ? name_ : prefix + "." + name_;
    for (const auto &stat : stats_)
        fn(base + "." + stat->name(), *stat);
    for (const auto &group : groups_)
        group->visit(fn, base);
}

} // namespace cnv::sim
