/**
 * @file
 * Exception types thrown by the logging layer.
 *
 * Unlike gem5 (which aborts the process), this is a library: panic
 * and fatal raise typed exceptions so embedding applications and
 * tests can observe failures without dying. PanicError signals an
 * internal simulator bug; FatalError signals a user/configuration
 * error.
 */

#ifndef CNV_SIM_ERROR_H
#define CNV_SIM_ERROR_H

#include <stdexcept>
#include <string>

namespace cnv::sim {

/** Internal invariant violation — a bug in the simulator itself. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** User-facing error — bad configuration or invalid arguments. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

} // namespace cnv::sim

#endif // CNV_SIM_ERROR_H
