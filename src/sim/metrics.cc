/**
 * @file
 * MetricsRegistry implementation: the sanctioned steady-clock read,
 * the thread-safe series maps, the rate-limited progress meter, the
 * /proc peak-RSS probe, and the hostProfile JSON emitter (the keys
 * emitted here are the wire schema cnvlint's schema-docs rule checks
 * against docs/observability.md).
 */

#include "sim/metrics.h"

#include <charconv>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "sim/stats_export.h"

namespace cnv::sim {

namespace {

/** Progress lines are throttled to one per this many nanoseconds. */
constexpr std::uint64_t kProgressIntervalNanos = 100'000'000;

double
nanosToSeconds(std::uint64_t nanos)
{
    return static_cast<double>(nanos) / 1e9;
}

bool
stderrIsTty()
{
#if defined(__unix__) || defined(__APPLE__)
    return isatty(STDERR_FILENO) != 0;
#else
    return false;
#endif
}

} // namespace

void
MetricsRegistry::setEnabled(bool on)
{
    const core::MutexLock lock(mutex_);
    if (on) {
        counters_.clear();
        gauges_.clear();
        phases_.clear();
        histograms_.clear();
        epochNanos_.store(nowNanos(), std::memory_order_relaxed);
    }
    enabled_.store(on, std::memory_order_relaxed);
}

std::uint64_t
MetricsRegistry::nowNanos()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

double
MetricsRegistry::secondsSinceEnable() const
{
    if (!enabled())
        return 0.0;
    return nanosToSeconds(
        nowNanos() - epochNanos_.load(std::memory_order_relaxed));
}

void
MetricsRegistry::add(std::string_view counter, std::uint64_t delta)
{
    if (!enabled())
        return;
    const core::MutexLock lock(mutex_);
    counters_[std::string(counter)] += delta;
}

void
MetricsRegistry::gaugeMax(std::string_view gauge, std::uint64_t value)
{
    if (!enabled())
        return;
    const core::MutexLock lock(mutex_);
    std::uint64_t &slot = gauges_[std::string(gauge)];
    if (value > slot)
        slot = value;
}

void
MetricsRegistry::addPhaseNanos(std::string_view phase, std::uint64_t nanos)
{
    if (!enabled())
        return;
    const core::MutexLock lock(mutex_);
    Phase &p = phases_[std::string(phase)];
    p.nanos += nanos;
    p.calls += 1;
}

void
MetricsRegistry::recordNanos(std::string_view histogram,
                             std::uint64_t nanos)
{
    if (!enabled())
        return;
    const core::MutexLock lock(mutex_);
    Histogram &h = histograms_[std::string(histogram)];
    if (h.count == 0 || nanos < h.minNanos)
        h.minNanos = nanos;
    if (nanos > h.maxNanos)
        h.maxNanos = nanos;
    h.count += 1;
    h.totalNanos += nanos;
    for (int i = 0; i < kHistogramBuckets; ++i) {
        if (nanos <= bucketBoundNanos(i)) {
            h.buckets[static_cast<std::size_t>(i)] += 1;
            return;
        }
    }
    h.overflow += 1;
}

bool
MetricsRegistry::progressVisible() const
{
    switch (progressMode_) {
      case Progress::Off: return false;
      case Progress::On: return true;
      case Progress::Auto: return stderrIsTty();
    }
    return false;
}

void
MetricsRegistry::configureProgress(Progress mode)
{
    const core::MutexLock lock(mutex_);
    progressMode_ = mode;
}

void
MetricsRegistry::beginProgress(std::string label, std::uint64_t totalUnits)
{
    const core::MutexLock lock(mutex_);
    progressLabel_ = std::move(label);
    progressTotal_ = totalUnits;
    progressDone_ = 0;
    progressStartNanos_ = nowNanos();
    progressLastPrintNanos_ = 0;
    progressActive_ = true;
}

void
MetricsRegistry::tickProgress(std::uint64_t units)
{
    const core::MutexLock lock(mutex_);
    if (!progressActive_)
        return;
    progressDone_ += units;
    if (!progressVisible())
        return;
    const std::uint64_t now = nowNanos();
    if (now - progressLastPrintNanos_ < kProgressIntervalNanos)
        return;
    progressLastPrintNanos_ = now;
    printProgress(/*final=*/false);
}

void
MetricsRegistry::endProgress()
{
    const core::MutexLock lock(mutex_);
    if (!progressActive_)
        return;
    progressActive_ = false;
    if (progressVisible())
        printProgress(/*final=*/true);
}

void
MetricsRegistry::printProgress(bool final)
{
    const double elapsed =
        nanosToSeconds(nowNanos() - progressStartNanos_);
    const double rate =
        elapsed > 0.0 ? static_cast<double>(progressDone_) / elapsed : 0.0;
    const std::uint64_t left =
        progressTotal_ > progressDone_ ? progressTotal_ - progressDone_
                                       : 0;
    const double eta =
        rate > 0.0 ? static_cast<double>(left) / rate : 0.0;
    std::uint64_t hits = 0;
    std::uint64_t lookups = 0;
    for (const char *key : {"traceCache.tensorHits",
                            "traceCache.countMapHits"}) {
        const auto it = counters_.find(key);
        if (it != counters_.end())
            hits += it->second;
    }
    lookups = hits;
    for (const char *key : {"traceCache.tensorMisses",
                            "traceCache.countMapMisses"}) {
        const auto it = counters_.find(key);
        if (it != counters_.end())
            lookups += it->second;
    }
    std::ostream &os = std::cerr;
    os << '\r' << progressLabel_ << ": " << progressDone_ << '/'
       << progressTotal_ << " runs";
    {
        // One decimal is plenty for a status line; avoid touching
        // the stream's persistent formatting state.
        char buf[64];
        std::snprintf(buf, sizeof buf, "  %.1f runs/s  ETA %.1fs", rate,
                      eta);
        os << buf;
    }
    if (lookups > 0) {
        char buf[48];
        std::snprintf(buf, sizeof buf, "  cache hit %.0f%%",
                      100.0 * static_cast<double>(hits) /
                          static_cast<double>(lookups));
        os << buf;
    }
    os << "   ";
    if (final)
        os << '\n';
    os.flush();
}

MetricsRegistry::Snapshot
MetricsRegistry::snapshot() const
{
    Snapshot snap;
    snap.peakRssBytes = processPeakRssBytes();
    const core::MutexLock lock(mutex_);
    snap.enabled = enabled();
    if (snap.enabled)
        snap.sinceEnableNanos =
            nowNanos() - epochNanos_.load(std::memory_order_relaxed);
    snap.counters = counters_;
    snap.gauges = gauges_;
    snap.phases = phases_;
    snap.histograms = histograms_;
    return snap;
}

MetricsRegistry &
metrics()
{
    // Intentionally immortal: the global pool's workers can record
    // idle time while static destruction is unwinding, which must
    // not race a destroyed registry. The object stays reachable
    // through the static pointer, so leak checkers are quiet.
    static MetricsRegistry *registry = new MetricsRegistry;
    return *registry;
}

std::uint64_t
processPeakRssBytes()
{
#if defined(__linux__)
    std::ifstream status("/proc/self/status");
    std::string line;
    while (std::getline(status, line)) {
        if (line.rfind("VmHWM:", 0) != 0)
            continue;
        // "VmHWM:    12345 kB" — parse the first digit run.
        std::size_t begin = line.find_first_of("0123456789");
        if (begin == std::string::npos)
            return 0;
        std::uint64_t kib = 0;
        const auto *first = line.data() + begin;
        std::from_chars(first, line.data() + line.size(), kib);
        return kib * 1024;
    }
#endif
    return 0;
}

namespace {

/** Per-lane accumulation parsed out of the pool.* counters. */
struct LaneRow
{
    std::uint64_t busyNanos = 0;
    std::uint64_t idleNanos = 0;
    std::uint64_t tasks = 0;
};

void
writeHistogramJson(const MetricsRegistry::Histogram &h, JsonWriter &w)
{
    w.beginObject();
    w.key("count").value(h.count);
    w.key("totalSeconds").value(nanosToSeconds(h.totalNanos));
    w.key("minSeconds").value(nanosToSeconds(h.minNanos));
    w.key("maxSeconds").value(nanosToSeconds(h.maxNanos));
    w.key("overflow").value(h.overflow);
    w.key("buckets").beginArray();
    for (int i = 0; i < MetricsRegistry::kHistogramBuckets; ++i) {
        const std::uint64_t count =
            h.buckets[static_cast<std::size_t>(i)];
        if (count == 0)
            continue; // sparse: empty buckets carry no information
        w.beginObject();
        w.key("leSeconds")
            .value(nanosToSeconds(MetricsRegistry::bucketBoundNanos(i)));
        w.key("count").value(count);
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

} // namespace

void
writeHostProfile(const MetricsRegistry::Snapshot &snap, JsonWriter &w)
{
    // Partition the flat counter namespace into the structured
    // sections the schema documents; anything unclaimed surfaces
    // verbatim under "counters"/"gauges" so no series can hide.
    std::map<std::string, LaneRow> lanes;
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, std::uint64_t> cache;
    std::uint64_t stolenTasks = 0;
    for (const auto &[name, value] : snap.counters) {
        if (name == "pool.stolenTasks") {
            stolenTasks = value;
            continue;
        }
        if (name.rfind("traceCache.", 0) == 0 &&
            name.find('.', 11) == std::string::npos) {
            cache[name.substr(11)] = value;
            continue;
        }
        if (name.rfind("pool.", 0) == 0) {
            const std::size_t dot = name.rfind('.');
            const std::string lane = name.substr(5, dot - 5);
            const std::string field = name.substr(dot + 1);
            if (dot > 5) {
                LaneRow &row = lanes[lane];
                if (field == "busyNanos") {
                    row.busyNanos = value;
                    continue;
                }
                if (field == "idleNanos") {
                    row.idleNanos = value;
                    continue;
                }
                if (field == "tasks") {
                    row.tasks = value;
                    continue;
                }
            }
        }
        counters[name] = value;
    }
    std::map<std::string, std::uint64_t> gauges = snap.gauges;
    std::uint64_t queueDepthMax = 0;
    if (const auto it = gauges.find("pool.queueDepthMax");
        it != gauges.end()) {
        queueDepthMax = it->second;
        gauges.erase(it);
    }

    w.beginObject();
    w.key("totalSeconds").value(nanosToSeconds(snap.sinceEnableNanos));
    w.key("peakRssBytes").value(snap.peakRssBytes);

    std::uint64_t phaseNanos = 0;
    for (const auto &[name, phase] : snap.phases)
        phaseNanos += phase.nanos;
    const double coverage =
        snap.sinceEnableNanos > 0
            ? static_cast<double>(phaseNanos) /
                  static_cast<double>(snap.sinceEnableNanos)
            : 0.0;
    w.key("phaseCoverage").value(coverage < 1.0 ? coverage : 1.0);
    w.key("phases").beginObject();
    for (const auto &[name, phase] : snap.phases) {
        w.key(name).beginObject();
        w.key("seconds").value(nanosToSeconds(phase.nanos));
        w.key("calls").value(phase.calls);
        w.endObject();
    }
    w.endObject();

    w.key("pool").beginObject();
    w.key("queueDepthMax").value(queueDepthMax);
    w.key("stolenTasks").value(stolenTasks);
    w.key("workers").beginObject();
    for (const auto &[lane, row] : lanes) {
        const std::uint64_t span = row.busyNanos + row.idleNanos;
        w.key(lane).beginObject();
        w.key("busySeconds").value(nanosToSeconds(row.busyNanos));
        w.key("idleSeconds").value(nanosToSeconds(row.idleNanos));
        w.key("tasks").value(row.tasks);
        w.key("utilization")
            .value(span > 0 ? static_cast<double>(row.busyNanos) /
                                  static_cast<double>(span)
                            : 0.0);
        w.endObject();
    }
    w.endObject();
    w.endObject();

    w.key("traceCache").beginObject();
    std::uint64_t hits = 0;
    std::uint64_t lookups = 0;
    for (const char *field : {"tensorHits", "tensorMisses",
                              "countMapHits", "countMapMisses"}) {
        const auto it = cache.find(field);
        const std::uint64_t value = it != cache.end() ? it->second : 0;
        w.key(field).value(value);
        lookups += value;
        if (it != cache.end() &&
            std::string_view(field).find("Hits") != std::string_view::npos)
            hits += value;
    }
    w.key("hitRate").value(
        lookups > 0
            ? static_cast<double>(hits) / static_cast<double>(lookups)
            : 0.0);
    for (const char *name : {"synthesis", "encode"}) {
        const auto it =
            snap.histograms.find(std::string("traceCache.") + name);
        if (it == snap.histograms.end())
            continue;
        w.key(name);
        writeHistogramJson(it->second, w);
    }
    w.endObject();

    w.key("histograms").beginObject();
    for (const auto &[name, h] : snap.histograms) {
        if (name.rfind("traceCache.", 0) == 0)
            continue; // surfaced inside the traceCache section
        w.key(name);
        writeHistogramJson(h, w);
    }
    w.endObject();

    w.key("counters").beginObject();
    for (const auto &[name, value] : counters)
        w.key(name).value(value);
    w.endObject();
    w.key("gauges").beginObject();
    for (const auto &[name, value] : gauges)
        w.key(name).value(value);
    w.endObject();
    w.endObject();
}

} // namespace cnv::sim
