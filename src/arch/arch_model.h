/**
 * @file
 * The ArchModel interface: one architecture variant as a first-class
 * object. A model bundles a stable id (the CLI key and report
 * section name), a display name, the conv/FC/other-layer timing
 * entry points wrapping the closed-form models in src/timing, the
 * calibrated power/area parameter set from src/power, and an
 * optional structural validator hook — so the driver, CLI, benches
 * and reports can loop over N architectures instead of hard-coding
 * the baseline/CNV pair. Variants are looked up through the
 * ArchRegistry (arch/registry.h); the timing::Arch / power::Arch
 * enums stay private to src/timing, src/power and this module
 * (enforced by tools/cnvlint.py's arch-dispatch rule).
 */

#ifndef CNV_ARCH_ARCH_MODEL_H
#define CNV_ARCH_ARCH_MODEL_H

#include <string>

#include "dadiannao/config.h"
#include "dadiannao/metrics.h"
#include "dadiannao/other_layers.h"
#include "mem/memory_model.h"
#include "nn/network.h"
#include "power/model.h"
#include "timing/network_model.h"

namespace cnv::arch {

/**
 * One architecture variant. Implementations wrap the existing
 * closed-form timing models and the calibrated power model; the
 * driver and CLI only ever see this interface (plus the registry),
 * so adding a variant touches no downstream code.
 */
class ArchModel
{
  public:
    virtual ~ArchModel() = default;

    /** Stable registry id: CLI `--arch` key and report section name. */
    virtual const std::string &id() const = 0;

    /** Human-readable name for tables and logs. */
    virtual const std::string &displayName() const = 0;

    /**
     * This variant's node geometry, derived from a base
     * configuration (parameterized variants override brick size,
     * lane count and NM banking; the canonical models return the
     * base unchanged).
     */
    virtual dadiannao::NodeConfig
    nodeConfig(const dadiannao::NodeConfig &base) const;

    /**
     * Structural validator hook: throws sim::FatalError when the
     * (already variant-adjusted) configuration cannot be built for
     * this architecture. The default checks the shared NodeConfig
     * invariants; models with extra structural constraints override
     * this to add their own checks.
     */
    virtual void validateNode(const dadiannao::NodeConfig &cfg) const;

    /**
     * Memory-hierarchy geometry for `--mem banked` runs on this
     * architecture, derived from the (already variant-adjusted)
     * node configuration. The default maps NodeConfig fields
     * directly and fetches through a single unit-wide pointer;
     * variants with per-lane slice pointers (the CNV family)
     * override the sliced-fetch flag via their timing selection.
     */
    virtual mem::Geometry
    memGeometry(const dadiannao::NodeConfig &cfg) const;

    /**
     * Timing entry point: run one image trace through the network on
     * this architecture. Applies nodeConfig()/validateNode() to
     * `base` first; the result's architecture field carries id().
     */
    virtual dadiannao::NetworkResult
    simulateNetwork(const dadiannao::NodeConfig &base,
                    const nn::Network &net,
                    const timing::RunOptions &opts) const = 0;

    /**
     * Conv-layer timing entry point wrapping the closed-form
     * convBaseline/convCnv models (per-layer mode selection
     * included). `cfg` must already be variant-adjusted.
     */
    virtual dadiannao::LayerResult
    convTiming(const dadiannao::NodeConfig &cfg, const nn::Node &node,
               const timing::CountMap &counts) const = 0;

    /**
     * Fully-connected-layer timing entry point (the shared
     * throughput model, or CNV FC zero skipping when enabled).
     */
    virtual dadiannao::LayerResult
    fcTiming(const dadiannao::NodeConfig &cfg, const nn::Network &net,
             int nodeId, dadiannao::OverlapTracker &overlap) const = 0;

    /**
     * Non-conv, non-FC layer timing entry point (pooling, LRN,
     * concat, softmax — identical across the built-in variants).
     */
    virtual dadiannao::LayerResult
    otherTiming(const dadiannao::NodeConfig &cfg, const nn::Node &node,
                dadiannao::OverlapTracker &overlap) const;

    /** Component area breakdown for this architecture (Figure 11). */
    virtual power::AreaBreakdown
    area(const power::PowerParams &p = {}) const = 0;

    /** Average power over a run (Figure 12). */
    virtual power::PowerBreakdown
    power(const dadiannao::EnergyCounters &counters, std::uint64_t cycles,
          const power::PowerParams &p = {}) const = 0;

    /** Delay, energy, EDP, ED^2P for a run (Figure 13). */
    virtual power::RunMetrics
    metrics(const dadiannao::EnergyCounters &counters, std::uint64_t cycles,
            const power::PowerParams &p = {}) const = 0;
};

} // namespace cnv::arch

#endif // CNV_ARCH_ARCH_MODEL_H
