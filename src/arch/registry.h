/**
 * @file
 * ArchRegistry: the name -> ArchModel table behind `cnvsim archs`,
 * `cnvsim run --arch a,b,...` and the N-way driver loops. The
 * built-in registry carries the paper's comparison set — dadiannao,
 * cnv, cnv-pruned — plus parameterized CNV geometry variants
 * (brick size / lane count, the knobs the ablation benches sweep).
 * Registration order is stable and is the iteration order
 * everywhere (tables, reports, `cnvsim archs`).
 */

#ifndef CNV_ARCH_REGISTRY_H
#define CNV_ARCH_REGISTRY_H

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "arch/arch_model.h"

namespace cnv::arch {

/**
 * An ordered, name-keyed collection of architecture models. Lookups
 * are by stable id; unknown ids are fatal with the known set in the
 * message so CLI users see their options.
 */
class ArchRegistry
{
  public:
    /** Register a model; fatal on a duplicate or empty id. */
    void add(std::shared_ptr<const ArchModel> model);

    /** The model with this id, or nullptr when unknown. */
    const ArchModel *find(std::string_view id) const;

    /** The model with this id; fatal (listing known ids) if absent. */
    const ArchModel &get(std::string_view id) const;

    /** All models in registration order. */
    const std::vector<std::shared_ptr<const ArchModel>> &models() const
    {
        return models_;
    }

    /** Registered ids, in registration order. */
    std::vector<std::string> ids() const;

    /** Comma-separated id list for diagnostics and usage text. */
    std::string describeIds() const;

    /**
     * Resolve a comma-separated id list ("dadiannao,cnv,...") into
     * models, preserving the selection order. Fatal on an unknown
     * or duplicate selection, or an empty list.
     */
    std::vector<const ArchModel *> select(std::string_view csv) const;

  private:
    std::vector<std::shared_ptr<const ArchModel>> models_;
};

/**
 * The built-in registry: dadiannao, cnv, cnv2 (Cnvlutin2:
 * ineffectual-weight skipping + offset-only ZFNAf), cnv-pruned, and
 * the cnv-b4/cnv-b8/cnv-b32 brick-size variants (lane count and NM
 * banking scale with the brick, as in bench_abl_brick_size). Every
 * id here has a reference section in docs/architectures.md
 * (enforced by the arch_docs_coverage CTest).
 */
const ArchRegistry &builtin();

/**
 * The canonical dadiannao + cnv pair every two-architecture report
 * and legacy entry point compares (in that order).
 */
std::vector<const ArchModel *> canonicalPair();

/**
 * Factory for a parameterized CNV geometry variant. Brick size sets
 * the skip granularity; lanes is the neuron-lane count per unit
 * (one lane drains one brick slot, so it must equal brickSize); NM
 * banking follows the lane count. Registered ids use the form
 * "cnv-b<brick>".
 */
std::shared_ptr<const ArchModel> makeCnvVariant(std::string id,
                                                std::string displayName,
                                                int brickSize);

} // namespace cnv::arch

#endif // CNV_ARCH_REGISTRY_H
