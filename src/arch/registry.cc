#include "arch/registry.h"

#include <utility>

#include "sim/logging.h"

namespace cnv::arch {

void
ArchRegistry::add(std::shared_ptr<const ArchModel> model)
{
    CNV_ASSERT(model != nullptr, "cannot register a null ArchModel");
    CNV_ASSERT(!model->id().empty(), "ArchModel id must be non-empty");
    if (find(model->id()) != nullptr)
        CNV_FATAL("architecture '{}' is already registered", model->id());
    models_.push_back(std::move(model));
}

const ArchModel *
ArchRegistry::find(std::string_view id) const
{
    for (const auto &model : models_)
        if (model->id() == id)
            return model.get();
    return nullptr;
}

const ArchModel &
ArchRegistry::get(std::string_view id) const
{
    const ArchModel *model = find(id);
    if (model == nullptr)
        CNV_FATAL("unknown architecture '{}' (known: {})",
                  std::string(id), describeIds());
    return *model;
}

std::vector<std::string>
ArchRegistry::ids() const
{
    std::vector<std::string> out;
    out.reserve(models_.size());
    for (const auto &model : models_)
        out.push_back(model->id());
    return out;
}

std::string
ArchRegistry::describeIds() const
{
    std::string out;
    for (const auto &model : models_) {
        if (!out.empty())
            out += ", ";
        out += model->id();
    }
    return out;
}

std::vector<const ArchModel *>
ArchRegistry::select(std::string_view csv) const
{
    std::vector<const ArchModel *> out;
    std::size_t start = 0;
    while (start <= csv.size()) {
        std::size_t end = csv.find(',', start);
        if (end == std::string_view::npos)
            end = csv.size();
        std::string_view token = csv.substr(start, end - start);
        while (!token.empty() && token.front() == ' ')
            token.remove_prefix(1);
        while (!token.empty() && token.back() == ' ')
            token.remove_suffix(1);
        if (token.empty())
            CNV_FATAL("empty architecture name in selection '{}' "
                      "(known: {})",
                      std::string(csv), describeIds());
        const ArchModel &model = get(token);
        for (const ArchModel *seen : out)
            if (seen == &model)
                CNV_FATAL("architecture '{}' selected twice in '{}'",
                          model.id(), std::string(csv));
        out.push_back(&model);
        start = end + 1;
        if (end == csv.size())
            break;
    }
    CNV_ASSERT(!out.empty(), "empty architecture selection");
    return out;
}

} // namespace cnv::arch
