#include "arch/arch_model.h"

#include <memory>
#include <utility>

#include "arch/registry.h"
#include "sim/logging.h"

namespace cnv::arch {

dadiannao::NodeConfig
ArchModel::nodeConfig(const dadiannao::NodeConfig &base) const
{
    return base;
}

void
ArchModel::validateNode(const dadiannao::NodeConfig &cfg) const
{
    cfg.validate();
}

dadiannao::LayerResult
ArchModel::otherTiming(const dadiannao::NodeConfig &cfg,
                       const nn::Node &node,
                       dadiannao::OverlapTracker &overlap) const
{
    return dadiannao::otherLayerTiming(cfg, node, overlap);
}

mem::Geometry
ArchModel::memGeometry(const dadiannao::NodeConfig &cfg) const
{
    mem::Geometry geo;
    geo.banks = cfg.nmBanks;
    geo.slicedFetch = false;
    geo.nmBytes = cfg.nmBytes;
    geo.dramBytesPerCycle = cfg.offchipBytesPerCycle;
    return geo;
}

namespace {

/**
 * Nominal uniform pruning threshold for cnv-pruned runs without an
 * explicit PruneConfig: 16 raw Q7.8 units (0.0625), standing in for
 * the per-network lossless search (`cnvsim prune` finds the real
 * thresholds; pass a PruneConfig through RunOptions to use them).
 */
constexpr std::int32_t kDefaultPruneThreshold = 16;

/**
 * The built-in variants share one implementation: a timing/power
 * enum pair plus optional geometry overrides and the cnv-pruned
 * default-threshold behaviour.
 */
class BuiltinModel : public ArchModel
{
  public:
    BuiltinModel(std::string id, std::string displayName,
                 timing::Arch timingArch, power::Arch powerArch,
                 int brickSize = 0, bool defaultPrune = false)
        : id_(std::move(id)), displayName_(std::move(displayName)),
          timing_(timingArch), power_(powerArch), brickSize_(brickSize),
          defaultPrune_(defaultPrune)
    {
    }

    const std::string &
    id() const override
    {
        return id_;
    }

    const std::string &
    displayName() const override
    {
        return displayName_;
    }

    dadiannao::NodeConfig
    nodeConfig(const dadiannao::NodeConfig &base) const override
    {
        dadiannao::NodeConfig cfg = base;
        if (brickSize_ > 0) {
            // One lane drains one brick slot, and NM banking follows
            // the lane count (bench_abl_brick_size's sweep geometry).
            cfg.brickSize = brickSize_;
            cfg.lanes = brickSize_;
            cfg.nmBanks = brickSize_;
        }
        return cfg;
    }

    mem::Geometry
    memGeometry(const dadiannao::NodeConfig &cfg) const override
    {
        mem::Geometry geo = ArchModel::memGeometry(cfg);
        // Every CNV-family variant fetches through 16 independent
        // per-slice pointers; only the baseline keeps DaDianNao's
        // single unit-wide pointer (Section IV-B2).
        geo.slicedFetch = timing_ != timing::Arch::Baseline;
        return geo;
    }

    dadiannao::NetworkResult
    simulateNetwork(const dadiannao::NodeConfig &base,
                    const nn::Network &net,
                    const timing::RunOptions &opts) const override
    {
        const dadiannao::NodeConfig cfg = nodeConfig(base);
        validateNode(cfg);
        timing::RunOptions run = opts;
        if (run.memKind != mem::Kind::Ideal && run.memGeometry.banks == 0)
            run.memGeometry = memGeometry(cfg);
        nn::PruneConfig defaults;
        if (defaultPrune_ && run.prune == nullptr) {
            defaults.thresholds.assign(
                static_cast<std::size_t>(net.convLayerCount()),
                kDefaultPruneThreshold);
            run.prune = &defaults;
        }
        dadiannao::NetworkResult result =
            timing::simulateNetwork(cfg, net, timing_, run);
        result.architecture = id_;
        return result;
    }

    dadiannao::LayerResult
    convTiming(const dadiannao::NodeConfig &cfg, const nn::Node &node,
               const timing::CountMap &counts) const override
    {
        return timing::convLayerTiming(cfg, timing_, node, counts);
    }

    dadiannao::LayerResult
    fcTiming(const dadiannao::NodeConfig &cfg, const nn::Network &net,
             int nodeId, dadiannao::OverlapTracker &overlap) const override
    {
        return timing::fcLayerTiming(cfg, timing_, net, nodeId, overlap);
    }

    power::AreaBreakdown
    area(const power::PowerParams &p) const override
    {
        return power::areaOf(power_, p);
    }

    power::PowerBreakdown
    power(const dadiannao::EnergyCounters &counters, std::uint64_t cycles,
          const power::PowerParams &p) const override
    {
        return power::powerOf(power_, counters, cycles, p);
    }

    power::RunMetrics
    metrics(const dadiannao::EnergyCounters &counters, std::uint64_t cycles,
            const power::PowerParams &p) const override
    {
        return power::metricsOf(power_, counters, cycles, p);
    }

  private:
    std::string id_;
    std::string displayName_;
    timing::Arch timing_;
    power::Arch power_;
    /** Geometry override: brick = lanes = NM banks; 0 = inherit. */
    int brickSize_;
    /** cnv-pruned: synthesize default thresholds when none given. */
    bool defaultPrune_;
};

} // namespace

std::shared_ptr<const ArchModel>
makeCnvVariant(std::string id, std::string displayName, int brickSize)
{
    CNV_ASSERT(brickSize > 0, "CNV variant needs a positive brick size");
    return std::make_shared<BuiltinModel>(
        std::move(id), std::move(displayName), timing::Arch::Cnv,
        power::Arch::Cnv, brickSize);
}

const ArchRegistry &
builtin()
{
    static const ArchRegistry registry = [] {
        ArchRegistry r;
        r.add(std::make_shared<BuiltinModel>(
            "dadiannao", "DaDianNao baseline", timing::Arch::Baseline,
            power::Arch::Baseline));
        r.add(std::make_shared<BuiltinModel>(
            "cnv", "Cnvlutin", timing::Arch::Cnv, power::Arch::Cnv));
        r.add(std::make_shared<BuiltinModel>(
            "cnv2", "Cnvlutin2 (weight skipping, offset-only ZFNAf)",
            timing::Arch::Cnv2, power::Arch::Cnv2));
        r.add(std::make_shared<BuiltinModel>(
            "cnv-pruned", "Cnvlutin + dynamic pruning",
            timing::Arch::Cnv, power::Arch::Cnv, /*brickSize=*/0,
            /*defaultPrune=*/true));
        for (int brick : {4, 8, 32})
            r.add(makeCnvVariant(sim::strfmt("cnv-b{}", brick),
                                 sim::strfmt("Cnvlutin ({}-neuron bricks)",
                                             brick),
                                 brick));
        return r;
    }();
    return registry;
}

std::vector<const ArchModel *>
canonicalPair()
{
    const ArchRegistry &r = builtin();
    return {&r.get("dadiannao"), &r.get("cnv")};
}

} // namespace cnv::arch
