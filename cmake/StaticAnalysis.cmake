# clang-tidy integration. Two entry points share the project
# .clang-tidy config:
#
#   * CNV_CLANG_TIDY=ON runs clang-tidy inline with every compile
#     (CMAKE_CXX_CLANG_TIDY) — slow but incremental.
#   * tools/run_clang_tidy.py (registered as the `clang_tidy` CTest)
#     batch-checks the whole codebase from compile_commands.json.
#
# Both degrade gracefully when clang-tidy is not installed: the
# option becomes a no-op with a warning, and the CTest reports
# SKIPPED. See docs/development.md.

option(CNV_CLANG_TIDY "Run clang-tidy alongside compilation" OFF)

find_program(CNV_CLANG_TIDY_EXE
    NAMES clang-tidy
          clang-tidy-19 clang-tidy-18 clang-tidy-17 clang-tidy-16
          clang-tidy-15 clang-tidy-14
    DOC "clang-tidy executable for CNV_CLANG_TIDY and the clang_tidy CTest")

if(CNV_CLANG_TIDY)
    if(CNV_CLANG_TIDY_EXE)
        set(CMAKE_CXX_CLANG_TIDY "${CNV_CLANG_TIDY_EXE}")
        message(STATUS "clang-tidy enabled: ${CNV_CLANG_TIDY_EXE}")
    else()
        message(WARNING "CNV_CLANG_TIDY=ON but clang-tidy was not found; "
                        "continuing without it")
    endif()
endif()

# The batch wrappers read the compilation database.
set(CMAKE_EXPORT_COMPILE_COMMANDS ON)
