# Sanitizer wiring: set CNV_SANITIZE to a comma-separated -fsanitize=
# list ("address,undefined" or "thread") and link cnv_sanitizers into
# every target (done centrally via cnv_warnings, which every library,
# test, bench and example already links).
#
# Used by the CMakePresets.json `asan-ubsan` and `tsan` presets; see
# docs/development.md for the workflow.

set(CNV_SANITIZE "" CACHE STRING
    "Comma-separated sanitizer list (address,undefined | thread); empty disables")
set_property(CACHE CNV_SANITIZE PROPERTY STRINGS
    "" "address,undefined" "address" "undefined" "thread")

add_library(cnv_sanitizers INTERFACE)

if(CNV_SANITIZE)
    string(REPLACE "," ";" _cnv_san_list "${CNV_SANITIZE}")
    set(_cnv_san_known address undefined leak thread)
    foreach(_san IN LISTS _cnv_san_list)
        if(NOT _san IN_LIST _cnv_san_known)
            message(FATAL_ERROR
                "CNV_SANITIZE: unknown sanitizer '${_san}' "
                "(known: ${_cnv_san_known})")
        endif()
    endforeach()
    if("thread" IN_LIST _cnv_san_list AND
       ("address" IN_LIST _cnv_san_list OR "leak" IN_LIST _cnv_san_list))
        message(FATAL_ERROR
            "CNV_SANITIZE: 'thread' cannot be combined with "
            "'address'/'leak' (incompatible runtimes)")
    endif()

    # -fno-sanitize-recover turns every UBSan diagnostic into a hard
    # failure so "ctest passes" really means "zero reports".
    target_compile_options(cnv_sanitizers INTERFACE
        -fsanitize=${CNV_SANITIZE}
        -fno-sanitize-recover=all
        -fno-omit-frame-pointer
        -g)
    target_link_options(cnv_sanitizers INTERFACE
        -fsanitize=${CNV_SANITIZE})
    message(STATUS "Sanitizers enabled: ${CNV_SANITIZE}")
endif()
