# Empty dependencies file for cnv_dadiannao.
# This may be replaced when dependencies are built.
