file(REMOVE_RECURSE
  "libcnv_dadiannao.a"
)
