file(REMOVE_RECURSE
  "CMakeFiles/cnv_dadiannao.dir/config.cc.o"
  "CMakeFiles/cnv_dadiannao.dir/config.cc.o.d"
  "CMakeFiles/cnv_dadiannao.dir/nfu.cc.o"
  "CMakeFiles/cnv_dadiannao.dir/nfu.cc.o.d"
  "CMakeFiles/cnv_dadiannao.dir/node.cc.o"
  "CMakeFiles/cnv_dadiannao.dir/node.cc.o.d"
  "CMakeFiles/cnv_dadiannao.dir/other_layers.cc.o"
  "CMakeFiles/cnv_dadiannao.dir/other_layers.cc.o.d"
  "CMakeFiles/cnv_dadiannao.dir/pipeline.cc.o"
  "CMakeFiles/cnv_dadiannao.dir/pipeline.cc.o.d"
  "libcnv_dadiannao.a"
  "libcnv_dadiannao.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnv_dadiannao.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
