
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dadiannao/config.cc" "src/dadiannao/CMakeFiles/cnv_dadiannao.dir/config.cc.o" "gcc" "src/dadiannao/CMakeFiles/cnv_dadiannao.dir/config.cc.o.d"
  "/root/repo/src/dadiannao/nfu.cc" "src/dadiannao/CMakeFiles/cnv_dadiannao.dir/nfu.cc.o" "gcc" "src/dadiannao/CMakeFiles/cnv_dadiannao.dir/nfu.cc.o.d"
  "/root/repo/src/dadiannao/node.cc" "src/dadiannao/CMakeFiles/cnv_dadiannao.dir/node.cc.o" "gcc" "src/dadiannao/CMakeFiles/cnv_dadiannao.dir/node.cc.o.d"
  "/root/repo/src/dadiannao/other_layers.cc" "src/dadiannao/CMakeFiles/cnv_dadiannao.dir/other_layers.cc.o" "gcc" "src/dadiannao/CMakeFiles/cnv_dadiannao.dir/other_layers.cc.o.d"
  "/root/repo/src/dadiannao/pipeline.cc" "src/dadiannao/CMakeFiles/cnv_dadiannao.dir/pipeline.cc.o" "gcc" "src/dadiannao/CMakeFiles/cnv_dadiannao.dir/pipeline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/cnv_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/cnv_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cnv_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
