# CMake generated Testfile for 
# Source directory: /root/repo/src/dadiannao
# Build directory: /root/repo/build/src/dadiannao
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
