# Empty dependencies file for cnv_timing.
# This may be replaced when dependencies are built.
