file(REMOVE_RECURSE
  "CMakeFiles/cnv_timing.dir/conv_model.cc.o"
  "CMakeFiles/cnv_timing.dir/conv_model.cc.o.d"
  "CMakeFiles/cnv_timing.dir/multinode.cc.o"
  "CMakeFiles/cnv_timing.dir/multinode.cc.o.d"
  "CMakeFiles/cnv_timing.dir/network_model.cc.o"
  "CMakeFiles/cnv_timing.dir/network_model.cc.o.d"
  "libcnv_timing.a"
  "libcnv_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnv_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
