file(REMOVE_RECURSE
  "libcnv_timing.a"
)
