
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/timing/conv_model.cc" "src/timing/CMakeFiles/cnv_timing.dir/conv_model.cc.o" "gcc" "src/timing/CMakeFiles/cnv_timing.dir/conv_model.cc.o.d"
  "/root/repo/src/timing/multinode.cc" "src/timing/CMakeFiles/cnv_timing.dir/multinode.cc.o" "gcc" "src/timing/CMakeFiles/cnv_timing.dir/multinode.cc.o.d"
  "/root/repo/src/timing/network_model.cc" "src/timing/CMakeFiles/cnv_timing.dir/network_model.cc.o" "gcc" "src/timing/CMakeFiles/cnv_timing.dir/network_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cnv_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dadiannao/CMakeFiles/cnv_dadiannao.dir/DependInfo.cmake"
  "/root/repo/build/src/zfnaf/CMakeFiles/cnv_zfnaf.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/cnv_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cnv_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/cnv_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
