file(REMOVE_RECURSE
  "CMakeFiles/cnvsim.dir/cnvsim_main.cc.o"
  "CMakeFiles/cnvsim.dir/cnvsim_main.cc.o.d"
  "cnvsim"
  "cnvsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnvsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
