# Empty dependencies file for cnvsim.
# This may be replaced when dependencies are built.
