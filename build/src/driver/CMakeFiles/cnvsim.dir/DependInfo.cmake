
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/driver/cnvsim_main.cc" "src/driver/CMakeFiles/cnvsim.dir/cnvsim_main.cc.o" "gcc" "src/driver/CMakeFiles/cnvsim.dir/cnvsim_main.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/driver/CMakeFiles/cnv_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/pruning/CMakeFiles/cnv_pruning.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cnv_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dadiannao/CMakeFiles/cnv_dadiannao.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/cnv_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/zfnaf/CMakeFiles/cnv_zfnaf.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/cnv_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cnv_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/cnv_power.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/cnv_timing.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
