file(REMOVE_RECURSE
  "libcnv_driver.a"
)
