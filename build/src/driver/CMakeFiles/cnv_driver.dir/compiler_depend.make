# Empty compiler generated dependencies file for cnv_driver.
# This may be replaced when dependencies are built.
