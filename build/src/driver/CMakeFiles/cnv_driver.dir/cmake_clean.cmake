file(REMOVE_RECURSE
  "CMakeFiles/cnv_driver.dir/driver.cc.o"
  "CMakeFiles/cnv_driver.dir/driver.cc.o.d"
  "CMakeFiles/cnv_driver.dir/stats_report.cc.o"
  "CMakeFiles/cnv_driver.dir/stats_report.cc.o.d"
  "libcnv_driver.a"
  "libcnv_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnv_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
