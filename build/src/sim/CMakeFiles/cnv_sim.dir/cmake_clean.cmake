file(REMOVE_RECURSE
  "CMakeFiles/cnv_sim.dir/engine.cc.o"
  "CMakeFiles/cnv_sim.dir/engine.cc.o.d"
  "CMakeFiles/cnv_sim.dir/logging.cc.o"
  "CMakeFiles/cnv_sim.dir/logging.cc.o.d"
  "CMakeFiles/cnv_sim.dir/rng.cc.o"
  "CMakeFiles/cnv_sim.dir/rng.cc.o.d"
  "CMakeFiles/cnv_sim.dir/stats.cc.o"
  "CMakeFiles/cnv_sim.dir/stats.cc.o.d"
  "CMakeFiles/cnv_sim.dir/table.cc.o"
  "CMakeFiles/cnv_sim.dir/table.cc.o.d"
  "libcnv_sim.a"
  "libcnv_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnv_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
