file(REMOVE_RECURSE
  "libcnv_core.a"
)
