file(REMOVE_RECURSE
  "CMakeFiles/cnv_core.dir/dispatcher.cc.o"
  "CMakeFiles/cnv_core.dir/dispatcher.cc.o.d"
  "CMakeFiles/cnv_core.dir/encoder.cc.o"
  "CMakeFiles/cnv_core.dir/encoder.cc.o.d"
  "CMakeFiles/cnv_core.dir/node.cc.o"
  "CMakeFiles/cnv_core.dir/node.cc.o.d"
  "CMakeFiles/cnv_core.dir/pipeline.cc.o"
  "CMakeFiles/cnv_core.dir/pipeline.cc.o.d"
  "CMakeFiles/cnv_core.dir/unit.cc.o"
  "CMakeFiles/cnv_core.dir/unit.cc.o.d"
  "libcnv_core.a"
  "libcnv_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnv_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
