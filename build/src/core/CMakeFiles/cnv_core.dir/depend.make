# Empty dependencies file for cnv_core.
# This may be replaced when dependencies are built.
