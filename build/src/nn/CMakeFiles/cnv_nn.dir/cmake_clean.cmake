file(REMOVE_RECURSE
  "CMakeFiles/cnv_nn.dir/layer.cc.o"
  "CMakeFiles/cnv_nn.dir/layer.cc.o.d"
  "CMakeFiles/cnv_nn.dir/network.cc.o"
  "CMakeFiles/cnv_nn.dir/network.cc.o.d"
  "CMakeFiles/cnv_nn.dir/ops.cc.o"
  "CMakeFiles/cnv_nn.dir/ops.cc.o.d"
  "CMakeFiles/cnv_nn.dir/trace.cc.o"
  "CMakeFiles/cnv_nn.dir/trace.cc.o.d"
  "CMakeFiles/cnv_nn.dir/zoo/alexnet.cc.o"
  "CMakeFiles/cnv_nn.dir/zoo/alexnet.cc.o.d"
  "CMakeFiles/cnv_nn.dir/zoo/googlenet.cc.o"
  "CMakeFiles/cnv_nn.dir/zoo/googlenet.cc.o.d"
  "CMakeFiles/cnv_nn.dir/zoo/nin.cc.o"
  "CMakeFiles/cnv_nn.dir/zoo/nin.cc.o.d"
  "CMakeFiles/cnv_nn.dir/zoo/vgg.cc.o"
  "CMakeFiles/cnv_nn.dir/zoo/vgg.cc.o.d"
  "CMakeFiles/cnv_nn.dir/zoo/zoo.cc.o"
  "CMakeFiles/cnv_nn.dir/zoo/zoo.cc.o.d"
  "libcnv_nn.a"
  "libcnv_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnv_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
