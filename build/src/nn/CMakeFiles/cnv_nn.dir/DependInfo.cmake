
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/layer.cc" "src/nn/CMakeFiles/cnv_nn.dir/layer.cc.o" "gcc" "src/nn/CMakeFiles/cnv_nn.dir/layer.cc.o.d"
  "/root/repo/src/nn/network.cc" "src/nn/CMakeFiles/cnv_nn.dir/network.cc.o" "gcc" "src/nn/CMakeFiles/cnv_nn.dir/network.cc.o.d"
  "/root/repo/src/nn/ops.cc" "src/nn/CMakeFiles/cnv_nn.dir/ops.cc.o" "gcc" "src/nn/CMakeFiles/cnv_nn.dir/ops.cc.o.d"
  "/root/repo/src/nn/trace.cc" "src/nn/CMakeFiles/cnv_nn.dir/trace.cc.o" "gcc" "src/nn/CMakeFiles/cnv_nn.dir/trace.cc.o.d"
  "/root/repo/src/nn/zoo/alexnet.cc" "src/nn/CMakeFiles/cnv_nn.dir/zoo/alexnet.cc.o" "gcc" "src/nn/CMakeFiles/cnv_nn.dir/zoo/alexnet.cc.o.d"
  "/root/repo/src/nn/zoo/googlenet.cc" "src/nn/CMakeFiles/cnv_nn.dir/zoo/googlenet.cc.o" "gcc" "src/nn/CMakeFiles/cnv_nn.dir/zoo/googlenet.cc.o.d"
  "/root/repo/src/nn/zoo/nin.cc" "src/nn/CMakeFiles/cnv_nn.dir/zoo/nin.cc.o" "gcc" "src/nn/CMakeFiles/cnv_nn.dir/zoo/nin.cc.o.d"
  "/root/repo/src/nn/zoo/vgg.cc" "src/nn/CMakeFiles/cnv_nn.dir/zoo/vgg.cc.o" "gcc" "src/nn/CMakeFiles/cnv_nn.dir/zoo/vgg.cc.o.d"
  "/root/repo/src/nn/zoo/zoo.cc" "src/nn/CMakeFiles/cnv_nn.dir/zoo/zoo.cc.o" "gcc" "src/nn/CMakeFiles/cnv_nn.dir/zoo/zoo.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/cnv_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cnv_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
