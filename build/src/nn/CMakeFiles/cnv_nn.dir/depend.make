# Empty dependencies file for cnv_nn.
# This may be replaced when dependencies are built.
