file(REMOVE_RECURSE
  "libcnv_nn.a"
)
