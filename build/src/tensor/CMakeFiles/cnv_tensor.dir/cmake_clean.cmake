file(REMOVE_RECURSE
  "CMakeFiles/cnv_tensor.dir/serialize.cc.o"
  "CMakeFiles/cnv_tensor.dir/serialize.cc.o.d"
  "CMakeFiles/cnv_tensor.dir/tensor.cc.o"
  "CMakeFiles/cnv_tensor.dir/tensor.cc.o.d"
  "libcnv_tensor.a"
  "libcnv_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnv_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
