# Empty dependencies file for cnv_tensor.
# This may be replaced when dependencies are built.
