file(REMOVE_RECURSE
  "libcnv_tensor.a"
)
