# Empty compiler generated dependencies file for cnv_pruning.
# This may be replaced when dependencies are built.
