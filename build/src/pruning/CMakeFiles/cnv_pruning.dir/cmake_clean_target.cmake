file(REMOVE_RECURSE
  "libcnv_pruning.a"
)
