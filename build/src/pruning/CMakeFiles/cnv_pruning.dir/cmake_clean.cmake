file(REMOVE_RECURSE
  "CMakeFiles/cnv_pruning.dir/explore.cc.o"
  "CMakeFiles/cnv_pruning.dir/explore.cc.o.d"
  "libcnv_pruning.a"
  "libcnv_pruning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnv_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
