# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("sim")
subdirs("tensor")
subdirs("zfnaf")
subdirs("nn")
subdirs("dadiannao")
subdirs("core")
subdirs("timing")
subdirs("power")
subdirs("pruning")
subdirs("driver")
