file(REMOVE_RECURSE
  "libcnv_power.a"
)
