file(REMOVE_RECURSE
  "CMakeFiles/cnv_power.dir/model.cc.o"
  "CMakeFiles/cnv_power.dir/model.cc.o.d"
  "libcnv_power.a"
  "libcnv_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnv_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
