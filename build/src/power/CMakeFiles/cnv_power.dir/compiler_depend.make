# Empty compiler generated dependencies file for cnv_power.
# This may be replaced when dependencies are built.
