file(REMOVE_RECURSE
  "CMakeFiles/cnv_zfnaf.dir/format.cc.o"
  "CMakeFiles/cnv_zfnaf.dir/format.cc.o.d"
  "libcnv_zfnaf.a"
  "libcnv_zfnaf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnv_zfnaf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
