
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/zfnaf/format.cc" "src/zfnaf/CMakeFiles/cnv_zfnaf.dir/format.cc.o" "gcc" "src/zfnaf/CMakeFiles/cnv_zfnaf.dir/format.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/cnv_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cnv_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
