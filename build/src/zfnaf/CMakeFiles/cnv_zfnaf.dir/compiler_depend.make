# Empty compiler generated dependencies file for cnv_zfnaf.
# This may be replaced when dependencies are built.
