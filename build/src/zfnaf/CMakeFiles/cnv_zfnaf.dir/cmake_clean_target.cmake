file(REMOVE_RECURSE
  "libcnv_zfnaf.a"
)
