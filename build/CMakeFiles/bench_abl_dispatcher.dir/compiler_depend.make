# Empty compiler generated dependencies file for bench_abl_dispatcher.
# This may be replaced when dependencies are built.
