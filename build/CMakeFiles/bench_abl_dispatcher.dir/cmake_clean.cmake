file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_dispatcher.dir/bench/bench_abl_dispatcher.cc.o"
  "CMakeFiles/bench_abl_dispatcher.dir/bench/bench_abl_dispatcher.cc.o.d"
  "bench/bench_abl_dispatcher"
  "bench/bench_abl_dispatcher.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_dispatcher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
