file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_brick_size.dir/bench/bench_abl_brick_size.cc.o"
  "CMakeFiles/bench_abl_brick_size.dir/bench/bench_abl_brick_size.cc.o.d"
  "bench/bench_abl_brick_size"
  "bench/bench_abl_brick_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_brick_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
