# Empty dependencies file for bench_abl_brick_size.
# This may be replaced when dependencies are built.
