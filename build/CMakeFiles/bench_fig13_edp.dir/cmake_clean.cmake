file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_edp.dir/bench/bench_fig13_edp.cc.o"
  "CMakeFiles/bench_fig13_edp.dir/bench/bench_fig13_edp.cc.o.d"
  "bench/bench_fig13_edp"
  "bench/bench_fig13_edp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_edp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
