file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_assignment.dir/bench/bench_abl_assignment.cc.o"
  "CMakeFiles/bench_abl_assignment.dir/bench/bench_abl_assignment.cc.o.d"
  "bench/bench_abl_assignment"
  "bench/bench_abl_assignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_assignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
