# Empty dependencies file for bench_abl_assignment.
# This may be replaced when dependencies are built.
