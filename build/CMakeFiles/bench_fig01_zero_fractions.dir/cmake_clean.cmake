file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_zero_fractions.dir/bench/bench_fig01_zero_fractions.cc.o"
  "CMakeFiles/bench_fig01_zero_fractions.dir/bench/bench_fig01_zero_fractions.cc.o.d"
  "bench/bench_fig01_zero_fractions"
  "bench/bench_fig01_zero_fractions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_zero_fractions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
