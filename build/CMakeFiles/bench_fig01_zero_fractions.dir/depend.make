# Empty dependencies file for bench_fig01_zero_fractions.
# This may be replaced when dependencies are built.
