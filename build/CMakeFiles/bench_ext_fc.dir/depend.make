# Empty dependencies file for bench_ext_fc.
# This may be replaced when dependencies are built.
