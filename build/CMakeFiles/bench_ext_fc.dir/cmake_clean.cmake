file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_fc.dir/bench/bench_ext_fc.cc.o"
  "CMakeFiles/bench_ext_fc.dir/bench/bench_ext_fc.cc.o.d"
  "bench/bench_ext_fc"
  "bench/bench_ext_fc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_fc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
