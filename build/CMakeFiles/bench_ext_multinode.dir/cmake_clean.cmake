file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_multinode.dir/bench/bench_ext_multinode.cc.o"
  "CMakeFiles/bench_ext_multinode.dir/bench/bench_ext_multinode.cc.o.d"
  "bench/bench_ext_multinode"
  "bench/bench_ext_multinode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_multinode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
