# Empty compiler generated dependencies file for bench_fig14_pruning_pareto.
# This may be replaced when dependencies are built.
