file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_speedup.dir/bench/bench_fig09_speedup.cc.o"
  "CMakeFiles/bench_fig09_speedup.dir/bench/bench_fig09_speedup.cc.o.d"
  "bench/bench_fig09_speedup"
  "bench/bench_fig09_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
