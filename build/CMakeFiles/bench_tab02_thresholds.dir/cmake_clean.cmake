file(REMOVE_RECURSE
  "CMakeFiles/bench_tab02_thresholds.dir/bench/bench_tab02_thresholds.cc.o"
  "CMakeFiles/bench_tab02_thresholds.dir/bench/bench_tab02_thresholds.cc.o.d"
  "bench/bench_tab02_thresholds"
  "bench/bench_tab02_thresholds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab02_thresholds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
