# Empty dependencies file for bench_fig10_activity.
# This may be replaced when dependencies are built.
