file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_sparsity.dir/bench/bench_abl_sparsity.cc.o"
  "CMakeFiles/bench_abl_sparsity.dir/bench/bench_abl_sparsity.cc.o.d"
  "bench/bench_abl_sparsity"
  "bench/bench_abl_sparsity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_sparsity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
