file(REMOVE_RECURSE
  "CMakeFiles/test_sim.dir/sim/test_engine.cc.o"
  "CMakeFiles/test_sim.dir/sim/test_engine.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/test_engine_extra.cc.o"
  "CMakeFiles/test_sim.dir/sim/test_engine_extra.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/test_logging.cc.o"
  "CMakeFiles/test_sim.dir/sim/test_logging.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/test_rng.cc.o"
  "CMakeFiles/test_sim.dir/sim/test_rng.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/test_stats.cc.o"
  "CMakeFiles/test_sim.dir/sim/test_stats.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/test_table.cc.o"
  "CMakeFiles/test_sim.dir/sim/test_table.cc.o.d"
  "test_sim"
  "test_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
