# Empty compiler generated dependencies file for test_zfnaf.
# This may be replaced when dependencies are built.
