file(REMOVE_RECURSE
  "CMakeFiles/test_zfnaf.dir/zfnaf/test_format.cc.o"
  "CMakeFiles/test_zfnaf.dir/zfnaf/test_format.cc.o.d"
  "test_zfnaf"
  "test_zfnaf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zfnaf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
