file(REMOVE_RECURSE
  "CMakeFiles/test_nn.dir/nn/test_calibration.cc.o"
  "CMakeFiles/test_nn.dir/nn/test_calibration.cc.o.d"
  "CMakeFiles/test_nn.dir/nn/test_network.cc.o"
  "CMakeFiles/test_nn.dir/nn/test_network.cc.o.d"
  "CMakeFiles/test_nn.dir/nn/test_ops.cc.o"
  "CMakeFiles/test_nn.dir/nn/test_ops.cc.o.d"
  "CMakeFiles/test_nn.dir/nn/test_ops_extra.cc.o"
  "CMakeFiles/test_nn.dir/nn/test_ops_extra.cc.o.d"
  "CMakeFiles/test_nn.dir/nn/test_trace.cc.o"
  "CMakeFiles/test_nn.dir/nn/test_trace.cc.o.d"
  "CMakeFiles/test_nn.dir/nn/test_zoo.cc.o"
  "CMakeFiles/test_nn.dir/nn/test_zoo.cc.o.d"
  "CMakeFiles/test_nn.dir/nn/test_zoo_extra.cc.o"
  "CMakeFiles/test_nn.dir/nn/test_zoo_extra.cc.o.d"
  "test_nn"
  "test_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
