file(REMOVE_RECURSE
  "CMakeFiles/test_arch.dir/arch/test_baseline.cc.o"
  "CMakeFiles/test_arch.dir/arch/test_baseline.cc.o.d"
  "CMakeFiles/test_arch.dir/arch/test_baseline_extra.cc.o"
  "CMakeFiles/test_arch.dir/arch/test_baseline_extra.cc.o.d"
  "CMakeFiles/test_arch.dir/arch/test_baseline_pipeline.cc.o"
  "CMakeFiles/test_arch.dir/arch/test_baseline_pipeline.cc.o.d"
  "CMakeFiles/test_arch.dir/arch/test_cnv.cc.o"
  "CMakeFiles/test_arch.dir/arch/test_cnv.cc.o.d"
  "CMakeFiles/test_arch.dir/arch/test_config.cc.o"
  "CMakeFiles/test_arch.dir/arch/test_config.cc.o.d"
  "CMakeFiles/test_arch.dir/arch/test_cross_validation.cc.o"
  "CMakeFiles/test_arch.dir/arch/test_cross_validation.cc.o.d"
  "CMakeFiles/test_arch.dir/arch/test_lane_widths.cc.o"
  "CMakeFiles/test_arch.dir/arch/test_lane_widths.cc.o.d"
  "CMakeFiles/test_arch.dir/arch/test_microarch.cc.o"
  "CMakeFiles/test_arch.dir/arch/test_microarch.cc.o.d"
  "CMakeFiles/test_arch.dir/arch/test_node_property.cc.o"
  "CMakeFiles/test_arch.dir/arch/test_node_property.cc.o.d"
  "CMakeFiles/test_arch.dir/arch/test_other_layers.cc.o"
  "CMakeFiles/test_arch.dir/arch/test_other_layers.cc.o.d"
  "CMakeFiles/test_arch.dir/arch/test_pipeline.cc.o"
  "CMakeFiles/test_arch.dir/arch/test_pipeline.cc.o.d"
  "CMakeFiles/test_arch.dir/arch/test_property_sweep.cc.o"
  "CMakeFiles/test_arch.dir/arch/test_property_sweep.cc.o.d"
  "test_arch"
  "test_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
