
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/arch/test_baseline.cc" "tests/CMakeFiles/test_arch.dir/arch/test_baseline.cc.o" "gcc" "tests/CMakeFiles/test_arch.dir/arch/test_baseline.cc.o.d"
  "/root/repo/tests/arch/test_baseline_extra.cc" "tests/CMakeFiles/test_arch.dir/arch/test_baseline_extra.cc.o" "gcc" "tests/CMakeFiles/test_arch.dir/arch/test_baseline_extra.cc.o.d"
  "/root/repo/tests/arch/test_baseline_pipeline.cc" "tests/CMakeFiles/test_arch.dir/arch/test_baseline_pipeline.cc.o" "gcc" "tests/CMakeFiles/test_arch.dir/arch/test_baseline_pipeline.cc.o.d"
  "/root/repo/tests/arch/test_cnv.cc" "tests/CMakeFiles/test_arch.dir/arch/test_cnv.cc.o" "gcc" "tests/CMakeFiles/test_arch.dir/arch/test_cnv.cc.o.d"
  "/root/repo/tests/arch/test_config.cc" "tests/CMakeFiles/test_arch.dir/arch/test_config.cc.o" "gcc" "tests/CMakeFiles/test_arch.dir/arch/test_config.cc.o.d"
  "/root/repo/tests/arch/test_cross_validation.cc" "tests/CMakeFiles/test_arch.dir/arch/test_cross_validation.cc.o" "gcc" "tests/CMakeFiles/test_arch.dir/arch/test_cross_validation.cc.o.d"
  "/root/repo/tests/arch/test_lane_widths.cc" "tests/CMakeFiles/test_arch.dir/arch/test_lane_widths.cc.o" "gcc" "tests/CMakeFiles/test_arch.dir/arch/test_lane_widths.cc.o.d"
  "/root/repo/tests/arch/test_microarch.cc" "tests/CMakeFiles/test_arch.dir/arch/test_microarch.cc.o" "gcc" "tests/CMakeFiles/test_arch.dir/arch/test_microarch.cc.o.d"
  "/root/repo/tests/arch/test_node_property.cc" "tests/CMakeFiles/test_arch.dir/arch/test_node_property.cc.o" "gcc" "tests/CMakeFiles/test_arch.dir/arch/test_node_property.cc.o.d"
  "/root/repo/tests/arch/test_other_layers.cc" "tests/CMakeFiles/test_arch.dir/arch/test_other_layers.cc.o" "gcc" "tests/CMakeFiles/test_arch.dir/arch/test_other_layers.cc.o.d"
  "/root/repo/tests/arch/test_pipeline.cc" "tests/CMakeFiles/test_arch.dir/arch/test_pipeline.cc.o" "gcc" "tests/CMakeFiles/test_arch.dir/arch/test_pipeline.cc.o.d"
  "/root/repo/tests/arch/test_property_sweep.cc" "tests/CMakeFiles/test_arch.dir/arch/test_property_sweep.cc.o" "gcc" "tests/CMakeFiles/test_arch.dir/arch/test_property_sweep.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/driver/CMakeFiles/cnv_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/pruning/CMakeFiles/cnv_pruning.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/cnv_power.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/cnv_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cnv_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dadiannao/CMakeFiles/cnv_dadiannao.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/cnv_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/zfnaf/CMakeFiles/cnv_zfnaf.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/cnv_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cnv_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
