file(REMOVE_RECURSE
  "CMakeFiles/test_analysis.dir/analysis/test_driver.cc.o"
  "CMakeFiles/test_analysis.dir/analysis/test_driver.cc.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_multinode.cc.o"
  "CMakeFiles/test_analysis.dir/analysis/test_multinode.cc.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_power.cc.o"
  "CMakeFiles/test_analysis.dir/analysis/test_power.cc.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_power_params.cc.o"
  "CMakeFiles/test_analysis.dir/analysis/test_power_params.cc.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_pruning.cc.o"
  "CMakeFiles/test_analysis.dir/analysis/test_pruning.cc.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_stats_report.cc.o"
  "CMakeFiles/test_analysis.dir/analysis/test_stats_report.cc.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_timing.cc.o"
  "CMakeFiles/test_analysis.dir/analysis/test_timing.cc.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_trace_provider.cc.o"
  "CMakeFiles/test_analysis.dir/analysis/test_trace_provider.cc.o.d"
  "test_analysis"
  "test_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
