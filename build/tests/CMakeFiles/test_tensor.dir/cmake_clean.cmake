file(REMOVE_RECURSE
  "CMakeFiles/test_tensor.dir/tensor/test_fixed16.cc.o"
  "CMakeFiles/test_tensor.dir/tensor/test_fixed16.cc.o.d"
  "CMakeFiles/test_tensor.dir/tensor/test_serialize.cc.o"
  "CMakeFiles/test_tensor.dir/tensor/test_serialize.cc.o.d"
  "CMakeFiles/test_tensor.dir/tensor/test_tensor.cc.o"
  "CMakeFiles/test_tensor.dir/tensor/test_tensor.cc.o.d"
  "test_tensor"
  "test_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
