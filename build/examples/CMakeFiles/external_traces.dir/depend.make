# Empty dependencies file for external_traces.
# This may be replaced when dependencies are built.
