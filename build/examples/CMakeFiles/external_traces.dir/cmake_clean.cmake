file(REMOVE_RECURSE
  "CMakeFiles/external_traces.dir/external_traces.cpp.o"
  "CMakeFiles/external_traces.dir/external_traces.cpp.o.d"
  "external_traces"
  "external_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/external_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
