# Empty compiler generated dependencies file for pruning_explorer.
# This may be replaced when dependencies are built.
