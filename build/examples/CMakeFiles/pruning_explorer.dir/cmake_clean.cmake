file(REMOVE_RECURSE
  "CMakeFiles/pruning_explorer.dir/pruning_explorer.cpp.o"
  "CMakeFiles/pruning_explorer.dir/pruning_explorer.cpp.o.d"
  "pruning_explorer"
  "pruning_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pruning_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
