/** @file Tests for PowerParams customization and provenance. */

#include <gtest/gtest.h>

#include "power/model.h"
#include "sim/error.h"
#include "sim/logging.h"

namespace {

using namespace cnv;
using power::Arch;
using power::PowerParams;

TEST(PowerParams, AreaScaleFactorsAreTheKnobs)
{
    PowerParams p;
    p.nmAreaScaleCnv = 2.0;
    const auto base = power::areaOf(Arch::Baseline, p);
    const auto cnvA = power::areaOf(Arch::Cnv, p);
    EXPECT_DOUBLE_EQ(cnvA.nm, base.nm * 2.0);
}

TEST(PowerParams, EventEnergiesScaleDynamicPowerLinearly)
{
    dadiannao::EnergyCounters c;
    c.sbReads = 1'000'000;
    PowerParams p1, p2;
    p2.sbReadPj = p1.sbReadPj * 3.0;
    const auto a = power::powerOf(Arch::Baseline, c, 1000, p1);
    const auto b = power::powerOf(Arch::Baseline, c, 1000, p2);
    EXPECT_NEAR(b.sbDynamic, a.sbDynamic * 3.0, 1e-12);
}

TEST(PowerParams, ClockScalesTimeAndPower)
{
    dadiannao::EnergyCounters c;
    c.multOps = 1'000'000;
    PowerParams slow, fast;
    fast.clockGhz = 2.0;
    const auto ms = power::metricsOf(Arch::Baseline, c, 1'000'000, slow);
    const auto mf = power::metricsOf(Arch::Baseline, c, 1'000'000, fast);
    EXPECT_NEAR(mf.seconds, ms.seconds / 2.0, 1e-15);
    // Same dynamic energy in half the time: higher dynamic power.
    const auto ps = power::powerOf(Arch::Baseline, c, 1'000'000, slow);
    const auto pf = power::powerOf(Arch::Baseline, c, 1'000'000, fast);
    EXPECT_NEAR(pf.logicDynamic, ps.logicDynamic * 2.0, 1e-12);
}

TEST(PowerParams, OffchipBytesExcludedFromChipPower)
{
    dadiannao::EnergyCounters quiet, noisy;
    noisy.offchipBytes = 1u << 30;
    const auto a = power::powerOf(Arch::Cnv, quiet, 1000);
    const auto b = power::powerOf(Arch::Cnv, noisy, 1000);
    EXPECT_DOUBLE_EQ(a.total(), b.total());
}

TEST(PowerParams, ZeroCyclesIsFatal)
{
    sim::setVerbosity(sim::Verbosity::Silent);
    dadiannao::EnergyCounters c;
    EXPECT_THROW(power::powerOf(Arch::Cnv, c, 0), sim::PanicError);
    sim::setVerbosity(sim::Verbosity::Info);
}

} // namespace
