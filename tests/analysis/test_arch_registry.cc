/**
 * @file
 * Tests for the architecture registry: lookup semantics, stable
 * iteration order, selection parsing, and the golden guarantee that
 * the built-in dadiannao/cnv models reproduce the direct timing and
 * power entry points bit for bit.
 */

#include <gtest/gtest.h>

#include "arch/registry.h"
#include "nn/zoo/zoo.h"
#include "sim/error.h"
#include "timing/network_model.h"

namespace {

using namespace cnv;

TEST(ArchRegistry, BuiltinLookup)
{
    const arch::ArchRegistry &reg = arch::builtin();
    const arch::ArchModel *base = reg.find("dadiannao");
    ASSERT_NE(base, nullptr);
    EXPECT_EQ(base->id(), "dadiannao");
    EXPECT_EQ(base->displayName(), "DaDianNao baseline");
    EXPECT_EQ(reg.find("not-an-arch"), nullptr);
    EXPECT_EQ(&reg.get("cnv"), reg.find("cnv"));
}

TEST(ArchRegistry, UnknownArchIsFatalAndListsKnownIds)
{
    try {
        arch::builtin().get("tpu");
        FAIL() << "expected FatalError";
    } catch (const sim::FatalError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("tpu"), std::string::npos);
        EXPECT_NE(msg.find("dadiannao"), std::string::npos);
        EXPECT_NE(msg.find("cnv"), std::string::npos);
    }
}

TEST(ArchRegistry, StableIterationOrder)
{
    const std::vector<std::string> expected{
        "dadiannao", "cnv",    "cnv2",    "cnv-pruned",
        "cnv-b4",    "cnv-b8", "cnv-b32"};
    EXPECT_EQ(arch::builtin().ids(), expected);
}

TEST(ArchRegistry, SelectParsesCsvInOrder)
{
    const auto sel = arch::builtin().select("cnv, dadiannao");
    ASSERT_EQ(sel.size(), 2u);
    EXPECT_EQ(sel[0]->id(), "cnv");
    EXPECT_EQ(sel[1]->id(), "dadiannao");
    EXPECT_THROW(arch::builtin().select("cnv,cnv"), sim::FatalError);
    EXPECT_THROW(arch::builtin().select("cnv,,dadiannao"),
                 sim::FatalError);
    EXPECT_THROW(arch::builtin().select("eyeriss"), sim::FatalError);
}

TEST(ArchRegistry, DuplicateAddIsFatal)
{
    arch::ArchRegistry reg;
    reg.add(arch::makeCnvVariant("cnv-b2", "two-neuron bricks", 2));
    EXPECT_THROW(
        reg.add(arch::makeCnvVariant("cnv-b2", "again", 2)),
        sim::FatalError);
}

TEST(ArchRegistry, CanonicalPairIsDadiannaoThenCnv)
{
    const auto pair = arch::canonicalPair();
    ASSERT_EQ(pair.size(), 2u);
    EXPECT_EQ(pair[0]->id(), "dadiannao");
    EXPECT_EQ(pair[1]->id(), "cnv");
}

/** The registry models must reproduce the direct timing entry point
 *  bit for bit — cycles, activity, energy, and per-layer timeline. */
TEST(ArchRegistry, GoldenBitIdenticalToDirectTiming)
{
    const auto net = nn::zoo::build(nn::zoo::NetId::Nin, 2016);
    const dadiannao::NodeConfig cfg;
    timing::RunOptions opts;
    opts.imageSeed = 2016;

    const struct
    {
        const char *id;
        timing::Arch arch;
    } cases[] = {{"dadiannao", timing::Arch::Baseline},
                 {"cnv", timing::Arch::Cnv},
                 {"cnv2", timing::Arch::Cnv2}};
    for (const auto &c : cases) {
        const auto direct =
            timing::simulateNetwork(cfg, *net, c.arch, opts);
        const auto viaModel =
            arch::builtin().get(c.id).simulateNetwork(cfg, *net, opts);

        EXPECT_EQ(viaModel.architecture, c.id);
        EXPECT_EQ(viaModel.totalCycles(), direct.totalCycles()) << c.id;

        const auto da = direct.totalActivity();
        const auto ma = viaModel.totalActivity();
        EXPECT_EQ(ma.other, da.other) << c.id;
        EXPECT_EQ(ma.conv1, da.conv1) << c.id;
        EXPECT_EQ(ma.zero, da.zero) << c.id;
        EXPECT_EQ(ma.nonZero, da.nonZero) << c.id;
        EXPECT_EQ(ma.stall, da.stall) << c.id;

        const auto de = direct.totalEnergy();
        const auto me = viaModel.totalEnergy();
        EXPECT_EQ(me.sbReads, de.sbReads) << c.id;
        EXPECT_EQ(me.nmReads, de.nmReads) << c.id;
        EXPECT_EQ(me.nmWrites, de.nmWrites) << c.id;
        EXPECT_EQ(me.multOps, de.multOps) << c.id;
        EXPECT_EQ(me.encoderOps, de.encoderOps) << c.id;

        ASSERT_EQ(viaModel.layers.size(), direct.layers.size());
        for (std::size_t i = 0; i < direct.layers.size(); ++i)
            EXPECT_EQ(viaModel.layers[i].cycles, direct.layers[i].cycles)
                << c.id << " layer " << i;
    }
}

/** Power, metrics and area through the model match the direct
 *  power-model entry points for the canonical pair. */
TEST(ArchRegistry, PowerParityWithDirectModel)
{
    const auto net = nn::zoo::build(nn::zoo::NetId::Nin, 2016);
    const dadiannao::NodeConfig cfg;
    timing::RunOptions opts;
    opts.imageSeed = 2016;

    const struct
    {
        const char *id;
        power::Arch arch;
    } cases[] = {{"dadiannao", power::Arch::Baseline},
                 {"cnv", power::Arch::Cnv},
                 {"cnv2", power::Arch::Cnv2}};
    for (const auto &c : cases) {
        const arch::ArchModel &model = arch::builtin().get(c.id);
        const auto run = model.simulateNetwork(cfg, *net, opts);
        const auto e = run.totalEnergy();
        const auto cycles = run.totalCycles();
        EXPECT_DOUBLE_EQ(model.power(e, cycles).total(),
                         power::powerOf(c.arch, e, cycles).total());
        EXPECT_DOUBLE_EQ(model.metrics(e, cycles).edp,
                         power::metricsOf(c.arch, e, cycles).edp);
        EXPECT_DOUBLE_EQ(model.area().total(),
                         power::areaOf(c.arch).total());
    }
}

TEST(ArchRegistry, BrickVariantChangesGeometryAndTiming)
{
    const arch::ArchModel &b8 = arch::builtin().get("cnv-b8");
    const dadiannao::NodeConfig cfg = b8.nodeConfig({});
    EXPECT_EQ(cfg.brickSize, 8);
    EXPECT_EQ(cfg.lanes, 8);
    EXPECT_EQ(cfg.nmBanks, 8);

    const auto net = nn::zoo::build(nn::zoo::NetId::Nin, 2016);
    timing::RunOptions opts;
    opts.imageSeed = 2016;
    const auto cnvRun =
        arch::builtin().get("cnv").simulateNetwork({}, *net, opts);
    const auto b8Run = b8.simulateNetwork({}, *net, opts);
    EXPECT_NE(b8Run.totalCycles(), cnvRun.totalCycles());
}

TEST(ArchRegistry, ValidateNodeEnforcesSharedInvariants)
{
    dadiannao::NodeConfig cfg;
    cfg.lanes = cfg.brickSize * 2;
    // One neuron lane drains one brick slot on every variant.
    EXPECT_THROW(arch::builtin().get("cnv").validateNode(cfg),
                 sim::FatalError);
    EXPECT_THROW(arch::builtin().get("dadiannao").validateNode(cfg),
                 sim::FatalError);
    // A brick variant's own geometry is self-consistent, so the
    // validator accepts what nodeConfig() produced.
    const arch::ArchModel &b8 = arch::builtin().get("cnv-b8");
    EXPECT_NO_THROW(b8.validateNode(b8.nodeConfig({})));
}

/** Weight skipping can only remove work on top of CNV's activation
 *  skipping, so cnv2 is at least as fast on every network at the
 *  default weight sparsity. */
TEST(ArchRegistry, Cnv2AtLeastAsFastAsCnv)
{
    timing::RunOptions opts;
    opts.imageSeed = 2016;
    const arch::ArchModel &cnv = arch::builtin().get("cnv");
    const arch::ArchModel &cnv2 = arch::builtin().get("cnv2");
    for (auto id : nn::zoo::allNetworks()) {
        const auto net = nn::zoo::build(id, 2016);
        const auto cnvRun = cnv.simulateNetwork({}, *net, opts);
        const auto cnv2Run = cnv2.simulateNetwork({}, *net, opts);
        EXPECT_LE(cnv2Run.totalCycles(), cnvRun.totalCycles())
            << nn::zoo::netName(id);
    }
    // On the synthesized (weight-sparse) nets the skipping must
    // actually bite somewhere, not just tie.
    const auto net = nn::zoo::build(nn::zoo::NetId::Nin, 2016);
    EXPECT_LT(cnv2.simulateNetwork({}, *net, opts).totalCycles(),
              cnv.simulateNetwork({}, *net, opts).totalCycles());
}

/** With the weight-sparsity knob at zero no weight brick is ever
 *  ineffectual, and the cnv2 schedule degenerates to cnv's exactly
 *  — cycles, activity, energy, and stall attribution. */
TEST(ArchRegistry, Cnv2AtZeroWeightSparsityMatchesCnv)
{
    const auto net = nn::zoo::build(nn::zoo::NetId::Nin, 2016);
    timing::RunOptions opts;
    opts.imageSeed = 2016;
    opts.weightSparsity = 0.0;
    const auto cnvRun =
        arch::builtin().get("cnv").simulateNetwork({}, *net, opts);
    const auto cnv2Run =
        arch::builtin().get("cnv2").simulateNetwork({}, *net, opts);
    EXPECT_EQ(cnv2Run.totalCycles(), cnvRun.totalCycles());
    const auto a = cnvRun.totalActivity();
    const auto a2 = cnv2Run.totalActivity();
    EXPECT_EQ(a2.zero, a.zero);
    EXPECT_EQ(a2.nonZero, a.nonZero);
    EXPECT_EQ(a2.stall, a.stall);
    const auto e = cnvRun.totalEnergy();
    const auto e2 = cnv2Run.totalEnergy();
    EXPECT_EQ(e2.sbReads, e.sbReads);
    EXPECT_EQ(e2.nmReads, e.nmReads);
    EXPECT_EQ(e2.multOps, e.multOps);
    const auto m = cnvRun.totalMicro();
    const auto m2 = cnv2Run.totalMicro();
    EXPECT_EQ(m2.laneBusyCycles, m.laneBusyCycles);
    EXPECT_EQ(m2.laneIdleCycles, m.laneIdleCycles);
}

/** Every idle lane-cycle the cnv2 model reports carries a stall
 *  reason (the invariant the trace pipeline asserts), and repeated
 *  runs are deterministic. */
TEST(ArchRegistry, Cnv2StallAttributionCoversIdleCycles)
{
    const auto net = nn::zoo::build(nn::zoo::NetId::Nin, 2016);
    timing::RunOptions opts;
    opts.imageSeed = 2016;
    const arch::ArchModel &cnv2 = arch::builtin().get("cnv2");
    const auto run = cnv2.simulateNetwork({}, *net, opts);
    const auto micro = run.totalMicro();
    EXPECT_EQ(micro.stalls.total(), micro.laneIdleCycles);
    const auto again = cnv2.simulateNetwork({}, *net, opts);
    EXPECT_EQ(again.totalCycles(), run.totalCycles());
}

TEST(ArchRegistry, CnvPrunedDefaultsToUniformThresholds)
{
    const auto net = nn::zoo::build(nn::zoo::NetId::Nin, 2016);
    timing::RunOptions opts;
    opts.imageSeed = 2016;
    const arch::ArchModel &cnv = arch::builtin().get("cnv");
    const arch::ArchModel &pruned = arch::builtin().get("cnv-pruned");

    // Without an explicit config, cnv-pruned applies its default
    // uniform thresholds and skips more than plain cnv.
    const auto plain = cnv.simulateNetwork({}, *net, opts);
    const auto defaulted = pruned.simulateNetwork({}, *net, opts);
    EXPECT_LT(defaulted.totalCycles(), plain.totalCycles());

    // With an explicit config, both models honour it identically.
    nn::PruneConfig explicitCfg;
    explicitCfg.thresholds.assign(net->convLayerCount(), 32);
    opts.prune = &explicitCfg;
    EXPECT_EQ(pruned.simulateNetwork({}, *net, opts).totalCycles(),
              cnv.simulateNetwork({}, *net, opts).totalCycles());
}

} // namespace
