/**
 * @file
 * Direct tests of the timing module: network-level composition,
 * monotonicity properties, the packed-row shallow-input schedule,
 * window batching arithmetic, and the FC zero-skipping extension.
 */

#include <gtest/gtest.h>

#include "nn/trace.h"
#include "nn/zoo/zoo.h"
#include "sim/rng.h"
#include "timing/conv_model.h"
#include "timing/network_model.h"
#include "zfnaf/format.h"

namespace {

using namespace cnv;
using dadiannao::NodeConfig;
using tensor::Fixed16;
using tensor::NeuronTensor;

NeuronTensor
tensorWithSparsity(int x, int y, int z, double zf, std::uint64_t seed)
{
    NeuronTensor t(x, y, z);
    sim::Rng rng(seed);
    for (Fixed16 &v : t)
        v = rng.bernoulli(zf) ? Fixed16{} : Fixed16::fromRaw(7);
    return t;
}

TEST(TimingProperties, CnvCyclesDecreaseWithSparsity)
{
    nn::ConvParams p;
    p.filters = 32;
    p.fx = p.fy = 3;
    p.stride = 1;
    p.pad = 1;
    const NodeConfig cfg;

    std::uint64_t prev = ~0ull;
    for (double zf : {0.0, 0.25, 0.5, 0.75, 0.95}) {
        const auto in = tensorWithSparsity(12, 12, 128, zf, 42);
        const auto counts = zfnaf::nonZeroCountMap(in, cfg.brickSize);
        const auto r = timing::convCnv(cfg, p, in.shape(), counts);
        EXPECT_LT(r.cycles, prev) << zf;
        prev = r.cycles;
    }
}

TEST(TimingProperties, BaselineCyclesIgnoreSparsity)
{
    nn::ConvParams p;
    p.filters = 32;
    p.fx = p.fy = 3;
    p.stride = 1;
    p.pad = 1;
    const NodeConfig cfg;

    std::uint64_t first = 0;
    for (double zf : {0.0, 0.5, 0.95}) {
        const auto in = tensorWithSparsity(12, 12, 128, zf, 43);
        const auto counts = zfnaf::nonZeroCountMap(in, cfg.brickSize);
        const auto r =
            timing::convBaseline(cfg, p, in.shape(), counts, false);
        if (!first)
            first = r.cycles;
        EXPECT_EQ(r.cycles, first);
    }
}

TEST(TimingProperties, CnvSpeedupBoundedByNonZeroShare)
{
    // For an aligned, deep, unpadded layer, CNV cannot beat the
    // reciprocal of the (non-zero share + per-brick floor).
    nn::ConvParams p;
    p.filters = 16;
    p.fx = p.fy = 3;
    p.stride = 1;
    p.pad = 0;
    const NodeConfig cfg;

    const double zf = 0.6;
    const auto in = tensorWithSparsity(14, 14, 256, zf, 44);
    const auto counts = zfnaf::nonZeroCountMap(in, cfg.brickSize);
    const auto base = timing::convBaseline(cfg, p, in.shape(), counts,
                                           false);
    const auto cnvRes = timing::convCnv(cfg, p, in.shape(), counts);
    const double speedup = static_cast<double>(base.cycles) /
                           static_cast<double>(cnvRes.cycles);
    EXPECT_LT(speedup, 1.0 / (1.0 - zf) * 1.05);
    EXPECT_GT(speedup, 1.0);
}

TEST(TimingProperties, PackedRowsAccelerateShallowInputs)
{
    // An 11x11 stride-4 filter over a 3-deep image (alex conv1):
    // packed rows need ceil-ish (11*3)/16 blocks per row instead of
    // 11 one-per-cell blocks.
    nn::ConvParams p;
    p.filters = 96;
    p.fx = p.fy = 11;
    p.stride = 4;
    p.pad = 0;
    const NodeConfig cfg;

    const auto in = tensorWithSparsity(227, 227, 3, 0.0, 45);
    const auto counts = zfnaf::nonZeroCountMap(in, cfg.brickSize);
    const auto r = timing::convBaseline(cfg, p, in.shape(), counts, true);

    // 55x55 windows, 11 valid rows each, 3 blocks per row
    // (33 contiguous values spanning at most 3 aligned blocks, and
    // at least 3 for most alignments).
    EXPECT_LE(r.cycles, 55ull * 55 * 11 * 4);
    EXPECT_GE(r.cycles, 55ull * 55 * 11 * 3);
    // Far better than one cell per cycle (121 per window).
    EXPECT_LT(r.cycles, 55ull * 55 * 121);
}

TEST(TimingProperties, WindowBatchingNeverSlowsCnv)
{
    sim::Rng rng(46);
    nn::ConvParams p;
    p.filters = 16;
    p.fx = p.fy = 1;
    p.stride = 1;
    p.pad = 0;

    const auto in = tensorWithSparsity(10, 10, 96, 0.5, 47);
    std::uint64_t prev = ~0ull;
    for (int nbout : {16, 32, 64, 128}) {
        NodeConfig cfg;
        cfg.nboutEntries = nbout;
        const auto counts = zfnaf::nonZeroCountMap(in, cfg.brickSize);
        const auto r = timing::convCnv(cfg, p, in.shape(), counts);
        EXPECT_LE(r.cycles, prev) << nbout;
        prev = r.cycles;
    }
}

TEST(TimingNetwork, LayerSequenceCoversAllNodes)
{
    const auto net = nn::zoo::build(nn::zoo::NetId::Google, 3);
    dadiannao::NodeConfig cfg;
    timing::RunOptions opts;
    const auto r =
        timing::simulateNetwork(cfg, *net, timing::Arch::Cnv, opts);
    // Every conv node appears by name.
    for (int id : net->convNodeIds()) {
        const std::string &name = net->node(id).name;
        const bool found = std::any_of(
            r.layers.begin(), r.layers.end(),
            [&](const auto &l) { return l.name == name; });
        EXPECT_TRUE(found) << name;
    }
}

TEST(TimingNetwork, PruneOnlyAffectsCnv)
{
    const auto net = nn::zoo::build(nn::zoo::NetId::CnnS, 3);
    dadiannao::NodeConfig cfg;
    nn::PruneConfig prune;
    prune.thresholds.assign(net->convLayerCount(), 64);

    timing::RunOptions plain, pruned;
    pruned.prune = &prune;
    EXPECT_EQ(timing::simulateNetwork(cfg, *net, timing::Arch::Baseline,
                                      plain)
                  .totalCycles(),
              timing::simulateNetwork(cfg, *net, timing::Arch::Baseline,
                                      pruned)
                  .totalCycles());
    EXPECT_GT(timing::simulateNetwork(cfg, *net, timing::Arch::Cnv, plain)
                  .totalCycles(),
              timing::simulateNetwork(cfg, *net, timing::Arch::Cnv,
                                      pruned)
                  .totalCycles());
}

TEST(TimingNetwork, FcSkippingExtensionHelpsFcHeavyNetworks)
{
    const auto net = nn::zoo::build(nn::zoo::NetId::Alex, 3);
    dadiannao::NodeConfig off, on;
    on.cnvSkipsFcLayers = true;
    const double plain = timing::speedup(off, *net, 1, 3);
    const double ext = timing::speedup(on, *net, 1, 3);
    EXPECT_GT(ext, plain);
}

TEST(TimingNetwork, FcSkippingDoesNotChangeBaseline)
{
    const auto net = nn::zoo::build(nn::zoo::NetId::Alex, 3);
    dadiannao::NodeConfig off, on;
    on.cnvSkipsFcLayers = true;
    timing::RunOptions opts;
    EXPECT_EQ(
        timing::simulateNetwork(off, *net, timing::Arch::Baseline, opts)
            .totalCycles(),
        timing::simulateNetwork(on, *net, timing::Arch::Baseline, opts)
            .totalCycles());
}

TEST(TimingNetwork, GoogleFirstLayerShareIsModest)
{
    // After the packed-row fix, conv1's share of baseline cycles
    // sits near the paper's reported average (~21%), not the 45%+ a
    // depth-only fetch block would give.
    const auto net = nn::zoo::build(nn::zoo::NetId::Google, 3);
    dadiannao::NodeConfig cfg;
    timing::RunOptions opts;
    const auto r = timing::simulateNetwork(cfg, *net,
                                           timing::Arch::Baseline, opts);
    const double conv1 =
        static_cast<double>(r.totalActivity().conv1) /
        static_cast<double>(r.totalActivity().total());
    EXPECT_GT(conv1, 0.10);
    EXPECT_LT(conv1, 0.35);
}

TEST(TimingNetwork, ProfitablePolicyNeverLosesToPaperDefault)
{
    dadiannao::NodeConfig byDefault, profitable;
    profitable.layerModePolicy = dadiannao::LayerModePolicy::Profitable;
    for (auto id : {nn::zoo::NetId::Alex, nn::zoo::NetId::Google}) {
        const auto net = nn::zoo::build(id, 3);
        timing::RunOptions opts;
        EXPECT_LE(timing::simulateNetwork(profitable, *net,
                                          timing::Arch::Cnv, opts)
                      .totalCycles(),
                  timing::simulateNetwork(byDefault, *net,
                                          timing::Arch::Cnv, opts)
                      .totalCycles())
            << nn::zoo::netName(id);
    }
}

TEST(TimingNetwork, ProfitablePolicyRescuesDenseLayers)
{
    // A network whose second conv sees a fully dense, shallow input:
    // encoded mode serialises bricks through single lanes and loses;
    // the profitable flag falls back to conventional.
    nn::Network net("dense", 5);
    int x = net.addInput({12, 12, 16});
    nn::ConvParams c;
    c.filters = 16;
    c.fx = c.fy = 1;
    c.stride = 1;
    c.inputZeroFraction = 0.0;
    x = net.addConv("c1", x, c);
    net.addConv("c2", x, c);
    net.deriveOutputTargets();

    dadiannao::NodeConfig byDefault, profitable;
    profitable.layerModePolicy = dadiannao::LayerModePolicy::Profitable;
    timing::RunOptions opts;
    const auto slow = timing::simulateNetwork(byDefault, net,
                                              timing::Arch::Cnv, opts);
    const auto fast = timing::simulateNetwork(profitable, net,
                                              timing::Arch::Cnv, opts);
    EXPECT_LT(fast.totalCycles(), slow.totalCycles());
    // Conventional fallback equals the baseline on that layer.
    const auto base = timing::simulateNetwork(
        byDefault, net, timing::Arch::Baseline, opts);
    EXPECT_LE(fast.totalCycles(), base.totalCycles());
}

} // namespace
