/**
 * @file
 * Network-level trace/stall pipeline: buildStallProfile's totals
 * must equal the run's idle lane-cycles on both architectures (the
 * attribution invariant the whole stalls feature rests on), the
 * appendNetworkTrace events must fold back to the same numbers, and
 * the stall breakdown must surface in the cnv-report-v1 document.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "driver/stats_report.h"
#include "driver/trace_pipeline.h"
#include "nn/network.h"
#include "sim/stall_profile.h"
#include "support/json_parser.h"
#include "timing/network_model.h"

namespace {

using namespace cnv;
using testsupport::Json;
using testsupport::Parser;

/** The report test's two-conv-layer network, small enough to run. */
nn::Network
makeNetwork()
{
    nn::Network net("tiny2", 11);
    int x = net.addInput({8, 8, 16});
    nn::ConvParams c;
    c.filters = 16;
    c.fx = c.fy = 3;
    c.stride = 1;
    c.pad = 1;
    c.inputZeroFraction = 0.5;
    x = net.addConv("c1", x, c);
    net.addConv("c2", x, c);
    net.deriveOutputTargets();
    return net;
}

dadiannao::NetworkResult
runArch(timing::Arch arch)
{
    const nn::Network net = makeNetwork();
    const dadiannao::NodeConfig cfg;
    timing::RunOptions opts;
    opts.imageSeed = 3;
    return timing::simulateNetwork(cfg, net, arch, opts);
}

TEST(TracePipeline, LayerStatKeysAreStableAndPathSafe)
{
    EXPECT_EQ(driver::layerStatKey(0, "c1"), "L0_c1");
    EXPECT_EQ(driver::layerStatKey(3, "inception.3a"), "L3_inception_3a");
}

TEST(TracePipeline, StallProfileTotalsMatchIdleCyclesOnBothArchs)
{
    for (timing::Arch arch : {timing::Arch::Cnv, timing::Arch::Baseline}) {
        const auto result = runArch(arch);
        const sim::StallProfile profile = driver::buildStallProfile(result);
        EXPECT_EQ(profile.totalIdle(),
                  result.totalMicro().laneIdleCycles)
            << timing::archName(arch);

        // The invariant holds layer by layer, not just in aggregate.
        int index = 0;
        for (const auto &layer : result.layers) {
            EXPECT_EQ(layer.micro.stalls.total(),
                      layer.micro.laneIdleCycles)
                << timing::archName(arch) << " "
                << driver::layerStatKey(index, layer.name);
            ++index;
        }
    }
}

TEST(TracePipeline, NetworkTraceFoldsBackToTheProfile)
{
    const auto cnv = runArch(timing::Arch::Cnv);
    const auto base = runArch(timing::Arch::Baseline);

    sim::TraceSink sink;
    driver::appendNetworkTrace(sink, cnv, 1, "cnv (tiny2)");
    driver::appendNetworkTrace(sink, base, 2, "dadiannao (tiny2)");
    EXPECT_EQ(sink.droppedEvents(), 0u);

    sim::StallProfile cnvFold, baseFold;
    EXPECT_EQ(cnvFold.addFromTrace(sink, 1), 0u);
    EXPECT_EQ(baseFold.addFromTrace(sink, 2), 0u);
    EXPECT_EQ(cnvFold.totalIdle(), cnv.totalMicro().laneIdleCycles);
    EXPECT_EQ(baseFold.totalIdle(), base.totalMicro().laneIdleCycles);

    // A CNV run on a half-zero input must actually report stalls
    // (the invariant would also hold trivially at zero).
    EXPECT_GT(cnvFold.totalIdle(), 0u);

    // The document is valid trace JSON with one process per arch,
    // layer spans on tid 0 and stall spans keyed by layer.
    std::ostringstream os;
    sink.writeJson(os);
    Json doc = Parser(os.str()).parse();
    bool sawLayerSpan = false, sawKeyedStall = false;
    for (const Json &e : doc.at("traceEvents").array) {
        if (e.at("ph").text != "X")
            continue;
        if (e.at("cat").text == "layer" && e.at("tid").number == 0.0)
            sawLayerSpan = true;
        if (e.at("cat").text == "stall")
            sawKeyedStall |=
                e.at("args").at("layer").text.rfind("L", 0) == 0;
    }
    EXPECT_TRUE(sawLayerSpan);
    EXPECT_TRUE(sawKeyedStall);
}

TEST(TracePipeline, ReportJsonCarriesPerLayerStallBreakdown)
{
    driver::ExperimentConfig cfg;
    cfg.images = 1;
    cfg.seed = 7;
    const nn::Network net = makeNetwork();
    const driver::RunReport report = driver::buildRunReport(cfg, net);

    std::ostringstream os;
    driver::writeReportJson(report, os);
    Json doc = Parser(os.str()).parse();

    for (const char *arch : {"dadiannao", "cnv"}) {
        const Json &tree = doc.at("architectures").at(arch);
        const Json &layers = tree.at("groups").at("layers").at("groups");
        ASSERT_GE(layers.object.size(), 2u) << arch;
        for (const auto &[name, layer] : layers.object) {
            const Json &micro = layer.at("groups").at("micro");
            const Json &stalls =
                micro.at("groups").at("stalls").at("stats");
            double total = 0.0;
            for (const char *reason :
                 {"brick_buffer_empty", "window_barrier", "synapse_wait",
                  "slice_drained"})
                total += stalls.at(reason).at("value").number;
            EXPECT_EQ(total,
                      micro.at("stats").at("laneIdleCycles").at("value")
                          .number)
                << arch << "." << name;
        }
    }
}

} // namespace
