/** @file Tests for the area/energy model. */

#include <gtest/gtest.h>

#include "power/model.h"

namespace {

using namespace cnv;
using dadiannao::EnergyCounters;
using power::Arch;

TEST(Area, CnvOverheadNearPaperValue)
{
    const auto base = power::areaOf(Arch::Baseline);
    const auto cnvA = power::areaOf(Arch::Cnv);
    const double overhead = cnvA.total() / base.total() - 1.0;
    // Paper: 4.49% total area overhead.
    EXPECT_NEAR(overhead, 0.0449, 0.01);
    // SB dominates both layouts and is unchanged.
    EXPECT_DOUBLE_EQ(base.sb, cnvA.sb);
    EXPECT_GT(base.sb / base.total(), 0.5);
    // NM grows 34%, SRAM 15.8% (Section V-C).
    EXPECT_NEAR(cnvA.nm / base.nm, 1.34, 1e-9);
    EXPECT_NEAR(cnvA.sram / base.sram, 1.158, 1e-9);
}

EnergyCounters
syntheticRun(double scale)
{
    EnergyCounters c;
    c.sbReads = static_cast<std::uint64_t>(2.56e8 * scale);
    c.nmReads = static_cast<std::uint64_t>(1e6 * scale);
    c.nmWrites = static_cast<std::uint64_t>(2e5 * scale);
    c.nbinReads = static_cast<std::uint64_t>(2.56e8 * scale);
    c.nbinWrites = static_cast<std::uint64_t>(2.56e8 * scale);
    c.multOps = static_cast<std::uint64_t>(4.1e9 * scale);
    c.addOps = c.multOps;
    return c;
}

TEST(Power, StaticPlusDynamicComposition)
{
    const auto c = syntheticRun(1.0);
    const auto p = power::powerOf(Arch::Baseline, c, 1'000'000);
    EXPECT_GT(p.staticTotal(), 0.0);
    EXPECT_GT(p.dynamicTotal(), 0.0);
    EXPECT_DOUBLE_EQ(p.total(), p.staticTotal() + p.dynamicTotal());
}

TEST(Power, DynamicScalesWithActivity)
{
    const auto lo = power::powerOf(Arch::Baseline, syntheticRun(0.5),
                                   1'000'000);
    const auto hi = power::powerOf(Arch::Baseline, syntheticRun(1.0),
                                   1'000'000);
    EXPECT_NEAR(hi.dynamicTotal() / lo.dynamicTotal(), 2.0, 1e-9);
    EXPECT_DOUBLE_EQ(hi.staticTotal(), lo.staticTotal());
}

TEST(Power, SbDynamicDropsWhenReadsAreSkipped)
{
    // Same wall-clock, 40% fewer SB reads -> 40% less SB dynamic.
    auto base = syntheticRun(1.0);
    auto cnvRun = base;
    cnvRun.sbReads = static_cast<std::uint64_t>(base.sbReads * 0.6);
    const auto pb = power::powerOf(Arch::Baseline, base, 1'000'000);
    const auto pc = power::powerOf(Arch::Baseline, cnvRun, 1'000'000);
    EXPECT_NEAR(pc.sbDynamic / pb.sbDynamic, 0.6, 1e-9);
}

TEST(Power, CnvNmCostsMore)
{
    const auto c = syntheticRun(1.0);
    const auto pb = power::powerOf(Arch::Baseline, c, 1'000'000);
    const auto pc = power::powerOf(Arch::Cnv, c, 1'000'000);
    // Same events and time: CNV's NM is wider + banked.
    EXPECT_GT(pc.nmDynamic, pb.nmDynamic);
    EXPECT_GT(pc.nmStatic, pb.nmStatic);
    EXPECT_GT(pc.sramStatic, pb.sramStatic);
    EXPECT_DOUBLE_EQ(pc.sbStatic, pb.sbStatic);
}

TEST(Metrics, PaperEdpArithmetic)
{
    const auto c = syntheticRun(1.0);
    const auto m = power::metricsOf(Arch::Baseline, c, 1'000'000);
    EXPECT_NEAR(m.seconds, 1e-3, 1e-12);
    EXPECT_NEAR(m.edp, m.watts * m.seconds, 1e-15);
    EXPECT_NEAR(m.ed2p, m.edp * m.seconds, 1e-18);
    EXPECT_NEAR(m.joules, m.edp, 1e-15);
}

TEST(Metrics, FasterRunWinsEdpWhenEnergyComparable)
{
    const auto c = syntheticRun(1.0);
    const auto slow = power::metricsOf(Arch::Baseline, c, 2'000'000);
    const auto fast = power::metricsOf(Arch::Baseline, c, 1'000'000);
    EXPECT_LT(fast.edp, slow.edp);
    EXPECT_LT(fast.ed2p / slow.ed2p, fast.edp / slow.edp);
}

} // namespace
