/** @file Tests for the multi-node scaling model. */

#include <gtest/gtest.h>

#include "nn/zoo/zoo.h"
#include "sim/error.h"
#include "sim/logging.h"
#include "timing/multinode.h"

namespace {

using namespace cnv;

TEST(MultiNode, OneNodeIsExactlyTheSingleNodeModel)
{
    const auto net = nn::zoo::build(nn::zoo::NetId::Alex, 3);
    dadiannao::NodeConfig cfg;
    timing::RunOptions opts;
    timing::MultiNodeOptions mn;
    mn.nodes = 1;
    EXPECT_EQ(timing::simulateMultiNode(cfg, mn, *net,
                                        timing::Arch::Cnv, opts)
                  .totalCycles(),
              timing::simulateNetwork(cfg, *net, timing::Arch::Cnv, opts)
                  .totalCycles());
}

TEST(MultiNode, TwoNodesNearlyHalveConvTime)
{
    const auto net = nn::zoo::build(nn::zoo::NetId::Vgg19, 3);
    timing::MultiNodeOptions mn;
    mn.nodes = 2;
    const double s = timing::multiNodeScaling(
        dadiannao::NodeConfig{}, mn, *net, timing::Arch::Baseline, 3);
    EXPECT_GT(s, 1.7);
    EXPECT_LE(s, 2.05);
}

TEST(MultiNode, ScalingSaturatesWithSlowLinks)
{
    const auto net = nn::zoo::build(nn::zoo::NetId::Alex, 3);
    timing::MultiNodeOptions fast, slow;
    fast.nodes = slow.nodes = 8;
    fast.broadcastBlocksPerCycle = 8.0;
    slow.broadcastBlocksPerCycle = 0.05;
    const double sFast = timing::multiNodeScaling(
        dadiannao::NodeConfig{}, fast, *net, timing::Arch::Baseline, 3);
    const double sSlow = timing::multiNodeScaling(
        dadiannao::NodeConfig{}, slow, *net, timing::Arch::Baseline, 3);
    EXPECT_GT(sFast, sSlow);
}

TEST(MultiNode, ExchangeEntriesAppearInTheLayerLog)
{
    const auto net = nn::zoo::build(nn::zoo::NetId::Alex, 3);
    dadiannao::NodeConfig cfg;
    timing::RunOptions opts;
    timing::MultiNodeOptions mn;
    mn.nodes = 8;
    mn.broadcastBlocksPerCycle = 0.05; // force exposure
    const auto r = timing::simulateMultiNode(cfg, mn, *net,
                                             timing::Arch::Baseline, opts);
    const bool found = std::any_of(
        r.layers.begin(), r.layers.end(), [](const auto &l) {
            return l.name.find(":halo-exchange") != std::string::npos;
        });
    EXPECT_TRUE(found);
    EXPECT_EQ(r.architecture, "dadiannao x8");
}

TEST(MultiNode, InvalidOptionsAreFatal)
{
    sim::setVerbosity(sim::Verbosity::Silent);
    const auto net = nn::zoo::build(nn::zoo::NetId::Alex, 3, 16);
    timing::RunOptions opts;
    timing::MultiNodeOptions mn;
    mn.nodes = 0;
    EXPECT_THROW(timing::simulateMultiNode(dadiannao::NodeConfig{}, mn,
                                           *net, timing::Arch::Cnv, opts),
                 sim::FatalError);
    mn.nodes = 2;
    mn.broadcastBlocksPerCycle = 0.0;
    EXPECT_THROW(timing::simulateMultiNode(dadiannao::NodeConfig{}, mn,
                                           *net, timing::Arch::Cnv, opts),
                 sim::FatalError);
    sim::setVerbosity(sim::Verbosity::Info);
}

} // namespace
