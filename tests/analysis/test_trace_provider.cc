/**
 * @file
 * Tests for external trace injection: a DirectoryTraceProvider fed
 * with exported traces must reproduce the synthetic run exactly,
 * honour pruning thresholds, fall back gracefully on missing files,
 * and reject shape mismatches.
 */

#include <gtest/gtest.h>

#include <filesystem>

#include "nn/trace.h"
#include "nn/zoo/zoo.h"
#include "sim/error.h"
#include "sim/logging.h"
#include "tensor/serialize.h"
#include "timing/network_model.h"

namespace {

using namespace cnv;

class TraceProviderTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = ::testing::TempDir() + "cnv_traces";
        std::filesystem::create_directories(dir_);
        net_ = nn::zoo::build(nn::zoo::NetId::Alex, 77);
    }

    void
    TearDown() override
    {
        std::filesystem::remove_all(dir_);
    }

    void
    exportAll(std::uint64_t seed)
    {
        const timing::DirectoryTraceProvider provider(dir_);
        for (int nodeId : net_->convNodeIds()) {
            tensor::saveTensorFile(
                provider.pathFor(*net_, nodeId, seed),
                nn::synthesizeConvInput(*net_, nodeId, seed));
        }
    }

    std::string dir_;
    std::unique_ptr<nn::Network> net_;
};

TEST_F(TraceProviderTest, ExportedTracesReproduceSyntheticRunExactly)
{
    exportAll(5);
    const timing::DirectoryTraceProvider provider(dir_);
    const dadiannao::NodeConfig cfg;

    timing::RunOptions synthetic, external;
    synthetic.imageSeed = 5;
    external.imageSeed = 5;
    external.traces = &provider;

    for (auto arch : {timing::Arch::Baseline, timing::Arch::Cnv}) {
        const auto a = timing::simulateNetwork(cfg, *net_, arch,
                                               synthetic);
        const auto b = timing::simulateNetwork(cfg, *net_, arch,
                                               external);
        EXPECT_EQ(a.totalCycles(), b.totalCycles());
        EXPECT_EQ(a.totalActivity().zero, b.totalActivity().zero);
        EXPECT_EQ(a.totalActivity().nonZero, b.totalActivity().nonZero);
    }
}

TEST_F(TraceProviderTest, PruningAppliesToExternalTraces)
{
    exportAll(6);
    const timing::DirectoryTraceProvider provider(dir_);
    const dadiannao::NodeConfig cfg;

    nn::PruneConfig prune;
    prune.thresholds.assign(net_->convLayerCount(), 48);

    timing::RunOptions plain, pruned;
    plain.imageSeed = pruned.imageSeed = 6;
    plain.traces = pruned.traces = &provider;
    pruned.prune = &prune;

    const auto a =
        timing::simulateNetwork(cfg, *net_, timing::Arch::Cnv, plain);
    const auto b =
        timing::simulateNetwork(cfg, *net_, timing::Arch::Cnv, pruned);
    EXPECT_LT(b.totalCycles(), a.totalCycles());

    // The pruned external run matches the pruned synthetic run: the
    // same thresholds were applied to the same values.
    timing::RunOptions syntheticPruned;
    syntheticPruned.imageSeed = 6;
    syntheticPruned.prune = &prune;
    const auto c = timing::simulateNetwork(cfg, *net_, timing::Arch::Cnv,
                                           syntheticPruned);
    EXPECT_EQ(b.totalCycles(), c.totalCycles());
}

TEST_F(TraceProviderTest, MissingFilesFallBackToSynthesis)
{
    // Export only the second conv layer's trace; everything still
    // runs and matches the synthetic totals (the exported trace is
    // the synthetic one).
    const timing::DirectoryTraceProvider provider(dir_);
    const int node1 = net_->convNodeIds()[1];
    tensor::saveTensorFile(provider.pathFor(*net_, node1, 7),
                           nn::synthesizeConvInput(*net_, node1, 7));

    const dadiannao::NodeConfig cfg;
    timing::RunOptions synthetic, partial;
    synthetic.imageSeed = partial.imageSeed = 7;
    partial.traces = &provider;
    EXPECT_EQ(timing::simulateNetwork(cfg, *net_, timing::Arch::Cnv,
                                      synthetic)
                  .totalCycles(),
              timing::simulateNetwork(cfg, *net_, timing::Arch::Cnv,
                                      partial)
                  .totalCycles());
}

TEST_F(TraceProviderTest, ShapeMismatchIsFatal)
{
    sim::setVerbosity(sim::Verbosity::Silent);
    const timing::DirectoryTraceProvider provider(dir_);
    const int node1 = net_->convNodeIds()[1];
    tensor::saveTensorFile(provider.pathFor(*net_, node1, 8),
                           tensor::NeuronTensor(2, 2, 2));

    const dadiannao::NodeConfig cfg;
    timing::RunOptions opts;
    opts.imageSeed = 8;
    opts.traces = &provider;
    EXPECT_THROW(timing::simulateNetwork(cfg, *net_, timing::Arch::Cnv,
                                         opts),
                 sim::FatalError);
    sim::setVerbosity(sim::Verbosity::Info);
}

TEST(ApplyPrune, SegmentsUseProducerThresholds)
{
    // In a concat-fed layer, each depth segment is pruned with the
    // threshold of the conv that produced it.
    const auto net = nn::zoo::build(nn::zoo::NetId::Google, 3, 8);
    // Find a conv fed by a 4-way concat.
    int target = -1;
    for (int id : net->convNodeIds()) {
        if (nn::inputSegments(*net, id).size() == 4) {
            target = id;
            break;
        }
    }
    ASSERT_GE(target, 0);

    const auto segments = nn::inputSegments(*net, target);
    nn::PruneConfig prune;
    prune.thresholds.assign(net->convLayerCount(), 0);
    // Prune only the first segment's producer, aggressively.
    prune.thresholds[segments[0].producerConvIndex] = 30000;

    auto input = nn::synthesizeConvInput(*net, target, 9);
    const auto before = input;
    nn::applyPruneToConvInput(*net, target, input, prune);

    // First segment largely zeroed; later segments untouched.
    int z0 = segments[0].depth;
    std::size_t changed = 0;
    for (int y = 0; y < input.shape().y; ++y)
        for (int x = 0; x < input.shape().x; ++x) {
            for (int z = 0; z < z0; ++z)
                changed += !(input.at(x, y, z) == before.at(x, y, z));
            for (int z = z0; z < input.shape().z; ++z)
                EXPECT_EQ(input.at(x, y, z), before.at(x, y, z));
        }
    EXPECT_GT(changed, 0u);
}

} // namespace
