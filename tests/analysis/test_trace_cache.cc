/**
 * @file
 * Tests for timing::TraceCache: cached tensors and count maps are
 * bit-identical to the inline synthesis path (with and without
 * pruning), hit/miss counters are exact, concurrent lookups of one
 * key compute it once, and simulateNetwork produces identical
 * results with and without a cache.
 */

#include <gtest/gtest.h>

#include <cstddef>

#include "nn/trace.h"
#include "nn/zoo/zoo.h"
#include "sim/parallel.h"
#include "timing/network_model.h"
#include "timing/trace_cache.h"
#include "zfnaf/format.h"

namespace {

using namespace cnv;
using dadiannao::NodeConfig;

TEST(TraceCache, TensorMatchesInlineSynthesis)
{
    const auto net = nn::zoo::build(nn::zoo::NetId::Nin, 2016);
    timing::TraceCache cache;
    for (int nodeId : net->convNodeIds()) {
        const auto cached = cache.convInput(*net, nodeId, 7, nullptr);
        const auto inline_ =
            nn::synthesizeConvInput(*net, nodeId, 7, nullptr);
        EXPECT_EQ(*cached, inline_);
    }
}

TEST(TraceCache, CountMapMatchesInlinePathWithPruning)
{
    const auto net = nn::zoo::build(nn::zoo::NetId::Nin, 2016);
    nn::PruneConfig prune;
    prune.thresholds.assign(
        static_cast<std::size_t>(net->convLayerCount()), 16);
    const NodeConfig cfg;

    timing::TraceCache cache;
    for (int nodeId : net->convNodeIds()) {
        // Inline path: synthesize with pruning applied directly.
        const auto pruned =
            nn::synthesizeConvInput(*net, nodeId, 3, &prune);
        const auto expected = zfnaf::nonZeroCountMap(pruned, cfg.brickSize);
        const auto cached = cache.countMap(*net, nodeId, 3, nullptr,
                                           &prune, cfg.brickSize);
        EXPECT_EQ(*cached, expected);
    }
}

TEST(TraceCache, HitAndMissCountersAreExact)
{
    const auto net = nn::zoo::build(nn::zoo::NetId::Nin, 2016);
    const int nodeId = net->convNodeIds().front();
    timing::TraceCache cache;

    cache.countMap(*net, nodeId, 1, nullptr, nullptr, 16);
    auto s = cache.stats();
    EXPECT_EQ(s.countMapMisses, 1u);
    EXPECT_EQ(s.countMapHits, 0u);
    EXPECT_EQ(s.tensorMisses, 1u);

    // Same key: a pure hit, nothing recomputed.
    cache.countMap(*net, nodeId, 1, nullptr, nullptr, 16);
    s = cache.stats();
    EXPECT_EQ(s.countMapMisses, 1u);
    EXPECT_EQ(s.countMapHits, 1u);
    EXPECT_EQ(s.tensorMisses, 1u);

    // Different brick size: new count map, but the tensor is shared.
    cache.countMap(*net, nodeId, 1, nullptr, nullptr, 8);
    s = cache.stats();
    EXPECT_EQ(s.countMapMisses, 2u);
    EXPECT_EQ(s.tensorMisses, 1u);
    EXPECT_EQ(s.tensorHits, 1u);
}

TEST(TraceCache, ConcurrentLookupsComputeOnce)
{
    const auto net = nn::zoo::build(nn::zoo::NetId::Nin, 2016);
    const int nodeId = net->convNodeIds().front();
    timing::TraceCache cache;
    sim::ThreadPool pool(4);
    sim::parallelFor(pool, 16, [&](std::size_t) {
        cache.countMap(*net, nodeId, 9, nullptr, nullptr, 16);
    });
    const auto s = cache.stats();
    EXPECT_EQ(s.countMapMisses, 1u);
    EXPECT_EQ(s.countMapHits, 15u);
    EXPECT_EQ(s.tensorMisses, 1u);
}

TEST(TraceCache, SimulateNetworkIdenticalWithAndWithoutCache)
{
    const auto net = nn::zoo::build(nn::zoo::NetId::Nin, 2016);
    const NodeConfig cfg;
    nn::PruneConfig prune;
    prune.thresholds.assign(
        static_cast<std::size_t>(net->convLayerCount()), 16);

    for (const nn::PruneConfig *p :
         {static_cast<const nn::PruneConfig *>(nullptr),
          static_cast<const nn::PruneConfig *>(&prune)}) {
        for (timing::Arch arch :
             {timing::Arch::Baseline, timing::Arch::Cnv}) {
            timing::RunOptions plain;
            plain.imageSeed = 11;
            plain.prune = p;
            const auto direct =
                timing::simulateNetwork(cfg, *net, arch, plain);

            timing::TraceCache cache;
            timing::RunOptions withCache = plain;
            withCache.cache = &cache;
            const auto cached =
                timing::simulateNetwork(cfg, *net, arch, withCache);

            ASSERT_EQ(direct.layers.size(), cached.layers.size());
            EXPECT_EQ(direct.totalCycles(), cached.totalCycles());
            for (std::size_t i = 0; i < direct.layers.size(); ++i) {
                EXPECT_EQ(direct.layers[i].cycles,
                          cached.layers[i].cycles);
                EXPECT_EQ(direct.layers[i].activity.zero,
                          cached.layers[i].activity.zero);
                EXPECT_EQ(direct.layers[i].activity.nonZero,
                          cached.layers[i].activity.nonZero);
            }
        }
    }
}

} // namespace
