/** @file Tests for the experiment driver and network timing model. */

#include <gtest/gtest.h>

#include "driver/driver.h"
#include "timing/network_model.h"

namespace {

using namespace cnv;

TEST(TimingModel, BaselineCyclesAreContentIndependent)
{
    const auto net = nn::zoo::build(nn::zoo::NetId::Alex, 3);
    dadiannao::NodeConfig cfg;
    timing::RunOptions a, b;
    a.imageSeed = 1;
    b.imageSeed = 2;
    const auto ra = timing::simulateNetwork(cfg, *net,
                                            timing::Arch::Baseline, a);
    const auto rb = timing::simulateNetwork(cfg, *net,
                                            timing::Arch::Baseline, b);
    EXPECT_EQ(ra.totalCycles(), rb.totalCycles());
    // ... but the zero/non-zero split differs slightly.
    EXPECT_NE(ra.totalActivity().zero, rb.totalActivity().zero);
}

TEST(TimingModel, CnvFasterThanBaselineOnEveryNetwork)
{
    dadiannao::NodeConfig cfg;
    for (auto id : nn::zoo::allNetworks()) {
        const auto net = nn::zoo::build(id, 3);
        const double s = timing::speedup(cfg, *net, 1, 5);
        EXPECT_GT(s, 1.0) << nn::zoo::netName(id);
        EXPECT_LT(s, 2.0) << nn::zoo::netName(id);
    }
}

TEST(TimingModel, ActivityAccountsEveryLaneCycle)
{
    const auto net = nn::zoo::build(nn::zoo::NetId::CnnM, 3);
    dadiannao::NodeConfig cfg;
    timing::RunOptions opts;
    for (auto arch : {timing::Arch::Baseline, timing::Arch::Cnv}) {
        const auto r = timing::simulateNetwork(cfg, *net, arch, opts);
        EXPECT_EQ(r.totalActivity().total(),
                  r.totalCycles() * 256u)
            << timing::archName(arch);
    }
}

TEST(TimingModel, PruningIncreasesCnvSpeedup)
{
    const auto net = nn::zoo::build(nn::zoo::NetId::Alex, 3);
    dadiannao::NodeConfig cfg;
    const double plain = timing::speedup(cfg, *net, 1, 5);
    nn::PruneConfig prune;
    prune.thresholds.assign(net->convLayerCount(), 32);
    const double pruned = timing::speedup(cfg, *net, 1, 5, &prune);
    EXPECT_GT(pruned, plain);
}

TEST(Driver, EvaluateAggregatesImages)
{
    driver::ExperimentConfig cfg;
    cfg.images = 2;
    const auto net = nn::zoo::build(nn::zoo::NetId::Alex, cfg.seed);
    const auto report = driver::evaluateNetwork(cfg, *net);
    EXPECT_EQ(report.images, 2);
    EXPECT_GT(report.speedup(), 1.0);
    const auto &base = report.arch("dadiannao");
    const auto &cnvAgg = report.arch("cnv");
    EXPECT_GT(base.cycles, cnvAgg.cycles);
    // Baseline has no stall events; CNV has no zero events.
    EXPECT_EQ(base.activity.stall, 0u);
    EXPECT_EQ(cnvAgg.activity.zero, 0u);
    EXPECT_GT(cnvAgg.activity.stall, 0u);
    EXPECT_EQ(report.findArch("cnv-b8"), nullptr);
}

TEST(Driver, SpeedupAverages)
{
    auto synthetic = [](std::uint64_t baseCycles,
                        std::uint64_t cnvCycles) {
        driver::NetworkReport r;
        r.archs.push_back(
            {&arch::builtin().get("dadiannao"), baseCycles, {}, {}});
        r.archs.push_back(
            {&arch::builtin().get("cnv"), cnvCycles, {}, {}});
        return r;
    };
    const std::vector<driver::NetworkReport> reports{
        synthetic(150, 100), synthetic(120, 100)};
    EXPECT_NEAR(driver::meanSpeedup(reports), 1.35, 1e-12);
    EXPECT_NEAR(driver::geomeanSpeedup(reports), std::sqrt(1.5 * 1.2),
                1e-12);
}

} // namespace
