/** @file Tests for the stats-report bridge. */

#include <gtest/gtest.h>

#include <sstream>

#include "arch/registry.h"
#include "driver/stats_report.h"
#include "nn/zoo/zoo.h"
#include "timing/network_model.h"

namespace {

using namespace cnv;

dadiannao::NetworkResult
sampleRun(const arch::ArchModel &model)
{
    const auto net = nn::zoo::build(nn::zoo::NetId::Alex, 3);
    dadiannao::NodeConfig cfg;
    timing::RunOptions opts;
    return model.simulateNetwork(cfg, *net, opts);
}

const arch::ArchModel &
cnvModel()
{
    return arch::builtin().get("cnv");
}

TEST(StatsReport, TreeHoldsRunTotals)
{
    const auto run = sampleRun(cnvModel());
    const auto stats = driver::buildStats(run, cnvModel());

    EXPECT_DOUBLE_EQ(stats->get("cycles"),
                     static_cast<double>(run.totalCycles()));
    EXPECT_DOUBLE_EQ(stats->get("activity.nonZero"),
                     static_cast<double>(run.totalActivity().nonZero));
    EXPECT_DOUBLE_EQ(stats->get("energy.sbReads"),
                     static_cast<double>(run.totalEnergy().sbReads));
}

TEST(StatsReport, DerivedFormulasAreConsistent)
{
    const auto &model = arch::builtin().get("dadiannao");
    const auto run = sampleRun(model);
    const auto stats = driver::buildStats(run, model);

    const auto activity = run.totalActivity();
    EXPECT_NEAR(stats->get("zeroShare"),
                static_cast<double>(activity.zero) / activity.total(),
                1e-12);
    const double util = stats->get("laneUtilisation");
    EXPECT_GT(util, 0.0);
    EXPECT_LE(util, 1.0);
}

TEST(StatsReport, PowerScalarsMatchModel)
{
    const auto run = sampleRun(cnvModel());
    const auto stats = driver::buildStats(run, cnvModel());
    const auto pb =
        cnvModel().power(run.totalEnergy(), run.totalCycles());
    EXPECT_NEAR(stats->get("power.totalWatts"), pb.total(), 1e-9);
    const auto m =
        cnvModel().metrics(run.totalEnergy(), run.totalCycles());
    EXPECT_NEAR(stats->get("power.edp"), m.edp, 1e-15);
}

TEST(StatsReport, PerLayerGroupsExist)
{
    const auto run = sampleRun(cnvModel());
    const auto stats = driver::buildStats(run, cnvModel());
    // First layer entry is addressable and sums match.
    double layerCycles = 0.0;
    stats->visit([&](const std::string &name, const sim::Stat &s) {
        if (name.find("layers.") != std::string::npos &&
            name.rfind(".cycles") == name.size() - 7)
            layerCycles += s.value();
    });
    EXPECT_DOUBLE_EQ(layerCycles,
                     static_cast<double>(run.totalCycles()));
}

TEST(StatsReport, DumpIsReadable)
{
    const auto run = sampleRun(cnvModel());
    const auto stats = driver::buildStats(run, cnvModel());
    std::ostringstream os;
    stats->dump(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("cnv.cycles"), std::string::npos);
    EXPECT_NE(out.find("cnv.activity.stall"), std::string::npos);
    EXPECT_NE(out.find("cnv.power.totalWatts"), std::string::npos);
}

} // namespace
