/**
 * @file
 * End-to-end validation of the machine-readable run report: build a
 * small two-conv-layer network, write the JSON report, parse it back
 * with the shared in-test JSON parser, and check the schema the docs
 * promise (manifest, per-layer timeline, aggregate summary).
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "arch/registry.h"
#include "driver/stats_report.h"
#include "nn/network.h"
#include "sim/metrics.h"
#include "support/json_parser.h"
#include "timing/network_model.h"

namespace {

using namespace cnv;
using testsupport::Json;
using testsupport::Parser;

/** A two-conv-layer network small enough for an in-test run. */
nn::Network
makeNetwork()
{
    nn::Network net("tiny2", 11);
    int x = net.addInput({8, 8, 16});
    nn::ConvParams c;
    c.filters = 16;
    c.fx = c.fy = 3;
    c.stride = 1;
    c.pad = 1;
    c.inputZeroFraction = 0.5;
    x = net.addConv("c1", x, c);
    net.addConv("c2", x, c);
    net.deriveOutputTargets();
    return net;
}

driver::RunReport
makeReport()
{
    driver::ExperimentConfig cfg;
    cfg.images = 2;
    cfg.seed = 7;
    nn::Network net = makeNetwork();
    driver::RunReport report = driver::buildRunReport(cfg, net);
    report.manifest.wallSeconds = 0.25;
    return report;
}

TEST(ReportJson, DocumentParsesWithManifestAndSummary)
{
    std::ostringstream os;
    driver::writeReportJson(makeReport(), os);
    const std::string text = os.str();
    Json doc = Parser(text).parse();

    EXPECT_EQ(doc.at("schema").text, "cnv-report-v1");

    const Json &manifest = doc.at("manifest");
    EXPECT_EQ(manifest.at("tool").text, "cnvsim");
    EXPECT_FALSE(manifest.at("gitSha").text.empty());
    EXPECT_FALSE(manifest.at("version").text.empty());
    EXPECT_EQ(manifest.at("network").text, "tiny2");
    EXPECT_FALSE(manifest.at("nodeConfig").text.empty());
    EXPECT_EQ(manifest.at("images").number, 2.0);
    EXPECT_EQ(manifest.at("seed").number, 7.0);
    EXPECT_EQ(manifest.at("weightSparsity").number,
              timing::kDefaultWeightSparsity);
    EXPECT_EQ(manifest.at("wallSeconds").number, 0.25);

    const Json &summary = doc.at("summary");
    EXPECT_GT(summary.at("baselineCycles").number, 0.0);
    EXPECT_GT(summary.at("cnvCycles").number, 0.0);
    EXPECT_GT(summary.at("speedup").number, 0.0);

    // The per-arch keyed summary carries the same numbers.
    const Json &archs = summary.at("archs");
    EXPECT_EQ(archs.at("dadiannao").at("cycles").number,
              summary.at("baselineCycles").number);
    EXPECT_EQ(archs.at("cnv").at("cycles").number,
              summary.at("cnvCycles").number);
}

TEST(ReportJson, MultiArchSelectionKeysEverySection)
{
    driver::ExperimentConfig cfg;
    cfg.images = 1;
    cfg.seed = 7;
    nn::Network net = makeNetwork();
    const auto sel = arch::builtin().select("cnv,cnv2,cnv-b8");
    driver::RunReport report = driver::buildRunReport(cfg, net, sel);

    std::ostringstream os;
    driver::writeReportJson(report, os);
    Json doc = Parser(os.str()).parse();

    const Json &archs = doc.at("architectures");
    ASSERT_TRUE(archs.has("cnv"));
    ASSERT_TRUE(archs.has("cnv2"));
    ASSERT_TRUE(archs.has("cnv-b8"));
    EXPECT_FALSE(archs.has("dadiannao"));

    const Json &summary = doc.at("summary");
    EXPECT_GT(summary.at("archs").at("cnv").at("cycles").number, 0.0);
    EXPECT_GT(summary.at("archs").at("cnv2").at("cycles").number, 0.0);
    EXPECT_GT(summary.at("archs").at("cnv-b8").at("cycles").number, 0.0);
    // Weight skipping only removes work relative to cnv.
    EXPECT_LE(summary.at("archs").at("cnv2").at("cycles").number,
              summary.at("archs").at("cnv").at("cycles").number);
    // Without the canonical pair there is no legacy trio.
    EXPECT_FALSE(summary.has("baselineCycles"));
    EXPECT_FALSE(summary.has("speedup"));
}

TEST(ReportJson, BothArchitecturesCarryPerLayerTimelines)
{
    std::ostringstream os;
    driver::writeReportJson(makeReport(), os);
    Json doc = Parser(os.str()).parse();

    const Json &archs = doc.at("architectures");
    ASSERT_TRUE(archs.has("dadiannao"));
    ASSERT_TRUE(archs.has("cnv"));

    for (const char *arch : {"dadiannao", "cnv"}) {
        const Json &tree = archs.at(arch);
        const double totalCycles =
            tree.at("stats").at("cycles").at("value").number;
        EXPECT_GT(totalCycles, 0.0) << arch;

        const Json &layers = tree.at("groups").at("layers").at("groups");
        // Two conv layers plus any synapse-load stall layers.
        EXPECT_GE(layers.object.size(), 2u) << arch;

        // Layers appear in timeline order (startCycle cumulative over
        // the preceding layers' cycles) and cover the total exactly.
        double expectStart = 0.0, covered = 0.0;
        for (const auto &[name, layer] : layers.object) {
            const Json &stats = layer.at("stats");
            EXPECT_EQ(stats.at("startCycle").at("value").number,
                      expectStart)
                << arch << "." << name;
            expectStart += stats.at("cycles").at("value").number;
            covered += stats.at("cycles").at("value").number;
            ASSERT_TRUE(layer.at("groups").has("micro"))
                << arch << "." << name;
            ASSERT_TRUE(layer.at("groups").has("energy"))
                << arch << "." << name;
        }
        EXPECT_EQ(covered, totalCycles) << arch;
    }

    // The encoded CNV conv layers report encoder throughput.
    const Json &cnvLayers =
        archs.at("cnv").at("groups").at("layers").at("groups");
    double encoderBricks = 0.0;
    for (const auto &[name, layer] : cnvLayers.object)
        encoderBricks += layer.at("groups").at("micro").at("stats")
                             .at("encoderBricks").at("value").number;
    EXPECT_GT(encoderBricks, 0.0);
}

TEST(ReportJson, HostProfileConfinesAllHostTimings)
{
    // With telemetry recording, the report gains a hostProfile block
    // — and ONLY that block may differ between two serializations of
    // the same results (host timings are wall-clock, results are
    // deterministic).
    sim::metrics().setEnabled(true);
    const driver::RunReport report = makeReport();
    std::ostringstream os1, os2;
    driver::writeReportJson(report, os1);
    {
        const sim::ScopedPhase phase("extraPhase");
    }
    driver::writeReportJson(report, os2);
    sim::metrics().setEnabled(false);

    const std::string a = os1.str(), b = os2.str();
    const std::size_t cutA = a.find("\"hostProfile\"");
    const std::size_t cutB = b.find("\"hostProfile\"");
    ASSERT_NE(cutA, std::string::npos);
    ASSERT_NE(cutB, std::string::npos);
    EXPECT_EQ(a.substr(0, cutA), b.substr(0, cutB));

    const Json doc = Parser(a).parse();
    const Json &hp = doc.at("hostProfile");
    EXPECT_GE(hp.at("totalSeconds").number, 0.0);
    ASSERT_TRUE(hp.has("phases"));
    ASSERT_TRUE(hp.has("traceCache"));
    // The simulated-results sections must not embed host timings:
    // every wall-clock key lives after the hostProfile cut.
    for (const char *key : {"busySeconds", "phaseCoverage",
                            "peakRssBytes", "totalSeconds"})
        EXPECT_GE(a.find(key), cutA) << key;
}

TEST(ReportCsv, RowsCoverManifestStatsAndSummary)
{
    std::ostringstream os;
    driver::writeReportCsv(makeReport(), os);
    std::istringstream is(os.str());
    std::string line;
    ASSERT_TRUE(std::getline(is, line));
    EXPECT_EQ(line, "path,kind,value,description");

    bool sawManifest = false, sawBaseline = false, sawCnv = false,
         sawSummary = false;
    while (std::getline(is, line)) {
        sawManifest |= line.rfind("manifest.network,manifest,tiny2", 0) == 0;
        sawBaseline |= line.rfind("dadiannao.cycles,counter,", 0) == 0;
        sawCnv |= line.rfind("cnv.cycles,counter,", 0) == 0;
        sawSummary |= line.rfind("summary.speedup,summary,", 0) == 0;
    }
    EXPECT_TRUE(sawManifest);
    EXPECT_TRUE(sawBaseline);
    EXPECT_TRUE(sawCnv);
    EXPECT_TRUE(sawSummary);
}

} // namespace
