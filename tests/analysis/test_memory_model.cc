/**
 * @file
 * End-to-end pins for the memory-hierarchy refactor: the ideal
 * backend must reproduce the pre-refactor cycle counts bit-identical
 * (every timing-model access goes through `mem::` now, so any
 * accidental cost on the ideal path shows up here), and the banked
 * backend must attribute its extra cycles without breaking the
 * stalls.total() == laneIdleCycles invariant.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "arch/registry.h"
#include "driver/driver.h"
#include "driver/stats_report.h"
#include "mem/memory_model.h"
#include "nn/zoo/zoo.h"
#include "support/json_parser.h"
#include "timing/network_model.h"

namespace {

using namespace cnv;
using testsupport::Json;
using testsupport::Parser;

TEST(MemoryModelPins, IdealReproducesPreRefactorCycleCounts)
{
    driver::ExperimentConfig cfg;
    cfg.images = 1;
    cfg.seed = 2016;
    ASSERT_EQ(cfg.memKind, mem::Kind::Ideal); // the default
    const auto net = nn::zoo::build(nn::zoo::NetId::Nin, cfg.seed);
    const auto report = driver::evaluateNetworkArchs(
        cfg, *net, arch::builtin().select("dadiannao,cnv,cnv2"));

    // The PR 6 counts, pinned: an ideal run must stay bit-identical
    // to the numbers produced before the hierarchy existed.
    EXPECT_EQ(report.arch("dadiannao").cycles, 362123u);
    EXPECT_EQ(report.arch("cnv").cycles, 287346u);
    EXPECT_EQ(report.arch("cnv2").cycles, 262934u);
    for (const driver::ArchAggregate &a : report.archs) {
        EXPECT_FALSE(a.memModelled) << a.id();
        EXPECT_EQ(a.mem.nmAccesses, 0u) << a.id();
    }
}

TEST(MemoryModelPins, BankedKeepsStallAttributionInvariant)
{
    const auto net = nn::zoo::build(nn::zoo::NetId::Nin, 2016);
    dadiannao::NodeConfig cfg;
    for (const char *archId : {"dadiannao", "cnv", "cnv2"}) {
        const arch::ArchModel &model = arch::builtin().get(archId);
        timing::RunOptions opts;
        opts.imageSeed = 2016;
        opts.memKind = mem::Kind::Banked;
        const auto run = model.simulateNetwork(cfg, *net, opts);
        EXPECT_TRUE(run.memModelled) << archId;
        for (const dadiannao::LayerResult &layer : run.layers)
            EXPECT_EQ(layer.micro.stalls.total(),
                      layer.micro.laneIdleCycles)
                << archId << " " << layer.name;
        if (std::string(archId) == "dadiannao") {
            // One unit-wide fetch pointer never conflicts...
            EXPECT_EQ(run.totalMicro().stalls.nmBankConflict, 0u);
            EXPECT_GT(run.totalMem().nmAccesses, 0u);
        } else {
            // ...while CNV's sixteen independent slice pointers do.
            EXPECT_GT(run.totalMicro().stalls.nmBankConflict, 0u)
                << archId;
        }
    }
}

TEST(MemoryModelPins, BankedReportCarriesSummaryMemory)
{
    driver::ExperimentConfig cfg;
    cfg.images = 1;
    cfg.seed = 2016;
    cfg.memKind = mem::Kind::Banked;
    const auto net = nn::zoo::build(nn::zoo::NetId::Nin, cfg.seed);
    const auto report = driver::buildRunReport(
        cfg, *net, arch::builtin().select("dadiannao,cnv"));

    std::ostringstream os;
    driver::writeReportJson(report, os);
    Json doc = Parser(os.str()).parse();

    EXPECT_EQ(doc.at("manifest").at("mem").text, "banked");
    const Json &memory = doc.at("summary").at("memory");
    const Json &cnv = memory.at("cnv");
    EXPECT_GT(cnv.at("nmConflictCycles").number, 0.0);
    EXPECT_GT(cnv.at("gbHits").number, 0.0);
    EXPECT_GT(cnv.at("dramBytes").number, 0.0);
    EXPECT_EQ(memory.at("dadiannao").at("nmConflictCycles").number, 0.0);
    const double boundSplit = cnv.at("memoryBoundLayers").number +
                              cnv.at("computeBoundLayers").number;
    EXPECT_GT(boundSplit, 0.0);

    // The per-arch stat trees carry the new counters too.
    const Json &cnvMem =
        doc.at("architectures").at("cnv").at("groups").at("memory");
    EXPECT_GT(cnvMem.at("stats").at("nmAccesses").at("value").number,
              0.0);
}

} // namespace
