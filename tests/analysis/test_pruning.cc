/** @file Tests for the pruning threshold explorer. */

#include <gtest/gtest.h>

#include <set>

#include "nn/trace.h"
#include "nn/zoo/zoo.h"
#include "pruning/explore.h"

namespace {

using namespace cnv;

TEST(Pruning, ZeroThresholdsAreAlwaysLossless)
{
    auto net = nn::zoo::build(nn::zoo::NetId::Alex, 3, 16);
    net->calibrate();
    nn::PruneConfig none;
    none.thresholds.assign(net->convLayerCount(), 0);
    EXPECT_DOUBLE_EQ(pruning::relativeAccuracy(*net, none, 6, 9), 1.0);
}

TEST(Pruning, ExtremeThresholdsDestroyAccuracy)
{
    auto net = nn::zoo::build(nn::zoo::NetId::Alex, 3, 16);
    net->calibrate();
    // Unpruned predictions must vary across images, else agreement
    // is vacuous (the synthetic image generator guarantees this).
    std::set<int> classes;
    for (int i = 0; i < 8; ++i) {
        const auto input =
            nn::synthesizeImage(net->node(0).outShape, 9 + i);
        classes.insert(net->forward(input).top1);
    }
    EXPECT_GE(classes.size(), 2u);

    // A threshold above the representable range zeroes every conv
    // output; prediction collapses to a constant.
    nn::PruneConfig nuke;
    nuke.thresholds.assign(net->convLayerCount(), 40000);
    EXPECT_LT(pruning::relativeAccuracy(*net, nuke, 8, 9), 1.0);
}

TEST(Pruning, AccuracyIsMonotoneInThresholdIntensityOnAverage)
{
    auto net = nn::zoo::build(nn::zoo::NetId::CnnS, 3, 16);
    net->calibrate();
    double prev = 1.1;
    bool everDropped = false;
    for (std::int32_t t : {0, 128, 2048, 20000}) {
        nn::PruneConfig cfg;
        cfg.thresholds.assign(net->convLayerCount(), t);
        const double acc = pruning::relativeAccuracy(*net, cfg, 8, 4);
        EXPECT_LE(acc, prev + 0.25); // loose monotonicity
        everDropped |= acc < 1.0;
        prev = acc;
    }
    EXPECT_TRUE(everDropped);
}

TEST(Pruning, ParetoFrontierIsMonotone)
{
    std::vector<pruning::ExplorationPoint> pts;
    auto add = [&](double speedup, double acc) {
        pruning::ExplorationPoint p;
        p.speedup = speedup;
        p.relativeAccuracy = acc;
        pts.push_back(p);
    };
    add(1.0, 1.0);
    add(1.2, 0.98);
    add(1.1, 0.90); // dominated: slower and less accurate than (1.2,0.98)
    add(1.5, 0.80);
    add(1.4, 0.70); // dominated
    const auto frontier = pruning::paretoFrontier(pts);
    ASSERT_EQ(frontier.size(), 3u);
    for (std::size_t i = 1; i < frontier.size(); ++i) {
        EXPECT_GT(frontier[i].speedup, frontier[i - 1].speedup);
        EXPECT_LT(frontier[i].relativeAccuracy,
                  frontier[i - 1].relativeAccuracy);
    }
}

TEST(Pruning, LosslessSearchFindsNonTrivialThresholds)
{
    // Use the scaled network for both timing and accuracy to keep
    // the test fast; full-geometry search runs in the bench.
    auto accNet = nn::zoo::build(nn::zoo::NetId::Alex, 3, 16);
    accNet->calibrate();

    dadiannao::NodeConfig cfg;
    pruning::SearchOptions opts;
    opts.accuracyImages = 6;
    opts.timingImages = 1;
    opts.levels = {0, 2, 4, 8};

    const auto point =
        pruning::searchLossless(cfg, *accNet, *accNet, opts);
    EXPECT_DOUBLE_EQ(point.relativeAccuracy, 1.0);
    // At least one layer should tolerate a non-zero threshold.
    std::int32_t maxT = 0;
    for (std::int32_t t : point.config.thresholds)
        maxT = std::max(maxT, t);
    EXPECT_GT(maxT, 0);
}

TEST(Pruning, TradeoffSweepProducesOrderedPoints)
{
    auto accNet = nn::zoo::build(nn::zoo::NetId::Alex, 3, 16);
    accNet->calibrate();

    dadiannao::NodeConfig cfg;
    pruning::SearchOptions opts;
    opts.accuracyImages = 4;
    opts.timingImages = 1;
    opts.levels = {0, 8, 64};

    const auto pts = pruning::tradeoffSweep(cfg, *accNet, *accNet, opts);
    ASSERT_GT(pts.size(), 3u);
    for (std::size_t i = 1; i < pts.size(); ++i)
        EXPECT_GE(pts[i].speedup, pts[i - 1].speedup);
}

TEST(Pruning, ThresholdGroupsFollowNamePrefixes)
{
    // google: conv1, conv2 stem, nine inception modules, two aux
    // heads = 13 groups (the paper specifies per-module thresholds).
    const auto google = nn::zoo::build(nn::zoo::NetId::Google, 1, 16);
    const auto groups = pruning::thresholdGroups(*google);
    EXPECT_EQ(groups.size(), 13u);
    int covered = 0;
    for (const auto &g : groups)
        covered += static_cast<int>(g.size());
    EXPECT_EQ(covered, google->convLayerCount());

    // Networks without '/'-structured names get one group per layer.
    const auto alex = nn::zoo::build(nn::zoo::NetId::Alex, 1, 16);
    EXPECT_EQ(pruning::thresholdGroups(*alex).size(), 5u);
}

} // namespace
