/** @file Tests for the tensor containers and helpers. */

#include <gtest/gtest.h>

#include "sim/error.h"
#include "sim/logging.h"
#include "tensor/neuron_tensor.h"

namespace {

using namespace cnv::tensor;

TEST(Tensor3, DepthFastestLayout)
{
    Tensor3<int> t(3, 2, 4);
    // (x=0, y=0, z) are the first four elements.
    EXPECT_EQ(t.index(0, 0, 0), 0u);
    EXPECT_EQ(t.index(0, 0, 3), 3u);
    EXPECT_EQ(t.index(1, 0, 0), 4u);
    EXPECT_EQ(t.index(0, 1, 0), 12u);
}

TEST(Tensor3, ColumnPointsAtDepthRun)
{
    Tensor3<int> t(2, 2, 3);
    int v = 0;
    for (int y = 0; y < 2; ++y)
        for (int x = 0; x < 2; ++x)
            for (int z = 0; z < 3; ++z)
                t.at(x, y, z) = v++;
    const int *col = t.column(1, 1);
    EXPECT_EQ(col[0], t.at(1, 1, 0));
    EXPECT_EQ(col[2], t.at(1, 1, 2));
}

TEST(Tensor3, OutOfRangePanics)
{
    cnv::sim::setVerbosity(cnv::sim::Verbosity::Silent);
    Tensor3<int> t(2, 2, 2);
    EXPECT_THROW(t.at(2, 0, 0), cnv::sim::PanicError);
    EXPECT_THROW(t.at(0, -1, 0), cnv::sim::PanicError);
    cnv::sim::setVerbosity(cnv::sim::Verbosity::Info);
}

TEST(Tensor4, FilterMajorContiguity)
{
    Tensor4<int> t(2, 3, 3, 4);
    // A whole filter occupies a contiguous span.
    EXPECT_EQ(t.index(1, 0, 0, 0) - t.index(0, 0, 0, 0), 3u * 3u * 4u);
    // Depth is fastest within a filter.
    EXPECT_EQ(t.index(0, 0, 0, 1), t.index(0, 0, 0, 0) + 1);
}

TEST(NeuronTensor, ZeroFractionAndNonZeroCount)
{
    NeuronTensor t(2, 2, 4);
    t.fill(Fixed16{});
    t.at(0, 0, 0) = Fixed16::fromDouble(1.0);
    t.at(1, 1, 3) = Fixed16::fromDouble(-2.0);
    EXPECT_EQ(countNonZero(t), 2u);
    EXPECT_DOUBLE_EQ(zeroFraction(t), 14.0 / 16.0);
}

TEST(NeuronTensor, MaxAbsDifference)
{
    NeuronTensor a(1, 1, 2), b(1, 1, 2);
    a.at(0, 0, 0) = Fixed16::fromDouble(1.0);
    b.at(0, 0, 0) = Fixed16::fromDouble(1.5);
    EXPECT_DOUBLE_EQ(maxAbsDifference(a, b), 0.5);
}

TEST(Shape3, Volume)
{
    EXPECT_EQ((Shape3{3, 4, 5}).volume(), 60u);
    EXPECT_EQ((Shape3{0, 4, 5}).volume(), 0u);
}

TEST(Tensor3, EqualityComparesShapeAndData)
{
    Tensor3<int> a(2, 1, 1), b(2, 1, 1), c(1, 2, 1);
    a.at(0, 0, 0) = 1;
    b.at(0, 0, 0) = 1;
    EXPECT_EQ(a, b);
    b.at(1, 0, 0) = 9;
    EXPECT_FALSE(a == b);
    EXPECT_FALSE(a == c);
}

} // namespace
