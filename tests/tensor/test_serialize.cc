/** @file Tests for binary tensor serialisation. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdint>
#include <sstream>
#include <vector>

#include "sim/error.h"
#include "sim/logging.h"
#include "sim/rng.h"
#include "tensor/bytes.h"
#include "tensor/serialize.h"

namespace {

using namespace cnv;
using tensor::FilterBank;
using tensor::Fixed16;
using tensor::NeuronTensor;

NeuronTensor
randomTensor(int x, int y, int z, std::uint64_t seed)
{
    NeuronTensor t(x, y, z);
    sim::Rng rng(seed);
    for (Fixed16 &v : t)
        v = Fixed16::fromRaw(static_cast<std::int16_t>(
            rng.uniformInt(std::int64_t{-32768}, std::int64_t{32767})));
    return t;
}

TEST(Serialize, TensorRoundTrip)
{
    const NeuronTensor t = randomTensor(5, 7, 33, 1);
    std::stringstream ss;
    tensor::save(ss, t);
    EXPECT_EQ(tensor::loadTensor(ss), t);
}

TEST(Serialize, EmptyTensorRoundTrip)
{
    const NeuronTensor t(1, 1, 1);
    std::stringstream ss;
    tensor::save(ss, t);
    EXPECT_EQ(tensor::loadTensor(ss), t);
}

TEST(Serialize, FilterBankRoundTrip)
{
    FilterBank f(3, 2, 2, 9);
    sim::Rng rng(3);
    for (std::size_t i = 0; i < f.size(); ++i)
        f.data()[i] = Fixed16::fromRaw(
            static_cast<std::int16_t>(rng.uniformInt(std::int64_t{-100},
                                                     std::int64_t{100})));
    std::stringstream ss;
    tensor::save(ss, f);
    const FilterBank g = tensor::loadFilterBank(ss);
    ASSERT_EQ(g.shape(), f.shape());
    for (std::size_t i = 0; i < f.size(); ++i)
        EXPECT_EQ(g.data()[i], f.data()[i]);
}

TEST(Serialize, BackToBackStreams)
{
    const NeuronTensor a = randomTensor(2, 2, 4, 5);
    const NeuronTensor b = randomTensor(3, 1, 8, 6);
    std::stringstream ss;
    tensor::save(ss, a);
    tensor::save(ss, b);
    EXPECT_EQ(tensor::loadTensor(ss), a);
    EXPECT_EQ(tensor::loadTensor(ss), b);
}

TEST(Serialize, BadMagicIsFatal)
{
    sim::setVerbosity(sim::Verbosity::Silent);
    std::stringstream ss;
    ss << "JUNKxxxxxxxxxxxxxxxx";
    EXPECT_THROW(tensor::loadTensor(ss), sim::FatalError);
    sim::setVerbosity(sim::Verbosity::Info);
}

TEST(Serialize, TruncatedStreamIsFatal)
{
    sim::setVerbosity(sim::Verbosity::Silent);
    const NeuronTensor t = randomTensor(4, 4, 16, 9);
    std::stringstream ss;
    tensor::save(ss, t);
    const std::string full = ss.str();
    std::stringstream cut(full.substr(0, full.size() / 2));
    EXPECT_THROW(tensor::loadTensor(cut), sim::FatalError);
    sim::setVerbosity(sim::Verbosity::Info);
}

TEST(Serialize, WrongKindIsFatal)
{
    sim::setVerbosity(sim::Verbosity::Silent);
    const NeuronTensor t = randomTensor(2, 2, 2, 11);
    std::stringstream ss;
    tensor::save(ss, t);
    EXPECT_THROW(tensor::loadFilterBank(ss), sim::FatalError);
    sim::setVerbosity(sim::Verbosity::Info);
}

TEST(Serialize, FileRoundTrip)
{
    const NeuronTensor t = randomTensor(6, 3, 12, 13);
    const std::string path = ::testing::TempDir() + "cnv_tensor_test.bin";
    tensor::saveTensorFile(path, t);
    EXPECT_EQ(tensor::loadTensorFile(path), t);
    std::remove(path.c_str());
}

TEST(Serialize, MissingFileIsFatal)
{
    sim::setVerbosity(sim::Verbosity::Silent);
    EXPECT_THROW(tensor::loadTensorFile("/nonexistent/nope.bin"),
                 sim::FatalError);
    sim::setVerbosity(sim::Verbosity::Info);
}

TEST(Serialize, ScalarHelpersRoundTripUnaligned)
{
    // Place values at every misalignment a u32/i16 can have; the
    // helpers must neither trap nor read neighbouring bytes.
    alignas(8) char buf[64];
    for (std::size_t offset = 0; offset < 8; ++offset) {
        std::fill(std::begin(buf), std::end(buf), '\xAA');
        const std::uint32_t u = 0xDEADBEEFu;
        tensor::storeScalar(buf + offset, u);
        EXPECT_EQ(tensor::loadScalar<std::uint32_t>(buf + offset), u);

        const Fixed16 f = Fixed16::fromRaw(-12345);
        tensor::storeScalar(buf + offset + sizeof(u), f);
        EXPECT_EQ(tensor::loadScalar<Fixed16>(buf + offset + sizeof(u)), f);
        // Neighbouring bytes stay untouched.
        EXPECT_EQ(buf[offset + sizeof(u) + sizeof(f)], '\xAA');
    }
}

TEST(Serialize, RoundTripFromUnalignedBuffer)
{
    // Serialize, then re-parse the byte stream from a deliberately
    // odd-offset copy: every header field and payload element is then
    // read from unaligned storage.
    const NeuronTensor t = randomTensor(5, 3, 17, 21);
    std::stringstream ss;
    tensor::save(ss, t);
    const std::string bytes = ss.str();

    std::vector<char> skewed(bytes.size() + 1);
    std::copy(bytes.begin(), bytes.end(), skewed.begin() + 1);
    std::stringstream replay;
    replay.write(skewed.data() + 1,
                 static_cast<std::streamsize>(bytes.size()));
    EXPECT_EQ(tensor::loadTensor(replay), t);

    // Header fields parse identically through the unaligned view.
    EXPECT_EQ(tensor::loadScalar<std::uint32_t>(skewed.data() + 1 + 8),
              5u); // x dim follows magic+version
}

TEST(Serialize, LargeTensorCrossesStagingChunks)
{
    // > 4096 elements forces writeRaw/readRaw through several staging
    // buffer refills; the content must still round-trip exactly.
    const NeuronTensor t = randomTensor(21, 13, 37, 17); // 10101 elems
    std::stringstream ss;
    tensor::save(ss, t);
    EXPECT_EQ(tensor::loadTensor(ss), t);
}

} // namespace
