/** @file Tests for the Q7.8 fixed-point type. */

#include <gtest/gtest.h>

#include "tensor/fixed16.h"

namespace {

using cnv::tensor::Accum;
using cnv::tensor::Fixed16;

TEST(Fixed16, RoundTripThroughDouble)
{
    for (double v : {0.0, 1.0, -1.0, 0.5, -0.25, 3.75, -127.0}) {
        EXPECT_DOUBLE_EQ(Fixed16::fromDouble(v).toDouble(), v);
    }
}

TEST(Fixed16, RoundsToNearest)
{
    // 1/512 is exactly half an LSB; nearbyint rounds to even.
    EXPECT_EQ(Fixed16::fromDouble(3.0 / 512).raw(), 2);
    EXPECT_EQ(Fixed16::fromDouble(-3.0 / 512).raw(), -2);
}

TEST(Fixed16, SaturatesAtRangeLimits)
{
    EXPECT_EQ(Fixed16::fromDouble(1000.0).raw(), 32767);
    EXPECT_EQ(Fixed16::fromDouble(-1000.0).raw(), -32768);
    EXPECT_EQ(Fixed16::saturateFromRaw(40000).raw(), 32767);
    EXPECT_EQ(Fixed16::saturateFromRaw(-40000).raw(), -32768);
}

TEST(Fixed16, MulRawIsExact)
{
    const Fixed16 a = Fixed16::fromDouble(1.5);   // raw 384
    const Fixed16 b = Fixed16::fromDouble(-2.25); // raw -576
    EXPECT_EQ(mulRaw(a, b), Accum{384} * -576);
}

TEST(Fixed16, ProductRequantisationMatchesRealArithmetic)
{
    const Fixed16 a = Fixed16::fromDouble(1.5);
    const Fixed16 b = Fixed16::fromDouble(2.0);
    const Fixed16 c = Fixed16::productToFixed(mulRaw(a, b));
    EXPECT_DOUBLE_EQ(c.toDouble(), 3.0);
}

TEST(Fixed16, ProductRoundingIsSymmetric)
{
    // +/- the same product magnitudes round to the same magnitude.
    const Accum p = 3 * 128; // 1.5 LSB of the output
    EXPECT_EQ(Fixed16::productToFixed(p).raw(),
              -Fixed16::productToFixed(-p).raw());
}

TEST(Fixed16, SaturatingAddition)
{
    const Fixed16 big = Fixed16::fromRaw(32000);
    EXPECT_EQ((big + big).raw(), 32767);
    const Fixed16 neg = Fixed16::fromRaw(-32000);
    EXPECT_EQ((neg + neg).raw(), -32768);
    EXPECT_DOUBLE_EQ((Fixed16::fromDouble(1.5) +
                      Fixed16::fromDouble(0.25)).toDouble(), 1.75);
}

TEST(Fixed16, ReluZeroesNegatives)
{
    EXPECT_TRUE(Fixed16::fromDouble(-0.5).relu().isZero());
    EXPECT_DOUBLE_EQ(Fixed16::fromDouble(0.5).relu().toDouble(), 0.5);
    EXPECT_TRUE(Fixed16{}.relu().isZero());
}

TEST(Fixed16, RawAbsHandlesMostNegative)
{
    EXPECT_EQ(Fixed16::fromRaw(-32768).rawAbs(), 32768);
    EXPECT_EQ(Fixed16::fromRaw(-5).rawAbs(), 5);
    EXPECT_EQ(Fixed16::fromRaw(5).rawAbs(), 5);
}

TEST(Fixed16, ComparisonOperators)
{
    EXPECT_LT(Fixed16::fromDouble(1.0), Fixed16::fromDouble(2.0));
    EXPECT_EQ(Fixed16::fromDouble(1.0), Fixed16::fromRaw(256));
}

} // namespace
