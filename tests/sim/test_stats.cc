/** @file Tests for the statistics package. */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/error.h"
#include "sim/logging.h"
#include "sim/stats.h"

namespace {

using namespace cnv::sim;

TEST(Stats, CounterIncrements)
{
    StatGroup g("top");
    Counter &c = g.addCounter("events", "number of events");
    ++c;
    c += 5;
    EXPECT_EQ(c.count(), 6u);
    EXPECT_DOUBLE_EQ(c.value(), 6.0);
}

TEST(Stats, ScalarAssignsAndAccumulates)
{
    StatGroup g("top");
    Scalar &s = g.addScalar("energy", "joules");
    s = 1.5;
    s += 0.5;
    EXPECT_DOUBLE_EQ(s.value(), 2.0);
}

TEST(Stats, FormulaComputesFromOtherStats)
{
    StatGroup g("top");
    Counter &cycles = g.addCounter("cycles", "cycles");
    Counter &ops = g.addCounter("ops", "operations");
    g.addFormula("ipc", "ops per cycle", [&] {
        return cycles.count() ? ops.value() / cycles.value() : 0.0;
    });
    cycles += 10;
    ops += 25;
    EXPECT_DOUBLE_EQ(g.get("ipc"), 2.5);
}

TEST(Stats, DistributionTracksMoments)
{
    StatGroup g("top");
    Distribution &d = g.addDistribution("lat", "latency");
    for (double x : {1.0, 2.0, 3.0, 4.0})
        d.sample(x);
    EXPECT_EQ(d.count(), 4u);
    EXPECT_DOUBLE_EQ(d.mean(), 2.5);
    EXPECT_DOUBLE_EQ(d.min(), 1.0);
    EXPECT_DOUBLE_EQ(d.max(), 4.0);
    EXPECT_NEAR(d.stddev(), 1.29099, 1e-4);
}

TEST(Stats, NestedGroupsAndPathLookup)
{
    StatGroup root("node");
    StatGroup &unit = root.addGroup("unit0");
    Counter &c = unit.addCounter("sbReads", "SB reads");
    c += 3;
    EXPECT_DOUBLE_EQ(root.get("unit0.sbReads"), 3.0);
    EXPECT_EQ(root.find("unit0.missing"), nullptr);
    EXPECT_EQ(root.find("missing.sbReads"), nullptr);
}

TEST(Stats, GetUnknownStatIsFatal)
{
    setVerbosity(Verbosity::Silent);
    StatGroup g("top");
    EXPECT_THROW(g.get("nope"), FatalError);
    setVerbosity(Verbosity::Info);
}

TEST(Stats, DuplicateNameIsFatal)
{
    setVerbosity(Verbosity::Silent);
    StatGroup g("top");
    g.addCounter("x", "first");
    EXPECT_THROW(g.addCounter("x", "second"), FatalError);
    setVerbosity(Verbosity::Info);
}

TEST(Stats, ResetAllClearsEverything)
{
    StatGroup root("node");
    Counter &c = root.addCounter("c", "c");
    StatGroup &sub = root.addGroup("sub");
    Scalar &s = sub.addScalar("s", "s");
    c += 7;
    s = 3.0;
    root.resetAll();
    EXPECT_EQ(c.count(), 0u);
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Stats, DumpContainsNamesValuesAndDescriptions)
{
    StatGroup root("node");
    Counter &c = root.addCounter("cycles", "total cycles");
    c += 42;
    std::ostringstream os;
    root.dump(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("node.cycles"), std::string::npos);
    EXPECT_NE(out.find("42"), std::string::npos);
    EXPECT_NE(out.find("total cycles"), std::string::npos);
}

TEST(Stats, VisitWalksAllStats)
{
    StatGroup root("node");
    root.addCounter("a", "a");
    root.addGroup("g").addCounter("b", "b");
    int visited = 0;
    root.visit([&](const std::string &name, const Stat &) {
        ++visited;
        EXPECT_EQ(name.rfind("node.", 0), 0u);
    });
    EXPECT_EQ(visited, 2);
}

} // namespace
