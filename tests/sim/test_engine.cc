/** @file Tests for the two-phase cycle engine and latch. */

#include <gtest/gtest.h>

#include "sim/engine.h"
#include "sim/error.h"
#include "sim/logging.h"

namespace {

using namespace cnv::sim;

/** Produces `count` integers, one per cycle, into a latch. */
class Producer : public Clocked
{
  public:
    Producer(Latch<int> &out, int count)
        : Clocked("producer"), out_(out), remaining_(count)
    {}

    void
    evaluate(Cycle) override
    {
        if (remaining_ > 0 && !out_.stalled()) {
            out_.push(remaining_);
            --remaining_;
        }
    }

    void commit(Cycle) override { out_.tick(); }
    bool done() const override { return remaining_ == 0; }

  private:
    Latch<int> &out_;
    int remaining_;
};

/** Consumes integers from a latch, recording arrival cycles. */
class Consumer : public Clocked
{
  public:
    Consumer(Latch<int> &in, int expect)
        : Clocked("consumer"), in_(in), expect_(expect)
    {}

    void
    evaluate(Cycle cycle) override
    {
        if (in_.valid()) {
            values_.push_back(in_.pop());
            cycles_.push_back(cycle);
        }
    }

    void commit(Cycle) override {}
    bool
    done() const override
    {
        return static_cast<int>(values_.size()) == expect_;
    }

    const std::vector<int> &values() const { return values_; }
    const std::vector<Cycle> &cycles() const { return cycles_; }

  private:
    Latch<int> &in_;
    int expect_;
    std::vector<int> values_;
    std::vector<Cycle> cycles_;
};

TEST(Engine, LatchDelaysValuesByOneCycle)
{
    Latch<int> link;
    Producer p(link, 3);
    Consumer c(link, 3);
    Engine engine("t");
    engine.add(p);
    engine.add(c);
    const Cycle cycles = engine.run(100);

    EXPECT_EQ(c.values(), (std::vector<int>{3, 2, 1}));
    // First value pushed in cycle 0 is visible in cycle 1.
    EXPECT_EQ(c.cycles().front(), 1u);
    EXPECT_EQ(cycles, 4u); // 3 values + 1 cycle pipeline latency
}

TEST(Engine, RunReturnsZeroWhenAlreadyDone)
{
    Latch<int> link;
    Producer p(link, 0);
    Engine engine("t");
    engine.add(p);
    EXPECT_EQ(engine.run(10), 0u);
}

TEST(Engine, CycleLimitThrowsFatal)
{
    setVerbosity(Verbosity::Silent);

    /** Never finishes. */
    class Stuck : public Clocked
    {
      public:
        Stuck() : Clocked("stuck") {}
        void evaluate(Cycle) override {}
        void commit(Cycle) override {}
        bool done() const override { return false; }
    } stuck;

    Engine engine("t");
    engine.add(stuck);
    EXPECT_THROW(engine.run(8), FatalError);
    setVerbosity(Verbosity::Info);
}

TEST(Engine, StepAdvancesTime)
{
    Engine engine("t");
    EXPECT_EQ(engine.now(), 0u);
    engine.step();
    engine.step();
    EXPECT_EQ(engine.now(), 2u);
}

TEST(Latch, StallDetectionAndBackpressure)
{
    Latch<int> l;
    l.push(1);
    l.tick();
    EXPECT_TRUE(l.valid());
    l.push(2);
    EXPECT_TRUE(l.stalled()); // unconsumed + staged
    EXPECT_EQ(l.pop(), 1);
    EXPECT_FALSE(l.valid());
    l.tick();
    EXPECT_TRUE(l.valid());
    EXPECT_EQ(l.pop(), 2);
}

} // namespace
