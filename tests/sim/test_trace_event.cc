/**
 * @file
 * Pins the trace-event sink's contract: recording order, the
 * bounded-capacity drop behaviour, ScopedSpan's engine-clocked
 * spans, and the exact Chrome trace-event JSON schema documented in
 * docs/observability.md (parsed back with the shared in-test
 * parser).
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "sim/engine.h"
#include "sim/logging.h"
#include "sim/trace_event.h"
#include "support/json_parser.h"

namespace {

using namespace cnv;
using sim::TraceArg;
using sim::TraceSink;
using testsupport::Json;
using testsupport::Parser;

TEST(TraceSink, RecordsEventsInOrderWithTypedFields)
{
    TraceSink sink;
    sink.complete(1, 2, "busy", "lane", 10, 5,
                  {TraceArg("laneCycles", std::uint64_t{5})});
    sink.counter(1, 0, "bbOccupancy", 12, 3.0);
    sink.instant(1, 2, "drain", "pipeline", 15);

    ASSERT_EQ(sink.events().size(), 3u);
    const auto &span = sink.events()[0];
    EXPECT_EQ(span.phase, 'X');
    EXPECT_EQ(span.pid, 1u);
    EXPECT_EQ(span.tid, 2u);
    EXPECT_EQ(span.ts, 10u);
    EXPECT_EQ(span.dur, 5u);
    EXPECT_EQ(span.name, "busy");
    EXPECT_EQ(span.cat, "lane");
    ASSERT_EQ(span.args.size(), 1u);
    EXPECT_EQ(span.args[0].name, "laneCycles");
    EXPECT_EQ(span.args[0].number, 5.0);

    EXPECT_EQ(sink.events()[1].phase, 'C');
    EXPECT_EQ(sink.events()[2].phase, 'i');
    EXPECT_EQ(sink.droppedEvents(), 0u);
}

TEST(TraceSink, CapDropsExcessEventsAndCountsThem)
{
    TraceSink sink(2);
    EXPECT_EQ(sink.maxEvents(), 2u);
    sink.complete(1, 1, "a", "lane", 0, 1);
    sink.complete(1, 1, "b", "lane", 1, 1);

    // The first drop warns; silence the log for the test.
    sim::setVerbosity(sim::Verbosity::Silent);
    sink.complete(1, 1, "c", "lane", 2, 1);
    sink.counter(1, 0, "bbOccupancy", 3, 1.0);
    sim::setVerbosity(sim::Verbosity::Info);

    ASSERT_EQ(sink.events().size(), 2u);
    EXPECT_EQ(sink.events().back().name, "b");
    EXPECT_EQ(sink.droppedEvents(), 2u);

    // The drop count lands in the serialized metadata.
    std::ostringstream os;
    sink.writeJson(os);
    Json doc = Parser(os.str()).parse();
    EXPECT_EQ(doc.at("metadata").at("droppedEvents").number, 2.0);
    EXPECT_EQ(doc.at("metadata").at("maxEvents").number, 2.0);
}

TEST(TraceSink, TrackNamingSurvivesTheCap)
{
    TraceSink sink(1);
    sink.setProcessName(7, "cnv unit");
    sink.setThreadName(7, 3, "lane3");
    sink.complete(7, 3, "busy", "lane", 0, 4);
    sim::setVerbosity(sim::Verbosity::Silent);
    sink.complete(7, 3, "busy", "lane", 4, 4);
    sim::setVerbosity(sim::Verbosity::Info);

    std::ostringstream os;
    sink.writeJson(os);
    Json doc = Parser(os.str()).parse();
    const Json &events = doc.at("traceEvents");
    // Naming 'M' records precede the (single admitted) event.
    ASSERT_EQ(events.array.size(), 3u);
    EXPECT_EQ(events.array[0].at("ph").text, "M");
    EXPECT_EQ(events.array[0].at("name").text, "process_name");
    EXPECT_EQ(events.array[0].at("args").at("name").text, "cnv unit");
    EXPECT_EQ(events.array[1].at("name").text, "thread_name");
    EXPECT_EQ(events.array[1].at("tid").number, 3.0);
    EXPECT_EQ(events.array[1].at("args").at("name").text, "lane3");
    EXPECT_EQ(events.array[2].at("ph").text, "X");
}

TEST(TraceSink, WriteJsonEmitsDocumentedSchema)
{
    TraceSink sink;
    sink.setProcessName(1, "proc");
    sink.complete(1, 2, "busy", "lane", 10, 5,
                  {TraceArg("layer", "L0_c1"),
                   TraceArg("laneCycles", std::uint64_t{5})});
    sink.counter(1, 0, "bbOccupancy", 12, 3.5);
    sink.instant(1, 2, "drain", "pipeline", 15);

    std::ostringstream os;
    sink.writeJson(os, {TraceArg("network", "tiny2"),
                        TraceArg("seed", std::uint64_t{7})});
    Json doc = Parser(os.str()).parse();

    EXPECT_EQ(doc.at("displayTimeUnit").text, "ms");
    const Json &meta = doc.at("metadata");
    EXPECT_EQ(meta.at("clockDomain").text, "cycles");
    EXPECT_EQ(meta.at("droppedEvents").number, 0.0);
    EXPECT_EQ(meta.at("network").text, "tiny2");
    EXPECT_EQ(meta.at("seed").number, 7.0);

    const Json &events = doc.at("traceEvents");
    ASSERT_EQ(events.array.size(), 4u); // 1 'M' + 3 recorded

    const Json &span = events.array[1];
    EXPECT_EQ(span.at("ph").text, "X");
    EXPECT_EQ(span.at("pid").number, 1.0);
    EXPECT_EQ(span.at("tid").number, 2.0);
    EXPECT_EQ(span.at("ts").number, 10.0);
    EXPECT_EQ(span.at("dur").number, 5.0);
    EXPECT_EQ(span.at("name").text, "busy");
    EXPECT_EQ(span.at("cat").text, "lane");
    EXPECT_EQ(span.at("args").at("layer").text, "L0_c1");
    EXPECT_EQ(span.at("args").at("laneCycles").number, 5.0);

    const Json &counter = events.array[2];
    EXPECT_EQ(counter.at("ph").text, "C");
    EXPECT_FALSE(counter.has("dur"));
    EXPECT_EQ(counter.at("args").at("value").number, 3.5);

    const Json &instant = events.array[3];
    EXPECT_EQ(instant.at("ph").text, "i");
    EXPECT_EQ(instant.at("cat").text, "pipeline");
}

TEST(ScopedSpan, CoversTheEngineIntervalAndSuppressesEmptySpans)
{
    sim::Engine engine("t");
    TraceSink sink;

    {
        sim::ScopedSpan span(&sink, engine, 1, 4, "group", "pipeline",
                             {TraceArg("w0", std::uint64_t{0})});
        engine.step();
        engine.step();
        engine.step();
    }
    ASSERT_EQ(sink.events().size(), 1u);
    EXPECT_EQ(sink.events()[0].ts, 0u);
    EXPECT_EQ(sink.events()[0].dur, 3u);
    EXPECT_EQ(sink.events()[0].name, "group");
    ASSERT_EQ(sink.events()[0].args.size(), 1u);
    EXPECT_EQ(sink.events()[0].args[0].name, "w0");

    // Explicit end() closes the span early and is idempotent.
    sim::ScopedSpan span(&sink, engine, 1, 4, "tail", "pipeline");
    engine.step();
    span.end();
    engine.step();
    span.end();
    ASSERT_EQ(sink.events().size(), 2u);
    EXPECT_EQ(sink.events()[1].ts, 3u);
    EXPECT_EQ(sink.events()[1].dur, 1u);

    // Zero-length spans and null sinks record nothing.
    { sim::ScopedSpan empty(&sink, engine, 1, 4, "empty", "pipeline"); }
    { sim::ScopedSpan nosink(nullptr, engine, 1, 4, "x", "pipeline"); }
    EXPECT_EQ(sink.events().size(), 2u);
}

} // namespace
