/** @file Tests for the deterministic parallel runtime. */

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/error.h"
#include "sim/parallel.h"

namespace {

using namespace cnv::sim;

TEST(ThreadPool, RunsEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threadCount(), 4);
    std::vector<std::atomic<int>> hits(257);
    parallelFor(pool, hits.size(),
                [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SingleJobPoolRunsInline)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.threadCount(), 1);
    int sum = 0;
    // With one lane there are no workers; the serial path must still
    // cover every index.
    parallelFor(pool, 100, [&](std::size_t i) { sum += static_cast<int>(i); });
    EXPECT_EQ(sum, 4950);
}

TEST(ThreadPool, ReusableAcrossBatches)
{
    ThreadPool pool(3);
    for (int round = 0; round < 20; ++round) {
        std::atomic<int> count{0};
        parallelFor(pool, 50, [&](std::size_t) { count.fetch_add(1); });
        EXPECT_EQ(count.load(), 50);
    }
}

TEST(ThreadPool, ZeroTasksIsANoOp)
{
    ThreadPool pool(2);
    bool ran = false;
    parallelFor(pool, 0, [&](std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ThreadPool, NestedParallelSectionsComplete)
{
    ThreadPool pool(4);
    std::atomic<int> total{0};
    // Every outer task submits its own inner batch to the same pool;
    // the caller-participates design must not deadlock.
    parallelFor(pool, 8, [&](std::size_t) {
        parallelFor(pool, 8, [&](std::size_t) { total.fetch_add(1); });
    });
    EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, ExceptionsPropagateToSubmitter)
{
    ThreadPool pool(4);
    EXPECT_THROW(parallelFor(pool, 64,
                             [&](std::size_t i) {
                                 if (i % 7 == 3)
                                     throw std::runtime_error("task failed");
                             }),
                 std::runtime_error);
}

TEST(ThreadPool, LowestIndexExceptionWins)
{
    ThreadPool pool(4);
    for (int round = 0; round < 10; ++round) {
        try {
            parallelFor(pool, 32, [&](std::size_t i) {
                if (i == 5 || i == 21)
                    throw std::runtime_error("boom at " +
                                             std::to_string(i));
            });
            FAIL() << "expected an exception";
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "boom at 5");
        }
    }
}

TEST(ParallelMapReduce, CommitsInSubmissionOrder)
{
    ThreadPool pool(4);
    std::vector<std::size_t> order;
    parallelMapReduce(
        pool, 100, [](std::size_t i) { return i * 3; },
        [&](std::size_t i, std::size_t r) {
            EXPECT_EQ(r, i * 3);
            order.push_back(i);
        });
    ASSERT_EQ(order.size(), 100u);
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(ParallelMapReduce, NonCommutativeReductionIsJobCountInvariant)
{
    // String concatenation exposes any ordering difference.
    auto runWith = [](int jobs) {
        ThreadPool pool(jobs);
        std::string result;
        parallelMapReduce(
            pool, 26,
            [](std::size_t i) {
                return std::string(1, static_cast<char>('a' + i));
            },
            [&](std::size_t, std::string &&s) { result += s; });
        return result;
    };
    const std::string serial = runWith(1);
    EXPECT_EQ(serial, "abcdefghijklmnopqrstuvwxyz");
    EXPECT_EQ(runWith(2), serial);
    EXPECT_EQ(runWith(5), serial);
}

TEST(ParallelConfig, SetJobCountRejectsNonPositive)
{
    EXPECT_THROW(setJobCount(0), FatalError);
    EXPECT_THROW(setJobCount(-3), FatalError);
}

TEST(ParallelConfig, SetJobCountReconfiguresGlobalPool)
{
    setJobCount(3);
    EXPECT_EQ(jobCount(), 3);
    EXPECT_EQ(globalPool().threadCount(), 3);
    setJobCount(1);
    EXPECT_EQ(jobCount(), 1);
    EXPECT_EQ(globalPool().threadCount(), 1);
}

TEST(ParallelConfig, DefaultJobCountIsPositive)
{
    EXPECT_GE(defaultJobCount(), 1);
}

} // namespace
