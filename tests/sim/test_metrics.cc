/** @file Tests for the host-telemetry metrics registry. */

#include <gtest/gtest.h>

#include <cstddef>
#include <iostream>
#include <sstream>
#include <string>

#include "sim/metrics.h"
#include "sim/parallel.h"
#include "sim/stats_export.h"
#include "support/json_parser.h"

namespace {

using namespace cnv::sim;

/** Enable the process-wide registry for one test, reset on exit. */
class MetricsEnabled
{
  public:
    MetricsEnabled() { metrics().setEnabled(true); }
    ~MetricsEnabled() { metrics().setEnabled(false); }
};

TEST(MetricsRegistry, DisabledRegistryRecordsNothing)
{
    metrics().setEnabled(false);
    metrics().add("test.disabledCounter", 5);
    metrics().gaugeMax("test.disabledGauge", 7);
    metrics().recordNanos("test.disabledHist", 1000);
    EXPECT_EQ(metrics().nowIfEnabled(), 0u);
    EXPECT_EQ(metrics().secondsSinceEnable(), 0.0);
    const auto snap = metrics().snapshot();
    EXPECT_FALSE(snap.enabled);
    EXPECT_EQ(snap.counters.count("test.disabledCounter"), 0u);
    EXPECT_EQ(snap.gauges.count("test.disabledGauge"), 0u);
    EXPECT_EQ(snap.histograms.count("test.disabledHist"), 0u);
}

TEST(MetricsRegistry, EnableResetsPriorSeries)
{
    metrics().setEnabled(true);
    metrics().add("test.stale");
    metrics().setEnabled(true); // re-enable = fresh epoch
    const auto snap = metrics().snapshot();
    EXPECT_EQ(snap.counters.count("test.stale"), 0u);
    metrics().setEnabled(false);
}

TEST(MetricsRegistry, ConcurrentCountersSumExactly)
{
    const MetricsEnabled on;
    // A local pool (not the global one) so the test controls the
    // concurrency; TSan in CI exercises the registry's locking.
    ThreadPool pool(4);
    constexpr std::size_t kTasks = 400;
    parallelFor(pool, kTasks, [&](std::size_t i) {
        metrics().add("test.concurrent", 1);
        metrics().gaugeMax("test.highWater", i);
        metrics().recordNanos("test.latency", (i + 1) * 1000);
    });
    const auto snap = metrics().snapshot();
    EXPECT_EQ(snap.counters.at("test.concurrent"), kTasks);
    EXPECT_EQ(snap.gauges.at("test.highWater"), kTasks - 1);
    const auto &hist = snap.histograms.at("test.latency");
    EXPECT_EQ(hist.count, kTasks);
    EXPECT_EQ(hist.minNanos, 1000u);
    EXPECT_EQ(hist.maxNanos, kTasks * 1000u);
    std::uint64_t bucketed = hist.overflow;
    for (std::uint64_t b : hist.buckets)
        bucketed += b;
    EXPECT_EQ(bucketed, kTasks);
    EXPECT_EQ(hist.totalNanos, 1000u * kTasks * (kTasks + 1) / 2);
}

TEST(MetricsRegistry, HistogramBucketBoundsArePowersOfTwoMicros)
{
    EXPECT_EQ(MetricsRegistry::bucketBoundNanos(0), 1000u);
    EXPECT_EQ(MetricsRegistry::bucketBoundNanos(1), 2000u);
    EXPECT_EQ(MetricsRegistry::bucketBoundNanos(10), 1024000u);

    const MetricsEnabled on;
    metrics().recordNanos("test.buckets", 1000);     // bucket 0
    metrics().recordNanos("test.buckets", 1500);     // bucket 1
    metrics().recordNanos("test.buckets",
                          MetricsRegistry::bucketBoundNanos(
                              MetricsRegistry::kHistogramBuckets - 1) +
                              1);                    // overflow
    const auto &hist =
        metrics().snapshot().histograms.at("test.buckets");
    EXPECT_EQ(hist.buckets[0], 1u);
    EXPECT_EQ(hist.buckets[1], 1u);
    EXPECT_EQ(hist.overflow, 1u);
}

TEST(MetricsRegistry, ScopedPhaseAccumulatesWallTime)
{
    const MetricsEnabled on;
    {
        const ScopedPhase phase("test.phase");
    }
    {
        const ScopedPhase phase("test.phase");
    }
    const auto snap = metrics().snapshot();
    const auto &phase = snap.phases.at("test.phase");
    EXPECT_EQ(phase.calls, 2u);
    EXPECT_GT(phase.nanos, 0u);
    EXPECT_GT(snap.sinceEnableNanos, 0u);
}

TEST(MetricsRegistry, PoolLanesChargeBusyAndTaskCounters)
{
    const MetricsEnabled on;
    ThreadPool pool(3);
    parallelFor(pool, 64, [](std::size_t) {
        metrics().add("test.poolTask");
    });
    const auto snap = metrics().snapshot();
    EXPECT_EQ(snap.counters.at("test.poolTask"), 64u);
    // The submitting thread always participates, so its lane must
    // have claimed work and charged busy time for it.
    EXPECT_GT(snap.counters.at("pool.caller.tasks"), 0u);
    EXPECT_GT(snap.counters.at("pool.caller.busyNanos"), 0u);
    std::uint64_t tasks = 0;
    for (const auto &[key, value] : snap.counters)
        if (key.rfind("pool.", 0) == 0 &&
            key.size() > 6 && key.compare(key.size() - 6, 6, ".tasks") == 0)
            tasks += value;
    EXPECT_EQ(tasks, 64u);
}

TEST(MetricsRegistry, PeakRssIsPositiveOnLinux)
{
#ifdef __linux__
    EXPECT_GT(processPeakRssBytes(), 0u);
#else
    GTEST_SKIP() << "procfs-only metric";
#endif
}

TEST(MetricsRegistry, HostProfileSerializesTheSnapshot)
{
    const MetricsEnabled on;
    metrics().add("traceCache.tensorHits", 3);
    metrics().add("traceCache.tensorMisses", 1);
    metrics().recordNanos("traceCache.synthesis", 2500);
    metrics().add("pool.worker0.busyNanos", 3000);
    metrics().add("pool.worker0.idleNanos", 1000);
    metrics().add("pool.worker0.tasks", 2);
    metrics().add("pool.stolenTasks", 2);
    metrics().gaugeMax("pool.queueDepthMax", 1);
    metrics().add("test.leftoverCounter", 9);
    {
        const ScopedPhase phase("timing");
    }

    std::ostringstream os;
    JsonWriter w(os);
    writeHostProfile(metrics().snapshot(), w);
    ASSERT_TRUE(w.complete());

    const std::string text = os.str();
    const auto doc = cnv::testsupport::Parser(text).parse();
    EXPECT_GT(doc.at("totalSeconds").number, 0.0);
    EXPECT_GE(doc.at("phaseCoverage").number, 0.0);
    EXPECT_LE(doc.at("phaseCoverage").number, 1.0);
    EXPECT_EQ(doc.at("phases").at("timing").at("calls").number, 1.0);

    const auto &cache = doc.at("traceCache");
    EXPECT_EQ(cache.at("tensorHits").number, 3.0);
    EXPECT_EQ(cache.at("tensorMisses").number, 1.0);
    EXPECT_DOUBLE_EQ(cache.at("hitRate").number, 0.75);
    EXPECT_EQ(cache.at("synthesis").at("count").number, 1.0);

    const auto &lane = doc.at("pool").at("workers").at("worker0");
    EXPECT_DOUBLE_EQ(lane.at("utilization").number, 0.75);
    EXPECT_EQ(lane.at("tasks").number, 2.0);
    EXPECT_EQ(doc.at("pool").at("stolenTasks").number, 2.0);
    EXPECT_EQ(doc.at("pool").at("queueDepthMax").number, 1.0);

    // Non-namespaced series land in the leftover maps, not the
    // structured sections.
    EXPECT_EQ(doc.at("counters").at("test.leftoverCounter").number, 9.0);
    EXPECT_FALSE(doc.at("counters").has("traceCache.tensorHits"));
    EXPECT_FALSE(doc.at("counters").has("pool.stolenTasks"));
}

TEST(MetricsRegistry, ProgressMeterPrintsWhenForcedOn)
{
    const MetricsEnabled on;
    metrics().configureProgress(MetricsRegistry::Progress::On);
    std::ostringstream captured;
    std::streambuf *old = std::cerr.rdbuf(captured.rdbuf());
    metrics().beginProgress("testnet", 2);
    metrics().tickProgress();
    metrics().tickProgress();
    metrics().endProgress();
    std::cerr.rdbuf(old);
    metrics().configureProgress(MetricsRegistry::Progress::Off);
    EXPECT_NE(captured.str().find("testnet"), std::string::npos);
    EXPECT_NE(captured.str().find("2/2"), std::string::npos);
}

TEST(MetricsRegistry, ProgressMeterSilentWhenOff)
{
    const MetricsEnabled on;
    metrics().configureProgress(MetricsRegistry::Progress::Off);
    std::ostringstream captured;
    std::streambuf *old = std::cerr.rdbuf(captured.rdbuf());
    metrics().beginProgress("quiet", 1);
    metrics().tickProgress();
    metrics().endProgress();
    std::cerr.rdbuf(old);
    EXPECT_TRUE(captured.str().empty());
}

} // namespace
