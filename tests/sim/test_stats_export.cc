/** @file Tests for the JSON/CSV statistics exporters. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>

#include "sim/stats.h"
#include "sim/stats_export.h"

namespace {

using namespace cnv::sim;

TEST(JsonWriter, EmitsNestedDocument)
{
    std::ostringstream os;
    JsonWriter w(os, 0);
    w.beginObject();
    w.key("a").value(std::uint64_t{1});
    w.key("b").beginArray();
    w.value(2);
    w.value("x");
    w.endArray();
    w.endObject();
    EXPECT_TRUE(w.complete());
    std::string text = os.str();
    text.erase(std::remove(text.begin(), text.end(), '\n'), text.end());
    EXPECT_EQ(text, R"({"a": 1,"b": [2,"x"]})");
}

TEST(JsonWriter, EscapesControlAndQuoteCharacters)
{
    EXPECT_EQ(JsonWriter::escape("plain"), "plain");
    EXPECT_EQ(JsonWriter::escape("a\"b"), "a\\\"b");
    EXPECT_EQ(JsonWriter::escape("back\\slash"), "back\\\\slash");
    EXPECT_EQ(JsonWriter::escape("line\nbreak"), "line\\nbreak");
    EXPECT_EQ(JsonWriter::escape("tab\there"), "tab\\there");
    EXPECT_EQ(JsonWriter::escape(std::string("b\x01l")), "b\\u0001l");
}

TEST(JsonWriter, DoublesRoundTripAndStayCompact)
{
    auto render = [](double v) {
        std::ostringstream os;
        JsonWriter w(os);
        w.value(v);
        return os.str();
    };
    EXPECT_EQ(render(0.5), "0.5");
    EXPECT_EQ(render(3.0), "3");
    // A value with no short decimal form must still parse back
    // exactly.
    const double awkward = 0.1 + 0.2;
    EXPECT_EQ(std::stod(render(awkward)), awkward);
    EXPECT_EQ(render(std::nan("")), "null");
    EXPECT_EQ(render(INFINITY), "null");
}

/** A small tree exercising every stat kind. */
StatGroup &
buildTree(StatGroup &root)
{
    root.addCounter("cycles", "total cycles") += 42;
    root.addScalar("watts", "average power") = 1.5;
    root.addFormula("ipc", "fixed formula", [] { return 2.0; });
    StatGroup &child = root.addGroup("unit0");
    child.addCounter("reads", "SB reads") += 7;
    Distribution &d = child.addDistribution("lat", "latency");
    d.sample(1.0);
    d.sample(3.0);
    return child;
}

TEST(ExportJson, SerializesNestedGroupsWithKinds)
{
    StatGroup root("top");
    buildTree(root);
    std::ostringstream os;
    exportJson(root, os);
    const std::string text = os.str();

    // Counters are integers, not floats.
    EXPECT_NE(text.find("\"kind\": \"counter\""), std::string::npos);
    EXPECT_NE(text.find("\"value\": 42"), std::string::npos);
    EXPECT_EQ(text.find("\"value\": 42.0"), std::string::npos);
    EXPECT_NE(text.find("\"kind\": \"scalar\""), std::string::npos);
    EXPECT_NE(text.find("\"kind\": \"formula\""), std::string::npos);
    EXPECT_NE(text.find("\"kind\": \"distribution\""), std::string::npos);
    EXPECT_NE(text.find("\"mean\": 2"), std::string::npos);
    // Nested group appears under "groups".
    EXPECT_NE(text.find("\"unit0\""), std::string::npos);
    EXPECT_NE(text.find("\"name\": \"top\""), std::string::npos);
}

TEST(ExportJson, EmptyDistributionHasNullBounds)
{
    StatGroup root("top");
    root.addDistribution("empty", "never sampled");
    std::ostringstream os;
    exportJson(root, os);
    EXPECT_NE(os.str().find("\"min\": null"), std::string::npos);
    EXPECT_NE(os.str().find("\"max\": null"), std::string::npos);
}

TEST(ExportJson, EscapesNamesAndDescriptions)
{
    StatGroup root("top");
    root.addCounter("odd\"name", "has \"quotes\" and\nnewline");
    std::ostringstream os;
    exportJson(root, os);
    EXPECT_NE(os.str().find("odd\\\"name"), std::string::npos);
    EXPECT_NE(os.str().find("\\nnewline"), std::string::npos);
}

TEST(ExportCsv, OneRowPerStatWithDottedPaths)
{
    StatGroup root("top");
    buildTree(root);
    std::ostringstream os;
    exportCsv(root, os);
    const std::string text = os.str();
    EXPECT_NE(text.find("path,kind,value,description\n"),
              std::string::npos);
    EXPECT_NE(text.find("top.cycles,counter,42,total cycles"),
              std::string::npos);
    EXPECT_NE(text.find("top.unit0.reads,counter,7,SB reads"),
              std::string::npos);
    // Distributions flatten into one row per moment.
    EXPECT_NE(text.find("top.unit0.lat.count,distribution,2,"),
              std::string::npos);
    EXPECT_NE(text.find("top.unit0.lat.mean,distribution,2,"),
              std::string::npos);
    EXPECT_NE(text.find("top.unit0.lat.min,distribution,1,"),
              std::string::npos);
    EXPECT_NE(text.find("top.unit0.lat.max,distribution,3,"),
              std::string::npos);
}

TEST(ExportCsv, PrefixAndHeaderAreOptional)
{
    StatGroup root("arch");
    root.addCounter("cycles", "c") += 1;
    std::ostringstream os;
    exportCsv(root, os, "run0", /*header=*/false);
    EXPECT_EQ(os.str(), "run0.arch.cycles,counter,1,c\n");
}

TEST(ExportCsv, QuotesFieldsPerRfc4180)
{
    EXPECT_EQ(csvQuote("plain"), "plain");
    EXPECT_EQ(csvQuote("with,comma"), "\"with,comma\"");
    EXPECT_EQ(csvQuote("with \"quote\""), "\"with \"\"quote\"\"\"");
    EXPECT_EQ(csvQuote("line\nbreak"), "\"line\nbreak\"");

    StatGroup root("top");
    root.addCounter("c", "desc, with comma") += 1;
    std::ostringstream os;
    exportCsv(root, os, "", false);
    EXPECT_EQ(os.str(), "top.c,counter,1,\"desc, with comma\"\n");
}

TEST(ExportJson, ResetBetweenRegionsClearsCounters)
{
    // The per-region measurement pattern: fill, export, resetAll,
    // fill again, export — the second export must only reflect the
    // second region's activity.
    StatGroup root("region");
    Counter &c = root.addCounter("events", "events this region");
    c += 10;
    std::ostringstream first;
    exportJson(root, first);
    EXPECT_NE(first.str().find("\"value\": 10"), std::string::npos);

    root.resetAll();
    c += 3;
    std::ostringstream second;
    exportJson(root, second);
    EXPECT_NE(second.str().find("\"value\": 3"), std::string::npos);
    EXPECT_EQ(second.str().find("\"value\": 10"), std::string::npos);
    EXPECT_EQ(second.str().find("13"), std::string::npos);
}

} // namespace
