/** @file Additional engine coverage: ordering and composition. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.h"

namespace {

using namespace cnv::sim;

/** Records the order in which phases run. */
class Recorder : public Clocked
{
  public:
    Recorder(int id, std::vector<int> &evalLog, std::vector<int> &commitLog,
             int lifetime)
        : Clocked("recorder"),
          id_(id),
          evalLog_(evalLog),
          commitLog_(commitLog),
          remaining_(lifetime)
    {}

    void
    evaluate(Cycle) override
    {
        evalLog_.push_back(id_);
        if (remaining_ > 0)
            --remaining_;
    }

    void commit(Cycle) override { commitLog_.push_back(id_); }
    bool done() const override { return remaining_ == 0; }

  private:
    int id_;
    std::vector<int> &evalLog_;
    std::vector<int> &commitLog_;
    int remaining_;
};

TEST(EngineOrdering, EvaluateAllThenCommitAllInAddOrder)
{
    std::vector<int> evals, commits;
    Recorder a(1, evals, commits, 1), b(2, evals, commits, 1);
    Engine engine("t");
    engine.add(a);
    engine.add(b);
    engine.step();
    EXPECT_EQ(evals, (std::vector<int>{1, 2}));
    EXPECT_EQ(commits, (std::vector<int>{1, 2}));
}

TEST(EngineOrdering, RunsUntilSlowestComponentFinishes)
{
    std::vector<int> evals, commits;
    Recorder fast(1, evals, commits, 2), slow(2, evals, commits, 7);
    Engine engine("t");
    engine.add(fast);
    engine.add(slow);
    EXPECT_EQ(engine.run(100), 7u);
}

TEST(EngineOrdering, SequentialRunsAccumulateTime)
{
    std::vector<int> evals, commits;
    Recorder a(1, evals, commits, 3);
    Engine engine("t");
    engine.add(a);
    engine.run(100);
    EXPECT_EQ(engine.now(), 3u);

    Recorder b(2, evals, commits, 2);
    engine.add(b);
    engine.run(100);
    EXPECT_EQ(engine.now(), 5u);
}

TEST(EngineRegions, RegionsCoverConsecutiveRuns)
{
    std::vector<int> evals, commits;
    Engine engine("t");

    Recorder a(1, evals, commits, 3);
    engine.add(a);
    engine.beginRegion("phase-a");
    engine.run(100);
    engine.endRegion();

    Recorder b(2, evals, commits, 2);
    engine.clear();
    engine.add(b);
    engine.beginRegion("phase-b");
    engine.run(100);
    engine.endRegion();

    ASSERT_EQ(engine.regions().size(), 2u);
    const Region &ra = engine.regions()[0];
    const Region &rb = engine.regions()[1];
    EXPECT_EQ(ra.name, "phase-a");
    EXPECT_EQ(ra.begin, 0u);
    EXPECT_EQ(ra.end, 3u);
    EXPECT_EQ(ra.cycles(), 3u);
    EXPECT_EQ(rb.name, "phase-b");
    EXPECT_EQ(rb.begin, 3u);
    EXPECT_EQ(rb.end, 5u);
}

TEST(EngineRegions, BeginClosesOpenRegion)
{
    std::vector<int> evals, commits;
    Recorder a(1, evals, commits, 2);
    Engine engine("t");
    engine.add(a);
    engine.beginRegion("first");
    engine.run(100);
    engine.beginRegion("second"); // implicitly ends "first" at cycle 2
    ASSERT_EQ(engine.regions().size(), 2u);
    EXPECT_EQ(engine.regions()[0].end, 2u);
    EXPECT_EQ(engine.regions()[1].begin, 2u);
}

TEST(EngineRegions, EndWithoutOpenRegionIsANoop)
{
    Engine engine("t");
    engine.endRegion();
    EXPECT_TRUE(engine.regions().empty());
}

TEST(EngineRegions, ClearKeepsClockRunning)
{
    std::vector<int> evals, commits;
    Recorder a(1, evals, commits, 4);
    Engine engine("t");
    engine.add(a);
    engine.run(100);
    engine.clear();
    EXPECT_TRUE(engine.allDone());
    EXPECT_EQ(engine.now(), 4u);
}

TEST(LatchExtra, PushWithoutTickStaysInvisible)
{
    Latch<int> l;
    l.push(9);
    EXPECT_FALSE(l.valid());
    l.tick();
    EXPECT_TRUE(l.valid());
}

TEST(LatchExtra, TickWithoutPushKeepsCurrent)
{
    Latch<int> l;
    l.push(1);
    l.tick();
    l.tick(); // nothing staged; current unconsumed
    EXPECT_TRUE(l.valid());
    EXPECT_EQ(l.pop(), 1);
}

} // namespace
