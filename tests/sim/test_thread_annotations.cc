/** @file Tests for core/thread_annotations.h and core/sync.h. */

#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "core/sync.h"
#include "core/thread_annotations.h"
#include "sim/parallel.h"

namespace {

// Indirect stringification so macro arguments expand first: on a
// compiler without thread-safety analysis the annotation macros must
// vanish entirely, leaving an empty token sequence.
#define CNV_TEST_STR_IMPL(...) #__VA_ARGS__
#define CNV_TEST_STR(...) CNV_TEST_STR_IMPL(__VA_ARGS__)

TEST(ThreadAnnotations, EnabledFlagTracksCompiler)
{
#if defined(__clang__)
    EXPECT_EQ(CNV_THREAD_SAFETY_ENABLED, 1);
#else
    EXPECT_EQ(CNV_THREAD_SAFETY_ENABLED, 0);
#endif
}

TEST(ThreadAnnotations, MacrosCompileAwayWithoutClang)
{
    const std::string guarded = CNV_TEST_STR(CNV_GUARDED_BY(someMutex));
    const std::string requires_ = CNV_TEST_STR(CNV_REQUIRES(someMutex));
    const std::string excludes = CNV_TEST_STR(CNV_EXCLUDES(someMutex));
    const std::string capability = CNV_TEST_STR(CNV_CAPABILITY("mutex"));
    if (CNV_THREAD_SAFETY_ENABLED) {
        EXPECT_NE(guarded.find("guarded_by"), std::string::npos);
        EXPECT_NE(requires_.find("requires_capability"),
                  std::string::npos);
        EXPECT_NE(excludes.find("locks_excluded"), std::string::npos);
        EXPECT_NE(capability.find("capability"), std::string::npos);
    } else {
        EXPECT_EQ(guarded, "");
        EXPECT_EQ(requires_, "");
        EXPECT_EQ(excludes, "");
        EXPECT_EQ(capability, "");
    }
}

TEST(Sync, MutexLockExcludesConcurrentCriticalSections)
{
    cnv::core::Mutex mutex;
    std::size_t counter = 0;
    cnv::sim::ThreadPool pool(4);
    constexpr std::size_t kIncrements = 512;
    cnv::sim::parallelFor(pool, kIncrements, [&](std::size_t) {
        const cnv::core::MutexLock lock(mutex);
        counter += 1; // data race here without the lock (tsan preset)
    });
    EXPECT_EQ(counter, kIncrements);
}

TEST(ThreadAnnotations, TryAcquireSingleArgLeavesNoTrailingComma)
{
    // Regression: CNV_TRY_ACQUIRE used to be (result, ...), so the
    // one-argument form in core/sync.h expanded to
    // try_acquire_capability(true, ) — a parse error that broke
    // every Clang build. All arguments now pass through __VA_ARGS__.
    const std::string one = CNV_TEST_STR(CNV_TRY_ACQUIRE(true));
    const std::string two = CNV_TEST_STR(CNV_TRY_ACQUIRE(true, someMutex));
    EXPECT_EQ(one.find(", )"), std::string::npos);
    EXPECT_EQ(one.find(",)"), std::string::npos);
    if (CNV_THREAD_SAFETY_ENABLED) {
        EXPECT_NE(one.find("try_acquire_capability(true)"),
                  std::string::npos);
        EXPECT_NE(two.find("try_acquire_capability(true, someMutex)"),
                  std::string::npos);
    } else {
        EXPECT_EQ(one, "");
        EXPECT_EQ(two, "");
    }
}

TEST(Sync, TryLockAcquiresWhenFree)
{
    cnv::core::Mutex mutex;
    // Branch on the result so the thread-safety analysis tracks the
    // conditionally-held capability (the canonical try-lock shape).
    const bool acquired = mutex.try_lock();
    EXPECT_TRUE(acquired);
    if (acquired)
        mutex.unlock();
}

} // namespace
