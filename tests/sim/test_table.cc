/** @file Tests for the table writer. */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/error.h"
#include "sim/logging.h"
#include "sim/table.h"

namespace {

using namespace cnv::sim;

TEST(Table, PrintsAlignedColumns)
{
    Table t({"net", "speedup"});
    t.addRow({"alex", "1.37"});
    t.addRow({"google", "1.24"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("net"), std::string::npos);
    EXPECT_NE(out.find("google"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, CsvOutput)
{
    Table t({"a", "b"});
    t.addRow({"1", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, RowArityMismatchIsFatal)
{
    setVerbosity(Verbosity::Silent);
    Table t({"a", "b"});
    EXPECT_THROW(t.addRow({"only one"}), FatalError);
    setVerbosity(Verbosity::Info);
}

TEST(Table, NumberFormatting)
{
    EXPECT_EQ(Table::num(1.375, 2), "1.38");
    EXPECT_EQ(Table::num(2.0, 0), "2");
    EXPECT_EQ(Table::pct(0.443), "44.3%");
    EXPECT_EQ(Table::intNum(1234567), "1,234,567");
    EXPECT_EQ(Table::intNum(12), "12");
}

} // namespace
