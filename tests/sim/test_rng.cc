/** @file Tests for the deterministic random number generator. */

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "sim/rng.h"

namespace {

using cnv::sim::Rng;

TEST(Rng, SameSeedSameStream)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanIsHalf)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntRespectsBounds)
{
    Rng rng(13);
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.uniformInt(std::int64_t{-5}, std::int64_t{5});
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
    }
}

TEST(Rng, UniformIntCoversRange)
{
    Rng rng(17);
    std::array<int, 8> hits{};
    for (int i = 0; i < 8000; ++i)
        ++hits[rng.uniformInt(std::uint64_t{8})];
    for (int h : hits)
        EXPECT_GT(h, 700); // each bucket near 1000
}

TEST(Rng, NormalMomentsAreSane)
{
    Rng rng(19);
    const int n = 200000;
    double sum = 0.0, sumSq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        sum += x;
        sumSq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.01);
    EXPECT_NEAR(sumSq / n, 1.0, 0.02);
}

TEST(Rng, BernoulliRate)
{
    Rng rng(23);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.44);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.44, 0.01);
}

TEST(Rng, ForkedStreamsAreIndependentAndDeterministic)
{
    Rng parent(31);
    Rng c1 = parent.fork(1);
    Rng c2 = parent.fork(2);
    Rng c1again = parent.fork(1);
    EXPECT_EQ(c1.next(), c1again.next());
    EXPECT_NE(c1.next(), c2.next());
}

} // namespace
