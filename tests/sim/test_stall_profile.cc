/**
 * @file
 * Tests for stall attribution: the reason-name vocabulary, direct
 * accumulation, the trace-event fold (laneCycles/layer argument
 * semantics, pid filtering, unknown-reason accounting), the CSV
 * export and the stats-tree embedding.
 */

#include <gtest/gtest.h>

#include <iterator>
#include <sstream>
#include <string>

#include "sim/logging.h"
#include "sim/stall_profile.h"
#include "sim/stats.h"
#include "sim/stats_export.h"
#include "sim/trace_event.h"
#include "support/json_parser.h"

namespace {

using namespace cnv;
using sim::StallProfile;
using sim::StallReason;
using sim::TraceArg;
using sim::TraceSink;

TEST(StallReasonNames, RoundTripAndRejectUnknown)
{
    const StallReason all[] = {
        StallReason::BrickBufferEmpty, StallReason::WindowBarrier,
        StallReason::SynapseWait,      StallReason::SliceDrained,
        StallReason::NmBankConflict,   StallReason::GbMiss,
        StallReason::DramWait};
    static_assert(std::size(all) == sim::kStallReasonCount);
    for (StallReason r : all) {
        const auto back = sim::stallReasonFromName(sim::stallReasonName(r));
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(*back, r);
    }
    EXPECT_STREQ(sim::stallReasonName(StallReason::BrickBufferEmpty),
                 "brick_buffer_empty");
    EXPECT_STREQ(sim::stallReasonName(StallReason::WindowBarrier),
                 "window_barrier");
    EXPECT_STREQ(sim::stallReasonName(StallReason::SynapseWait),
                 "synapse_wait");
    EXPECT_STREQ(sim::stallReasonName(StallReason::SliceDrained),
                 "slice_drained");
    EXPECT_STREQ(sim::stallReasonName(StallReason::NmBankConflict),
                 "nm_bank_conflict");
    EXPECT_STREQ(sim::stallReasonName(StallReason::GbMiss), "gb_miss");
    EXPECT_STREQ(sim::stallReasonName(StallReason::DramWait),
                 "dram_wait");
    EXPECT_FALSE(sim::stallReasonFromName("coffee_break").has_value());
}

TEST(StallProfile, AccumulatesPerLayerPerReason)
{
    StallProfile p;
    p.add("L0_c1", StallReason::WindowBarrier, 10);
    p.add("L1_c2", StallReason::SynapseWait, 5);
    p.add("L0_c1", StallReason::WindowBarrier, 3);
    p.add("L0_c1", StallReason::SliceDrained, 2);

    ASSERT_EQ(p.rows().size(), 2u); // first-seen order
    EXPECT_EQ(p.rows()[0].layer, "L0_c1");
    EXPECT_EQ(p.rows()[0].total(), 15u);
    EXPECT_EQ(p.rows()[1].layer, "L1_c2");
    EXPECT_EQ(p.total(StallReason::WindowBarrier), 13u);
    EXPECT_EQ(p.total(StallReason::SynapseWait), 5u);
    EXPECT_EQ(p.total(StallReason::BrickBufferEmpty), 0u);
    EXPECT_EQ(p.totalIdle(), 20u);
}

TEST(StallProfile, FoldsTraceEventsWithArgumentOverrides)
{
    TraceSink sink;
    // Span duration is the idle amount when no laneCycles arg...
    sink.complete(1, 3, "brick_buffer_empty", "stall", 0, 7);
    // ...an explicit laneCycles arg overrides it (lock-step arrays
    // record one span for many lanes)...
    sink.complete(1, 1, "brick_buffer_empty", "stall", 0, 4,
                  {TraceArg("laneCycles", std::uint64_t{64})});
    // ...and a layer arg keys the row instead of the default.
    sink.complete(1, 2, "window_barrier", "stall", 10, 5,
                  {TraceArg("layer", "L1_c2"),
                   TraceArg("laneCycles", std::uint64_t{5})});
    // Non-stall categories are ignored outright.
    sink.complete(1, 2, "busy", "lane", 0, 100);
    // Another process, to be excluded by the pid filter.
    sink.complete(2, 1, "synapse_wait", "stall", 0, 9);

    StallProfile p;
    EXPECT_EQ(p.addFromTrace(sink, 1, "(run)"), 0u);
    EXPECT_EQ(p.total(StallReason::BrickBufferEmpty), 71u);
    EXPECT_EQ(p.total(StallReason::WindowBarrier), 5u);
    EXPECT_EQ(p.total(StallReason::SynapseWait), 0u);
    ASSERT_EQ(p.rows().size(), 2u);
    EXPECT_EQ(p.rows()[0].layer, "(run)");
    EXPECT_EQ(p.rows()[1].layer, "L1_c2");

    // pid 0 folds every process.
    StallProfile all;
    EXPECT_EQ(all.addFromTrace(sink), 0u);
    EXPECT_EQ(all.totalIdle(), 85u);
}

TEST(StallProfile, CountsUnknownReasonNames)
{
    TraceSink sink;
    sink.complete(1, 1, "mystery_stall", "stall", 0, 3);
    sink.complete(1, 1, "slice_drained", "stall", 3, 2);

    StallProfile p;
    sim::setVerbosity(sim::Verbosity::Silent);
    const std::size_t unknown = p.addFromTrace(sink);
    sim::setVerbosity(sim::Verbosity::Info);
    EXPECT_EQ(unknown, 1u);
    EXPECT_EQ(p.totalIdle(), 2u);
    EXPECT_EQ(p.total(StallReason::SliceDrained), 2u);
}

TEST(StallProfile, WritesSparseCsvWithOptionalScope)
{
    StallProfile p;
    p.add("L0_c1", StallReason::WindowBarrier, 10);
    p.add("L1_c2", StallReason::SynapseWait, 5);

    std::ostringstream plain;
    p.writeCsv(plain);
    EXPECT_EQ(plain.str(),
              "layer,reason,idleLaneCycles\n"
              "L0_c1,window_barrier,10\n"
              "L1_c2,synapse_wait,5\n");

    // A prefix becomes a leading scope column; header is optional so
    // several profiles can merge into one file.
    std::ostringstream scoped;
    p.writeCsv(scoped, "cnv");
    std::ostringstream more;
    p.writeCsv(more, "dadiannao", /*header=*/false);
    EXPECT_EQ(scoped.str(),
              "scope,layer,reason,idleLaneCycles\n"
              "cnv,L0_c1,window_barrier,10\n"
              "cnv,L1_c2,synapse_wait,5\n");
    EXPECT_EQ(more.str(),
              "dadiannao,L0_c1,window_barrier,10\n"
              "dadiannao,L1_c2,synapse_wait,5\n");
}

TEST(StallProfile, AttachesStatsGroupWithPerReasonTotals)
{
    StallProfile p;
    p.add("L0_c1", StallReason::WindowBarrier, 10);
    p.add("L1_c2", StallReason::WindowBarrier, 4);
    p.add("L1_c2", StallReason::SliceDrained, 6);

    sim::StatGroup root("run");
    p.attachStats(root);

    std::ostringstream os;
    sim::JsonWriter w(os);
    sim::exportJson(root, w);
    testsupport::Json doc = testsupport::Parser(os.str()).parse();

    const testsupport::Json &stalls =
        doc.at("groups").at("stalls").at("stats");
    EXPECT_EQ(stalls.at("window_barrier").at("value").number, 14.0);
    EXPECT_EQ(stalls.at("slice_drained").at("value").number, 6.0);
    EXPECT_EQ(stalls.at("brick_buffer_empty").at("value").number, 0.0);
    EXPECT_EQ(stalls.at("totalIdle").at("value").number, 20.0);
}

} // namespace
