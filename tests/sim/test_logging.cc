/** @file Tests for the logging/formatting layer. */

#include <gtest/gtest.h>

#include "sim/error.h"
#include "sim/logging.h"

namespace {

using namespace cnv::sim;

TEST(Strfmt, SubstitutesPlaceholdersInOrder)
{
    EXPECT_EQ(strfmt("a={} b={}", 1, "two"), "a=1 b=two");
    EXPECT_EQ(strfmt("{}{}{}", 'x', 'y', 'z'), "xyz");
}

TEST(Strfmt, NoArguments)
{
    EXPECT_EQ(strfmt("plain text"), "plain text");
}

TEST(Strfmt, ExtraArgumentsAreAppendedVisibly)
{
    const std::string s = strfmt("v={}", 1, 2);
    EXPECT_NE(s.find("extra"), std::string::npos);
}

TEST(Strfmt, MissingArgumentsLeavePlaceholderVisible)
{
    EXPECT_EQ(strfmt("a={} b={}", 7), "a=7 b={}");
}

TEST(Strfmt, FormatsDoubles)
{
    EXPECT_EQ(strfmt("{}", 2.5), "2.5");
}

TEST(Logging, PanicThrowsPanicError)
{
    setVerbosity(Verbosity::Silent);
    EXPECT_THROW(CNV_PANIC("bad state {}", 3), PanicError);
    setVerbosity(Verbosity::Info);
}

TEST(Logging, FatalThrowsFatalError)
{
    setVerbosity(Verbosity::Silent);
    EXPECT_THROW(CNV_FATAL("bad config"), FatalError);
    setVerbosity(Verbosity::Info);
}

TEST(Logging, AssertPassesAndFails)
{
    setVerbosity(Verbosity::Silent);
    EXPECT_NO_THROW(CNV_ASSERT(1 + 1 == 2, "arithmetic"));
    EXPECT_THROW(CNV_ASSERT(false, "always fails"), PanicError);
    setVerbosity(Verbosity::Info);
}

TEST(Logging, ErrorMessagesCarryLocation)
{
    setVerbosity(Verbosity::Silent);
    try {
        CNV_FATAL("weird {}", 42);
        FAIL() << "should have thrown";
    } catch (const FatalError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("weird 42"), std::string::npos);
        EXPECT_NE(what.find("test_logging.cc"), std::string::npos);
    }
    setVerbosity(Verbosity::Info);
}

} // namespace
