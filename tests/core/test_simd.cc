/** @file Tests for the portable SIMD layer (active backend). */

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "core/simd.h"
#include "sim/rng.h"

namespace {

namespace simd = cnv::core::simd;

/** Scalar model of the lane predicate: non-zero and |raw| >= t. */
bool
keptScalar(std::int16_t raw, std::int32_t threshold)
{
    const std::int32_t wide = raw;
    const std::int32_t mag = wide < 0 ? -wide : wide;
    return raw != 0 && mag >= threshold;
}

std::vector<std::int16_t>
randomLanes(int n, std::uint64_t seed)
{
    cnv::sim::Rng rng(seed);
    std::vector<std::int16_t> v(static_cast<std::size_t>(n));
    for (auto &x : v) {
        if (rng.bernoulli(0.4)) {
            x = 0;
        } else {
            x = static_cast<std::int16_t>(rng.uniformInt(
                std::int64_t{std::numeric_limits<std::int16_t>::min()},
                std::int64_t{std::numeric_limits<std::int16_t>::max()}));
        }
    }
    return v;
}

TEST(Simd, BackendReportsCoherently)
{
    EXPECT_GE(simd::kLanes, 1);
    if (!simd::kEnabled)
        EXPECT_STREQ(simd::instructionSet(), "scalar");
    else
        EXPECT_STRNE(simd::instructionSet(), "scalar");
}

TEST(Simd, DotAccumMatchesScalarOnRandomLanes)
{
    const auto a = randomLanes(simd::kLanes, 0xa);
    const auto b = randomLanes(simd::kLanes, 0xb);
    simd::DotAccum acc;
    acc.mulAcc(simd::loadFull(a.data()), simd::loadFull(b.data()));
    std::int64_t expect = 0;
    for (int i = 0; i < simd::kLanes; ++i) {
        expect += static_cast<std::int64_t>(a[static_cast<std::size_t>(i)]) *
                  b[static_cast<std::size_t>(i)];
    }
    EXPECT_EQ(acc.total(), expect);
}

TEST(Simd, DotAccumExactAtInt16Extremes)
{
    // Every lane -32768 * -32768: the pairwise-wrap trap that rules
    // out madd-style instructions. The exact sum is kLanes * 2^30.
    std::vector<std::int16_t> lo(
        static_cast<std::size_t>(simd::kLanes),
        std::numeric_limits<std::int16_t>::min());
    simd::DotAccum acc;
    acc.mulAcc(simd::loadFull(lo.data()), simd::loadFull(lo.data()));
    EXPECT_EQ(acc.total(),
              static_cast<std::int64_t>(simd::kLanes) * (1LL << 30));

    // Accumulation keeps adding exactly.
    acc.mulAcc(simd::loadFull(lo.data()), simd::loadFull(lo.data()));
    EXPECT_EQ(acc.total(),
              2 * static_cast<std::int64_t>(simd::kLanes) * (1LL << 30));
}

TEST(Simd, PartialLoadZeroFillsTail)
{
    const auto a = randomLanes(simd::kLanes, 0xc);
    for (int n = 0; n <= simd::kLanes; ++n) {
        const simd::VecI16 v = n == simd::kLanes
            ? simd::loadFull(a.data())
            : simd::loadPartial(a.data(), n);
        // A zero-filled tail contributes no products and no counts.
        simd::DotAccum acc;
        acc.mulAcc(v, v);
        std::int64_t expect = 0;
        int expectCount = 0;
        for (int i = 0; i < n; ++i) {
            const std::int64_t x = a[static_cast<std::size_t>(i)];
            expect += x * x;
            if (keptScalar(a[static_cast<std::size_t>(i)], 1))
                ++expectCount;
        }
        EXPECT_EQ(acc.total(), expect) << "n=" << n;
        EXPECT_EQ(simd::geCount(v, 1), expectCount) << "n=" << n;
    }
}

TEST(Simd, ClampThresholdMatchesPredicateDomain)
{
    EXPECT_EQ(simd::clampThreshold(-5), 1);
    EXPECT_EQ(simd::clampThreshold(0), 1);
    EXPECT_EQ(simd::clampThreshold(1), 1);
    EXPECT_EQ(simd::clampThreshold(1000), 1000);
    EXPECT_EQ(simd::clampThreshold(0xFFFF), 0xFFFF);
    EXPECT_EQ(simd::clampThreshold(0x7FFFFFFF), 0xFFFF);
}

TEST(Simd, GeCountAndMaskMatchScalarPredicate)
{
    // Edge lanes: zero, INT16_MIN (|x| = 32768), extremes around
    // common thresholds.
    std::vector<std::int16_t> v(static_cast<std::size_t>(simd::kLanes));
    v[0] = 0;
    v[1] = std::numeric_limits<std::int16_t>::min();
    v[2] = std::numeric_limits<std::int16_t>::max();
    v[3] = -1;
    for (int i = 4; i < simd::kLanes; ++i) {
        v[static_cast<std::size_t>(i)] =
            static_cast<std::int16_t>((i % 2 ? -1 : 1) * (i * 37));
    }
    for (std::int32_t threshold :
         {0, 1, 2, 100, 32767, 32768, 40000}) {
        const std::uint16_t t = simd::clampThreshold(threshold);
        const simd::VecI16 vec = simd::loadFull(v.data());
        int expectCount = 0;
        std::uint32_t expectMask = 0;
        for (int i = 0; i < simd::kLanes; ++i) {
            if (keptScalar(v[static_cast<std::size_t>(i)], threshold)) {
                ++expectCount;
                expectMask |= 1u << i;
            }
        }
        EXPECT_EQ(simd::geCount(vec, t), expectCount)
            << "threshold " << threshold;
        EXPECT_EQ(simd::geMask(vec, t), expectMask)
            << "threshold " << threshold;
    }
}

TEST(Simd, GeMaskRandomizedAgainstScalar)
{
    for (std::uint64_t seed = 1; seed <= 32; ++seed) {
        const auto v = randomLanes(simd::kLanes, seed);
        const simd::VecI16 vec = simd::loadFull(v.data());
        for (std::int32_t threshold : {0, 1, 64, 5000, 32768}) {
            const std::uint16_t t = simd::clampThreshold(threshold);
            std::uint32_t expectMask = 0;
            for (int i = 0; i < simd::kLanes; ++i) {
                if (keptScalar(v[static_cast<std::size_t>(i)], threshold))
                    expectMask |= 1u << i;
            }
            EXPECT_EQ(simd::geMask(vec, t), expectMask)
                << "seed " << seed << " threshold " << threshold;
        }
    }
}

} // namespace
