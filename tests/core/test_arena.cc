/** @file Tests for the core::Arena bump allocator. */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <set>

#include "core/arena.h"

namespace {

using cnv::core::Arena;

bool
alignedTo(const void *p, std::size_t align)
{
    return reinterpret_cast<std::uintptr_t>(p) % align == 0;
}

TEST(Arena, RespectsRequestedAlignment)
{
    Arena arena(256);
    // Deliberately misalign the bump pointer with a 1-byte request
    // before each aligned one. Alignments beyond the default-new
    // guarantee (16 on most ABIs) catch offset-only alignment: the
    // block base itself is not so aligned, so the pointer must be
    // adjusted, not just the offset.
    for (std::size_t align : {std::size_t{2}, std::size_t{8},
                              std::size_t{16}, std::size_t{64},
                              std::size_t{128}, std::size_t{256}}) {
        (void)arena.allocate(1, 1);
        void *p = arena.allocate(align * 2, align);
        EXPECT_TRUE(alignedTo(p, align)) << "align " << align;
    }
}

TEST(Arena, AllocationsDoNotOverlap)
{
    Arena arena(128);
    // Spill across several blocks; writes through every pointer must
    // survive, which they cannot if regions overlap.
    constexpr int kCount = 64;
    std::uint32_t *ptrs[kCount];
    for (int i = 0; i < kCount; ++i) {
        ptrs[i] = arena.allocate<std::uint32_t>(4);
        for (int j = 0; j < 4; ++j)
            ptrs[i][j] = static_cast<std::uint32_t>(i);
    }
    for (int i = 0; i < kCount; ++i)
        for (int j = 0; j < 4; ++j)
            EXPECT_EQ(ptrs[i][j], static_cast<std::uint32_t>(i));
}

TEST(Arena, ResetReusesCapacityWithoutGrowing)
{
    Arena arena(1024);
    for (int i = 0; i < 8; ++i)
        (void)arena.allocate(512, 8);
    const std::size_t reserved = arena.bytesReserved();
    const std::size_t blocks = arena.blockCount();
    EXPECT_GT(arena.bytesUsed(), 0u);

    arena.reset();
    EXPECT_EQ(arena.bytesUsed(), 0u);
    // The same workload after reset must fit in the same blocks.
    for (int round = 0; round < 3; ++round) {
        for (int i = 0; i < 8; ++i)
            (void)arena.allocate(512, 8);
        EXPECT_EQ(arena.bytesReserved(), reserved);
        EXPECT_EQ(arena.blockCount(), blocks);
        arena.reset();
    }
}

TEST(Arena, LargeAllocationFallsThroughToDedicatedBlock)
{
    Arena arena(64);
    // Far larger than the block size: must still succeed, in one
    // dedicated block, without disturbing earlier allocations.
    char *small = arena.allocate<char>(16);
    std::memset(small, 0x5a, 16);
    const std::size_t big = 64 * 1024;
    char *large = arena.allocate<char>(big);
    ASSERT_NE(large, nullptr);
    std::memset(large, 0xa5, big);
    EXPECT_GE(arena.bytesReserved(), big + 16);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(small[i], 0x5a);
}

TEST(Arena, ZeroByteAllocationIsValid)
{
    Arena arena;
    EXPECT_NE(arena.allocate(0, 8), nullptr);
}

} // namespace
