/**
 * @file
 * Minimal in-test JSON parser shared by the observability tests
 * (report, figure-artifact and trace-event documents). Deliberately
 * tiny — just enough for schema checks against the dependency-free
 * JsonWriter output — and gtest-aware: malformed input produces
 * test failures, not exceptions.
 */

#ifndef CNV_TESTS_SUPPORT_JSON_PARSER_H
#define CNV_TESTS_SUPPORT_JSON_PARSER_H

#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <string>
#include <vector>

namespace cnv::testsupport {

/** Minimal JSON value for schema checks (no number/int distinction). */
struct Json
{
    enum class Kind { Null, Bool, Number, String, Object, Array };
    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string text;
    std::map<std::string, Json> object;
    std::vector<Json> array;

    const Json &
    at(const std::string &key) const
    {
        auto it = object.find(key);
        if (it == object.end()) {
            ADD_FAILURE() << "missing key: " << key;
            static const Json null;
            return null;
        }
        return it->second;
    }

    bool has(const std::string &key) const { return object.count(key) > 0; }
};

/** Tiny recursive-descent parser for the exporter's output. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : s_(text) {}

    Json
    parse()
    {
        Json v = value();
        skipWs();
        EXPECT_EQ(pos_, s_.size()) << "trailing content after document";
        return v;
    }

  private:
    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        skipWs();
        EXPECT_LT(pos_, s_.size()) << "unexpected end of document";
        return pos_ < s_.size() ? s_[pos_] : '\0';
    }

    void
    expect(char c)
    {
        EXPECT_EQ(peek(), c);
        ++pos_;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            char c = s_[pos_++];
            if (c == '\\' && pos_ < s_.size()) {
                const char esc = s_[pos_++];
                switch (esc) {
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'u':
                    // Exporter only emits \u00xx control characters.
                    out += static_cast<char>(
                        std::stoi(s_.substr(pos_, 4), nullptr, 16));
                    pos_ += 4;
                    break;
                  default: out += esc;
                }
            } else {
                out += c;
            }
        }
        EXPECT_LT(pos_, s_.size()) << "unterminated string";
        ++pos_; // closing quote
        return out;
    }

    Json
    value()
    {
        Json v;
        const char c = peek();
        if (c == '{') {
            v.kind = Json::Kind::Object;
            ++pos_;
            if (peek() == '}') { ++pos_; return v; }
            while (true) {
                const std::string key = [&] { skipWs(); return parseString(); }();
                expect(':');
                v.object.emplace(key, value());
                if (peek() == ',') { ++pos_; continue; }
                expect('}');
                break;
            }
        } else if (c == '[') {
            v.kind = Json::Kind::Array;
            ++pos_;
            if (peek() == ']') { ++pos_; return v; }
            while (true) {
                v.array.push_back(value());
                if (peek() == ',') { ++pos_; continue; }
                expect(']');
                break;
            }
        } else if (c == '"') {
            v.kind = Json::Kind::String;
            v.text = parseString();
        } else if (s_.compare(pos_, 4, "true") == 0) {
            v.kind = Json::Kind::Bool;
            v.boolean = true;
            pos_ += 4;
        } else if (s_.compare(pos_, 5, "false") == 0) {
            v.kind = Json::Kind::Bool;
            pos_ += 5;
        } else if (s_.compare(pos_, 4, "null") == 0) {
            pos_ += 4;
        } else {
            v.kind = Json::Kind::Number;
            std::size_t used = 0;
            v.number = std::stod(s_.substr(pos_), &used);
            EXPECT_GT(used, 0u) << "bad number at offset " << pos_;
            pos_ += used;
        }
        return v;
    }

    const std::string &s_;
    std::size_t pos_ = 0;
};

} // namespace cnv::testsupport

#endif // CNV_TESTS_SUPPORT_JSON_PARSER_H
