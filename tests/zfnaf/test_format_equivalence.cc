/** @file Scalar-vs-SIMD equivalence tests for ZFNAf encode/count. */

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "sim/error.h"
#include "sim/rng.h"
#include "tensor/tensor.h"
#include "zfnaf/format.h"

namespace {

using namespace cnv;
using tensor::Fixed16;
using tensor::NeuronTensor;
using zfnaf::DepthThreshold;
using zfnaf::EncodedArray;

NeuronTensor
randomTensor(int x, int y, int z, std::uint64_t seed,
             double zeroFrac = 0.45)
{
    NeuronTensor t(x, y, z);
    sim::Rng rng(seed);
    for (Fixed16 &v : t) {
        if (rng.bernoulli(zeroFrac)) {
            v = Fixed16{};
        } else {
            v = Fixed16::fromRaw(static_cast<std::int16_t>(rng.uniformInt(
                std::int64_t{std::numeric_limits<std::int16_t>::min()},
                std::int64_t{
                    std::numeric_limits<std::int16_t>::max()})));
        }
    }
    return t;
}

void
expectCountsEqual(const tensor::Tensor3<std::uint8_t> &a,
                  const tensor::Tensor3<std::uint8_t> &b,
                  const char *what)
{
    ASSERT_EQ(a.shape(), b.shape()) << what;
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(int(a.data()[i]), int(b.data()[i]))
            << what << " diverges at flat index " << i;
}

TEST(ZfnafEquivalence, EncodeMatchesScalarAcrossBrickSizesAndTails)
{
    // Depths with tail bricks shorter than any vector width, brick
    // sizes on both sides of it, and prune thresholds including the
    // degenerate and saturating ones.
    std::uint64_t seed = 41;
    for (int z : {1, 3, 15, 16, 17, 50, 260}) {
        for (int brickSize : {1, 3, 8, 16, 64, 256}) {
            for (std::int32_t threshold : {0, 1, 300, 32768, 70000}) {
                const NeuronTensor t = randomTensor(4, 3, z, seed++);
                const EncodedArray vec =
                    zfnaf::encode(t, brickSize, threshold);
                const EncodedArray ref =
                    zfnaf::encodeScalar(t, brickSize, threshold);
                ASSERT_TRUE(vec == ref)
                    << "z=" << z << " brick=" << brickSize
                    << " threshold=" << threshold;
                vec.checkInvariants();
            }
        }
    }
}

TEST(ZfnafEquivalence, EncodeHandlesInt16MinValues)
{
    NeuronTensor t(2, 2, 20);
    for (Fixed16 &v : t)
        v = Fixed16::fromRaw(std::numeric_limits<std::int16_t>::min());
    for (std::int32_t threshold : {0, 32767, 32768, 32769}) {
        ASSERT_TRUE(zfnaf::encode(t, 16, threshold) ==
                    zfnaf::encodeScalar(t, 16, threshold))
            << "threshold=" << threshold;
    }
}

TEST(ZfnafEquivalence, CountMapMatchesScalar)
{
    std::uint64_t seed = 83;
    for (int z : {1, 5, 16, 31, 130}) {
        for (int brickSize : {1, 7, 16, 255}) {
            for (std::int32_t threshold : {0, 1, 1000, 40000}) {
                const NeuronTensor t = randomTensor(5, 4, z, seed++);
                expectCountsEqual(
                    zfnaf::nonZeroCountMap(t, brickSize, threshold),
                    zfnaf::nonZeroCountMapScalar(t, brickSize,
                                                 threshold),
                    "nonZeroCountMap");
            }
        }
    }
}

TEST(ZfnafEquivalence, SegmentedCountMatchesPruneThenCount)
{
    // Reference semantics: zero out each segment below its threshold,
    // then count plain non-zeros — what timing::TraceCache used to
    // do with a full tensor copy. Segment boundaries deliberately
    // fall inside bricks.
    const int z = 43;
    const NeuronTensor t = randomTensor(6, 5, z, 777);
    const std::vector<DepthThreshold> segments = {
        {10, 0}, {13, 250}, {7, 1}, {13, 9000},
    };

    NeuronTensor pruned = t;
    int zBase = 0;
    for (const DepthThreshold &seg : segments) {
        for (int y = 0; y < pruned.shape().y; ++y)
            for (int x = 0; x < pruned.shape().x; ++x)
                for (int d = zBase; d < zBase + seg.depth; ++d) {
                    Fixed16 &v = pruned.at(x, y, d);
                    if (seg.threshold > 0 && v.rawAbs() < seg.threshold)
                        v = Fixed16{};
                }
        zBase += seg.depth;
    }

    for (int brickSize : {1, 4, 16, 40}) {
        expectCountsEqual(
            zfnaf::nonZeroCountMap(t, brickSize, segments),
            zfnaf::nonZeroCountMapScalar(pruned, brickSize, 0),
            "segmented nonZeroCountMap");
    }
}

TEST(ZfnafEquivalence, SegmentedCountValidatesDepthSum)
{
    const NeuronTensor t = randomTensor(2, 2, 10, 5);
    const std::vector<DepthThreshold> bad = {{4, 0}, {4, 10}};
    EXPECT_THROW(zfnaf::nonZeroCountMap(t, 4, bad), sim::FatalError);
}

TEST(ZfnafEquivalence, TensorCountsMatchBruteForce)
{
    // countNonZero/zeroFraction ride the same predicate kernel.
    for (int n : {1, 7, 16, 33, 1000}) {
        const NeuronTensor t = randomTensor(1, n, 1, 60 + n);
        std::size_t expect = 0;
        for (std::size_t i = 0; i < t.size(); ++i) {
            if (!t.data()[i].isZero())
                ++expect;
        }
        EXPECT_EQ(tensor::countNonZero(t), expect) << "n=" << n;
        EXPECT_DOUBLE_EQ(
            tensor::zeroFraction(t),
            static_cast<double>(t.size() - expect) /
                static_cast<double>(t.size()))
            << "n=" << n;
    }
}

} // namespace
