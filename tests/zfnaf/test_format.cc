/** @file Tests for the Zero-Free Neuron Array format. */

#include <gtest/gtest.h>

#include "sim/error.h"
#include "sim/logging.h"
#include "sim/rng.h"
#include "zfnaf/format.h"

namespace {

using namespace cnv;
using tensor::Fixed16;
using tensor::NeuronTensor;
using zfnaf::EncodedArray;
using zfnaf::EncodedNeuron;

NeuronTensor
randomSparse(int x, int y, int z, double zeroFrac, std::uint64_t seed)
{
    NeuronTensor t(x, y, z);
    sim::Rng rng(seed);
    for (Fixed16 &v : t)
        v = rng.bernoulli(zeroFrac)
            ? Fixed16{}
            : Fixed16::fromRaw(static_cast<std::int16_t>(
                  rng.uniformInt(std::int64_t{1}, std::int64_t{1000})));
    return t;
}

TEST(Zfnaf, PaperExampleEncoding)
{
    // Section III-C: the stream (1,0,0,3) encodes as ((1,0),(3,3)).
    NeuronTensor t(1, 1, 4);
    t.at(0, 0, 0) = Fixed16::fromRaw(1);
    t.at(0, 0, 3) = Fixed16::fromRaw(3);
    const EncodedArray enc = zfnaf::encode(t, 4);
    const auto brick = enc.brick(0, 0, 0);
    ASSERT_EQ(brick.size(), 2u);
    EXPECT_EQ(brick[0].value.raw(), 1);
    EXPECT_EQ(brick[0].offset, 0);
    EXPECT_EQ(brick[1].value.raw(), 3);
    EXPECT_EQ(brick[1].offset, 3);
}

TEST(Zfnaf, OffsetFieldWidths)
{
    EXPECT_EQ(EncodedArray({1, 1, 16}, 16).offsetBits(), 4);
    EXPECT_EQ(EncodedArray({1, 1, 8}, 8).offsetBits(), 3);
    EXPECT_EQ(EncodedArray({1, 1, 4}, 4).offsetBits(), 2);
    EXPECT_EQ(EncodedArray({1, 1, 64}, 64).offsetBits(), 6);
}

TEST(Zfnaf, SixteenNeuronBrickOverheadIs25Percent)
{
    // 16-bit values + 4-bit offsets = 25% capacity overhead
    // (Section IV-B1).
    const EncodedArray enc({4, 4, 64}, 16);
    const std::size_t conventionalBits = 4 * 4 * 64 * 16;
    EXPECT_EQ(enc.storageBits(), conventionalBits * 5 / 4);
}

TEST(Zfnaf, OffsetOnlyStorageWorkedExample)
{
    // docs/zfnaf.md's worked example: one 16-neuron brick with five
    // non-zero neurons. Paper layout: 16 slots x (16+4) = 320 bits.
    // Offset-only: 16 offsets x 4 + 5 values x 16 = 144 bits, under
    // the 256-bit dense brick.
    NeuronTensor t(1, 1, 16);
    for (int z : {0, 3, 4, 9, 15})
        t.at(0, 0, z) = Fixed16::fromRaw(static_cast<std::int16_t>(z + 1));
    const EncodedArray enc = zfnaf::encode(t, 16);
    EXPECT_EQ(enc.storageBits(), 320u);
    EXPECT_EQ(enc.offsetOnlyStorageBits(), 144u);
}

TEST(Zfnaf, OffsetOnlyStorageBounds)
{
    // A fully dense array pays the full paper footprint (every slot
    // keeps its value), so offset-only == paper layout there; any
    // zero shrinks it, and it can never exceed storageBits().
    const NeuronTensor dense = randomSparse(4, 3, 32, 0.0, 21);
    const EncodedArray full = zfnaf::encode(dense, 16);
    EXPECT_EQ(full.offsetOnlyStorageBits(), full.storageBits());

    const NeuronTensor sparse = randomSparse(4, 3, 32, 0.6, 22);
    const EncodedArray enc = zfnaf::encode(sparse, 16);
    EXPECT_LT(enc.offsetOnlyStorageBits(), enc.storageBits());
    EXPECT_EQ(enc.offsetOnlyStorageBits(),
              enc.brickCount() * 16 * 4 +
                  enc.totalNonZero() * zfnaf::kNeuronBits);
}

class ZfnafRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, double>>
{
};

TEST_P(ZfnafRoundTrip, DecodeRecoversOriginal)
{
    const auto [brickSize, zeroFrac] = GetParam();
    const NeuronTensor t =
        randomSparse(5, 4, 37, zeroFrac,
                     1000 + brickSize + static_cast<int>(zeroFrac * 100));
    const EncodedArray enc = zfnaf::encode(t, brickSize);
    enc.checkInvariants();
    EXPECT_EQ(zfnaf::decode(enc), t);
    EXPECT_EQ(enc.totalNonZero(), tensor::countNonZero(t));
}

INSTANTIATE_TEST_SUITE_P(
    BrickSizesAndSparsities, ZfnafRoundTrip,
    ::testing::Combine(::testing::Values(2, 4, 8, 16, 32),
                       ::testing::Values(0.0, 0.3, 0.5, 0.9, 1.0)));

TEST(Zfnaf, PruningThresholdZeroesSmallMagnitudes)
{
    NeuronTensor t(1, 1, 4);
    t.at(0, 0, 0) = Fixed16::fromRaw(5);
    t.at(0, 0, 1) = Fixed16::fromRaw(-5);
    t.at(0, 0, 2) = Fixed16::fromRaw(6);
    t.at(0, 0, 3) = Fixed16::fromRaw(-7);
    const EncodedArray enc = zfnaf::encode(t, 4, /*pruneThreshold=*/6);
    const auto brick = enc.brick(0, 0, 0);
    ASSERT_EQ(brick.size(), 2u);
    EXPECT_EQ(brick[0].value.raw(), 6);
    EXPECT_EQ(brick[1].value.raw(), -7);
}

TEST(Zfnaf, CountMapMatchesEncoding)
{
    const NeuronTensor t = randomSparse(6, 5, 50, 0.45, 77);
    const EncodedArray enc = zfnaf::encode(t, 16);
    const auto counts = zfnaf::nonZeroCountMap(t, 16);
    ASSERT_EQ(counts.shape().z, enc.bricksPerColumn());
    for (int y = 0; y < 5; ++y)
        for (int x = 0; x < 6; ++x)
            for (int b = 0; b < enc.bricksPerColumn(); ++b)
                EXPECT_EQ(counts.at(x, y, b), enc.nonZeroCount(x, y, b));
}

TEST(Zfnaf, CountMapHonoursThreshold)
{
    const NeuronTensor t = randomSparse(3, 3, 32, 0.2, 99);
    const auto enc = zfnaf::encode(t, 16, 200);
    const auto counts = zfnaf::nonZeroCountMap(t, 16, 200);
    for (int y = 0; y < 3; ++y)
        for (int x = 0; x < 3; ++x)
            for (int b = 0; b < 2; ++b)
                EXPECT_EQ(counts.at(x, y, b), enc.nonZeroCount(x, y, b));
}

TEST(Zfnaf, SetBrickValidatesInvariants)
{
    cnv::sim::setVerbosity(cnv::sim::Verbosity::Silent);
    EncodedArray enc({1, 1, 16}, 16);
    // Zero value rejected.
    const EncodedNeuron zero{Fixed16{}, 0};
    EXPECT_THROW(enc.setBrick(0, 0, 0, {&zero, 1}), cnv::sim::FatalError);
    // Non-increasing offsets rejected.
    const EncodedNeuron pair[2] = {{Fixed16::fromRaw(1), 3},
                                   {Fixed16::fromRaw(2), 3}};
    EXPECT_THROW(enc.setBrick(0, 0, 0, {pair, 2}), cnv::sim::FatalError);
    // Offset outside the brick rejected.
    const EncodedNeuron big{Fixed16::fromRaw(1), 16};
    EXPECT_THROW(enc.setBrick(0, 0, 0, {&big, 1}), cnv::sim::FatalError);
    cnv::sim::setVerbosity(cnv::sim::Verbosity::Info);
}

TEST(Zfnaf, BrickGranularIndexingIsAlignmentPreserving)
{
    // Bricks can be addressed with just the coordinates of their
    // first neuron — the property CNV needs for direct indexing.
    const NeuronTensor t = randomSparse(4, 4, 48, 0.5, 13);
    const EncodedArray enc = zfnaf::encode(t, 16);
    for (int b = 0; b < 3; ++b) {
        for (const EncodedNeuron &e : enc.brick(2, 3, b)) {
            EXPECT_EQ(t.at(2, 3, b * 16 + e.offset), e.value);
        }
    }
}

TEST(Zfnaf, InvalidBrickSizeIsFatal)
{
    cnv::sim::setVerbosity(cnv::sim::Verbosity::Silent);
    EXPECT_THROW(EncodedArray({1, 1, 16}, 0), cnv::sim::FatalError);
    EXPECT_THROW(EncodedArray({1, 1, 16}, 257), cnv::sim::FatalError);
    cnv::sim::setVerbosity(cnv::sim::Verbosity::Info);
}

} // namespace
